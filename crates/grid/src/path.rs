//! Routing of ion movements between trapping zones.
//!
//! A route is a sequence of [`MoveStep`]s, each either a shuttle between two
//! adjacent trapping zones on the same straight segment, or a hop through a
//! junction connecting two zones adjacent to that junction (paper Sec. 3.2:
//! compiled as `Move zoneA zoneB` and charged two junction-traversal times).
//!
//! Routing uses Dijkstra's algorithm weighted by the nominal duration of each
//! step so that compiled circuits prefer fast straight-line shuttles over
//! slow junction crossings.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

use crate::layout::Layout;
use crate::site::{QSite, SiteKind};

/// A single movement primitive for one ion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MoveStep {
    /// Shuttle between two adjacent trapping zones of the same segment.
    Shuttle {
        /// Zone the ion leaves.
        from: QSite,
        /// Zone the ion arrives at.
        to: QSite,
    },
    /// Hop through `junction` from one adjacent zone to another.
    JunctionHop {
        /// Zone the ion leaves.
        from: QSite,
        /// Zone the ion arrives at.
        to: QSite,
        /// The junction traversed (exclusively held during the hop).
        junction: QSite,
    },
}

impl MoveStep {
    /// The departure zone.
    pub fn from(&self) -> QSite {
        match *self {
            MoveStep::Shuttle { from, .. } | MoveStep::JunctionHop { from, .. } => from,
        }
    }

    /// The arrival zone.
    pub fn to(&self) -> QSite {
        match *self {
            MoveStep::Shuttle { to, .. } | MoveStep::JunctionHop { to, .. } => to,
        }
    }

    /// Relative cost used by the router: a junction hop takes two traversals
    /// at 105 µs versus a 5.25 µs shuttle, i.e. 40× longer.
    pub fn relative_cost(&self) -> u64 {
        match self {
            MoveStep::Shuttle { .. } => 1,
            MoveStep::JunctionHop { .. } => 40,
        }
    }
}

/// All single-step moves available from `site` on `layout`.
pub fn steps_from(layout: &Layout, site: QSite) -> Vec<MoveStep> {
    let mut out = Vec::new();
    for n in layout.neighbors(site) {
        match layout.site_kind(n) {
            Some(SiteKind::Junction) => {
                for far in layout.neighbors(n) {
                    if far != site && layout.is_trapping_zone(far) {
                        out.push(MoveStep::JunctionHop { from: site, to: far, junction: n });
                    }
                }
            }
            Some(_) => out.push(MoveStep::Shuttle { from: site, to: n }),
            None => {}
        }
    }
    out
}

/// Shortest (duration-weighted) route from `from` to `to`, ignoring other
/// ions. Returns `None` if the sites are not connected or do not exist.
pub fn route(layout: &Layout, from: QSite, to: QSite) -> Option<Vec<MoveStep>> {
    route_avoiding(layout, from, to, &HashSet::new())
}

/// Shortest route from `from` to `to` that never enters a zone in `blocked`
/// (the destination itself must not be blocked). Junctions cannot be blocked
/// spatially — temporal junction conflicts are resolved by the scheduler.
pub fn route_avoiding(
    layout: &Layout,
    from: QSite,
    to: QSite,
    blocked: &HashSet<QSite>,
) -> Option<Vec<MoveStep>> {
    if !layout.is_trapping_zone(from) || !layout.is_trapping_zone(to) {
        return None;
    }
    if from == to {
        return Some(Vec::new());
    }
    if blocked.contains(&to) {
        return None;
    }

    let mut dist: HashMap<QSite, u64> = HashMap::new();
    let mut prev: HashMap<QSite, MoveStep> = HashMap::new();
    let mut heap: BinaryHeap<Reverse<(u64, QSite)>> = BinaryHeap::new();
    dist.insert(from, 0);
    heap.push(Reverse((0, from)));

    while let Some(Reverse((d, site))) = heap.pop() {
        if site == to {
            break;
        }
        if d > *dist.get(&site).unwrap_or(&u64::MAX) {
            continue;
        }
        for step in steps_from(layout, site) {
            let next = step.to();
            if next != to && blocked.contains(&next) {
                continue;
            }
            let nd = d + step.relative_cost();
            if nd < *dist.get(&next).unwrap_or(&u64::MAX) {
                dist.insert(next, nd);
                prev.insert(next, step);
                heap.push(Reverse((nd, next)));
            }
        }
    }

    if !dist.contains_key(&to) {
        return None;
    }
    // Reconstruct.
    let mut steps = Vec::new();
    let mut cur = to;
    while cur != from {
        let step = prev[&cur];
        cur = step.from();
        steps.push(step);
    }
    steps.reverse();
    Some(steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_from_data_home() {
        let l = Layout::new(2, 2);
        // Data home (0,1): shuttle right to O (0,2), junction hop through
        // (0,0) to (1,0) [measure home of same unit]... and nothing upward.
        let steps = steps_from(&l, QSite::new(0, 1));
        assert!(steps.contains(&MoveStep::Shuttle { from: QSite::new(0, 1), to: QSite::new(0, 2) }));
        assert!(steps.iter().any(|s| matches!(
            s,
            MoveStep::JunctionHop { junction, to, .. }
                if *junction == QSite::new(0, 0) && *to == QSite::new(1, 0)
        )));
    }

    #[test]
    fn route_within_one_arm_is_pure_shuttles() {
        let l = Layout::new(1, 1);
        let r = route(&l, QSite::new(0, 1), QSite::new(0, 3)).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.iter().all(|s| matches!(s, MoveStep::Shuttle { .. })));
        assert_eq!(r[0].from(), QSite::new(0, 1));
        assert_eq!(r[1].to(), QSite::new(0, 3));
    }

    #[test]
    fn route_between_units_crosses_a_junction() {
        let l = Layout::new(2, 2);
        // From unit (0,0) data home to unit (0,1) data home: must cross the
        // junction at (0,4).
        let r = route(&l, l.data_home(0, 0), l.data_home(0, 1)).unwrap();
        assert!(r.iter().any(
            |s| matches!(s, MoveStep::JunctionHop { junction, .. } if *junction == QSite::new(0, 4))
        ));
        // Path continuity.
        for w in r.windows(2) {
            assert_eq!(w[0].to(), w[1].from());
        }
        assert_eq!(r.first().unwrap().from(), l.data_home(0, 0));
        assert_eq!(r.last().unwrap().to(), l.data_home(0, 1));
    }

    #[test]
    fn routes_avoid_blocked_zones() {
        let l = Layout::new(1, 1);
        // Going from (0,1) to (0,3) with (0,2) blocked is impossible on a
        // single unit (there is no alternative path on one arm).
        let mut blocked = HashSet::new();
        blocked.insert(QSite::new(0, 2));
        assert!(route_avoiding(&l, QSite::new(0, 1), QSite::new(0, 3), &blocked).is_none());
        // On a 2x2 grid an alternative exists around the block.
        let l = Layout::new(2, 2);
        let r = route_avoiding(&l, QSite::new(0, 1), QSite::new(0, 3), &blocked).unwrap();
        assert!(r.iter().all(|s| s.to() != QSite::new(0, 2)));
    }

    #[test]
    fn routing_to_or_from_junction_fails() {
        let l = Layout::new(1, 1);
        assert!(route(&l, QSite::new(0, 0), QSite::new(0, 1)).is_none());
        assert!(route(&l, QSite::new(0, 1), QSite::new(0, 0)).is_none());
    }

    #[test]
    fn trivial_route_is_empty() {
        let l = Layout::new(1, 1);
        assert_eq!(route(&l, QSite::new(0, 1), QSite::new(0, 1)).unwrap().len(), 0);
    }
}

//! Routing of ion movements between trapping zones, and the shared
//! tile-grid breadth-first search used by patch-level corridor routing.
//!
//! A route is a sequence of [`MoveStep`]s, each either a shuttle between two
//! adjacent trapping zones on the same straight segment, or a hop through a
//! junction connecting two zones adjacent to that junction (paper Sec. 3.2:
//! compiled as `Move zoneA zoneB` and charged two junction-traversal times).
//!
//! Routing uses Dijkstra's algorithm weighted by the nominal duration of each
//! step so that compiled circuits prefer fast straight-line shuttles over
//! slow junction crossings.
//!
//! Above the zone level, the program estimator routes lattice-surgery merge
//! *corridors* over a coarse grid of surface-code tiles. The search behind
//! that — an unweighted multi-source BFS over an abstract `rows × cols`
//! grid with a caller-supplied passability predicate — lives here as
//! [`shortest_tile_path`], so both layers share one routing substrate.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};

use crate::layout::Layout;
use crate::site::{QSite, SiteKind};

/// A single movement primitive for one ion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MoveStep {
    /// Shuttle between two adjacent trapping zones of the same segment.
    Shuttle {
        /// Zone the ion leaves.
        from: QSite,
        /// Zone the ion arrives at.
        to: QSite,
    },
    /// Hop through `junction` from one adjacent zone to another.
    JunctionHop {
        /// Zone the ion leaves.
        from: QSite,
        /// Zone the ion arrives at.
        to: QSite,
        /// The junction traversed (exclusively held during the hop).
        junction: QSite,
    },
}

impl MoveStep {
    /// The departure zone.
    pub fn from(&self) -> QSite {
        match *self {
            MoveStep::Shuttle { from, .. } | MoveStep::JunctionHop { from, .. } => from,
        }
    }

    /// The arrival zone.
    pub fn to(&self) -> QSite {
        match *self {
            MoveStep::Shuttle { to, .. } | MoveStep::JunctionHop { to, .. } => to,
        }
    }

    /// Relative cost used by the router: a junction hop takes two traversals
    /// at 105 µs versus a 5.25 µs shuttle, i.e. 40× longer.
    pub fn relative_cost(&self) -> u64 {
        match self {
            MoveStep::Shuttle { .. } => 1,
            MoveStep::JunctionHop { .. } => 40,
        }
    }
}

/// All single-step moves available from `site` on `layout`.
pub fn steps_from(layout: &Layout, site: QSite) -> Vec<MoveStep> {
    let mut out = Vec::new();
    for n in layout.neighbors(site) {
        match layout.site_kind(n) {
            Some(SiteKind::Junction) => {
                for far in layout.neighbors(n) {
                    if far != site && layout.is_trapping_zone(far) {
                        out.push(MoveStep::JunctionHop { from: site, to: far, junction: n });
                    }
                }
            }
            Some(_) => out.push(MoveStep::Shuttle { from: site, to: n }),
            None => {}
        }
    }
    out
}

/// Shortest (duration-weighted) route from `from` to `to`, ignoring other
/// ions. Returns `None` if the sites are not connected or do not exist.
pub fn route(layout: &Layout, from: QSite, to: QSite) -> Option<Vec<MoveStep>> {
    route_avoiding(layout, from, to, &HashSet::new())
}

/// Shortest route from `from` to `to` that never enters a zone in `blocked`
/// (the destination itself must not be blocked). Junctions cannot be blocked
/// spatially — temporal junction conflicts are resolved by the scheduler.
pub fn route_avoiding(
    layout: &Layout,
    from: QSite,
    to: QSite,
    blocked: &HashSet<QSite>,
) -> Option<Vec<MoveStep>> {
    route_avoiding_with(layout, from, to, &|site| blocked.contains(&site))
}

/// [`route_avoiding`] with a caller-supplied blocking predicate instead of a
/// materialized set. The hardware scheduler routes thousands of short hops
/// per syndrome round; querying its occupancy map directly through this
/// predicate avoids snapshotting every ion position into a fresh `HashSet`
/// per route, which dominated compile time at large code distances. The
/// search order (and therefore every returned route) is identical to
/// [`route_avoiding`] with the equivalent set.
pub fn route_avoiding_with(
    layout: &Layout,
    from: QSite,
    to: QSite,
    blocked: &dyn Fn(QSite) -> bool,
) -> Option<Vec<MoveStep>> {
    if !layout.is_trapping_zone(from) || !layout.is_trapping_zone(to) {
        return None;
    }
    if from == to {
        return Some(Vec::new());
    }
    if blocked(to) {
        return None;
    }

    let mut dist: HashMap<QSite, u64> = HashMap::new();
    let mut prev: HashMap<QSite, MoveStep> = HashMap::new();
    let mut heap: BinaryHeap<Reverse<(u64, QSite)>> = BinaryHeap::new();
    dist.insert(from, 0);
    heap.push(Reverse((0, from)));

    while let Some(Reverse((d, site))) = heap.pop() {
        if site == to {
            break;
        }
        if d > *dist.get(&site).unwrap_or(&u64::MAX) {
            continue;
        }
        for step in steps_from(layout, site) {
            let next = step.to();
            if next != to && blocked(next) {
                continue;
            }
            let nd = d + step.relative_cost();
            if nd < *dist.get(&next).unwrap_or(&u64::MAX) {
                dist.insert(next, nd);
                prev.insert(next, step);
                heap.push(Reverse((nd, next)));
            }
        }
    }

    if !dist.contains_key(&to) {
        return None;
    }
    // Reconstruct.
    let mut steps = Vec::new();
    let mut cur = to;
    while cur != from {
        let step = prev[&cur];
        cur = step.from();
        steps.push(step);
    }
    steps.reverse();
    Some(steps)
}

/// Shortest path over an abstract `rows × cols` tile grid by multi-source
/// breadth-first search.
///
/// The path starts at one of `sources`, ends at the first tile satisfying
/// `is_goal`, steps only between orthogonally adjacent tiles, and visits
/// only tiles for which `passable` returns `true` (sources that are not
/// passable are ignored; a goal tile must itself be passable to be
/// reached). Returns the visited tiles in order, sources included — or
/// `None` when no goal is reachable.
///
/// The search is deterministic: sources seed the queue in the order given
/// and neighbours expand up, left, right, down, so equal-length paths
/// resolve the same way on every run (golden tests rely on this).
///
/// ```
/// use tiscc_grid::path::shortest_tile_path;
///
/// // A 2 × 4 grid with tile (0, 1) blocked: the path detours via row 1.
/// let path = shortest_tile_path(
///     2,
///     4,
///     &[(0, 0)],
///     &|t| t == (0, 3),
///     &|t| t != (0, 1),
/// )
/// .unwrap();
/// assert_eq!(path.first(), Some(&(0, 0)));
/// assert_eq!(path.last(), Some(&(0, 3)));
/// assert!(!path.contains(&(0, 1)));
/// ```
pub fn shortest_tile_path(
    rows: usize,
    cols: usize,
    sources: &[(usize, usize)],
    is_goal: &dyn Fn((usize, usize)) -> bool,
    passable: &dyn Fn((usize, usize)) -> bool,
) -> Option<Vec<(usize, usize)>> {
    let in_bounds = |(r, c): (usize, usize)| r < rows && c < cols;
    let mut prev: HashMap<(usize, usize), (usize, usize)> = HashMap::new();
    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
    for &s in sources {
        if in_bounds(s) && passable(s) && seen.insert(s) {
            queue.push_back(s);
        }
    }
    while let Some(tile) = queue.pop_front() {
        if is_goal(tile) {
            let mut path = vec![tile];
            let mut cur = tile;
            while let Some(&p) = prev.get(&cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        let (r, c) = tile;
        let neighbors = [(r.wrapping_sub(1), c), (r, c.wrapping_sub(1)), (r, c + 1), (r + 1, c)];
        for next in neighbors {
            if in_bounds(next) && passable(next) && seen.insert(next) {
                prev.insert(next, tile);
                queue.push_back(next);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_from_data_home() {
        let l = Layout::new(2, 2);
        // Data home (0,1): shuttle right to O (0,2), junction hop through
        // (0,0) to (1,0) [measure home of same unit]... and nothing upward.
        let steps = steps_from(&l, QSite::new(0, 1));
        assert!(steps.contains(&MoveStep::Shuttle { from: QSite::new(0, 1), to: QSite::new(0, 2) }));
        assert!(steps.iter().any(|s| matches!(
            s,
            MoveStep::JunctionHop { junction, to, .. }
                if *junction == QSite::new(0, 0) && *to == QSite::new(1, 0)
        )));
    }

    #[test]
    fn route_within_one_arm_is_pure_shuttles() {
        let l = Layout::new(1, 1);
        let r = route(&l, QSite::new(0, 1), QSite::new(0, 3)).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.iter().all(|s| matches!(s, MoveStep::Shuttle { .. })));
        assert_eq!(r[0].from(), QSite::new(0, 1));
        assert_eq!(r[1].to(), QSite::new(0, 3));
    }

    #[test]
    fn route_between_units_crosses_a_junction() {
        let l = Layout::new(2, 2);
        // From unit (0,0) data home to unit (0,1) data home: must cross the
        // junction at (0,4).
        let r = route(&l, l.data_home(0, 0), l.data_home(0, 1)).unwrap();
        assert!(r.iter().any(
            |s| matches!(s, MoveStep::JunctionHop { junction, .. } if *junction == QSite::new(0, 4))
        ));
        // Path continuity.
        for w in r.windows(2) {
            assert_eq!(w[0].to(), w[1].from());
        }
        assert_eq!(r.first().unwrap().from(), l.data_home(0, 0));
        assert_eq!(r.last().unwrap().to(), l.data_home(0, 1));
    }

    #[test]
    fn routes_avoid_blocked_zones() {
        let l = Layout::new(1, 1);
        // Going from (0,1) to (0,3) with (0,2) blocked is impossible on a
        // single unit (there is no alternative path on one arm).
        let mut blocked = HashSet::new();
        blocked.insert(QSite::new(0, 2));
        assert!(route_avoiding(&l, QSite::new(0, 1), QSite::new(0, 3), &blocked).is_none());
        // On a 2x2 grid an alternative exists around the block.
        let l = Layout::new(2, 2);
        let r = route_avoiding(&l, QSite::new(0, 1), QSite::new(0, 3), &blocked).unwrap();
        assert!(r.iter().all(|s| s.to() != QSite::new(0, 2)));
    }

    #[test]
    fn routing_to_or_from_junction_fails() {
        let l = Layout::new(1, 1);
        assert!(route(&l, QSite::new(0, 0), QSite::new(0, 1)).is_none());
        assert!(route(&l, QSite::new(0, 1), QSite::new(0, 0)).is_none());
    }

    #[test]
    fn trivial_route_is_empty() {
        let l = Layout::new(1, 1);
        assert_eq!(route(&l, QSite::new(0, 1), QSite::new(0, 1)).unwrap().len(), 0);
    }

    #[test]
    fn tile_path_finds_shortest_and_respects_blocks() {
        // Unobstructed: straight line along row 0.
        let p = shortest_tile_path(3, 5, &[(0, 0)], &|t| t == (0, 4), &|_| true).unwrap();
        assert_eq!(p.len(), 5);
        // A full column wall forces a detour or fails.
        let wall = |t: (usize, usize)| t.1 != 2;
        assert!(shortest_tile_path(3, 5, &[(0, 0)], &|t| t == (0, 4), &wall).is_none());
        let gap = |t: (usize, usize)| t != (0, 2) && t != (1, 2);
        let p = shortest_tile_path(3, 5, &[(0, 0)], &|t| t == (0, 4), &gap).unwrap();
        assert!(p.contains(&(2, 2)), "must pass through the gap: {p:?}");
        for w in p.windows(2) {
            let dr = w[0].0.abs_diff(w[1].0);
            let dc = w[0].1.abs_diff(w[1].1);
            assert_eq!(dr + dc, 1, "steps are orthogonal: {w:?}");
        }
    }

    #[test]
    fn tile_path_handles_multiple_sources_and_impassable_sources() {
        // The nearer source wins.
        let p = shortest_tile_path(1, 6, &[(0, 0), (0, 4)], &|t| t == (0, 5), &|_| true).unwrap();
        assert_eq!(p, vec![(0, 4), (0, 5)]);
        // Impassable sources are ignored entirely.
        assert!(shortest_tile_path(1, 6, &[(0, 0)], &|t| t == (0, 5), &|t| t != (0, 0)).is_none());
        // A source that is itself a goal yields a single-tile path.
        let p = shortest_tile_path(2, 2, &[(1, 1)], &|t| t == (1, 1), &|_| true).unwrap();
        assert_eq!(p, vec![(1, 1)]);
    }
}

//! Quantum-site addresses and roles.

/// The role a quantum site plays in the trapped-ion architecture
/// (paper Fig. 1: 'M' memory, 'O' operation, 'J' junction).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SiteKind {
    /// A memory trapping zone: ions are stored here between operations.
    Memory,
    /// An operation trapping zone: gate interactions are scheduled here.
    Operation,
    /// A junction connecting a down-ward and a right-ward segment. Ions may
    /// move *through* a junction but never rest on one.
    Junction,
}

/// The address of a quantum site ("qsite") in fine-grained grid coordinates.
///
/// Sites exist only on the lattice lines of the repeating-unit tiling (rows
/// or columns that are multiples of 4); see [`crate::Layout`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QSite {
    /// Fine-grained row coordinate.
    pub row: u32,
    /// Fine-grained column coordinate.
    pub col: u32,
}

impl QSite {
    /// Convenience constructor.
    pub fn new(row: u32, col: u32) -> Self {
        QSite { row, col }
    }

    /// Manhattan distance to another site, in units of the zone pitch.
    pub fn manhattan(&self, other: &QSite) -> u32 {
        self.row.abs_diff(other.row) + self.col.abs_diff(other.col)
    }
}

impl std::fmt::Debug for QSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.row, self.col)
    }
}

impl std::fmt::Display for QSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.row, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance() {
        let a = QSite::new(0, 1);
        let b = QSite::new(4, 3);
        assert_eq!(a.manhattan(&b), 6);
        assert_eq!(b.manhattan(&a), 6);
        assert_eq!(a.manhattan(&a), 0);
    }

    #[test]
    fn display_is_row_dot_col() {
        assert_eq!(QSite::new(8, 13).to_string(), "8.13");
    }
}

//! Ion occupancy tracking on the trapped-ion grid.
//!
//! The [`GridManager`] mirrors the class of the same name in the paper
//! (Appendix B.1): it owns the [`Layout`], hands out qubit identifiers when
//! ions are loaded, and enforces the hardware validity rules that no two
//! ions occupy the same site and that ions never rest on a junction.

use std::collections::HashMap;

use crate::layout::Layout;
use crate::site::{QSite, SiteKind};

/// Identifier of a physical ion/qubit managed by a [`GridManager`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QubitId(pub u32);

/// Errors raised by occupancy bookkeeping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GridError {
    /// The addressed site does not exist on the layout.
    NoSuchSite(QSite),
    /// An ion may not be placed on or rest at a junction.
    RestingOnJunction(QSite),
    /// The target site is already occupied by another ion.
    Occupied(QSite, QubitId),
    /// The named qubit is not (or no longer) present on the grid.
    UnknownQubit(QubitId),
    /// A movement step was requested between non-adjacent zones.
    NotAdjacent(QSite, QSite),
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::NoSuchSite(s) => write!(f, "site {s} does not exist on the layout"),
            GridError::RestingOnJunction(s) => write!(f, "ions may not rest on junction {s}"),
            GridError::Occupied(s, q) => write!(f, "site {s} is already occupied by qubit {q:?}"),
            GridError::UnknownQubit(q) => write!(f, "qubit {q:?} is not on the grid"),
            GridError::NotAdjacent(a, b) => write!(f, "sites {a} and {b} are not adjacent"),
        }
    }
}

impl std::error::Error for GridError {}

/// Owns the grid layout and the current position of every ion.
#[derive(Clone, Debug)]
pub struct GridManager {
    layout: Layout,
    occupancy: HashMap<QSite, QubitId>,
    positions: HashMap<QubitId, QSite>,
    next_id: u32,
}

impl GridManager {
    /// Creates a manager for a grid of `unit_rows × unit_cols` repeating
    /// units with no ions loaded.
    pub fn new(unit_rows: u32, unit_cols: u32) -> Self {
        GridManager {
            layout: Layout::new(unit_rows, unit_cols),
            occupancy: HashMap::new(),
            positions: HashMap::new(),
            next_id: 0,
        }
    }

    /// The underlying layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Number of ions currently on the grid.
    pub fn qubit_count(&self) -> usize {
        self.positions.len()
    }

    /// Loads a new ion at `site` and returns its identifier.
    pub fn place_qubit(&mut self, site: QSite) -> Result<QubitId, GridError> {
        self.check_restable(site)?;
        if let Some(&q) = self.occupancy.get(&site) {
            return Err(GridError::Occupied(site, q));
        }
        let id = QubitId(self.next_id);
        self.next_id += 1;
        self.occupancy.insert(site, id);
        self.positions.insert(id, site);
        Ok(id)
    }

    /// Removes an ion from the grid (e.g. after a destructive measurement
    /// when the zone is recycled).
    pub fn remove_qubit(&mut self, id: QubitId) -> Result<QSite, GridError> {
        let site = self.positions.remove(&id).ok_or(GridError::UnknownQubit(id))?;
        self.occupancy.remove(&site);
        Ok(site)
    }

    /// The ion occupying `site`, if any.
    pub fn qubit_at(&self, site: QSite) -> Option<QubitId> {
        self.occupancy.get(&site).copied()
    }

    /// The current site of ion `id`.
    pub fn position_of(&self, id: QubitId) -> Option<QSite> {
        self.positions.get(&id).copied()
    }

    /// True if `site` exists, is a trapping zone and holds no ion.
    pub fn is_free(&self, site: QSite) -> bool {
        self.layout.is_trapping_zone(site) && !self.occupancy.contains_key(&site)
    }

    /// Relocates ion `id` to the *adjacent* trapping zone `to` (a single
    /// shuttle step). Junction hops are expressed as two shuttle steps by the
    /// routing layer, and the transient junction crossing is validated by the
    /// scheduler, so the destination of any step recorded here must be a
    /// trapping zone.
    pub fn step_qubit(&mut self, id: QubitId, to: QSite) -> Result<(), GridError> {
        let from = self.positions.get(&id).copied().ok_or(GridError::UnknownQubit(id))?;
        self.check_restable(to)?;
        if let Some(&other) = self.occupancy.get(&to) {
            if other != id {
                return Err(GridError::Occupied(to, other));
            }
        }
        // A legal single step ends on an adjacent zone, or on a zone that is
        // two steps away through exactly one junction.
        if !self.is_step_reachable(from, to) {
            return Err(GridError::NotAdjacent(from, to));
        }
        self.occupancy.remove(&from);
        self.occupancy.insert(to, id);
        self.positions.insert(id, to);
        Ok(())
    }

    /// Teleports ion `id` to any free trapping zone without adjacency
    /// checks. Used when re-binding a logical patch after operations whose
    /// movement legality was already validated step-by-step (and in tests).
    pub fn relocate_qubit(&mut self, id: QubitId, to: QSite) -> Result<(), GridError> {
        let from = self.positions.get(&id).copied().ok_or(GridError::UnknownQubit(id))?;
        self.check_restable(to)?;
        if let Some(&other) = self.occupancy.get(&to) {
            if other != id {
                return Err(GridError::Occupied(to, other));
            }
        }
        self.occupancy.remove(&from);
        self.occupancy.insert(to, id);
        self.positions.insert(id, to);
        Ok(())
    }

    /// Snapshot of `(qubit, site)` pairs, sorted by qubit id. Used by the
    /// simulator to bind tableau qubit indices to ions.
    pub fn snapshot(&self) -> Vec<(QubitId, QSite)> {
        let mut v: Vec<_> = self.positions.iter().map(|(&q, &s)| (q, s)).collect();
        v.sort_by_key(|&(q, _)| q);
        v
    }

    fn check_restable(&self, site: QSite) -> Result<(), GridError> {
        match self.layout.site_kind(site) {
            None => Err(GridError::NoSuchSite(site)),
            Some(SiteKind::Junction) => Err(GridError::RestingOnJunction(site)),
            Some(_) => Ok(()),
        }
    }

    fn is_step_reachable(&self, from: QSite, to: QSite) -> bool {
        if from == to {
            return true;
        }
        let neighbors = self.layout.neighbors(from);
        if neighbors.contains(&to) {
            return true;
        }
        // Through exactly one junction: both zones adjacent to the same
        // junction.
        neighbors.iter().any(|&n| {
            self.layout.site_kind(n) == Some(SiteKind::Junction)
                && self.layout.neighbors(n).contains(&to)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn place_and_remove() {
        let mut g = GridManager::new(2, 2);
        let home = g.layout().data_home(0, 0);
        let q = g.place_qubit(home).unwrap();
        assert_eq!(g.qubit_at(home), Some(q));
        assert_eq!(g.position_of(q), Some(home));
        assert_eq!(g.qubit_count(), 1);
        // Double occupancy is rejected.
        assert!(matches!(g.place_qubit(home), Err(GridError::Occupied(_, _))));
        let freed = g.remove_qubit(q).unwrap();
        assert_eq!(freed, home);
        assert!(g.is_free(home));
    }

    #[test]
    fn junctions_are_not_restable() {
        let mut g = GridManager::new(1, 1);
        let err = g.place_qubit(QSite::new(0, 0)).unwrap_err();
        assert!(matches!(err, GridError::RestingOnJunction(_)));
        let err = g.place_qubit(QSite::new(1, 1)).unwrap_err();
        assert!(matches!(err, GridError::NoSuchSite(_)));
    }

    #[test]
    fn step_adjacent_and_through_junction() {
        let mut g = GridManager::new(2, 2);
        let q = g.place_qubit(QSite::new(0, 1)).unwrap();
        // Adjacent shuttle along the horizontal arm.
        g.step_qubit(q, QSite::new(0, 2)).unwrap();
        g.step_qubit(q, QSite::new(0, 3)).unwrap();
        // Through the junction at (0,4) onto the next unit's arm.
        g.step_qubit(q, QSite::new(0, 5)).unwrap();
        assert_eq!(g.position_of(q), Some(QSite::new(0, 5)));
        // Jumping two zones in one step is rejected.
        assert!(matches!(g.step_qubit(q, QSite::new(0, 7)), Err(GridError::NotAdjacent(_, _))));
    }

    #[test]
    fn step_into_occupied_zone_is_rejected() {
        let mut g = GridManager::new(1, 2);
        let a = g.place_qubit(QSite::new(0, 1)).unwrap();
        let _b = g.place_qubit(QSite::new(0, 2)).unwrap();
        assert!(matches!(g.step_qubit(a, QSite::new(0, 2)), Err(GridError::Occupied(_, _))));
    }

    #[test]
    fn snapshot_is_sorted_by_qubit() {
        let mut g = GridManager::new(2, 2);
        let a = g.place_qubit(QSite::new(0, 1)).unwrap();
        let b = g.place_qubit(QSite::new(1, 0)).unwrap();
        let snap = g.snapshot();
        assert_eq!(snap, vec![(a, QSite::new(0, 1)), (b, QSite::new(1, 0))]);
    }
}

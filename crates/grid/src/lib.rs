//! Trapped-ion QCCD grid substrate.
//!
//! The TISCC hardware model (paper Sec. 3.1) arranges trapping zones in an
//! arbitrarily large rectangular grid built from a repeating unit
//! `{M, O, M, J, M, O, M}`: two straight three-zone segments — one pointing
//! down-ward, one pointing right-ward — connected by a junction. Ions (data
//! and syndrome qubits) live on memory/operation zones and are shuttled
//! between zones and through junctions; ions may never rest on a junction.
//!
//! This crate provides:
//! * [`QSite`] / [`SiteKind`] — addresses and roles of quantum sites,
//! * [`Layout`] — the repeating-unit geometry, adjacency and physical size,
//! * [`GridManager`] — ion occupancy tracking with collision checks,
//! * [`path`] — shuttle/junction-hop routing between zones.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod grid;
pub mod layout;
pub mod path;
pub mod site;

pub use grid::{GridError, GridManager, QubitId};
pub use layout::{Layout, ZONE_WIDTH_M};
pub use path::{route, route_avoiding, route_avoiding_with, shortest_tile_path, MoveStep};
pub use site::{QSite, SiteKind};

//! Repeating-unit geometry of the trapped-ion grid.
//!
//! One *unit* at unit-coordinates `(r, c)` contributes the following fine
//! coordinates (paper Sec. 3.1, Fig. 1):
//!
//! ```text
//! (4r, 4c)      J          junction
//! (4r, 4c+1)    M          data-qubit home        ─┐
//! (4r, 4c+2)    O          interaction zone        ├ horizontal arm →
//! (4r, 4c+3)    M          spare memory           ─┘
//! (4r+1, 4c)    M          measure-qubit home     ─┐
//! (4r+2, 4c)    O          interaction zone        ├ vertical arm ↓
//! (4r+3, 4c)    M          spare memory           ─┘
//! ```
//!
//! A fine coordinate hosts a site iff its row or column is a multiple of 4
//! (it lies on a lattice line of the tiling).

use crate::site::{QSite, SiteKind};

/// Width of a single trapping zone in metres (420 µm, paper Sec. 3.2).
pub const ZONE_WIDTH_M: f64 = 420e-6;

/// The geometry of a rectangular grid of repeating units.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Layout {
    unit_rows: u32,
    unit_cols: u32,
}

impl Layout {
    /// A grid of `unit_rows × unit_cols` repeating units.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(unit_rows: u32, unit_cols: u32) -> Self {
        assert!(unit_rows > 0 && unit_cols > 0, "layout must be non-empty");
        Layout { unit_rows, unit_cols }
    }

    /// Number of unit rows.
    pub fn unit_rows(&self) -> u32 {
        self.unit_rows
    }

    /// Number of unit columns.
    pub fn unit_cols(&self) -> u32 {
        self.unit_cols
    }

    /// Extent of the fine-coordinate grid (rows, cols).
    pub fn fine_extent(&self) -> (u32, u32) {
        (4 * self.unit_rows, 4 * self.unit_cols)
    }

    /// True if `site` exists on this layout.
    pub fn contains(&self, site: QSite) -> bool {
        let (rows, cols) = self.fine_extent();
        site.row < rows
            && site.col < cols
            && (site.row.is_multiple_of(4) || site.col.is_multiple_of(4))
    }

    /// The kind of `site`, or `None` if it does not exist on this layout.
    pub fn site_kind(&self, site: QSite) -> Option<SiteKind> {
        if !self.contains(site) {
            return None;
        }
        Some(match (site.row % 4, site.col % 4) {
            (0, 0) => SiteKind::Junction,
            (0, 2) | (2, 0) => SiteKind::Operation,
            _ => SiteKind::Memory,
        })
    }

    /// True if `site` is a trapping zone (memory or operation) where an ion
    /// may rest.
    pub fn is_trapping_zone(&self, site: QSite) -> bool {
        matches!(self.site_kind(site), Some(SiteKind::Memory) | Some(SiteKind::Operation))
    }

    /// The up-to-four orthogonally adjacent sites of `site` that exist.
    pub fn neighbors(&self, site: QSite) -> Vec<QSite> {
        let mut out = Vec::with_capacity(4);
        let candidates = [
            (site.row.wrapping_sub(1), site.col),
            (site.row + 1, site.col),
            (site.row, site.col.wrapping_sub(1)),
            (site.row, site.col + 1),
        ];
        for (r, c) in candidates {
            if r == u32::MAX || c == u32::MAX {
                continue;
            }
            let s = QSite::new(r, c);
            if self.contains(s) {
                out.push(s);
            }
        }
        out
    }

    /// Iterator over every site of the layout, in row-major order.
    pub fn all_sites(&self) -> impl Iterator<Item = QSite> + '_ {
        let (rows, cols) = self.fine_extent();
        (0..rows).flat_map(move |r| {
            (0..cols).map(move |c| QSite::new(r, c)).filter(|&s| self.contains(s))
        })
    }

    /// Total number of sites.
    pub fn site_count(&self) -> usize {
        self.all_sites().count()
    }

    /// Total number of trapping zones (sites that are not junctions).
    pub fn trapping_zone_count(&self) -> usize {
        self.all_sites().filter(|&s| self.is_trapping_zone(s)).count()
    }

    /// Physical area of the grid in square metres: every lattice line cell is
    /// one zone-width wide, so the bounding box is
    /// `(4·unit_rows · w) × (4·unit_cols · w)`.
    pub fn area_m2(&self) -> f64 {
        let (rows, cols) = self.fine_extent();
        (rows as f64 * ZONE_WIDTH_M) * (cols as f64 * ZONE_WIDTH_M)
    }

    /// Home site of the data qubit hosted by unit `(unit_row, unit_col)`:
    /// the memory zone of the horizontal arm adjacent to the junction.
    pub fn data_home(&self, unit_row: u32, unit_col: u32) -> QSite {
        debug_assert!(unit_row < self.unit_rows && unit_col < self.unit_cols);
        QSite::new(4 * unit_row, 4 * unit_col + 1)
    }

    /// Home site of the syndrome/measure qubit hosted by unit
    /// `(unit_row, unit_col)`: the memory zone of the vertical arm adjacent
    /// to the junction.
    pub fn measure_home(&self, unit_row: u32, unit_col: u32) -> QSite {
        debug_assert!(unit_row < self.unit_rows && unit_col < self.unit_cols);
        QSite::new(4 * unit_row + 1, 4 * unit_col)
    }

    /// The spare memory zone at the end of the horizontal arm of unit
    /// `(unit_row, unit_col)`; used as a parking spot during patch
    /// translations (Swap Left / Move Right).
    pub fn spare_horizontal(&self, unit_row: u32, unit_col: u32) -> QSite {
        QSite::new(4 * unit_row, 4 * unit_col + 3)
    }

    /// The spare memory zone at the end of the vertical arm of unit
    /// `(unit_row, unit_col)`.
    pub fn spare_vertical(&self, unit_row: u32, unit_col: u32) -> QSite {
        QSite::new(4 * unit_row + 3, 4 * unit_col)
    }

    /// The unit `(row, col)` owning a fine-coordinate site.
    pub fn unit_of(&self, site: QSite) -> (u32, u32) {
        (site.row / 4, site.col / 4)
    }

    /// ASCII rendering of the layout with site kinds (`J`, `O`, `M`) and `.`
    /// for non-existent positions. Intended for examples and reports
    /// reproducing the look of paper Fig. 1.
    pub fn render_ascii(&self) -> String {
        let (rows, cols) = self.fine_extent();
        let mut out = String::with_capacity((rows * (cols + 1)) as usize);
        for r in 0..rows {
            for c in 0..cols {
                let ch = match self.site_kind(QSite::new(r, c)) {
                    Some(SiteKind::Junction) => 'J',
                    Some(SiteKind::Operation) => 'O',
                    Some(SiteKind::Memory) => 'M',
                    None => '.',
                };
                out.push(ch);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_site_kinds_match_repeating_pattern() {
        let l = Layout::new(2, 2);
        assert_eq!(l.site_kind(QSite::new(0, 0)), Some(SiteKind::Junction));
        assert_eq!(l.site_kind(QSite::new(0, 1)), Some(SiteKind::Memory));
        assert_eq!(l.site_kind(QSite::new(0, 2)), Some(SiteKind::Operation));
        assert_eq!(l.site_kind(QSite::new(0, 3)), Some(SiteKind::Memory));
        assert_eq!(l.site_kind(QSite::new(1, 0)), Some(SiteKind::Memory));
        assert_eq!(l.site_kind(QSite::new(2, 0)), Some(SiteKind::Operation));
        assert_eq!(l.site_kind(QSite::new(3, 0)), Some(SiteKind::Memory));
        assert_eq!(l.site_kind(QSite::new(4, 4)), Some(SiteKind::Junction));
        // Interior of a unit does not host sites.
        assert_eq!(l.site_kind(QSite::new(1, 1)), None);
        assert_eq!(l.site_kind(QSite::new(3, 3)), None);
    }

    #[test]
    fn each_unit_contributes_seven_sites() {
        // The repeating unit is {M, O, M, J, M, O, M}: 7 sites per unit.
        for (r, c) in [(1, 1), (2, 3), (4, 4)] {
            let l = Layout::new(r, c);
            assert_eq!(l.site_count(), 7 * (r * c) as usize, "{r}x{c}");
            assert_eq!(l.trapping_zone_count(), 6 * (r * c) as usize);
        }
    }

    #[test]
    fn neighbors_follow_lattice_lines() {
        let l = Layout::new(2, 2);
        // A junction has up to 4 neighbors.
        let n = l.neighbors(QSite::new(4, 4));
        assert_eq!(n.len(), 4);
        // The spare memory site at the end of a horizontal arm touches the
        // next junction to the right if it exists, else only its own arm.
        let n = l.neighbors(QSite::new(0, 3));
        assert!(n.contains(&QSite::new(0, 2)));
        assert!(n.contains(&QSite::new(0, 4)));
        assert_eq!(n.len(), 2);
        // Interior-of-unit coordinates have no neighbors listed from them,
        // and are not neighbors of lattice sites.
        assert!(!l.neighbors(QSite::new(0, 1)).contains(&QSite::new(1, 1)));
    }

    #[test]
    fn homes_are_memory_zones() {
        let l = Layout::new(3, 3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(l.site_kind(l.data_home(r, c)), Some(SiteKind::Memory));
                assert_eq!(l.site_kind(l.measure_home(r, c)), Some(SiteKind::Memory));
                assert_eq!(l.site_kind(l.spare_horizontal(r, c)), Some(SiteKind::Memory));
                assert_eq!(l.site_kind(l.spare_vertical(r, c)), Some(SiteKind::Memory));
            }
        }
    }

    #[test]
    fn area_scales_with_units() {
        let l = Layout::new(1, 1);
        let a1 = l.area_m2();
        let l2 = Layout::new(2, 2);
        assert!((l2.area_m2() - 4.0 * a1).abs() < 1e-12);
        // 4 zones * 420 µm = 1.68 mm per side for a single unit.
        assert!((a1 - (4.0 * ZONE_WIDTH_M) * (4.0 * ZONE_WIDTH_M)).abs() < 1e-15);
    }

    #[test]
    fn render_ascii_has_expected_shape() {
        let l = Layout::new(1, 1);
        let art = l.render_ascii();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "JMOM");
        assert_eq!(lines[1], "M...");
        assert_eq!(lines[2], "O...");
        assert_eq!(lines[3], "M...");
    }
}

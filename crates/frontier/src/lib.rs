//! Pareto-frontier search over the TISCC design space.
//!
//! `tiscc estimate` answers one question — "what does this program cost
//! on this configuration?" — for one floorplan, one budget and one set of
//! profiles at a time. This crate answers the planning question instead:
//! over a whole slice of the (layout × code distance × hardware profile)
//! design space, **which configurations are worth considering at all?**
//!
//! - [`spec::FrontierSpec`] names the slice; normalization dedupes the
//!   axes and resolves the odd-distance range.
//! - [`engine::run_frontier`] expands the job matrix, compiles each
//!   distinct `(instruction, d, profile)` row exactly once (compilation
//!   is layout-independent), and prices every configuration.
//! - [`pareto::pareto_flags`] marks the non-dominated points on the
//!   (machine size, wall clock) plane; everything else is provably a
//!   waste of hardware or time.
//! - [`cache::DiskCache`] persists compiled rows across process runs in a
//!   versioned, corruption-tolerant on-disk store, so the second
//!   invocation of a big search performs zero fresh compiles.
//! - [`emit`] renders the matrix and the frontier as CSV/JSON with
//!   shortest-round-trip floats (bit-exact re-parse).
//! - [`serve`] answers newline-delimited JSON estimate/frontier requests
//!   against one warm in-process compiler — the `tiscc serve
//!   --stdin-json` loop.
//!
//! ```
//! use tiscc_estimator::compiler::{Compiler, EstimateMode};
//! use tiscc_frontier::engine::run_frontier;
//! use tiscc_frontier::spec::FrontierSpec;
//! use tiscc_hw::HardwareSpec;
//! use tiscc_program::{examples, LayoutSpec};
//!
//! let program = examples::bell_pair();
//! let spec = FrontierSpec::new(
//!     vec![LayoutSpec::single_lane(), LayoutSpec::checkerboard().with_grid(4, 4)],
//!     vec![HardwareSpec::h1()],
//! )
//! .with_distances(3, 7)
//! .with_mode(EstimateMode::Analytic);
//! let report = run_frontier(&program, &spec, &Compiler::new(), None).unwrap();
//! assert_eq!(report.points.len(), 2 * 3);
//! assert!(!report.frontier().is_empty());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod emit;
pub mod engine;
pub mod pareto;
pub mod serve;
pub mod spec;

pub use cache::{DiskCache, CACHE_FORMAT_VERSION};
pub use emit::{frontier_to_csv, matrix_from_csv, matrix_to_csv, report_to_json, stats_to_json};
pub use engine::{run_frontier, run_frontier_with, FrontierPoint, FrontierReport, FrontierStats};
pub use pareto::{pareto_flags, pareto_flags_bruteforce};
pub use serve::{handle_line, parse_layout_entry, split_list, ServeState, MAX_REQUEST_BYTES};
pub use spec::{FrontierError, FrontierSpec, NormalizedSpec};

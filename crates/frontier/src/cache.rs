//! A persistent on-disk compile cache.
//!
//! Rows produced by the estimator are stored one-per-file under a
//! versioned directory:
//!
//! ```text
//! <root>/v1/<instruction>-dx3-dz3-dt3-<fingerprint>-analytic.entry
//! ```
//!
//! Each entry holds a two-line header (format version, the entry's own
//! file stem) followed by the [`ResourceRow`] record. Every field a row
//! carries round-trips **bit-for-bit** through the record renderer, so a
//! warm run reproduces a cold run exactly.
//!
//! The cache is corruption-tolerant by construction: an entry is used only
//! if the whole file parses, its header stem matches its file name, and
//! the decoded row agrees with the distances encoded in the stem.
//! Anything else is counted as corrupt, ignored, and recomputed — a bad
//! byte can cost time, never correctness. Bumping
//! [`CACHE_FORMAT_VERSION`] changes the directory name, so old-format
//! entries are invisible to new binaries rather than misread.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use tiscc_estimator::compiler::EstimateMode;
use tiscc_estimator::sweep::SweepKey;
use tiscc_estimator::tables::ResourceRow;

use crate::spec::FrontierError;

/// Version of the on-disk entry format. Bump on any change to the entry
/// layout; each version lives in its own `v<N>/` subdirectory, so a
/// mismatched cache directory is simply empty, never misinterpreted.
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// A persistent, versioned, corruption-tolerant store of estimator rows
/// keyed by `(`[`SweepKey`]`, `[`EstimateMode`]`)`.
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
    entries: Mutex<HashMap<String, ResourceRow>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    corrupt: usize,
}

impl DiskCache {
    /// Opens (creating if needed) the cache under `root` at the current
    /// [`CACHE_FORMAT_VERSION`], loading every intact entry into memory.
    pub fn open(root: &Path) -> Result<DiskCache, FrontierError> {
        DiskCache::open_versioned(root, CACHE_FORMAT_VERSION)
    }

    /// [`DiskCache::open`] pinned to an explicit format version. Exposed
    /// so tests can demonstrate that a version bump orphans old entries.
    pub fn open_versioned(root: &Path, version: u32) -> Result<DiskCache, FrontierError> {
        let dir = root.join(format!("v{version}"));
        fs::create_dir_all(&dir)
            .map_err(|e| FrontierError::Cache(format!("cannot create {}: {e}", dir.display())))?;
        let mut entries = HashMap::new();
        let mut corrupt = 0usize;
        let listing = fs::read_dir(&dir)
            .map_err(|e| FrontierError::Cache(format!("cannot list {}: {e}", dir.display())))?;
        for dirent in listing {
            let path = match dirent {
                Ok(d) => d.path(),
                Err(_) => {
                    corrupt += 1;
                    continue;
                }
            };
            if path.extension().and_then(|e| e.to_str()) != Some("entry") {
                continue;
            }
            let stem = match path.file_stem().and_then(|s| s.to_str()) {
                Some(s) => s.to_string(),
                None => {
                    corrupt += 1;
                    continue;
                }
            };
            match fs::read_to_string(&path).ok().and_then(|t| decode_entry(&stem, &t, version)) {
                Some(row) => {
                    entries.insert(stem, row);
                }
                None => corrupt += 1,
            }
        }
        Ok(DiskCache {
            dir,
            entries: Mutex::new(entries),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            corrupt,
        })
    }

    /// The versioned directory entries live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of intact entries currently held.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries that failed to decode during [`DiskCache::open`] and were
    /// set aside for recomputation.
    pub fn corrupt_entries(&self) -> usize {
        self.corrupt
    }

    /// Lookups served from disk-loaded entries so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found no intact entry so far.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Returns the stored row for `(key, mode)`, if an intact entry
    /// exists.
    pub fn get(&self, key: &SweepKey, mode: EstimateMode) -> Option<ResourceRow> {
        let row = self.entries.lock().unwrap().get(&entry_stem(key, mode)).cloned();
        match &row {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        row
    }

    /// Persists a freshly computed row. The entry is written to a
    /// temporary file and atomically renamed into place, so readers never
    /// observe a half-written entry even if the process dies mid-write.
    pub fn insert(
        &self,
        key: &SweepKey,
        mode: EstimateMode,
        row: &ResourceRow,
    ) -> Result<(), FrontierError> {
        let stem = entry_stem(key, mode);
        let text = encode_entry(&stem, row);
        let tmp = self.dir.join(format!("{stem}.tmp"));
        let dest = self.dir.join(format!("{stem}.entry"));
        fs::write(&tmp, &text)
            .map_err(|e| FrontierError::Cache(format!("cannot write {}: {e}", tmp.display())))?;
        fs::rename(&tmp, &dest)
            .map_err(|e| FrontierError::Cache(format!("cannot rename {}: {e}", dest.display())))?;
        self.entries.lock().unwrap().insert(stem, row.clone());
        Ok(())
    }
}

/// The file stem an entry for `(key, mode)` is stored under. Built only
/// from filename-safe pieces: instruction ids are `snake_case`, the
/// fingerprint is fixed-width hex, and the mode tag is a lowercase word.
fn entry_stem(key: &SweepKey, mode: EstimateMode) -> String {
    format!(
        "{}-dx{}-dz{}-dt{}-{}-{}",
        key.instruction.id(),
        key.dx,
        key.dz,
        key.dt,
        key.spec,
        mode.name()
    )
}

fn encode_entry(stem: &str, row: &ResourceRow) -> String {
    format!("tiscc-frontier-cache v{CACHE_FORMAT_VERSION}\nstem={stem}\n{}", row.to_record())
}

/// Decodes an entry file, returning `None` unless every check passes:
/// the version header matches, the recorded stem matches the file name
/// (catching renamed or cross-copied entries), the row record parses, and
/// the row's distances agree with the stem.
fn decode_entry(stem: &str, text: &str, version: u32) -> Option<ResourceRow> {
    let (header, rest) = text.split_once('\n')?;
    if header != format!("tiscc-frontier-cache v{version}") {
        return None;
    }
    let (stem_line, record) = rest.split_once('\n')?;
    if stem_line.strip_prefix("stem=")? != stem {
        return None;
    }
    let row = ResourceRow::from_record(record).ok()?;
    if !stem.contains(&format!("-dx{}-dz{}-", row.dx, row.dz)) {
        return None;
    }
    Some(row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiscc_core::Instruction;
    use tiscc_estimator::compiler::{CompileRequest, Compiler};
    use tiscc_hw::HardwareSpec;

    fn scratch_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let id = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("tiscc-frontier-cache-{tag}-{}-{id}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_row() -> (SweepKey, ResourceRow) {
        let spec = HardwareSpec::h1();
        let request = CompileRequest::new(Instruction::PrepareZ, 3, 3, 3).with_spec(spec);
        let compiler = Compiler::default();
        let row = compiler.estimate_row(&request, EstimateMode::Compiled).unwrap();
        (request.key(), row)
    }

    #[test]
    fn entries_survive_reopen_bit_for_bit() {
        let root = scratch_dir("reopen");
        let (key, row) = sample_row();
        let cache = DiskCache::open(&root).unwrap();
        assert!(cache.get(&key, EstimateMode::Compiled).is_none());
        assert_eq!(cache.misses(), 1);
        cache.insert(&key, EstimateMode::Compiled, &row).unwrap();

        let warm = DiskCache::open(&root).unwrap();
        assert_eq!(warm.len(), 1);
        assert_eq!(warm.corrupt_entries(), 0);
        let loaded = warm.get(&key, EstimateMode::Compiled).unwrap();
        assert_eq!(warm.hits(), 1);
        assert_eq!(loaded, row);
        assert_eq!(
            loaded.resources.execution_time_s.to_bits(),
            row.resources.execution_time_s.to_bits(),
            "durations must round-trip bit-for-bit, not just approximately"
        );
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn modes_are_cached_separately() {
        let root = scratch_dir("modes");
        let (key, row) = sample_row();
        let cache = DiskCache::open(&root).unwrap();
        cache.insert(&key, EstimateMode::Analytic, &row).unwrap();
        assert!(cache.get(&key, EstimateMode::Compiled).is_none());
        assert!(cache.get(&key, EstimateMode::Analytic).is_some());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn version_mismatch_orphans_entries() {
        let root = scratch_dir("version");
        let (key, row) = sample_row();
        let cache = DiskCache::open(&root).unwrap();
        cache.insert(&key, EstimateMode::Compiled, &row).unwrap();
        drop(cache);

        let next = DiskCache::open_versioned(&root, CACHE_FORMAT_VERSION + 1).unwrap();
        assert!(next.is_empty(), "a new format version must not see old entries");
        assert!(next.get(&key, EstimateMode::Compiled).is_none());
        // The old version's entries are untouched on disk.
        let old = DiskCache::open(&root).unwrap();
        assert_eq!(old.len(), 1);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupt_entries_are_counted_and_skipped() {
        let root = scratch_dir("corrupt");
        let (key, row) = sample_row();
        let cache = DiskCache::open(&root).unwrap();
        cache.insert(&key, EstimateMode::Compiled, &row).unwrap();
        let dir = cache.dir().to_path_buf();
        drop(cache);

        // Truncate the real entry mid-record and add one file of garbage.
        let entry = fs::read_dir(&dir)
            .unwrap()
            .map(|d| d.unwrap().path())
            .find(|p| p.extension().and_then(|e| e.to_str()) == Some("entry"));
        let entry = entry.unwrap();
        let text = fs::read_to_string(&entry).unwrap();
        fs::write(&entry, &text[..text.len() / 2]).unwrap();
        fs::write(dir.join("garbage.entry"), "not a cache entry at all\n").unwrap();

        let reopened = DiskCache::open(&root).unwrap();
        assert_eq!(reopened.corrupt_entries(), 2);
        assert!(reopened.is_empty());
        assert!(reopened.get(&key, EstimateMode::Compiled).is_none(), "bad entries never served");

        // Recomputing and re-inserting heals the cache in place.
        reopened.insert(&key, EstimateMode::Compiled, &row).unwrap();
        let healed = DiskCache::open(&root).unwrap();
        assert_eq!(healed.corrupt_entries(), 1, "only the pure-garbage file remains corrupt");
        assert_eq!(healed.get(&key, EstimateMode::Compiled).unwrap(), row);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn renamed_entries_are_rejected() {
        let root = scratch_dir("renamed");
        let (key, row) = sample_row();
        let cache = DiskCache::open(&root).unwrap();
        cache.insert(&key, EstimateMode::Compiled, &row).unwrap();
        let dir = cache.dir().to_path_buf();
        drop(cache);

        // Copy the intact entry under a different instruction's stem: the
        // stem header check must refuse to serve it as that instruction.
        let src = dir.join(format!("{}.entry", entry_stem(&key, EstimateMode::Compiled)));
        let forged_stem = entry_stem(&key, EstimateMode::Compiled).replace("prepare_z", "idle");
        fs::copy(&src, dir.join(format!("{forged_stem}.entry"))).unwrap();

        let reopened = DiskCache::open(&root).unwrap();
        assert_eq!(reopened.corrupt_entries(), 1);
        assert_eq!(reopened.len(), 1, "the genuine entry still loads");
        fs::remove_dir_all(&root).unwrap();
    }
}

//! The `tiscc serve --stdin-json` protocol: newline-delimited JSON
//! requests answered by newline-delimited JSON responses, estimating
//! against one warm in-process [`Compiler`] (and, optionally, one
//! persistent [`DiskCache`]) for the life of the process.
//!
//! Requests are **flat** JSON objects — every value is a string, number,
//! boolean or null; lists (layouts, profiles) travel as comma-separated
//! strings, exactly like their CLI flags:
//!
//! ```text
//! {"cmd":"ping"}
//! {"cmd":"estimate","program":"adder.tql","budget":1e-9,"profiles":"h1"}
//! {"cmd":"frontier","program":"adder.tql","layouts":"row,checkerboard",
//!  "dmin":3,"dmax":13,"profiles":"h1,projected","mode":"analytic"}
//! {"op":"metrics"}
//! ```
//!
//! `"op"` is accepted as an alias for `"cmd"`. Every response is one
//! line: `{"ok":true,...}` on success,
//! `{"ok":false,"error":"...","kind":"..."}` on failure, where `kind` is
//! one of `oversized_line` (the line exceeds [`MAX_REQUEST_BYTES`]),
//! `malformed_json`, `unknown_op` or `bad_request`. A malformed line
//! never kills the server — it yields an error response and the loop
//! continues.
//!
//! The state keeps an always-on [`Telemetry`] recorder: every request
//! bumps `serve.requests` (and `serve.requests.<op>` for known ops),
//! every error bumps `serve.errors` and `serve.errors.<kind>`, and
//! request latency accrues in `serve.request_us_total`. The `metrics`
//! verb reports these counters together with the warm compiler-memo and
//! persistent-cache statistics, so a session's cache behaviour is
//! observable without scraping stderr.

use std::path::PathBuf;
use std::time::Instant;

use tiscc_estimator::compiler::{Compiler, EstimateMode};
use tiscc_estimator::program::{estimate_program_with, ProgramEstimateSpec};
use tiscc_hw::HardwareSpec;
use tiscc_program::{ErrorModel, LayoutSpec, LogicalProgram};
use tiscc_telemetry::Telemetry;

use crate::cache::DiskCache;
use crate::emit::{json_f64, json_string};
use crate::engine::run_frontier_with;
use crate::spec::FrontierSpec;

/// Longest accepted request line in bytes; longer lines are answered with
/// an `oversized_line` error without being parsed.
pub const MAX_REQUEST_BYTES: usize = 64 * 1024;

/// The state a serve loop holds across requests: the warm compiler memo,
/// the optional persistent cache, and the session's telemetry recorder.
pub struct ServeState {
    /// The shared compiler; its memo makes repeated requests cheap.
    pub compiler: Compiler,
    /// The persistent cache, when the server was started with a cache dir.
    pub disk: Option<DiskCache>,
    /// Always-on session telemetry: request/error counters and per-request
    /// spans (span recording stops at the recorder's cap, counters never
    /// do). The `metrics` verb reads from here.
    pub tel: Telemetry,
}

impl ServeState {
    /// A fresh server state with no persistent cache.
    pub fn new(disk: Option<DiskCache>) -> ServeState {
        ServeState { compiler: Compiler::new(), disk, tel: Telemetry::new_enabled() }
    }
}

/// A structured serve-loop failure: a stable machine-readable `kind`
/// plus a human-readable message.
struct ServeError {
    kind: &'static str,
    message: String,
}

impl ServeError {
    fn bad_request(message: String) -> ServeError {
        ServeError { kind: "bad_request", message }
    }
}

/// Handles one request line, returning exactly one JSON response line
/// (without a trailing newline). Never panics on malformed input.
pub fn handle_line(line: &str, state: &ServeState) -> String {
    let started = Instant::now();
    state.tel.add("serve.requests", 1);
    let result = handle(line, state);
    let elapsed_us = started.elapsed().as_secs_f64() * 1e6;
    state.tel.add("serve.request_us_total", elapsed_us as u64);
    state.tel.gauge("serve.last_request_us", elapsed_us);
    match result {
        Ok(body) => body,
        Err(e) => {
            state.tel.add("serve.errors", 1);
            state.tel.add(&format!("serve.errors.{}", e.kind), 1);
            format!(
                "{{\"ok\":false,\"error\":{},\"kind\":{}}}",
                json_string(&e.message),
                json_string(e.kind)
            )
        }
    }
}

fn handle(line: &str, state: &ServeState) -> Result<String, ServeError> {
    if line.len() > MAX_REQUEST_BYTES {
        return Err(ServeError {
            kind: "oversized_line",
            message: format!("request line is {} bytes (limit {MAX_REQUEST_BYTES})", line.len()),
        });
    }
    let fields =
        parse_flat_json(line).map_err(|message| ServeError { kind: "malformed_json", message })?;
    let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    // "op" is an alias for "cmd"; "cmd" wins when both are present.
    let cmd = match get("cmd").or_else(|| get("op")) {
        Some(JsonValue::Str(s)) => s.as_str(),
        Some(_) => return Err(ServeError::bad_request("\"cmd\" must be a string".to_string())),
        None => return Err(ServeError::bad_request("request is missing \"cmd\"".to_string())),
    };
    match cmd {
        "ping" => {
            state.tel.add("serve.requests.ping", 1);
            Ok(format!(
                "{{\"ok\":true,\"reply\":\"pong\",\"cache_entries\":{}}}",
                state.disk.as_ref().map_or(0, |c| c.len())
            ))
        }
        "metrics" => {
            state.tel.add("serve.requests.metrics", 1);
            Ok(handle_metrics(state))
        }
        "estimate" => {
            state.tel.add("serve.requests.estimate", 1);
            let span = state.tel.root("estimate");
            handle_estimate(&fields, state, &span).map_err(ServeError::bad_request)
        }
        "frontier" => {
            state.tel.add("serve.requests.frontier", 1);
            let span = state.tel.root("frontier");
            handle_frontier(&fields, state, &span).map_err(ServeError::bad_request)
        }
        other => Err(ServeError {
            kind: "unknown_op",
            message: format!(
                "unknown cmd {other:?} (expected \"ping\", \"estimate\", \"frontier\" or \
                 \"metrics\")"
            ),
        }),
    }
}

/// Renders the `metrics` response: session request/error counters from
/// the telemetry registry plus the live compiler-memo and
/// persistent-cache statistics. Counters are monotonically increasing
/// over a session (the reply counts the `metrics` request itself).
fn handle_metrics(state: &ServeState) -> String {
    let tel = &state.tel;
    format!(
        "{{\"ok\":true,\"requests\":{},\"requests_ping\":{},\"requests_estimate\":{},\
         \"requests_frontier\":{},\"requests_metrics\":{},\"errors\":{},\
         \"errors_malformed_json\":{},\"errors_unknown_op\":{},\"errors_oversized_line\":{},\
         \"errors_bad_request\":{},\"request_us_total\":{},\"compile_cache_hits\":{},\
         \"compile_cache_misses\":{},\"compile_cache_entries\":{},\"analytic_captures\":{},\
         \"disk_entries\":{},\"disk_corrupt\":{}}}",
        tel.counter("serve.requests"),
        tel.counter("serve.requests.ping"),
        tel.counter("serve.requests.estimate"),
        tel.counter("serve.requests.frontier"),
        tel.counter("serve.requests.metrics"),
        tel.counter("serve.errors"),
        tel.counter("serve.errors.malformed_json"),
        tel.counter("serve.errors.unknown_op"),
        tel.counter("serve.errors.oversized_line"),
        tel.counter("serve.errors.bad_request"),
        tel.counter("serve.request_us_total"),
        state.compiler.cache().hits(),
        state.compiler.cache().misses(),
        state.compiler.cache().len(),
        state.compiler.analytic_captures(),
        state.disk.as_ref().map_or(0, |c| c.len()),
        state.disk.as_ref().map_or(0, |c| c.corrupt_entries()),
    )
}

fn load_program(fields: &[(String, JsonValue)]) -> Result<LogicalProgram, String> {
    let path = match fields.iter().find(|(k, _)| k == "program") {
        Some((_, JsonValue::Str(s))) => s.clone(),
        Some(_) => return Err("\"program\" must be a path string".to_string()),
        None => return Err("request is missing \"program\"".to_string()),
    };
    let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let stem = PathBuf::from(&path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "program".to_string());
    LogicalProgram::parse(stem, &text).map_err(|e| format!("{path}:{e}"))
}

fn field_f64(fields: &[(String, JsonValue)], name: &str, default: f64) -> Result<f64, String> {
    match fields.iter().find(|(k, _)| k == name) {
        None => Ok(default),
        Some((_, JsonValue::Num(x))) => Ok(*x),
        Some(_) => Err(format!("{name:?} must be a number")),
    }
}

fn field_usize(
    fields: &[(String, JsonValue)],
    name: &str,
    default: usize,
) -> Result<usize, String> {
    let x = field_f64(fields, name, default as f64)?;
    if x.fract() != 0.0 || x < 0.0 || x > usize::MAX as f64 {
        return Err(format!("{name:?} must be a non-negative integer"));
    }
    Ok(x as usize)
}

fn field_str<'a>(
    fields: &'a [(String, JsonValue)],
    name: &str,
    default: &'a str,
) -> Result<&'a str, String> {
    match fields.iter().find(|(k, _)| k == name) {
        None => Ok(default),
        Some((_, JsonValue::Str(s))) => Ok(s.as_str()),
        Some(_) => Err(format!("{name:?} must be a string")),
    }
}

fn parse_mode(name: &str) -> Result<EstimateMode, String> {
    name.parse::<EstimateMode>().map_err(|e| e.to_string())
}

/// Splits a comma-separated list field: entries are trimmed, empties
/// dropped, and duplicates removed (first occurrence wins). An
/// effectively empty list is an error naming the field.
pub fn split_list(name: &str, raw: &str) -> Result<Vec<String>, String> {
    let mut out: Vec<String> = Vec::new();
    for entry in raw.split(',') {
        let entry = entry.trim();
        if !entry.is_empty() && !out.iter().any(|e| e == entry) {
            out.push(entry.to_string());
        }
    }
    if out.is_empty() {
        return Err(format!("{name} list is empty (got {raw:?})"));
    }
    Ok(out)
}

fn parse_profiles(raw: &str) -> Result<Vec<HardwareSpec>, String> {
    split_list("profiles", raw)?
        .iter()
        .map(|name| HardwareSpec::by_name(name).map_err(|e| e.to_string()))
        .collect()
}

/// Parses one layout entry: a strategy name, optionally suffixed with an
/// explicit grid as `name@RxC` (e.g. `checkerboard@8x8`).
pub fn parse_layout_entry(entry: &str) -> Result<LayoutSpec, String> {
    let (name, grid) = match entry.split_once('@') {
        Some((name, grid)) => (name, Some(grid)),
        None => (entry, None),
    };
    let mut layout = LayoutSpec::by_name(name).map_err(|e| e.to_string())?;
    if let Some(grid) = grid {
        let bad = || format!("layout {entry:?}: grid must be ROWSxCOLS (e.g. 8x8)");
        let (rows, cols) = grid.split_once(['x', 'X']).ok_or_else(bad)?;
        let rows: usize = rows.trim().parse().map_err(|_| bad())?;
        let cols: usize = cols.trim().parse().map_err(|_| bad())?;
        if rows == 0 || cols == 0 {
            return Err(bad());
        }
        layout = layout.with_grid(rows, cols);
    }
    Ok(layout)
}

fn model_from(fields: &[(String, JsonValue)]) -> Result<ErrorModel, String> {
    let defaults = ErrorModel::default();
    Ok(ErrorModel {
        p_physical: field_f64(fields, "p_phys", defaults.p_physical)?,
        p_threshold: field_f64(fields, "p_th", defaults.p_threshold)?,
        prefactor: field_f64(fields, "prefactor", defaults.prefactor)?,
    })
}

fn handle_estimate(
    fields: &[(String, JsonValue)],
    state: &ServeState,
    span: &tiscc_telemetry::Span,
) -> Result<String, String> {
    let program = load_program(fields)?;
    let layout = parse_layout_entry(field_str(fields, "layout", "lane")?)?;
    let spec = ProgramEstimateSpec {
        budget: field_f64(fields, "budget", 1e-9)?,
        model: model_from(fields)?,
        profiles: parse_profiles(field_str(fields, "profiles", "h1")?)?,
        d_max: field_usize(fields, "dmax", 49)?,
        layout,
        mode: parse_mode(field_str(fields, "mode", "compiled")?)?,
    };
    let est =
        estimate_program_with(&program, &spec, &state.compiler, span).map_err(|e| e.to_string())?;
    let mut out = format!(
        "{{\"ok\":true,\"program\":{},\"logical_qubits\":{},\"rows\":[",
        json_string(&est.program),
        est.logical_qubits
    );
    for (i, row) in est.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"profile\":{},\"d\":{},\"error\":{},\"duration_s\":{},\"trapping_zones\":{},\
             \"qubit_rounds\":{}}}",
            json_string(&row.profile),
            row.distance,
            json_f64(row.achieved_error),
            json_f64(row.duration_s),
            row.trapping_zones,
            row.qubit_rounds
        ));
    }
    out.push_str("]}");
    Ok(out)
}

fn handle_frontier(
    fields: &[(String, JsonValue)],
    state: &ServeState,
    span: &tiscc_telemetry::Span,
) -> Result<String, String> {
    let program = load_program(fields)?;
    let layouts = split_list("layouts", field_str(fields, "layouts", "lane")?)?
        .iter()
        .map(|e| parse_layout_entry(e))
        .collect::<Result<Vec<_>, _>>()?;
    let spec = FrontierSpec {
        layouts,
        d_min: field_usize(fields, "dmin", 3)?,
        d_max: field_usize(fields, "dmax", 13)?,
        profiles: parse_profiles(field_str(fields, "profiles", "h1")?)?,
        mode: parse_mode(field_str(fields, "mode", "compiled")?)?,
        model: model_from(fields)?,
    };
    let report = run_frontier_with(&program, &spec, &state.compiler, state.disk.as_ref(), span)
        .map_err(|e| e.to_string())?;
    let frontier = report.frontier();
    let mut out = format!(
        "{{\"ok\":true,\"program\":{},\"matrix_points\":{},\"disk_hits\":{},\"computed\":{},\
         \"analytic_captures\":{},\"frontier\":[",
        json_string(&report.program),
        report.points.len(),
        report.stats.disk_hits,
        report.stats.computed,
        report.stats.analytic_captures
    );
    for (i, p) in frontier.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"layout\":{},\"d\":{},\"profile\":{},\"physical_qubits\":{},\"duration_s\":{},\
             \"error\":{}}}",
            json_string(p.layout.strategy.name()),
            p.d,
            json_string(&p.profile),
            p.physical_qubits,
            json_f64(p.duration_s),
            json_f64(p.error)
        ));
    }
    out.push_str("]}");
    Ok(out)
}

/// A value of a flat JSON object: string, number, boolean or null —
/// nested objects and arrays are deliberately out of protocol.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// A JSON string (escapes decoded).
    Str(String),
    /// A JSON number.
    Num(f64),
    /// `true` or `false`.
    Bool(bool),
    /// `null`.
    Null,
}

/// Parses a single flat JSON object (`{"key":value,...}`) into its fields
/// in source order. Duplicate keys are rejected.
pub fn parse_flat_json(text: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    p.expect(b'{')?;
    let mut fields: Vec<(String, JsonValue)> = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?}"));
            }
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.value()?;
            fields.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => return Err("expected ',' or '}' in object".to_string()),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing characters after the JSON object".to_string());
    }
    Ok(fields)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            _ => Err(format!("expected {:?}", want as char)),
        }
    }

    fn literal(&mut self, text: &str) -> bool {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') if self.literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(JsonValue::Bool(false)),
            Some(b'n') if self.literal("null") => Ok(JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b'{' | b'[') => {
                Err("nested objects/arrays are not part of the flat protocol".to_string())
            }
            _ => Err("expected a JSON value".to_string()),
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(JsonValue::Num).map_err(|_| format!("malformed number {text:?}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"').map_err(|_| "expected a string".to_string())?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err("truncated \\u escape".to_string());
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| "malformed \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "malformed \\u escape".to_string())?;
                        self.pos += 4;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| "invalid \\u code point".to_string())?,
                        );
                    }
                    other => return Err(format!("unsupported escape {other:?}")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(_) => {
                    // Multi-byte UTF-8: re-decode from the byte before.
                    let rest = std::str::from_utf8(&self.bytes[self.pos - 1..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8() - 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn write_program(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tiscc-serve-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}.tql"));
        std::fs::write(&path, "qubit a b\nprep_x a\nprep_z b\nmerge_zz a b\n").unwrap();
        path
    }

    fn field<'a>(json: &'a str, key: &str) -> &'a str {
        let at = json.find(&format!("\"{key}\":")).unwrap_or_else(|| panic!("{key} in {json}"));
        &json[at + key.len() + 3..]
    }

    #[test]
    fn flat_json_parses_every_scalar_kind() {
        let fields = parse_flat_json(
            "{\"s\":\"a\\nb\",\"n\":1e-4,\"i\":13,\"t\":true,\"f\":false,\"z\":null}",
        )
        .unwrap();
        assert_eq!(fields[0], ("s".to_string(), JsonValue::Str("a\nb".to_string())));
        assert_eq!(fields[1], ("n".to_string(), JsonValue::Num(1e-4)));
        assert_eq!(fields[2], ("i".to_string(), JsonValue::Num(13.0)));
        assert_eq!(fields[3], ("t".to_string(), JsonValue::Bool(true)));
        assert_eq!(fields[4], ("f".to_string(), JsonValue::Bool(false)));
        assert_eq!(fields[5], ("z".to_string(), JsonValue::Null));
        assert_eq!(parse_flat_json("{}").unwrap(), vec![]);
    }

    #[test]
    fn malformed_json_is_rejected_not_panicked() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "{\"a\":1}{",
            "{\"a\":{\"nested\":1}}",
            "{\"a\":[1]}",
            "{\"a\":1,\"a\":2}",
            "{\"a\":\"unterminated}",
            "not json at all",
        ] {
            assert!(parse_flat_json(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn ping_answers_pong() {
        let state = ServeState::new(None);
        let reply = handle_line("{\"cmd\":\"ping\"}", &state);
        assert!(reply.contains("\"ok\":true"), "{reply}");
        assert!(reply.contains("\"pong\""), "{reply}");
    }

    #[test]
    fn bad_requests_get_error_responses() {
        let state = ServeState::new(None);
        for (request, expect) in [
            ("nonsense", "ok\":false"),
            ("{\"cmd\":\"warp\"}", "unknown cmd"),
            ("{}", "missing \\\"cmd\\\""),
            ("{\"cmd\":\"estimate\"}", "missing \\\"program\\\""),
            ("{\"cmd\":\"frontier\",\"program\":\"/does/not/exist.tql\"}", "cannot read"),
        ] {
            let reply = handle_line(request, &state);
            assert!(reply.contains("\"ok\":false"), "{request} -> {reply}");
            assert!(reply.contains(expect), "{request} -> {reply}");
            assert!(parse_flat_json(&reply).is_ok() || reply.contains("frontier"), "{reply}");
        }
    }

    #[test]
    fn estimate_and_frontier_requests_answer_inline() {
        let path = write_program("serve_merge");
        let state = ServeState::new(None);
        let request = format!(
            "{{\"cmd\":\"estimate\",\"program\":{},\"budget\":0.001,\"profiles\":\"h1,projected\"}}",
            json_string(path.to_str().unwrap())
        );
        let reply = handle_line(&request, &state);
        assert!(reply.contains("\"ok\":true"), "{reply}");
        assert!(reply.contains("\"profile\":\"projected\""), "{reply}");
        assert!(field(&reply, "logical_qubits").starts_with('2'), "{reply}");

        let request = format!(
            "{{\"cmd\":\"frontier\",\"program\":{},\"layouts\":\"lane,lane\",\"dmin\":3,\
             \"dmax\":5,\"profiles\":\"h1\",\"mode\":\"analytic\"}}",
            json_string(path.to_str().unwrap())
        );
        let reply = handle_line(&request, &state);
        assert!(reply.contains("\"ok\":true"), "{reply}");
        assert!(reply.contains("\"matrix_points\":2"), "duplicate layout deduped: {reply}");
        assert!(reply.contains("\"frontier\":[{"), "non-empty frontier: {reply}");

        // The second identical request reuses the warm compiler memo: no
        // new analytic captures.
        let reply2 = handle_line(&request, &state);
        assert!(reply2.contains("\"analytic_captures\":0"), "{reply2}");
        let _ = std::fs::remove_file(Path::new(&path));
    }

    /// Extracts an integer metrics field from a `metrics` reply.
    fn metric(json: &str, key: &str) -> u64 {
        field(json, key)
            .split(|c: char| !c.is_ascii_digit())
            .next()
            .unwrap()
            .parse()
            .unwrap_or_else(|_| panic!("{key} in {json}"))
    }

    #[test]
    fn op_is_an_alias_for_cmd() {
        let state = ServeState::new(None);
        let reply = handle_line("{\"op\":\"ping\"}", &state);
        assert!(reply.contains("\"reply\":\"pong\""), "{reply}");
        // "cmd" wins when both are present.
        let reply = handle_line("{\"cmd\":\"ping\",\"op\":\"warp\"}", &state);
        assert!(reply.contains("\"reply\":\"pong\""), "{reply}");
    }

    #[test]
    fn error_paths_yield_structured_kinds_and_counters() {
        let state = ServeState::new(None);

        // Malformed JSON.
        let reply = handle_line("this is not json", &state);
        assert!(reply.contains("\"ok\":false"), "{reply}");
        assert!(reply.contains("\"kind\":\"malformed_json\""), "{reply}");
        assert!(parse_flat_json(&reply).is_ok(), "error replies stay flat: {reply}");

        // Unknown op.
        let reply = handle_line("{\"op\":\"warp\"}", &state);
        assert!(reply.contains("\"kind\":\"unknown_op\""), "{reply}");
        assert!(reply.contains("unknown cmd"), "{reply}");

        // Oversized line (valid JSON, but past the limit).
        let oversized =
            format!("{{\"cmd\":\"ping\",\"pad\":\"{}\"}}", "x".repeat(MAX_REQUEST_BYTES));
        let reply = handle_line(&oversized, &state);
        assert!(reply.contains("\"kind\":\"oversized_line\""), "{reply}");

        // Bad request (known op, missing field).
        let reply = handle_line("{\"cmd\":\"estimate\"}", &state);
        assert!(reply.contains("\"kind\":\"bad_request\""), "{reply}");

        // The loop survived all of the above: the metrics verb answers
        // and attributes one error to each kind.
        let reply = handle_line("{\"op\":\"metrics\"}", &state);
        assert!(reply.contains("\"ok\":true"), "{reply}");
        assert_eq!(metric(&reply, "requests"), 5);
        assert_eq!(metric(&reply, "errors"), 4);
        assert_eq!(metric(&reply, "errors_malformed_json"), 1);
        assert_eq!(metric(&reply, "errors_unknown_op"), 1);
        assert_eq!(metric(&reply, "errors_oversized_line"), 1);
        assert_eq!(metric(&reply, "errors_bad_request"), 1);
        assert_eq!(metric(&reply, "requests_metrics"), 1);
    }

    #[test]
    fn metrics_counters_increase_monotonically_across_a_warm_session() {
        let path = write_program("serve_metrics");
        let state = ServeState::new(None);
        let request = format!(
            "{{\"cmd\":\"estimate\",\"program\":{},\"budget\":0.001}}",
            json_string(path.to_str().unwrap())
        );

        let reply = handle_line(&request, &state);
        assert!(reply.contains("\"ok\":true"), "{reply}");
        let m1 = handle_line("{\"op\":\"metrics\"}", &state);
        let (r1, h1) = (metric(&m1, "requests"), metric(&m1, "compile_cache_hits"));
        assert_eq!(metric(&m1, "requests_estimate"), 1);
        assert!(metric(&m1, "compile_cache_entries") > 0, "{m1}");

        // The identical second request is served from the warm memo: the
        // hit counter rises, the entry count stays put.
        let reply = handle_line(&request, &state);
        assert!(reply.contains("\"ok\":true"), "{reply}");
        let m2 = handle_line("{\"op\":\"metrics\"}", &state);
        assert!(metric(&m2, "requests") > r1, "{m2}");
        assert!(metric(&m2, "compile_cache_hits") > h1, "{m2}");
        assert_eq!(metric(&m1, "compile_cache_entries"), metric(&m2, "compile_cache_entries"));
        assert_eq!(metric(&m2, "requests_estimate"), 2);
        assert_eq!(metric(&m2, "errors"), 0);
        let _ = std::fs::remove_file(Path::new(&path));
    }

    #[test]
    fn requests_record_spans_in_session_telemetry() {
        let path = write_program("serve_spans");
        let state = ServeState::new(None);
        let request = format!(
            "{{\"cmd\":\"estimate\",\"program\":{},\"budget\":0.001}}",
            json_string(path.to_str().unwrap())
        );
        handle_line(&request, &state);
        let report = state.tel.snapshot().expect("serve telemetry is always on");
        assert_eq!(report.roots(), vec!["estimate"]);
        let paths: Vec<String> = (0..report.spans.len()).map(|i| report.path(i)).collect();
        assert!(paths.contains(&"estimate/compile".to_string()), "{paths:?}");
        let _ = std::fs::remove_file(Path::new(&path));
    }

    #[test]
    fn split_list_dedupes_and_rejects_empty() {
        assert_eq!(split_list("profiles", "a,b,a").unwrap(), vec!["a", "b"]);
        assert_eq!(split_list("layouts", " x , ,x,").unwrap(), vec!["x"]);
        let err = split_list("profiles", ", ,").unwrap_err();
        assert!(err.contains("profiles list is empty"), "{err}");
    }

    #[test]
    fn layout_entries_parse_with_optional_grids() {
        assert_eq!(parse_layout_entry("lane").unwrap(), LayoutSpec::single_lane());
        assert_eq!(
            parse_layout_entry("checkerboard@8x8").unwrap(),
            LayoutSpec::checkerboard().with_grid(8, 8)
        );
        assert!(parse_layout_entry("warp").is_err());
        assert!(parse_layout_entry("row@8").is_err());
        assert!(parse_layout_entry("row@0x8").is_err());
    }
}

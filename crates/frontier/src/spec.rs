//! The frontier search specification: which slice of the
//! (layout × distance × profile) design space to evaluate.

use tiscc_estimator::compiler::EstimateMode;
use tiscc_hw::{HardwareSpec, SpecFingerprint};
use tiscc_program::{BudgetError, ErrorModel, LayoutSpec};

/// A Pareto-frontier search specification: the floorplans, code distances
/// and hardware profiles to cross, the estimate mode to evaluate them
/// under, and the per-patch-step error model that prices each distance.
///
/// Unlike `tiscc estimate`, a frontier search has **no error budget**: it
/// evaluates every odd distance in `[d_min, d_max]` and reports the
/// achieved error as one axis of each point, so a user can read off the
/// machine size that buys any target error instead of asking one budget at
/// a time.
#[derive(Clone, Debug, PartialEq)]
pub struct FrontierSpec {
    /// Floorplans to place the program on (one sub-matrix per layout).
    pub layouts: Vec<LayoutSpec>,
    /// Smallest code distance to evaluate (rounded up to odd, floor 3).
    pub d_min: usize,
    /// Largest code distance to evaluate (rounded down to odd).
    pub d_max: usize,
    /// Hardware profiles to evaluate under.
    pub profiles: Vec<HardwareSpec>,
    /// How per-instruction resources are obtained.
    pub mode: EstimateMode,
    /// The per-patch-step logical error model pricing each distance.
    pub model: ErrorModel,
}

impl FrontierSpec {
    /// A spec over the given layouts and profiles with the default error
    /// model and the conventional `d ∈ [3, 13]` sweep range.
    pub fn new(layouts: Vec<LayoutSpec>, profiles: Vec<HardwareSpec>) -> Self {
        FrontierSpec {
            layouts,
            d_min: 3,
            d_max: 13,
            profiles,
            mode: EstimateMode::default(),
            model: ErrorModel::default(),
        }
    }

    /// Replaces the distance range.
    pub fn with_distances(mut self, d_min: usize, d_max: usize) -> Self {
        self.d_min = d_min;
        self.d_max = d_max;
        self
    }

    /// Replaces the estimate mode.
    pub fn with_mode(mut self, mode: EstimateMode) -> Self {
        self.mode = mode;
        self
    }

    /// Replaces the error model.
    pub fn with_model(mut self, model: ErrorModel) -> Self {
        self.model = model;
        self
    }

    /// Validates and normalizes the spec into the concrete job-matrix axes:
    /// duplicate layouts and duplicate profiles (same parameter
    /// fingerprint) are dropped — duplicate work is never scheduled — and
    /// the distance range is resolved to the odd distances the error-model
    /// ansatz covers. Empty axes are typed errors.
    pub fn normalize(&self) -> Result<NormalizedSpec, FrontierError> {
        self.model.validate().map_err(FrontierError::Model)?;
        if self.layouts.is_empty() {
            return Err(FrontierError::EmptyAxis { axis: "layouts" });
        }
        if self.profiles.is_empty() {
            return Err(FrontierError::EmptyAxis { axis: "profiles" });
        }
        let mut duplicates_dropped = 0usize;
        let mut layouts: Vec<LayoutSpec> = Vec::with_capacity(self.layouts.len());
        for &layout in &self.layouts {
            if layouts.contains(&layout) {
                duplicates_dropped += 1;
            } else {
                layouts.push(layout);
            }
        }
        let mut seen: Vec<SpecFingerprint> = Vec::with_capacity(self.profiles.len());
        let mut profiles: Vec<HardwareSpec> = Vec::with_capacity(self.profiles.len());
        for profile in &self.profiles {
            let fp = profile.fingerprint();
            if seen.contains(&fp) {
                duplicates_dropped += 1;
            } else {
                seen.push(fp);
                profiles.push(profile.clone());
            }
        }
        let lo = self.d_min.max(3);
        let lo = if lo.is_multiple_of(2) { lo + 1 } else { lo };
        let hi =
            if self.d_max.is_multiple_of(2) { self.d_max.saturating_sub(1) } else { self.d_max };
        let distances: Vec<usize> = (lo..=hi).step_by(2).collect();
        if distances.is_empty() {
            return Err(FrontierError::EmptyDistanceRange { d_min: self.d_min, d_max: self.d_max });
        }
        Ok(NormalizedSpec { layouts, distances, profiles, duplicates_dropped })
    }
}

/// The validated, deduplicated job-matrix axes of a [`FrontierSpec`]
/// (produced by [`FrontierSpec::normalize`]).
#[derive(Clone, Debug, PartialEq)]
pub struct NormalizedSpec {
    /// Distinct floorplans, in first-seen order.
    pub layouts: Vec<LayoutSpec>,
    /// The odd distances of the requested range, ascending.
    pub distances: Vec<usize>,
    /// Distinct hardware profiles (by parameter fingerprint), in
    /// first-seen order.
    pub profiles: Vec<HardwareSpec>,
    /// Duplicate layout/profile entries dropped during normalization.
    pub duplicates_dropped: usize,
}

impl NormalizedSpec {
    /// Number of matrix points: layouts × distances × profiles.
    pub fn matrix_len(&self) -> usize {
        self.layouts.len() * self.distances.len() * self.profiles.len()
    }
}

/// Errors raised by the frontier engine.
#[derive(Clone, Debug, PartialEq)]
pub enum FrontierError {
    /// A job-matrix axis (layouts or profiles) is empty.
    EmptyAxis {
        /// Which axis was empty.
        axis: &'static str,
    },
    /// The distance range contains no odd distance `≥ 3`.
    EmptyDistanceRange {
        /// Requested lower bound.
        d_min: usize,
        /// Requested upper bound.
        d_max: usize,
    },
    /// The error model is not physically meaningful.
    Model(BudgetError),
    /// The program failed validation.
    Program(String),
    /// The program does not fit (or cannot be routed on) a requested
    /// floorplan.
    Placement(String),
    /// A per-instruction compilation failed.
    Compile(String),
    /// The persistent cache directory could not be read or written.
    Cache(String),
}

impl std::fmt::Display for FrontierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontierError::EmptyAxis { axis } => {
                write!(f, "frontier spec has an empty {axis} list (nothing to evaluate)")
            }
            FrontierError::EmptyDistanceRange { d_min, d_max } => write!(
                f,
                "frontier distance range [{d_min}, {d_max}] contains no odd distance >= 3 \
                 (the error-model ansatz covers odd distances only)"
            ),
            FrontierError::Model(e) => write!(f, "{e}"),
            FrontierError::Program(e) => write!(f, "invalid program: {e}"),
            FrontierError::Placement(e) => write!(f, "{e}"),
            FrontierError::Compile(e) => write!(f, "compilation failed: {e}"),
            FrontierError::Cache(e) => write!(f, "persistent cache failure: {e}"),
        }
    }
}

impl std::error::Error for FrontierError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_dedupes_layouts_and_profiles() {
        let spec = FrontierSpec::new(
            vec![
                LayoutSpec::row_major().with_grid(8, 8),
                LayoutSpec::checkerboard().with_grid(8, 8),
                LayoutSpec::row_major().with_grid(8, 8),
            ],
            vec![HardwareSpec::h1(), HardwareSpec::h1(), HardwareSpec::projected()],
        );
        let norm = spec.normalize().unwrap();
        assert_eq!(norm.layouts.len(), 2);
        assert_eq!(norm.profiles.len(), 2);
        assert_eq!(norm.duplicates_dropped, 2);
        assert_eq!(norm.profiles[0].name, "h1", "first-seen order is preserved");
    }

    #[test]
    fn normalize_resolves_odd_distances() {
        let spec = FrontierSpec::new(vec![LayoutSpec::default()], vec![HardwareSpec::h1()]);
        assert_eq!(spec.normalize().unwrap().distances, vec![3, 5, 7, 9, 11, 13]);
        let even_ends = spec.clone().with_distances(4, 10);
        assert_eq!(even_ends.normalize().unwrap().distances, vec![5, 7, 9]);
        let degenerate = spec.clone().with_distances(1, 3);
        assert_eq!(degenerate.normalize().unwrap().distances, vec![3]);
        assert_eq!(
            spec.clone().with_distances(6, 6).normalize(),
            Err(FrontierError::EmptyDistanceRange { d_min: 6, d_max: 6 })
        );
    }

    #[test]
    fn empty_axes_are_typed_errors() {
        let no_layouts = FrontierSpec::new(vec![], vec![HardwareSpec::h1()]);
        assert_eq!(no_layouts.normalize(), Err(FrontierError::EmptyAxis { axis: "layouts" }));
        let no_profiles = FrontierSpec::new(vec![LayoutSpec::default()], vec![]);
        assert_eq!(no_profiles.normalize(), Err(FrontierError::EmptyAxis { axis: "profiles" }));
        let msg = no_profiles.normalize().unwrap_err().to_string();
        assert!(msg.contains("profiles"), "{msg}");
    }

    #[test]
    fn invalid_models_are_rejected_before_any_work() {
        let mut spec = FrontierSpec::new(vec![LayoutSpec::default()], vec![HardwareSpec::h1()]);
        spec.model = ErrorModel { p_physical: 1.0, p_threshold: 0.01, prefactor: 0.1 };
        assert!(matches!(spec.normalize(), Err(FrontierError::Model(_))));
    }
}

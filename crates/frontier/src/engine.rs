//! The batch estimation engine: expands a [`FrontierSpec`] into its
//! (layout × distance × profile) job matrix, resolves every
//! per-instruction compile through the persistent [`DiskCache`] and the
//! in-process [`Compiler`] memo, and assembles one [`FrontierPoint`] per
//! matrix cell with Pareto flags over the (machine size, wall clock)
//! plane.
//!
//! The expensive axis of the matrix is compilation, and compilation is
//! **layout-independent**: a program's distinct instruction kinds at a
//! given `(d, profile)` cost the same on every floorplan. The engine
//! therefore compiles `kinds × distances × profiles` rows exactly once
//! (disk first, then rayon over whatever is missing) and reuses them
//! across all layouts; per-layout work is just placement, scheduling and
//! arithmetic.

use std::collections::HashMap;

use rayon::prelude::*;

use tiscc_core::instruction::Instruction;
use tiscc_estimator::compiler::{CompileRequest, Compiler};
use tiscc_estimator::sweep::SweepKey;
use tiscc_program::{schedule_with, LayoutSpec, LogicalProgram, Placement, Schedule};
use tiscc_telemetry::{Span, Telemetry};

use crate::cache::DiskCache;
use crate::pareto::pareto_flags;
use crate::spec::{FrontierError, FrontierSpec, NormalizedSpec};

/// One cell of the job matrix: a (layout, distance, profile)
/// configuration and the space–time resources the program costs there.
#[derive(Clone, Debug, PartialEq)]
pub struct FrontierPoint {
    /// The floorplan of this configuration.
    pub layout: LayoutSpec,
    /// Resolved tile-grid dimensions `(rows, cols)`.
    pub grid: (usize, usize),
    /// Code distance (`dx = dz = dt = d`).
    pub d: usize,
    /// Hardware profile name.
    pub profile: String,
    /// Machine size: trapping zones of the machine hosting the placement
    /// (each zone holds the physical qubits of one site).
    pub physical_qubits: usize,
    /// Wall-clock program duration in seconds.
    pub duration_s: f64,
    /// Zone-rounds: trapping zones × logical time steps × `d`.
    pub qubit_rounds: u64,
    /// Achieved total program error at distance `d`.
    pub error: f64,
    /// Physical machine area in square metres.
    pub area_m2: f64,
    /// True iff no other matrix point dominates this one on the
    /// `(physical_qubits, duration_s)` plane.
    pub on_frontier: bool,
}

/// Where the per-instruction rows behind a frontier run came from, plus
/// matrix bookkeeping. These numbers are the observable proof of cache
/// behaviour: a fully warm run reports `computed == 0` and
/// `analytic_captures == 0`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FrontierStats {
    /// Distinct compile jobs the matrix needed (kinds × distances ×
    /// profiles).
    pub jobs: usize,
    /// Jobs served by intact persistent-cache entries.
    pub disk_hits: usize,
    /// Jobs computed fresh this run (and persisted, when a cache is
    /// attached).
    pub computed: usize,
    /// Corrupt persistent entries found when the cache was opened.
    pub corrupt_entries: usize,
    /// Fresh analytic captures performed this run (0 on a warm run).
    pub analytic_captures: usize,
    /// Duplicate layout/profile entries dropped by spec normalization.
    pub duplicates_dropped: usize,
}

/// The result of a frontier run: the full job matrix (layout-major, then
/// distance, then profile) with Pareto flags, and the run's cache
/// provenance.
#[derive(Clone, Debug, PartialEq)]
pub struct FrontierReport {
    /// The program's name.
    pub program: String,
    /// Declared logical qubits.
    pub logical_qubits: usize,
    /// Instructions in the program.
    pub instructions: usize,
    /// How per-instruction resources were obtained.
    pub mode: tiscc_estimator::compiler::EstimateMode,
    /// Every evaluated configuration, in deterministic matrix order.
    pub points: Vec<FrontierPoint>,
    /// Cache provenance and matrix bookkeeping.
    pub stats: FrontierStats,
}

impl FrontierReport {
    /// The Pareto-optimal subset of [`FrontierReport::points`], in matrix
    /// order (exact (qubits, duration) ties all survive).
    pub fn frontier(&self) -> Vec<&FrontierPoint> {
        self.points.iter().filter(|p| p.on_frontier).collect()
    }

    /// Renders the run's provenance as an aligned text report. The
    /// `computed` and `analytic capture` lines are the warm-start
    /// witnesses CI greps for.
    pub fn render_stats(&self) -> String {
        let s = &self.stats;
        let mut out = format!(
            "frontier: {} matrix point(s), {} on the Pareto frontier ({} mode)\n",
            self.points.len(),
            self.frontier().len(),
            self.mode.name()
        );
        out.push_str(&format!(
            "  compile jobs: {} total, {} from persistent cache, {} computed\n",
            s.jobs, s.disk_hits, s.computed
        ));
        out.push_str(&format!(
            "  analytic captures this run: {}\n  corrupt cache entries skipped: {}\n",
            s.analytic_captures, s.corrupt_entries
        ));
        if s.duplicates_dropped > 0 {
            out.push_str(&format!("  duplicate spec entries dropped: {}\n", s.duplicates_dropped));
        }
        out
    }
}

/// A placed-and-scheduled floorplan, reused across every (distance,
/// profile) cell of its sub-matrix.
struct PlacedLayout {
    spec: LayoutSpec,
    placement: Placement,
    sched: Schedule,
    patch_steps: u64,
}

/// Runs the frontier search: evaluates `program` at every configuration
/// of `spec`, resolving per-instruction compiles disk-first through
/// `disk` (when attached), then through `compiler`'s in-process memo.
/// Freshly computed rows are persisted back to `disk`.
pub fn run_frontier(
    program: &LogicalProgram,
    spec: &FrontierSpec,
    compiler: &Compiler,
    disk: Option<&DiskCache>,
) -> Result<FrontierReport, FrontierError> {
    run_frontier_with(program, spec, compiler, disk, &Telemetry::off().root("frontier"))
}

/// [`run_frontier`] with telemetry: spec normalization, per-layout
/// placement/scheduling, the disk-first compile resolution, matrix
/// assembly and the Pareto sweep each open a child span under `parent`
/// (`normalize`, `layout`, `resolve`, `assemble`, `pareto`), and the
/// run's [`FrontierStats`] are mirrored into `frontier.*` counters.
/// Passing a span from [`Telemetry::off`] makes this identical to
/// [`run_frontier`].
pub fn run_frontier_with(
    program: &LogicalProgram,
    spec: &FrontierSpec,
    compiler: &Compiler,
    disk: Option<&DiskCache>,
    parent: &Span,
) -> Result<FrontierReport, FrontierError> {
    let norm = {
        let _normalize = parent.child("normalize");
        let norm = spec.normalize()?;
        program.validate().map_err(|e| FrontierError::Program(e.to_string()))?;
        norm
    };

    // Place and schedule each floorplan once; both are distance- and
    // profile-independent.
    let layout_span = parent.child("layout");
    let mut layouts = Vec::with_capacity(norm.layouts.len());
    for &layout in &norm.layouts {
        let placement = Placement::allocate_with(program, &layout)
            .map_err(|e| FrontierError::Placement(e.to_string()))?;
        let sched = schedule_with(program, &placement, &layout_span)
            .map_err(|e| FrontierError::Placement(e.to_string()))?;
        let patch_steps = sched.patch_steps(placement.total_tiles());
        layouts.push(PlacedLayout { spec: layout, placement, sched, patch_steps });
    }
    layout_span.finish();

    let kinds = distinct_kinds(program);
    let (times, stats) = {
        let resolve_span = parent.child("resolve");
        let (times, stats) = resolve_rows(&kinds, &norm, spec, compiler, disk)?;
        resolve_span.add("frontier.jobs", stats.jobs as u64);
        resolve_span.add("frontier.disk_hits", stats.disk_hits as u64);
        resolve_span.add("frontier.computed", stats.computed as u64);
        resolve_span.add("frontier.corrupt_entries", stats.corrupt_entries as u64);
        resolve_span.add("frontier.analytic_captures", stats.analytic_captures as u64);
        resolve_span.add("frontier.duplicates_dropped", norm.duplicates_dropped as u64);
        (times, stats)
    };

    // Assemble the matrix in deterministic layout-major order.
    let assemble_span = parent.child("assemble");
    let mut points = Vec::with_capacity(norm.matrix_len());
    for placed in &layouts {
        let grid = (placed.placement.tile_rows(), placed.placement.tile_cols());
        for &d in &norm.distances {
            let machine = placed.placement.layout(d);
            let zones = machine.trapping_zone_count();
            let area_m2 = machine.area_m2();
            let error = spec.model.program_error(d, placed.patch_steps);
            let qubit_rounds = zones as u64 * placed.sched.logical_time_steps as u64 * d as u64;
            for profile in &norm.profiles {
                let fp = profile.fingerprint();
                let duration_s = duration_s(program, &placed.sched, |kind| {
                    times[&SweepKey { instruction: kind, dx: d, dz: d, dt: d, spec: fp }]
                });
                points.push(FrontierPoint {
                    layout: placed.spec,
                    grid,
                    d,
                    profile: profile.name.clone(),
                    physical_qubits: zones,
                    duration_s,
                    qubit_rounds,
                    error,
                    area_m2,
                    on_frontier: false,
                });
            }
        }
    }

    assemble_span.finish();

    let pareto_span = parent.child("pareto");
    let axes: Vec<(usize, f64)> =
        points.iter().map(|p| (p.physical_qubits, p.duration_s)).collect();
    for (point, flag) in points.iter_mut().zip(pareto_flags(&axes)) {
        point.on_frontier = flag;
    }
    pareto_span.finish();

    Ok(FrontierReport {
        program: program.name().to_string(),
        logical_qubits: program.qubit_count(),
        instructions: program.len(),
        mode: spec.mode,
        points,
        stats: FrontierStats { duplicates_dropped: norm.duplicates_dropped, ..stats },
    })
}

/// The program's distinct instruction kinds, in first-appearance order.
fn distinct_kinds(program: &LogicalProgram) -> Vec<Instruction> {
    let mut kinds: Vec<Instruction> = Vec::new();
    for pi in program.instructions() {
        if !kinds.contains(&pi.instruction) {
            kinds.push(pi.instruction);
        }
    }
    kinds
}

/// Resolves every compile job of the matrix — disk cache first, then a
/// rayon fan-out over whatever is missing — and returns the
/// per-instruction execution times keyed by [`SweepKey`].
fn resolve_rows(
    kinds: &[Instruction],
    norm: &NormalizedSpec,
    spec: &FrontierSpec,
    compiler: &Compiler,
    disk: Option<&DiskCache>,
) -> Result<(HashMap<SweepKey, f64>, FrontierStats), FrontierError> {
    let requests: Vec<CompileRequest> = norm
        .profiles
        .iter()
        .flat_map(|profile| {
            norm.distances.iter().flat_map(move |&d| {
                kinds
                    .iter()
                    .map(move |&kind| CompileRequest::new(kind, d, d, d).with_spec(profile.clone()))
            })
        })
        .collect();

    let mut stats = FrontierStats {
        jobs: requests.len(),
        corrupt_entries: disk.map_or(0, |c| c.corrupt_entries()),
        ..FrontierStats::default()
    };

    let mut times: HashMap<SweepKey, f64> = HashMap::with_capacity(requests.len());
    let mut missing: Vec<CompileRequest> = Vec::new();
    for request in requests {
        let key = request.key();
        match disk.and_then(|cache| cache.get(&key, spec.mode)) {
            Some(row) => {
                times.insert(key, row.resources.execution_time_s);
            }
            None => missing.push(request),
        }
    }
    stats.disk_hits = stats.jobs - missing.len();
    stats.computed = missing.len();

    let captures_before = compiler.analytic_captures();
    let computed: Result<Vec<_>, _> = missing
        .into_par_iter()
        .map(|request| {
            compiler
                .estimate_row(&request, spec.mode)
                .map(|row| (request.key(), row))
                .map_err(|e| FrontierError::Compile(e.to_string()))
        })
        .collect();
    for (key, row) in computed? {
        if let Some(cache) = disk {
            cache.insert(&key, spec.mode, &row)?;
        }
        times.insert(key, row.resources.execution_time_s);
    }
    stats.analytic_captures = compiler.analytic_captures() - captures_before;
    Ok((times, stats))
}

/// Wall-clock duration of a scheduled program: each parallel step costs
/// its longest member instruction; the program costs the sum over steps.
fn duration_s(
    program: &LogicalProgram,
    sched: &Schedule,
    time_of: impl Fn(Instruction) -> f64,
) -> f64 {
    sched
        .steps
        .iter()
        .map(|step| {
            step.instructions
                .iter()
                .map(|&i| time_of(program.instructions()[i].instruction))
                .fold(0.0, f64::max)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiscc_estimator::compiler::EstimateMode;
    use tiscc_hw::HardwareSpec;
    use tiscc_program::examples;

    fn small_spec() -> FrontierSpec {
        FrontierSpec::new(
            vec![LayoutSpec::default(), LayoutSpec::checkerboard().with_grid(4, 4)],
            vec![HardwareSpec::h1(), HardwareSpec::projected()],
        )
        .with_distances(3, 5)
        .with_mode(EstimateMode::Analytic)
    }

    #[test]
    fn matrix_covers_every_configuration_in_order() {
        let program = examples::bell_pair();
        let compiler = Compiler::new();
        let report = run_frontier(&program, &small_spec(), &compiler, None).unwrap();
        assert_eq!(report.points.len(), 2 * 2 * 2);
        // Layout-major, then distance, then profile.
        assert_eq!(report.points[0].layout, LayoutSpec::default());
        assert_eq!((report.points[0].d, report.points[0].profile.as_str()), (3, "h1"));
        assert_eq!((report.points[1].d, report.points[1].profile.as_str()), (3, "projected"));
        assert_eq!(report.points[2].d, 5);
        assert_eq!(report.points[4].layout, LayoutSpec::checkerboard().with_grid(4, 4));
        let frontier = report.frontier();
        assert!(!frontier.is_empty(), "some point is always non-dominated");
        assert!(frontier.iter().all(|p| p.on_frontier));
    }

    #[test]
    fn higher_distance_costs_more_and_errs_less() {
        let program = examples::bell_pair();
        let compiler = Compiler::new();
        let spec = FrontierSpec::new(vec![LayoutSpec::default()], vec![HardwareSpec::h1()])
            .with_distances(3, 7)
            .with_mode(EstimateMode::Analytic);
        let report = run_frontier(&program, &spec, &compiler, None).unwrap();
        let [p3, p5, p7] = &report.points[..] else { panic!("expected 3 points") };
        assert!(p3.duration_s < p5.duration_s && p5.duration_s < p7.duration_s);
        assert!(p3.error > p5.error && p5.error > p7.error);
        assert!(p3.physical_qubits <= p5.physical_qubits);
        assert!(p3.qubit_rounds < p7.qubit_rounds);
    }

    #[test]
    fn frontier_agrees_with_estimate_program() {
        // A frontier point must reproduce `estimate_program` exactly for
        // the same configuration — same placement, schedule and compiled
        // rows, so bit-identical duration and footprint.
        use crate::spec::FrontierSpec;
        use tiscc_estimator::program::{estimate_program, ProgramEstimateSpec};

        let program = examples::teleportation();
        let compiler = Compiler::new();
        let layout = LayoutSpec::row_major().with_grid(6, 6);
        let frontier_spec = FrontierSpec::new(vec![layout], vec![HardwareSpec::h1()])
            .with_distances(5, 5)
            .with_mode(EstimateMode::Compiled);
        let report = run_frontier(&program, &frontier_spec, &compiler, None).unwrap();
        let point = &report.points[0];

        // Budget chosen so `estimate_program` selects d = 5 as well.
        let est_spec = ProgramEstimateSpec {
            layout,
            budget: point.error * 1.0000001,
            ..ProgramEstimateSpec::new(1.0)
        };
        let est = estimate_program(&program, &est_spec, &compiler).unwrap();
        let row = &est.rows[0];
        assert_eq!(row.distance, 5);
        assert_eq!(point.physical_qubits, row.trapping_zones);
        assert_eq!(point.duration_s.to_bits(), row.duration_s.to_bits());
        assert_eq!(point.qubit_rounds, row.qubit_rounds);
        assert_eq!(point.area_m2.to_bits(), row.area_m2.to_bits());
        assert_eq!(point.error.to_bits(), row.achieved_error.to_bits());
    }

    #[test]
    fn compile_jobs_are_layout_independent() {
        let program = examples::ripple_adder();
        let compiler = Compiler::new();
        let one = FrontierSpec::new(vec![LayoutSpec::default()], vec![HardwareSpec::h1()])
            .with_distances(3, 3)
            .with_mode(EstimateMode::Analytic);
        let two = FrontierSpec::new(
            vec![LayoutSpec::default(), LayoutSpec::checkerboard().with_grid(8, 8)],
            vec![HardwareSpec::h1()],
        )
        .with_distances(3, 3)
        .with_mode(EstimateMode::Analytic);
        let r1 = run_frontier(&program, &one, &compiler, None).unwrap();
        let r2 = run_frontier(&program, &two, &compiler, None).unwrap();
        assert_eq!(r1.stats.jobs, r2.stats.jobs, "adding layouts must not add compile jobs");
    }

    #[test]
    fn stats_report_renders_the_witness_lines() {
        let program = examples::bell_pair();
        let compiler = Compiler::new();
        let report = run_frontier(&program, &small_spec(), &compiler, None).unwrap();
        let text = report.render_stats();
        assert!(text.contains("from persistent cache"), "{text}");
        assert!(text.contains("analytic captures this run:"), "{text}");
        assert!(report.stats.computed > 0);
        assert_eq!(report.stats.disk_hits, 0, "no disk cache was attached");
    }
}

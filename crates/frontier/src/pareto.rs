//! Dominated-point elimination over the (machine size, wall clock) plane.
//!
//! A point `a` **dominates** `b` when `a` is no worse on both axes and
//! strictly better on at least one:
//!
//! ```text
//! a.qubits <= b.qubits  AND  a.duration <= b.duration
//!            AND  (a.qubits < b.qubits OR a.duration < b.duration)
//! ```
//!
//! The Pareto frontier is the subset no other point dominates. Exact
//! two-axis ties are mutually non-dominating, so *all* tied copies stay on
//! the frontier — callers that want one representative per (qubits,
//! duration) cell must dedupe themselves.

/// Returns one flag per input point: `true` iff no other point dominates
/// it on the `(qubits, duration)` plane.
///
/// Ordering of the input is preserved (the flags are positional). The scan
/// sorts an index permutation and sweeps it, so the cost is `O(n log n)`
/// time and `O(n)` extra space, not the naive all-pairs `O(n²)`.
///
/// Non-finite durations (`NaN`, `±inf`) never make the frontier and never
/// dominate anything: they are unconditionally flagged `false` and skipped
/// by the sweep.
pub fn pareto_flags(points: &[(usize, f64)]) -> Vec<bool> {
    let mut flags = vec![false; points.len()];
    let mut order: Vec<usize> = (0..points.len()).filter(|&i| points[i].1.is_finite()).collect();
    // Sort by qubits ascending, then duration ascending. After this sort a
    // point can only be dominated by a predecessor, so one forward sweep
    // tracking the best (smallest) duration seen at strictly smaller qubit
    // counts decides every flag.
    order.sort_by(|&a, &b| points[a].0.cmp(&points[b].0).then(points[a].1.total_cmp(&points[b].1)));
    let mut best_prev = f64::INFINITY; // best duration at strictly smaller qubit counts
    let mut i = 0;
    while i < order.len() {
        // Process one qubit-count group at a time so equal-qubit points
        // are judged against *previous* groups, not each other's qubits.
        let q = points[order[i]].0;
        let mut j = i;
        while j < order.len() && points[order[j]].0 == q {
            j += 1;
        }
        // Within the group the sort put durations ascending, so the group
        // minimum (`head`) dominates every slower same-qubit point, and an
        // earlier group (strictly fewer qubits) dominates anything it
        // matched-or-beat on duration. Survivors tie the head exactly AND
        // beat every smaller machine's duration.
        let head = points[order[i]].1;
        for &idx in &order[i..j] {
            let t = points[idx].1;
            flags[idx] = t == head && head < best_prev;
        }
        best_prev = best_prev.min(head);
        i = j;
    }
    flags
}

/// Reference all-pairs dominance check, `O(n²)`. Used by the property
/// tests as an oracle for [`pareto_flags`]; exposed so external tooling can
/// audit frontiers too.
pub fn pareto_flags_bruteforce(points: &[(usize, f64)]) -> Vec<bool> {
    points
        .iter()
        .map(|&(bq, bt)| {
            bt.is_finite()
                && !points
                    .iter()
                    .any(|&(aq, at)| at.is_finite() && aq <= bq && at <= bt && (aq < bq || at < bt))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_keeps_only_nondominated_points() {
        let points = [(10, 5.0), (12, 4.0), (12, 6.0), (20, 1.0), (10, 5.0), (11, 5.0), (30, 0.5)];
        let flags = pareto_flags(&points);
        // (12, 6.0) is dominated by (10, 5.0); (11, 5.0) is dominated by
        // (10, 5.0); both exact (10, 5.0) ties survive.
        assert_eq!(flags, vec![true, true, false, true, true, false, true]);
        assert_eq!(flags, pareto_flags_bruteforce(&points));
    }

    #[test]
    fn single_point_and_empty_sets() {
        assert_eq!(pareto_flags(&[]), Vec::<bool>::new());
        assert_eq!(pareto_flags(&[(7, 3.25)]), vec![true]);
    }

    #[test]
    fn nonfinite_durations_never_reach_the_frontier() {
        let points = [(10, f64::NAN), (10, f64::INFINITY), (99, 1.0)];
        assert_eq!(pareto_flags(&points), vec![false, false, true]);
        assert_eq!(pareto_flags(&points), pareto_flags_bruteforce(&points));
    }

    #[test]
    fn equal_qubit_groups_keep_only_their_fastest() {
        let points = [(5, 2.0), (5, 1.0), (5, 1.0), (5, 3.0)];
        assert_eq!(pareto_flags(&points), vec![false, true, true, false]);
    }

    #[test]
    fn tied_duration_across_groups_favours_fewer_qubits() {
        // (6, 1.0) is dominated by (5, 1.0): same duration, more qubits.
        let points = [(5, 1.0), (6, 1.0)];
        assert_eq!(pareto_flags(&points), vec![true, false]);
    }
}

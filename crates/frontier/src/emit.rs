//! Text renderers for frontier results: CSV (with an exact parser) and
//! JSON.
//!
//! Floats are rendered with Rust's shortest-round-trip formatting
//! (`{:?}`), so `frontier_to_csv → matrix_from_csv` reproduces every
//! point **bit-for-bit** — the CI smoke test and the warm-start
//! equivalence test both lean on this.

use tiscc_program::LayoutSpec;

use crate::engine::{FrontierPoint, FrontierReport};

/// The CSV column header shared by the matrix and frontier renderers.
pub const CSV_HEADER: &str =
    "layout,grid,d,profile,physical_qubits,duration_s,qubit_rounds,error,area_m2,on_frontier";

/// Renders every matrix point (frontier and dominated alike) as CSV.
pub fn matrix_to_csv(report: &FrontierReport) -> String {
    to_csv(report.points.iter())
}

/// Renders only the Pareto-optimal points as CSV.
pub fn frontier_to_csv(report: &FrontierReport) -> String {
    to_csv(report.points.iter().filter(|p| p.on_frontier))
}

fn to_csv<'a>(points: impl Iterator<Item = &'a FrontierPoint>) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for p in points {
        let grid = match p.layout.grid {
            Some((r, c)) => format!("{r}x{c}"),
            None => format!("auto:{}x{}", p.grid.0, p.grid.1),
        };
        out.push_str(&format!(
            "{},{},{},{},{},{:?},{},{:?},{:?},{}\n",
            p.layout.strategy.name(),
            grid,
            p.d,
            p.profile,
            p.physical_qubits,
            p.duration_s,
            p.qubit_rounds,
            p.error,
            p.area_m2,
            p.on_frontier
        ));
    }
    out
}

/// Parses CSV produced by [`matrix_to_csv`] / [`frontier_to_csv`] back
/// into points, bit-for-bit. Accepts `\n` and `\r\n` line endings.
pub fn matrix_from_csv(text: &str) -> Result<Vec<FrontierPoint>, String> {
    let mut lines = text.lines().map(|l| l.trim_end_matches('\r'));
    match lines.next() {
        Some(header) if header == CSV_HEADER => {}
        other => return Err(format!("bad frontier CSV header: {other:?}")),
    }
    let mut points = Vec::new();
    for (i, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 10 {
            return Err(format!("line {}: expected 10 fields, got {}", i + 2, fields.len()));
        }
        let bad = |what: &str| format!("line {}: malformed {what}", i + 2);
        let mut layout = LayoutSpec::by_name(fields[0]).map_err(|_| bad("layout strategy"))?;
        let grid_text = fields[1];
        let (explicit, dims) = match grid_text.strip_prefix("auto:") {
            Some(rest) => (false, rest),
            None => (true, grid_text),
        };
        let (rows, cols) = dims.split_once('x').ok_or_else(|| bad("grid"))?;
        let grid: (usize, usize) = (
            rows.parse().map_err(|_| bad("grid rows"))?,
            cols.parse().map_err(|_| bad("grid cols"))?,
        );
        if explicit {
            layout = layout.with_grid(grid.0, grid.1);
        }
        points.push(FrontierPoint {
            layout,
            grid,
            d: fields[2].parse().map_err(|_| bad("d"))?,
            profile: fields[3].to_string(),
            physical_qubits: fields[4].parse().map_err(|_| bad("physical_qubits"))?,
            duration_s: fields[5].parse().map_err(|_| bad("duration_s"))?,
            qubit_rounds: fields[6].parse().map_err(|_| bad("qubit_rounds"))?,
            error: fields[7].parse().map_err(|_| bad("error"))?,
            area_m2: fields[8].parse().map_err(|_| bad("area_m2"))?,
            on_frontier: fields[9].parse().map_err(|_| bad("on_frontier"))?,
        });
    }
    Ok(points)
}

/// Renders the whole report — program header, stats, and every point — as
/// a single JSON object. Floats use shortest-round-trip formatting;
/// non-finite values become `null`.
pub fn report_to_json(report: &FrontierReport) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"program\":{},", json_string(&report.program)));
    out.push_str(&format!("\"logical_qubits\":{},", report.logical_qubits));
    out.push_str(&format!("\"instructions\":{},", report.instructions));
    out.push_str(&format!("\"mode\":{},", json_string(report.mode.name())));
    let s = &report.stats;
    out.push_str(&format!(
        "\"stats\":{{\"jobs\":{},\"disk_hits\":{},\"computed\":{},\"corrupt_entries\":{},\
         \"analytic_captures\":{},\"duplicates_dropped\":{}}},",
        s.jobs,
        s.disk_hits,
        s.computed,
        s.corrupt_entries,
        s.analytic_captures,
        s.duplicates_dropped
    ));
    out.push_str("\"points\":[");
    for (i, p) in report.points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&point_to_json(p));
    }
    out.push_str("]}");
    out
}

fn point_to_json(p: &FrontierPoint) -> String {
    let grid = match p.layout.grid {
        Some((r, c)) => format!("\"grid\":[{r},{c}],"),
        None => format!("\"grid\":null,\"auto_grid\":[{},{}],", p.grid.0, p.grid.1),
    };
    format!(
        "{{\"layout\":{},{}\"d\":{},\"profile\":{},\"physical_qubits\":{},\
         \"duration_s\":{},\"qubit_rounds\":{},\"error\":{},\"area_m2\":{},\"on_frontier\":{}}}",
        json_string(p.layout.strategy.name()),
        grid,
        p.d,
        json_string(&p.profile),
        p.physical_qubits,
        json_f64(p.duration_s),
        p.qubit_rounds,
        json_f64(p.error),
        json_f64(p.area_m2),
        p.on_frontier
    )
}

/// Renders the run's provenance — the `tiscc frontier --stats-json`
/// artifact — as a single JSON object: the [`FrontierStats`] fields plus
/// matrix/frontier sizes, the run's elapsed wall clock, and (when
/// tracing is active) the embedded `tiscc.trace.v1` document, `null`
/// otherwise. `trace_json` is spliced in verbatim, so it must already be
/// valid JSON.
///
/// [`FrontierStats`]: crate::engine::FrontierStats
pub fn stats_to_json(report: &FrontierReport, elapsed_s: f64, trace_json: Option<&str>) -> String {
    let s = &report.stats;
    format!(
        "{{\"schema\":\"tiscc.frontier-stats.v1\",\"program\":{},\"mode\":{},\
         \"matrix_points\":{},\"frontier_points\":{},\"jobs\":{},\"disk_hits\":{},\
         \"computed\":{},\"corrupt_entries\":{},\"analytic_captures\":{},\
         \"duplicates_dropped\":{},\"elapsed_s\":{},\"trace\":{}}}\n",
        json_string(&report.program),
        json_string(report.mode.name()),
        report.points.len(),
        report.frontier().len(),
        s.jobs,
        s.disk_hits,
        s.computed,
        s.corrupt_entries,
        s.analytic_captures,
        s.duplicates_dropped,
        json_f64(elapsed_s),
        trace_json.map_or("null", str::trim_end),
    )
}

/// Formats a float as a JSON value: shortest round-trip text for finite
/// values, `null` otherwise (JSON has no NaN/inf).
pub fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

/// Escapes and quotes a string as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_frontier;
    use crate::spec::FrontierSpec;
    use tiscc_estimator::compiler::{Compiler, EstimateMode};
    use tiscc_hw::HardwareSpec;
    use tiscc_program::examples;

    fn sample_report() -> FrontierReport {
        let program = examples::bell_pair();
        let compiler = Compiler::new();
        let spec = FrontierSpec::new(
            vec![LayoutSpec::default(), LayoutSpec::checkerboard().with_grid(4, 4)],
            vec![HardwareSpec::h1(), HardwareSpec::projected()],
        )
        .with_distances(3, 5)
        .with_mode(EstimateMode::Analytic);
        run_frontier(&program, &spec, &compiler, None).unwrap()
    }

    #[test]
    fn csv_round_trips_bit_for_bit() {
        let report = sample_report();
        let parsed = matrix_from_csv(&matrix_to_csv(&report)).unwrap();
        assert_eq!(parsed.len(), report.points.len());
        for (a, b) in report.points.iter().zip(&parsed) {
            assert_eq!(a, b);
            assert_eq!(a.duration_s.to_bits(), b.duration_s.to_bits());
            assert_eq!(a.error.to_bits(), b.error.to_bits());
            assert_eq!(a.area_m2.to_bits(), b.area_m2.to_bits());
        }
    }

    #[test]
    fn frontier_csv_is_a_subset_of_the_matrix() {
        let report = sample_report();
        let matrix = matrix_from_csv(&matrix_to_csv(&report)).unwrap();
        let frontier = matrix_from_csv(&frontier_to_csv(&report)).unwrap();
        assert!(!frontier.is_empty());
        assert!(frontier.len() <= matrix.len());
        for p in &frontier {
            assert!(p.on_frontier);
            assert!(matrix.contains(p), "frontier point missing from matrix: {p:?}");
        }
    }

    #[test]
    fn malformed_csv_is_rejected_with_line_numbers() {
        assert!(matrix_from_csv("nonsense\n").unwrap_err().contains("header"));
        let report = sample_report();
        let mut text = matrix_to_csv(&report);
        text.push_str("lane,auto:2x2,3,h1,12\n");
        assert!(matrix_from_csv(&text).unwrap_err().contains("expected 10 fields"));
        let garbled = matrix_to_csv(&report).replace(",3,", ",three,");
        assert!(matrix_from_csv(&garbled).unwrap_err().contains("malformed"));
    }

    #[test]
    fn json_contains_every_point_and_the_stats() {
        let report = sample_report();
        let json = report_to_json(&report);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"program\":\"bell\""));
        assert!(json.contains("\"stats\":{\"jobs\":"));
        assert!(json.matches("\"on_frontier\":").count() == report.points.len());
        assert!(json.contains("\"grid\":[4,4]"));
        assert!(json.contains("\"auto_grid\":"));
    }

    #[test]
    fn json_floats_are_shortest_round_trip() {
        assert_eq!(json_f64(0.1), "0.1");
        assert_eq!(json_f64(1e-9), "1e-9");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}

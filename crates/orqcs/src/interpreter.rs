//! Execution of compiled TISCC hardware circuits on the stabilizer tableau.
//!
//! As in ORQCS, the interpreter "implements a parser and hardware model for
//! the TISCC instruction set so that the TISCC circuits, written in terms of
//! gates acting on qsites residing on the trapped-ion hardware, are
//! interpreted as unitary operations acting on a quantum state"
//! (paper Sec. 4). Concretely it:
//!
//! * binds every ion of the initial grid snapshot to a tableau qubit index,
//! * replays `Move`/`Junction` operations to keep the site → ion map current,
//! * cross-checks that every gate addresses the ion the compiler claims it
//!   does (an independent consistency check of the compiled circuit),
//! * applies Clifford gates to the tableau, records measurement outcomes by
//!   measurement index, and rejects non-Clifford gates (those are handled by
//!   the [`crate::quasi`] Monte-Carlo layer).

use std::collections::HashMap;

use rand::Rng;

use tiscc_grid::{QSite, QubitId};
use tiscc_hw::{Circuit, NativeOp, OpStream, OpView};
use tiscc_math::{Pauli, PauliOp};

use crate::gates::{clifford_1q, clifford_zz};
use crate::tableau::StabilizerTableau;

/// Errors raised while interpreting a circuit.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// A gate addressed a site that holds no ion at that point of the stream.
    NoIonAtSite(QSite),
    /// The ion found at a site differs from the one the compiler recorded.
    IonMismatch {
        /// Site addressed by the operation.
        site: QSite,
        /// Ion the interpreter believes is there.
        found: QubitId,
        /// Ion the compiler recorded.
        recorded: QubitId,
    },
    /// A non-Clifford gate was encountered in exact (non-Monte-Carlo) mode.
    NonClifford(NativeOp),
    /// The circuit references an ion that is not in the initial snapshot.
    UnknownQubit(QubitId),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::NoIonAtSite(s) => write!(f, "no ion at site {s}"),
            SimError::IonMismatch { site, found, recorded } => write!(
                f,
                "ion mismatch at {site}: interpreter sees {found:?}, circuit recorded {recorded:?}"
            ),
            SimError::NonClifford(op) => {
                write!(f, "non-Clifford gate {op:?} requires the quasi-Clifford estimator")
            }
            SimError::UnknownQubit(q) => write!(f, "unknown qubit {q:?}"),
        }
    }
}

impl std::error::Error for SimError {}

/// What to do when a `Z_{±π/8}` gate is encountered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NonCliffordPolicy {
    /// Fail with [`SimError::NonClifford`] (default for exact verification).
    Reject,
    /// Replace by one Clifford drawn from the quasi-probability decomposition
    /// of the T channel; the accumulated sample weight is reported in
    /// [`RunResult::sample_weight`]. Used by [`crate::quasi`].
    Sample,
}

/// The result of one circuit execution.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Final stabilizer state.
    pub tableau: StabilizerTableau,
    /// Measurement outcomes indexed by the circuit's measurement records
    /// (`true` = outcome 1).
    pub outcomes: Vec<bool>,
    /// Whether each outcome was deterministic given the preceding circuit.
    pub deterministic: Vec<bool>,
    /// Mapping from ion to tableau qubit index.
    pub qubit_index: HashMap<QubitId, usize>,
    /// Quasi-probability weight of this sample (1.0 for Clifford circuits).
    pub sample_weight: f64,
}

impl RunResult {
    /// Expectation value of a Hermitian Pauli operator expressed over *ions*
    /// (pairs of ion id and Pauli label). Returns ±1 or 0.
    pub fn expectation_on_ions(&self, ops: &[(QubitId, PauliOp)]) -> i8 {
        let n = self.tableau.num_qubits();
        let sparse: Vec<(usize, PauliOp)> =
            ops.iter().map(|&(q, p)| (self.qubit_index[&q], p)).collect();
        self.tableau.expectation(&Pauli::from_sparse(n, &sparse))
    }

    /// Parity (`false` = even) of the outcomes at the given measurement
    /// indices.
    pub fn outcome_parity(&self, indices: &[usize]) -> bool {
        indices.iter().fold(false, |acc, &i| acc ^ self.outcomes[i])
    }
}

/// Interprets compiled circuits against an initial ion placement.
#[derive(Clone, Debug)]
pub struct Interpreter {
    index_of: HashMap<QubitId, usize>,
    site_of: HashMap<usize, QSite>,
}

impl Interpreter {
    /// Creates an interpreter for the given initial placement (the grid
    /// snapshot taken before compilation started). Each ion becomes one
    /// tableau qubit, initially in |0⟩.
    pub fn new(initial_placement: &[(QubitId, QSite)]) -> Self {
        let mut index_of = HashMap::new();
        let mut site_of = HashMap::new();
        for (i, &(q, s)) in initial_placement.iter().enumerate() {
            index_of.insert(q, i);
            site_of.insert(i, s);
        }
        Interpreter { index_of, site_of }
    }

    /// Number of tableau qubits.
    pub fn num_qubits(&self) -> usize {
        self.index_of.len()
    }

    /// The tableau index assigned to an ion.
    pub fn index_of(&self, q: QubitId) -> Option<usize> {
        self.index_of.get(&q).copied()
    }

    /// Runs `circuit` in exact Clifford mode with the given RNG (random
    /// measurement outcomes are drawn from it).
    pub fn run<R: Rng + ?Sized>(
        &self,
        circuit: &Circuit,
        rng: &mut R,
    ) -> Result<RunResult, SimError> {
        self.run_with_policy(circuit, rng, NonCliffordPolicy::Reject)
    }

    /// Runs `circuit`, handling non-Clifford gates according to `policy`.
    ///
    /// The circuit is consumed as a logical op stream, so periodic
    /// (round-templated) circuits are replayed occurrence by occurrence
    /// without being materialized first.
    pub fn run_with_policy<R: Rng + ?Sized>(
        &self,
        circuit: &Circuit,
        rng: &mut R,
        policy: NonCliffordPolicy,
    ) -> Result<RunResult, SimError> {
        let n = self.num_qubits();
        let mut tableau = StabilizerTableau::zero_state(n);
        let mut occupant: HashMap<QSite, usize> =
            self.site_of.iter().map(|(&idx, &site)| (site, idx)).collect();
        let mut outcomes = vec![false; circuit.measurements().len()];
        let mut deterministic = vec![false; circuit.measurements().len()];
        let mut sample_weight = 1.0f64;

        let mut error: Option<SimError> = None;
        circuit.for_each_op(&mut |v: OpView<'_>| {
            if error.is_some() {
                return;
            }
            let op = v.op;
            let mut step = || -> Result<(), SimError> {
                match op.op {
                    NativeOp::Move | NativeOp::JunctionMove => {
                        let (from, to) = (op.sites[0], op.sites[1]);
                        let idx = *occupant.get(&from).ok_or(SimError::NoIonAtSite(from))?;
                        self.check_identity(idx, op.qubits[0], from)?;
                        occupant.remove(&from);
                        occupant.insert(to, idx);
                    }
                    NativeOp::PrepareZ => {
                        let idx = self.resolve(&occupant, op.sites[0], op.qubits[0])?;
                        tableau.reset_z(idx, rng);
                    }
                    NativeOp::MeasureZ => {
                        let idx = self.resolve(&occupant, op.sites[0], op.qubits[0])?;
                        let (bit, det) = tableau.measure_z(idx, rng);
                        if let Some(m) = v.measurement {
                            outcomes[m] = bit;
                            deterministic[m] = det;
                        }
                    }
                    NativeOp::ZZ => {
                        let a = self.resolve(&occupant, op.sites[0], op.qubits[0])?;
                        let b = self.resolve(&occupant, op.sites[1], op.qubits[1])?;
                        tableau.apply_2q(a, b, &clifford_zz());
                    }
                    NativeOp::ZPi8 | NativeOp::ZPi8Dag => {
                        let idx = self.resolve(&occupant, op.sites[0], op.qubits[0])?;
                        match policy {
                            NonCliffordPolicy::Reject => return Err(SimError::NonClifford(op.op)),
                            NonCliffordPolicy::Sample => {
                                sample_weight *= sample_t_channel(op.op, idx, &mut tableau, rng);
                            }
                        }
                    }
                    gate => {
                        let idx = self.resolve(&occupant, op.sites[0], op.qubits[0])?;
                        let action = clifford_1q(gate).ok_or(SimError::NonClifford(gate))?;
                        tableau.apply_1q(idx, &action);
                    }
                }
                Ok(())
            };
            if let Err(e) = step() {
                error = Some(e);
            }
        });
        if let Some(e) = error {
            return Err(e);
        }

        Ok(RunResult {
            tableau,
            outcomes,
            deterministic,
            qubit_index: self.index_of.clone(),
            sample_weight,
        })
    }

    fn resolve(
        &self,
        occupant: &HashMap<QSite, usize>,
        site: QSite,
        recorded: QubitId,
    ) -> Result<usize, SimError> {
        let idx = *occupant.get(&site).ok_or(SimError::NoIonAtSite(site))?;
        self.check_identity(idx, recorded, site)?;
        Ok(idx)
    }

    fn check_identity(&self, idx: usize, recorded: QubitId, site: QSite) -> Result<(), SimError> {
        let recorded_idx =
            self.index_of.get(&recorded).copied().ok_or(SimError::UnknownQubit(recorded))?;
        if recorded_idx != idx {
            // Find which ion `idx` corresponds to, for the error message.
            let found = self
                .index_of
                .iter()
                .find(|&(_, &v)| v == idx)
                .map(|(&k, _)| k)
                .unwrap_or(QubitId(u32::MAX));
            return Err(SimError::IonMismatch { site, found, recorded });
        }
        Ok(())
    }
}

/// Quasi-probability decomposition of the T-gate channel over the Clifford
/// channels `{ρ↦ρ, ρ↦ZρZ, ρ↦SρS†}` (and `S†` for `T†`):
/// `T ρ T† = 0.5·ρ − (√2−1)/2·ZρZ + (√2/2)·SρS†` (coefficients sum to one,
/// one-norm √2). A single term is sampled with probability proportional to
/// its magnitude and the returned weight is `±√2` accordingly (paper Sec. 4.1).
fn sample_t_channel<R: Rng + ?Sized>(
    op: NativeOp,
    qubit: usize,
    tableau: &mut StabilizerTableau,
    rng: &mut R,
) -> f64 {
    let c_i = 0.5f64;
    let c_z = -(std::f64::consts::SQRT_2 - 1.0) / 2.0;
    let c_s = std::f64::consts::FRAC_1_SQRT_2;
    let one_norm = c_i.abs() + c_z.abs() + c_s.abs();
    let draw: f64 = rng.gen_range(0.0..one_norm);
    let (action, sign) = if draw < c_i.abs() {
        (None, c_i.signum())
    } else if draw < c_i.abs() + c_z.abs() {
        (Some(NativeOp::ZPi2), c_z.signum())
    } else {
        // S for T, S† for T†.
        let s_like = if op == NativeOp::ZPi8 { NativeOp::ZPi4 } else { NativeOp::ZPi4Dag };
        (Some(s_like), c_s.signum())
    };
    if let Some(gate) = action {
        tableau.apply_1q(qubit, &clifford_1q(gate).expect("Clifford"));
    }
    sign * one_norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tiscc_hw::HardwareModel;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn bell_pair_circuit_through_full_stack() {
        let mut hw = HardwareModel::new(1, 1);
        let a = hw.place_qubit(QSite::new(0, 1)).unwrap();
        let b = hw.place_qubit(QSite::new(0, 2)).unwrap();
        let snapshot = hw.grid().snapshot();
        hw.prepare_z(a).unwrap();
        hw.prepare_z(b).unwrap();
        hw.hadamard(a).unwrap();
        hw.cnot(a, b).unwrap();

        let interp = Interpreter::new(&snapshot);
        let result = interp.run(hw.circuit(), &mut rng()).unwrap();
        assert_eq!(result.expectation_on_ions(&[(a, PauliOp::X), (b, PauliOp::X)]), 1);
        assert_eq!(result.expectation_on_ions(&[(a, PauliOp::Z), (b, PauliOp::Z)]), 1);
        assert_eq!(result.expectation_on_ions(&[(a, PauliOp::Z)]), 0);
        assert_eq!(result.sample_weight, 1.0);
    }

    #[test]
    fn movement_is_replayed_so_gates_hit_the_right_ion() {
        let mut hw = HardwareModel::new(1, 2);
        let a = hw.place_qubit(QSite::new(0, 1)).unwrap();
        let b = hw.place_qubit(QSite::new(0, 5)).unwrap();
        let snapshot = hw.grid().snapshot();
        hw.prepare_z(a).unwrap();
        hw.prepare_z(b).unwrap();
        // Move b next to a, entangle, measure both.
        hw.route_and_move(b, QSite::new(0, 2)).unwrap();
        hw.hadamard(a).unwrap();
        hw.cnot(a, b).unwrap();
        let ma = hw.measure_z(a, "a").unwrap();
        let mb = hw.measure_z(b, "b").unwrap();

        let interp = Interpreter::new(&snapshot);
        let result = interp.run(hw.circuit(), &mut rng()).unwrap();
        assert_eq!(result.outcomes[ma], result.outcomes[mb], "Bell pair halves agree");
        assert!(result.deterministic[mb]);
    }

    #[test]
    fn measurement_outcomes_recorded_per_index() {
        let mut hw = HardwareModel::new(1, 1);
        let q = hw.place_qubit(QSite::new(0, 1)).unwrap();
        let snapshot = hw.grid().snapshot();
        hw.prepare_z(q).unwrap();
        hw.pauli_x(q).unwrap();
        let m = hw.measure_z(q, "flipped").unwrap();
        let interp = Interpreter::new(&snapshot);
        let result = interp.run(hw.circuit(), &mut rng()).unwrap();
        assert!(result.outcomes[m], "X|0> measures 1");
        assert!(result.deterministic[m]);
    }

    #[test]
    fn non_clifford_is_rejected_in_exact_mode() {
        let mut hw = HardwareModel::new(1, 1);
        let q = hw.place_qubit(QSite::new(0, 1)).unwrap();
        let snapshot = hw.grid().snapshot();
        hw.prepare_z(q).unwrap();
        hw.t_gate(q).unwrap();
        let interp = Interpreter::new(&snapshot);
        let err = interp.run(hw.circuit(), &mut rng()).unwrap_err();
        assert!(matches!(err, SimError::NonClifford(NativeOp::ZPi8)));
    }

    #[test]
    fn prepare_resets_any_prior_state() {
        let mut hw = HardwareModel::new(1, 1);
        let q = hw.place_qubit(QSite::new(0, 1)).unwrap();
        let snapshot = hw.grid().snapshot();
        hw.prepare_z(q).unwrap();
        hw.hadamard(q).unwrap();
        hw.prepare_z(q).unwrap();
        let m = hw.measure_z(q, "after reset").unwrap();
        let interp = Interpreter::new(&snapshot);
        let result = interp.run(hw.circuit(), &mut rng()).unwrap();
        assert!(!result.outcomes[m]);
        assert!(result.deterministic[m]);
    }
}

//! Quasi-Clifford simulator — the verification substrate playing the role of
//! ORQCS (Oak Ridge Quasi-Clifford Simulator) in the TISCC paper (Sec. 4).
//!
//! The simulator consumes time-resolved hardware circuits produced by
//! `tiscc-hw`/`tiscc-core` — written in terms of native gates acting on
//! *qsites* of the trapped-ion grid — replays the ion movements to know which
//! ion each gate addresses, and interprets the gates as unitaries acting on a
//! stabilizer state.
//!
//! Components:
//! * [`tableau`] — an Aaronson–Gottesman stabilizer tableau with exact sign
//!   tracking, Pauli-string expectation values and stabilizer-generator
//!   extraction,
//! * [`dense`] — a small dense state-vector simulator used to cross-check
//!   every native-gate Clifford action and the composite-gate decompositions,
//! * [`gates`] — the Clifford conjugation action of every native operation,
//! * [`interpreter`] — executes a compiled [`tiscc_hw::Circuit`],
//! * [`quasi`] — Monte-Carlo quasi-probability sampling for the single
//!   non-Clifford native (`Z_{±π/8}`, the T gate), Sec. 4.1 of the paper,
//! * [`tomography`] — logical state and process tomography helpers (Sec. 4.2–4.4),
//! * [`postprocess`] — Pauli-frame / operator-movement corrections (Sec. 4.5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dense;
pub mod gates;
pub mod interpreter;
pub mod postprocess;
pub mod quasi;
pub mod tableau;
pub mod tomography;

pub use interpreter::{Interpreter, RunResult, SimError};
pub use quasi::QuasiCliffordEstimator;
pub use tableau::StabilizerTableau;
pub use tomography::{BlochVector, ProcessMap};

//! Clifford conjugation actions of the native trapped-ion gate set.
//!
//! A Clifford unitary is fully specified (up to global phase) by the images
//! of the Pauli generators under conjugation. For the native rotations
//! `P_θ = e^{-iPθ}` with `θ = ±π/4` the rule is: a generator `A` that
//! anticommutes with `P` maps to `A·(±iP)`; for `θ = π/2` it maps to `-A`.
//! Generators commuting with `P` are unchanged. The tables below are written
//! out explicitly and are cross-checked against the dense state-vector
//! simulator in this crate's tests.

use tiscc_hw::NativeOp;
use tiscc_math::{Pauli, PauliOp};

/// The image of the `X` and `Z` generators of one qubit under a single-qubit
/// Clifford, each given as a signed single-qubit Pauli.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Clifford1Q {
    /// Image of X: (label, negate?).
    pub x_image: (PauliOp, bool),
    /// Image of Z: (label, negate?).
    pub z_image: (PauliOp, bool),
}

impl Clifford1Q {
    /// The image of X as a phase-tracked single-qubit [`Pauli`].
    pub fn x_pauli(&self) -> Pauli {
        signed_single(self.x_image)
    }

    /// The image of Z as a phase-tracked single-qubit [`Pauli`].
    pub fn z_pauli(&self) -> Pauli {
        signed_single(self.z_image)
    }
}

fn signed_single(img: (PauliOp, bool)) -> Pauli {
    let mut p = Pauli::single(1, 0, img.0);
    if img.1 {
        p.negate();
    }
    p
}

/// The images of `X₁, Z₁, X₂, Z₂` under the native two-qubit `(ZZ)_{π/4}`
/// gate, as signed two-qubit Paulis given in sparse form.
#[derive(Clone, Debug)]
pub struct Clifford2Q {
    /// Image of X on the first qubit.
    pub x1: (Vec<(usize, PauliOp)>, bool),
    /// Image of Z on the first qubit.
    pub z1: (Vec<(usize, PauliOp)>, bool),
    /// Image of X on the second qubit.
    pub x2: (Vec<(usize, PauliOp)>, bool),
    /// Image of Z on the second qubit.
    pub z2: (Vec<(usize, PauliOp)>, bool),
}

/// Returns the Clifford action of a single-qubit native gate, or `None` if
/// the gate is not Clifford (`Z_{±π/8}`) or not single-qubit.
pub fn clifford_1q(op: NativeOp) -> Option<Clifford1Q> {
    use PauliOp::*;
    let (x_image, z_image) = match op {
        // X_{π/2} ≅ X: X -> X, Z -> -Z.
        NativeOp::XPi2 => ((X, false), (Z, true)),
        // X_{π/4} = √X: X -> X, Z -> -Y.
        NativeOp::XPi4 => ((X, false), (Y, true)),
        // X_{-π/4}: X -> X, Z -> Y.
        NativeOp::XPi4Dag => ((X, false), (Y, false)),
        // Y_{π/2} ≅ Y: X -> -X, Z -> -Z.
        NativeOp::YPi2 => ((X, true), (Z, true)),
        // Y_{π/4} = √Y: X -> -Z, Z -> X.
        NativeOp::YPi4 => ((Z, true), (X, false)),
        // Y_{-π/4}: X -> Z, Z -> -X.
        NativeOp::YPi4Dag => ((Z, false), (X, true)),
        // Z_{π/2} ≅ Z: X -> -X, Z -> Z.
        NativeOp::ZPi2 => ((X, true), (Z, false)),
        // Z_{π/4} ≅ S: X -> Y, Z -> Z.
        NativeOp::ZPi4 => ((Y, false), (Z, false)),
        // Z_{-π/4} ≅ S†: X -> -Y, Z -> Z.
        NativeOp::ZPi4Dag => ((Y, true), (Z, false)),
        // Preparation and measurement are handled by the tableau directly;
        // transport, ZZ and the non-Clifford T are not single-qubit Cliffords.
        _ => return None,
    };
    Some(Clifford1Q { x_image, z_image })
}

/// The Clifford action of the native `(ZZ)_{π/4}` interaction.
///
/// `X₁ → Y₁Z₂`, `Y₁ → -X₁Z₂`, `Z₁ → Z₁` (and symmetrically for qubit 2).
pub fn clifford_zz() -> Clifford2Q {
    use PauliOp::*;
    Clifford2Q {
        x1: (vec![(0, Y), (1, Z)], false),
        z1: (vec![(0, Z)], false),
        x2: (vec![(0, Z), (1, Y)], false),
        z2: (vec![(1, Z)], false),
    }
}

impl Clifford2Q {
    /// The four images as phase-tracked two-qubit Paulis, in the order
    /// `[X₁, Z₁, X₂, Z₂]`.
    pub fn images(&self) -> [Pauli; 4] {
        let build = |spec: &(Vec<(usize, PauliOp)>, bool)| {
            let mut p = Pauli::from_sparse(2, &spec.0);
            if spec.1 {
                p.negate();
            }
            p
        };
        [build(&self.x1), build(&self.z1), build(&self.x2), build(&self.z2)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{rotation_matrix, DenseState};

    const PI: f64 = std::f64::consts::PI;

    /// Checks a claimed conjugation image ⟨image⟩ = ⟨U P U†⟩ against the
    /// dense simulator on a set of fiducial input states.
    fn check_1q(op: NativeOp, axis: char, theta: f64) {
        let action = clifford_1q(op).expect("clifford");
        // Fiducial states: |0⟩, |+⟩, |+i⟩ prepared with exact rotations.
        let preps: Vec<Vec<(char, f64)>> = vec![
            vec![],
            vec![('Z', PI / 2.0), ('Y', PI / 4.0)], // H|0> = |+>
            vec![('Z', PI / 2.0), ('Y', PI / 4.0), ('Z', PI / 4.0)], // S H|0> = |+i>
        ];
        for prep in preps {
            for (gen, image) in [('X', action.x_image), ('Z', action.z_image)] {
                let mut before = DenseState::zero_state(1);
                for (a, t) in &prep {
                    before.apply_1q(0, &rotation_matrix(*a, *t));
                }
                let mut after = before.clone();
                after.apply_1q(0, &rotation_matrix(axis, theta));
                // ⟨ψ|U† gen U|ψ⟩ must equal ± ⟨ψ| image |ψ⟩ ... conjugation is
                // U gen U†, so compare ⟨Uψ| gen |Uψ⟩ with ⟨ψ| U† gen U |ψ⟩?
                // The tableau stores S -> U S U†, so after applying U the
                // expectation of `gen` in the evolved state equals the
                // expectation of U† gen U in the original. Equivalently the
                // image we store must satisfy:
                //   ⟨Uψ| image_of(gen) |Uψ⟩ = ⟨ψ| gen |ψ⟩.
                let expect_before = before.expectation_pauli(&[(0, gen)]);
                let img_char = match image.0 {
                    PauliOp::X => 'X',
                    PauliOp::Y => 'Y',
                    PauliOp::Z => 'Z',
                    PauliOp::I => 'I',
                };
                let mut expect_after = after.expectation_pauli(&[(0, img_char)]);
                if image.1 {
                    expect_after = -expect_after;
                }
                assert!(
                    (expect_before - expect_after).abs() < 1e-10,
                    "{op:?}: image of {gen} wrong (before {expect_before}, after {expect_after})"
                );
            }
        }
    }

    #[test]
    fn single_qubit_tables_match_dense_simulation() {
        check_1q(NativeOp::XPi2, 'X', PI / 2.0);
        check_1q(NativeOp::XPi4, 'X', PI / 4.0);
        check_1q(NativeOp::XPi4Dag, 'X', -PI / 4.0);
        check_1q(NativeOp::YPi2, 'Y', PI / 2.0);
        check_1q(NativeOp::YPi4, 'Y', PI / 4.0);
        check_1q(NativeOp::YPi4Dag, 'Y', -PI / 4.0);
        check_1q(NativeOp::ZPi2, 'Z', PI / 2.0);
        check_1q(NativeOp::ZPi4, 'Z', PI / 4.0);
        check_1q(NativeOp::ZPi4Dag, 'Z', -PI / 4.0);
    }

    #[test]
    fn non_clifford_and_transport_have_no_1q_action() {
        assert!(clifford_1q(NativeOp::ZPi8).is_none());
        assert!(clifford_1q(NativeOp::ZPi8Dag).is_none());
        assert!(clifford_1q(NativeOp::Move).is_none());
        assert!(clifford_1q(NativeOp::ZZ).is_none());
        assert!(clifford_1q(NativeOp::PrepareZ).is_none());
        assert!(clifford_1q(NativeOp::MeasureZ).is_none());
    }

    #[test]
    fn zz_action_matches_dense_simulation() {
        let action = clifford_zz();
        let images = action.images();
        let labels: [&[(usize, char)]; 4] = [&[(0, 'X')], &[(0, 'Z')], &[(1, 'X')], &[(1, 'Z')]];
        // Fiducial two-qubit product states.
        let preps: Vec<Vec<(usize, char, f64)>> = vec![
            vec![],
            vec![(0, 'Z', PI / 2.0), (0, 'Y', PI / 4.0)],
            vec![(1, 'Z', PI / 2.0), (1, 'Y', PI / 4.0)],
            vec![
                (0, 'Z', PI / 2.0),
                (0, 'Y', PI / 4.0),
                (1, 'Z', PI / 2.0),
                (1, 'Y', PI / 4.0),
                (1, 'Z', PI / 4.0),
            ],
        ];
        for prep in preps {
            for (gen, image) in labels.iter().zip(images.iter()) {
                let mut before = DenseState::zero_state(2);
                for (q, a, t) in &prep {
                    before.apply_1q(*q, &rotation_matrix(*a, *t));
                }
                let mut after = before.clone();
                after.apply_zz(0, 1, PI / 4.0);
                let expect_before = before.expectation_pauli(gen);
                // Convert the image Pauli into dense-simulator labels.
                let mut dense_ops = Vec::new();
                for q in 0..2 {
                    match image.op_at(q) {
                        PauliOp::I => {}
                        PauliOp::X => dense_ops.push((q, 'X')),
                        PauliOp::Y => dense_ops.push((q, 'Y')),
                        PauliOp::Z => dense_ops.push((q, 'Z')),
                    }
                }
                let mut expect_after = after.expectation_pauli(&dense_ops);
                if image.hermitian_sign() == Some(-1) {
                    expect_after = -expect_after;
                }
                assert!((expect_before - expect_after).abs() < 1e-10, "ZZ image of {gen:?} wrong");
            }
        }
    }
}

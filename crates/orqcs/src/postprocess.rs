//! Pauli-frame / operator-movement post-processing (paper Sec. 4.5).
//!
//! Several TISCC operations (Merge, Split, Measure X/Z, patch contraction,
//! corner movement) leave the value of a logical operator encoded not in the
//! final quantum state alone but in the *combination* of the state and
//! mid-circuit measurement outcomes. The compiler describes each such
//! quantity as a [`LogicalOutcome`] (a parity of measurement indices plus a
//! static sign); this module evaluates them against simulated outcomes and
//! applies sign corrections to logical-operator expectation values.

use tiscc_grid::QubitId;
use tiscc_math::PauliOp;

use crate::interpreter::RunResult;

/// A logical (classical) quantity defined as the parity of a set of
/// measurement outcomes, optionally inverted.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct LogicalOutcome {
    /// Human-readable name (e.g. `"XX"`, `"Z_L"`).
    pub name: String,
    /// Indices into the circuit's measurement records whose parity defines
    /// the value.
    pub parity_of: Vec<usize>,
    /// If true the parity is inverted (static −1 byproduct).
    pub invert: bool,
}

impl LogicalOutcome {
    /// Evaluates the outcome against a simulation run: returns `+1` or `-1`
    /// (eigenvalue convention: outcome bit 0 ↦ +1).
    pub fn eigenvalue(&self, run: &RunResult) -> i8 {
        let mut bit = run.outcome_parity(&self.parity_of);
        if self.invert {
            bit = !bit;
        }
        if bit {
            -1
        } else {
            1
        }
    }
}

/// A logical Pauli operator together with its Pauli-frame corrections: the
/// physical representative, the measurement indices whose parity flips its
/// sign, and a static sign.
#[derive(Clone, Debug, PartialEq)]
pub struct CorrectedOperator {
    /// Physical support as (ion, Pauli label) pairs.
    pub support: Vec<(QubitId, PauliOp)>,
    /// Measurement indices whose outcome parity flips the sign.
    pub frame: Vec<usize>,
    /// Static sign flip accumulated at compile time.
    pub invert: bool,
}

impl CorrectedOperator {
    /// The corrected expectation value in a simulation run: the tableau
    /// expectation of the representative times the frame sign.
    pub fn expectation(&self, run: &RunResult) -> i8 {
        let raw = run.expectation_on_ions(&self.support);
        let mut sign = 1i8;
        if run.outcome_parity(&self.frame) {
            sign = -sign;
        }
        if self.invert {
            sign = -sign;
        }
        raw * sign
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interpreter::Interpreter;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tiscc_grid::QSite;
    use tiscc_hw::HardwareModel;

    #[test]
    fn teleportation_style_correction_recovers_state() {
        // One-bit X-teleportation: prepare |+> on a and |0> on b, CNOT(a,b),
        // measure a in X; b then holds |+> up to a Z correction conditioned
        // on the outcome. The corrected X-expectation of b must always be +1
        // even though the uncorrected one is ±1 depending on the measurement.
        let mut saw_nontrivial_frame = false;
        for seed in 0..20u64 {
            let mut hw = HardwareModel::new(1, 1);
            let a = hw.place_qubit(QSite::new(0, 1)).unwrap();
            let b = hw.place_qubit(QSite::new(0, 2)).unwrap();
            let snapshot = hw.grid().snapshot();
            hw.prepare_z(a).unwrap();
            hw.prepare_z(b).unwrap();
            hw.hadamard(a).unwrap();
            hw.cnot(a, b).unwrap();
            let m = hw.measure_x(a, "teleport frame").unwrap();

            let interp = Interpreter::new(&snapshot);
            let mut r = StdRng::seed_from_u64(seed);
            let run = interp.run(hw.circuit(), &mut r).unwrap();

            let corrected =
                CorrectedOperator { support: vec![(b, PauliOp::X)], frame: vec![m], invert: false };
            // Uncorrected expectation flips sign with the outcome; corrected
            // is always +1.
            let raw = run.expectation_on_ions(&[(b, PauliOp::X)]);
            if run.outcomes[m] {
                saw_nontrivial_frame = true;
                assert_eq!(raw, -1);
            } else {
                assert_eq!(raw, 1);
            }
            assert_eq!(corrected.expectation(&run), 1);

            let outcome =
                LogicalOutcome { name: "frame bit".into(), parity_of: vec![m], invert: false };
            assert_eq!(outcome.eigenvalue(&run), if run.outcomes[m] { -1 } else { 1 });
        }
        assert!(saw_nontrivial_frame, "at least one shot must need a correction");
    }

    #[test]
    fn inverted_outcome_flips_eigenvalue() {
        let mut hw = HardwareModel::new(1, 1);
        let q = hw.place_qubit(QSite::new(0, 1)).unwrap();
        let snapshot = hw.grid().snapshot();
        hw.prepare_z(q).unwrap();
        let m = hw.measure_z(q, "zero").unwrap();
        let interp = Interpreter::new(&snapshot);
        let run = interp.run(hw.circuit(), &mut StdRng::seed_from_u64(1)).unwrap();
        let plain = LogicalOutcome { name: "m".into(), parity_of: vec![m], invert: false };
        let flipped = LogicalOutcome { name: "m".into(), parity_of: vec![m], invert: true };
        assert_eq!(plain.eigenvalue(&run), 1);
        assert_eq!(flipped.eigenvalue(&run), -1);
    }
}

//! Monte-Carlo estimation of expectation values for near-Clifford circuits.
//!
//! The only non-Clifford native gate is `Z_{±π/8}` (the T gate), which TISCC
//! emits in the T-state injection circuit. Following the paper (Sec. 4.1):
//! "each non-Clifford gate is represented by a decomposition of Clifford
//! gates, and in each sample, only one of these Clifford gates is randomly
//! chosen to be simulated. … the weight of the sample is adjusted based on
//! the probability of the selected Clifford gate. Thus the expectation value
//! is computed via a Monte Carlo process."
//!
//! The estimator repeatedly runs the [`Interpreter`] in sampling mode and
//! averages `weight × ⟨P⟩_sample`. For circuits with `t` T gates the sample
//! variance scales with the one-norm `(√2)^{2t}`; TISCC only ever needs
//! `t = 1`, so a few thousand samples give per-mille accuracy.

use rand::Rng;

use tiscc_grid::QubitId;
use tiscc_hw::Circuit;
use tiscc_math::PauliOp;

use crate::interpreter::{Interpreter, NonCliffordPolicy, SimError};

/// Monte-Carlo quasi-Clifford expectation estimator.
#[derive(Clone, Debug)]
pub struct QuasiCliffordEstimator {
    samples: usize,
}

impl Default for QuasiCliffordEstimator {
    fn default() -> Self {
        QuasiCliffordEstimator { samples: 4000 }
    }
}

impl QuasiCliffordEstimator {
    /// An estimator that averages over `samples` Monte-Carlo shots.
    pub fn new(samples: usize) -> Self {
        assert!(samples > 0);
        QuasiCliffordEstimator { samples }
    }

    /// Number of Monte-Carlo shots per estimate.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Estimates the expectation value of a Hermitian Pauli operator (given
    /// over ions) at the end of `circuit`.
    ///
    /// Works for Clifford-only circuits too (every sample then has weight 1
    /// and the same ±1/0 value, so the estimate is exact).
    pub fn estimate_expectation<R: Rng + ?Sized>(
        &self,
        interpreter: &Interpreter,
        circuit: &Circuit,
        observable: &[(QubitId, PauliOp)],
        rng: &mut R,
    ) -> Result<f64, SimError> {
        let mut acc = 0.0f64;
        for _ in 0..self.samples {
            let result = interpreter.run_with_policy(circuit, rng, NonCliffordPolicy::Sample)?;
            let value = result.expectation_on_ions(observable) as f64;
            acc += result.sample_weight * value;
        }
        Ok(acc / self.samples as f64)
    }

    /// Estimates the expectation value of a Pauli observable whose sign is
    /// additionally corrected by the parity of the listed measurement
    /// outcomes in each sample (the Sec. 4.5 post-processing rule applied
    /// shot by shot).
    pub fn estimate_corrected_expectation<R: Rng + ?Sized>(
        &self,
        interpreter: &Interpreter,
        circuit: &Circuit,
        observable: &[(QubitId, PauliOp)],
        correction_measurements: &[usize],
        rng: &mut R,
    ) -> Result<f64, SimError> {
        let mut acc = 0.0f64;
        for _ in 0..self.samples {
            let result = interpreter.run_with_policy(circuit, rng, NonCliffordPolicy::Sample)?;
            let mut value = result.expectation_on_ions(observable) as f64;
            if result.outcome_parity(correction_measurements) {
                value = -value;
            }
            acc += result.sample_weight * value;
        }
        Ok(acc / self.samples as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tiscc_grid::QSite;
    use tiscc_hw::HardwareModel;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn clifford_circuit_estimates_are_exact() {
        let mut hw = HardwareModel::new(1, 1);
        let q = hw.place_qubit(QSite::new(0, 1)).unwrap();
        let snapshot = hw.grid().snapshot();
        hw.prepare_z(q).unwrap();
        hw.hadamard(q).unwrap();
        let interp = Interpreter::new(&snapshot);
        let est = QuasiCliffordEstimator::new(50);
        let x = est
            .estimate_expectation(&interp, hw.circuit(), &[(q, PauliOp::X)], &mut rng())
            .unwrap();
        let z = est
            .estimate_expectation(&interp, hw.circuit(), &[(q, PauliOp::Z)], &mut rng())
            .unwrap();
        assert!((x - 1.0).abs() < 1e-12);
        assert!(z.abs() < 1e-12);
    }

    #[test]
    fn t_state_expectations_converge_statistically() {
        // |T⟩ = T H |0⟩: ⟨X⟩ = ⟨Y⟩ = 1/√2 ≈ 0.7071, ⟨Z⟩ = 0.
        let mut hw = HardwareModel::new(1, 1);
        let q = hw.place_qubit(QSite::new(0, 1)).unwrap();
        let snapshot = hw.grid().snapshot();
        hw.prepare_z(q).unwrap();
        hw.hadamard(q).unwrap();
        hw.t_gate(q).unwrap();
        let interp = Interpreter::new(&snapshot);
        let est = QuasiCliffordEstimator::new(20000);
        let mut r = rng();
        let x =
            est.estimate_expectation(&interp, hw.circuit(), &[(q, PauliOp::X)], &mut r).unwrap();
        let y =
            est.estimate_expectation(&interp, hw.circuit(), &[(q, PauliOp::Y)], &mut r).unwrap();
        let z =
            est.estimate_expectation(&interp, hw.circuit(), &[(q, PauliOp::Z)], &mut r).unwrap();
        let target = std::f64::consts::FRAC_1_SQRT_2;
        assert!((x - target).abs() < 0.05, "⟨X⟩ = {x}");
        assert!((y - target).abs() < 0.05, "⟨Y⟩ = {y}");
        assert!(z.abs() < 0.05, "⟨Z⟩ = {z}");
    }

    #[test]
    fn default_sample_count_is_reasonable() {
        assert!(QuasiCliffordEstimator::default().samples() >= 1000);
    }
}

//! Logical state and process tomography helpers (paper Secs. 4.2–4.4).
//!
//! Verification of TISCC output works in the *logical* sub-space: the
//! simulator provides expectation values of the logical Pauli operators
//! (physical Pauli strings, possibly sign-corrected by measurement outcomes),
//! from which single- and two-qubit density matrices are reconstructed
//! following Nielsen & Chuang. For Clifford operations the reconstruction is
//! exact; for the T-injection circuit it is statistical.

/// The Bloch vector `(⟨X⟩, ⟨Y⟩, ⟨Z⟩)` of a single (logical) qubit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlochVector {
    /// ⟨X⟩ component.
    pub x: f64,
    /// ⟨Y⟩ component.
    pub y: f64,
    /// ⟨Z⟩ component.
    pub z: f64,
}

impl BlochVector {
    /// Constructor.
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        BlochVector { x, y, z }
    }

    /// The six canonical single-qubit stabilizer states used as fiducial
    /// inputs for process tomography, with their names.
    pub fn fiducials() -> [(&'static str, BlochVector); 6] {
        [
            ("|0>", BlochVector::new(0.0, 0.0, 1.0)),
            ("|1>", BlochVector::new(0.0, 0.0, -1.0)),
            ("|+>", BlochVector::new(1.0, 0.0, 0.0)),
            ("|->", BlochVector::new(-1.0, 0.0, 0.0)),
            ("|+i>", BlochVector::new(0.0, 1.0, 0.0)),
            ("|-i>", BlochVector::new(0.0, -1.0, 0.0)),
        ]
    }

    /// Euclidean distance to another Bloch vector.
    pub fn distance(&self, other: &BlochVector) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2) + (self.z - other.z).powi(2))
            .sqrt()
    }

    /// Fidelity between the two (possibly mixed) single-qubit states with
    /// these Bloch vectors, assuming at least one of them is pure:
    /// `F = (1 + r⃗₁·r⃗₂)/2`.
    pub fn fidelity_with_pure(&self, pure: &BlochVector) -> f64 {
        0.5 * (1.0 + self.x * pure.x + self.y * pure.y + self.z * pure.z)
    }

    /// Length of the Bloch vector (1 for pure states).
    pub fn purity_radius(&self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }
}

/// The affine map `r⃗ ↦ M·r⃗ + c⃗` a single-(logical-)qubit operation induces
/// on Bloch vectors. For unitary Cliffords `c⃗ = 0` and `M` is a signed
/// permutation matrix; for measurements/resets `M` is a projector-like
/// contraction. This is an equivalent, conveniently comparable packaging of
/// the process matrix obtained from process tomography.
#[derive(Clone, Debug, PartialEq)]
pub struct ProcessMap {
    /// The 3×3 linear part, row-major (`m[i][j]` maps input component j to
    /// output component i; components ordered X, Y, Z).
    pub m: [[f64; 3]; 3],
    /// The affine offset.
    pub c: [f64; 3],
}

impl ProcessMap {
    /// Reconstructs the affine map from the images of the six fiducial
    /// states: for each axis the column of `M` is `(r⃗₊ − r⃗₋)/2` and the
    /// offset is the average of `(r⃗₊ + r⃗₋)/2` over the three axes.
    ///
    /// `images` must be ordered like [`BlochVector::fiducials`]:
    /// `|0⟩, |1⟩, |+⟩, |−⟩, |+i⟩, |−i⟩`.
    pub fn from_fiducial_images(images: &[BlochVector; 6]) -> Self {
        let pairs = [(2usize, 3usize, 0usize), (4, 5, 1), (0, 1, 2)]; // (plus, minus, column)
        let mut m = [[0.0; 3]; 3];
        let mut c = [0.0; 3];
        for &(p, mi, col) in &pairs {
            let plus = images[p];
            let minus = images[mi];
            let half_diff =
                [(plus.x - minus.x) / 2.0, (plus.y - minus.y) / 2.0, (plus.z - minus.z) / 2.0];
            let half_sum =
                [(plus.x + minus.x) / 2.0, (plus.y + minus.y) / 2.0, (plus.z + minus.z) / 2.0];
            for row in 0..3 {
                m[row][col] = half_diff[row];
                c[row] += half_sum[row] / 3.0;
            }
        }
        ProcessMap { m, c }
    }

    /// The ideal map of the identity channel.
    pub fn identity() -> Self {
        ProcessMap { m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]], c: [0.0; 3] }
    }

    /// The ideal map of the Hadamard gate (X↔Z, Y↦−Y).
    pub fn hadamard() -> Self {
        ProcessMap { m: [[0.0, 0.0, 1.0], [0.0, -1.0, 0.0], [1.0, 0.0, 0.0]], c: [0.0; 3] }
    }

    /// The ideal map of a Pauli gate (`'X'`, `'Y'` or `'Z'`).
    pub fn pauli(axis: char) -> Self {
        let keep = match axis {
            'X' => 0,
            'Y' => 1,
            'Z' => 2,
            _ => panic!("unknown Pauli axis {axis}"),
        };
        let mut m = [[0.0; 3]; 3];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = if i == keep { 1.0 } else { -1.0 };
        }
        ProcessMap { m, c: [0.0; 3] }
    }

    /// Applies the map to a Bloch vector.
    pub fn apply(&self, r: &BlochVector) -> BlochVector {
        let v = [r.x, r.y, r.z];
        let mut out = [0.0; 3];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.c[i] + (0..3).map(|j| self.m[i][j] * v[j]).sum::<f64>();
        }
        BlochVector::new(out[0], out[1], out[2])
    }

    /// Largest absolute entry-wise deviation from another map.
    pub fn max_deviation(&self, other: &ProcessMap) -> f64 {
        let mut worst: f64 = 0.0;
        for i in 0..3 {
            for j in 0..3 {
                worst = worst.max((self.m[i][j] - other.m[i][j]).abs());
            }
            worst = worst.max((self.c[i] - other.c[i]).abs());
        }
        worst
    }
}

/// Reconstructs a two-qubit logical density matrix in the Pauli basis from
/// the 15 non-trivial Pauli expectation values. The value is returned as the
/// table `e[i][j] = ⟨σ_i ⊗ σ_j⟩` with `σ_0 = I, σ_1 = X, σ_2 = Y, σ_3 = Z`
/// and `e[0][0] = 1`. Fidelity with pure stabilizer targets can be computed
/// with [`two_qubit_fidelity_with_stabilizer_target`].
pub type TwoQubitPauliTable = [[f64; 4]; 4];

/// Fidelity `⟨ψ|ρ|ψ⟩` of a two-qubit state given by its Pauli expectation
/// table with a pure stabilizer target state given by its own (±1) table:
/// `F = (1/4) Σ_{ij} e_ρ[i][j] · e_ψ[i][j]`.
pub fn two_qubit_fidelity_with_stabilizer_target(
    rho: &TwoQubitPauliTable,
    target: &TwoQubitPauliTable,
) -> f64 {
    let mut acc = 0.0;
    for i in 0..4 {
        for j in 0..4 {
            acc += rho[i][j] * target[i][j];
        }
    }
    acc / 4.0
}

/// The Pauli expectation table of the Bell state `(|00⟩ + |11⟩)/√2`
/// (stabilized by `XX` and `ZZ`).
pub fn bell_phi_plus_table() -> TwoQubitPauliTable {
    let mut t = [[0.0; 4]; 4];
    t[0][0] = 1.0;
    t[1][1] = 1.0; // XX
    t[2][2] = -1.0; // YY
    t[3][3] = 1.0; // ZZ
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_map_reconstruction() {
        let images: Vec<BlochVector> = BlochVector::fiducials().iter().map(|&(_, b)| b).collect();
        let map = ProcessMap::from_fiducial_images(&images.clone().try_into().unwrap());
        assert!(map.max_deviation(&ProcessMap::identity()) < 1e-12);
    }

    #[test]
    fn hadamard_map_reconstruction() {
        let ideal = ProcessMap::hadamard();
        let images: Vec<BlochVector> =
            BlochVector::fiducials().iter().map(|&(_, b)| ideal.apply(&b)).collect();
        let map = ProcessMap::from_fiducial_images(&images.clone().try_into().unwrap());
        assert!(map.max_deviation(&ideal) < 1e-12);
        // And it differs measurably from the identity.
        assert!(map.max_deviation(&ProcessMap::identity()) > 0.9);
    }

    #[test]
    fn pauli_maps_have_expected_signs() {
        let x = ProcessMap::pauli('X');
        assert_eq!(x.m[0][0], 1.0);
        assert_eq!(x.m[1][1], -1.0);
        assert_eq!(x.m[2][2], -1.0);
        let z = ProcessMap::pauli('Z');
        assert_eq!(z.m[2][2], 1.0);
        assert_eq!(z.m[0][0], -1.0);
    }

    #[test]
    fn measurement_like_map_detected_via_offset() {
        // A Z-basis "reset to |0⟩" channel maps every input to (0,0,1).
        let images = [BlochVector::new(0.0, 0.0, 1.0); 6];
        let map = ProcessMap::from_fiducial_images(&images);
        assert!(map.max_deviation(&ProcessMap::identity()) > 0.9);
        assert!((map.c[2] - 1.0).abs() < 1e-12);
        for row in map.m {
            for entry in row {
                assert!(entry.abs() < 1e-12);
            }
        }
    }

    #[test]
    fn bloch_fidelity_and_distance() {
        let plus = BlochVector::new(1.0, 0.0, 0.0);
        let minus = BlochVector::new(-1.0, 0.0, 0.0);
        assert!((plus.fidelity_with_pure(&plus) - 1.0).abs() < 1e-12);
        assert!(plus.fidelity_with_pure(&minus).abs() < 1e-12);
        assert!((plus.distance(&minus) - 2.0).abs() < 1e-12);
        assert!((plus.purity_radius() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bell_table_fidelity() {
        let bell = bell_phi_plus_table();
        assert!((two_qubit_fidelity_with_stabilizer_target(&bell, &bell) - 1.0).abs() < 1e-12);
        // The maximally mixed state has fidelity 1/4 with any pure state.
        let mut mixed = [[0.0; 4]; 4];
        mixed[0][0] = 1.0;
        assert!((two_qubit_fidelity_with_stabilizer_target(&mixed, &bell) - 0.25).abs() < 1e-12);
    }
}

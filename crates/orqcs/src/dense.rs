//! A small dense state-vector simulator.
//!
//! Used as an independent reference to validate the Clifford conjugation
//! tables of [`crate::gates`] and the composite-gate decompositions of the
//! hardware model (Hadamard, CNOT) on few-qubit registers. It supports the
//! exact native rotations `P_θ = e^{-iPθ}` including the non-Clifford
//! `Z_{π/8}`, so T-state injection can be checked exactly on small systems.

/// A complex number (we avoid external dependencies for this tiny need).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// 0 + 0i.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// 1 + 0i.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// 0 + 1i.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Constructor.
    pub fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Self {
        C64 { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        C64 { re: self.re, im: -self.im }
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

impl std::ops::Add for C64 {
    type Output = C64;
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Sub for C64 {
    type Output = C64;
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::Mul for C64 {
    type Output = C64;
    fn mul(self, rhs: C64) -> C64 {
        C64::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl std::ops::Mul<f64> for C64 {
    type Output = C64;
    fn mul(self, rhs: f64) -> C64 {
        C64::new(self.re * rhs, self.im * rhs)
    }
}

/// A 2×2 complex matrix (single-qubit gate).
pub type Mat2 = [[C64; 2]; 2];

/// Dense state-vector over `n` qubits (`n ≤ 20` practically; tests use ≤ 6).
#[derive(Clone, Debug)]
pub struct DenseState {
    n: usize,
    amps: Vec<C64>,
}

impl DenseState {
    /// |0…0⟩ on `n` qubits.
    pub fn zero_state(n: usize) -> Self {
        let mut amps = vec![C64::ZERO; 1 << n];
        amps[0] = C64::ONE;
        DenseState { n, amps }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The raw amplitudes (little-endian: qubit 0 is the least significant bit).
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Applies a single-qubit unitary to `qubit`.
    pub fn apply_1q(&mut self, qubit: usize, u: &Mat2) {
        assert!(qubit < self.n);
        let stride = 1usize << qubit;
        for base in 0..self.amps.len() {
            if base & stride == 0 {
                let a = self.amps[base];
                let b = self.amps[base | stride];
                self.amps[base] = u[0][0] * a + u[0][1] * b;
                self.amps[base | stride] = u[1][0] * a + u[1][1] * b;
            }
        }
    }

    /// Applies `e^{-iθ Z⊗Z}` between two qubits (the native two-qubit gate).
    pub fn apply_zz(&mut self, q1: usize, q2: usize, theta: f64) {
        assert!(q1 < self.n && q2 < self.n && q1 != q2);
        for (idx, amp) in self.amps.iter_mut().enumerate() {
            let z1 = if idx >> q1 & 1 == 1 { -1.0 } else { 1.0 };
            let z2 = if idx >> q2 & 1 == 1 { -1.0 } else { 1.0 };
            *amp = *amp * C64::cis(-theta * z1 * z2);
        }
    }

    /// Expectation value of a Pauli string given as `(qubit, 'X'|'Y'|'Z')`
    /// pairs (all other qubits identity). Returns a real number.
    pub fn expectation_pauli(&self, ops: &[(usize, char)]) -> f64 {
        // ⟨ψ|P|ψ⟩ = Σ_j conj(ψ_j) (P ψ)_j
        let mut acc = C64::ZERO;
        for (idx, amp) in self.amps.iter().enumerate() {
            // Compute P|idx⟩ = phase * |idx'⟩.
            let mut target = idx;
            let mut phase = C64::ONE;
            for &(q, p) in ops {
                let bit = idx >> q & 1;
                match p {
                    'X' => target ^= 1 << q,
                    'Y' => {
                        target ^= 1 << q;
                        // Y|0⟩ = i|1⟩, Y|1⟩ = -i|0⟩
                        phase = phase * if bit == 0 { C64::I } else { C64::new(0.0, -1.0) };
                    }
                    'Z' => {
                        if bit == 1 {
                            phase = phase * C64::new(-1.0, 0.0);
                        }
                    }
                    _ => panic!("unknown Pauli label {p}"),
                }
            }
            acc = acc + self.amps[target].conj() * phase * *amp;
        }
        acc.re
    }

    /// Probability that measuring `qubit` in the Z basis yields 1.
    pub fn prob_one(&self, qubit: usize) -> f64 {
        self.amps
            .iter()
            .enumerate()
            .filter(|(idx, _)| idx >> qubit & 1 == 1)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Fidelity |⟨other|self⟩|² with another state of the same size.
    pub fn fidelity(&self, other: &DenseState) -> f64 {
        assert_eq!(self.n, other.n);
        let mut acc = C64::ZERO;
        for (a, b) in self.amps.iter().zip(other.amps.iter()) {
            acc = acc + b.conj() * *a;
        }
        acc.norm_sqr()
    }
}

/// The matrix of a native single-qubit rotation `P_θ = e^{-iPθ}`.
pub fn rotation_matrix(axis: char, theta: f64) -> Mat2 {
    let c = theta.cos();
    let s = theta.sin();
    match axis {
        // e^{-iXθ} = cosθ I - i sinθ X
        'X' => [[C64::new(c, 0.0), C64::new(0.0, -s)], [C64::new(0.0, -s), C64::new(c, 0.0)]],
        // e^{-iYθ} = cosθ I - i sinθ Y ; Y = [[0,-i],[i,0]]
        'Y' => [[C64::new(c, 0.0), C64::new(-s, 0.0)], [C64::new(s, 0.0), C64::new(c, 0.0)]],
        // e^{-iZθ} = diag(e^{-iθ}, e^{iθ})
        'Z' => [[C64::cis(-theta), C64::ZERO], [C64::ZERO, C64::cis(theta)]],
        _ => panic!("unknown axis {axis}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PI: f64 = std::f64::consts::PI;

    #[test]
    fn x_pi2_flips_zero_to_one() {
        let mut s = DenseState::zero_state(1);
        s.apply_1q(0, &rotation_matrix('X', PI / 2.0));
        assert!((s.prob_one(0) - 1.0).abs() < 1e-12);
        assert!((s.expectation_pauli(&[(0, 'Z')]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn hadamard_decomposition_matches_plus_state() {
        // H = Y_{π/4} · Z_{π/2} up to global phase: |0⟩ -> |+⟩.
        let mut s = DenseState::zero_state(1);
        s.apply_1q(0, &rotation_matrix('Z', PI / 2.0));
        s.apply_1q(0, &rotation_matrix('Y', PI / 4.0));
        assert!((s.expectation_pauli(&[(0, 'X')]) - 1.0).abs() < 1e-12);
        assert!(s.expectation_pauli(&[(0, 'Z')]).abs() < 1e-12);
    }

    #[test]
    fn cnot_decomposition_creates_bell_pair() {
        // Prepare |+0⟩ then apply the H1-style CNOT decomposition
        // (H_t, Z_-π/4(c), Z_-π/4(t), ZZ_{π/4}, H_t) with qubit 0 as control.
        let mut s = DenseState::zero_state(2);
        // |+⟩ on control.
        s.apply_1q(0, &rotation_matrix('Z', PI / 2.0));
        s.apply_1q(0, &rotation_matrix('Y', PI / 4.0));
        // CNOT(0 -> 1):
        s.apply_1q(1, &rotation_matrix('Z', PI / 2.0));
        s.apply_1q(1, &rotation_matrix('Y', PI / 4.0));
        s.apply_1q(0, &rotation_matrix('Z', -PI / 4.0));
        s.apply_1q(1, &rotation_matrix('Z', -PI / 4.0));
        s.apply_zz(0, 1, PI / 4.0);
        s.apply_1q(1, &rotation_matrix('Z', PI / 2.0));
        s.apply_1q(1, &rotation_matrix('Y', PI / 4.0));

        // Bell state stabilizers XX and ZZ have expectation +1; single-qubit
        // Z has expectation 0.
        assert!((s.expectation_pauli(&[(0, 'X'), (1, 'X')]) - 1.0).abs() < 1e-10);
        assert!((s.expectation_pauli(&[(0, 'Z'), (1, 'Z')]) - 1.0).abs() < 1e-10);
        assert!(s.expectation_pauli(&[(0, 'Z')]).abs() < 1e-10);
    }

    #[test]
    fn t_state_injection_expectations() {
        // |T⟩ = Z_{π/8} H |0⟩: ⟨X⟩ = ⟨Y⟩ = 1/√2, ⟨Z⟩ = 0.
        let mut s = DenseState::zero_state(1);
        s.apply_1q(0, &rotation_matrix('Z', PI / 2.0));
        s.apply_1q(0, &rotation_matrix('Y', PI / 4.0));
        s.apply_1q(0, &rotation_matrix('Z', PI / 8.0));
        let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
        assert!((s.expectation_pauli(&[(0, 'X')]) - inv_sqrt2).abs() < 1e-12);
        assert!((s.expectation_pauli(&[(0, 'Y')]) - inv_sqrt2).abs() < 1e-12);
        assert!(s.expectation_pauli(&[(0, 'Z')]).abs() < 1e-12);
    }

    #[test]
    fn fidelity_of_identical_and_orthogonal_states() {
        let a = DenseState::zero_state(2);
        let mut b = DenseState::zero_state(2);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
        b.apply_1q(0, &rotation_matrix('X', PI / 2.0));
        assert!(a.fidelity(&b) < 1e-12);
    }
}

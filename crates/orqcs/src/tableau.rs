//! Stabilizer tableau simulation (Aaronson–Gottesman style) with exact sign
//! tracking.
//!
//! The state of `n` qubits is represented by `n` stabilizer generators and
//! `n` destabilizer generators, each a phase-tracked [`Pauli`]. All native
//! Clifford gates, Z-basis measurements (random outcomes drawn from a caller
//! provided RNG), qubit resets, Pauli-string expectation values and
//! stabilizer-group membership tests are supported. This is the engine behind
//! the ORQCS-style verification of TISCC circuits (paper Sec. 4).

use rand::Rng;

use tiscc_math::{F2Matrix, Pauli, PauliOp};

use crate::gates::{Clifford1Q, Clifford2Q};

/// A stabilizer state on `n` qubits.
#[derive(Clone, Debug)]
pub struct StabilizerTableau {
    n: usize,
    stabs: Vec<Pauli>,
    destabs: Vec<Pauli>,
}

impl StabilizerTableau {
    /// The all-|0⟩ state: stabilizers `Z_i`, destabilizers `X_i`.
    pub fn zero_state(n: usize) -> Self {
        let stabs = (0..n).map(|i| Pauli::single(n, i, PauliOp::Z)).collect();
        let destabs = (0..n).map(|i| Pauli::single(n, i, PauliOp::X)).collect();
        StabilizerTableau { n, stabs, destabs }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The current stabilizer generators.
    pub fn stabilizers(&self) -> &[Pauli] {
        &self.stabs
    }

    /// Applies a single-qubit Clifford (given by its conjugation action) to
    /// `qubit`.
    pub fn apply_1q(&mut self, qubit: usize, action: &Clifford1Q) {
        assert!(qubit < self.n);
        let img_x = action.x_pauli();
        let img_z = action.z_pauli();
        for row in self.stabs.iter_mut().chain(self.destabs.iter_mut()) {
            conjugate_row_1q(row, qubit, &img_x, &img_z);
        }
    }

    /// Applies a two-qubit Clifford (given by its conjugation action) to
    /// `(q1, q2)`, in that operand order.
    pub fn apply_2q(&mut self, q1: usize, q2: usize, action: &Clifford2Q) {
        assert!(q1 < self.n && q2 < self.n && q1 != q2);
        let images = action.images();
        for row in self.stabs.iter_mut().chain(self.destabs.iter_mut()) {
            conjugate_row_2q(row, q1, q2, &images);
        }
    }

    /// Measures `qubit` in the Z basis. Returns `(outcome, deterministic)`;
    /// random outcomes are drawn from `rng`.
    pub fn measure_z<R: Rng + ?Sized>(&mut self, qubit: usize, rng: &mut R) -> (bool, bool) {
        let anticommuting: Vec<usize> =
            (0..self.n).filter(|&i| self.stabs[i].x_bits().get(qubit)).collect();

        if let Some(&p) = anticommuting.first() {
            // Random outcome.
            let outcome = rng.gen_bool(0.5);
            let pivot = self.stabs[p].clone();
            // Every other generator (stabilizer or destabilizer) that
            // anticommutes with Z_qubit gets multiplied by the pivot.
            for i in 0..self.n {
                if i != p && self.stabs[i].x_bits().get(qubit) {
                    let mut row = self.stabs[i].clone();
                    row.mul_assign(&pivot);
                    self.stabs[i] = row;
                }
                if self.destabs[i].x_bits().get(qubit) {
                    let mut row = self.destabs[i].clone();
                    row.mul_assign(&pivot);
                    self.destabs[i] = row;
                }
            }
            // The old pivot becomes the destabilizer; the new stabilizer is
            // ±Z_qubit according to the outcome.
            self.destabs[p] = pivot;
            let mut new_stab = Pauli::single(self.n, qubit, PauliOp::Z);
            if outcome {
                new_stab.negate();
            }
            self.stabs[p] = new_stab;
            (outcome, false)
        } else {
            // Deterministic: Z_qubit is in the stabilizer group. Accumulate
            // the product of stabilizers whose destabilizer partner
            // anticommutes with Z_qubit; the resulting sign is the outcome.
            let mut scratch = Pauli::identity(self.n);
            for i in 0..self.n {
                if self.destabs[i].x_bits().get(qubit) {
                    scratch.mul_assign(&self.stabs[i]);
                }
            }
            debug_assert_eq!(scratch.op_at(qubit), PauliOp::Z);
            debug_assert_eq!(scratch.weight(), 1);
            let sign = scratch.hermitian_sign().expect("stabilizer rows are Hermitian");
            (sign == -1, true)
        }
    }

    /// Resets `qubit` to |0⟩ (measure in Z, flip with X if the outcome was 1).
    pub fn reset_z<R: Rng + ?Sized>(&mut self, qubit: usize, rng: &mut R) {
        let (outcome, _) = self.measure_z(qubit, rng);
        if outcome {
            // Conjugate by X ≅ X_{π/2}: Z -> -Z.
            let flip = Clifford1Q { x_image: (PauliOp::X, false), z_image: (PauliOp::Z, true) };
            self.apply_1q(qubit, &flip);
        }
    }

    /// The expectation value of a Hermitian Pauli operator in the current
    /// state: `+1`/`-1` if (minus) the operator is in the stabilizer group,
    /// `0` if it anticommutes with some stabilizer.
    pub fn expectation(&self, op: &Pauli) -> i8 {
        assert_eq!(op.num_qubits(), self.n, "operator size mismatch");
        let op_sign = op.hermitian_sign().expect("expectation requires a Hermitian Pauli operator");
        if self.stabs.iter().any(|s| !s.commutes_with(op)) {
            return 0;
        }
        // Solve for the generator combination reproducing the operator's bits.
        let mut matrix = F2Matrix::new(2 * self.n);
        for s in &self.stabs {
            matrix.push_row(s.symplectic());
        }
        let combo = matrix
            .solve_combination(&op.symplectic())
            .expect("commuting Pauli must be in the stabilizer group of a stabilizer state");
        let mut prod = Pauli::identity(self.n);
        for idx in combo {
            prod.mul_assign(&self.stabs[idx]);
        }
        let prod_sign = prod.hermitian_sign().expect("products of stabilizers are Hermitian");
        op_sign * prod_sign
    }

    /// True if `op` (with its sign) is an element of the stabilizer group.
    pub fn is_stabilized_by(&self, op: &Pauli) -> bool {
        self.expectation(op) == 1
    }
}

/// Conjugates one tableau row by a single-qubit Clifford on `qubit`.
///
/// The row is stored in the normal form `i^φ · Π_j X_j^{x_j} Z_j^{z_j}`;
/// factors on different qubits commute and carry no relative phase, so the
/// conjugation only needs to replace the local `X^x Z^z` factor by the
/// phase-tracked product of the generator images and fold the product's
/// phase into `φ`. This keeps the update `O(1)` per row.
fn conjugate_row_1q(row: &mut Pauli, qubit: usize, img_x: &Pauli, img_z: &Pauli) {
    let has_x = row.x_bits().get(qubit);
    let has_z = row.z_bits().get(qubit);
    if !has_x && !has_z {
        return;
    }
    // Compute image_X^x * image_Z^z on one qubit, tracking the phase.
    let mut local = Pauli::identity(1);
    if has_x {
        local.mul_assign(img_x);
    }
    if has_z {
        local.mul_assign(img_z);
    }
    row.set_bits_at(qubit, local.x_bits().get(0), local.z_bits().get(0));
    row.mul_phase(local.phase_exponent());
}

/// Conjugates one tableau row by a two-qubit Clifford on `(q1, q2)`.
fn conjugate_row_2q(row: &mut Pauli, q1: usize, q2: usize, images: &[Pauli; 4]) {
    let (x1, z1) = (row.x_bits().get(q1), row.z_bits().get(q1));
    let (x2, z2) = (row.x_bits().get(q2), row.z_bits().get(q2));
    if !x1 && !z1 && !x2 && !z2 {
        return;
    }
    // local = imgX1^x1 * imgZ1^z1 * imgX2^x2 * imgZ2^z2 on two qubits. This
    // is exactly the conjugated image of the row's local factor written in
    // normal form (X before Z on each qubit).
    let mut local = Pauli::identity(2);
    if x1 {
        local.mul_assign(&images[0]);
    }
    if z1 {
        local.mul_assign(&images[1]);
    }
    if x2 {
        local.mul_assign(&images[2]);
    }
    if z2 {
        local.mul_assign(&images[3]);
    }
    row.set_bits_at(q1, local.x_bits().get(0), local.z_bits().get(0));
    row.set_bits_at(q2, local.x_bits().get(1), local.z_bits().get(1));
    row.mul_phase(local.phase_exponent());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates::{clifford_1q, clifford_zz};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tiscc_hw::NativeOp;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    fn pauli(n: usize, ops: &[(usize, PauliOp)]) -> Pauli {
        Pauli::from_sparse(n, ops)
    }

    #[test]
    fn zero_state_expectations() {
        let t = StabilizerTableau::zero_state(3);
        assert_eq!(t.expectation(&pauli(3, &[(0, PauliOp::Z)])), 1);
        assert_eq!(t.expectation(&pauli(3, &[(1, PauliOp::X)])), 0);
        assert_eq!(t.expectation(&pauli(3, &[(0, PauliOp::Z), (2, PauliOp::Z)])), 1);
        let mut neg = pauli(3, &[(0, PauliOp::Z)]);
        neg.negate();
        assert_eq!(t.expectation(&neg), -1);
    }

    #[test]
    fn hadamard_then_measure_is_random_and_repeatable() {
        let h = clifford_1q(NativeOp::YPi4).unwrap(); // part of H; use full H below
        let _ = h;
        let mut t = StabilizerTableau::zero_state(1);
        // H = Y_{π/4} ∘ Z_{π/2}
        t.apply_1q(0, &clifford_1q(NativeOp::ZPi2).unwrap());
        t.apply_1q(0, &clifford_1q(NativeOp::YPi4).unwrap());
        assert_eq!(t.expectation(&pauli(1, &[(0, PauliOp::X)])), 1);
        assert_eq!(t.expectation(&pauli(1, &[(0, PauliOp::Z)])), 0);
        let mut r = rng();
        let (first, deterministic) = t.measure_z(0, &mut r);
        assert!(!deterministic);
        // Once measured, the outcome repeats deterministically.
        let (second, deterministic2) = t.measure_z(0, &mut r);
        assert!(deterministic2);
        assert_eq!(first, second);
    }

    #[test]
    fn zz_gate_builds_correct_entangling_action() {
        // Build a Bell pair with H on qubit 0 and CNOT(0,1) compiled the same
        // way the hardware model does (H_t, S†_c, S†_t, ZZ, H_t).
        let mut t = StabilizerTableau::zero_state(2);
        let zpi2 = clifford_1q(NativeOp::ZPi2).unwrap();
        let ypi4 = clifford_1q(NativeOp::YPi4).unwrap();
        let sdag = clifford_1q(NativeOp::ZPi4Dag).unwrap();
        let zz = clifford_zz();
        // H on control.
        t.apply_1q(0, &zpi2);
        t.apply_1q(0, &ypi4);
        // CNOT(0 -> 1).
        t.apply_1q(1, &zpi2);
        t.apply_1q(1, &ypi4);
        t.apply_1q(0, &sdag);
        t.apply_1q(1, &sdag);
        t.apply_2q(0, 1, &zz);
        t.apply_1q(1, &zpi2);
        t.apply_1q(1, &ypi4);

        assert_eq!(t.expectation(&pauli(2, &[(0, PauliOp::X), (1, PauliOp::X)])), 1);
        assert_eq!(t.expectation(&pauli(2, &[(0, PauliOp::Z), (1, PauliOp::Z)])), 1);
        assert_eq!(t.expectation(&pauli(2, &[(0, PauliOp::Y), (1, PauliOp::Y)])), -1);
        assert_eq!(t.expectation(&pauli(2, &[(0, PauliOp::Z)])), 0);
    }

    #[test]
    fn bell_pair_measurements_are_correlated() {
        let mut r = rng();
        for _ in 0..10 {
            let mut t = StabilizerTableau::zero_state(2);
            let zpi2 = clifford_1q(NativeOp::ZPi2).unwrap();
            let ypi4 = clifford_1q(NativeOp::YPi4).unwrap();
            let sdag = clifford_1q(NativeOp::ZPi4Dag).unwrap();
            t.apply_1q(0, &zpi2);
            t.apply_1q(0, &ypi4);
            t.apply_1q(1, &zpi2);
            t.apply_1q(1, &ypi4);
            t.apply_1q(0, &sdag);
            t.apply_1q(1, &sdag);
            t.apply_2q(0, 1, &clifford_zz());
            t.apply_1q(1, &zpi2);
            t.apply_1q(1, &ypi4);
            let (a, _) = t.measure_z(0, &mut r);
            let (b, det) = t.measure_z(1, &mut r);
            assert!(det, "second half of a Bell pair must be deterministic");
            assert_eq!(a, b);
        }
    }

    #[test]
    fn reset_returns_qubit_to_zero() {
        let mut r = rng();
        let mut t = StabilizerTableau::zero_state(1);
        t.apply_1q(0, &clifford_1q(NativeOp::ZPi2).unwrap());
        t.apply_1q(0, &clifford_1q(NativeOp::YPi4).unwrap());
        t.reset_z(0, &mut r);
        assert_eq!(t.expectation(&pauli(1, &[(0, PauliOp::Z)])), 1);
    }

    #[test]
    fn pauli_gates_flip_signs_of_stabilizers() {
        let mut t = StabilizerTableau::zero_state(1);
        // X (as X_{π/2}) maps the stabilizer Z to -Z.
        t.apply_1q(0, &clifford_1q(NativeOp::XPi2).unwrap());
        assert_eq!(t.expectation(&pauli(1, &[(0, PauliOp::Z)])), -1);
        // Applying it again restores +Z.
        t.apply_1q(0, &clifford_1q(NativeOp::XPi2).unwrap());
        assert_eq!(t.expectation(&pauli(1, &[(0, PauliOp::Z)])), 1);
    }

    #[test]
    fn s_gate_turns_plus_into_plus_i() {
        let mut t = StabilizerTableau::zero_state(1);
        t.apply_1q(0, &clifford_1q(NativeOp::ZPi2).unwrap());
        t.apply_1q(0, &clifford_1q(NativeOp::YPi4).unwrap());
        t.apply_1q(0, &clifford_1q(NativeOp::ZPi4).unwrap());
        assert_eq!(t.expectation(&pauli(1, &[(0, PauliOp::Y)])), 1);
        assert_eq!(t.expectation(&pauli(1, &[(0, PauliOp::X)])), 0);
    }

    #[test]
    fn ghz_state_stabilizers_via_repeated_cnot() {
        // |GHZ_3⟩ stabilized by XXX, ZZI, IZZ.
        let mut t = StabilizerTableau::zero_state(3);
        let zpi2 = clifford_1q(NativeOp::ZPi2).unwrap();
        let ypi4 = clifford_1q(NativeOp::YPi4).unwrap();
        let sdag = clifford_1q(NativeOp::ZPi4Dag).unwrap();
        let cnot = |t: &mut StabilizerTableau, c: usize, tq: usize| {
            t.apply_1q(tq, &zpi2);
            t.apply_1q(tq, &ypi4);
            t.apply_1q(c, &sdag);
            t.apply_1q(tq, &sdag);
            t.apply_2q(c, tq, &clifford_zz());
            t.apply_1q(tq, &zpi2);
            t.apply_1q(tq, &ypi4);
        };
        t.apply_1q(0, &zpi2);
        t.apply_1q(0, &ypi4);
        cnot(&mut t, 0, 1);
        cnot(&mut t, 1, 2);
        use PauliOp::*;
        assert_eq!(t.expectation(&pauli(3, &[(0, X), (1, X), (2, X)])), 1);
        assert_eq!(t.expectation(&pauli(3, &[(0, Z), (1, Z)])), 1);
        assert_eq!(t.expectation(&pauli(3, &[(1, Z), (2, Z)])), 1);
        assert_eq!(t.expectation(&pauli(3, &[(0, Z)])), 0);
    }
}

//! Regeneration of the paper's tables: the instruction sets with their
//! logical time-step accounting (Tables 1–3), the native gate set (Table 5)
//! and the Sec. 3.4 resource-estimation sweep.

use rayon::prelude::*;

use tiscc_core::derived::DerivedInstruction;
use tiscc_core::instruction::Instruction;
use tiscc_core::CoreError;
use tiscc_hw::{HardwareSpec, NativeOp, RecordError, ResourceReport};

use crate::compiler::{instruction_rounds, CompileRequest};
use crate::verify::{Fiducial, SingleTile, TwoTiles};

/// One row of a resource table: an operation compiled at a given code
/// distance, under a named hardware profile, together with its measured
/// space-time resources.
#[derive(Clone, Debug, PartialEq)]
pub struct ResourceRow {
    /// Operation name.
    pub name: String,
    /// X code distance.
    pub dx: usize,
    /// Z code distance.
    pub dz: usize,
    /// Logical time-steps (per the paper's accounting).
    pub logical_time_steps: usize,
    /// Number of logical tiles involved.
    pub tiles: usize,
    /// Name of the hardware profile the row was compiled under.
    pub profile: String,
    /// Measured space-time resources of the compiled hardware circuit.
    pub resources: ResourceReport,
}

impl ResourceRow {
    /// Renders the row as an aligned text line.
    pub fn render(&self) -> String {
        format!(
            "{:<24} dx={:<2} dz={:<2} tiles={} steps={} time={:>9.4}s zones={:>4} ops={:>7} area={:.3e}m^2 vol={:.3e}s*m^2 profile={}",
            self.name,
            self.dx,
            self.dz,
            self.tiles,
            self.logical_time_steps,
            self.resources.execution_time_s,
            self.resources.trapping_zones,
            self.resources.total_ops,
            self.resources.area_m2,
            self.resources.spacetime_volume_s_m2,
            self.profile,
        )
    }

    /// Renders the row as a CSV record. Float fields use shortest
    /// round-trip (`{:?}`) formatting, so parsing the record back yields
    /// bit-identical values ([`crate::sweep::parse_csv`] round-trips
    /// exactly).
    pub fn csv(&self) -> String {
        format!(
            "{},{},{},{},{},{:?},{},{},{:?},{:?},{:?},{}",
            self.name,
            self.dx,
            self.dz,
            self.tiles,
            self.logical_time_steps,
            self.resources.execution_time_s,
            self.resources.trapping_zones,
            self.resources.total_ops,
            self.resources.area_m2,
            self.resources.spacetime_volume_s_m2,
            self.resources.active_zone_seconds,
            self.profile,
        )
    }

    /// Serializes the full row — identity fields plus the complete
    /// [`ResourceReport`] — as an exact `key=value` record. Unlike
    /// [`ResourceRow::csv`] (which carries the scalar columns only), the
    /// record preserves every field bit-for-bit, so a row revived by
    /// [`ResourceRow::from_record`] is `==` to the original. This is the
    /// entry format of the persistent on-disk compile cache.
    pub fn to_record(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("name={}\n", self.name));
        out.push_str(&format!("dx={}\n", self.dx));
        out.push_str(&format!("dz={}\n", self.dz));
        out.push_str(&format!("tiles={}\n", self.tiles));
        out.push_str(&format!("logical_time_steps={}\n", self.logical_time_steps));
        out.push_str(&format!("profile={}\n", self.profile));
        out.push_str(&self.resources.to_record());
        out
    }

    /// Parses a record produced by [`ResourceRow::to_record`]. Any
    /// malformation — truncation, missing or duplicate fields, unknown op
    /// names — is a [`RecordError`]; persistent-cache consumers recompute
    /// such entries rather than trusting them.
    pub fn from_record(text: &str) -> Result<ResourceRow, RecordError> {
        let mut fields: std::collections::HashMap<&str, &str> = std::collections::HashMap::new();
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(bad_record(format!("line {line:?} is not key=value")));
            };
            if fields.insert(key, value).is_some() {
                return Err(bad_record(format!("duplicate field {key:?}")));
            }
        }
        fn text_field(
            fields: &std::collections::HashMap<&str, &str>,
            key: &str,
        ) -> Result<String, RecordError> {
            fields
                .get(key)
                .map(|v| v.to_string())
                .ok_or_else(|| bad_record(format!("missing field {key:?}")))
        }
        fn num_field(
            fields: &std::collections::HashMap<&str, &str>,
            key: &str,
        ) -> Result<usize, RecordError> {
            let raw = text_field(fields, key)?;
            raw.parse().map_err(|_| bad_record(format!("field {key:?} ({raw:?}) is malformed")))
        }
        Ok(ResourceRow {
            name: text_field(&fields, "name")?,
            dx: num_field(&fields, "dx")?,
            dz: num_field(&fields, "dz")?,
            tiles: num_field(&fields, "tiles")?,
            logical_time_steps: num_field(&fields, "logical_time_steps")?,
            profile: text_field(&fields, "profile")?,
            resources: ResourceReport::from_record(text)?,
        })
    }
}

/// Builds a [`RecordError`] with the given message (the error type lives in
/// `tiscc-hw` next to [`ResourceReport::from_record`]).
fn bad_record(message: String) -> RecordError {
    RecordError { message }
}

/// CSV header matching [`ResourceRow::csv`].
pub fn csv_header() -> &'static str {
    "operation,dx,dz,tiles,logical_time_steps,execution_time_s,trapping_zones,native_ops,area_m2,spacetime_volume_s_m2,active_zone_seconds,profile"
}

/// Table 5 / Fig. 5: the native gate set and its durations under the
/// default profile.
pub fn table5() -> String {
    table5_with(&HardwareSpec::default())
}

/// Table 5 / Fig. 5 under an arbitrary hardware profile.
pub fn table5_with(spec: &HardwareSpec) -> String {
    let mut out =
        format!("Native trapped-ion gate set (paper Table 5 / Fig. 5; profile '{}')\n", spec.name);
    out.push_str(&format!("{:<12} {:>10}\n", "Operation", "Time (us)"));
    for &op in NativeOp::all() {
        out.push_str(&format!("{:<12} {:>10.2}\n", op.mnemonic(), spec.duration_us(op)));
    }
    out
}

/// Compiles one Table 1 instruction at the given distances under the
/// default profile and reports its resources. Thin wrapper over the
/// [`Compiler`](crate::compiler::Compiler) front door (see [`crate::compiler`]).
pub fn compile_instruction_row(
    instruction: Instruction,
    dx: usize,
    dz: usize,
    dt: usize,
) -> Result<ResourceRow, CoreError> {
    compile_instruction_row_with(&HardwareSpec::default(), instruction, dx, dz, dt)
}

/// Compiles one Table 1 instruction under an arbitrary hardware profile.
pub fn compile_instruction_row_with(
    spec: &HardwareSpec,
    instruction: Instruction,
    dx: usize,
    dz: usize,
    dt: usize,
) -> Result<ResourceRow, CoreError> {
    // The stateless pipeline: batch callers (sweep, table generators) bring
    // their own memoization, so no per-row Compiler cache is built here.
    crate::compiler::compile_uncached(
        &CompileRequest::new(instruction, dx, dz, dt).with_spec(spec.clone()),
    )
    .map(|artifact| artifact.row())
}

fn report_since(hw: &tiscc_hw::HardwareModel, start_op: usize) -> ResourceReport {
    // Account only the operation's own native gates so that the report
    // reflects the operation, not its input preparation.
    instruction_rounds(hw, start_op).1
}

/// Table 1: every instruction compiled at each requested distance, under
/// the default profile.
pub fn table1_rows(distances: &[usize], dt: usize) -> Result<Vec<ResourceRow>, CoreError> {
    table1_rows_with(&HardwareSpec::default(), distances, dt)
}

/// Table 1 under an arbitrary hardware profile.
pub fn table1_rows_with(
    spec: &HardwareSpec,
    distances: &[usize],
    dt: usize,
) -> Result<Vec<ResourceRow>, CoreError> {
    let mut jobs = Vec::new();
    for &d in distances {
        for &i in Instruction::all() {
            jobs.push((i, d));
        }
    }
    jobs.into_par_iter().map(|(i, d)| compile_instruction_row_with(spec, i, d, d, dt)).collect()
}

/// A Table 2 primitive exercised through the patch API.
type PrimitiveOp = Box<dyn Fn(&mut SingleTile) -> Result<(), CoreError>>;

/// Table 2: the primitive operations with their logical time-steps, compiled
/// at a single distance under the default profile (the primitives are
/// exercised through the patch API).
pub fn table2_rows(d: usize, dt: usize) -> Result<Vec<ResourceRow>, CoreError> {
    table2_rows_with(&HardwareSpec::default(), d, dt)
}

/// Table 2 under an arbitrary hardware profile.
pub fn table2_rows_with(
    spec: &HardwareSpec,
    d: usize,
    dt: usize,
) -> Result<Vec<ResourceRow>, CoreError> {
    let mut rows = Vec::new();
    let prims: Vec<(&str, usize, PrimitiveOp)> = vec![
        ("Prepare Z (transversal)", 0, Box::new(|f| f.patch.transversal_prepare_z(&mut f.hw))),
        (
            "Measure Z (transversal)",
            0,
            Box::new(|f| f.patch.transversal_measure_z(&mut f.hw).map(|_| ())),
        ),
        ("Hadamard (transversal)", 0, Box::new(|f| f.patch.transversal_hadamard(&mut f.hw))),
        ("Inject Y", 0, Box::new(|f| f.patch.inject_y(&mut f.hw))),
        ("Inject T", 0, Box::new(|f| f.patch.inject_t(&mut f.hw))),
        (
            "Pauli X",
            0,
            Box::new(|f| f.patch.apply_logical_pauli(&mut f.hw, tiscc_math::PauliOp::X)),
        ),
        ("Idle", 1, Box::new(|f| f.patch.idle(&mut f.hw).map(|_| ()))),
    ];
    for (name, steps, op) in prims {
        let mut fixture = SingleTile::with_spec(d, d, dt, spec.clone())?;
        if name.starts_with("Measure")
            || name.starts_with("Hadamard")
            || name.starts_with("Pauli")
            || name == "Idle"
        {
            Fiducial::Zero.prepare(&mut fixture.hw, &mut fixture.patch)?;
        }
        let before = fixture.hw.circuit().len();
        op(&mut fixture)?;
        rows.push(ResourceRow {
            name: name.to_string(),
            dx: d,
            dz: d,
            logical_time_steps: steps,
            tiles: 1,
            profile: spec.name.clone(),
            resources: report_since(&fixture.hw, before),
        });
    }
    // Merge and Split are exercised through Measure XX (merge = 1 step, split = 0).
    let mut fixture = TwoTiles::with_spec(d, d, dt, spec.clone())?;
    Fiducial::Zero.prepare(&mut fixture.hw, &mut fixture.upper)?;
    Fiducial::Zero.prepare(&mut fixture.hw, &mut fixture.lower)?;
    let before = fixture.hw.circuit().len();
    let merge = tiscc_core::surgery::merge_patches(
        &mut fixture.hw,
        &mut fixture.upper,
        &mut fixture.lower,
        tiscc_core::surgery::Orientation::Vertical,
    )?;
    rows.push(ResourceRow {
        name: "Merge".into(),
        dx: d,
        dz: d,
        logical_time_steps: 1,
        tiles: 2,
        profile: spec.name.clone(),
        resources: report_since(&fixture.hw, before),
    });
    let before = fixture.hw.circuit().len();
    tiscc_core::surgery::split_patches(
        &mut fixture.hw,
        &merge,
        &mut fixture.upper,
        &mut fixture.lower,
    )?;
    rows.push(ResourceRow {
        name: "Split".into(),
        dx: d,
        dz: d,
        logical_time_steps: 0,
        tiles: 2,
        profile: spec.name.clone(),
        resources: report_since(&fixture.hw, before),
    });
    Ok(rows)
}

/// Table 3: the derived instruction set compiled at a single distance under
/// the default profile.
pub fn table3_rows(d: usize, dt: usize) -> Result<Vec<ResourceRow>, CoreError> {
    table3_rows_with(&HardwareSpec::default(), d, dt)
}

/// Table 3 under an arbitrary hardware profile.
pub fn table3_rows_with(
    spec: &HardwareSpec,
    d: usize,
    dt: usize,
) -> Result<Vec<ResourceRow>, CoreError> {
    let mut rows = Vec::new();
    for &instr in DerivedInstruction::all() {
        let mut fixture = TwoTiles::with_spec(d, d, dt, spec.clone())?;
        match instr {
            DerivedInstruction::BellStatePreparation => {}
            DerivedInstruction::BellBasisMeasurement | DerivedInstruction::MergeContract => {
                Fiducial::Zero.prepare(&mut fixture.hw, &mut fixture.upper)?;
                Fiducial::Plus.prepare(&mut fixture.hw, &mut fixture.lower)?;
            }
            _ => {
                Fiducial::Plus.prepare(&mut fixture.hw, &mut fixture.upper)?;
            }
        }
        let before = fixture.hw.circuit().len();
        match instr {
            DerivedInstruction::BellStatePreparation => {
                tiscc_core::derived::bell_state_preparation(
                    &mut fixture.hw,
                    &mut fixture.upper,
                    &mut fixture.lower,
                )?;
            }
            DerivedInstruction::BellBasisMeasurement => {
                tiscc_core::derived::bell_basis_measurement(
                    &mut fixture.hw,
                    &mut fixture.upper,
                    &mut fixture.lower,
                )?;
            }
            DerivedInstruction::ExtendSplit => {
                tiscc_core::derived::extend_split(
                    &mut fixture.hw,
                    &mut fixture.upper,
                    &mut fixture.lower,
                )?;
            }
            DerivedInstruction::MergeContract => {
                tiscc_core::derived::merge_contract(
                    &mut fixture.hw,
                    &mut fixture.upper,
                    &mut fixture.lower,
                )?;
            }
            DerivedInstruction::Move => {
                tiscc_core::derived::move_patch_down(
                    &mut fixture.hw,
                    &mut fixture.upper,
                    &mut fixture.lower,
                )?;
            }
            DerivedInstruction::PatchExtension => {
                tiscc_core::derived::patch_extension(
                    &mut fixture.hw,
                    &mut fixture.upper,
                    &mut fixture.lower,
                )?;
            }
            DerivedInstruction::PatchContraction => {
                let keep = fixture.lower.dz();
                let origin = fixture.lower.origin();
                let (mut ext, _) = tiscc_core::derived::patch_extension(
                    &mut fixture.hw,
                    &mut fixture.upper,
                    &mut fixture.lower,
                )?;
                // Only the contraction itself is accounted.
                let before_contract = fixture.hw.circuit().len();
                tiscc_core::derived::patch_contraction(&mut fixture.hw, &mut ext, keep, origin)?;
                rows.push(ResourceRow {
                    name: instr.name().to_string(),
                    dx: d,
                    dz: d,
                    logical_time_steps: instr.logical_time_steps(),
                    tiles: 2,
                    profile: spec.name.clone(),
                    resources: report_since(&fixture.hw, before_contract),
                });
                continue;
            }
        }
        rows.push(ResourceRow {
            name: instr.name().to_string(),
            dx: d,
            dz: d,
            logical_time_steps: instr.logical_time_steps(),
            tiles: 2,
            profile: spec.name.clone(),
            resources: report_since(&fixture.hw, before),
        });
    }
    Ok(rows)
}

/// The Sec. 3.4 resource-estimation sweep: a set of representative
/// operations compiled across a range of code distances, in parallel, under
/// the default profile.
pub fn resource_sweep(
    distances: &[usize],
    dt_equals_d: bool,
) -> Result<Vec<ResourceRow>, CoreError> {
    resource_sweep_with(&HardwareSpec::default(), distances, dt_equals_d)
}

/// The Sec. 3.4 sweep under an arbitrary hardware profile.
pub fn resource_sweep_with(
    spec: &HardwareSpec,
    distances: &[usize],
    dt_equals_d: bool,
) -> Result<Vec<ResourceRow>, CoreError> {
    let ops = [
        Instruction::PrepareZ,
        Instruction::Idle,
        Instruction::Hadamard,
        Instruction::MeasureZ,
        Instruction::MeasureXX,
        Instruction::MeasureZZ,
    ];
    let mut jobs = Vec::new();
    for &d in distances {
        let dt = if dt_equals_d { d } else { 1 };
        for op in ops {
            jobs.push((op, d, dt));
        }
    }
    jobs.into_par_iter()
        .map(|(op, d, dt)| compile_instruction_row_with(spec, op, d, d, dt))
        .collect()
}

/// Renders a set of rows as an aligned text table.
pub fn render_rows(title: &str, rows: &[ResourceRow]) -> String {
    let mut out = format!("{title}\n");
    for row in rows {
        out.push_str(&row.render());
        out.push('\n');
    }
    out
}

/// Renders a set of rows as CSV (with header).
pub fn render_csv(rows: &[ResourceRow]) -> String {
    let mut out = String::from(csv_header());
    out.push('\n');
    for row in rows {
        out.push_str(&row.csv());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_contains_all_native_ops() {
        let t = table5();
        for op in NativeOp::all() {
            assert!(t.contains(op.mnemonic()), "missing {}", op.mnemonic());
        }
        assert!(t.contains("2000.00"), "ZZ duration present");
    }

    #[test]
    fn table1_rows_cover_all_instructions_at_d2() {
        let rows = table1_rows(&[2], 1).unwrap();
        assert_eq!(rows.len(), Instruction::all().len());
        for row in &rows {
            assert!(row.resources.execution_time_s >= 0.0);
        }
        // Idle at d=2 with dt=1 runs one round: it must contain ZZ gates.
        let idle = rows.iter().find(|r| r.name == "Idle").unwrap();
        assert!(idle.resources.op_counts.get("ZZ").copied().unwrap_or(0) > 0);
    }

    #[test]
    fn csv_rendering_has_header_and_rows() {
        let rows = table1_rows(&[2], 1).unwrap();
        let csv = render_csv(&rows);
        assert!(csv.starts_with("operation,"));
        assert_eq!(csv.lines().count(), rows.len() + 1);
    }

    #[test]
    fn row_records_round_trip_exactly() {
        let rows = table1_rows(&[2], 1).unwrap();
        for row in &rows {
            let revived = ResourceRow::from_record(&row.to_record()).unwrap();
            assert_eq!(&revived, row, "{} record round trip", row.name);
        }
        // Truncated and garbled records are typed errors, not rows.
        let record = rows[0].to_record();
        assert!(ResourceRow::from_record(&record[..record.len() / 3]).is_err());
        assert!(ResourceRow::from_record(&record.replace("dx=", "dx=?")).is_err());
    }
}

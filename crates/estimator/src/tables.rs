//! Regeneration of the paper's tables: the instruction sets with their
//! logical time-step accounting (Tables 1–3), the native gate set (Table 5)
//! and the Sec. 3.4 resource-estimation sweep.

use rayon::prelude::*;

use tiscc_core::derived::DerivedInstruction;
use tiscc_core::instruction::{apply_instruction, apply_two_tile_instruction, Instruction};
use tiscc_core::CoreError;
use tiscc_hw::{NativeOp, ResourceReport};

use crate::verify::{Fiducial, SingleTile, TwoTiles};

/// One row of a resource table: an operation compiled at a given code
/// distance together with its measured space-time resources.
#[derive(Clone, Debug, PartialEq)]
pub struct ResourceRow {
    /// Operation name.
    pub name: String,
    /// X code distance.
    pub dx: usize,
    /// Z code distance.
    pub dz: usize,
    /// Logical time-steps (per the paper's accounting).
    pub logical_time_steps: usize,
    /// Number of logical tiles involved.
    pub tiles: usize,
    /// Measured space-time resources of the compiled hardware circuit.
    pub resources: ResourceReport,
}

impl ResourceRow {
    /// Renders the row as an aligned text line.
    pub fn render(&self) -> String {
        format!(
            "{:<24} dx={:<2} dz={:<2} tiles={} steps={} time={:>9.4}s zones={:>4} ops={:>7} area={:.3e}m^2 vol={:.3e}s*m^2",
            self.name,
            self.dx,
            self.dz,
            self.tiles,
            self.logical_time_steps,
            self.resources.execution_time_s,
            self.resources.trapping_zones,
            self.resources.total_ops,
            self.resources.area_m2,
            self.resources.spacetime_volume_s_m2,
        )
    }

    /// Renders the row as a CSV record.
    pub fn csv(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{}",
            self.name,
            self.dx,
            self.dz,
            self.tiles,
            self.logical_time_steps,
            self.resources.execution_time_s,
            self.resources.trapping_zones,
            self.resources.total_ops,
            self.resources.area_m2,
            self.resources.spacetime_volume_s_m2,
            self.resources.active_zone_seconds,
        )
    }
}

/// CSV header matching [`ResourceRow::csv`].
pub fn csv_header() -> &'static str {
    "operation,dx,dz,tiles,logical_time_steps,execution_time_s,trapping_zones,native_ops,area_m2,spacetime_volume_s_m2,active_zone_seconds"
}

/// Table 5 / Fig. 5: the native gate set and its durations.
pub fn table5() -> String {
    let mut out = String::from("Native trapped-ion gate set (paper Table 5 / Fig. 5)\n");
    out.push_str(&format!("{:<12} {:>10}\n", "Operation", "Time (us)"));
    for op in NativeOp::all() {
        out.push_str(&format!("{:<12} {:>10.2}\n", op.mnemonic(), op.duration_us()));
    }
    out
}

/// Compiles one Table 1 instruction at the given distances and reports its
/// resources. The instruction is compiled in a realistic context: the input
/// tiles are first prepared (and idled) as required, then only the
/// instruction's own circuit is accounted.
pub fn compile_instruction_row(
    instruction: Instruction,
    dx: usize,
    dz: usize,
    dt: usize,
) -> Result<ResourceRow, CoreError> {
    if instruction.tiles() == 2 {
        let mut fixture = match instruction {
            Instruction::MeasureZZ => TwoTiles::new_horizontal(dx, dz, dt)?,
            _ => TwoTiles::new(dx, dz, dt)?,
        };
        Fiducial::Zero.prepare(&mut fixture.hw, &mut fixture.upper)?;
        Fiducial::Zero.prepare(&mut fixture.hw, &mut fixture.lower)?;
        let before = fixture.hw.circuit().len();
        apply_two_tile_instruction(
            &mut fixture.hw,
            instruction,
            &mut fixture.upper,
            &mut fixture.lower,
        )?;
        let resources = report_since(&fixture.hw, before);
        Ok(ResourceRow {
            name: instruction.name().to_string(),
            dx,
            dz,
            logical_time_steps: instruction.logical_time_steps(),
            tiles: 2,
            resources,
        })
    } else {
        let mut fixture = SingleTile::new(dx, dz, dt)?;
        // Instructions acting on an initialized tile need one.
        let needs_input = !matches!(
            instruction,
            Instruction::PrepareZ
                | Instruction::PrepareX
                | Instruction::InjectY
                | Instruction::InjectT
        );
        if needs_input {
            Fiducial::Zero.prepare(&mut fixture.hw, &mut fixture.patch)?;
        }
        let before = fixture.hw.circuit().len();
        apply_instruction(&mut fixture.hw, instruction, &mut fixture.patch)?;
        let resources = report_since(&fixture.hw, before);
        Ok(ResourceRow {
            name: instruction.name().to_string(),
            dx,
            dz,
            logical_time_steps: instruction.logical_time_steps(),
            tiles: 1,
            resources,
        })
    }
}

fn report_since(hw: &tiscc_hw::HardwareModel, start_op: usize) -> ResourceReport {
    // Rebuild a circuit containing only the instruction's own operations so
    // that the report reflects the instruction, not its input preparation.
    let mut ops: Vec<_> = hw.circuit().ops()[start_op..].to_vec();
    // Re-base the schedule so the instruction starts at t = 0.
    let t0 = ops.iter().map(|o| o.start_us).fold(f64::INFINITY, f64::min);
    for op in &mut ops {
        op.start_us -= t0;
    }
    let sub = tiscc_hw::Circuit::from_ops(ops);
    ResourceReport::from_circuit(&sub, hw.grid().layout())
}

/// Table 1: every instruction compiled at each requested distance.
pub fn table1_rows(distances: &[usize], dt: usize) -> Result<Vec<ResourceRow>, CoreError> {
    let mut jobs = Vec::new();
    for &d in distances {
        for &i in Instruction::all() {
            jobs.push((i, d));
        }
    }
    jobs.into_par_iter().map(|(i, d)| compile_instruction_row(i, d, d, dt)).collect()
}

/// A Table 2 primitive exercised through the patch API.
type PrimitiveOp = Box<dyn Fn(&mut SingleTile) -> Result<(), CoreError>>;

/// Table 2: the primitive operations with their logical time-steps, compiled
/// at a single distance (the primitives are exercised through the patch API).
pub fn table2_rows(d: usize, dt: usize) -> Result<Vec<ResourceRow>, CoreError> {
    let mut rows = Vec::new();
    let prims: Vec<(&str, usize, PrimitiveOp)> = vec![
        ("Prepare Z (transversal)", 0, Box::new(|f| f.patch.transversal_prepare_z(&mut f.hw))),
        (
            "Measure Z (transversal)",
            0,
            Box::new(|f| f.patch.transversal_measure_z(&mut f.hw).map(|_| ())),
        ),
        ("Hadamard (transversal)", 0, Box::new(|f| f.patch.transversal_hadamard(&mut f.hw))),
        ("Inject Y", 0, Box::new(|f| f.patch.inject_y(&mut f.hw))),
        ("Inject T", 0, Box::new(|f| f.patch.inject_t(&mut f.hw))),
        (
            "Pauli X",
            0,
            Box::new(|f| f.patch.apply_logical_pauli(&mut f.hw, tiscc_math::PauliOp::X)),
        ),
        ("Idle", 1, Box::new(|f| f.patch.idle(&mut f.hw).map(|_| ()))),
    ];
    for (name, steps, op) in prims {
        let mut fixture = SingleTile::new(d, d, dt)?;
        if name.starts_with("Measure")
            || name.starts_with("Hadamard")
            || name.starts_with("Pauli")
            || name == "Idle"
        {
            Fiducial::Zero.prepare(&mut fixture.hw, &mut fixture.patch)?;
        }
        let before = fixture.hw.circuit().len();
        op(&mut fixture)?;
        rows.push(ResourceRow {
            name: name.to_string(),
            dx: d,
            dz: d,
            logical_time_steps: steps,
            tiles: 1,
            resources: report_since(&fixture.hw, before),
        });
    }
    // Merge and Split are exercised through Measure XX (merge = 1 step, split = 0).
    let mut fixture = TwoTiles::new(d, d, dt)?;
    Fiducial::Zero.prepare(&mut fixture.hw, &mut fixture.upper)?;
    Fiducial::Zero.prepare(&mut fixture.hw, &mut fixture.lower)?;
    let before = fixture.hw.circuit().len();
    let merge = tiscc_core::surgery::merge_patches(
        &mut fixture.hw,
        &mut fixture.upper,
        &mut fixture.lower,
        tiscc_core::surgery::Orientation::Vertical,
    )?;
    rows.push(ResourceRow {
        name: "Merge".into(),
        dx: d,
        dz: d,
        logical_time_steps: 1,
        tiles: 2,
        resources: report_since(&fixture.hw, before),
    });
    let before = fixture.hw.circuit().len();
    tiscc_core::surgery::split_patches(
        &mut fixture.hw,
        &merge,
        &mut fixture.upper,
        &mut fixture.lower,
    )?;
    rows.push(ResourceRow {
        name: "Split".into(),
        dx: d,
        dz: d,
        logical_time_steps: 0,
        tiles: 2,
        resources: report_since(&fixture.hw, before),
    });
    Ok(rows)
}

/// Table 3: the derived instruction set compiled at a single distance.
pub fn table3_rows(d: usize, dt: usize) -> Result<Vec<ResourceRow>, CoreError> {
    let mut rows = Vec::new();
    for &instr in DerivedInstruction::all() {
        let mut fixture = TwoTiles::new(d, d, dt)?;
        match instr {
            DerivedInstruction::BellStatePreparation => {}
            DerivedInstruction::BellBasisMeasurement | DerivedInstruction::MergeContract => {
                Fiducial::Zero.prepare(&mut fixture.hw, &mut fixture.upper)?;
                Fiducial::Plus.prepare(&mut fixture.hw, &mut fixture.lower)?;
            }
            _ => {
                Fiducial::Plus.prepare(&mut fixture.hw, &mut fixture.upper)?;
            }
        }
        let before = fixture.hw.circuit().len();
        match instr {
            DerivedInstruction::BellStatePreparation => {
                tiscc_core::derived::bell_state_preparation(
                    &mut fixture.hw,
                    &mut fixture.upper,
                    &mut fixture.lower,
                )?;
            }
            DerivedInstruction::BellBasisMeasurement => {
                tiscc_core::derived::bell_basis_measurement(
                    &mut fixture.hw,
                    &mut fixture.upper,
                    &mut fixture.lower,
                )?;
            }
            DerivedInstruction::ExtendSplit => {
                tiscc_core::derived::extend_split(
                    &mut fixture.hw,
                    &mut fixture.upper,
                    &mut fixture.lower,
                )?;
            }
            DerivedInstruction::MergeContract => {
                tiscc_core::derived::merge_contract(
                    &mut fixture.hw,
                    &mut fixture.upper,
                    &mut fixture.lower,
                )?;
            }
            DerivedInstruction::Move => {
                tiscc_core::derived::move_patch_down(
                    &mut fixture.hw,
                    &mut fixture.upper,
                    &mut fixture.lower,
                )?;
            }
            DerivedInstruction::PatchExtension => {
                tiscc_core::derived::patch_extension(
                    &mut fixture.hw,
                    &mut fixture.upper,
                    &mut fixture.lower,
                )?;
            }
            DerivedInstruction::PatchContraction => {
                let keep = fixture.lower.dz();
                let origin = fixture.lower.origin();
                let (mut ext, _) = tiscc_core::derived::patch_extension(
                    &mut fixture.hw,
                    &mut fixture.upper,
                    &mut fixture.lower,
                )?;
                // Only the contraction itself is accounted.
                let before_contract = fixture.hw.circuit().len();
                tiscc_core::derived::patch_contraction(&mut fixture.hw, &mut ext, keep, origin)?;
                rows.push(ResourceRow {
                    name: instr.name().to_string(),
                    dx: d,
                    dz: d,
                    logical_time_steps: instr.logical_time_steps(),
                    tiles: 2,
                    resources: report_since(&fixture.hw, before_contract),
                });
                continue;
            }
        }
        rows.push(ResourceRow {
            name: instr.name().to_string(),
            dx: d,
            dz: d,
            logical_time_steps: instr.logical_time_steps(),
            tiles: 2,
            resources: report_since(&fixture.hw, before),
        });
    }
    Ok(rows)
}

/// The Sec. 3.4 resource-estimation sweep: a set of representative
/// operations compiled across a range of code distances, in parallel.
pub fn resource_sweep(
    distances: &[usize],
    dt_equals_d: bool,
) -> Result<Vec<ResourceRow>, CoreError> {
    let ops = [
        Instruction::PrepareZ,
        Instruction::Idle,
        Instruction::Hadamard,
        Instruction::MeasureZ,
        Instruction::MeasureXX,
        Instruction::MeasureZZ,
    ];
    let mut jobs = Vec::new();
    for &d in distances {
        let dt = if dt_equals_d { d } else { 1 };
        for op in ops {
            jobs.push((op, d, dt));
        }
    }
    jobs.into_par_iter().map(|(op, d, dt)| compile_instruction_row(op, d, d, dt)).collect()
}

/// Renders a set of rows as an aligned text table.
pub fn render_rows(title: &str, rows: &[ResourceRow]) -> String {
    let mut out = format!("{title}\n");
    for row in rows {
        out.push_str(&row.render());
        out.push('\n');
    }
    out
}

/// Renders a set of rows as CSV (with header).
pub fn render_csv(rows: &[ResourceRow]) -> String {
    let mut out = String::from(csv_header());
    out.push('\n');
    for row in rows {
        out.push_str(&row.csv());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_contains_all_native_ops() {
        let t = table5();
        for op in NativeOp::all() {
            assert!(t.contains(op.mnemonic()), "missing {}", op.mnemonic());
        }
        assert!(t.contains("2000.00"), "ZZ duration present");
    }

    #[test]
    fn table1_rows_cover_all_instructions_at_d2() {
        let rows = table1_rows(&[2], 1).unwrap();
        assert_eq!(rows.len(), Instruction::all().len());
        for row in &rows {
            assert!(row.resources.execution_time_s >= 0.0);
        }
        // Idle at d=2 with dt=1 runs one round: it must contain ZZ gates.
        let idle = rows.iter().find(|r| r.name == "Idle").unwrap();
        assert!(idle.resources.op_counts.get("ZZ").copied().unwrap_or(0) > 0);
    }

    #[test]
    fn csv_rendering_has_header_and_rows() {
        let rows = table1_rows(&[2], 1).unwrap();
        let csv = render_csv(&rows);
        assert!(csv.starts_with("operation,"));
        assert_eq!(csv.lines().count(), rows.len() + 1);
    }
}

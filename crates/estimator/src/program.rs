//! The algorithm-level program estimator.
//!
//! [`estimate_program`] joins the `tiscc_program` layers (2D patch
//! placement, congestion-aware routing, dependency scheduling,
//! error-budget distance selection) to the per-instruction [`Compiler`]
//! front door:
//!
//! 1. the program is validated, its qubits are placed on a tile grid by
//!    the [`Placement`] allocator under the spec's [`LayoutSpec`]
//!    strategy, and the instruction stream is packed into parallel
//!    logical time steps by the congestion-aware ASAP scheduler (merge
//!    corridors are routed per step; conflicting corridors serialise and
//!    are reported as `routing_stalls`);
//! 2. the configurable [`ErrorModel`] selects the smallest code distance
//!    whose total program error (patch-steps × per-step logical error)
//!    meets the requested budget;
//! 3. every distinct instruction kind of the program — routed merges
//!    included — is compiled at the selected distance under every
//!    requested hardware profile, fanned out over rayon and memoized in
//!    the compiler's [`CompileCache`](crate::sweep::CompileCache), so
//!    repeated estimates (and overlapping programs) share compilations;
//! 4. per-profile space–time totals are assembled: each parallel step
//!    costs the longest of its member instructions, the machine footprint
//!    comes from [`Placement::layout`], and qubit-rounds multiply the
//!    trapping zones by the program's error-correction rounds.
//!
//! The `tiscc estimate <program.tql>` subcommand (with `--layout`,
//! `--grid` and `--show-layout`) and the `program_estimate` example are
//! thin wrappers around this module.

use std::collections::HashMap;

use rayon::prelude::*;

use tiscc_core::instruction::Instruction;
use tiscc_core::CoreError;
use tiscc_hw::HardwareSpec;
use tiscc_program::budget::BudgetError;
use tiscc_program::ir::ProgramError;
use tiscc_program::{
    schedule_with, ErrorModel, LayoutSpec, LogicalProgram, Placement, PlacementError, RoutingError,
    Schedule,
};
use tiscc_telemetry::{Span, Telemetry};

use crate::compiler::{CompileRequest, CompileStats, Compiler, EstimateMode};

/// What to estimate: the error budget, the per-step error model, the
/// floorplan, the hardware profiles to compare, and the distance-search
/// ceiling.
#[derive(Clone, Debug, PartialEq)]
pub struct ProgramEstimateSpec {
    /// Target total logical error budget for the whole program.
    pub budget: f64,
    /// The per-patch-step logical error model.
    pub model: ErrorModel,
    /// Hardware profiles to estimate under (one report row each).
    pub profiles: Vec<HardwareSpec>,
    /// Largest code distance the selection searches.
    pub d_max: usize,
    /// The floorplan: placement strategy and optional tile-grid size.
    pub layout: LayoutSpec,
    /// How per-instruction resources are obtained (compiled schedules or
    /// closed-form analytic derivation).
    pub mode: EstimateMode,
}

impl ProgramEstimateSpec {
    /// A spec with the default error model, the default profile, the
    /// default single-lane floorplan and a `d_max` of 49.
    pub fn new(budget: f64) -> Self {
        ProgramEstimateSpec {
            budget,
            model: ErrorModel::default(),
            profiles: vec![HardwareSpec::default()],
            d_max: 49,
            layout: LayoutSpec::default(),
            mode: EstimateMode::default(),
        }
    }

    /// Replaces the hardware-profile axis.
    pub fn with_profiles(mut self, profiles: Vec<HardwareSpec>) -> Self {
        self.profiles = profiles;
        self
    }

    /// Replaces the estimate mode.
    pub fn with_mode(mut self, mode: EstimateMode) -> Self {
        self.mode = mode;
        self
    }

    /// Replaces the error model.
    pub fn with_model(mut self, model: ErrorModel) -> Self {
        self.model = model;
        self
    }

    /// Replaces the floorplan.
    pub fn with_layout(mut self, layout: LayoutSpec) -> Self {
        self.layout = layout;
        self
    }
}

impl Default for ProgramEstimateSpec {
    /// One-in-a-billion total program error under the default model.
    fn default() -> Self {
        ProgramEstimateSpec::new(1e-9)
    }
}

/// One per-profile row of a [`ProgramEstimate`].
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileEstimate {
    /// Hardware profile name.
    pub profile: String,
    /// Selected code distance (`dx = dz = dt = d`).
    pub distance: usize,
    /// Achieved total program error at the selected distance.
    pub achieved_error: f64,
    /// Wall-clock program duration in seconds: the sum over parallel
    /// steps of the longest member instruction.
    pub duration_s: f64,
    /// Trapping zones of the machine hosting the placement.
    pub trapping_zones: usize,
    /// Physical area of the machine in square metres.
    pub area_m2: f64,
    /// Zone-rounds: trapping zones × error-correction rounds
    /// (logical time steps × `dt = d`).
    pub qubit_rounds: u64,
    /// Ops across the program whose start the contention-aware scheduler
    /// stalled on a junction (summed per instruction instance; zero under
    /// every clean profile's default knobs).
    pub junction_stalls: usize,
    /// Multi-op SIMD pulses across the program (summed per instruction
    /// instance; zero at `simd_width = 1`).
    pub batched_pulses: usize,
    /// How this row's per-instruction resources were obtained.
    pub estimate_mode: EstimateMode,
}

/// A program-level space–time resource estimate.
#[derive(Clone, Debug, PartialEq)]
pub struct ProgramEstimate {
    /// The program's name.
    pub program: String,
    /// Declared logical qubits.
    pub logical_qubits: usize,
    /// Instructions in the program.
    pub instructions: usize,
    /// Tiles of the floorplan's grid (data and ancilla alike).
    pub tiles: usize,
    /// The floorplan this estimate was produced under.
    pub layout: LayoutSpec,
    /// Tile-grid dimensions `(rows, cols)` of the floorplan.
    pub grid: (usize, usize),
    /// Parallel steps after scheduling.
    pub depth: usize,
    /// Total logical time steps (Table 1 accounting, summed over steps).
    pub logical_time_steps: usize,
    /// Widest parallel step (instructions packed together).
    pub max_parallelism: usize,
    /// Joint measurements that needed a routing corridor or lane segment.
    pub routed_merges: usize,
    /// Joint measurements that shared a step with another joint
    /// measurement — the merge parallelism the floorplan delivered.
    pub parallel_merges: usize,
    /// Steps merges waited for a free corridor beyond their operand-ready
    /// step — the congestion cost of the floorplan.
    pub routing_stalls: usize,
    /// Patch-steps the error budget was spent over.
    pub patch_steps: u64,
    /// The requested error budget.
    pub budget: f64,
    /// One row per requested hardware profile.
    pub rows: Vec<ProfileEstimate>,
}

impl ProgramEstimate {
    /// Renders the estimate as an aligned multi-line report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Program '{}': {} logical qubit(s), {} instruction(s)\n",
            self.program, self.logical_qubits, self.instructions
        );
        out.push_str(&format!(
            "  schedule: {} parallel step(s), {} logical time step(s), \
             max {} instruction(s)/step\n",
            self.depth, self.logical_time_steps, self.max_parallelism
        ));
        out.push_str(&format!(
            "  placement: {} layout on a {}x{} tile grid ({} tile(s)), {} patch-step(s), \
             budget {:.1e}\n",
            self.layout.strategy.name(),
            self.grid.0,
            self.grid.1,
            self.tiles,
            self.patch_steps,
            self.budget
        ));
        out.push_str(&format!(
            "  routing: {} routed merge(s), parallel_merges {}, routing_stalls {}\n\n",
            self.routed_merges, self.parallel_merges, self.routing_stalls
        ));
        // The mode and scheduling-stat columns appear only when some row
        // carries a non-default value, so default-knob compiled reports are
        // byte-identical to releases that predate these columns.
        let show_mode = self.rows.iter().any(|r| r.estimate_mode != EstimateMode::Compiled);
        let show_stats = self.rows.iter().any(|r| r.junction_stalls > 0 || r.batched_pulses > 0);
        out.push_str(&format!(
            "  {:<14} {:>4} {:>12} {:>12} {:>8} {:>12} {:>14}",
            "profile", "d", "error", "duration", "zones", "area", "qubit-rounds"
        ));
        if show_stats {
            out.push_str(&format!(" {:>15} {:>14}", "junction_stalls", "batched_pulses"));
        }
        if show_mode {
            out.push_str(&format!(" {:>9}", "mode"));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!(
                "  {:<14} {:>4} {:>12.3e} {:>11.4}s {:>8} {:>9.3e}m^2 {:>14}",
                row.profile,
                row.distance,
                row.achieved_error,
                row.duration_s,
                row.trapping_zones,
                row.area_m2,
                row.qubit_rounds
            ));
            if show_stats {
                out.push_str(&format!(" {:>15} {:>14}", row.junction_stalls, row.batched_pulses));
            }
            if show_mode {
                out.push_str(&format!(" {:>9}", row.estimate_mode.name()));
            }
            out.push('\n');
        }
        out
    }
}

/// Errors raised by [`estimate_program`].
#[derive(Clone, Debug, PartialEq)]
pub enum EstimateError {
    /// The program failed validation.
    Program(ProgramError),
    /// The program does not fit the requested floorplan.
    Placement(PlacementError),
    /// A merge could not be routed under the floorplan.
    Routing(RoutingError),
    /// Distance selection failed (bad model or unsatisfiable budget).
    Budget(BudgetError),
    /// A per-instruction compilation failed.
    Compile(String),
    /// The spec is malformed (e.g. no profiles).
    Spec(String),
}

impl std::fmt::Display for EstimateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EstimateError::Program(e) => write!(f, "invalid program: {e}"),
            EstimateError::Placement(e) => write!(f, "{e}"),
            EstimateError::Routing(e) => write!(f, "{e}"),
            EstimateError::Budget(e) => write!(f, "{e}"),
            EstimateError::Compile(e) => write!(f, "compilation failed: {e}"),
            EstimateError::Spec(e) => write!(f, "invalid estimate spec: {e}"),
        }
    }
}

impl std::error::Error for EstimateError {}

impl From<ProgramError> for EstimateError {
    fn from(e: ProgramError) -> Self {
        EstimateError::Program(e)
    }
}

impl From<PlacementError> for EstimateError {
    fn from(e: PlacementError) -> Self {
        EstimateError::Placement(e)
    }
}

impl From<RoutingError> for EstimateError {
    fn from(e: RoutingError) -> Self {
        EstimateError::Routing(e)
    }
}

impl From<BudgetError> for EstimateError {
    fn from(e: BudgetError) -> Self {
        EstimateError::Budget(e)
    }
}

impl From<CoreError> for EstimateError {
    fn from(e: CoreError) -> Self {
        EstimateError::Compile(e.to_string())
    }
}

/// Estimates `program` under `spec`, compiling through (and memoizing in)
/// `compiler`.
pub fn estimate_program(
    program: &LogicalProgram,
    spec: &ProgramEstimateSpec,
    compiler: &Compiler,
) -> Result<ProgramEstimate, EstimateError> {
    estimate_program_with(program, spec, compiler, &Telemetry::off().root("estimate"))
}

/// [`estimate_program`] with telemetry: each pipeline phase (`validate`,
/// `place`, `schedule`, `select_distance`, `compile`, `assemble`) opens a
/// child span under `parent`, and the compile phase records the
/// `compile.cache_hits` / `compile.cache_misses` /
/// `compile.analytic_captures` deltas of `compiler` across the fan-out.
/// Passing a span from [`Telemetry::off`] makes this identical to
/// [`estimate_program`].
pub fn estimate_program_with(
    program: &LogicalProgram,
    spec: &ProgramEstimateSpec,
    compiler: &Compiler,
    parent: &Span,
) -> Result<ProgramEstimate, EstimateError> {
    {
        let _validate = parent.child("validate");
        program.validate()?;
        if spec.profiles.is_empty() {
            return Err(EstimateError::Spec("at least one hardware profile is required".into()));
        }
    }

    let placement = {
        let _place = parent.child("place");
        Placement::allocate_with(program, &spec.layout)?
    };
    let sched = schedule_with(program, &placement, parent)?;
    let patch_steps = sched.patch_steps(placement.total_tiles());
    let (d, achieved_error) = {
        let _select = parent.child("select_distance");
        let d = spec.model.select_distance(patch_steps, spec.budget, spec.d_max)?;
        (d, spec.model.program_error(d, patch_steps))
    };

    // The distinct instruction kinds of the program: each is compiled once
    // per profile at the selected distance (the compiler cache makes
    // repeated estimates free).
    let mut kinds: Vec<Instruction> = Vec::new();
    for pi in program.instructions() {
        if !kinds.contains(&pi.instruction) {
            kinds.push(pi.instruction);
        }
    }

    let compile_span = parent.child("compile");
    let hits_before = compiler.cache().hits();
    let misses_before = compiler.cache().misses();
    let captures_before = compiler.analytic_captures();
    let requests: Vec<(usize, CompileRequest)> = spec
        .profiles
        .iter()
        .enumerate()
        .flat_map(|(pi, profile)| {
            kinds.iter().map(move |&kind| {
                (pi, CompileRequest::new(kind, d, d, d).with_spec(profile.clone()))
            })
        })
        .collect();
    let compiled: Result<Vec<_>, CoreError> = requests
        .into_par_iter()
        .map(|(pi, request)| {
            compiler.estimate_row(&request, spec.mode).map(|row| {
                (
                    (pi, request.instruction),
                    (row.resources.execution_time_s, compiler.stats_for(&request)),
                )
            })
        })
        .collect();
    let results: HashMap<(usize, Instruction), (f64, CompileStats)> =
        compiled?.into_iter().collect();
    let times: HashMap<(usize, Instruction), f64> =
        results.iter().map(|(&key, &(time, _))| (key, time)).collect();
    // Scheduling-pass observables, summed per instruction *instance* so a
    // kind occurring k times contributes k× its compiled stats.
    let profile_stats = |pi: usize| {
        program.instructions().iter().fold((0usize, 0usize), |(stalls, pulses), inst| {
            let (_, stats) = results[&(pi, inst.instruction)];
            (stalls + stats.junction_stalls, pulses + stats.batched_pulses)
        })
    };
    let (total_stalls, total_pulses) = (0..spec.profiles.len())
        .map(profile_stats)
        .fold((0usize, 0usize), |(a, b), (s, p)| (a + s, b + p));
    compile_span.add("compile.junction_stalls", total_stalls as u64);
    compile_span.add("compile.batched_pulses", total_pulses as u64);
    compile_span
        .add("compile.cache_hits", compiler.cache().hits().saturating_sub(hits_before) as u64);
    compile_span.add(
        "compile.cache_misses",
        compiler.cache().misses().saturating_sub(misses_before) as u64,
    );
    compile_span.add(
        "compile.analytic_captures",
        compiler.analytic_captures().saturating_sub(captures_before) as u64,
    );
    compile_span.finish();

    // The machine footprint depends only on the placement and the selected
    // distance, never on the profile.
    let assemble_span = parent.child("assemble");
    let layout = placement.layout(d);
    let zones = layout.trapping_zone_count();
    let area_m2 = layout.area_m2();
    let rows = spec
        .profiles
        .iter()
        .enumerate()
        .map(|(pi, profile)| {
            let duration_s = program_duration_s(program, &sched, |kind| times[&(pi, kind)]);
            let (junction_stalls, batched_pulses) = profile_stats(pi);
            ProfileEstimate {
                profile: profile.name.clone(),
                distance: d,
                achieved_error,
                duration_s,
                trapping_zones: zones,
                area_m2,
                qubit_rounds: zones as u64 * sched.logical_time_steps as u64 * d as u64,
                junction_stalls,
                batched_pulses,
                estimate_mode: spec.mode,
            }
        })
        .collect();
    drop(assemble_span);

    Ok(ProgramEstimate {
        program: program.name().to_string(),
        logical_qubits: program.qubit_count(),
        instructions: program.len(),
        tiles: placement.total_tiles(),
        layout: spec.layout,
        grid: (placement.tile_rows(), placement.tile_cols()),
        depth: sched.depth(),
        logical_time_steps: sched.logical_time_steps,
        max_parallelism: sched.max_parallelism(),
        routed_merges: sched.routed_merges(),
        parallel_merges: sched.parallel_merges,
        routing_stalls: sched.routing_stalls,
        patch_steps,
        budget: spec.budget,
        rows,
    })
}

/// Wall-clock duration of a scheduled program: parallel steps run their
/// member instructions concurrently, so each step costs its longest
/// member and the program costs the sum over steps.
fn program_duration_s(
    program: &LogicalProgram,
    sched: &Schedule,
    time_of: impl Fn(Instruction) -> f64,
) -> f64 {
    sched
        .steps
        .iter()
        .map(|step| {
            step.instructions
                .iter()
                .map(|&i| time_of(program.instructions()[i].instruction))
                .fold(0.0, f64::max)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiscc_program::examples;

    /// A loose budget keeps selected distances (and compile times) small.
    fn fast_spec() -> ProgramEstimateSpec {
        ProgramEstimateSpec::new(1e-3)
    }

    #[test]
    fn teleportation_estimate_has_consistent_totals() {
        let program = examples::teleportation();
        let compiler = Compiler::new();
        let est = estimate_program(&program, &fast_spec(), &compiler).unwrap();
        assert_eq!(est.logical_qubits, 3);
        assert_eq!(est.instructions, 9);
        assert_eq!(est.tiles, 6);
        assert_eq!(est.grid, (2, 3));
        assert!(est.depth >= 3 && est.depth <= est.instructions);
        assert!(est.rows[0].achieved_error <= 1e-3);
        let row = &est.rows[0];
        assert_eq!(row.profile, "h1");
        assert!(row.duration_s > 0.0);
        assert!(row.trapping_zones > 0);
        assert_eq!(
            row.qubit_rounds,
            row.trapping_zones as u64 * est.logical_time_steps as u64 * row.distance as u64
        );
        let report = est.render();
        assert!(report.contains("teleport"));
        assert!(report.contains("h1"));
        assert!(report.contains("lane layout"));
        assert!(report.contains("routing_stalls 0"));
    }

    #[test]
    fn profiles_share_distance_but_differ_in_duration() {
        let program = examples::bell_pair();
        let compiler = Compiler::new();
        let spec = fast_spec().with_profiles(vec![HardwareSpec::h1(), HardwareSpec::projected()]);
        let est = estimate_program(&program, &spec, &compiler).unwrap();
        assert_eq!(est.rows.len(), 2);
        assert_eq!(est.rows[0].distance, est.rows[1].distance);
        assert!(
            est.rows[1].duration_s < est.rows[0].duration_s,
            "projected hardware runs the same program faster"
        );
        assert_eq!(est.rows[0].trapping_zones, est.rows[1].trapping_zones);
    }

    #[test]
    fn estimates_are_memoized_across_calls() {
        let program = examples::bell_pair();
        let compiler = Compiler::new();
        estimate_program(&program, &fast_spec(), &compiler).unwrap();
        let misses = compiler.cache().misses();
        assert!(misses > 0);
        let again = estimate_program(&program, &fast_spec(), &compiler).unwrap();
        assert_eq!(compiler.cache().misses(), misses, "second estimate is all cache hits");
        assert!(again.rows[0].duration_s > 0.0);
    }

    #[test]
    fn layouts_change_congestion_but_not_the_physics() {
        let program = examples::ripple_adder();
        let compiler = Compiler::new();
        let row = fast_spec().with_layout(LayoutSpec::row_major().with_grid(8, 8));
        let board = fast_spec().with_layout(LayoutSpec::checkerboard().with_grid(8, 8));
        let row_est = estimate_program(&program, &row, &compiler).unwrap();
        let board_est = estimate_program(&program, &board, &compiler).unwrap();
        assert_eq!(row_est.tiles, 64);
        assert_eq!(board_est.tiles, 64);
        assert!(board_est.parallel_merges > 0);
        assert!(
            row_est.routing_stalls > board_est.routing_stalls,
            "row {} vs checkerboard {}",
            row_est.routing_stalls,
            board_est.routing_stalls
        );
        assert!(board_est.logical_time_steps < row_est.logical_time_steps);
        let report = board_est.render();
        assert!(report.contains("checkerboard layout"));
    }

    #[test]
    fn invalid_programs_and_specs_are_rejected() {
        let mut bad = LogicalProgram::new("bad");
        let q = bad.add_qubit("q").unwrap();
        bad.hadamard(q).unwrap();
        let compiler = Compiler::new();
        assert!(matches!(
            estimate_program(&bad, &fast_spec(), &compiler),
            Err(EstimateError::Program(_))
        ));

        let program = examples::bell_pair();
        let no_profiles = ProgramEstimateSpec { profiles: vec![], ..fast_spec() };
        assert!(matches!(
            estimate_program(&program, &no_profiles, &compiler),
            Err(EstimateError::Spec(_))
        ));

        let impossible = ProgramEstimateSpec { budget: 1e-300, d_max: 3, ..fast_spec() };
        assert!(matches!(
            estimate_program(&program, &impossible, &compiler),
            Err(EstimateError::Budget(BudgetError::Unsatisfiable { .. }))
        ));

        // A grid too small for the program is a typed placement error…
        let tiny = fast_spec().with_layout(LayoutSpec::checkerboard().with_grid(1, 2));
        assert!(matches!(
            estimate_program(&program, &tiny, &compiler),
            Err(EstimateError::Placement(PlacementError::GridTooSmall { .. }))
        ));
        // …and a grid with no ancilla fabric is a typed routing error.
        let unroutable = fast_spec().with_layout(LayoutSpec::row_major().with_grid(1, 2));
        assert!(matches!(
            estimate_program(&program, &unroutable, &compiler),
            Err(EstimateError::Routing(_))
        ));
    }
}

//! Figure-level reports: the stabilizer arrangements over the grid (Figs. 1–2),
//! operator movement / deformation tracking (Fig. 3 context), translation by
//! ion movement (Fig. 4) and the syndrome-extraction movement patterns (Fig. 6).

use tiscc_core::deform::movement_combination;
use tiscc_core::plaquette::{build_stabilizers, logical_x_support, logical_z_support};
use tiscc_core::syndrome::pattern_order;
use tiscc_core::translate::move_right_then_swap_left;
use tiscc_core::{Arrangement, CoreError, StabKind};
use tiscc_grid::Layout;
use tiscc_hw::ResourceReport;
use tiscc_math::PauliOp;

use crate::verify::{Fiducial, SingleTile};

/// Fig. 1 / Fig. 2: ASCII rendering of the four canonical arrangements of a
/// `dx × dz` patch, showing the M/O/J grid of one tile and the stabilizer
/// types per cell.
pub fn arrangements_report(dx: usize, dz: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!("Logical tile for dx={dx}, dz={dz}: "));
    out.push_str(&format!(
        "{} x {} units ({} strip row(s) above, {} strip column(s) right)\n\n",
        tiscc_core::plaquette::tile_rows(dz),
        tiscc_core::plaquette::tile_cols(dx),
        tiscc_core::plaquette::row_offset(dz),
        tiscc_core::plaquette::col_strip(dx),
    ));
    let layout =
        Layout::new(tiscc_core::plaquette::tile_rows(dz), tiscc_core::plaquette::tile_cols(dx));
    out.push_str("Hardware sites of one tile (J junction, O operation, M memory):\n");
    out.push_str(&layout.render_ascii());
    out.push('\n');
    for arrangement in Arrangement::all() {
        out.push_str(&format!("{arrangement:?} arrangement:\n"));
        let stabs = build_stabilizers(dx, dz, arrangement);
        for r in -1..dz as i32 {
            let mut line = String::new();
            for c in -1..dx as i32 {
                let ch = stabs
                    .iter()
                    .find(|p| p.cell == (r, c))
                    .map(|p| match p.kind {
                        StabKind::X => 'X',
                        StabKind::Z => 'Z',
                    })
                    .unwrap_or('.');
                line.push(ch);
                line.push(' ');
            }
            out.push_str(&line);
            out.push('\n');
        }
        let lx = logical_x_support(dx, dz, arrangement);
        let lz = logical_z_support(dx, dz, arrangement);
        out.push_str(&format!(
            "  X_L weight {} ({}), Z_L weight {} ({})\n\n",
            lx.len(),
            if arrangement.logical_z_vertical() { "horizontal" } else { "vertical" },
            lz.len(),
            if arrangement.logical_z_vertical() { "vertical" } else { "horizontal" },
        ));
    }
    out
}

/// Fig. 3 context: the corner/operator-movement machinery. Reports, for a
/// `d × d` patch, the stabilizer cells whose measurement moves the default
/// logical operators to the opposite edge (the deformation tracked during
/// Flip Patch), for each arrangement.
pub fn operator_movement_report(d: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!("Operator movement on a {d}x{d} patch (Sec. 2.5/4.5):\n"));
    for arrangement in [Arrangement::Standard, Arrangement::Rotated] {
        let stabs = build_stabilizers(d, d, arrangement);
        let from_x = logical_x_support(d, d, arrangement);
        let to_x: Vec<((usize, usize), PauliOp)> =
            from_x
                .iter()
                .map(|&((i, j), p)| {
                    if arrangement.logical_z_vertical() {
                        ((d - 1, j), p)
                    } else {
                        ((i, d - 1), p)
                    }
                })
                .collect();
        let cells = movement_combination(d, d, &stabs, StabKind::X, &from_x, &to_x);
        out.push_str(&format!(
            "  {arrangement:?}: moving X_L to the opposite edge measures {} X-type stabilizers: {:?}\n",
            cells.as_ref().map(|c| c.len()).unwrap_or(0),
            cells.unwrap_or_default(),
        ));
    }
    out
}

/// Fig. 4: resources of the `Move Right` + `Swap Left` translation pair
/// (pure ion movement, verified to be the identity on the encoded state).
pub fn translation_report(d: usize) -> Result<(String, ResourceReport), CoreError> {
    let mut fixture = SingleTile::new(d, d, 1)?;
    Fiducial::Plus.prepare(&mut fixture.hw, &mut fixture.patch)?;
    let before = fixture.hw.circuit().len();
    let transport_ops = move_right_then_swap_left(&mut fixture.hw, &mut fixture.patch)?;
    let ops: Vec<_> = fixture.hw.circuit().ops()[before..].to_vec();
    let report =
        ResourceReport::from_circuit(&tiscc_hw::Circuit::from_ops(ops), fixture.hw.grid().layout());
    let text = format!(
        "Move Right + Swap Left at d={d}: {} transport operations, {:.6} s, {} junction(s) traversed\n",
        transport_ops, report.execution_time_s, report.junctions
    );
    Ok((text, report))
}

/// Fig. 6: the Z and N measure-qubit movement patterns, listed per stabilizer
/// type and arrangement.
pub fn patterns_report() -> String {
    let slot_name = |s: usize| ["NW", "NE", "SW", "SE"][s];
    let mut out = String::from("Measure-qubit movement patterns (Fig. 6):\n");
    for arrangement in Arrangement::all() {
        for kind in [StabKind::Z, StabKind::X] {
            let order = pattern_order(kind, arrangement);
            let named: Vec<&str> = order.iter().map(|&s| slot_name(s)).collect();
            let pattern = if order == [0, 1, 2, 3] { "Z pattern" } else { "N pattern" };
            out.push_str(&format!(
                "  {arrangement:?} {kind:?}-type: {} ({})\n",
                named.join(" -> "),
                pattern
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrangements_report_mentions_all_four() {
        let r = arrangements_report(3, 3);
        for name in ["Standard", "Rotated", "Flipped", "RotatedFlipped"] {
            assert!(r.contains(name), "missing {name}");
        }
        assert!(r.contains('J') && r.contains('O') && r.contains('M'));
    }

    #[test]
    fn patterns_report_contains_both_patterns() {
        let r = patterns_report();
        assert!(r.contains("Z pattern"));
        assert!(r.contains("N pattern"));
        assert!(r.contains("NW -> SW -> NE -> SE"));
    }

    #[test]
    fn operator_movement_report_finds_combinations() {
        let r = operator_movement_report(3);
        assert!(r.contains("4 X-type stabilizers"));
    }
}

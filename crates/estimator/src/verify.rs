//! The Sec. 4 verification harness: compiles TISCC operations, simulates the
//! resulting hardware circuits with the quasi-Clifford simulator, and performs
//! state / process tomography in the logical sub-space with the Pauli-frame
//! corrections of Sec. 4.5.

use rand::rngs::StdRng;
use rand::SeedableRng;

use tiscc_core::{CoreError, LogicalQubit, TrackedOperator};
use tiscc_hw::{HardwareModel, HardwareSpec};
use tiscc_orqcs::postprocess::CorrectedOperator;
use tiscc_orqcs::tomography::BlochVector;
use tiscc_orqcs::{Interpreter, RunResult};

/// Converts a compiler-side tracked logical operator into the simulator-side
/// corrected operator.
pub fn corrected(op: &TrackedOperator) -> CorrectedOperator {
    CorrectedOperator { support: op.support.clone(), frame: op.frame.clone(), invert: op.invert }
}

/// The six fiducial logical input states used for process tomography.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fiducial {
    /// |0⟩ logical.
    Zero,
    /// |1⟩ logical.
    One,
    /// |+⟩ logical.
    Plus,
    /// |−⟩ logical.
    Minus,
    /// |+i⟩ logical.
    PlusI,
    /// |−i⟩ logical.
    MinusI,
}

impl Fiducial {
    /// All six fiducials in the order used by
    /// [`tiscc_orqcs::tomography::ProcessMap::from_fiducial_images`].
    pub fn all() -> [Fiducial; 6] {
        [
            Fiducial::Zero,
            Fiducial::One,
            Fiducial::Plus,
            Fiducial::Minus,
            Fiducial::PlusI,
            Fiducial::MinusI,
        ]
    }

    /// The ideal Bloch vector of the fiducial.
    pub fn bloch(self) -> BlochVector {
        match self {
            Fiducial::Zero => BlochVector::new(0.0, 0.0, 1.0),
            Fiducial::One => BlochVector::new(0.0, 0.0, -1.0),
            Fiducial::Plus => BlochVector::new(1.0, 0.0, 0.0),
            Fiducial::Minus => BlochVector::new(-1.0, 0.0, 0.0),
            Fiducial::PlusI => BlochVector::new(0.0, 1.0, 0.0),
            Fiducial::MinusI => BlochVector::new(0.0, -1.0, 0.0),
        }
    }

    /// Compiles the preparation of this fiducial logical state onto `patch`
    /// (fault-tolerant preparation plus logical Paulis / injection).
    pub fn prepare(
        self,
        hw: &mut HardwareModel,
        patch: &mut LogicalQubit,
    ) -> Result<(), CoreError> {
        use tiscc_math::PauliOp;
        match self {
            Fiducial::Zero => {
                patch.transversal_prepare_z(hw)?;
            }
            Fiducial::One => {
                patch.transversal_prepare_z(hw)?;
                patch.apply_logical_pauli(hw, PauliOp::X)?;
            }
            Fiducial::Plus => {
                patch.transversal_prepare_x(hw)?;
            }
            Fiducial::Minus => {
                patch.transversal_prepare_x(hw)?;
                patch.apply_logical_pauli(hw, PauliOp::Z)?;
            }
            Fiducial::PlusI => {
                patch.inject_y(hw)?;
            }
            Fiducial::MinusI => {
                patch.inject_y(hw)?;
                patch.apply_logical_pauli(hw, PauliOp::Z)?;
            }
        }
        // One round of error correction brings the patch to a quiescent state
        // (and provides fresh stabilizer values for later operator movement).
        patch.syndrome_round(hw, "fiducial quiescence")?;
        Ok(())
    }
}

/// A single-tile verification fixture: a hardware model hosting one patch,
/// with the grid snapshot taken before any operation was compiled.
pub struct SingleTile {
    /// The hardware model accumulating the compiled circuit.
    pub hw: HardwareModel,
    /// The patch under test.
    pub patch: LogicalQubit,
    snapshot: Vec<(tiscc_grid::QubitId, tiscc_grid::QSite)>,
}

impl SingleTile {
    /// Creates a fresh grid hosting a single `dx × dz` patch with temporal
    /// distance `dt`, under the default hardware profile.
    pub fn new(dx: usize, dz: usize, dt: usize) -> Result<Self, CoreError> {
        SingleTile::with_spec(dx, dz, dt, HardwareSpec::default())
    }

    /// Creates a fresh grid hosting a single `dx × dz` patch, compiling
    /// under the given hardware profile.
    pub fn with_spec(
        dx: usize,
        dz: usize,
        dt: usize,
        spec: HardwareSpec,
    ) -> Result<Self, CoreError> {
        let rows = tiscc_core::plaquette::tile_rows(dz) + 2;
        let cols = tiscc_core::plaquette::tile_cols(dx) + 2;
        let mut hw = HardwareModel::with_spec(rows, cols, spec);
        let patch = LogicalQubit::new(&mut hw, dx, dz, dt, (0, 0))?;
        let snapshot = hw.grid().snapshot();
        Ok(SingleTile { hw, patch, snapshot })
    }

    /// Runs the compiled circuit on the stabilizer simulator.
    pub fn simulate(&self, seed: u64) -> RunResult {
        let interpreter = Interpreter::new(&self.snapshot);
        let mut rng = StdRng::seed_from_u64(seed);
        interpreter
            .run(self.hw.circuit(), &mut rng)
            .expect("compiled circuit must be Clifford-simulable")
    }

    /// The logical Bloch vector of the patch in a simulation run, with all
    /// Pauli-frame corrections applied.
    pub fn logical_bloch(&self, run: &RunResult) -> BlochVector {
        let x = corrected(&self.patch.tracked_x().unwrap()).expectation(run) as f64;
        let y = corrected(&self.patch.tracked_y().unwrap()).expectation(run) as f64;
        let z = corrected(&self.patch.tracked_z().unwrap()).expectation(run) as f64;
        BlochVector::new(x, y, z)
    }
}

/// A two-tile (vertically adjacent) verification fixture.
pub struct TwoTiles {
    /// The hardware model accumulating the compiled circuit.
    pub hw: HardwareModel,
    /// The upper patch.
    pub upper: LogicalQubit,
    /// The lower patch.
    pub lower: LogicalQubit,
    snapshot: Vec<(tiscc_grid::QubitId, tiscc_grid::QSite)>,
}

impl TwoTiles {
    /// Creates a fresh grid hosting two vertically adjacent patches, under
    /// the default hardware profile.
    pub fn new(dx: usize, dz: usize, dt: usize) -> Result<Self, CoreError> {
        TwoTiles::with_spec(dx, dz, dt, HardwareSpec::default())
    }

    /// Creates a fresh grid hosting two vertically adjacent patches,
    /// compiling under the given hardware profile.
    pub fn with_spec(
        dx: usize,
        dz: usize,
        dt: usize,
        spec: HardwareSpec,
    ) -> Result<Self, CoreError> {
        let rows = 2 * tiscc_core::plaquette::tile_rows(dz) + 2;
        let cols = tiscc_core::plaquette::tile_cols(dx) + 2;
        let mut hw = HardwareModel::with_spec(rows, cols, spec);
        let upper = LogicalQubit::new(&mut hw, dx, dz, dt, (0, 0))?;
        let lower =
            LogicalQubit::new(&mut hw, dx, dz, dt, (tiscc_core::plaquette::tile_rows(dz), 0))?;
        let snapshot = hw.grid().snapshot();
        Ok(TwoTiles { hw, upper, lower, snapshot })
    }

    /// Creates a fresh grid hosting two horizontally adjacent patches, under
    /// the default hardware profile.
    pub fn new_horizontal(dx: usize, dz: usize, dt: usize) -> Result<Self, CoreError> {
        TwoTiles::new_horizontal_with_spec(dx, dz, dt, HardwareSpec::default())
    }

    /// Creates a fresh grid hosting two horizontally adjacent patches,
    /// compiling under the given hardware profile.
    pub fn new_horizontal_with_spec(
        dx: usize,
        dz: usize,
        dt: usize,
        spec: HardwareSpec,
    ) -> Result<Self, CoreError> {
        let rows = tiscc_core::plaquette::tile_rows(dz) + 2;
        let cols = 2 * tiscc_core::plaquette::tile_cols(dx) + 2;
        let mut hw = HardwareModel::with_spec(rows, cols, spec);
        let upper = LogicalQubit::new(&mut hw, dx, dz, dt, (0, 0))?;
        let lower =
            LogicalQubit::new(&mut hw, dx, dz, dt, (0, tiscc_core::plaquette::tile_cols(dx)))?;
        let snapshot = hw.grid().snapshot();
        Ok(TwoTiles { hw, upper, lower, snapshot })
    }

    /// Runs the compiled circuit on the stabilizer simulator.
    pub fn simulate(&self, seed: u64) -> RunResult {
        let interpreter = Interpreter::new(&self.snapshot);
        let mut rng = StdRng::seed_from_u64(seed);
        interpreter
            .run(self.hw.circuit(), &mut rng)
            .expect("compiled circuit must be Clifford-simulable")
    }

    /// Corrected expectation value of the product of two tracked operators
    /// (one per patch).
    pub fn joint_expectation(
        &self,
        run: &RunResult,
        a: &TrackedOperator,
        b: &TrackedOperator,
    ) -> i8 {
        let mut support = a.support.clone();
        support.extend(b.support.iter().cloned());
        let mut frame = a.frame.clone();
        frame.extend(b.frame.iter().copied());
        let op = CorrectedOperator { support, frame, invert: a.invert ^ b.invert };
        op.expectation(run)
    }
}

/// Reconstructs the logical process map of a single-tile operation by
/// preparing each fiducial input, applying `operation`, simulating, and
/// reading the corrected logical Bloch vector.
pub fn process_map_of<F>(
    dx: usize,
    dz: usize,
    dt: usize,
    seed: u64,
    mut operation: F,
) -> Result<tiscc_orqcs::ProcessMap, CoreError>
where
    F: FnMut(&mut HardwareModel, &mut LogicalQubit) -> Result<(), CoreError>,
{
    let mut images = Vec::with_capacity(6);
    for (k, fiducial) in Fiducial::all().into_iter().enumerate() {
        let mut fixture = SingleTile::new(dx, dz, dt)?;
        fiducial.prepare(&mut fixture.hw, &mut fixture.patch)?;
        operation(&mut fixture.hw, &mut fixture.patch)?;
        let run = fixture.simulate(seed.wrapping_add(k as u64));
        images.push(fixture.logical_bloch(&run));
    }
    let images: [BlochVector; 6] = images.try_into().expect("six fiducials");
    Ok(tiscc_orqcs::ProcessMap::from_fiducial_images(&images))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fiducial_preparation_round_trips_through_the_simulator() {
        for fiducial in Fiducial::all() {
            let mut fixture = SingleTile::new(2, 2, 1).unwrap();
            fiducial.prepare(&mut fixture.hw, &mut fixture.patch).unwrap();
            let run = fixture.simulate(11);
            let bloch = fixture.logical_bloch(&run);
            assert!(bloch.distance(&fiducial.bloch()) < 1e-9, "{fiducial:?}: got {bloch:?}");
        }
    }
}

//! Command-line entry point regenerating the paper's tables and figures.
//!
//! Usage: `tiscc-report <experiment> [distances...]` where `<experiment>` is
//! one of `table1`, `table2`, `table3`, `table5`, `fig2`, `fig3`, `fig4`,
//! `fig6`, `resources`, `verification`, or `all`.

use tiscc_estimator::verify::{process_map_of, Fiducial, SingleTile};
use tiscc_estimator::{experiments, tables};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiment = args.first().map(String::as_str).unwrap_or("all");
    let distances: Vec<usize> =
        args[1.min(args.len())..].iter().filter_map(|a| a.parse().ok()).collect();
    let distances = if distances.is_empty() { vec![2, 3] } else { distances };

    match experiment {
        "table1" => print_rows(
            "Table 1: local lattice-surgery instruction set",
            tables::table1_rows(&distances, 2),
        ),
        "table2" => {
            print_rows("Table 2: primitive operations", tables::table2_rows(distances[0].max(2), 2))
        }
        "table3" => print_rows(
            "Table 3: derived instruction set",
            tables::table3_rows(distances[0].max(2), 2),
        ),
        "table5" => println!("{}", tables::table5()),
        "fig2" => println!(
            "{}",
            experiments::arrangements_report(distances[0].max(2), distances[0].max(2))
        ),
        "fig3" => println!("{}", experiments::operator_movement_report(distances[0].max(3))),
        "fig4" => match experiments::translation_report(distances[0].max(2)) {
            Ok((text, report)) => {
                println!("{text}");
                println!("{}", report.render());
            }
            Err(e) => eprintln!("error: {e}"),
        },
        "fig6" => println!("{}", experiments::patterns_report()),
        "resources" => print_rows(
            "Sec. 3.4 resource-estimation sweep (dt = d)",
            tables::resource_sweep(&distances, true),
        ),
        "verification" => run_verification(),
        "all" => {
            println!("{}", tables::table5());
            print_rows("Table 1", tables::table1_rows(&distances, 2));
            print_rows("Table 2", tables::table2_rows(distances[0].max(2), 2));
            print_rows("Table 3", tables::table3_rows(distances[0].max(2), 2));
            println!("{}", experiments::arrangements_report(3, 3));
            println!("{}", experiments::operator_movement_report(3));
            println!("{}", experiments::patterns_report());
            run_verification();
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            std::process::exit(2);
        }
    }
}

fn print_rows(title: &str, rows: Result<Vec<tables::ResourceRow>, tiscc_core::CoreError>) {
    match rows {
        Ok(rows) => {
            println!("{}", tables::render_rows(title, &rows));
            println!("{}", tables::render_csv(&rows));
        }
        Err(e) => eprintln!("error compiling {title}: {e}"),
    }
}

fn run_verification() {
    println!("Sec. 4 verification (state preparation + identity of Idle):");
    for fiducial in Fiducial::all() {
        let mut fixture = SingleTile::new(2, 2, 1).expect("fixture");
        fiducial.prepare(&mut fixture.hw, &mut fixture.patch).expect("prepare");
        let run = fixture.simulate(17);
        let bloch = fixture.logical_bloch(&run);
        println!(
            "  prepare {:?}: bloch = ({:+.1}, {:+.1}, {:+.1}) target {:?}",
            fiducial,
            bloch.x,
            bloch.y,
            bloch.z,
            fiducial.bloch()
        );
    }
    let idle =
        process_map_of(3, 3, 1, 23, |hw, patch| patch.idle(hw).map(|_| ())).expect("idle map");
    println!(
        "  Idle process map deviation from identity: {:.3e}",
        idle.max_deviation(&tiscc_orqcs::ProcessMap::identity())
    );
}

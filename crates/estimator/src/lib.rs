//! Resource-estimation sweeps, verification campaigns and table generation.
//!
//! This crate drives the compiler (`tiscc-core`) and the quasi-Clifford
//! simulator (`tiscc-orqcs`) to regenerate every table and figure of the
//! TISCC paper:
//!
//! * [`compiler`] — the unified front door: [`compiler::Compiler`] turns
//!   [`compiler::CompileRequest`]s (instruction × distances × hardware
//!   profile) into [`compiler::CompileArtifact`]s,
//! * [`tables`] — Tables 1–3 (instruction sets with logical time-step
//!   accounting), Table 5 (native gate set and durations) and the Sec. 3.4
//!   resource-estimation sweep,
//! * [`sweep`] — the batched sweep engine: [`sweep::SweepSpec`] grids fanned
//!   out over rayon with a concurrent compile cache and CSV/JSON emission;
//!   hardware profiles are a first-class sweep axis,
//! * [`program`] — the algorithm-level estimator: a whole
//!   `tiscc_program::LogicalProgram` placed, scheduled, distance-selected
//!   against an error budget, and costed per hardware profile,
//! * [`verify`] — the Sec. 4 verification harness: logical state and process
//!   tomography of compiled circuits, with Pauli-frame corrections,
//! * [`experiments`] — the figure-level reports (arrangements, operator
//!   movement, translation, syndrome-extraction patterns).
//!
//! Parameter sweeps are embarrassingly parallel and use `rayon`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compiler;
pub mod experiments;
pub mod program;
pub mod sweep;
pub mod tables;
pub mod verify;

pub use compiler::{
    AnalyticArtifact, CompileArtifact, CompileRequest, Compiler, EstimateMode, ANALYTIC_DT_CAP,
};
pub use program::{estimate_program, estimate_program_with, ProgramEstimate, ProgramEstimateSpec};
pub use sweep::{run_sweep, run_sweep_with, CompileCache, SweepResult, SweepSpec};

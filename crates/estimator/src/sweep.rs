//! The batched resource-estimation sweep engine (paper Sec. 3.4, grown into
//! a first-class subsystem).
//!
//! A [`SweepSpec`] describes a grid of `(instruction × dx × dz × dt)`
//! configurations. [`run_sweep`] fans the grid out over rayon worker
//! threads, memoizes every compiled configuration in a sharded concurrent
//! [`CompileCache`] (Tables 1–3 and repeated sweeps share primitives, so
//! identical configurations compile exactly once per cache lifetime), and
//! returns a [`SweepResult`] that renders as an aligned text table, CSV, or
//! JSON.
//!
//! The cache is keyed on the full configuration [`SweepKey`] — including a
//! fingerprint of the hardware profile, so the same workload compiled under
//! different [`HardwareSpec`]s never shares cache entries; requests are
//! deduplicated *before* the parallel fan-out, so even a cold sweep never
//! compiles the same configuration twice, and a warm sweep over an already
//! seen spec performs zero compilations while still reproducing every row in
//! request order. Hardware profiles are a first-class sweep axis:
//! [`SweepSpec::with_profiles`] turns "same workload, N hardware profiles"
//! into a one-line change.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use rayon::prelude::*;

use tiscc_core::instruction::Instruction;
use tiscc_core::CoreError;
use tiscc_hw::{HardwareSpec, SpecFingerprint};
use tiscc_telemetry::{Span, Telemetry};

use crate::compiler::{AnalyticArtifact, EstimateMode};
use crate::tables::{compile_instruction_row_with, csv_header, render_csv, ResourceRow};

/// How the temporal code distance `dt` (rounds of error correction per
/// logical time-step) is chosen for each spatial configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DtPolicy {
    /// Use a fixed number of rounds for every configuration.
    Fixed(usize),
    /// Use `max(dx, dz)` rounds — the standard fault-tolerant choice the
    /// paper adopts for its scaling sweep (`dt = d`).
    EqualsDistance,
}

impl DtPolicy {
    /// Resolves the policy for a concrete `(dx, dz)` pair.
    pub fn resolve(self, dx: usize, dz: usize) -> usize {
        match self {
            DtPolicy::Fixed(dt) => dt,
            DtPolicy::EqualsDistance => dx.max(dz),
        }
    }
}

/// One fully resolved sweep configuration — the memoization key of the
/// [`CompileCache`]. The hardware profile participates through its
/// parameter fingerprint, so two profiles never collide in the cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SweepKey {
    /// The instruction to compile.
    pub instruction: Instruction,
    /// X code distance.
    pub dx: usize,
    /// Z code distance.
    pub dz: usize,
    /// Rounds of error correction per logical time-step.
    pub dt: usize,
    /// Fingerprint of the hardware profile compiled under.
    pub spec: SpecFingerprint,
}

impl fmt::Display for SweepKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@dx{}dz{}dt{}#{}", self.instruction.id(), self.dx, self.dz, self.dt, self.spec)
    }
}

/// A batched sweep specification: the cross product of hardware profiles,
/// instructions, `(dx, dz)` distance pairs and dt policies.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepSpec {
    /// Instructions to compile.
    pub instructions: Vec<Instruction>,
    /// `(dx, dz)` distance pairs.
    pub distances: Vec<(usize, usize)>,
    /// Temporal-distance policies (usually a single entry).
    pub dts: Vec<DtPolicy>,
    /// Hardware profiles to compile under (usually a single entry; the
    /// constructors default to [`HardwareSpec::h1`]).
    pub profiles: Vec<HardwareSpec>,
    /// How rows are produced: compiled schedules (the default) or one
    /// analytic capture per `(instruction, dx, dz, profile)` cell shared
    /// across the `dt` axis. Analytic rows land in the same
    /// [`CompileCache`] — they agree with compiled rows bit-for-bit on
    /// dyadic-duration profiles and to ≤ 1 ulp on durations elsewhere.
    pub mode: EstimateMode,
}

impl SweepSpec {
    /// A spec over explicit instructions and square distances `dx = dz = d`
    /// with the paper's `dt = d` policy, under the default profile.
    pub fn square(instructions: Vec<Instruction>, distances: &[usize]) -> Self {
        SweepSpec {
            instructions,
            distances: distances.iter().map(|&d| (d, d)).collect(),
            dts: vec![DtPolicy::EqualsDistance],
            profiles: vec![HardwareSpec::default()],
            mode: EstimateMode::default(),
        }
    }

    /// The full paper sweep: **all 13** Table 1 instructions at every square
    /// distance `2 ≤ d ≤ dmax`, with `dt = d`, under the default profile.
    pub fn paper(dmax: usize) -> Self {
        let distances: Vec<usize> = (2..=dmax.max(2)).collect();
        SweepSpec::square(Instruction::all().to_vec(), &distances)
    }

    /// Replaces the hardware-profile axis: the whole grid is compiled once
    /// per profile.
    pub fn with_profiles(mut self, profiles: Vec<HardwareSpec>) -> Self {
        self.profiles = profiles;
        self
    }

    /// Replaces the estimate mode (see [`SweepSpec::mode`]).
    pub fn with_mode(mut self, mode: EstimateMode) -> Self {
        self.mode = mode;
        self
    }

    /// Expands the grid into resolved keys, in deterministic request order
    /// (profile-major, then distance, then instruction, then dt policy), so
    /// a multi-profile sweep renders as one contiguous table per profile.
    pub fn keys(&self) -> Vec<SweepKey> {
        let mut keys = Vec::with_capacity(self.len());
        for profile in &self.profiles {
            let spec = profile.fingerprint();
            for &(dx, dz) in &self.distances {
                for &instruction in &self.instructions {
                    for &dt in &self.dts {
                        keys.push(SweepKey { instruction, dx, dz, dt: dt.resolve(dx, dz), spec });
                    }
                }
            }
        }
        keys
    }

    /// The profile each [`SweepSpec::keys`] fingerprint resolves to.
    pub fn profiles_by_fingerprint(&self) -> HashMap<SpecFingerprint, &HardwareSpec> {
        self.profiles.iter().map(|p| (p.fingerprint(), p)).collect()
    }

    /// Number of grid points (including duplicates after dt resolution).
    pub fn len(&self) -> usize {
        self.instructions.len() * self.distances.len() * self.dts.len() * self.profiles.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

const SHARD_COUNT: usize = 16;

/// A sharded, thread-safe memoization cache of compiled configurations.
///
/// Keys are full [`SweepKey`]s; values are the finished [`ResourceRow`]s
/// (the compiled circuit's space-time accounting). Sharding by key hash
/// keeps lock contention negligible while rayon workers insert results
/// concurrently. Hit/miss counters are cumulative over the cache lifetime.
pub struct CompileCache {
    shards: Vec<Mutex<HashMap<SweepKey, ResourceRow>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl Default for CompileCache {
    fn default() -> Self {
        CompileCache::new()
    }
}

impl CompileCache {
    /// An empty cache.
    pub fn new() -> Self {
        CompileCache {
            shards: (0..SHARD_COUNT).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    fn shard(&self, key: &SweepKey) -> &Mutex<HashMap<SweepKey, ResourceRow>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARD_COUNT]
    }

    /// Looks up a configuration without counting a hit or miss.
    pub fn peek(&self, key: &SweepKey) -> Option<ResourceRow> {
        self.shard(key).lock().expect("cache shard poisoned").get(key).cloned()
    }

    /// Looks up a configuration, counting a hit or a miss.
    pub fn get(&self, key: &SweepKey) -> Option<ResourceRow> {
        let found = self.peek(key);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Stores a compiled configuration.
    pub fn insert(&self, key: SweepKey, row: ResourceRow) {
        self.shard(&key).lock().expect("cache shard poisoned").insert(key, row);
    }

    /// Number of cached configurations.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").len()).sum()
    }

    /// Whether the cache holds no configurations.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative lookup hits over the cache lifetime.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cumulative lookup misses over the cache lifetime.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }
}

/// The outcome of one [`run_sweep`] call.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// The resolved keys, in request order (parallel to `rows`).
    pub keys: Vec<SweepKey>,
    /// One row per grid point, in request order.
    pub rows: Vec<ResourceRow>,
    /// Requests served from the cache (including duplicates within the
    /// batch: every grid point after the first for a given key is a hit).
    pub cache_hits: usize,
    /// Requests that required a fresh compilation.
    pub cache_misses: usize,
    /// Wall-clock duration of the sweep, in seconds.
    pub elapsed_s: f64,
    /// Worker threads available to the parallel fan-out.
    pub threads: usize,
}

impl SweepResult {
    /// Renders the result as CSV (with header), identical to
    /// [`crate::tables::render_csv`].
    pub fn to_csv(&self) -> String {
        render_csv(&self.rows)
    }

    /// Renders the result as a self-describing JSON document, including the
    /// full per-operation native-gate counts that the CSV omits.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"tiscc.sweep.v1\",\n");
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!(
            "  \"cache\": {{ \"hits\": {}, \"misses\": {} }},\n",
            self.cache_hits, self.cache_misses
        ));
        out.push_str(&format!("  \"elapsed_s\": {},\n", json_f64(self.elapsed_s)));
        out.push_str("  \"rows\": [\n");
        for (i, (key, row)) in self.keys.iter().zip(&self.rows).enumerate() {
            let r = &row.resources;
            let mut counts = String::from("{");
            for (j, (op, n)) in r.op_counts.iter().enumerate() {
                if j > 0 {
                    counts.push_str(", ");
                }
                counts.push_str(&format!("\"{}\": {}", json_escape(op), n));
            }
            counts.push('}');
            out.push_str(&format!(
                "    {{ \"operation\": \"{}\", \"instruction_id\": \"{}\", \"profile\": \"{}\", \"spec_fingerprint\": \"{}\", \"dx\": {}, \"dz\": {}, \"dt\": {}, \"tiles\": {}, \"logical_time_steps\": {}, \"execution_time_s\": {}, \"area_m2\": {}, \"spacetime_volume_s_m2\": {}, \"trapping_zones\": {}, \"junctions\": {}, \"zone_seconds\": {}, \"active_zone_seconds\": {}, \"total_ops\": {}, \"measurements\": {}, \"op_counts\": {} }}{}\n",
                json_escape(&row.name),
                key.instruction.id(),
                json_escape(&row.profile),
                key.spec,
                key.dx,
                key.dz,
                key.dt,
                row.tiles,
                row.logical_time_steps,
                json_f64(r.execution_time_s),
                json_f64(r.area_m2),
                json_f64(r.spacetime_volume_s_m2),
                r.trapping_zones,
                r.junctions,
                json_f64(r.zone_seconds),
                json_f64(r.active_zone_seconds),
                r.total_ops,
                r.measurements,
                counts,
                if i + 1 < self.rows.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes [`SweepResult::to_csv`] to `path`.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }

    /// Writes [`SweepResult::to_json`] to `path`.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

fn json_f64(v: f64) -> String {
    // JSON has no NaN/Infinity literals; resource quantities are always
    // finite, but degrade gracefully rather than emitting invalid JSON.
    // `{:?}` is shortest-round-trip: the emitted literal parses back to
    // the identical bit pattern.
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Runs `spec` against `cache`: deduplicates the grid, compiles every
/// configuration not already cached in parallel, and assembles the rows in
/// request order.
///
/// Compilation errors abort the sweep and are returned as-is; already
/// compiled configurations stay cached, so a retried sweep resumes from
/// where the failed one stopped.
pub fn run_sweep(spec: &SweepSpec, cache: &CompileCache) -> Result<SweepResult, CoreError> {
    run_sweep_with(spec, cache, &Telemetry::off().root("sweep"))
}

/// [`run_sweep`] with telemetry: the grid expansion/dedup, the compile
/// fan-out and the row assembly each open a child span (`expand`,
/// `compile`, `assemble`) under `parent`, and the sweep's cache traffic
/// is recorded as the `sweep.rows` / `sweep.cache_hits` /
/// `sweep.cache_misses` counters. Passing a span from [`Telemetry::off`]
/// makes this identical to [`run_sweep`].
pub fn run_sweep_with(
    spec: &SweepSpec,
    cache: &CompileCache,
    parent: &Span,
) -> Result<SweepResult, CoreError> {
    let started = Instant::now();
    let expand_span = parent.child("expand");
    let keys = spec.keys();
    let profiles = spec.profiles_by_fingerprint();

    // Deduplicate while preserving first-seen order; every later occurrence
    // of a key is by construction a cache hit.
    let mut seen: HashMap<SweepKey, ()> = HashMap::with_capacity(keys.len());
    let mut to_resolve: Vec<SweepKey> = Vec::new();
    for &key in &keys {
        if seen.insert(key, ()).is_none() {
            to_resolve.push(key);
        } else {
            cache.hits.fetch_add(1, Ordering::Relaxed);
        }
    }
    let duplicate_hits = keys.len() - to_resolve.len();

    // Partition the unique keys into cached and to-compile, counting
    // hits/misses on the shared cache.
    let missing: Vec<SweepKey> =
        to_resolve.iter().copied().filter(|key| cache.get(key).is_none()).collect();
    let unique_hits = to_resolve.len() - missing.len();
    expand_span.finish();

    // Parallel fan-out over the missing configurations only.
    let compile_span = parent.child("compile");
    let compiled: Result<Vec<(SweepKey, ResourceRow)>, CoreError> = match spec.mode {
        EstimateMode::Compiled => missing
            .into_par_iter()
            .map(|key| {
                let profile = profiles
                    .get(&key.spec)
                    .expect("every resolved key's fingerprint maps to a spec profile");
                compile_instruction_row_with(profile, key.instruction, key.dx, key.dz, key.dt)
                    .map(|row| (key, row))
            })
            .collect(),
        EstimateMode::Analytic => {
            // One capture per (instruction, dx, dz, profile) cell serves
            // the whole dt axis; non-derivable dts compile individually.
            let mut groups: HashMap<(Instruction, usize, usize, SpecFingerprint), Vec<SweepKey>> =
                HashMap::new();
            for key in missing {
                groups.entry((key.instruction, key.dx, key.dz, key.spec)).or_default().push(key);
            }
            let groups: Vec<Vec<SweepKey>> = groups.into_values().collect();
            groups
                .into_par_iter()
                .map(|keys| {
                    let lead = keys[0];
                    let profile = profiles
                        .get(&lead.spec)
                        .expect("every resolved key's fingerprint maps to a spec profile");
                    let artifact = AnalyticArtifact::capture(
                        lead.instruction,
                        lead.dx,
                        lead.dz,
                        (*profile).clone(),
                    )?;
                    keys.into_iter()
                        .map(|key| match artifact.as_ref().and_then(|a| a.derive_row(key.dt)) {
                            Some(row) => Ok((key, row)),
                            None => compile_instruction_row_with(
                                profile,
                                key.instruction,
                                key.dx,
                                key.dz,
                                key.dt,
                            )
                            .map(|row| (key, row)),
                        })
                        .collect::<Result<Vec<_>, CoreError>>()
                })
                .collect::<Result<Vec<Vec<_>>, CoreError>>()
                .map(|per_cell| per_cell.into_iter().flatten().collect())
        }
    };
    let compiled = compiled?;
    let compiled_count = compiled.len();
    for (key, row) in compiled {
        cache.insert(key, row);
    }
    compile_span.finish();

    let assemble_span = parent.child("assemble");
    let rows: Vec<ResourceRow> =
        keys.iter().map(|key| cache.peek(key).expect("sweep key compiled or cached")).collect();
    assemble_span.finish();

    parent.add("sweep.rows", keys.len() as u64);
    parent.add("sweep.cache_hits", (duplicate_hits + unique_hits) as u64);
    parent.add("sweep.cache_misses", compiled_count as u64);

    Ok(SweepResult {
        keys,
        rows,
        cache_hits: duplicate_hits + unique_hits,
        cache_misses: compiled_count,
        elapsed_s: started.elapsed().as_secs_f64(),
        threads: rayon::current_num_threads(),
    })
}

/// Errors raised while parsing a sweep CSV artifact.
#[derive(Clone, Debug, PartialEq)]
pub struct CsvParseError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for CsvParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sweep CSV line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvParseError {}

/// Parses a sweep CSV document (as produced by [`SweepResult::to_csv`] /
/// [`crate::tables::render_csv`]) back into rows.
///
/// The CSV format carries the scalar resource columns only; the parsed
/// rows therefore have empty `op_counts` and zeroed fields that are not
/// part of the CSV schema. Re-rendering parsed rows with
/// [`crate::tables::render_csv`] reproduces the input text exactly.
pub fn parse_csv(text: &str) -> Result<Vec<ResourceRow>, CsvParseError> {
    let mut lines = text.lines().enumerate();
    let (_, header) =
        lines.next().ok_or(CsvParseError { line: 1, message: "empty document".to_string() })?;
    if header != csv_header() {
        return Err(CsvParseError { line: 1, message: format!("unexpected header {header:?}") });
    }
    let mut rows = Vec::new();
    for (idx, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 12 {
            return Err(CsvParseError {
                line: lineno,
                message: format!("expected 12 fields, found {}", fields.len()),
            });
        }
        fn num<T: std::str::FromStr>(
            fields: &[&str],
            i: usize,
            lineno: usize,
        ) -> Result<T, CsvParseError> {
            fields[i].parse().map_err(|_| CsvParseError {
                line: lineno,
                message: format!("field {} ({:?}) is not numeric", i + 1, fields[i]),
            })
        }
        let execution_time_s: f64 = num(&fields, 5, lineno)?;
        let trapping_zones: usize = num(&fields, 6, lineno)?;
        let total_ops: usize = num(&fields, 7, lineno)?;
        let area_m2: f64 = num(&fields, 8, lineno)?;
        let spacetime_volume_s_m2: f64 = num(&fields, 9, lineno)?;
        let active_zone_seconds: f64 = num(&fields, 10, lineno)?;
        rows.push(ResourceRow {
            name: fields[0].to_string(),
            dx: num(&fields, 1, lineno)?,
            dz: num(&fields, 2, lineno)?,
            tiles: num(&fields, 3, lineno)?,
            logical_time_steps: num(&fields, 4, lineno)?,
            profile: fields[11].to_string(),
            resources: tiscc_hw::ResourceReport {
                execution_time_s,
                area_m2,
                spacetime_volume_s_m2,
                trapping_zones,
                junctions: 0,
                zone_seconds: 0.0,
                active_zone_seconds,
                op_counts: Default::default(),
                total_ops,
                measurements: 0,
            },
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> SweepSpec {
        SweepSpec::square(
            vec![Instruction::PrepareZ, Instruction::Idle, Instruction::MeasureZ],
            &[2],
        )
    }

    #[test]
    fn paper_spec_covers_all_instructions_and_distances() {
        let spec = SweepSpec::paper(5);
        assert_eq!(spec.len(), 13 * 4);
        let keys = spec.keys();
        assert_eq!(keys.len(), spec.len());
        for key in &keys {
            assert_eq!(key.dt, key.dx, "paper sweep uses dt = d");
        }
    }

    #[test]
    fn cold_sweep_compiles_then_warm_sweep_hits() {
        let cache = CompileCache::new();
        let spec = small_spec();
        let cold = run_sweep(&spec, &cache).unwrap();
        assert_eq!(cold.cache_misses, spec.len());
        assert_eq!(cold.cache_hits, 0);
        let warm = run_sweep(&spec, &cache).unwrap();
        assert_eq!(warm.cache_misses, 0);
        assert_eq!(warm.cache_hits, spec.len());
        assert_eq!(cold.rows, warm.rows);
        assert_eq!(cache.len(), spec.len());
    }

    #[test]
    fn duplicate_grid_points_compile_once() {
        let cache = CompileCache::new();
        let mut spec = small_spec();
        // dt policies Fixed(2) and EqualsDistance resolve identically at
        // d=2, so every grid point is duplicated after resolution.
        spec.dts = vec![DtPolicy::Fixed(2), DtPolicy::EqualsDistance];
        let result = run_sweep(&spec, &cache).unwrap();
        assert_eq!(result.rows.len(), 6);
        assert_eq!(result.cache_misses, 3);
        assert_eq!(result.cache_hits, 3);
    }

    #[test]
    fn csv_round_trips_through_parse() {
        let cache = CompileCache::new();
        let result = run_sweep(&small_spec(), &cache).unwrap();
        let csv = result.to_csv();
        let parsed = parse_csv(&csv).unwrap();
        assert_eq!(parsed.len(), result.rows.len());
        assert_eq!(render_csv(&parsed), csv);
    }

    #[test]
    fn parse_csv_rejects_malformed_documents() {
        assert!(parse_csv("").is_err());
        assert!(parse_csv("bogus,header\n").is_err());
        let bad_row = format!("{}\nPrepare Z,2,2,1\n", csv_header());
        let err = parse_csv(&bad_row).unwrap_err();
        assert_eq!(err.line, 2);
        let not_numeric = format!("{}\nPrepare Z,x,2,1,1,0.1,9,10,1.0,0.1,0.01,h1\n", csv_header());
        assert!(parse_csv(&not_numeric).is_err());
    }

    #[test]
    fn profile_axis_multiplies_the_grid_and_separates_cache_entries() {
        let cache = CompileCache::new();
        let spec =
            SweepSpec::square(vec![Instruction::Idle], &[2]).with_profiles(HardwareSpec::presets());
        assert_eq!(spec.len(), 3);
        let result = run_sweep(&spec, &cache).unwrap();
        assert_eq!(result.rows.len(), 3);
        assert_eq!(result.cache_misses, 3, "each profile is its own cache entry");
        let profiles: Vec<&str> = result.rows.iter().map(|r| r.profile.as_str()).collect();
        assert_eq!(profiles, vec!["h1", "projected", "slow_junction"]);
        // Same workload, different physics: execution times must differ.
        let times: Vec<f64> = result.rows.iter().map(|r| r.resources.execution_time_s).collect();
        assert!(times[1] < times[0], "projected profile is faster than h1");
        // Accounting (ops, tiles, steps) is profile-independent.
        assert!(result
            .rows
            .iter()
            .all(|r| r.resources.total_ops == result.rows[0].resources.total_ops));
        // A warm re-run over the multi-profile grid is all hits.
        let warm = run_sweep(&spec, &cache).unwrap();
        assert_eq!(warm.cache_misses, 0);
        assert_eq!(warm.rows, result.rows);
    }

    #[test]
    fn json_document_is_well_formed_and_complete() {
        let cache = CompileCache::new();
        let result = run_sweep(&small_spec(), &cache).unwrap();
        let json = result.to_json();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"schema\": \"tiscc.sweep.v1\""));
        assert!(json.contains("\"instruction_id\": \"prepare_z\""));
        assert!(json.contains("\"op_counts\""));
        // Balanced braces/brackets (cheap structural sanity check).
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // Exactly one row object per grid point.
        assert_eq!(json.matches("\"operation\"").count(), result.rows.len());
    }

    #[test]
    fn dt_policy_resolution() {
        assert_eq!(DtPolicy::Fixed(4).resolve(3, 5), 4);
        assert_eq!(DtPolicy::EqualsDistance.resolve(3, 5), 5);
    }

    #[test]
    fn analytic_sweep_reproduces_the_compiled_sweep() {
        let mut spec = small_spec();
        spec.dts = vec![DtPolicy::Fixed(2), DtPolicy::Fixed(3), DtPolicy::Fixed(5)];
        let compiled = run_sweep(&spec, &CompileCache::new()).unwrap();
        let analytic =
            run_sweep(&spec.clone().with_mode(EstimateMode::Analytic), &CompileCache::new())
                .unwrap();
        assert_eq!(compiled.keys, analytic.keys);
        assert_eq!(compiled.rows, analytic.rows, "h1 durations are dyadic: rows match exactly");
    }
}

//! The unified compilation front door.
//!
//! Every consumer of the stack — the CLI subcommands, the sweep engine, the
//! table generators, the examples — used to hand-build its own
//! `HardwareModel` pipeline. [`Compiler`] replaces that glue with a single
//! API: a [`CompileRequest`] names *what* to compile (a Table 1 instruction
//! at spatial distances `dx × dz` with `dt` rounds per logical time-step)
//! and *under which hardware profile* ([`HardwareSpec`]); the returned
//! [`CompileArtifact`] carries the instruction's own time-resolved circuit,
//! the compiler-side [`InstructionReport`], and the measured
//! [`ResourceReport`]. "Same workload, N hardware profiles" is then just N
//! requests differing only in their spec.

use tiscc_core::instruction::{
    apply_instruction, apply_two_tile_instruction, Instruction, InstructionReport,
};
use tiscc_core::CoreError;
use tiscc_hw::{
    Circuit, CompiledRounds, HardwareModel, HardwareSpec, ResourceReport, UnknownProfile,
};

use crate::sweep::{CompileCache, SweepKey};
use crate::tables::ResourceRow;
use crate::verify::{Fiducial, SingleTile, TwoTiles};

/// A fully specified compilation request: one Table 1 instruction, the code
/// distances, and the hardware profile to compile under.
#[derive(Clone, Debug, PartialEq)]
pub struct CompileRequest {
    /// The instruction to compile.
    pub instruction: Instruction,
    /// X code distance.
    pub dx: usize,
    /// Z code distance.
    pub dz: usize,
    /// Rounds of error correction per logical time-step.
    pub dt: usize,
    /// The hardware profile to compile under.
    pub spec: HardwareSpec,
}

impl CompileRequest {
    /// A request under the paper-faithful default profile
    /// ([`HardwareSpec::h1`]).
    pub fn new(instruction: Instruction, dx: usize, dz: usize, dt: usize) -> Self {
        CompileRequest { instruction, dx, dz, dt, spec: HardwareSpec::default() }
    }

    /// Replaces the hardware profile.
    pub fn with_spec(mut self, spec: HardwareSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Replaces the hardware profile by preset name (case-insensitive).
    pub fn with_profile(self, name: &str) -> Result<Self, UnknownProfile> {
        Ok(self.with_spec(HardwareSpec::by_name(name)?))
    }

    /// The memoization key of this request: the configuration plus the
    /// spec's parameter fingerprint, so caches never conflate profiles.
    pub fn key(&self) -> SweepKey {
        SweepKey {
            instruction: self.instruction,
            dx: self.dx,
            dz: self.dz,
            dt: self.dt,
            spec: self.spec.fingerprint(),
        }
    }
}

/// The result of compiling one [`CompileRequest`].
#[derive(Clone, Debug)]
pub struct CompileArtifact {
    /// The request this artifact answers.
    pub request: CompileRequest,
    /// The instruction's own time-resolved circuit in periodic
    /// (round-templated) form, re-based to start at `t = 0` (input-state
    /// preparation is excluded). Syndrome-extraction rounds beyond the
    /// representative one are held analytically — the artifact costs the
    /// memory of roughly one round, not `dt`.
    pub rounds: CompiledRounds,
    /// The compiler-side accounting (logical time-steps, tiles, outcome).
    pub report: InstructionReport,
    /// Measured space-time resources of [`CompileArtifact::rounds`] under
    /// the request's profile.
    pub resources: ResourceReport,
}

impl CompileArtifact {
    /// Materializes the instruction's flat time-resolved circuit (every
    /// round occurrence expanded). Prefer streaming over
    /// [`CompileArtifact::rounds`] unless a consumer genuinely needs a
    /// `Vec`-backed circuit.
    pub fn circuit(&self) -> Circuit {
        self.rounds.materialize()
    }

    /// Renders the artifact as a resource-table row.
    pub fn row(&self) -> ResourceRow {
        ResourceRow {
            name: self.request.instruction.name().to_string(),
            dx: self.request.dx,
            dz: self.request.dz,
            logical_time_steps: self.report.logical_time_steps,
            tiles: self.report.tiles,
            profile: self.request.spec.name.clone(),
            resources: self.resources.clone(),
        }
    }
}

/// The front-door compiler: turns [`CompileRequest`]s into
/// [`CompileArtifact`]s, memoizing finished resource rows in a shared
/// [`CompileCache`] keyed on configuration × spec fingerprint.
#[derive(Default)]
pub struct Compiler {
    cache: CompileCache,
}

impl Compiler {
    /// A compiler with a fresh cache.
    pub fn new() -> Self {
        Compiler::default()
    }

    /// The compile cache (shared across every [`Compiler::compile_row`]
    /// call on this compiler).
    pub fn cache(&self) -> &CompileCache {
        &self.cache
    }

    /// Compiles a request end-to-end, returning the full artifact. The
    /// instruction is compiled in a realistic context: input tiles are
    /// first prepared (and idled) as required, then only the instruction's
    /// own circuit is accounted. Artifacts carry the full circuit and are
    /// not cached; use [`Compiler::compile_row`] for memoized row
    /// generation.
    pub fn compile(&self, request: &CompileRequest) -> Result<CompileArtifact, CoreError> {
        compile_uncached(request)
    }

    /// Compiles a request to a resource-table row, memoized: a request
    /// whose key (configuration × spec fingerprint) was already compiled is
    /// served from the cache without touching the compiler.
    pub fn compile_row(&self, request: &CompileRequest) -> Result<ResourceRow, CoreError> {
        let key = request.key();
        if let Some(row) = self.cache.get(&key) {
            return Ok(row);
        }
        let row = self.compile(request)?.row();
        self.cache.insert(key, row.clone());
        Ok(row)
    }
}

/// The stateless compile pipeline behind [`Compiler::compile`]: needs no
/// cache, so batch engines (the sweep fan-out, the table generators) that
/// bring their own memoization call it directly without constructing a
/// throwaway [`Compiler`] per row.
pub(crate) fn compile_uncached(request: &CompileRequest) -> Result<CompileArtifact, CoreError> {
    let CompileRequest { instruction, dx, dz, dt, ref spec } = *request;
    if instruction.tiles() == 2 {
        let mut fixture = match instruction {
            Instruction::MeasureZZ => TwoTiles::new_horizontal_with_spec(dx, dz, dt, spec.clone())?,
            _ => TwoTiles::with_spec(dx, dz, dt, spec.clone())?,
        };
        fixture.hw.set_round_templating(true);
        Fiducial::Zero.prepare(&mut fixture.hw, &mut fixture.upper)?;
        Fiducial::Zero.prepare(&mut fixture.hw, &mut fixture.lower)?;
        let before = fixture.hw.circuit().len();
        let report = apply_two_tile_instruction(
            &mut fixture.hw,
            instruction,
            &mut fixture.upper,
            &mut fixture.lower,
        )?;
        let (rounds, resources) = instruction_rounds(&fixture.hw, before);
        Ok(CompileArtifact { request: request.clone(), rounds, report, resources })
    } else {
        let mut fixture = SingleTile::with_spec(dx, dz, dt, spec.clone())?;
        fixture.hw.set_round_templating(true);
        // Instructions acting on an initialized tile need one.
        let needs_input = !matches!(
            instruction,
            Instruction::PrepareZ
                | Instruction::PrepareX
                | Instruction::InjectY
                | Instruction::InjectT
        );
        if needs_input {
            Fiducial::Zero.prepare(&mut fixture.hw, &mut fixture.patch)?;
        }
        let before = fixture.hw.circuit().len();
        let report = apply_instruction(&mut fixture.hw, instruction, &mut fixture.patch)?;
        let (rounds, resources) = instruction_rounds(&fixture.hw, before);
        Ok(CompileArtifact { request: request.clone(), rounds, report, resources })
    }
}

/// Extracts the sub-range of `hw` starting at operation index `start_op` as
/// a periodic [`CompiledRounds`] (re-based so the instruction starts at
/// `t = 0`, measurement records carried over), together with its resource
/// report under the model's profile — composed by streaming prologue,
/// `repeats × template` and epilogue with running accumulators, so no round
/// is ever re-materialized. Used so reports reflect an instruction alone,
/// not its input preparation.
pub(crate) fn instruction_rounds(
    hw: &HardwareModel,
    start_op: usize,
) -> (CompiledRounds, ResourceReport) {
    let rounds = CompiledRounds::extract(hw.circuit(), start_op);
    let resources = ResourceReport::from_stream_with_spec(&rounds, hw.grid().layout(), hw.spec());
    (rounds, resources)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_request_reproduces_the_legacy_row() {
        let compiler = Compiler::new();
        let artifact =
            compiler.compile(&CompileRequest::new(Instruction::PrepareZ, 2, 2, 1)).unwrap();
        let legacy =
            crate::tables::compile_instruction_row(Instruction::PrepareZ, 2, 2, 1).unwrap();
        assert_eq!(artifact.row(), legacy);
        assert!(artifact.rounds.total_ops() > 0);
        assert!(!artifact.circuit().is_empty());
        assert_eq!(artifact.report.tiles, 1);
    }

    #[test]
    fn profiles_change_the_schedule_but_not_the_accounting() {
        let compiler = Compiler::new();
        let base = CompileRequest::new(Instruction::Idle, 2, 2, 1);
        let h1 = compiler.compile(&base).unwrap();
        let fast = compiler.compile(&base.clone().with_spec(HardwareSpec::projected())).unwrap();
        assert!(fast.resources.execution_time_s < h1.resources.execution_time_s);
        assert_eq!(fast.report.logical_time_steps, h1.report.logical_time_steps);
        assert_eq!(fast.resources.total_ops, h1.resources.total_ops);
        assert_ne!(base.key(), base.clone().with_spec(HardwareSpec::projected()).key());
    }

    #[test]
    fn compile_row_is_memoized_per_profile() {
        let compiler = Compiler::new();
        let req = CompileRequest::new(Instruction::MeasureZ, 2, 2, 1);
        let a = compiler.compile_row(&req).unwrap();
        let b = compiler.compile_row(&req).unwrap();
        assert_eq!(a, b);
        assert_eq!(compiler.cache().misses(), 1);
        assert_eq!(compiler.cache().hits(), 1);
        // A different profile is a different cache entry.
        let slow = req.with_profile("slow_junction").unwrap();
        compiler.compile_row(&slow).unwrap();
        assert_eq!(compiler.cache().len(), 2);
    }

    #[test]
    fn with_profile_rejects_unknown_names() {
        let err =
            CompileRequest::new(Instruction::Idle, 2, 2, 1).with_profile("warp9").unwrap_err();
        assert!(err.to_string().contains("h1"));
    }
}

//! The unified compilation front door.
//!
//! Every consumer of the stack — the CLI subcommands, the sweep engine, the
//! table generators, the examples — used to hand-build its own
//! `HardwareModel` pipeline. [`Compiler`] replaces that glue with a single
//! API: a [`CompileRequest`] names *what* to compile (a Table 1 instruction
//! at spatial distances `dx × dz` with `dt` rounds per logical time-step)
//! and *under which hardware profile* ([`HardwareSpec`]); the returned
//! [`CompileArtifact`] carries the instruction's own time-resolved circuit,
//! the compiler-side [`InstructionReport`], and the measured
//! [`ResourceReport`]. "Same workload, N hardware profiles" is then just N
//! requests differing only in their spec.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use tiscc_core::instruction::{
    apply_instruction, apply_two_tile_instruction, Instruction, InstructionReport,
};
use tiscc_core::CoreError;
use tiscc_grid::Layout;
use tiscc_hw::rounds::replay_round;
use tiscc_hw::{
    batch_ops, batch_rounds, Circuit, CompiledRounds, HardwareModel, HardwareSpec, OpStream,
    OpView, ResourceReport, RoundBatchStats, TimedOp, UnknownProfile,
};

use crate::sweep::{CompileCache, SweepKey};
use crate::tables::ResourceRow;
use crate::verify::{Fiducial, SingleTile, TwoTiles};

/// How the estimator turns a compile request into resource numbers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EstimateMode {
    /// Compile the instruction at the requested `dt` and measure the
    /// resulting schedule (the default; every released output was produced
    /// this way).
    #[default]
    Compiled,
    /// Capture **one** syndrome round per `(instruction, dx, dz, profile)`
    /// cell and derive the resources of any requested `dt` by closed-form
    /// arithmetic over the captured [`CompiledRounds`] — no scheduling, no
    /// routing, no materialization. Instructions whose round structure
    /// cannot be proven derivable fall back to [`EstimateMode::Compiled`]
    /// transparently (the numbers are identical either way).
    Analytic,
}

impl EstimateMode {
    /// The CLI-facing name of the mode.
    pub fn name(self) -> &'static str {
        match self {
            EstimateMode::Compiled => "compiled",
            EstimateMode::Analytic => "analytic",
        }
    }
}

impl std::fmt::Display for EstimateMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for EstimateMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "compiled" => Ok(EstimateMode::Compiled),
            "analytic" => Ok(EstimateMode::Analytic),
            other => Err(format!("unknown estimate mode '{other}' (expected compiled|analytic)")),
        }
    }
}

/// Scheduling-pass observables of one compiled instruction: how often the
/// contention-aware scheduler stalled an op on a saturated junction, and how
/// many SIMD pulses carry two or more merged ops (totals across every round
/// occurrence). Both are zero under the default knobs
/// (`junction_capacity = 1` never over-admits on the preset specs'
/// schedules, `simd_width = 1` never batches).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Ops whose start a saturated junction pushed past what ions, zones
    /// and the barrier alone would have allowed.
    pub junction_stalls: usize,
    /// Multi-op SIMD pulses in the final op stream.
    pub batched_pulses: usize,
}

/// A fully specified compilation request: one Table 1 instruction, the code
/// distances, and the hardware profile to compile under.
#[derive(Clone, Debug, PartialEq)]
pub struct CompileRequest {
    /// The instruction to compile.
    pub instruction: Instruction,
    /// X code distance.
    pub dx: usize,
    /// Z code distance.
    pub dz: usize,
    /// Rounds of error correction per logical time-step.
    pub dt: usize,
    /// The hardware profile to compile under.
    pub spec: HardwareSpec,
}

impl CompileRequest {
    /// A request under the paper-faithful default profile
    /// ([`HardwareSpec::h1`]).
    pub fn new(instruction: Instruction, dx: usize, dz: usize, dt: usize) -> Self {
        CompileRequest { instruction, dx, dz, dt, spec: HardwareSpec::default() }
    }

    /// Replaces the hardware profile.
    pub fn with_spec(mut self, spec: HardwareSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Replaces the hardware profile by preset name (case-insensitive).
    pub fn with_profile(self, name: &str) -> Result<Self, UnknownProfile> {
        Ok(self.with_spec(HardwareSpec::by_name(name)?))
    }

    /// The memoization key of this request: the configuration plus the
    /// spec's parameter fingerprint, so caches never conflate profiles.
    pub fn key(&self) -> SweepKey {
        SweepKey {
            instruction: self.instruction,
            dx: self.dx,
            dz: self.dz,
            dt: self.dt,
            spec: self.spec.fingerprint(),
        }
    }
}

/// The result of compiling one [`CompileRequest`].
#[derive(Clone, Debug)]
pub struct CompileArtifact {
    /// The request this artifact answers.
    pub request: CompileRequest,
    /// The instruction's own time-resolved circuit in periodic
    /// (round-templated) form, re-based to start at `t = 0` (input-state
    /// preparation is excluded). Syndrome-extraction rounds beyond the
    /// representative one are held analytically — the artifact costs the
    /// memory of roughly one round, not `dt`.
    pub rounds: CompiledRounds,
    /// The compiler-side accounting (logical time-steps, tiles, outcome).
    pub report: InstructionReport,
    /// Measured space-time resources of [`CompileArtifact::rounds`] under
    /// the request's profile.
    pub resources: ResourceReport,
    /// Scheduling-pass observables (junction stalls, SIMD batches) of the
    /// instruction's own ops, totalled across every round occurrence.
    pub stats: CompileStats,
}

impl CompileArtifact {
    /// Materializes the instruction's flat time-resolved circuit (every
    /// round occurrence expanded). Prefer streaming over
    /// [`CompileArtifact::rounds`] unless a consumer genuinely needs a
    /// `Vec`-backed circuit.
    pub fn circuit(&self) -> Circuit {
        self.rounds.materialize()
    }

    /// Renders the artifact as a resource-table row.
    pub fn row(&self) -> ResourceRow {
        ResourceRow {
            name: self.request.instruction.name().to_string(),
            dx: self.request.dx,
            dz: self.request.dz,
            logical_time_steps: self.report.logical_time_steps,
            tiles: self.report.tiles,
            profile: self.request.spec.name.clone(),
            resources: self.resources.clone(),
        }
    }
}

/// The `dt` every analytic capture compiles at.
///
/// Chosen so one representative syndrome round is captured *and* replicated
/// at least twice (`repeats = dt − 1 = 3`), which lets
/// [`AnalyticArtifact::capture`] verify structurally that the instruction's
/// round count is affine in `dt` with unit slope: a round sequence whose
/// length is **not** `dt` shows up as `repeats ≠ ANALYTIC_DT_CAP − 1` (or as
/// no span at all for a 0/1/2-round fixed sequence, which is `dt`-invariant
/// and equally derivable) and the capture reports itself non-derivable.
pub const ANALYTIC_DT_CAP: usize = 4;

/// How a captured epilogue operation's start time arises, so it can be
/// recomputed for any number of round occurrences.
///
/// After the analytic replication of a round sequence the model's barrier
/// sits at the final round's makespan and every busy time is at or before
/// it, so an epilogue op can only start at that barrier or at the end of an
/// earlier epilogue op — both recomputable from the derived final barrier by
/// the same addition chain the scheduler performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EpiPred {
    /// The op starts at the barrier after the final round occurrence.
    Barrier,
    /// The op starts at the end of epilogue op `i` (an earlier one).
    Chain(usize),
    /// The op starts at the end of epilogue op `i` plus the junction
    /// recovery window (it waited out op `i`'s recool time).
    ChainRecovery(usize),
}

/// Junction-stall counts of a capture split by circuit segment, so the
/// total for any `dt` is `prologue + repeats × round + epilogue` — every
/// round occurrence replays the representative round's schedule (and thus
/// its stalls) verbatim.
#[derive(Clone, Copy, Debug, Default)]
struct SegmentStalls {
    prologue: usize,
    round: usize,
    epilogue: usize,
}

/// One analytic capture: the compiled shape of an instruction at
/// [`ANALYTIC_DT_CAP`] rounds, plus enough structure (epilogue predecessor
/// chains) to derive the [`ResourceReport`] of **any** supported `dt` by
/// arithmetic alone. Produced by [`AnalyticArtifact::capture`]; shared per
/// `(instruction, dx, dz, profile)` cell via
/// [`Compiler::analytic_artifact`].
#[derive(Clone, Debug)]
pub struct AnalyticArtifact {
    /// The capture request (`dt == ANALYTIC_DT_CAP`).
    request: CompileRequest,
    /// Compiler-side accounting (dt-independent by construction).
    report: InstructionReport,
    /// The captured periodic circuit.
    rounds: CompiledRounds,
    /// Measured resources of the capture itself (`dt == ANALYTIC_DT_CAP`).
    resources: ResourceReport,
    /// The grid layout the capture was compiled on.
    layout: Layout,
    /// Epilogue start-time provenance (empty when the capture has no
    /// periodic part — then every derived `dt` returns the capture
    /// verbatim).
    epi_preds: Vec<EpiPred>,
    /// Junction stalls of the capture, split by segment for scaling.
    stalls: SegmentStalls,
    /// SIMD batching statistics of the capture, split by segment.
    batch: RoundBatchStats,
}

impl AnalyticArtifact {
    /// Compiles `instruction` once at [`ANALYTIC_DT_CAP`] and captures its
    /// round structure. Returns `Ok(None)` when the instruction is not
    /// provably derivable under this profile — a round capture fell back to
    /// materialization, the instruction compiled more than one periodic
    /// sequence, the round count is not `dt`, an epilogue op's start could
    /// not be attributed, or the self-check failed — in which case callers
    /// use [`EstimateMode::Compiled`] for every `dt` of this cell.
    pub fn capture(
        instruction: Instruction,
        dx: usize,
        dz: usize,
        spec: HardwareSpec,
    ) -> Result<Option<AnalyticArtifact>, CoreError> {
        let request = CompileRequest { instruction, dx, dz, dt: ANALYTIC_DT_CAP, spec };
        let (hw, before, report) = compile_physical(&request)?;
        if hw.round_fallbacks() > 0 {
            // A round sequence was materialized without leaving a span: the
            // circuit's dt-dependence is invisible to span inspection.
            return Ok(None);
        }
        let rounds_raw = CompiledRounds::extract(hw.circuit(), before);
        // Batch through the same pass a real compile runs. The epilogue's
        // raw→pulse remap is recomputed here (batching is deterministic) so
        // each batched pulse can be traced back to an absolute start time.
        let (epi_remap, rounds, batch) = if request.spec.simd_width > 1 {
            let remap = batch_ops(rounds_raw.epilogue.ops(), &request.spec).1;
            let (batched, stats) = batch_rounds(&rounds_raw, &request.spec);
            (remap, batched, stats)
        } else {
            (
                (0..rounds_raw.epilogue.len()).collect::<Vec<_>>(),
                rounds_raw,
                RoundBatchStats::default(),
            )
        };
        let resources =
            ResourceReport::from_stream_with_spec(&rounds, hw.grid().layout(), hw.spec());
        let layout = hw.grid().layout().clone();
        let circuit = hw.circuit();
        let flags = hw.stall_flags();
        let count = |r: std::ops::Range<usize>| flags[r].iter().filter(|&&stalled| stalled).count();
        let spans: Vec<_> = circuit.spans().iter().filter(|s| s.op_end > before).collect();
        let (epi_preds, stalls) = match spans.as_slice() {
            [] => (
                Vec::new(),
                SegmentStalls { prologue: count(before..flags.len()), ..Default::default() },
            ),
            [span] => {
                if rounds.repeats != ANALYTIC_DT_CAP - 1 {
                    // The periodic part is not `dt` rounds long; scaling it
                    // with `dt` would be wrong.
                    return Ok(None);
                }
                let stalls = SegmentStalls {
                    prologue: count(before..span.op_start),
                    round: count(span.op_start..span.op_end),
                    epilogue: count(span.op_end..flags.len()),
                };
                let barrier = span.end_makespan_us;
                // Attribution runs in ABSOLUTE time (the scheduler's own
                // frame) so derived addition chains are bit-exact. For a
                // batched epilogue the pulses' absolute starts are
                // reconstructed from the raw ops through the remap (a
                // pulse starts when its first member did).
                let raw_epilogue = &circuit.ops()[span.op_end..];
                let mut abs_starts = vec![f64::NAN; rounds.epilogue.len()];
                for (raw_idx, &pulse) in epi_remap.iter().enumerate() {
                    if abs_starts[pulse].is_nan() {
                        abs_starts[pulse] = raw_epilogue[raw_idx].start_us;
                    }
                }
                let recovery = request.spec.junction_recovery_us;
                let mut preds = Vec::with_capacity(rounds.epilogue.len());
                let mut ends: Vec<f64> = Vec::with_capacity(rounds.epilogue.len());
                for (pulse, op) in rounds.epilogue.ops().iter().enumerate() {
                    let start = abs_starts[pulse];
                    // The recovery comparison replays the scheduler's own
                    // `end + recovery` addition, so the match is bit-exact.
                    let pred = if start == barrier {
                        EpiPred::Barrier
                    } else if let Some(i) = ends.iter().rposition(|&e| e == start) {
                        EpiPred::Chain(i)
                    } else if let Some(i) = (recovery > 0.0)
                        .then(|| ends.iter().rposition(|&e| e + recovery == start))
                        .flatten()
                    {
                        EpiPred::ChainRecovery(i)
                    } else {
                        return Ok(None);
                    };
                    preds.push(pred);
                    ends.push(start + op.duration_us);
                }
                (preds, stalls)
            }
            _ => return Ok(None),
        };
        let artifact = AnalyticArtifact {
            request,
            report,
            rounds,
            resources,
            layout,
            epi_preds,
            stalls,
            batch,
        };
        // Self-check: deriving at the capture's own `dt` must reproduce the
        // measured report bit-for-bit, or the capture is unusable.
        if artifact.derive(ANALYTIC_DT_CAP).as_ref() != Some(&artifact.resources) {
            return Ok(None);
        }
        Ok(Some(artifact))
    }

    /// The capture's compiler-side accounting report.
    pub fn report(&self) -> &InstructionReport {
        &self.report
    }

    /// The template occurrence count a compile at `dt` would produce, or
    /// `None` when that `dt` is outside the derivable range. With SIMD
    /// batching active (`simd_width > 1`) a target of exactly one
    /// occurrence is also non-derivable: a real compile at that `dt` leaves
    /// no replicated span, so its whole stream batches as one flat segment
    /// — a different (usually tighter) grouping than the capture's
    /// segmented prologue/template/epilogue batching. Those dts fall back
    /// to [`EstimateMode::Compiled`] and are counted.
    fn derived_repeats(&self, dt: usize) -> Option<usize> {
        let repeats =
            (self.rounds.repeats + dt).checked_sub(ANALYTIC_DT_CAP).filter(|&r| r >= 1)?;
        if self.request.spec.simd_width > 1 && repeats < 2 {
            return None;
        }
        Some(repeats)
    }

    /// Derives the [`ResourceReport`] of this instruction at `dt` rounds
    /// per logical time-step, by arithmetic over the captured round — no
    /// scheduling, routing, or materialization. Returns `None` when `dt` is
    /// out of the derivable range (`dt == 0`, or `dt < 2` for an
    /// instruction with a periodic part).
    ///
    /// Durations reproduce the compiled schedule exactly for profiles whose
    /// native durations are dyadic (every preset except `projected`'s
    /// transport chains); elsewhere the derived makespan can differ from
    /// the compiled one by at most 1 ulp per epilogue timing tie.
    pub fn derive(&self, dt: usize) -> Option<ResourceReport> {
        if dt == 0 {
            return None;
        }
        if self.rounds.repeats == 0 {
            // No periodic part: the instruction runs no dt-dependent rounds
            // and its resources are the same at every dt.
            return Some(self.resources.clone());
        }
        let repeats = self.derived_repeats(dt)?;
        let grown = repeats as isize - self.rounds.repeats as isize;
        let measurements = self.rounds.measurements.len() as isize
            + grown * self.rounds.template.meas_per_round as isize;
        let measurements = usize::try_from(measurements).ok()?;
        let stream = DerivedStream {
            rounds: &self.rounds,
            repeats,
            epilogue: self.derived_epilogue(repeats),
            measurements,
        };
        Some(ResourceReport::from_stream_with_spec(&stream, &self.layout, &self.request.spec))
    }

    /// [`AnalyticArtifact::derive`] packaged as a resource-table row,
    /// indistinguishable from [`CompileArtifact::row`] at the same `dt`.
    pub fn derive_row(&self, dt: usize) -> Option<ResourceRow> {
        Some(ResourceRow {
            name: self.request.instruction.name().to_string(),
            dx: self.request.dx,
            dz: self.request.dz,
            logical_time_steps: self.report.logical_time_steps,
            tiles: self.report.tiles,
            profile: self.request.spec.name.clone(),
            resources: self.derive(dt)?,
        })
    }

    /// Derives the [`CompileStats`] of this instruction at `dt` rounds per
    /// logical time-step: every round occurrence replays the captured
    /// round's schedule verbatim, so its stalls and batches scale linearly
    /// with the occurrence count. Same derivable range as
    /// [`AnalyticArtifact::derive`].
    pub fn derive_stats(&self, dt: usize) -> Option<CompileStats> {
        if dt == 0 {
            return None;
        }
        if self.rounds.repeats == 0 {
            return Some(CompileStats {
                junction_stalls: self.stalls.prologue + self.stalls.epilogue,
                batched_pulses: self.batch.total_batched_pulses(0),
            });
        }
        let repeats = self.derived_repeats(dt)?;
        Some(CompileStats {
            junction_stalls: self.stalls.prologue
                + repeats * self.stalls.round
                + self.stalls.epilogue,
            batched_pulses: self.batch.total_batched_pulses(repeats),
        })
    }

    /// Rebuilds the epilogue for `repeats` round occurrences: replays the
    /// round chain to the final barrier, then re-derives each epilogue op's
    /// start from its recorded provenance — exactly the addition chain the
    /// scheduler performs, so times match a real compile bit-for-bit.
    fn derived_epilogue(&self, repeats: usize) -> Circuit {
        let t = &self.rounds.template;
        let mut barrier = t.ops.iter().map(TimedOp::end_us).fold(t.base_us, f64::max);
        let (mut starts, mut ends) = (Vec::new(), Vec::new());
        for _ in 1..repeats {
            barrier =
                replay_round(&t.ops, &t.preds, barrier, t.recovery_us, &mut starts, &mut ends);
        }
        let mut ops = Vec::with_capacity(self.epi_preds.len());
        let mut abs_ends: Vec<f64> = Vec::with_capacity(self.epi_preds.len());
        for (op, pred) in self.rounds.epilogue.ops().iter().zip(&self.epi_preds) {
            let abs_start = match *pred {
                EpiPred::Barrier => barrier,
                EpiPred::Chain(i) => abs_ends[i],
                EpiPred::ChainRecovery(i) => abs_ends[i] + t.recovery_us,
            };
            abs_ends.push(abs_start + op.duration_us);
            let mut op = op.clone();
            op.start_us = abs_start - self.rounds.rebase_us;
            ops.push(op);
        }
        Circuit::from_ops(ops)
    }
}

/// A captured periodic circuit re-targeted to a different occurrence count:
/// the capture's prologue and template, `repeats` occurrences, and a
/// re-derived epilogue. Streams exactly like the [`CompiledRounds`] a real
/// compile at the target `dt` would produce (modulo epilogue measurement
/// indices, which resource accounting never reads), so
/// [`ResourceReport::from_stream_with_spec`] over it runs the identical
/// accumulation arithmetic.
struct DerivedStream<'a> {
    rounds: &'a CompiledRounds,
    repeats: usize,
    epilogue: Circuit,
    measurements: usize,
}

impl OpStream for DerivedStream<'_> {
    fn for_each_op(&self, f: &mut dyn FnMut(OpView<'_>)) {
        let t = &self.rounds.template;
        self.rounds.prologue.for_each_op(f);
        for op in &t.ops {
            f(OpView {
                op,
                start_us: op.start_us - self.rounds.rebase_us,
                measurement: op.measurement,
            });
        }
        let mut base = t.ops.iter().map(TimedOp::end_us).fold(t.base_us, f64::max);
        let (mut starts, mut ends) = (Vec::new(), Vec::new());
        for r in 1..self.repeats {
            base = replay_round(&t.ops, &t.preds, base, t.recovery_us, &mut starts, &mut ends);
            let meas_shift = r * t.meas_per_round;
            for (i, op) in t.ops.iter().enumerate() {
                f(OpView {
                    op,
                    start_us: starts[i] - self.rounds.rebase_us,
                    measurement: op.measurement.map(|m| m + meas_shift),
                });
            }
        }
        self.epilogue.for_each_op(f);
    }

    fn for_each_distinct_op(&self, f: &mut dyn FnMut(&TimedOp)) {
        self.rounds.prologue.for_each_distinct_op(f);
        for op in &self.rounds.template.ops {
            f(op);
        }
        self.epilogue.for_each_distinct_op(f);
    }

    fn measurement_count(&self) -> usize {
        self.measurements
    }
}

/// The front-door compiler: turns [`CompileRequest`]s into
/// [`CompileArtifact`]s, memoizing finished resource rows in a shared
/// [`CompileCache`] keyed on configuration × spec fingerprint, and — in
/// [`EstimateMode::Analytic`] — sharing one [`AnalyticArtifact`] per
/// `(instruction, dx, dz, profile)` cell across every `dt`.
#[derive(Default)]
pub struct Compiler {
    cache: CompileCache,
    analytic: Mutex<HashMap<SweepKey, Option<Arc<AnalyticArtifact>>>>,
    captures: AtomicUsize,
    stats: Mutex<HashMap<SweepKey, CompileStats>>,
    analytic_fallbacks: AtomicUsize,
}

impl Compiler {
    /// A compiler with a fresh cache.
    pub fn new() -> Self {
        Compiler::default()
    }

    /// The compile cache (shared across every [`Compiler::compile_row`]
    /// call on this compiler).
    pub fn cache(&self) -> &CompileCache {
        &self.cache
    }

    /// How many physical analytic captures ([`AnalyticArtifact::capture`]
    /// compiles) this compiler has performed. A batch engine fed entirely
    /// from a warm persistent cache reports zero — the counter is the
    /// observable that distinguishes "served from cache" from "recomputed
    /// and happened to match".
    pub fn analytic_captures(&self) -> usize {
        self.captures.load(Ordering::Relaxed)
    }

    /// How many [`EstimateMode::Analytic`] requests this compiler answered
    /// by falling back to a real compile (non-derivable cell, or `dt`
    /// outside the derivable range). Fallbacks are counted, never silent.
    pub fn analytic_fallbacks(&self) -> usize {
        self.analytic_fallbacks.load(Ordering::Relaxed)
    }

    /// The scheduling-pass statistics recorded for the request, or zeros if
    /// the request was never compiled (or derived) through this compiler.
    /// Rows served from the in-process cache keep the stats their original
    /// compile recorded — the key is the same.
    pub fn stats_for(&self, request: &CompileRequest) -> CompileStats {
        self.stats
            .lock()
            .expect("stats map poisoned")
            .get(&request.key())
            .copied()
            .unwrap_or_default()
    }

    /// Compiles a request end-to-end, returning the full artifact. The
    /// instruction is compiled in a realistic context: input tiles are
    /// first prepared (and idled) as required, then only the instruction's
    /// own circuit is accounted. Artifacts carry the full circuit and are
    /// not cached; use [`Compiler::compile_row`] for memoized row
    /// generation.
    pub fn compile(&self, request: &CompileRequest) -> Result<CompileArtifact, CoreError> {
        compile_uncached(request)
    }

    /// Compiles a request to a resource-table row, memoized: a request
    /// whose key (configuration × spec fingerprint) was already compiled is
    /// served from the cache without touching the compiler.
    pub fn compile_row(&self, request: &CompileRequest) -> Result<ResourceRow, CoreError> {
        let key = request.key();
        if let Some(row) = self.cache.get(&key) {
            return Ok(row);
        }
        let artifact = self.compile(request)?;
        self.stats.lock().expect("stats map poisoned").insert(key, artifact.stats);
        let row = artifact.row();
        self.cache.insert(key, row.clone());
        Ok(row)
    }

    /// Compiles a request to a resource-table row under the given
    /// [`EstimateMode`]. `Compiled` is exactly [`Compiler::compile_row`];
    /// `Analytic` derives the row from the cell's shared
    /// [`AnalyticArtifact`], falling back to a real compile when the cell
    /// is not derivable or `dt` is out of the derivable range.
    pub fn estimate_row(
        &self,
        request: &CompileRequest,
        mode: EstimateMode,
    ) -> Result<ResourceRow, CoreError> {
        match mode {
            EstimateMode::Compiled => self.compile_row(request),
            EstimateMode::Analytic => match self.analytic_artifact(request)? {
                Some(artifact) => match artifact.derive_row(request.dt) {
                    Some(row) => {
                        let stats =
                            artifact.derive_stats(request.dt).expect("row derivable => stats too");
                        self.stats.lock().expect("stats map poisoned").insert(request.key(), stats);
                        Ok(row)
                    }
                    None => {
                        self.analytic_fallbacks.fetch_add(1, Ordering::Relaxed);
                        self.compile_row(request)
                    }
                },
                None => {
                    self.analytic_fallbacks.fetch_add(1, Ordering::Relaxed);
                    self.compile_row(request)
                }
            },
        }
    }

    /// The shared analytic capture for the request's `(instruction, dx, dz,
    /// profile)` cell: captured on first use (one physical compile at
    /// [`ANALYTIC_DT_CAP`]), then served from the compiler's analytic cache
    /// for every `dt`. `Ok(None)` means the cell is not analytically
    /// derivable and is remembered as such.
    pub fn analytic_artifact(
        &self,
        request: &CompileRequest,
    ) -> Result<Option<Arc<AnalyticArtifact>>, CoreError> {
        let key = CompileRequest { dt: ANALYTIC_DT_CAP, ..request.clone() }.key();
        if let Some(hit) = self.analytic.lock().expect("analytic cache poisoned").get(&key) {
            return Ok(hit.clone());
        }
        self.captures.fetch_add(1, Ordering::Relaxed);
        let captured = AnalyticArtifact::capture(
            request.instruction,
            request.dx,
            request.dz,
            request.spec.clone(),
        )?
        .map(Arc::new);
        // First writer wins on a race; both computed the same capture.
        Ok(self
            .analytic
            .lock()
            .expect("analytic cache poisoned")
            .entry(key)
            .or_insert(captured)
            .clone())
    }
}

/// The stateless compile pipeline behind [`Compiler::compile`]: needs no
/// cache, so batch engines (the sweep fan-out, the table generators) that
/// bring their own memoization call it directly without constructing a
/// throwaway [`Compiler`] per row.
pub(crate) fn compile_uncached(request: &CompileRequest) -> Result<CompileArtifact, CoreError> {
    let (hw, before, report) = compile_physical(request)?;
    let (rounds, resources, stats) = instruction_rounds_with_stats(&hw, before);
    Ok(CompileArtifact { request: request.clone(), rounds, report, resources, stats })
}

/// The physical compile behind both [`compile_uncached`] and
/// [`AnalyticArtifact::capture`]: builds the fixture, prepares input tiles
/// as required, applies the instruction, and hands back the hardware model
/// (for post-hoc circuit inspection) together with the instruction's first
/// op index and the compiler-side report.
fn compile_physical(
    request: &CompileRequest,
) -> Result<(HardwareModel, usize, InstructionReport), CoreError> {
    let CompileRequest { instruction, dx, dz, dt, ref spec } = *request;
    if instruction.tiles() == 2 {
        let mut fixture = match instruction {
            Instruction::MeasureZZ => TwoTiles::new_horizontal_with_spec(dx, dz, dt, spec.clone())?,
            _ => TwoTiles::with_spec(dx, dz, dt, spec.clone())?,
        };
        fixture.hw.set_round_templating(true);
        Fiducial::Zero.prepare(&mut fixture.hw, &mut fixture.upper)?;
        Fiducial::Zero.prepare(&mut fixture.hw, &mut fixture.lower)?;
        let before = fixture.hw.circuit().len();
        let report = apply_two_tile_instruction(
            &mut fixture.hw,
            instruction,
            &mut fixture.upper,
            &mut fixture.lower,
        )?;
        Ok((fixture.hw, before, report))
    } else {
        let mut fixture = SingleTile::with_spec(dx, dz, dt, spec.clone())?;
        fixture.hw.set_round_templating(true);
        // Instructions acting on an initialized tile need one.
        let needs_input = !matches!(
            instruction,
            Instruction::PrepareZ
                | Instruction::PrepareX
                | Instruction::InjectY
                | Instruction::InjectT
        );
        if needs_input {
            Fiducial::Zero.prepare(&mut fixture.hw, &mut fixture.patch)?;
        }
        let before = fixture.hw.circuit().len();
        let report = apply_instruction(&mut fixture.hw, instruction, &mut fixture.patch)?;
        Ok((fixture.hw, before, report))
    }
}

/// Extracts the sub-range of `hw` starting at operation index `start_op` as
/// a periodic [`CompiledRounds`] (re-based so the instruction starts at
/// `t = 0`, measurement records carried over), together with its resource
/// report under the model's profile — composed by streaming prologue,
/// `repeats × template` and epilogue with running accumulators, so no round
/// is ever re-materialized. Used so reports reflect an instruction alone,
/// not its input preparation.
pub(crate) fn instruction_rounds(
    hw: &HardwareModel,
    start_op: usize,
) -> (CompiledRounds, ResourceReport) {
    let (rounds, resources, _) = instruction_rounds_with_stats(hw, start_op);
    (rounds, resources)
}

/// [`instruction_rounds`] plus the scheduling-pass observables: runs the
/// SIMD batching pass over the extracted rounds when the profile asks for
/// it (`simd_width > 1`; the default width skips the pass entirely and the
/// stream is byte-identical to the unbatched one), and totals the model's
/// per-op junction-stall flags across every round occurrence.
pub(crate) fn instruction_rounds_with_stats(
    hw: &HardwareModel,
    start_op: usize,
) -> (CompiledRounds, ResourceReport, CompileStats) {
    let rounds = CompiledRounds::extract(hw.circuit(), start_op);
    let (rounds, batch) = if hw.spec().simd_width > 1 {
        batch_rounds(&rounds, hw.spec())
    } else {
        (rounds, RoundBatchStats::default())
    };
    let resources = ResourceReport::from_stream_with_spec(&rounds, hw.grid().layout(), hw.spec());
    let stats = CompileStats {
        junction_stalls: junction_stalls_of(hw, start_op),
        batched_pulses: batch.total_batched_pulses(rounds.repeats),
    };
    (rounds, resources, stats)
}

/// Total junction stalls of the instruction starting at `start_op`,
/// counting each templated round occurrence: the flags cover the distinct
/// (materialized) ops; each replicated span replays its round `extra` more
/// times with the identical schedule, stalls included.
fn junction_stalls_of(hw: &HardwareModel, start_op: usize) -> usize {
    let flags = hw.stall_flags();
    let count = |r: std::ops::Range<usize>| flags[r].iter().filter(|&&stalled| stalled).count();
    let mut total = count(start_op..flags.len());
    for span in hw.circuit().spans().iter().filter(|s| s.op_end > start_op) {
        total += span.extra * count(span.op_start..span.op_end);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_request_reproduces_the_legacy_row() {
        let compiler = Compiler::new();
        let artifact =
            compiler.compile(&CompileRequest::new(Instruction::PrepareZ, 2, 2, 1)).unwrap();
        let legacy =
            crate::tables::compile_instruction_row(Instruction::PrepareZ, 2, 2, 1).unwrap();
        assert_eq!(artifact.row(), legacy);
        assert!(artifact.rounds.total_ops() > 0);
        assert!(!artifact.circuit().is_empty());
        assert_eq!(artifact.report.tiles, 1);
    }

    #[test]
    fn profiles_change_the_schedule_but_not_the_accounting() {
        let compiler = Compiler::new();
        let base = CompileRequest::new(Instruction::Idle, 2, 2, 1);
        let h1 = compiler.compile(&base).unwrap();
        let fast = compiler.compile(&base.clone().with_spec(HardwareSpec::projected())).unwrap();
        assert!(fast.resources.execution_time_s < h1.resources.execution_time_s);
        assert_eq!(fast.report.logical_time_steps, h1.report.logical_time_steps);
        assert_eq!(fast.resources.total_ops, h1.resources.total_ops);
        assert_ne!(base.key(), base.clone().with_spec(HardwareSpec::projected()).key());
    }

    #[test]
    fn compile_row_is_memoized_per_profile() {
        let compiler = Compiler::new();
        let req = CompileRequest::new(Instruction::MeasureZ, 2, 2, 1);
        let a = compiler.compile_row(&req).unwrap();
        let b = compiler.compile_row(&req).unwrap();
        assert_eq!(a, b);
        assert_eq!(compiler.cache().misses(), 1);
        assert_eq!(compiler.cache().hits(), 1);
        // A different profile is a different cache entry.
        let slow = req.with_profile("slow_junction").unwrap();
        compiler.compile_row(&slow).unwrap();
        assert_eq!(compiler.cache().len(), 2);
    }

    #[test]
    fn with_profile_rejects_unknown_names() {
        let err =
            CompileRequest::new(Instruction::Idle, 2, 2, 1).with_profile("warp9").unwrap_err();
        assert!(err.to_string().contains("h1"));
    }

    #[test]
    fn estimate_mode_parses_and_renders() {
        assert_eq!("analytic".parse::<EstimateMode>().unwrap(), EstimateMode::Analytic);
        assert_eq!("Compiled".parse::<EstimateMode>().unwrap(), EstimateMode::Compiled);
        assert_eq!(EstimateMode::default(), EstimateMode::Compiled);
        assert_eq!(EstimateMode::Analytic.to_string(), "analytic");
        let err = "turbo".parse::<EstimateMode>().unwrap_err();
        assert!(err.contains("turbo") && err.contains("analytic"));
    }

    #[test]
    fn analytic_rows_match_compiled_rows_bit_for_bit() {
        let compiler = Compiler::new();
        for instruction in [Instruction::Idle, Instruction::MeasureZZ, Instruction::MeasureX] {
            for dt in [2usize, 3, 5, 7] {
                let req = CompileRequest::new(instruction, 3, 3, dt);
                let analytic = compiler.estimate_row(&req, EstimateMode::Analytic).unwrap();
                let compiled = compile_uncached(&req).unwrap().row();
                assert_eq!(analytic, compiled, "{instruction:?} dt={dt}");
            }
        }
    }

    #[test]
    fn analytic_captures_are_shared_across_dt() {
        let compiler = Compiler::new();
        for dt in 2..=6 {
            let req = CompileRequest::new(Instruction::Idle, 2, 2, dt);
            compiler.estimate_row(&req, EstimateMode::Analytic).unwrap();
        }
        // One capture serves every dt: the compiled-row cache saw no
        // traffic beyond (possibly) fallback dts — for Idle, none.
        assert_eq!(compiler.cache().len(), 0, "analytic rows never populate the compiled cache");
        assert_eq!(compiler.analytic.lock().unwrap().len(), 1);
        assert_eq!(compiler.analytic_captures(), 1, "one physical capture serves every dt");
    }

    #[test]
    fn analytic_mode_falls_back_outside_the_derivable_range() {
        let compiler = Compiler::new();
        // dt = 1 cannot be derived from a periodic capture; the row must
        // come from a real compile and still be exact.
        let req = CompileRequest::new(Instruction::Idle, 2, 2, 1);
        let analytic = compiler.estimate_row(&req, EstimateMode::Analytic).unwrap();
        let compiled = compile_uncached(&req).unwrap().row();
        assert_eq!(analytic, compiled);
        assert_eq!(compiler.cache().len(), 1, "the fallback is a compiled-cache entry");
        assert_eq!(compiler.analytic_fallbacks(), 1, "the fallback is counted, never silent");
    }

    #[test]
    fn default_knobs_report_zero_stats() {
        let compiler = Compiler::new();
        let req = CompileRequest::new(Instruction::Idle, 3, 3, 3);
        compiler.compile_row(&req).unwrap();
        assert_eq!(compiler.stats_for(&req), CompileStats::default());
        let artifact = compiler.compile(&req).unwrap();
        assert_eq!(artifact.stats, CompileStats::default());
    }

    #[test]
    fn simd_batching_reports_batched_pulses_and_shrinks_the_stream() {
        let mut spec = HardwareSpec::h1();
        spec.simd_width = 4;
        let compiler = Compiler::new();
        let req = CompileRequest::new(Instruction::Idle, 3, 3, 3).with_spec(spec);
        let batched = compiler.compile(&req).unwrap();
        let plain = compiler.compile(&CompileRequest::new(Instruction::Idle, 3, 3, 3)).unwrap();
        assert!(batched.stats.batched_pulses > 0, "d=3 rounds have co-scheduled 1q gates");
        assert!(batched.rounds.total_ops() < plain.rounds.total_ops());
        // With zero discount, batching merges pulses but moves no start:
        // the makespan is unchanged.
        assert_eq!(
            batched.resources.execution_time_s.to_bits(),
            plain.resources.execution_time_s.to_bits()
        );
    }

    #[test]
    fn analytic_stats_match_compiled_stats() {
        let mut spec = HardwareSpec::h1();
        spec.simd_width = 2;
        for dt in [2usize, 3, 5, 7] {
            let req = CompileRequest::new(Instruction::MeasureZZ, 3, 3, dt).with_spec(spec.clone());
            let analytic = Compiler::new();
            let row = analytic.estimate_row(&req, EstimateMode::Analytic).unwrap();
            let compiled = compile_uncached(&req).unwrap();
            assert_eq!(row, compiled.row(), "dt={dt}");
            assert_eq!(analytic.stats_for(&req), compiled.stats, "dt={dt}");
        }
    }
}

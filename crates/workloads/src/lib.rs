//! Parametric workload generators for the TISCC estimator stack.
//!
//! The estimator pipeline (parse → place → schedule → budget → compile) is
//! only honest at scale if it is *measured* at scale. This crate provides
//! deterministic program generators — each returns a validated
//! [`LogicalProgram`] that renders to `.tql` text and re-parses bit-for-bit
//! — so the benchmarks and the CLI can exercise the stack at 10⁴–10⁶
//! instructions instead of the few-dozen-instruction hand-written examples:
//!
//! * [`Family::RippleCarryAdder`] / [`Family::CarryLookaheadAdder`] — N-bit
//!   in-place adders built from lattice-surgery merges; the ripple variant
//!   is a nearest-neighbour carry chain, the lookahead variant a
//!   Kogge–Stone prefix network whose long-range merges stress the router,
//! * [`Family::Qft`] — the quantum Fourier transform on N qubits with
//!   controlled-phase rotations lowered to T-teleportation gadgets,
//! * [`Family::IsingTrotter`] — first-order Trotter layers of the
//!   transverse-field Ising model on a W×W lattice, parameterized by the
//!   coupling `J`, the field `h` and the step count,
//! * [`Family::GhzChain`] / [`Family::TeleportChain`] — a GHZ ladder of
//!   merges and a three-patch teleportation chain of depth D,
//! * [`Family::RandomCliffordT`] — seeded random Clifford+T programs with
//!   an instruction-mix knob, byte-reproducible from a `u64` seed via the
//!   vendored `rand` stub.
//!
//! Every family has a closed-form instruction-count formula
//! ([`instruction_count`]) that the generators are tested against, so
//! benchmark rows can be labelled by exact program length without building
//! the program first. The `tiscc gen` subcommand exposes the registry on
//! the command line; `docs/WORKLOADS.md` is the cookbook.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod adders;
mod chains;
mod ising;
mod qft;
mod random;

use std::fmt;

use tiscc_program::LogicalProgram;

/// Hard ceiling on generated program length, so a typo'd `--n` fails fast
/// instead of allocating gigabytes.
pub const MAX_INSTRUCTIONS: usize = 10_000_000;

/// The workload families the generator registry knows how to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Family {
    /// N-bit ripple-carry adder: nearest-neighbour carry chain.
    RippleCarryAdder,
    /// N-bit carry-lookahead adder: Kogge–Stone prefix merge network.
    CarryLookaheadAdder,
    /// Quantum Fourier transform on N qubits.
    Qft,
    /// Transverse-field Ising Trotter layers on a W×W lattice.
    IsingTrotter,
    /// GHZ state preparation ladder over N qubits.
    GhzChain,
    /// Three-patch logical teleportation chain of depth D.
    TeleportChain,
    /// Seeded random Clifford+T program of exactly N instructions.
    RandomCliffordT,
}

impl Family {
    /// Every family, in registry order.
    pub fn all() -> &'static [Family] {
        &[
            Family::RippleCarryAdder,
            Family::CarryLookaheadAdder,
            Family::Qft,
            Family::IsingTrotter,
            Family::GhzChain,
            Family::TeleportChain,
            Family::RandomCliffordT,
        ]
    }

    /// The kebab-case name used by `tiscc gen` and the docs.
    pub fn name(self) -> &'static str {
        match self {
            Family::RippleCarryAdder => "ripple-carry-adder",
            Family::CarryLookaheadAdder => "carry-lookahead-adder",
            Family::Qft => "qft",
            Family::IsingTrotter => "ising-trotter",
            Family::GhzChain => "ghz-chain",
            Family::TeleportChain => "teleport-chain",
            Family::RandomCliffordT => "random-clifford-t",
        }
    }

    /// Resolves a kebab-case family name.
    pub fn from_name(name: &str) -> Option<Family> {
        Family::all().iter().copied().find(|f| f.name() == name)
    }

    /// One-line description for `tiscc gen` usage text and the cookbook.
    pub fn description(self) -> &'static str {
        match self {
            Family::RippleCarryAdder => {
                "N-bit ripple-carry adder; nearest-neighbour merges, 11N-1 instructions"
            }
            Family::CarryLookaheadAdder => {
                "N-bit Kogge-Stone adder; long-range prefix merges stress the router"
            }
            Family::Qft => "N-qubit QFT; controlled phases via T-teleportation gadgets",
            Family::IsingTrotter => {
                "W x W transverse-field Ising Trotter layers (--n is W; --steps, --j, --h)"
            }
            Family::GhzChain => "N-qubit GHZ ladder; one merge per link",
            Family::TeleportChain => "depth-D teleportation chain over three patches",
            Family::RandomCliffordT => {
                "seeded random Clifford+T, exactly N instructions (--seed, --t-frac, --qubits)"
            }
        }
    }

    /// The default size parameter (`--n`) for the family.
    pub fn default_n(self) -> usize {
        match self {
            Family::IsingTrotter => 4,
            Family::RandomCliffordT => 256,
            _ => 8,
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The full parameter set of one generator invocation.
///
/// Each family reads the knobs it understands and ignores the rest, so a
/// spec built from command-line flags never has to be family-pruned. All
/// generators are pure functions of the spec: the same spec always produces
/// the same program, byte-for-byte in `.tql` form.
#[derive(Clone, Debug, PartialEq)]
pub struct GenSpec {
    /// Which generator to run.
    pub family: Family,
    /// The size parameter: bit width, qubit count, lattice width or chain
    /// depth depending on the family.
    pub n: usize,
    /// RNG seed ([`Family::RandomCliffordT`] only).
    pub seed: u64,
    /// Trotter step count ([`Family::IsingTrotter`] only).
    pub steps: usize,
    /// Ising bond coupling J ([`Family::IsingTrotter`] only).
    pub coupling_j: f64,
    /// Transverse field h ([`Family::IsingTrotter`] only).
    pub field_h: f64,
    /// Fraction of the instruction budget spent on T-teleportation gadgets
    /// ([`Family::RandomCliffordT`] only).
    pub t_fraction: f64,
    /// Data-qubit override ([`Family::RandomCliffordT`] only; the default
    /// is `max(2, ceil(sqrt(n)))`).
    pub qubits: Option<usize>,
}

impl GenSpec {
    /// A spec with the family's default parameters.
    pub fn new(family: Family) -> Self {
        GenSpec {
            family,
            n: family.default_n(),
            seed: 1,
            steps: 1,
            coupling_j: 1.0,
            field_h: 1.0,
            t_fraction: 0.2,
            qubits: None,
        }
    }

    /// Sets the size parameter.
    pub fn with_n(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the Trotter step count.
    pub fn with_steps(mut self, steps: usize) -> Self {
        self.steps = steps;
        self
    }

    /// Sets the Ising bond coupling J.
    pub fn with_coupling_j(mut self, j: f64) -> Self {
        self.coupling_j = j;
        self
    }

    /// Sets the transverse field h.
    pub fn with_field_h(mut self, h: f64) -> Self {
        self.field_h = h;
        self
    }

    /// Sets the T-gadget fraction of the random mix.
    pub fn with_t_fraction(mut self, t: f64) -> Self {
        self.t_fraction = t;
        self
    }

    /// Overrides the random-program data-qubit count.
    pub fn with_qubits(mut self, q: usize) -> Self {
        self.qubits = Some(q);
        self
    }

    /// The deterministic program name the generator will emit, e.g.
    /// `random-clifford-t-n256-seed1`.
    pub fn program_name(&self) -> String {
        match self.family {
            Family::IsingTrotter => format!("ising-trotter-w{}-s{}", self.n, self.steps),
            Family::TeleportChain => format!("teleport-chain-d{}", self.n),
            Family::RandomCliffordT => {
                format!("random-clifford-t-n{}-seed{}", self.n, self.seed)
            }
            family => format!("{}-n{}", family.name(), self.n),
        }
    }

    /// Checks the knobs the family actually reads; the first offending flag
    /// is named in the error so the CLI can fail usefully.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        let bad = |flag, message: String| Err(WorkloadError::BadParam { flag, message });
        // Bound the raw knobs before any count arithmetic so the
        // closed-form formulas cannot overflow.
        if self.n > 100_000_000 {
            return bad("--n", "size parameter is capped at 100000000".into());
        }
        if self.steps > 1_000_000 {
            return bad("--steps", "Trotter step count is capped at 1000000".into());
        }
        match self.family {
            Family::GhzChain => {
                if self.n < 2 {
                    return bad("--n", format!("{} needs --n >= 2", self.family));
                }
            }
            Family::IsingTrotter => {
                if self.n < 1 {
                    return bad("--n", "lattice width must be >= 1".into());
                }
                if self.steps < 1 {
                    return bad("--steps", "Trotter step count must be >= 1".into());
                }
                if !self.coupling_j.is_finite() || self.coupling_j.abs() > 100.0 {
                    return bad("--j", "coupling must be finite with |J| <= 100".into());
                }
                if !self.field_h.is_finite() || self.field_h.abs() > 100.0 {
                    return bad("--h", "field must be finite with |h| <= 100".into());
                }
            }
            Family::RandomCliffordT => {
                if self.n < 1 {
                    return bad("--n", "instruction count must be >= 1".into());
                }
                if !(0.0..=1.0).contains(&self.t_fraction) {
                    return bad("--t-frac", "T fraction must lie in [0, 1]".into());
                }
                if let Some(q) = self.qubits {
                    if q < 1 {
                        return bad("--qubits", "data-qubit count must be >= 1".into());
                    }
                    if q > 100_000 {
                        return bad("--qubits", "data-qubit count is capped at 100000".into());
                    }
                }
            }
            _ => {
                if self.n < 1 {
                    return bad("--n", format!("{} needs --n >= 1", self.family));
                }
            }
        }
        Ok(())
    }
}

/// Errors raised by the generator registry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkloadError {
    /// The family name is not in the registry.
    UnknownFamily(String),
    /// A parameter is out of range for the requested family; `flag` is the
    /// `tiscc gen` flag that carries it.
    BadParam {
        /// The command-line flag that names the parameter (e.g. `--n`).
        flag: &'static str,
        /// What went wrong.
        message: String,
    },
    /// The requested program would exceed [`MAX_INSTRUCTIONS`].
    TooLarge {
        /// The closed-form instruction count of the request.
        requested: usize,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::UnknownFamily(name) => {
                write!(f, "unknown workload family '{name}' (expected one of ")?;
                for (i, family) in Family::all().iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{family}")?;
                }
                write!(f, ")")
            }
            WorkloadError::BadParam { flag, message } => {
                write!(f, "invalid {flag}: {message}")
            }
            WorkloadError::TooLarge { requested } => write!(
                f,
                "workload would have {requested} instructions; the cap is {MAX_INSTRUCTIONS} \
                 (lower --n or --steps)"
            ),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// The closed-form instruction count of a spec, without building the
/// program. [`generate`] is tested to agree with this for every family.
pub fn instruction_count(spec: &GenSpec) -> Result<usize, WorkloadError> {
    spec.validate()?;
    Ok(match spec.family {
        Family::RippleCarryAdder => adders::ripple_count(spec.n),
        Family::CarryLookaheadAdder => adders::lookahead_count(spec.n),
        Family::Qft => qft::count(spec.n),
        Family::IsingTrotter => ising::count(spec.n, spec.steps, spec.coupling_j, spec.field_h),
        Family::GhzChain => chains::ghz_count(spec.n),
        Family::TeleportChain => chains::teleport_count(spec.n),
        Family::RandomCliffordT => spec.n,
    })
}

/// Builds the program described by `spec`.
///
/// The result is always liveness-valid and has exactly
/// [`instruction_count`] instructions; rendering it with
/// `LogicalProgram::to_tql` and re-parsing reproduces the program
/// structurally, and the same spec regenerates the same bytes.
pub fn generate(spec: &GenSpec) -> Result<LogicalProgram, WorkloadError> {
    let count = instruction_count(spec)?;
    if count > MAX_INSTRUCTIONS {
        return Err(WorkloadError::TooLarge { requested: count });
    }
    let program = match spec.family {
        Family::RippleCarryAdder => adders::ripple(spec),
        Family::CarryLookaheadAdder => adders::lookahead(spec),
        Family::Qft => qft::generate(spec),
        Family::IsingTrotter => ising::generate(spec),
        Family::GhzChain => chains::ghz(spec),
        Family::TeleportChain => chains::teleport(spec),
        Family::RandomCliffordT => random::generate(spec),
    };
    debug_assert_eq!(program.len(), count, "count formula out of sync for {}", spec.family);
    debug_assert!(program.validate().is_ok(), "generator emitted invalid program");
    Ok(program)
}

/// Resolves a family by name and builds it with the given spec fields —
/// the one-call entry point used by the `tiscc gen` subcommand.
pub fn generate_named(name: &str, spec: &GenSpec) -> Result<LogicalProgram, WorkloadError> {
    let family =
        Family::from_name(name).ok_or_else(|| WorkloadError::UnknownFamily(name.to_string()))?;
    generate(&GenSpec { family, ..spec.clone() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_round_trip() {
        for &family in Family::all() {
            assert_eq!(Family::from_name(family.name()), Some(family));
            assert!(!family.description().is_empty());
        }
        assert_eq!(Family::from_name("warp-field"), None);
    }

    #[test]
    fn every_family_generates_a_valid_program_matching_its_formula() {
        for &family in Family::all() {
            for n in [1usize, 2, 3, 5, 8, 13] {
                let spec = GenSpec::new(family).with_n(n);
                if spec.validate().is_err() {
                    continue; // e.g. ghz-chain at n = 1
                }
                let program = generate(&spec).unwrap();
                program.validate().unwrap_or_else(|e| {
                    panic!("{family} n={n}: invalid program: {e}");
                });
                assert_eq!(
                    program.len(),
                    instruction_count(&spec).unwrap(),
                    "{family} n={n}: count formula mismatch"
                );
                assert_eq!(program.name(), spec.program_name());
            }
        }
    }

    #[test]
    fn bad_params_name_the_flag() {
        let err = generate(&GenSpec::new(Family::GhzChain).with_n(1)).unwrap_err();
        assert!(err.to_string().contains("--n"), "{err}");
        let err =
            generate(&GenSpec::new(Family::RandomCliffordT).with_t_fraction(1.5)).unwrap_err();
        assert!(err.to_string().contains("--t-frac"), "{err}");
        let err = generate(&GenSpec::new(Family::IsingTrotter).with_steps(0)).unwrap_err();
        assert!(err.to_string().contains("--steps"), "{err}");
        let err =
            generate(&GenSpec::new(Family::IsingTrotter).with_coupling_j(f64::NAN)).unwrap_err();
        assert!(err.to_string().contains("--j"), "{err}");
        let err = generate_named("warp-field", &GenSpec::new(Family::Qft)).unwrap_err();
        assert!(err.to_string().contains("warp-field"), "{err}");
        assert!(err.to_string().contains("ripple-carry-adder"), "{err}");
    }

    #[test]
    fn oversized_requests_are_rejected_before_allocation() {
        let err = generate(&GenSpec::new(Family::Qft).with_n(100_000)).unwrap_err();
        assert!(matches!(err, WorkloadError::TooLarge { .. }), "{err}");
    }

    #[test]
    fn same_spec_regenerates_identical_bytes() {
        for &family in Family::all() {
            let spec = GenSpec::new(family).with_seed(42);
            let a = generate(&spec).unwrap().to_tql();
            let b = generate(&spec).unwrap().to_tql();
            assert_eq!(a, b, "{family} regeneration diverged");
        }
    }
}

//! N-bit adder workloads.
//!
//! Both adders use the same register layout — per bit `i` the qubits
//! `a{i}` (augend, kept), `b{i}` (addend, measured out) and a helper
//! (`c{i}` carry / `g{i}` generate) are declared adjacently so the
//! single-lane floorplan keeps intra-bit merges short — and differ only in
//! the carry network: the ripple variant chains nearest-neighbour
//! `merge_zz c{i} c{i+1}`, the lookahead variant runs a Kogge–Stone prefix
//! network whose stride-2ᵏ merges reach across the whole register.

use tiscc_program::{LogicalProgram, QubitRef};

use crate::GenSpec;

/// `11n − 1`: 3n preparations, n sum merges, n carry captures, n−1 carry
/// chain links and 5n readout instructions.
pub(crate) fn ripple_count(n: usize) -> usize {
    11 * n - 1
}

/// `9n + Σ_{s=2ᵏ<n} (n − s)`: like the ripple adder but the n−1 chain
/// links are replaced by the Kogge–Stone prefix tree (and one fewer
/// readout Pauli per bit pays for the extra tree depth bookkeeping).
pub(crate) fn lookahead_count(n: usize) -> usize {
    let mut tree = 0usize;
    let mut stride = 1usize;
    while stride < n {
        tree += n - stride;
        stride *= 2;
    }
    9 * n + tree
}

fn declare_registers(
    program: &mut LogicalProgram,
    n: usize,
    helper: char,
) -> (Vec<QubitRef>, Vec<QubitRef>, Vec<QubitRef>) {
    let (mut a, mut b, mut c) = (Vec::new(), Vec::new(), Vec::new());
    for i in 0..n {
        a.push(program.add_qubit(format!("a{i}")).unwrap());
        b.push(program.add_qubit(format!("b{i}")).unwrap());
        c.push(program.add_qubit(format!("{helper}{i}")).unwrap());
    }
    (a, b, c)
}

fn prepare(program: &mut LogicalProgram, a: &[QubitRef], b: &[QubitRef], c: &[QubitRef]) {
    for i in 0..a.len() {
        program.prepare_z(a[i]).unwrap();
        program.prepare_x(b[i]).unwrap();
        program.prepare_z(c[i]).unwrap();
    }
}

pub(crate) fn ripple(spec: &GenSpec) -> LogicalProgram {
    let n = spec.n;
    let mut program = LogicalProgram::new(spec.program_name());
    let (a, b, c) = declare_registers(&mut program, n, 'c');
    prepare(&mut program, &a, &b, &c);
    for i in 0..n {
        program.measure_zz(a[i], b[i]).unwrap(); // sum
    }
    for i in 0..n {
        program.measure_xx(a[i], c[i]).unwrap(); // carry generate
    }
    for i in 0..n - 1 {
        program.measure_zz(c[i], c[i + 1]).unwrap(); // carry propagate
    }
    for &bi in &b {
        program.measure_x(bi).unwrap();
    }
    for &ci in &c {
        program.measure_z(ci).unwrap();
    }
    for &ai in &a {
        program.pauli_x(ai).unwrap();
        program.pauli_z(ai).unwrap();
    }
    for &ai in &a {
        program.measure_z(ai).unwrap();
    }
    program
}

pub(crate) fn lookahead(spec: &GenSpec) -> LogicalProgram {
    let n = spec.n;
    let mut program = LogicalProgram::new(spec.program_name());
    let (a, b, g) = declare_registers(&mut program, n, 'g');
    prepare(&mut program, &a, &b, &g);
    for i in 0..n {
        program.measure_zz(a[i], b[i]).unwrap(); // generate
    }
    for i in 0..n {
        program.measure_xx(b[i], g[i]).unwrap(); // capture into the g register
    }
    // Kogge–Stone prefix combine: at stride s every bit i >= s merges the
    // prefix ending at i - s into its own — log2(n) layers of progressively
    // longer-range surgeries.
    let mut stride = 1usize;
    while stride < n {
        for i in stride..n {
            program.measure_zz(g[i - stride], g[i]).unwrap();
        }
        stride *= 2;
    }
    for &bi in &b {
        program.measure_x(bi).unwrap();
    }
    for &gi in &g {
        program.measure_z(gi).unwrap();
    }
    for &ai in &a {
        program.pauli_x(ai).unwrap();
    }
    for &ai in &a {
        program.measure_z(ai).unwrap();
    }
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Family;

    #[test]
    fn ripple_matches_formula_and_validates() {
        for n in [1usize, 2, 4, 7, 32] {
            let spec = GenSpec::new(Family::RippleCarryAdder).with_n(n);
            let p = ripple(&spec);
            assert_eq!(p.len(), ripple_count(n));
            assert_eq!(p.qubit_count(), 3 * n);
            p.validate().unwrap();
        }
    }

    #[test]
    fn lookahead_tree_is_log_depth() {
        // n = 8: strides 1, 2, 4 contribute 7 + 6 + 4 = 17 tree merges.
        assert_eq!(lookahead_count(8), 9 * 8 + 17);
        let spec = GenSpec::new(Family::CarryLookaheadAdder).with_n(8);
        let p = lookahead(&spec);
        assert_eq!(p.len(), lookahead_count(8));
        p.validate().unwrap();
    }
}

//! Seeded random Clifford+T workload.
//!
//! A program of *exactly* `n` instructions over `q ≈ √n` data patches
//! (override with `--qubits`), drawn from a three-way mix: with
//! probability `--t-frac` a four-instruction T-teleportation gadget,
//! otherwise a two-qubit parity merge or a single-qubit Clifford/idle.
//! Every draw comes from the vendored `rand` stub's `StdRng` seeded by
//! `--seed`, so the same spec regenerates byte-identical `.tql` across
//! processes and machines — which is what lets benchmark rows and
//! PERFORMANCE.md curves name "random-clifford-t n=100000 seed=7" as a
//! stable object.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tiscc_program::LogicalProgram;

use crate::GenSpec;

pub(crate) fn generate(spec: &GenSpec) -> LogicalProgram {
    let n = spec.n;
    let q = spec.qubits.unwrap_or_else(|| ((n as f64).sqrt().ceil() as usize).clamp(2, n.max(2)));
    let ancillas = (q / 8).max(1);
    let mut program = LogicalProgram::new(spec.program_name());
    let data: Vec<_> = (0..q).map(|i| program.add_qubit(format!("d{i}")).unwrap()).collect();
    let anc: Vec<_> = (0..ancillas).map(|i| program.add_qubit(format!("t{i}")).unwrap()).collect();

    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut emitted = 0usize;
    // Bring up as many data patches as the budget allows; everything after
    // this acts only on live qubits.
    let live = q.min(n);
    for &d in &data[..live] {
        program.prepare_z(d).unwrap();
        emitted += 1;
    }
    while emitted < n {
        let remaining = n - emitted;
        if remaining >= 4 && rng.gen_bool(spec.t_fraction) {
            // T gadget: inject on a cycling ancilla, merge into a data
            // patch, measure the ancilla out, apply the correction.
            let t = anc[rng.gen_range(0..ancillas)];
            let d = data[rng.gen_range(0..live)];
            program.inject_t(t).unwrap();
            program.measure_zz(t, d).unwrap();
            program.measure_x(t).unwrap();
            program.pauli_z(d).unwrap();
            emitted += 4;
        } else if live >= 2 && rng.gen_bool(0.35) {
            let a = rng.gen_range(0..live);
            let b = (a + 1 + rng.gen_range(0..live - 1)) % live;
            if rng.gen_bool(0.5) {
                program.measure_zz(data[a], data[b]).unwrap();
            } else {
                program.measure_xx(data[a], data[b]).unwrap();
            }
            emitted += 1;
        } else {
            let d = data[rng.gen_range(0..live)];
            match rng.gen_range(0..5u32) {
                0 => program.hadamard(d).unwrap(),
                1 => program.pauli_x(d).unwrap(),
                2 => program.pauli_y(d).unwrap(),
                3 => program.pauli_z(d).unwrap(),
                _ => program.idle(d).unwrap(),
            }
            emitted += 1;
        }
    }
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Family;

    fn spec(n: usize, seed: u64) -> GenSpec {
        GenSpec::new(Family::RandomCliffordT).with_n(n).with_seed(seed)
    }

    #[test]
    fn emits_exactly_n_instructions() {
        for n in [1usize, 2, 3, 4, 7, 64, 1000] {
            for seed in [0u64, 1, 42] {
                let p = generate(&spec(n, seed));
                assert_eq!(p.len(), n, "n={n} seed={seed}");
                p.validate().unwrap();
            }
        }
    }

    #[test]
    fn same_seed_same_bytes_different_seed_different_program() {
        let a = generate(&spec(500, 7)).to_tql();
        let b = generate(&spec(500, 7)).to_tql();
        let c = generate(&spec(500, 8)).to_tql();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn t_fraction_knob_changes_the_mix() {
        let count_t = |t: f64| {
            let s = spec(2000, 3).with_t_fraction(t);
            let p = generate(&s);
            p.instructions()
                .iter()
                .filter(|pi| pi.instruction == tiscc_core::instruction::Instruction::InjectT)
                .count()
        };
        assert_eq!(count_t(0.0), 0);
        assert!(count_t(0.8) > count_t(0.1));
    }

    #[test]
    fn qubit_override_is_respected() {
        let s = spec(100, 1).with_qubits(5);
        let p = generate(&s);
        // 5 data + 1 ancilla declared.
        assert_eq!(p.qubit_count(), 6);
        p.validate().unwrap();
    }
}

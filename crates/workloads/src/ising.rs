//! Transverse-field Ising Trotter-layer workload.
//!
//! First-order Trotterization of `H = -J Σ Z_i Z_j - h Σ X_i` on a W×W
//! square lattice (the logical circuit family of the You/Geller/Stancil
//! surface-code Ising simulation; see PAPERS.md): per step, a ZZ rotation
//! on every lattice bond followed by an X rotation on every site. Each
//! rotation is lowered to a parity merge plus a run of T-teleportation
//! gadgets; the number of gadgets per rotation is a coarse
//! synthesis-length proxy, `max(1, ceil(|θ| / (π/4)))` for angle θ, so the
//! `--j`/`--h` knobs scale T-count the way longer rotation sequences
//! would.

use tiscc_program::{LogicalProgram, QubitRef};

use crate::GenSpec;

/// T-teleportation gadgets charged per rotation of angle `theta`: one
/// gadget per π/4 of rotation, minimum one.
pub(crate) fn t_reps(theta: f64) -> usize {
    let reps = (theta.abs() / std::f64::consts::FRAC_PI_4).ceil() as usize;
    reps.max(1)
}

/// `2w² + steps · [B(1 + 4·r_J) + w²(2 + 4·r_h)]` with `B = 2w(w−1)`
/// lattice bonds: prepare + measure per site, and per step one merge plus
/// `r_J` four-instruction gadgets per bond and two Hadamards plus `r_h`
/// gadgets per site.
pub(crate) fn count(w: usize, steps: usize, j: f64, h: f64) -> usize {
    // Saturating: an absurd (w, steps) request must land on the
    // MAX_INSTRUCTIONS cap, not wrap around it.
    let sites = w.saturating_mul(w);
    let bonds = 2 * w.saturating_mul(w - 1);
    let per_bond = 1 + 4 * t_reps(j);
    let per_site = 2 + 4 * t_reps(h);
    let per_step = bonds.saturating_mul(per_bond).saturating_add(sites.saturating_mul(per_site));
    (2 * sites).saturating_add(steps.saturating_mul(per_step))
}

pub(crate) fn generate(spec: &GenSpec) -> LogicalProgram {
    let w = spec.n;
    let rj = t_reps(spec.coupling_j);
    let rh = t_reps(spec.field_h);
    let mut program = LogicalProgram::new(spec.program_name());
    let mut site = vec![vec![QubitRef(0); w]; w];
    let mut anc = vec![vec![QubitRef(0); w]; w];
    // Row-major, each site adjacent to its own T ancilla, so gadget merges
    // are short and horizontal-bond merges span ~4 lane columns while
    // vertical bonds span ~2w — the lattice's congestion anisotropy.
    for r in 0..w {
        for c in 0..w {
            site[r][c] = program.add_qubit(format!("s{r}_{c}")).unwrap();
            anc[r][c] = program.add_qubit(format!("t{r}_{c}")).unwrap();
        }
    }
    for row in &site {
        for &s in row {
            program.prepare_z(s).unwrap();
        }
    }
    let gadget = |program: &mut LogicalProgram, t: QubitRef, s: QubitRef, reps: usize| {
        for _ in 0..reps {
            program.inject_t(t).unwrap();
            program.measure_zz(t, s).unwrap();
            program.measure_x(t).unwrap();
            program.pauli_z(s).unwrap();
        }
    };
    for _ in 0..spec.steps {
        // ZZ bond layer: horizontal then vertical bonds; the rotation
        // gadget attaches to the bond's first endpoint.
        for r in 0..w {
            for c in 0..w - 1 {
                program.measure_zz(site[r][c], site[r][c + 1]).unwrap();
                gadget(&mut program, anc[r][c], site[r][c], rj);
            }
        }
        for r in 0..w - 1 {
            for c in 0..w {
                program.measure_zz(site[r][c], site[r + 1][c]).unwrap();
                gadget(&mut program, anc[r][c], site[r][c], rj);
            }
        }
        // Transverse-field layer: X rotation = H · Z-rotation · H.
        for r in 0..w {
            for c in 0..w {
                program.hadamard(site[r][c]).unwrap();
                gadget(&mut program, anc[r][c], site[r][c], rh);
                program.hadamard(site[r][c]).unwrap();
            }
        }
    }
    for row in &site {
        for &s in row {
            program.measure_z(s).unwrap();
        }
    }
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Family;

    #[test]
    fn t_reps_scales_with_angle() {
        assert_eq!(t_reps(0.0), 1);
        assert_eq!(t_reps(0.5), 1);
        assert_eq!(t_reps(1.0), 2); // 1 / (π/4) ≈ 1.27
        assert_eq!(t_reps(-1.0), 2);
        assert_eq!(t_reps(3.2), 5);
    }

    #[test]
    fn ising_matches_formula_and_validates() {
        for (w, steps) in [(1usize, 1usize), (2, 1), (3, 2), (4, 3)] {
            let spec = GenSpec::new(Family::IsingTrotter).with_n(w).with_steps(steps);
            let p = generate(&spec);
            assert_eq!(p.len(), count(w, steps, 1.0, 1.0), "w={w} steps={steps}");
            assert_eq!(p.qubit_count(), 2 * w * w);
            p.validate().unwrap();
        }
        // w = 2, one step, J = h = 1 (two gadgets each): 4 bonds × 9 +
        // 4 sites × 10 + 2·4 prep/measure = 84.
        assert_eq!(count(2, 1, 1.0, 1.0), 84);
    }

    #[test]
    fn stronger_coupling_means_more_t_gadgets() {
        let base = count(3, 1, 0.5, 0.5);
        let hot = count(3, 1, 3.0, 0.5);
        assert!(hot > base);
    }
}

//! Quantum Fourier transform workload.
//!
//! The textbook circuit — a Hadamard on each qubit followed by controlled
//! phase rotations against every later qubit — lowered to the Table 1
//! lattice-surgery set: each controlled phase becomes a ZZ parity merge
//! plus a T-teleportation gadget on a per-target ancilla. The all-to-all
//! `merge_zz q{i} q{j}` pattern makes QFT the natural worst case for
//! corridor congestion: on any layout, late merges span nearly the whole
//! fabric.

use tiscc_program::LogicalProgram;

use crate::GenSpec;

/// `3n + 5·n(n−1)/2`: prepare + Hadamard + measure per qubit, and a
/// five-instruction controlled-phase block per ordered pair `i < j`.
pub(crate) fn count(n: usize) -> usize {
    3 * n + 5 * (n * (n - 1)) / 2
}

pub(crate) fn generate(spec: &GenSpec) -> LogicalProgram {
    let n = spec.n;
    let mut program = LogicalProgram::new(spec.program_name());
    let mut q = Vec::with_capacity(n);
    let mut r = vec![None; n];
    // Interleave each data qubit with its rotation ancilla (q1 r1 q2 r2 …)
    // so the gadget's own merges stay short; the q–q merges are the
    // long-range ones by design.
    for (j, rj) in r.iter_mut().enumerate() {
        q.push(program.add_qubit(format!("q{j}")).unwrap());
        if j > 0 {
            *rj = Some(program.add_qubit(format!("r{j}")).unwrap());
        }
    }
    for &qj in &q {
        program.prepare_z(qj).unwrap();
    }
    for i in 0..n {
        program.hadamard(q[i]).unwrap();
        for j in i + 1..n {
            let rj = r[j].unwrap();
            program.measure_zz(q[i], q[j]).unwrap();
            program.inject_t(rj).unwrap();
            program.measure_zz(rj, q[j]).unwrap();
            program.measure_x(rj).unwrap();
            program.pauli_z(q[j]).unwrap();
        }
    }
    for &qj in &q {
        program.measure_z(qj).unwrap();
    }
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Family;

    #[test]
    fn qft_matches_formula_and_validates() {
        for n in [1usize, 2, 3, 8, 16] {
            let spec = GenSpec::new(Family::Qft).with_n(n);
            let p = generate(&spec);
            assert_eq!(p.len(), count(n), "n={n}");
            assert_eq!(p.qubit_count(), if n == 0 { 0 } else { 2 * n - 1 });
            p.validate().unwrap();
        }
        // n = 4: 12 + 5 * 6 = 42.
        assert_eq!(count(4), 42);
    }
}

//! GHZ ladder and teleportation-chain workloads.
//!
//! The two linear-depth families: `ghz-chain` entangles N patches with one
//! nearest-neighbour merge per link (the friendliest possible routing
//! load, useful as a congestion floor), and `teleport-chain` repeats the
//! three-patch logical teleportation of `tiscc_program::examples` D times,
//! cycling the roles so only three tiles are ever allocated — a pure
//! serial-latency workload.

use tiscc_program::LogicalProgram;

use crate::GenSpec;

/// `3n − 1`: one preparation and one measurement per qubit plus n−1 chain
/// merges.
pub(crate) fn ghz_count(n: usize) -> usize {
    3 * n - 1
}

/// `8d + 2`: the initial preparation and final measurement bracket d
/// eight-instruction teleportation hops.
pub(crate) fn teleport_count(d: usize) -> usize {
    8 * d + 2
}

pub(crate) fn ghz(spec: &GenSpec) -> LogicalProgram {
    let n = spec.n;
    let mut program = LogicalProgram::new(spec.program_name());
    let q: Vec<_> = (0..n).map(|i| program.add_qubit(format!("q{i}")).unwrap()).collect();
    program.prepare_x(q[0]).unwrap();
    for &qi in &q[1..] {
        program.prepare_z(qi).unwrap();
    }
    for i in 0..n - 1 {
        program.measure_zz(q[i], q[i + 1]).unwrap();
    }
    for &qi in &q {
        program.measure_z(qi).unwrap();
    }
    program
}

pub(crate) fn teleport(spec: &GenSpec) -> LogicalProgram {
    let depth = spec.n;
    let mut program = LogicalProgram::new(spec.program_name());
    let q: Vec<_> = (0..3).map(|i| program.add_qubit(format!("q{i}")).unwrap()).collect();
    let mut holder = 0usize;
    program.prepare_z(q[holder]).unwrap();
    for _ in 0..depth {
        let anc = (holder + 1) % 3;
        let dst = (holder + 2) % 3;
        program.prepare_x(q[anc]).unwrap();
        program.prepare_z(q[dst]).unwrap();
        program.measure_zz(q[anc], q[dst]).unwrap();
        program.measure_xx(q[holder], q[anc]).unwrap();
        program.measure_z(q[holder]).unwrap();
        program.measure_z(q[anc]).unwrap();
        program.pauli_x(q[dst]).unwrap();
        program.pauli_z(q[dst]).unwrap();
        holder = dst;
    }
    program.measure_z(q[holder]).unwrap();
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Family;

    #[test]
    fn ghz_matches_formula_and_validates() {
        for n in [2usize, 3, 10, 100] {
            let spec = GenSpec::new(Family::GhzChain).with_n(n);
            let p = ghz(&spec);
            assert_eq!(p.len(), ghz_count(n));
            assert_eq!(p.qubit_count(), n);
            p.validate().unwrap();
        }
    }

    #[test]
    fn teleport_chain_reuses_three_patches() {
        for d in [1usize, 2, 5, 50] {
            let spec = GenSpec::new(Family::TeleportChain).with_n(d);
            let p = teleport(&spec);
            assert_eq!(p.len(), teleport_count(d));
            assert_eq!(p.qubit_count(), 3);
            p.validate().unwrap();
            assert_eq!(p.max_live_qubits(), if d > 0 { 3 } else { 1 });
        }
    }
}

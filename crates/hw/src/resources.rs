//! Space-time resource accounting (paper Sec. 3.4).
//!
//! Given a compiled [`Circuit`] and the [`Layout`] it was compiled for, the
//! [`ResourceReport`] computes the quantities the paper reports for every
//! surface-code patch operation: execution time, grid area, space-time
//! volume, number of trapping zones, trapping-zone-seconds and *active*
//! trapping-zone-seconds, plus native-operation counts.

use std::collections::{BTreeMap, BTreeSet};

use tiscc_grid::{Layout, QSite};

use crate::circuit::{Circuit, OpStream, OpView};
use crate::ops::NativeOp;
use crate::spec::HardwareSpec;

/// Space-time resources consumed by one compiled hardware circuit.
#[derive(Clone, Debug, PartialEq)]
pub struct ResourceReport {
    /// Total wall-clock execution time in seconds.
    pub execution_time_s: f64,
    /// Area of the bounding box of all zones touched, in square metres.
    pub area_m2: f64,
    /// `execution_time_s * area_m2` (paper: space-time volume, s·m²).
    pub spacetime_volume_s_m2: f64,
    /// Number of distinct trapping zones touched.
    pub trapping_zones: usize,
    /// Number of distinct junctions traversed.
    pub junctions: usize,
    /// `trapping_zones * execution_time_s`: zone-seconds reserved.
    pub zone_seconds: f64,
    /// Σ over operations of `duration * zones involved`: zone-seconds during
    /// which zones are actively performing an operation.
    pub active_zone_seconds: f64,
    /// Count of every native operation kind appearing in the circuit.
    pub op_counts: BTreeMap<&'static str, usize>,
    /// Total number of native operations.
    pub total_ops: usize,
    /// Total number of measurements.
    pub measurements: usize,
}

impl ResourceReport {
    /// Computes the report for `circuit` compiled on `layout`, under the
    /// paper-faithful default profile ([`HardwareSpec::h1`]).
    pub fn from_circuit(circuit: &Circuit, layout: &Layout) -> Self {
        ResourceReport::from_circuit_with_spec(circuit, layout, &HardwareSpec::default())
    }

    /// Computes the report for `circuit` compiled on `layout` under the
    /// given hardware profile: the physical area uses the profile's zone
    /// pitch. Time-dependent quantities are read off the circuit's schedule,
    /// which was already laid out with the profile's durations.
    pub fn from_circuit_with_spec(circuit: &Circuit, layout: &Layout, spec: &HardwareSpec) -> Self {
        ResourceReport::from_stream_with_spec(circuit, layout, spec)
    }

    /// Computes the report for any [`OpStream`] — a materialized circuit,
    /// a circuit carrying replicated rounds, or a
    /// [`CompiledRounds`](crate::rounds::CompiledRounds) — with running
    /// accumulators over the logical op stream. Streaming a periodic
    /// circuit costs the arithmetic of every occurrence but never clones or
    /// materializes its operations, and the accumulation order matches a
    /// fully materialized walk, so reports agree bit-for-bit.
    pub fn from_stream_with_spec(
        stream: &(impl OpStream + ?Sized),
        layout: &Layout,
        spec: &HardwareSpec,
    ) -> Self {
        // One pass over distinct ops for the set-valued accounting.
        let mut zones: BTreeSet<QSite> = BTreeSet::new();
        let mut junctions: BTreeSet<QSite> = BTreeSet::new();
        stream.for_each_distinct_op(&mut |op| {
            zones.extend(op.sites.iter().copied());
            junctions.extend(op.junction);
        });

        // One pass over the logical stream for the additive accounting.
        let mut makespan_us = 0.0f64;
        let mut op_counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        let mut active_zone_seconds = 0.0;
        let mut total_ops = 0usize;
        let mut measure_ops = 0usize;
        stream.for_each_op(&mut |v: OpView<'_>| {
            makespan_us = makespan_us.max(v.end_us());
            *op_counts.entry(v.op.op.mnemonic()).or_insert(0) += 1;
            let zones_involved = v.op.sites.len() + usize::from(v.op.junction.is_some());
            active_zone_seconds += v.op.duration_us * 1e-6 * zones_involved as f64;
            total_ops += 1;
            measure_ops += usize::from(v.op.op == NativeOp::MeasureZ);
        });
        let execution_time_s = makespan_us * 1e-6;

        // Bounding box of every fine coordinate touched (zones and junctions),
        // converted to physical area: each fine step is one zone pitch.
        let area_m2 = {
            let all: Vec<_> = zones.iter().copied().chain(junctions.iter().copied()).collect();
            if all.is_empty() {
                0.0
            } else {
                let rmin = all.iter().map(|s| s.row).min().unwrap();
                let rmax = all.iter().map(|s| s.row).max().unwrap();
                let cmin = all.iter().map(|s| s.col).min().unwrap();
                let cmax = all.iter().map(|s| s.col).max().unwrap();
                let height = (rmax - rmin + 1) as f64 * spec.zone_pitch_m;
                let width = (cmax - cmin + 1) as f64 * spec.zone_pitch_m;
                height * width
            }
        };

        // Sanity: the circuit must fit on the layout it claims to use.
        debug_assert!(zones.iter().all(|&z| layout.contains(z)));

        ResourceReport {
            execution_time_s,
            area_m2,
            spacetime_volume_s_m2: execution_time_s * area_m2,
            trapping_zones: zones.len(),
            junctions: junctions.len(),
            zone_seconds: zones.len() as f64 * execution_time_s,
            active_zone_seconds,
            op_counts,
            total_ops,
            measurements: stream.measurement_count().max(measure_ops),
        }
    }

    /// Serializes the report as an exact, line-oriented `key=value` record.
    ///
    /// Float fields use shortest-round-trip (`{:?}`) formatting, so
    /// [`ResourceReport::from_record`] reproduces the report **bit for
    /// bit** — the format is the persistence layer of the on-disk compile
    /// cache, where a lossy round trip would silently change published
    /// numbers between cold and warm runs.
    pub fn to_record(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("execution_time_s={:?}\n", self.execution_time_s));
        out.push_str(&format!("area_m2={:?}\n", self.area_m2));
        out.push_str(&format!("spacetime_volume_s_m2={:?}\n", self.spacetime_volume_s_m2));
        out.push_str(&format!("trapping_zones={}\n", self.trapping_zones));
        out.push_str(&format!("junctions={}\n", self.junctions));
        out.push_str(&format!("zone_seconds={:?}\n", self.zone_seconds));
        out.push_str(&format!("active_zone_seconds={:?}\n", self.active_zone_seconds));
        out.push_str(&format!("total_ops={}\n", self.total_ops));
        out.push_str(&format!("measurements={}\n", self.measurements));
        out.push_str("op_counts=");
        for (i, (op, n)) in self.op_counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{op}:{n}"));
        }
        out.push('\n');
        out
    }

    /// Parses a record produced by [`ResourceReport::to_record`].
    ///
    /// Every field must be present exactly once and parse cleanly;
    /// operation names must belong to the native gate set (they are
    /// re-interned onto the [`NativeOp`] mnemonic table). Anything else —
    /// truncation, unknown keys, malformed numbers, alien op names — is a
    /// [`RecordError`], which persistent-cache consumers treat as a corrupt
    /// entry to recompute, never as data to trust.
    pub fn from_record(text: &str) -> Result<ResourceReport, RecordError> {
        let mut fields: std::collections::HashMap<&str, &str> = std::collections::HashMap::new();
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| RecordError::new(format!("line {line:?} is not key=value")))?;
            if fields.insert(key, value).is_some() {
                return Err(RecordError::new(format!("duplicate field {key:?}")));
            }
        }
        fn take<'a>(
            fields: &std::collections::HashMap<&str, &'a str>,
            key: &str,
        ) -> Result<&'a str, RecordError> {
            fields
                .get(key)
                .copied()
                .ok_or_else(|| RecordError::new(format!("missing field {key:?}")))
        }
        fn num<T: std::str::FromStr>(
            fields: &std::collections::HashMap<&str, &str>,
            key: &str,
        ) -> Result<T, RecordError> {
            let raw = take(fields, key)?;
            raw.parse()
                .map_err(|_| RecordError::new(format!("field {key:?} ({raw:?}) is malformed")))
        }
        let mut op_counts = BTreeMap::new();
        let raw_counts = take(&fields, "op_counts")?;
        if !raw_counts.is_empty() {
            for pair in raw_counts.split(',') {
                let (name, count) = pair.split_once(':').ok_or_else(|| {
                    RecordError::new(format!("op_counts entry {pair:?} is not name:count"))
                })?;
                let interned = NativeOp::all()
                    .iter()
                    .map(|op| op.mnemonic())
                    .find(|m| *m == name)
                    .ok_or_else(|| RecordError::new(format!("unknown native op {name:?}")))?;
                let count: usize = count.parse().map_err(|_| {
                    RecordError::new(format!("op count {count:?} for {name:?} is malformed"))
                })?;
                if op_counts.insert(interned, count).is_some() {
                    return Err(RecordError::new(format!("duplicate op count for {name:?}")));
                }
            }
        }
        Ok(ResourceReport {
            execution_time_s: num(&fields, "execution_time_s")?,
            area_m2: num(&fields, "area_m2")?,
            spacetime_volume_s_m2: num(&fields, "spacetime_volume_s_m2")?,
            trapping_zones: num(&fields, "trapping_zones")?,
            junctions: num(&fields, "junctions")?,
            zone_seconds: num(&fields, "zone_seconds")?,
            active_zone_seconds: num(&fields, "active_zone_seconds")?,
            op_counts,
            total_ops: num(&fields, "total_ops")?,
            measurements: num(&fields, "measurements")?,
        })
    }

    /// Multi-line human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("execution time      : {:.6} s\n", self.execution_time_s));
        out.push_str(&format!("grid area           : {:.3e} m^2\n", self.area_m2));
        out.push_str(&format!("space-time volume   : {:.3e} s*m^2\n", self.spacetime_volume_s_m2));
        out.push_str(&format!("trapping zones      : {}\n", self.trapping_zones));
        out.push_str(&format!("junctions traversed : {}\n", self.junctions));
        out.push_str(&format!("zone-seconds        : {:.6}\n", self.zone_seconds));
        out.push_str(&format!("active zone-seconds : {:.6}\n", self.active_zone_seconds));
        out.push_str(&format!("native operations   : {}\n", self.total_ops));
        out.push_str(&format!("measurements        : {}\n", self.measurements));
        for (name, count) in &self.op_counts {
            out.push_str(&format!("  {name:<10} x {count}\n"));
        }
        out
    }
}

/// A malformed [`ResourceReport`] record (see
/// [`ResourceReport::from_record`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordError {
    /// What was wrong with the record.
    pub message: String,
}

impl RecordError {
    fn new(message: impl Into<String>) -> Self {
        RecordError { message: message.into() }
    }
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed resource record: {}", self.message)
    }
}

impl std::error::Error for RecordError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::HardwareModel;
    use tiscc_grid::{QSite, ZONE_WIDTH_M};

    #[test]
    fn record_round_trips_bit_for_bit() {
        let mut hw = HardwareModel::new(1, 1);
        let q = hw.place_qubit(QSite::new(0, 1)).unwrap();
        hw.prepare_z(q).unwrap();
        hw.apply_1q(NativeOp::XPi2, q).unwrap();
        hw.measure_z(q, "final").unwrap();
        let layout = hw.grid().layout().clone();
        let report = ResourceReport::from_circuit(hw.circuit(), &layout);
        let parsed = ResourceReport::from_record(&report.to_record()).unwrap();
        assert_eq!(parsed, report);
        // The float fields survive exactly, not approximately.
        assert_eq!(parsed.execution_time_s.to_bits(), report.execution_time_s.to_bits());
        assert_eq!(parsed.area_m2.to_bits(), report.area_m2.to_bits());
    }

    #[test]
    fn malformed_records_are_rejected() {
        let mut hw = HardwareModel::new(1, 1);
        let q = hw.place_qubit(QSite::new(0, 1)).unwrap();
        hw.prepare_z(q).unwrap();
        let layout = hw.grid().layout().clone();
        let record = ResourceReport::from_circuit(hw.circuit(), &layout).to_record();

        // Truncation drops required fields.
        let truncated = &record[..record.len() / 2];
        assert!(ResourceReport::from_record(truncated).is_err());
        // An op name outside the native gate set cannot be interned.
        let alien = record.replace("Prepare_Z", "Warp_Drive");
        let err = ResourceReport::from_record(&alien).unwrap_err();
        assert!(err.to_string().contains("Warp_Drive"), "{err}");
        // A non-numeric numeric field is rejected.
        let garbled = record.replace("trapping_zones=", "trapping_zones=x");
        assert!(ResourceReport::from_record(&garbled).is_err());
        // Duplicate fields are rejected rather than last-wins.
        let doubled = format!("{record}total_ops=7\n");
        assert!(ResourceReport::from_record(&doubled).is_err());
    }

    #[test]
    fn empty_op_counts_round_trip() {
        let report = ResourceReport {
            execution_time_s: 0.5,
            area_m2: 1e-6,
            spacetime_volume_s_m2: 5e-7,
            trapping_zones: 2,
            junctions: 1,
            zone_seconds: 1.0,
            active_zone_seconds: 0.25,
            op_counts: BTreeMap::new(),
            total_ops: 0,
            measurements: 0,
        };
        assert_eq!(ResourceReport::from_record(&report.to_record()).unwrap(), report);
    }

    #[test]
    fn report_counts_basic_quantities() {
        let mut hw = HardwareModel::new(1, 1);
        let q = hw.place_qubit(QSite::new(0, 1)).unwrap();
        hw.prepare_z(q).unwrap();
        hw.apply_1q(NativeOp::XPi2, q).unwrap();
        hw.measure_z(q, "final").unwrap();
        let layout = hw.grid().layout().clone();
        let report = ResourceReport::from_circuit(hw.circuit(), &layout);

        assert!((report.execution_time_s - 140e-6).abs() < 1e-12);
        assert_eq!(report.trapping_zones, 1);
        assert_eq!(report.junctions, 0);
        assert_eq!(report.total_ops, 3);
        assert_eq!(report.measurements, 1);
        assert_eq!(report.op_counts["Prepare_Z"], 1);
        assert_eq!(report.op_counts["Measure_Z"], 1);
        // One zone touched -> bounding box is a single pitch square.
        assert!((report.area_m2 - ZONE_WIDTH_M * ZONE_WIDTH_M).abs() < 1e-15);
        // All ops involve one zone, so active zone-seconds equals total busy time.
        assert!((report.active_zone_seconds - 140e-6).abs() < 1e-12);
        assert!((report.zone_seconds - 140e-6).abs() < 1e-12);
        assert!(
            (report.spacetime_volume_s_m2 - report.execution_time_s * report.area_m2).abs() < 1e-18
        );
    }

    #[test]
    fn transport_enlarges_area_and_counts_junctions() {
        let mut hw = HardwareModel::new(2, 2);
        let q = hw.place_qubit(QSite::new(0, 1)).unwrap();
        hw.route_and_move(q, QSite::new(4, 1)).unwrap();
        let layout = hw.grid().layout().clone();
        let report = ResourceReport::from_circuit(hw.circuit(), &layout);
        assert!(report.junctions >= 1);
        assert!(report.trapping_zones >= 2);
        assert!(report.area_m2 > ZONE_WIDTH_M * ZONE_WIDTH_M);
    }

    #[test]
    fn area_follows_the_profile_pitch() {
        let mut spec = HardwareSpec::h1();
        spec.zone_pitch_m *= 2.0;
        let mut hw = HardwareModel::with_spec(1, 1, spec);
        let q = hw.place_qubit(QSite::new(0, 1)).unwrap();
        hw.prepare_z(q).unwrap();
        let report = hw.resource_report();
        // Doubling the pitch quadruples the single-zone bounding-box area.
        assert!((report.area_m2 - 4.0 * ZONE_WIDTH_M * ZONE_WIDTH_M).abs() < 1e-15);
    }

    #[test]
    fn render_mentions_every_counter() {
        let mut hw = HardwareModel::new(1, 1);
        let q = hw.place_qubit(QSite::new(0, 1)).unwrap();
        hw.prepare_z(q).unwrap();
        let layout = hw.grid().layout().clone();
        let report = ResourceReport::from_circuit(hw.circuit(), &layout);
        let text = report.render();
        for needle in [
            "execution time",
            "grid area",
            "space-time volume",
            "trapping zones",
            "zone-seconds",
            "active zone-seconds",
            "Prepare_Z",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}

//! The hardware model: compiles requested gates into scheduled native
//! operations on the trapped-ion grid.
//!
//! `HardwareModel` mirrors the class of the same name in the paper
//! (Appendix B.1): it "defines a set of native hardware operations and
//! related parameters, compiles gates requested by `LogicalQubit` to the
//! native gate set and adds native gates to a time-resolved hardware
//! circuit". Scheduling is ASAP: every emitted operation starts as soon as
//! all ions, zones and junctions it needs are free and the current barrier
//! has passed. Junction conflicts are therefore resolved by serialising the
//! conflicting hops, exactly as described in paper Sec. 3.3.

use std::collections::HashMap;

use tiscc_grid::{route_avoiding, GridError, GridManager, MoveStep, QSite, QubitId, SiteKind};

use crate::circuit::{Circuit, MeasurementRecord, TimedOp};
use crate::ops::NativeOp;
use crate::resources::ResourceReport;
use crate::spec::HardwareSpec;

/// Errors raised while compiling onto the hardware model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HwError {
    /// An occupancy or addressing error from the grid layer.
    Grid(GridError),
    /// A two-qubit gate was requested between ions that are not in adjacent
    /// trapping zones.
    NotAdjacent(QSite, QSite),
    /// No route exists between the two zones (e.g. every path is blocked).
    NoRoute(QSite, QSite),
}

impl From<GridError> for HwError {
    fn from(e: GridError) -> Self {
        HwError::Grid(e)
    }
}

impl std::fmt::Display for HwError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HwError::Grid(e) => write!(f, "grid error: {e}"),
            HwError::NotAdjacent(a, b) => {
                write!(f, "two-qubit gate requested between non-adjacent zones {a} and {b}")
            }
            HwError::NoRoute(a, b) => write!(f, "no route from {a} to {b}"),
        }
    }
}

impl std::error::Error for HwError {}

/// Builder of time-resolved hardware circuits over a [`GridManager`].
#[derive(Clone, Debug)]
pub struct HardwareModel {
    grid: GridManager,
    circuit: Circuit,
    site_busy: HashMap<QSite, f64>,
    qubit_busy: HashMap<QubitId, f64>,
    junction_busy: HashMap<QSite, f64>,
    barrier_us: f64,
    spec: HardwareSpec,
}

impl HardwareModel {
    /// A model over a fresh grid of `unit_rows × unit_cols` repeating units,
    /// under the paper-faithful default profile ([`HardwareSpec::h1`]).
    pub fn new(unit_rows: u32, unit_cols: u32) -> Self {
        HardwareModel::with_spec(unit_rows, unit_cols, HardwareSpec::default())
    }

    /// A model over a fresh grid, compiling under the given hardware
    /// profile: every emitted operation takes the duration `spec` assigns it.
    pub fn with_spec(unit_rows: u32, unit_cols: u32, spec: HardwareSpec) -> Self {
        HardwareModel {
            grid: GridManager::new(unit_rows, unit_cols),
            circuit: Circuit::new(),
            site_busy: HashMap::new(),
            qubit_busy: HashMap::new(),
            junction_busy: HashMap::new(),
            barrier_us: 0.0,
            spec,
        }
    }

    /// The hardware profile this model compiles against.
    pub fn spec(&self) -> &HardwareSpec {
        &self.spec
    }

    /// The grid manager (read access).
    pub fn grid(&self) -> &GridManager {
        &self.grid
    }

    /// Space-time resource report of the circuit compiled so far, accounted
    /// under this model's hardware profile.
    pub fn resource_report(&self) -> ResourceReport {
        ResourceReport::from_circuit_with_spec(&self.circuit, self.grid.layout(), &self.spec)
    }

    /// The circuit compiled so far.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Consumes the model and returns the compiled circuit.
    pub fn into_circuit(self) -> Circuit {
        self.circuit
    }

    /// Current makespan of the compiled circuit in microseconds.
    pub fn now_us(&self) -> f64 {
        self.circuit.makespan_us()
    }

    /// Loads a new ion at `site`.
    pub fn place_qubit(&mut self, site: QSite) -> Result<QubitId, HwError> {
        Ok(self.grid.place_qubit(site)?)
    }

    /// Removes an ion from the grid (its zone becomes reusable).
    pub fn remove_qubit(&mut self, qubit: QubitId) -> Result<QSite, HwError> {
        Ok(self.grid.remove_qubit(qubit)?)
    }

    /// Inserts a global barrier: every subsequently emitted operation starts
    /// no earlier than the current makespan. Used between rounds of error
    /// correction so that logical time-steps are cleanly separated.
    pub fn barrier(&mut self) {
        self.barrier_us = self.now_us();
    }

    /// The position of `qubit`, or an error if it is not on the grid.
    pub fn position_of(&self, qubit: QubitId) -> Result<QSite, HwError> {
        self.grid.position_of(qubit).ok_or(HwError::Grid(GridError::UnknownQubit(qubit)))
    }

    fn ready_time(&self, qubits: &[QubitId], sites: &[QSite], junction: Option<QSite>) -> f64 {
        let mut t = self.barrier_us;
        for q in qubits {
            t = t.max(*self.qubit_busy.get(q).unwrap_or(&0.0));
        }
        for s in sites {
            t = t.max(*self.site_busy.get(s).unwrap_or(&0.0));
        }
        if let Some(j) = junction {
            t = t.max(*self.junction_busy.get(&j).unwrap_or(&0.0));
        }
        t
    }

    fn emit(
        &mut self,
        op: NativeOp,
        qubits: Vec<QubitId>,
        sites: Vec<QSite>,
        junction: Option<QSite>,
        measurement: Option<usize>,
    ) -> f64 {
        let duration = op.duration_us(&self.spec);
        let start = self.ready_time(&qubits, &sites, junction);
        let end = start + duration;
        for q in &qubits {
            self.qubit_busy.insert(*q, end);
        }
        for s in &sites {
            self.site_busy.insert(*s, end);
        }
        if let Some(j) = junction {
            self.junction_busy.insert(j, end);
        }
        self.circuit.push(TimedOp {
            op,
            sites,
            qubits,
            start_us: start,
            duration_us: duration,
            junction,
            measurement,
        });
        start
    }

    /// Applies a single-qubit native gate to the ion's current zone.
    pub fn apply_1q(&mut self, op: NativeOp, qubit: QubitId) -> Result<(), HwError> {
        debug_assert_eq!(op.arity(), 1, "apply_1q used with a two-site op");
        let site = self.position_of(qubit)?;
        self.emit(op, vec![qubit], vec![site], None, None);
        Ok(())
    }

    /// Prepares the ion in |0⟩.
    pub fn prepare_z(&mut self, qubit: QubitId) -> Result<(), HwError> {
        self.apply_1q(NativeOp::PrepareZ, qubit)
    }

    /// Prepares the ion in |+⟩ (`Prepare_Z` followed by a native Hadamard).
    pub fn prepare_x(&mut self, qubit: QubitId) -> Result<(), HwError> {
        self.prepare_z(qubit)?;
        self.hadamard(qubit)
    }

    /// Measures the ion in the Z basis; returns the measurement index.
    pub fn measure_z(&mut self, qubit: QubitId, label: &str) -> Result<usize, HwError> {
        let site = self.position_of(qubit)?;
        let idx = self.circuit.push_measurement(MeasurementRecord {
            index: 0,
            qubit,
            site,
            start_us: 0.0,
            label: label.to_string(),
        });
        let start = self.emit(NativeOp::MeasureZ, vec![qubit], vec![site], None, Some(idx));
        // Patch the recorded start time now that the schedule is known.
        if let Some(rec) = self.circuit.measurements().get(idx) {
            let mut rec = rec.clone();
            rec.start_us = start;
            self.circuit.replace_measurement(idx, rec);
        }
        Ok(idx)
    }

    /// Measures the ion in the X basis (native Hadamard, then `Measure_Z`).
    pub fn measure_x(&mut self, qubit: QubitId, label: &str) -> Result<usize, HwError> {
        self.hadamard(qubit)?;
        self.measure_z(qubit, label)
    }

    /// The Hadamard gate compiled to natives: `H ≅ Y_{π/4} · Z_{π/2}`
    /// (apply `Z_{π/2}` first, then `Y_{π/4}`), following the Quantinuum H1
    /// construction of single-qubit Cliffords from a Z rotation and one
    /// X-Y-plane pulse.
    pub fn hadamard(&mut self, qubit: QubitId) -> Result<(), HwError> {
        self.apply_1q(NativeOp::ZPi2, qubit)?;
        self.apply_1q(NativeOp::YPi4, qubit)
    }

    /// Pauli X as the native `X_{π/2}` pulse (equal up to global phase).
    pub fn pauli_x(&mut self, qubit: QubitId) -> Result<(), HwError> {
        self.apply_1q(NativeOp::XPi2, qubit)
    }

    /// Pauli Y as the native `Y_{π/2}` pulse.
    pub fn pauli_y(&mut self, qubit: QubitId) -> Result<(), HwError> {
        self.apply_1q(NativeOp::YPi2, qubit)
    }

    /// Pauli Z as the native `Z_{π/2}` pulse.
    pub fn pauli_z(&mut self, qubit: QubitId) -> Result<(), HwError> {
        self.apply_1q(NativeOp::ZPi2, qubit)
    }

    /// The S gate (`Z_{π/4}` up to global phase).
    pub fn s_gate(&mut self, qubit: QubitId) -> Result<(), HwError> {
        self.apply_1q(NativeOp::ZPi4, qubit)
    }

    /// The S† gate.
    pub fn s_dag(&mut self, qubit: QubitId) -> Result<(), HwError> {
        self.apply_1q(NativeOp::ZPi4Dag, qubit)
    }

    /// The T gate (`Z_{π/8}` up to global phase) — the only non-Clifford.
    pub fn t_gate(&mut self, qubit: QubitId) -> Result<(), HwError> {
        self.apply_1q(NativeOp::ZPi8, qubit)
    }

    /// Applies the native `(ZZ)_{π/4}` interaction between two ions, which
    /// must sit in adjacent trapping zones.
    pub fn apply_zz(&mut self, a: QubitId, b: QubitId) -> Result<(), HwError> {
        let sa = self.position_of(a)?;
        let sb = self.position_of(b)?;
        if !self.are_adjacent_zones(sa, sb) {
            return Err(HwError::NotAdjacent(sa, sb));
        }
        self.emit(NativeOp::ZZ, vec![a, b], vec![sa, sb], None, None);
        Ok(())
    }

    /// CNOT compiled to natives following the H1 construction:
    /// `CNOT(c,t) = H_t · [ (ZZ)_{π/4} · Z_{-π/4}(c) · Z_{-π/4}(t) ] · H_t`
    /// (the bracketed factors are diagonal and mutually commuting). The two
    /// ions must sit in adjacent zones.
    pub fn cnot(&mut self, control: QubitId, target: QubitId) -> Result<(), HwError> {
        self.hadamard(target)?;
        self.apply_1q(NativeOp::ZPi4Dag, control)?;
        self.apply_1q(NativeOp::ZPi4Dag, target)?;
        self.apply_zz(control, target)?;
        self.hadamard(target)
    }

    fn are_adjacent_zones(&self, a: QSite, b: QSite) -> bool {
        self.grid.layout().neighbors(a).contains(&b)
    }

    /// Emits the transport operations for a pre-computed route and updates
    /// ion positions step by step.
    pub fn move_along(&mut self, qubit: QubitId, steps: &[MoveStep]) -> Result<(), HwError> {
        for step in steps {
            match *step {
                MoveStep::Shuttle { from, to } => {
                    self.grid.step_qubit(qubit, to)?;
                    self.emit(NativeOp::Move, vec![qubit], vec![from, to], None, None);
                }
                MoveStep::JunctionHop { from, to, junction } => {
                    self.grid.step_qubit(qubit, to)?;
                    self.emit(
                        NativeOp::JunctionMove,
                        vec![qubit],
                        vec![from, to],
                        Some(junction),
                        None,
                    );
                }
            }
        }
        Ok(())
    }

    /// Routes `qubit` to `dest`, avoiding every zone currently occupied by
    /// another ion, and emits the transport operations.
    pub fn route_and_move(&mut self, qubit: QubitId, dest: QSite) -> Result<(), HwError> {
        let from = self.position_of(qubit)?;
        if from == dest {
            return Ok(());
        }
        let blocked: std::collections::HashSet<QSite> =
            self.grid.snapshot().into_iter().filter(|&(q, _)| q != qubit).map(|(_, s)| s).collect();
        let steps = route_avoiding(self.grid.layout(), from, dest, &blocked)
            .ok_or(HwError::NoRoute(from, dest))?;
        self.move_along(qubit, &steps)
    }

    /// True if `site` is an operation or memory zone free of ions.
    pub fn is_free_zone(&self, site: QSite) -> bool {
        self.grid.is_free(site)
            && matches!(
                self.grid.layout().site_kind(site),
                Some(SiteKind::Memory) | Some(SiteKind::Operation)
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_qubit_gates_are_scheduled_sequentially_per_ion() {
        let mut hw = HardwareModel::new(1, 1);
        let q = hw.place_qubit(QSite::new(0, 1)).unwrap();
        hw.prepare_z(q).unwrap();
        hw.apply_1q(NativeOp::XPi2, q).unwrap();
        hw.apply_1q(NativeOp::ZPi2, q).unwrap();
        let ops = hw.circuit().ops();
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[0].start_us, 0.0);
        assert_eq!(ops[1].start_us, 10.0);
        assert_eq!(ops[2].start_us, 20.0);
        assert!((hw.now_us() - 23.0).abs() < 1e-9);
    }

    #[test]
    fn independent_ions_run_in_parallel() {
        let mut hw = HardwareModel::new(1, 2);
        let a = hw.place_qubit(QSite::new(0, 1)).unwrap();
        let b = hw.place_qubit(QSite::new(0, 5)).unwrap();
        hw.prepare_z(a).unwrap();
        hw.prepare_z(b).unwrap();
        let ops = hw.circuit().ops();
        assert_eq!(ops[0].start_us, 0.0);
        assert_eq!(ops[1].start_us, 0.0, "ops on different ions/zones overlap in time");
        assert!((hw.now_us() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn barrier_serialises_rounds() {
        let mut hw = HardwareModel::new(1, 2);
        let a = hw.place_qubit(QSite::new(0, 1)).unwrap();
        let b = hw.place_qubit(QSite::new(0, 5)).unwrap();
        hw.prepare_z(a).unwrap();
        hw.barrier();
        hw.prepare_z(b).unwrap();
        let ops = hw.circuit().ops();
        assert_eq!(ops[1].start_us, 10.0);
    }

    #[test]
    fn zz_requires_adjacency() {
        let mut hw = HardwareModel::new(1, 2);
        let a = hw.place_qubit(QSite::new(0, 1)).unwrap();
        let b = hw.place_qubit(QSite::new(0, 5)).unwrap();
        assert!(matches!(hw.apply_zz(a, b), Err(HwError::NotAdjacent(_, _))));
        // After routing b next to a, the gate succeeds.
        hw.route_and_move(b, QSite::new(0, 2)).unwrap();
        hw.apply_zz(a, b).unwrap();
        assert_eq!(hw.circuit().count_of(NativeOp::ZZ), 1);
    }

    #[test]
    fn junction_conflicts_are_serialised() {
        let mut hw = HardwareModel::new(2, 2);
        // Two ions that both need to hop through the junction at (0,4).
        let a = hw.place_qubit(QSite::new(0, 3)).unwrap();
        let b = hw.place_qubit(QSite::new(1, 4)).unwrap();
        hw.move_along(
            a,
            &[MoveStep::JunctionHop {
                from: QSite::new(0, 3),
                to: QSite::new(0, 5),
                junction: QSite::new(0, 4),
            }],
        )
        .unwrap();
        hw.move_along(
            b,
            &[MoveStep::JunctionHop {
                from: QSite::new(1, 4),
                to: QSite::new(0, 3),
                junction: QSite::new(0, 4),
            }],
        )
        .unwrap();
        let ops = hw.circuit().ops();
        assert_eq!(ops.len(), 2);
        // The second hop cannot start before the first releases the junction.
        assert!(ops[1].start_us >= ops[0].end_us() - 1e-9);
    }

    #[test]
    fn measurement_records_are_labelled_and_timed() {
        let mut hw = HardwareModel::new(1, 1);
        let q = hw.place_qubit(QSite::new(0, 1)).unwrap();
        hw.prepare_z(q).unwrap();
        let idx = hw.measure_z(q, "data (0,0) final").unwrap();
        assert_eq!(idx, 0);
        let rec = &hw.circuit().measurements()[0];
        assert_eq!(rec.label, "data (0,0) final");
        assert!((rec.start_us - 10.0).abs() < 1e-9);
        assert_eq!(rec.qubit, q);
    }

    #[test]
    fn cnot_expands_to_expected_native_sequence() {
        let mut hw = HardwareModel::new(1, 1);
        let c = hw.place_qubit(QSite::new(0, 1)).unwrap();
        let t = hw.place_qubit(QSite::new(0, 2)).unwrap();
        hw.cnot(c, t).unwrap();
        let kinds: Vec<NativeOp> = hw.circuit().ops().iter().map(|o| o.op).collect();
        assert_eq!(
            kinds,
            vec![
                NativeOp::ZPi2,
                NativeOp::YPi4,
                NativeOp::ZPi4Dag,
                NativeOp::ZPi4Dag,
                NativeOp::ZZ,
                NativeOp::ZPi2,
                NativeOp::YPi4,
            ]
        );
    }

    #[test]
    fn schedule_follows_the_hardware_profile() {
        let spec = HardwareSpec::h1().scale_durations(2.0);
        let mut hw = HardwareModel::with_spec(1, 1, spec);
        let q = hw.place_qubit(QSite::new(0, 1)).unwrap();
        hw.prepare_z(q).unwrap();
        hw.apply_1q(NativeOp::XPi2, q).unwrap();
        let ops = hw.circuit().ops();
        assert_eq!(ops[0].duration_us, 20.0);
        assert_eq!(ops[1].start_us, 20.0);
        assert!((hw.now_us() - 40.0).abs() < 1e-9);
        assert_eq!(hw.spec().name, "h1*2");
    }

    #[test]
    fn route_and_move_emits_transport_and_updates_position() {
        let mut hw = HardwareModel::new(2, 2);
        let q = hw.place_qubit(QSite::new(0, 1)).unwrap();
        hw.route_and_move(q, QSite::new(1, 4)).unwrap();
        assert_eq!(hw.grid().position_of(q), Some(QSite::new(1, 4)));
        assert!(hw.circuit().count_of(NativeOp::JunctionMove) >= 1);
    }
}

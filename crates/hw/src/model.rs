//! The hardware model: compiles requested gates into scheduled native
//! operations on the trapped-ion grid.
//!
//! `HardwareModel` mirrors the class of the same name in the paper
//! (Appendix B.1): it "defines a set of native hardware operations and
//! related parameters, compiles gates requested by `LogicalQubit` to the
//! native gate set and adds native gates to a time-resolved hardware
//! circuit". Scheduling is ASAP: every emitted operation starts as soon as
//! all ions, zones and junctions it needs are free and the current barrier
//! has passed. Junction conflicts are therefore resolved by serialising the
//! conflicting hops, exactly as described in paper Sec. 3.3.
//!
//! The contention rules themselves live in the explicit pass pipeline
//! ([`crate::passes`]): the model delegates every ready-time/occupancy
//! decision to a [`Scheduler`], which enforces
//! [`HardwareSpec::junction_capacity`] at schedule time and flags every op
//! that stalled waiting for a junction slot
//! ([`HardwareModel::junction_stalls`]).

use tiscc_grid::{route_avoiding_with, GridError, GridManager, MoveStep, QSite, QubitId, SiteKind};

use crate::circuit::{Circuit, MeasurementRecord, TimedOp};
use crate::label::Label;
use crate::ops::NativeOp;
use crate::passes::{SchedulePolicy, Scheduler};
use crate::resources::ResourceReport;
use crate::rounds::{replay_round, ReplicatedSpan};
use crate::spec::HardwareSpec;

/// Errors raised while compiling onto the hardware model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HwError {
    /// An occupancy or addressing error from the grid layer.
    Grid(GridError),
    /// A two-qubit gate was requested between ions that are not in adjacent
    /// trapping zones.
    NotAdjacent(QSite, QSite),
    /// No route exists between the two zones (e.g. every path is blocked).
    NoRoute(QSite, QSite),
}

impl From<GridError> for HwError {
    fn from(e: GridError) -> Self {
        HwError::Grid(e)
    }
}

impl std::fmt::Display for HwError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HwError::Grid(e) => write!(f, "grid error: {e}"),
            HwError::NotAdjacent(a, b) => {
                write!(f, "two-qubit gate requested between non-adjacent zones {a} and {b}")
            }
            HwError::NoRoute(a, b) => write!(f, "no route from {a} to {b}"),
        }
    }
}

impl std::error::Error for HwError {}

/// Summary of one analytic round replication (see
/// [`HardwareModel::replicate_captured_round`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundReplication {
    /// Native operations per round occurrence.
    pub ops_per_round: usize,
    /// Measurement records per round occurrence.
    pub meas_per_round: usize,
}

/// In-flight state of a round capture (between
/// [`HardwareModel::begin_round_capture`] and
/// [`HardwareModel::replicate_captured_round`]).
#[derive(Clone, Debug)]
struct CaptureState {
    op_start: usize,
    meas_start: usize,
    base_us: f64,
    snapshot: Vec<(QubitId, QSite)>,
    preds: Vec<Option<u32>>,
    poisoned: bool,
}

/// Builder of time-resolved hardware circuits over a [`GridManager`].
#[derive(Clone, Debug)]
pub struct HardwareModel {
    grid: GridManager,
    circuit: Circuit,
    // The scheduling pass: per-resource busy windows, the barrier, and the
    // junction-capacity contention rule.
    sched: Scheduler,
    // Per materialized op: did a saturated junction delay its start? Kept
    // beside the circuit (not on `TimedOp`) so the op encoding is unchanged.
    stall_flags: Vec<bool>,
    spec: HardwareSpec,
    templating: bool,
    capture: Option<CaptureState>,
    round_fallbacks: usize,
}

impl HardwareModel {
    /// A model over a fresh grid of `unit_rows × unit_cols` repeating units,
    /// under the paper-faithful default profile ([`HardwareSpec::h1`]).
    pub fn new(unit_rows: u32, unit_cols: u32) -> Self {
        HardwareModel::with_spec(unit_rows, unit_cols, HardwareSpec::default())
    }

    /// A model over a fresh grid, compiling under the given hardware
    /// profile: every emitted operation takes the duration `spec` assigns it.
    pub fn with_spec(unit_rows: u32, unit_cols: u32, spec: HardwareSpec) -> Self {
        HardwareModel {
            grid: GridManager::new(unit_rows, unit_cols),
            circuit: Circuit::new(),
            sched: Scheduler::new(spec.junction_capacity, spec.junction_recovery_us),
            stall_flags: Vec::new(),
            spec,
            templating: false,
            capture: None,
            round_fallbacks: 0,
        }
    }

    /// Switches the scheduling pass's junction-contention rule. The default
    /// [`SchedulePolicy::Windowed`] rule is byte-identical to
    /// [`SchedulePolicy::Legacy`] at `junction_capacity == 1`; the legacy
    /// rule is kept as the oracle for the differential test harness.
    pub fn set_schedule_policy(&mut self, policy: SchedulePolicy) {
        self.sched.set_policy(policy);
    }

    /// The active junction-contention rule.
    pub fn schedule_policy(&self) -> SchedulePolicy {
        self.sched.policy()
    }

    /// Number of materialized ops that *junction-stalled* — waited on a
    /// junction beyond pure transit exclusivity, either into a recovery
    /// (recool) window ([`HardwareSpec::junction_recovery_us`] > 0) or
    /// behind a hop that was itself junction-delayed (see
    /// [`Slot::junction_stall`](crate::passes::Slot::junction_stall)).
    /// This is the scheduling pass's contention measure. Replicated rounds
    /// are not included (each replica repeats its captured round's stalls;
    /// consumers scale by the repeat count).
    pub fn junction_stalls(&self) -> usize {
        self.stall_flags.iter().filter(|&&s| s).count()
    }

    /// Per-materialized-op stall flags (parallel to `circuit().ops()`):
    /// `true` where the op junction-stalled (see
    /// [`HardwareModel::junction_stalls`]).
    pub fn stall_flags(&self) -> &[bool] {
        &self.stall_flags
    }

    /// How many round captures could not be proven replicable and fell back
    /// to materializing every round (see
    /// [`HardwareModel::replicate_captured_round`]). A non-zero count means
    /// the compiled circuit may contain syndrome rounds that left no
    /// [`ReplicatedSpan`], so round structure cannot be inferred from the
    /// spans alone — analytic consumers must treat the circuit as opaque.
    pub fn round_fallbacks(&self) -> usize {
        self.round_fallbacks
    }

    /// Enables (or disables) round templating: when on, round-compiling
    /// callers (the patch layer's idle/merge/extension loops) compile one
    /// representative syndrome-extraction round and replicate it
    /// analytically instead of materializing every round. Off by default —
    /// the verification harness simulates fully materialized circuits.
    pub fn set_round_templating(&mut self, on: bool) {
        self.templating = on;
    }

    /// True if round templating is enabled (see
    /// [`HardwareModel::set_round_templating`]).
    pub fn round_templating(&self) -> bool {
        self.templating
    }

    /// The hardware profile this model compiles against.
    pub fn spec(&self) -> &HardwareSpec {
        &self.spec
    }

    /// The grid manager (read access).
    pub fn grid(&self) -> &GridManager {
        &self.grid
    }

    /// Space-time resource report of the circuit compiled so far, accounted
    /// under this model's hardware profile.
    pub fn resource_report(&self) -> ResourceReport {
        ResourceReport::from_circuit_with_spec(&self.circuit, self.grid.layout(), &self.spec)
    }

    /// The circuit compiled so far.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Consumes the model and returns the compiled circuit.
    pub fn into_circuit(self) -> Circuit {
        self.circuit
    }

    /// Current makespan of the compiled circuit in microseconds.
    pub fn now_us(&self) -> f64 {
        self.circuit.makespan_us()
    }

    /// Loads a new ion at `site`.
    pub fn place_qubit(&mut self, site: QSite) -> Result<QubitId, HwError> {
        Ok(self.grid.place_qubit(site)?)
    }

    /// Removes an ion from the grid (its zone becomes reusable).
    pub fn remove_qubit(&mut self, qubit: QubitId) -> Result<QSite, HwError> {
        Ok(self.grid.remove_qubit(qubit)?)
    }

    /// Inserts a global barrier: every subsequently emitted operation starts
    /// no earlier than the current makespan. Used between rounds of error
    /// correction so that logical time-steps are cleanly separated.
    pub fn barrier(&mut self) {
        self.sched.barrier(self.now_us());
    }

    /// The position of `qubit`, or an error if it is not on the grid.
    pub fn position_of(&self, qubit: QubitId) -> Result<QSite, HwError> {
        self.grid.position_of(qubit).ok_or(HwError::Grid(GridError::UnknownQubit(qubit)))
    }

    fn emit(
        &mut self,
        op: NativeOp,
        qubits: Vec<QubitId>,
        sites: Vec<QSite>,
        junction: Option<QSite>,
        measurement: Option<usize>,
    ) -> f64 {
        let duration = op.duration_us(&self.spec);
        let slot = self.sched.ready(&qubits, &sites, junction);
        let (start, src) = (slot.start_us, slot.src);
        let end = start + duration;
        let op_idx = self.circuit.len();
        if let Some(cap) = &mut self.capture {
            let pred = match src {
                Some(j) if j >= cap.op_start => Some((j - cap.op_start) as u32),
                // A predecessor from before the captured round means the
                // round is not barrier-quiescent: refuse to replicate it.
                Some(_) => {
                    cap.poisoned = true;
                    None
                }
                None => None,
            };
            cap.preds.push(pred);
        }
        self.sched.occupy(&qubits, &sites, junction, end, op_idx);
        if slot.junction_bound {
            self.sched.note_junction_delay(op_idx);
        }
        self.stall_flags.push(slot.junction_stall);
        self.circuit.push(TimedOp {
            op,
            sites,
            qubits,
            start_us: start,
            duration_us: duration,
            junction,
            measurement,
        });
        start
    }

    // ----- round capture / analytic replication ------------------------------

    /// Starts capturing a syndrome-extraction round for analytic
    /// replication. Must be called at a barrier-quiescent point (right
    /// after [`HardwareModel::barrier`], with every ion at its round-start
    /// position); the round compiled next must end with a barrier.
    pub fn begin_round_capture(&mut self) {
        debug_assert!(self.capture.is_none(), "nested round capture");
        debug_assert!(
            self.sched.barrier_us() >= self.circuit.makespan_us(),
            "round capture must begin at a barrier-quiescent point"
        );
        self.capture = Some(CaptureState {
            op_start: self.circuit.len(),
            meas_start: self.circuit.measurements().len(),
            base_us: self.sched.barrier_us(),
            snapshot: self.grid.snapshot(),
            preds: Vec::new(),
            poisoned: false,
        });
    }

    /// Discards an in-flight round capture without replicating.
    pub fn cancel_round_capture(&mut self) {
        self.capture = None;
    }

    /// Ends the capture begun by [`HardwareModel::begin_round_capture`] and
    /// replays the captured round `extra` additional times analytically:
    /// replica measurement records are appended (times from a bit-exact
    /// schedule replay, labels re-numbered via [`Label::advance_round`]),
    /// the clock advances past the replicas, and the circuit records a
    /// [`ReplicatedSpan`] — but no operation is re-materialized.
    ///
    /// Returns `None` — leaving the model exactly as if no capture had
    /// happened — when the captured round is not provably replicable: it
    /// scheduled against pre-round operations, emitted nothing, or moved
    /// ions away from their round-start positions. Callers then fall back
    /// to materializing the remaining rounds.
    pub fn replicate_captured_round(&mut self, extra: usize) -> Option<RoundReplication> {
        let cap = self.capture.take()?;
        let op_end = self.circuit.len();
        if cap.poisoned || op_end == cap.op_start || self.grid.snapshot() != cap.snapshot {
            self.round_fallbacks += 1;
            return None;
        }
        let meas_per_round = self.circuit.measurements().len() - cap.meas_start;
        let info = RoundReplication { ops_per_round: op_end - cap.op_start, meas_per_round };
        if extra == 0 {
            return Some(info);
        }

        let (new_records, end_makespan) = {
            let ops = &self.circuit.ops()[cap.op_start..op_end];
            // (record index, op position) pairs of the captured round, in
            // record order (records are emitted monotonically with ops).
            let meas_ops: Vec<(usize, usize)> = ops
                .iter()
                .enumerate()
                .filter_map(|(pos, o)| o.measurement.map(|m| (m, pos)))
                .collect();
            debug_assert!(meas_ops
                .iter()
                .map(|&(m, _)| m)
                .eq(cap.meas_start..cap.meas_start + meas_per_round));
            let template_recs = &self.circuit.measurements()[cap.meas_start..];

            let mut base = ops.iter().map(TimedOp::end_us).fold(cap.base_us, f64::max);
            let (mut starts, mut ends) = (Vec::new(), Vec::new());
            let mut new_records = Vec::with_capacity(extra * meas_per_round);
            for r in 1..=extra {
                base = replay_round(
                    ops,
                    &cap.preds,
                    base,
                    self.spec.junction_recovery_us,
                    &mut starts,
                    &mut ends,
                );
                for &(m, pos) in &meas_ops {
                    let template = &template_recs[m - cap.meas_start];
                    new_records.push(MeasurementRecord {
                        index: 0, // assigned on push
                        qubit: template.qubit,
                        site: template.site,
                        start_us: starts[pos],
                        label: template.label.advance_round(r as u32),
                    });
                }
            }
            (new_records, base)
        };

        for rec in new_records {
            self.circuit.push_measurement(rec);
        }
        self.sched.barrier(end_makespan);
        self.circuit.push_span(ReplicatedSpan {
            op_start: cap.op_start,
            op_end,
            meas_start: cap.meas_start,
            meas_per_round,
            extra,
            base_us: cap.base_us,
            end_makespan_us: end_makespan,
            recovery_us: self.spec.junction_recovery_us,
            preds: cap.preds,
        });
        Some(info)
    }

    /// Applies a single-qubit native gate to the ion's current zone.
    pub fn apply_1q(&mut self, op: NativeOp, qubit: QubitId) -> Result<(), HwError> {
        debug_assert_eq!(op.arity(), 1, "apply_1q used with a two-site op");
        let site = self.position_of(qubit)?;
        self.emit(op, vec![qubit], vec![site], None, None);
        Ok(())
    }

    /// Prepares the ion in |0⟩.
    pub fn prepare_z(&mut self, qubit: QubitId) -> Result<(), HwError> {
        self.apply_1q(NativeOp::PrepareZ, qubit)
    }

    /// Prepares the ion in |+⟩ (`Prepare_Z` followed by a native Hadamard).
    pub fn prepare_x(&mut self, qubit: QubitId) -> Result<(), HwError> {
        self.prepare_z(qubit)?;
        self.hadamard(qubit)
    }

    /// Measures the ion in the Z basis; returns the measurement index.
    pub fn measure_z(&mut self, qubit: QubitId, label: impl Into<Label>) -> Result<usize, HwError> {
        let site = self.position_of(qubit)?;
        let idx = self.circuit.push_measurement(MeasurementRecord {
            index: 0,
            qubit,
            site,
            start_us: 0.0,
            label: label.into(),
        });
        let start = self.emit(NativeOp::MeasureZ, vec![qubit], vec![site], None, Some(idx));
        // Patch the recorded start time now that the schedule is known.
        if let Some(rec) = self.circuit.measurements().get(idx) {
            let mut rec = rec.clone();
            rec.start_us = start;
            self.circuit.replace_measurement(idx, rec);
        }
        Ok(idx)
    }

    /// Measures the ion in the X basis (native Hadamard, then `Measure_Z`).
    pub fn measure_x(&mut self, qubit: QubitId, label: impl Into<Label>) -> Result<usize, HwError> {
        self.hadamard(qubit)?;
        self.measure_z(qubit, label)
    }

    /// The Hadamard gate compiled to natives: `H ≅ Y_{π/4} · Z_{π/2}`
    /// (apply `Z_{π/2}` first, then `Y_{π/4}`), following the Quantinuum H1
    /// construction of single-qubit Cliffords from a Z rotation and one
    /// X-Y-plane pulse.
    pub fn hadamard(&mut self, qubit: QubitId) -> Result<(), HwError> {
        self.apply_1q(NativeOp::ZPi2, qubit)?;
        self.apply_1q(NativeOp::YPi4, qubit)
    }

    /// Pauli X as the native `X_{π/2}` pulse (equal up to global phase).
    pub fn pauli_x(&mut self, qubit: QubitId) -> Result<(), HwError> {
        self.apply_1q(NativeOp::XPi2, qubit)
    }

    /// Pauli Y as the native `Y_{π/2}` pulse.
    pub fn pauli_y(&mut self, qubit: QubitId) -> Result<(), HwError> {
        self.apply_1q(NativeOp::YPi2, qubit)
    }

    /// Pauli Z as the native `Z_{π/2}` pulse.
    pub fn pauli_z(&mut self, qubit: QubitId) -> Result<(), HwError> {
        self.apply_1q(NativeOp::ZPi2, qubit)
    }

    /// The S gate (`Z_{π/4}` up to global phase).
    pub fn s_gate(&mut self, qubit: QubitId) -> Result<(), HwError> {
        self.apply_1q(NativeOp::ZPi4, qubit)
    }

    /// The S† gate.
    pub fn s_dag(&mut self, qubit: QubitId) -> Result<(), HwError> {
        self.apply_1q(NativeOp::ZPi4Dag, qubit)
    }

    /// The T gate (`Z_{π/8}` up to global phase) — the only non-Clifford.
    pub fn t_gate(&mut self, qubit: QubitId) -> Result<(), HwError> {
        self.apply_1q(NativeOp::ZPi8, qubit)
    }

    /// Applies the native `(ZZ)_{π/4}` interaction between two ions, which
    /// must sit in adjacent trapping zones.
    pub fn apply_zz(&mut self, a: QubitId, b: QubitId) -> Result<(), HwError> {
        let sa = self.position_of(a)?;
        let sb = self.position_of(b)?;
        if !self.are_adjacent_zones(sa, sb) {
            return Err(HwError::NotAdjacent(sa, sb));
        }
        self.emit(NativeOp::ZZ, vec![a, b], vec![sa, sb], None, None);
        Ok(())
    }

    /// CNOT compiled to natives following the H1 construction:
    /// `CNOT(c,t) = H_t · [ (ZZ)_{π/4} · Z_{-π/4}(c) · Z_{-π/4}(t) ] · H_t`
    /// (the bracketed factors are diagonal and mutually commuting). The two
    /// ions must sit in adjacent zones.
    pub fn cnot(&mut self, control: QubitId, target: QubitId) -> Result<(), HwError> {
        self.hadamard(target)?;
        self.apply_1q(NativeOp::ZPi4Dag, control)?;
        self.apply_1q(NativeOp::ZPi4Dag, target)?;
        self.apply_zz(control, target)?;
        self.hadamard(target)
    }

    fn are_adjacent_zones(&self, a: QSite, b: QSite) -> bool {
        self.grid.layout().neighbors(a).contains(&b)
    }

    /// Emits the transport operations for a pre-computed route and updates
    /// ion positions step by step.
    pub fn move_along(&mut self, qubit: QubitId, steps: &[MoveStep]) -> Result<(), HwError> {
        for step in steps {
            match *step {
                MoveStep::Shuttle { from, to } => {
                    self.grid.step_qubit(qubit, to)?;
                    self.emit(NativeOp::Move, vec![qubit], vec![from, to], None, None);
                }
                MoveStep::JunctionHop { from, to, junction } => {
                    self.grid.step_qubit(qubit, to)?;
                    self.emit(
                        NativeOp::JunctionMove,
                        vec![qubit],
                        vec![from, to],
                        Some(junction),
                        None,
                    );
                }
            }
        }
        Ok(())
    }

    /// Routes `qubit` to `dest`, avoiding every zone currently occupied by
    /// another ion, and emits the transport operations.
    pub fn route_and_move(&mut self, qubit: QubitId, dest: QSite) -> Result<(), HwError> {
        let from = self.position_of(qubit)?;
        if from == dest {
            return Ok(());
        }
        let grid = &self.grid;
        let steps = route_avoiding_with(grid.layout(), from, dest, &|site| {
            grid.qubit_at(site).is_some_and(|q| q != qubit)
        })
        .ok_or(HwError::NoRoute(from, dest))?;
        self.move_along(qubit, &steps)
    }

    /// True if `site` is an operation or memory zone free of ions.
    pub fn is_free_zone(&self, site: QSite) -> bool {
        self.grid.is_free(site)
            && matches!(
                self.grid.layout().site_kind(site),
                Some(SiteKind::Memory) | Some(SiteKind::Operation)
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_qubit_gates_are_scheduled_sequentially_per_ion() {
        let mut hw = HardwareModel::new(1, 1);
        let q = hw.place_qubit(QSite::new(0, 1)).unwrap();
        hw.prepare_z(q).unwrap();
        hw.apply_1q(NativeOp::XPi2, q).unwrap();
        hw.apply_1q(NativeOp::ZPi2, q).unwrap();
        let ops = hw.circuit().ops();
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[0].start_us, 0.0);
        assert_eq!(ops[1].start_us, 10.0);
        assert_eq!(ops[2].start_us, 20.0);
        assert!((hw.now_us() - 23.0).abs() < 1e-9);
    }

    #[test]
    fn independent_ions_run_in_parallel() {
        let mut hw = HardwareModel::new(1, 2);
        let a = hw.place_qubit(QSite::new(0, 1)).unwrap();
        let b = hw.place_qubit(QSite::new(0, 5)).unwrap();
        hw.prepare_z(a).unwrap();
        hw.prepare_z(b).unwrap();
        let ops = hw.circuit().ops();
        assert_eq!(ops[0].start_us, 0.0);
        assert_eq!(ops[1].start_us, 0.0, "ops on different ions/zones overlap in time");
        assert!((hw.now_us() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn barrier_serialises_rounds() {
        let mut hw = HardwareModel::new(1, 2);
        let a = hw.place_qubit(QSite::new(0, 1)).unwrap();
        let b = hw.place_qubit(QSite::new(0, 5)).unwrap();
        hw.prepare_z(a).unwrap();
        hw.barrier();
        hw.prepare_z(b).unwrap();
        let ops = hw.circuit().ops();
        assert_eq!(ops[1].start_us, 10.0);
    }

    #[test]
    fn zz_requires_adjacency() {
        let mut hw = HardwareModel::new(1, 2);
        let a = hw.place_qubit(QSite::new(0, 1)).unwrap();
        let b = hw.place_qubit(QSite::new(0, 5)).unwrap();
        assert!(matches!(hw.apply_zz(a, b), Err(HwError::NotAdjacent(_, _))));
        // After routing b next to a, the gate succeeds.
        hw.route_and_move(b, QSite::new(0, 2)).unwrap();
        hw.apply_zz(a, b).unwrap();
        assert_eq!(hw.circuit().count_of(NativeOp::ZZ), 1);
    }

    #[test]
    fn junction_conflicts_are_serialised() {
        let mut hw = HardwareModel::new(2, 2);
        // Two ions that both need to hop through the junction at (0,4).
        let a = hw.place_qubit(QSite::new(0, 3)).unwrap();
        let b = hw.place_qubit(QSite::new(1, 4)).unwrap();
        hw.move_along(
            a,
            &[MoveStep::JunctionHop {
                from: QSite::new(0, 3),
                to: QSite::new(0, 5),
                junction: QSite::new(0, 4),
            }],
        )
        .unwrap();
        hw.move_along(
            b,
            &[MoveStep::JunctionHop {
                from: QSite::new(1, 4),
                to: QSite::new(0, 3),
                junction: QSite::new(0, 4),
            }],
        )
        .unwrap();
        let ops = hw.circuit().ops();
        assert_eq!(ops.len(), 2);
        // The second hop cannot start before the first releases the junction.
        assert!(ops[1].start_us >= ops[0].end_us() - 1e-9);
    }

    #[test]
    fn measurement_records_are_labelled_and_timed() {
        let mut hw = HardwareModel::new(1, 1);
        let q = hw.place_qubit(QSite::new(0, 1)).unwrap();
        hw.prepare_z(q).unwrap();
        let idx = hw.measure_z(q, "data (0,0) final").unwrap();
        assert_eq!(idx, 0);
        let rec = &hw.circuit().measurements()[0];
        assert_eq!(rec.label.render(), "data (0,0) final");
        assert!((rec.start_us - 10.0).abs() < 1e-9);
        assert_eq!(rec.qubit, q);
    }

    #[test]
    fn cnot_expands_to_expected_native_sequence() {
        let mut hw = HardwareModel::new(1, 1);
        let c = hw.place_qubit(QSite::new(0, 1)).unwrap();
        let t = hw.place_qubit(QSite::new(0, 2)).unwrap();
        hw.cnot(c, t).unwrap();
        let kinds: Vec<NativeOp> = hw.circuit().ops().iter().map(|o| o.op).collect();
        assert_eq!(
            kinds,
            vec![
                NativeOp::ZPi2,
                NativeOp::YPi4,
                NativeOp::ZPi4Dag,
                NativeOp::ZPi4Dag,
                NativeOp::ZZ,
                NativeOp::ZPi2,
                NativeOp::YPi4,
            ]
        );
    }

    #[test]
    fn schedule_follows_the_hardware_profile() {
        let spec = HardwareSpec::h1().scale_durations(2.0);
        let mut hw = HardwareModel::with_spec(1, 1, spec);
        let q = hw.place_qubit(QSite::new(0, 1)).unwrap();
        hw.prepare_z(q).unwrap();
        hw.apply_1q(NativeOp::XPi2, q).unwrap();
        let ops = hw.circuit().ops();
        assert_eq!(ops[0].duration_us, 20.0);
        assert_eq!(ops[1].start_us, 20.0);
        assert!((hw.now_us() - 40.0).abs() < 1e-9);
        assert_eq!(hw.spec().name, "h1*2");
    }

    #[test]
    fn captured_round_replicates_bit_exactly() {
        // A "round": prepare + measure on one ion, terminated by a barrier.
        let compile_round = |hw: &mut HardwareModel, q: QubitId, round: u32| {
            hw.prepare_z(q).unwrap();
            hw.measure_z(
                q,
                crate::label::Label::Syndrome {
                    round: crate::label::RoundLabel::Idle(round),
                    x_type: false,
                    row: 0,
                    col: 0,
                },
            )
            .unwrap();
            hw.barrier();
        };

        // Materialized reference: four rounds compiled normally.
        let mut reference = HardwareModel::new(1, 1);
        let q = reference.place_qubit(QSite::new(0, 1)).unwrap();
        for r in 0..4 {
            compile_round(&mut reference, q, r);
        }

        // Templated: round 0 compiled, round 1 captured, rounds 2–3 replicated.
        let mut templated = HardwareModel::new(1, 1);
        let q = templated.place_qubit(QSite::new(0, 1)).unwrap();
        compile_round(&mut templated, q, 0);
        templated.begin_round_capture();
        compile_round(&mut templated, q, 1);
        let info = templated.replicate_captured_round(2).expect("round is replicable");
        assert_eq!(info, RoundReplication { ops_per_round: 2, meas_per_round: 1 });

        assert_eq!(templated.circuit().len(), 4, "only two rounds materialized");
        assert_eq!(templated.circuit().logical_len(), 8);
        assert_eq!(templated.circuit().measurements().len(), 4);
        assert_eq!(
            templated.circuit().measurements()[3].label.render(),
            "idle round 3 Z cell (0, 0)"
        );
        assert_eq!(templated.now_us(), reference.now_us());

        // The materialization reproduces the reference schedule exactly.
        let flat = templated.circuit().materialize();
        assert_eq!(flat.ops(), reference.circuit().ops());
        assert_eq!(flat.measurements().len(), reference.circuit().measurements().len());
        for (a, b) in flat.measurements().iter().zip(reference.circuit().measurements()) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.start_us, b.start_us);
            assert_eq!(a.label.render(), b.label.render());
        }

        // Ops emitted after replication schedule exactly as in the reference.
        compile_round(&mut reference, q, 4);
        compile_round(&mut templated, q, 4);
        assert_eq!(templated.now_us(), reference.now_us());
        assert_eq!(
            templated.circuit().ops().last().unwrap().start_us,
            reference.circuit().ops().last().unwrap().start_us
        );
    }

    #[test]
    fn replication_refuses_non_quiescent_rounds() {
        let mut hw = HardwareModel::new(1, 2);
        let a = hw.place_qubit(QSite::new(0, 1)).unwrap();
        let b = hw.place_qubit(QSite::new(0, 5)).unwrap();
        hw.prepare_z(b).unwrap();
        hw.barrier();
        // A "round" that strands `a` away from its starting zone is not
        // position-neutral, so it must refuse to replicate.
        hw.begin_round_capture();
        hw.prepare_z(a).unwrap();
        hw.route_and_move(a, QSite::new(0, 2)).unwrap();
        hw.barrier();
        assert!(hw.replicate_captured_round(3).is_none(), "ion moved away from home");
        // An empty capture is refused too.
        hw.barrier();
        hw.begin_round_capture();
        hw.barrier();
        assert!(hw.replicate_captured_round(1).is_none());
    }

    #[test]
    fn route_and_move_emits_transport_and_updates_position() {
        let mut hw = HardwareModel::new(2, 2);
        let q = hw.place_qubit(QSite::new(0, 1)).unwrap();
        hw.route_and_move(q, QSite::new(1, 4)).unwrap();
        assert_eq!(hw.grid().position_of(q), Some(QSite::new(1, 4)));
        assert!(hw.circuit().count_of(NativeOp::JunctionMove) >= 1);
    }
}

//! Time-resolved hardware circuits.
//!
//! A [`Circuit`] is an ordered list of [`TimedOp`]s. The *stream order* of
//! the list defines logical (causal) order per ion and is what the simulator
//! replays; the `start_us` timestamps record the ASAP schedule used for
//! resource estimation and for junction-conflict resolution (paper Sec. 3.3–3.4).

use tiscc_grid::{QSite, QubitId};

use crate::ops::NativeOp;

/// One scheduled native operation.
#[derive(Clone, Debug, PartialEq)]
pub struct TimedOp {
    /// The native operation.
    pub op: NativeOp,
    /// The qsites addressed, in operand order. For transport this is
    /// `[from, to]`; for `ZZ` the two interacting zones; otherwise one site.
    pub sites: Vec<QSite>,
    /// The ions involved, in operand order (one ion for transport).
    pub qubits: Vec<QubitId>,
    /// Scheduled start time in microseconds.
    pub start_us: f64,
    /// Duration in microseconds.
    pub duration_us: f64,
    /// For junction moves: the junction exclusively held during the hop.
    pub junction: Option<QSite>,
    /// For `MeasureZ`: index into [`Circuit::measurements`].
    pub measurement: Option<usize>,
}

impl TimedOp {
    /// Scheduled end time in microseconds.
    pub fn end_us(&self) -> f64 {
        self.start_us + self.duration_us
    }
}

/// Record of one mid-circuit or final measurement, used by the verification
/// layer to connect simulated outcomes to post-processing rules (Sec. 4.5).
#[derive(Clone, Debug, PartialEq)]
pub struct MeasurementRecord {
    /// Sequential measurement index within the circuit.
    pub index: usize,
    /// The ion measured.
    pub qubit: QubitId,
    /// The zone where the measurement happened.
    pub site: QSite,
    /// Scheduled start time of the measurement.
    pub start_us: f64,
    /// Free-form label attached by the compiler (e.g. `"plaquette Z (1,2) round 0"`).
    pub label: String,
}

/// A compiled, time-resolved hardware circuit.
#[derive(Clone, Debug, Default)]
pub struct Circuit {
    ops: Vec<TimedOp>,
    measurements: Vec<MeasurementRecord>,
}

impl Circuit {
    /// An empty circuit.
    pub fn new() -> Self {
        Circuit::default()
    }

    /// Builds a circuit from a list of already-scheduled operations (used by
    /// the resource estimator to account for a sub-range of a larger compiled
    /// circuit). Measurement records are not carried over; counters that need
    /// them fall back to counting `Measure_Z` operations.
    pub fn from_ops(ops: Vec<TimedOp>) -> Self {
        Circuit { ops, measurements: Vec::new() }
    }

    /// Appends an operation (builder use only; prefer [`crate::HardwareModel`]).
    pub(crate) fn push(&mut self, op: TimedOp) {
        self.ops.push(op);
    }

    /// Appends a measurement record and returns its index.
    pub(crate) fn push_measurement(&mut self, mut rec: MeasurementRecord) -> usize {
        let idx = self.measurements.len();
        rec.index = idx;
        self.measurements.push(rec);
        idx
    }

    /// Replaces a measurement record once its schedule is known.
    pub(crate) fn replace_measurement(&mut self, idx: usize, rec: MeasurementRecord) {
        self.measurements[idx] = rec;
    }

    /// The operations in stream (causal) order.
    pub fn ops(&self) -> &[TimedOp] {
        &self.ops
    }

    /// The measurement records in emission order.
    pub fn measurements(&self) -> &[MeasurementRecord] {
        &self.measurements
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the circuit contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total wall-clock duration (makespan) in microseconds.
    pub fn makespan_us(&self) -> f64 {
        self.ops.iter().map(TimedOp::end_us).fold(0.0, f64::max)
    }

    /// Count of operations of a given kind.
    pub fn count_of(&self, op: NativeOp) -> usize {
        self.ops.iter().filter(|t| t.op == op).count()
    }

    /// Every distinct trapping zone touched by the circuit (junctions held
    /// during hops are not included; they are counted separately by the
    /// resource report).
    pub fn zones_touched(&self) -> std::collections::BTreeSet<QSite> {
        self.ops.iter().flat_map(|t| t.sites.iter().copied()).collect()
    }

    /// Every distinct junction traversed.
    pub fn junctions_touched(&self) -> std::collections::BTreeSet<QSite> {
        self.ops.iter().filter_map(|t| t.junction).collect()
    }

    /// Concatenates another circuit's operations after this one, offsetting
    /// its schedule so it starts no earlier than this circuit's makespan.
    /// Measurement indices of `other` are re-based.
    pub fn extend_sequential(&mut self, other: &Circuit) {
        let offset = self.makespan_us();
        let meas_offset = self.measurements.len();
        for op in &other.ops {
            let mut op = op.clone();
            op.start_us += offset;
            op.measurement = op.measurement.map(|m| m + meas_offset);
            self.ops.push(op);
        }
        for rec in &other.measurements {
            let mut rec = rec.clone();
            rec.index += meas_offset;
            rec.start_us += offset;
            self.measurements.push(rec);
        }
    }

    /// Human-readable listing: one line per operation,
    /// `t=<start>us <mnemonic> <site> [<site>]`.
    pub fn render_listing(&self) -> String {
        let mut out = String::new();
        for op in &self.ops {
            out.push_str(&format!("t={:>10.2}us  {:<10}", op.start_us, op.op.mnemonic()));
            for s in &op.sites {
                out.push_str(&format!(" {s}"));
            }
            if let Some(j) = op.junction {
                out.push_str(&format!(" via {j}"));
            }
            if let Some(m) = op.measurement {
                out.push_str(&format!("  -> m{m}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_op(op: NativeOp, start: f64) -> TimedOp {
        TimedOp {
            op,
            sites: vec![QSite::new(0, 1)],
            qubits: vec![QubitId(0)],
            start_us: start,
            duration_us: op.duration_us(&crate::spec::HardwareSpec::h1()),
            junction: None,
            measurement: None,
        }
    }

    #[test]
    fn makespan_and_counts() {
        let mut c = Circuit::new();
        c.push(dummy_op(NativeOp::PrepareZ, 0.0));
        c.push(dummy_op(NativeOp::ZPi2, 10.0));
        c.push(dummy_op(NativeOp::MeasureZ, 13.0));
        assert_eq!(c.len(), 3);
        assert!((c.makespan_us() - 133.0).abs() < 1e-9);
        assert_eq!(c.count_of(NativeOp::ZPi2), 1);
        assert_eq!(c.count_of(NativeOp::ZZ), 0);
        assert_eq!(c.zones_touched().len(), 1);
    }

    #[test]
    fn extend_sequential_offsets_schedule_and_measurements() {
        let mut a = Circuit::new();
        a.push(dummy_op(NativeOp::PrepareZ, 0.0));
        let m = a.push_measurement(MeasurementRecord {
            index: 0,
            qubit: QubitId(0),
            site: QSite::new(0, 1),
            start_us: 10.0,
            label: "first".into(),
        });
        assert_eq!(m, 0);
        let mut meas_op = dummy_op(NativeOp::MeasureZ, 10.0);
        meas_op.measurement = Some(0);
        a.push(meas_op);

        let mut b = Circuit::new();
        b.push(dummy_op(NativeOp::PrepareZ, 0.0));
        b.push_measurement(MeasurementRecord {
            index: 0,
            qubit: QubitId(0),
            site: QSite::new(0, 1),
            start_us: 10.0,
            label: "second".into(),
        });
        let mut meas_op = dummy_op(NativeOp::MeasureZ, 10.0);
        meas_op.measurement = Some(0);
        b.push(meas_op);

        let before = a.makespan_us();
        a.extend_sequential(&b);
        assert_eq!(a.measurements().len(), 2);
        assert_eq!(a.measurements()[1].index, 1);
        assert_eq!(a.measurements()[1].label, "second");
        assert_eq!(a.ops().last().unwrap().measurement, Some(1));
        assert!(a.ops()[2].start_us >= before);
    }

    #[test]
    fn listing_contains_mnemonics() {
        let mut c = Circuit::new();
        c.push(dummy_op(NativeOp::ZZ, 0.0));
        let listing = c.render_listing();
        assert!(listing.contains("ZZ"));
        assert!(listing.contains("0.1"));
    }
}

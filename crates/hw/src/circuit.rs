//! Time-resolved hardware circuits.
//!
//! A [`Circuit`] is an ordered list of [`TimedOp`]s. The *stream order* of
//! the list defines logical (causal) order per ion and is what the simulator
//! replays; the `start_us` timestamps record the ASAP schedule used for
//! resource estimation and for junction-conflict resolution (paper Sec. 3.3–3.4).
//!
//! A circuit may additionally carry [`ReplicatedSpan`]s: op ranges (captured
//! syndrome-extraction rounds) that logically repeat without being
//! re-materialized. [`Circuit::ops`] exposes only the materialized (first)
//! occurrences; consumers that must see every logical operation stream them
//! through [`OpStream::for_each_op`] or flatten with [`Circuit::materialize`].
//! Circuits built without round replication carry no spans and behave exactly
//! as before.

use tiscc_grid::{QSite, QubitId};

use crate::label::Label;
use crate::ops::NativeOp;
use crate::rounds::{replay_round, ReplicatedSpan};

/// One scheduled native operation.
#[derive(Clone, Debug, PartialEq)]
pub struct TimedOp {
    /// The native operation.
    pub op: NativeOp,
    /// The qsites addressed, in operand order. For transport this is
    /// `[from, to]`; for `ZZ` the two interacting zones; otherwise one site.
    pub sites: Vec<QSite>,
    /// The ions involved, in operand order (one ion for transport).
    pub qubits: Vec<QubitId>,
    /// Scheduled start time in microseconds.
    pub start_us: f64,
    /// Duration in microseconds.
    pub duration_us: f64,
    /// For junction moves: the junction exclusively held during the hop.
    pub junction: Option<QSite>,
    /// For `MeasureZ`: index into [`Circuit::measurements`].
    pub measurement: Option<usize>,
}

impl TimedOp {
    /// Scheduled end time in microseconds.
    pub fn end_us(&self) -> f64 {
        self.start_us + self.duration_us
    }
}

/// Record of one mid-circuit or final measurement, used by the verification
/// layer to connect simulated outcomes to post-processing rules (Sec. 4.5).
#[derive(Clone, Debug, PartialEq)]
pub struct MeasurementRecord {
    /// Sequential measurement index within the circuit.
    pub index: usize,
    /// The ion measured.
    pub qubit: QubitId,
    /// The zone where the measurement happened.
    pub site: QSite,
    /// Scheduled start time of the measurement.
    pub start_us: f64,
    /// Interned label attached by the compiler (e.g. rendering to
    /// `"idle round 0 Z cell (1, 2)"`); see [`Label`].
    pub label: Label,
}

/// A view of one logical operation yielded by [`OpStream::for_each_op`].
///
/// For materialized ops this is the op itself; for an op inside a replicated
/// round occurrence, `start_us` and `measurement` carry the occurrence's
/// shifted schedule and re-numbered measurement index while `op` borrows the
/// template operation.
#[derive(Clone, Copy, Debug)]
pub struct OpView<'a> {
    /// The underlying operation (sites, qubits, kind, duration).
    pub op: &'a TimedOp,
    /// Scheduled start time of this logical occurrence in microseconds.
    pub start_us: f64,
    /// Measurement-record index of this logical occurrence, if any.
    pub measurement: Option<usize>,
}

impl OpView<'_> {
    /// Scheduled end time of this logical occurrence in microseconds.
    pub fn end_us(&self) -> f64 {
        self.start_us + self.op.duration_us
    }
}

/// Anything that can stream its scheduled operations in logical order.
///
/// Implemented by [`Circuit`] (materialized ops plus replicated-span
/// replays) and by [`crate::rounds::CompiledRounds`] (prologue, `repeats` ×
/// template, epilogue). Consumers — resource accounting, validity checking,
/// the simulator — fold over the stream with running accumulators instead of
/// walking a cloned `Vec<TimedOp>`.
pub trait OpStream {
    /// Calls `f` once per logical operation, in stream (causal) order.
    fn for_each_op(&self, f: &mut dyn FnMut(OpView<'_>));

    /// Calls `f` once per *distinct* operation (each replicated round's ops
    /// once, not per occurrence). Sufficient for set-valued accounting such
    /// as zones touched.
    fn for_each_distinct_op(&self, f: &mut dyn FnMut(&TimedOp));

    /// Total number of measurement records across every occurrence.
    fn measurement_count(&self) -> usize;
}

/// A compiled, time-resolved hardware circuit.
#[derive(Clone, Debug, Default)]
pub struct Circuit {
    ops: Vec<TimedOp>,
    measurements: Vec<MeasurementRecord>,
    spans: Vec<ReplicatedSpan>,
}

impl Circuit {
    /// An empty circuit.
    pub fn new() -> Self {
        Circuit::default()
    }

    /// Builds a circuit from a list of already-scheduled operations with no
    /// measurement records (hand-built test circuits). Prefer
    /// [`Circuit::from_parts`] when records are available — counters that
    /// need them otherwise fall back to counting `Measure_Z` ops.
    pub fn from_ops(ops: Vec<TimedOp>) -> Self {
        Circuit { ops, measurements: Vec::new(), spans: Vec::new() }
    }

    /// Builds a circuit from already-scheduled operations *and* their
    /// measurement records (used by the resource estimator to account for a
    /// sub-range of a larger compiled circuit without losing its records).
    pub fn from_parts(ops: Vec<TimedOp>, measurements: Vec<MeasurementRecord>) -> Self {
        Circuit { ops, measurements, spans: Vec::new() }
    }

    /// Appends an operation (builder use only; prefer [`crate::HardwareModel`]).
    pub(crate) fn push(&mut self, op: TimedOp) {
        self.ops.push(op);
    }

    /// Appends a measurement record and returns its index.
    pub(crate) fn push_measurement(&mut self, mut rec: MeasurementRecord) -> usize {
        let idx = self.measurements.len();
        rec.index = idx;
        self.measurements.push(rec);
        idx
    }

    /// Replaces a measurement record once its schedule is known.
    pub(crate) fn replace_measurement(&mut self, idx: usize, rec: MeasurementRecord) {
        self.measurements[idx] = rec;
    }

    /// Marks an op range as a replicated round (see [`ReplicatedSpan`]).
    pub(crate) fn push_span(&mut self, span: ReplicatedSpan) {
        debug_assert!(span.op_end <= self.ops.len());
        debug_assert!(self.spans.last().map_or(0, |s| s.op_end) <= span.op_start);
        self.spans.push(span);
    }

    /// The materialized operations in stream (causal) order: every op's
    /// *first* occurrence. Replicated rounds appear once; use
    /// [`OpStream::for_each_op`] to stream every logical occurrence.
    pub fn ops(&self) -> &[TimedOp] {
        &self.ops
    }

    /// The replicated spans (empty for fully materialized circuits).
    pub fn spans(&self) -> &[ReplicatedSpan] {
        &self.spans
    }

    /// True if the circuit carries replicated (non-materialized) rounds.
    pub fn is_periodic(&self) -> bool {
        !self.spans.is_empty()
    }

    /// The measurement records in emission order (replicated rounds
    /// included — records are always materialized).
    pub fn measurements(&self) -> &[MeasurementRecord] {
        &self.measurements
    }

    /// Number of *materialized* operations (also the index space of
    /// [`Circuit::ops`]). See [`Circuit::logical_len`] for the count that
    /// includes replicated occurrences.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Total number of logical operations, counting every replicated
    /// occurrence.
    pub fn logical_len(&self) -> usize {
        self.ops.len() + self.spans.iter().map(|s| s.extra * s.len()).sum::<usize>()
    }

    /// True if the circuit contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total wall-clock duration (makespan) in microseconds, replicated
    /// rounds included.
    pub fn makespan_us(&self) -> f64 {
        let flat = self.ops.iter().map(TimedOp::end_us).fold(0.0, f64::max);
        self.spans.iter().map(|s| s.end_makespan_us).fold(flat, f64::max)
    }

    /// Count of operations of a given kind, replicated occurrences included.
    pub fn count_of(&self, op: NativeOp) -> usize {
        let flat = self.ops.iter().filter(|t| t.op == op).count();
        let replicated: usize = self
            .spans
            .iter()
            .map(|s| s.extra * self.ops[s.op_start..s.op_end].iter().filter(|t| t.op == op).count())
            .sum();
        flat + replicated
    }

    /// Every distinct trapping zone touched by the circuit (junctions held
    /// during hops are not included; they are counted separately by the
    /// resource report). Replicas revisit the zones of their template, so
    /// the materialized ops already cover the full set.
    pub fn zones_touched(&self) -> std::collections::BTreeSet<QSite> {
        self.ops.iter().flat_map(|t| t.sites.iter().copied()).collect()
    }

    /// Every distinct junction traversed.
    pub fn junctions_touched(&self) -> std::collections::BTreeSet<QSite> {
        self.ops.iter().filter_map(|t| t.junction).collect()
    }

    /// Flattens the circuit: every replicated occurrence becomes a
    /// materialized op (with its replayed schedule and re-numbered
    /// measurement index). Identity for circuits without spans.
    pub fn materialize(&self) -> Circuit {
        if self.spans.is_empty() {
            return self.clone();
        }
        let mut ops = Vec::with_capacity(self.logical_len());
        self.for_each_op(&mut |v: OpView<'_>| {
            let mut op = v.op.clone();
            op.start_us = v.start_us;
            op.measurement = v.measurement;
            ops.push(op);
        });
        Circuit::from_parts(ops, self.measurements.clone())
    }

    /// Concatenates another circuit's operations after this one, offsetting
    /// its schedule so it starts no earlier than this circuit's makespan.
    /// Measurement indices of `other` are re-based. A periodic `other` is
    /// flattened first so no logical operation is lost.
    pub fn extend_sequential(&mut self, other: &Circuit) {
        if other.is_periodic() {
            return self.extend_sequential(&other.materialize());
        }
        let offset = self.makespan_us();
        let meas_offset = self.measurements.len();
        for op in &other.ops {
            let mut op = op.clone();
            op.start_us += offset;
            op.measurement = op.measurement.map(|m| m + meas_offset);
            self.ops.push(op);
        }
        for rec in &other.measurements {
            let mut rec = rec.clone();
            rec.index += meas_offset;
            rec.start_us += offset;
            self.measurements.push(rec);
        }
    }

    /// Human-readable listing: one line per logical operation,
    /// `t=<start>us <mnemonic> <site> [<site>]`. Replicated rounds are
    /// expanded, so the listing matches the fully materialized circuit.
    pub fn render_listing(&self) -> String {
        let mut out = String::new();
        self.for_each_op(&mut |v: OpView<'_>| {
            out.push_str(&format!("t={:>10.2}us  {:<10}", v.start_us, v.op.op.mnemonic()));
            for s in &v.op.sites {
                out.push_str(&format!(" {s}"));
            }
            if let Some(j) = v.op.junction {
                out.push_str(&format!(" via {j}"));
            }
            if let Some(m) = v.measurement {
                out.push_str(&format!("  -> m{m}"));
            }
            out.push('\n');
        });
        out
    }
}

impl OpStream for Circuit {
    fn for_each_op(&self, f: &mut dyn FnMut(OpView<'_>)) {
        let mut next = 0usize;
        let (mut starts, mut ends) = (Vec::new(), Vec::new());
        for span in &self.spans {
            for op in &self.ops[next..span.op_end] {
                f(OpView { op, start_us: op.start_us, measurement: op.measurement });
            }
            let ops = &self.ops[span.op_start..span.op_end];
            let mut base = ops.iter().map(TimedOp::end_us).fold(span.base_us, f64::max);
            for r in 1..=span.extra {
                base =
                    replay_round(ops, &span.preds, base, span.recovery_us, &mut starts, &mut ends);
                let meas_shift = r * span.meas_per_round;
                for (i, op) in ops.iter().enumerate() {
                    f(OpView {
                        op,
                        start_us: starts[i],
                        measurement: op.measurement.map(|m| m + meas_shift),
                    });
                }
            }
            next = span.op_end;
        }
        for op in &self.ops[next..] {
            f(OpView { op, start_us: op.start_us, measurement: op.measurement });
        }
    }

    fn for_each_distinct_op(&self, f: &mut dyn FnMut(&TimedOp)) {
        for op in &self.ops {
            f(op);
        }
    }

    fn measurement_count(&self) -> usize {
        self.measurements.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rounds::CompiledRounds;

    fn dummy_op(op: NativeOp, start: f64) -> TimedOp {
        TimedOp {
            op,
            sites: vec![QSite::new(0, 1)],
            qubits: vec![QubitId(0)],
            start_us: start,
            duration_us: op.duration_us(&crate::spec::HardwareSpec::h1()),
            junction: None,
            measurement: None,
        }
    }

    #[test]
    fn makespan_and_counts() {
        let mut c = Circuit::new();
        c.push(dummy_op(NativeOp::PrepareZ, 0.0));
        c.push(dummy_op(NativeOp::ZPi2, 10.0));
        c.push(dummy_op(NativeOp::MeasureZ, 13.0));
        assert_eq!(c.len(), 3);
        assert_eq!(c.logical_len(), 3);
        assert!((c.makespan_us() - 133.0).abs() < 1e-9);
        assert_eq!(c.count_of(NativeOp::ZPi2), 1);
        assert_eq!(c.count_of(NativeOp::ZZ), 0);
        assert_eq!(c.zones_touched().len(), 1);
    }

    #[test]
    fn extend_sequential_offsets_schedule_and_measurements() {
        let mut a = Circuit::new();
        a.push(dummy_op(NativeOp::PrepareZ, 0.0));
        let m = a.push_measurement(MeasurementRecord {
            index: 0,
            qubit: QubitId(0),
            site: QSite::new(0, 1),
            start_us: 10.0,
            label: "first".into(),
        });
        assert_eq!(m, 0);
        let mut meas_op = dummy_op(NativeOp::MeasureZ, 10.0);
        meas_op.measurement = Some(0);
        a.push(meas_op);

        let mut b = Circuit::new();
        b.push(dummy_op(NativeOp::PrepareZ, 0.0));
        b.push_measurement(MeasurementRecord {
            index: 0,
            qubit: QubitId(0),
            site: QSite::new(0, 1),
            start_us: 10.0,
            label: "second".into(),
        });
        let mut meas_op = dummy_op(NativeOp::MeasureZ, 10.0);
        meas_op.measurement = Some(0);
        b.push(meas_op);

        let before = a.makespan_us();
        a.extend_sequential(&b);
        assert_eq!(a.measurements().len(), 2);
        assert_eq!(a.measurements()[1].index, 1);
        assert_eq!(a.measurements()[1].label.render(), "second");
        assert_eq!(a.ops().last().unwrap().measurement, Some(1));
        assert!(a.ops()[2].start_us >= before);
    }

    #[test]
    fn listing_contains_mnemonics() {
        let mut c = Circuit::new();
        c.push(dummy_op(NativeOp::ZZ, 0.0));
        let listing = c.render_listing();
        assert!(listing.contains("ZZ"));
        assert!(listing.contains("0.1"));
    }

    #[test]
    fn spans_stream_replicated_occurrences() {
        // One "round": a prepare at the barrier followed by a chained gate.
        let mut c = Circuit::new();
        c.push(dummy_op(NativeOp::PrepareZ, 100.0));
        let mut second = dummy_op(NativeOp::MeasureZ, 110.0);
        second.measurement = Some(0);
        c.push(second);
        c.push_measurement(MeasurementRecord {
            index: 0,
            qubit: QubitId(0),
            site: QSite::new(0, 1),
            start_us: 110.0,
            label: "r0".into(),
        });
        c.push_measurement(MeasurementRecord {
            index: 1,
            qubit: QubitId(0),
            site: QSite::new(0, 1),
            start_us: 240.0,
            label: "r1".into(),
        });
        c.push_span(ReplicatedSpan {
            op_start: 0,
            op_end: 2,
            meas_start: 0,
            meas_per_round: 1,
            extra: 1,
            base_us: 100.0,
            end_makespan_us: 360.0,
            recovery_us: 0.0,
            preds: vec![None, Some(0)],
        });

        assert_eq!(c.len(), 2);
        assert_eq!(c.logical_len(), 4);
        assert_eq!(c.count_of(NativeOp::PrepareZ), 2);
        assert!((c.makespan_us() - 360.0).abs() < 1e-9);

        let mut seen = Vec::new();
        c.for_each_op(&mut |v: OpView<'_>| seen.push((v.start_us, v.measurement)));
        // Replica starts from the barrier after round 0 (max end = 230).
        assert_eq!(seen, vec![(100.0, None), (110.0, Some(0)), (230.0, None), (240.0, Some(1))]);

        let flat = c.materialize();
        assert_eq!(flat.len(), 4);
        assert!(!flat.is_periodic());
        assert_eq!(flat.measurements().len(), 2);
        assert_eq!(flat.ops()[3].measurement, Some(1));
        assert_eq!(flat.render_listing(), c.render_listing());

        // Extraction from op 0 yields the ISSUE's periodic form.
        let rounds = CompiledRounds::extract(&c, 0);
        assert_eq!(rounds.repeats, 2);
        assert_eq!(rounds.total_ops(), 4);
        assert_eq!(rounds.measurements.len(), 2);
        let remat = rounds.materialize();
        // Extraction re-bases to t = 0 (range started at t = 100).
        assert_eq!(remat.ops()[0].start_us, 0.0);
        assert_eq!(remat.ops()[2].start_us, 130.0);
    }
}

//! The native trapped-ion gate set and its nominal durations.
//!
//! The paper (Table 5/Fig. 5) specialises the Quantinuum H1 native set to the
//! rotations needed for Clifford+T surface-code circuits:
//! `P_θ = e^{-iPθ}` for `P ∈ {X, Y, Z}` and `θ ∈ {π/2, ±π/4, ±π/8}`, the
//! entangling `(ZZ)_{π/4}` interaction, `Prepare_Z`, `Measure_Z`, and the
//! `Move`/`Junction` transport operations.

use crate::spec::HardwareSpec;

/// One native hardware operation.
///
/// Durations are a property of the hardware profile, not of the operation:
/// [`NativeOp::duration_us`] resolves against a [`HardwareSpec`]. The
/// per-variant times quoted below are those of the paper-faithful default
/// profile ([`HardwareSpec::h1`], Sec. 3.2): transport at 80 m/s between
/// zones and 4 m/s through junctions over a 420 µm pitch; the `(ZZ)_{π/4}`
/// time is dominated by the implied split/merge/cool steps (≈ 2 ms).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NativeOp {
    /// Prepare an ion in |0⟩ (10 µs).
    PrepareZ,
    /// Measure an ion in the Z basis (120 µs).
    MeasureZ,
    /// `X_{π/2} = e^{-iπX/2}` — equals Pauli X up to global phase (10 µs).
    XPi2,
    /// `X_{π/4} = e^{-iπX/4}` — the √X gate up to phase (10 µs).
    XPi4,
    /// `X_{-π/4}` — inverse √X (10 µs).
    XPi4Dag,
    /// `Y_{π/2}` — Pauli Y up to phase (10 µs).
    YPi2,
    /// `Y_{π/4}` — √Y up to phase (10 µs).
    YPi4,
    /// `Y_{-π/4}` — inverse √Y (10 µs).
    YPi4Dag,
    /// `Z_{π/2}` — Pauli Z up to phase (3 µs).
    ZPi2,
    /// `Z_{π/4}` — the S gate up to phase (3 µs).
    ZPi4,
    /// `Z_{-π/4}` — S† up to phase (3 µs).
    ZPi4Dag,
    /// `Z_{π/8}` — the T gate up to phase (3 µs). The only non-Clifford.
    ZPi8,
    /// `Z_{-π/8}` — T† up to phase (3 µs).
    ZPi8Dag,
    /// `(ZZ)_{π/4} = e^{-iπ Z⊗Z/4}` between two adjacent zones (2000 µs).
    ZZ,
    /// Shuttle between two adjacent trapping zones of one segment (5.25 µs).
    Move,
    /// Transport through a junction, compiled as `Move zoneA zoneB` and
    /// charged two junction traversals (2 × 105 µs).
    JunctionMove,
}

impl NativeOp {
    /// Duration in microseconds under the given hardware profile (paper
    /// Table 5/Fig. 5 for [`HardwareSpec::h1`]).
    pub fn duration_us(self, spec: &HardwareSpec) -> f64 {
        spec.duration_us(self)
    }

    /// Number of qsites the operation addresses (2 for `ZZ` and transport,
    /// 1 otherwise).
    pub fn arity(self) -> usize {
        match self {
            NativeOp::ZZ | NativeOp::Move | NativeOp::JunctionMove => 2,
            _ => 1,
        }
    }

    /// True for operations that transport ions rather than act on their
    /// internal state.
    pub fn is_transport(self) -> bool {
        matches!(self, NativeOp::Move | NativeOp::JunctionMove)
    }

    /// True for gates (including preparation/measurement) as opposed to
    /// transport.
    pub fn is_gate(self) -> bool {
        !self.is_transport()
    }

    /// True if the operation is a Clifford-group unitary, preparation or
    /// measurement; only `Z_{±π/8}` (the T gate) is non-Clifford.
    pub fn is_clifford(self) -> bool {
        !matches!(self, NativeOp::ZPi8 | NativeOp::ZPi8Dag)
    }

    /// The mnemonic used in textual circuit listings (mirrors the paper's
    /// instruction names).
    pub fn mnemonic(self) -> &'static str {
        match self {
            NativeOp::PrepareZ => "Prepare_Z",
            NativeOp::MeasureZ => "Measure_Z",
            NativeOp::XPi2 => "X_pi/2",
            NativeOp::XPi4 => "X_pi/4",
            NativeOp::XPi4Dag => "X_-pi/4",
            NativeOp::YPi2 => "Y_pi/2",
            NativeOp::YPi4 => "Y_pi/4",
            NativeOp::YPi4Dag => "Y_-pi/4",
            NativeOp::ZPi2 => "Z_pi/2",
            NativeOp::ZPi4 => "Z_pi/4",
            NativeOp::ZPi4Dag => "Z_-pi/4",
            NativeOp::ZPi8 => "Z_pi/8",
            NativeOp::ZPi8Dag => "Z_-pi/8",
            NativeOp::ZZ => "ZZ",
            NativeOp::Move => "Move",
            NativeOp::JunctionMove => "Junction",
        }
    }

    /// Every native operation, in the order of paper Table 5.
    pub fn all() -> &'static [NativeOp] {
        &[
            NativeOp::PrepareZ,
            NativeOp::MeasureZ,
            NativeOp::XPi2,
            NativeOp::XPi4,
            NativeOp::XPi4Dag,
            NativeOp::YPi2,
            NativeOp::YPi4,
            NativeOp::YPi4Dag,
            NativeOp::ZPi2,
            NativeOp::ZPi4,
            NativeOp::ZPi4Dag,
            NativeOp::ZPi8,
            NativeOp::ZPi8Dag,
            NativeOp::ZZ,
            NativeOp::Move,
            NativeOp::JunctionMove,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_match_paper_table5_under_the_default_profile() {
        let spec = HardwareSpec::h1();
        assert_eq!(NativeOp::PrepareZ.duration_us(&spec), 10.0);
        assert_eq!(NativeOp::MeasureZ.duration_us(&spec), 120.0);
        assert_eq!(NativeOp::XPi2.duration_us(&spec), 10.0);
        assert_eq!(NativeOp::YPi4.duration_us(&spec), 10.0);
        assert_eq!(NativeOp::ZPi2.duration_us(&spec), 3.0);
        assert_eq!(NativeOp::ZPi8.duration_us(&spec), 3.0);
        assert_eq!(NativeOp::ZZ.duration_us(&spec), 2000.0);
        assert_eq!(NativeOp::Move.duration_us(&spec), 5.25);
        // One junction traversal is 105 µs; a compiled junction move is two.
        assert_eq!(NativeOp::JunctionMove.duration_us(&spec), 210.0);
    }

    #[test]
    fn durations_follow_the_profile() {
        let spec = HardwareSpec::projected();
        for &op in NativeOp::all() {
            assert_eq!(op.duration_us(&spec), spec.duration_us(op));
        }
        assert!(spec.duration_us(NativeOp::ZZ) < HardwareSpec::h1().duration_us(NativeOp::ZZ));
    }

    #[test]
    fn arity_and_classification() {
        assert_eq!(NativeOp::ZZ.arity(), 2);
        assert_eq!(NativeOp::Move.arity(), 2);
        assert_eq!(NativeOp::PrepareZ.arity(), 1);
        assert!(NativeOp::Move.is_transport());
        assert!(!NativeOp::Move.is_gate());
        assert!(NativeOp::ZZ.is_gate());
        assert!(NativeOp::ZPi4.is_clifford());
        assert!(!NativeOp::ZPi8.is_clifford());
        assert!(!NativeOp::ZPi8Dag.is_clifford());
    }

    #[test]
    fn all_lists_every_variant_once() {
        let all = NativeOp::all();
        assert_eq!(all.len(), 16);
        let mut set = std::collections::HashSet::new();
        for op in all {
            assert!(set.insert(op.mnemonic()), "duplicate mnemonic {}", op.mnemonic());
        }
    }
}

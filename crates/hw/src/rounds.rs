//! Periodic (round-templated) circuit representations.
//!
//! A surface-code workload spends almost all of its operations in syndrome-
//! extraction rounds that are exact time-translations of each other: every
//! round starts from a barrier-quiescent state (all ions home, every busy
//! time at or before the barrier), so the ASAP schedule of round `k + 1` is
//! the schedule of round `k` shifted by one round period. The types here
//! exploit that:
//!
//! * [`ReplicatedSpan`] — bookkeeping attached to a [`Circuit`] marking that
//!   one materialized op range (the *captured round*) logically repeats
//!   `extra` additional times without being re-materialized;
//! * [`RoundTemplate`] / [`CompiledRounds`] — the standalone periodic form
//!   `{prologue, template, repeats, epilogue}` handed to resource consumers,
//!   extracted from a compiled circuit sub-range by
//!   [`CompiledRounds::extract`].
//!
//! Replica schedules are reproduced **bit-for-bit**: instead of adding a
//! floating-point period per round (which would diverge from the compiled
//! schedule in the last ulp for profiles with non-dyadic durations), each
//! captured operation records its *critical predecessor* — the in-round
//! operation whose end determined its start, or the round barrier — and
//! replicas replay exactly the addition chain the scheduler would have
//! performed ([`replay_round`]).

use crate::circuit::{Circuit, MeasurementRecord, OpStream, OpView, TimedOp};

/// Marks a materialized op range of a [`Circuit`] as logically repeating.
///
/// Ops `[op_start, op_end)` — one barrier-terminated syndrome-extraction
/// round — occur `extra` additional times after their materialized (first)
/// occurrence. Measurement *records* of the replicas are materialized (they
/// are cheap and downstream code indexes into them); the ops are not.
#[derive(Clone, Debug)]
pub struct ReplicatedSpan {
    /// First op index of the captured round.
    pub op_start: usize,
    /// One past the last op index of the captured round.
    pub op_end: usize,
    /// Measurement-record index of the captured round's first record.
    pub meas_start: usize,
    /// Measurement records emitted per round.
    pub meas_per_round: usize,
    /// Additional (analytic) repetitions beyond the captured occurrence.
    pub extra: usize,
    /// Barrier time the captured round was scheduled from (µs, absolute).
    pub base_us: f64,
    /// Circuit makespan after the last replica (µs, absolute).
    pub end_makespan_us: f64,
    /// Junction recovery window the round was scheduled under
    /// ([`HardwareSpec::junction_recovery_us`](crate::spec::HardwareSpec::junction_recovery_us)).
    /// Replay needs it to reproduce `end + recovery` edges bit-exactly.
    pub recovery_us: f64,
    /// Per-op critical predecessor: `Some(i)` if the op's start equals the
    /// end of in-round op `i` (or that end plus `recovery_us`, for ops that
    /// waited out a junction recovery window), `None` if it equals the
    /// round barrier.
    pub preds: Vec<Option<u32>>,
}

impl ReplicatedSpan {
    /// Number of ops in the captured round.
    pub fn len(&self) -> usize {
        self.op_end - self.op_start
    }

    /// True if the span covers no operations.
    pub fn is_empty(&self) -> bool {
        self.op_end == self.op_start
    }
}

/// Replays the ASAP schedule of one round occurrence.
///
/// `ops`/`preds` describe the captured round; `base` is the barrier this
/// occurrence starts from. Fills `starts` and `ends` (both reset) with the
/// occurrence's absolute op times and returns the barrier after the
/// occurrence (the fold-max of its op ends). The arithmetic — one addition
/// per op, one max-fold for the barrier — is exactly what the scheduler
/// performs when materializing, so replayed times are bit-identical.
///
/// `recovery_us` is the junction recovery window the round was scheduled
/// under. Each predecessor edge is classified from the captured absolute
/// times: a start that is *not* exactly its predecessor's end was pushed by
/// the junction's recovery window, and the replica replays the scheduler's
/// `end + recovery` addition instead of the plain chain. At recovery 0 no
/// edge classifies as recovery and the replay is unchanged.
pub fn replay_round(
    ops: &[TimedOp],
    preds: &[Option<u32>],
    base: f64,
    recovery_us: f64,
    starts: &mut Vec<f64>,
    ends: &mut Vec<f64>,
) -> f64 {
    starts.clear();
    ends.clear();
    starts.reserve(ops.len());
    ends.reserve(ops.len());
    for (op, pred) in ops.iter().zip(preds) {
        let start = match pred {
            Some(p) => {
                let p = *p as usize;
                if recovery_us > 0.0 && op.start_us != ops[p].start_us + ops[p].duration_us {
                    ends[p] + recovery_us
                } else {
                    ends[p]
                }
            }
            None => base,
        };
        starts.push(start);
        ends.push(start + op.duration_us);
    }
    ends.iter().copied().fold(base, f64::max)
}

/// One captured syndrome-extraction round, ready for analytic replication.
///
/// Op start times are stored **absolute** (as first compiled); the owning
/// [`CompiledRounds`] applies its `rebase_us` lazily at view time so replica
/// times reproduce the materialized `chain − t0` arithmetic bit-for-bit.
/// Measurement indices are already rebased to the owner's local numbering.
#[derive(Clone, Debug, Default)]
pub struct RoundTemplate {
    /// The round's ops (absolute start times, rebased measurement indices).
    pub ops: Vec<TimedOp>,
    /// Critical predecessor of each op (see [`ReplicatedSpan::preds`]).
    pub preds: Vec<Option<u32>>,
    /// Barrier the captured occurrence was scheduled from (µs, absolute).
    pub base_us: f64,
    /// Junction recovery window the round was scheduled under (µs); see
    /// [`ReplicatedSpan::recovery_us`].
    pub recovery_us: f64,
    /// Measurement records emitted per round.
    pub meas_per_round: usize,
}

impl RoundTemplate {
    /// Number of ops in one round.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the template holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// A compiled instruction in periodic form: a one-off `prologue`, a
/// syndrome-extraction round `template` occurring `repeats` times, and a
/// one-off `epilogue`. Produced by [`CompiledRounds::extract`]; consumed
/// via the streaming [`OpStream`] interface (resource accounting, validity
/// checking) or materialized back to a flat [`Circuit`] on demand.
///
/// Holding `repeats` rounds costs the memory of *one* round, which is what
/// cuts sweep memory by the `dt` factor at large code distances.
#[derive(Clone, Debug, Default)]
pub struct CompiledRounds {
    /// Everything before the periodic part (rebased, record-free).
    pub prologue: Circuit,
    /// The representative round.
    pub template: RoundTemplate,
    /// Total occurrences of the template (0 when the range had no periodic
    /// part — then `prologue` holds the whole range).
    pub repeats: usize,
    /// Everything after the periodic part (rebased, record-free).
    pub epilogue: Circuit,
    /// Every measurement record of the range (all rounds included), with
    /// indices and start times rebased.
    pub measurements: Vec<MeasurementRecord>,
    /// Time subtracted from the template's absolute times at view time.
    pub rebase_us: f64,
}

impl CompiledRounds {
    /// Extracts the sub-range of `circuit` starting at op `start_op` as a
    /// periodic circuit, re-based so the range starts at `t = 0`, with
    /// measurement records carried over (indices renumbered from 0).
    ///
    /// The range must not begin inside a replicated span. A range containing
    /// no span becomes an all-prologue `CompiledRounds` (`repeats == 0`);
    /// ranges with more than one span are flattened first (correct, but
    /// without the periodic memory savings).
    pub fn extract(circuit: &Circuit, start_op: usize) -> CompiledRounds {
        let spans: Vec<&ReplicatedSpan> =
            circuit.spans().iter().filter(|s| s.op_end > start_op).collect();
        debug_assert!(
            spans.iter().all(|s| s.op_start >= start_op),
            "extraction range must not begin inside a replicated span"
        );
        if spans.len() > 1 {
            // Rare fallback (more than one periodic sequence in a single
            // instruction): flatten, then extract the flat range. Spans
            // *before* the range inflate the flattened index space, so the
            // start index shifts by their replicated op counts.
            let shift: usize = circuit
                .spans()
                .iter()
                .filter(|s| s.op_end <= start_op)
                .map(|s| s.extra * s.len())
                .sum();
            return CompiledRounds::extract(&circuit.materialize(), start_op + shift);
        }

        let ops = &circuit.ops()[start_op..];
        let t0 = ops.iter().map(|o| o.start_us).fold(f64::INFINITY, f64::min);
        let t0 = if t0.is_finite() { t0 } else { 0.0 };
        // First measurement record of the range: records are emitted
        // monotonically with ops, so everything from this index on belongs
        // to the range.
        let meas_base = ops
            .iter()
            .filter_map(|o| o.measurement)
            .min()
            .unwrap_or_else(|| circuit.measurements().len());
        let rebase_op = |o: &TimedOp, shift_time: bool| {
            let mut o = o.clone();
            if shift_time {
                o.start_us -= t0;
            }
            o.measurement = o.measurement.map(|m| m - meas_base);
            o
        };
        let measurements = circuit.measurements()[meas_base..]
            .iter()
            .map(|r| {
                let mut r = r.clone();
                r.index -= meas_base;
                r.start_us -= t0;
                r
            })
            .collect();

        match spans.first() {
            None => CompiledRounds {
                prologue: Circuit::from_ops(ops.iter().map(|o| rebase_op(o, true)).collect()),
                template: RoundTemplate::default(),
                repeats: 0,
                epilogue: Circuit::new(),
                measurements,
                rebase_us: t0,
            },
            Some(span) => CompiledRounds {
                prologue: Circuit::from_ops(
                    circuit.ops()[start_op..span.op_start]
                        .iter()
                        .map(|o| rebase_op(o, true))
                        .collect(),
                ),
                template: RoundTemplate {
                    // Absolute times kept; `rebase_us` applies at view time.
                    ops: circuit.ops()[span.op_start..span.op_end]
                        .iter()
                        .map(|o| rebase_op(o, false))
                        .collect(),
                    preds: span.preds.clone(),
                    base_us: span.base_us,
                    recovery_us: span.recovery_us,
                    meas_per_round: span.meas_per_round,
                },
                repeats: span.extra + 1,
                epilogue: Circuit::from_ops(
                    circuit.ops()[span.op_end..].iter().map(|o| rebase_op(o, true)).collect(),
                ),
                measurements,
                rebase_us: t0,
            },
        }
    }

    /// Total logical operations across every round occurrence.
    pub fn total_ops(&self) -> usize {
        self.prologue.len() + self.repeats * self.template.len() + self.epilogue.len()
    }

    /// Materializes the periodic circuit back to a flat [`Circuit`] with
    /// identical logical content (ops, schedule, measurement records).
    pub fn materialize(&self) -> Circuit {
        let mut ops = Vec::with_capacity(self.total_ops());
        self.for_each_op(&mut |v: OpView<'_>| {
            let mut op = v.op.clone();
            op.start_us = v.start_us;
            op.measurement = v.measurement;
            ops.push(op);
        });
        Circuit::from_parts(ops, self.measurements.clone())
    }
}

impl OpStream for CompiledRounds {
    fn for_each_op(&self, f: &mut dyn FnMut(OpView<'_>)) {
        self.prologue.for_each_op(f);
        if self.repeats > 0 {
            // First occurrence: stored times, lazily rebased.
            for op in &self.template.ops {
                f(OpView {
                    op,
                    start_us: op.start_us - self.rebase_us,
                    measurement: op.measurement,
                });
            }
            let mut base =
                self.template.ops.iter().map(TimedOp::end_us).fold(self.template.base_us, f64::max);
            let (mut starts, mut ends) = (Vec::new(), Vec::new());
            for r in 1..self.repeats {
                base = replay_round(
                    &self.template.ops,
                    &self.template.preds,
                    base,
                    self.template.recovery_us,
                    &mut starts,
                    &mut ends,
                );
                let meas_shift = r * self.template.meas_per_round;
                for (i, op) in self.template.ops.iter().enumerate() {
                    f(OpView {
                        op,
                        start_us: starts[i] - self.rebase_us,
                        measurement: op.measurement.map(|m| m + meas_shift),
                    });
                }
            }
        }
        self.epilogue.for_each_op(f);
    }

    fn for_each_distinct_op(&self, f: &mut dyn FnMut(&TimedOp)) {
        self.prologue.for_each_distinct_op(f);
        if self.repeats > 0 {
            for op in &self.template.ops {
                f(op);
            }
        }
        self.epilogue.for_each_distinct_op(f);
    }

    fn measurement_count(&self) -> usize {
        self.measurements.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::NativeOp;
    use tiscc_grid::{QSite, QubitId};

    fn op_at(start: f64, dur: f64) -> TimedOp {
        TimedOp {
            op: NativeOp::XPi2,
            sites: vec![QSite::new(0, 1)],
            qubits: vec![QubitId(0)],
            start_us: start,
            duration_us: dur,
            junction: None,
            measurement: None,
        }
    }

    #[test]
    fn replay_round_follows_predecessor_chains() {
        // Two chained ops then one barrier-aligned op.
        let ops = vec![op_at(100.0, 10.0), op_at(110.0, 5.0), op_at(100.0, 7.0)];
        let preds = vec![None, Some(0), None];
        let (mut starts, mut ends) = (Vec::new(), Vec::new());
        let next = replay_round(&ops, &preds, 200.0, 0.0, &mut starts, &mut ends);
        assert_eq!(starts, vec![200.0, 210.0, 200.0]);
        assert_eq!(ends, vec![210.0, 215.0, 207.0]);
        assert_eq!(next, 215.0);
    }

    #[test]
    fn replay_round_replays_recovery_edges() {
        // Op 1 chains off op 0, but its captured start (135) is 25 µs past
        // op 0's end (110): a junction recovery edge. The replica must
        // replay the same `end + recovery` addition.
        let ops = vec![op_at(100.0, 10.0), op_at(135.0, 5.0)];
        let preds = vec![None, Some(0)];
        let (mut starts, mut ends) = (Vec::new(), Vec::new());
        let next = replay_round(&ops, &preds, 200.0, 25.0, &mut starts, &mut ends);
        assert_eq!(starts, vec![200.0, 235.0]);
        assert_eq!(ends, vec![210.0, 240.0]);
        assert_eq!(next, 240.0);
    }

    #[test]
    fn extract_multi_span_fallback_accounts_for_earlier_spans() {
        // Three one-op "rounds", each replicated once: span A before the
        // extraction range, spans B and C inside it. The multi-span
        // fallback flattens, and must shift the start index past A's
        // replica.
        let mut c = Circuit::new();
        let span_at = |c: &mut Circuit, start: f64| {
            let idx = c.len();
            c.push(op_at(start, 10.0));
            c.push_span(ReplicatedSpan {
                op_start: idx,
                op_end: idx + 1,
                meas_start: 0,
                meas_per_round: 0,
                extra: 1,
                base_us: start,
                end_makespan_us: start + 20.0,
                recovery_us: 0.0,
                preds: vec![None],
            });
        };
        span_at(&mut c, 0.0);
        span_at(&mut c, 20.0);
        span_at(&mut c, 40.0);
        assert_eq!(c.logical_len(), 6);

        // Extract from physical op 1: spans B and C, 4 logical ops.
        let rounds = CompiledRounds::extract(&c, 1);
        assert_eq!(rounds.total_ops(), 4, "span A's replica must not leak into the range");
        let flat = rounds.materialize();
        // Re-based to t = 0 (range starts at span B's 20.0).
        assert_eq!(flat.ops()[0].start_us, 0.0);
        assert_eq!(flat.ops().len(), 4);
    }

    #[test]
    fn extract_without_spans_is_all_prologue() {
        let circuit = Circuit::from_ops(vec![op_at(50.0, 10.0), op_at(60.0, 10.0)]);
        let rounds = CompiledRounds::extract(&circuit, 1);
        assert_eq!(rounds.repeats, 0);
        assert_eq!(rounds.prologue.len(), 1);
        assert_eq!(rounds.total_ops(), 1);
        // Re-based to t = 0.
        assert_eq!(rounds.prologue.ops()[0].start_us, 0.0);
        let flat = rounds.materialize();
        assert_eq!(flat.len(), 1);
    }
}

//! The explicit pass pipeline behind [`HardwareModel`](crate::model::HardwareModel):
//! **schedule → batch → template**.
//!
//! Historically the hardware model resolved resource contention inline in
//! its emission loop. This module factors that loop into named passes so
//! each scheduling decision is a first-class, testable artifact:
//!
//! * [`Scheduler`] — the contention-aware ASAP scheduling pass. Ion, zone
//!   and junction busy windows are scheduling resources; junctions carry an
//!   explicit capacity ([`HardwareSpec::junction_capacity`]) and every op
//!   delayed by a saturated junction is flagged as a *junction stall*.
//! * [`batch_rounds`] / [`batch_ops`] — the SIMD batching pass. Co-scheduled
//!   identical single-qubit pulses merge into one multi-zone pulse, at most
//!   [`HardwareSpec::simd_width`] ops per pulse, never across a transport
//!   of one of the pulse's own ions. Width 1 is a strict no-op.
//! * Round templating (unchanged, in [`crate::rounds`]) runs on top: a
//!   batched round still templates and replicates bit-exactly.
//!
//! The pre-pipeline junction rule is preserved verbatim behind
//! [`SchedulePolicy::Legacy`] as the oracle for the differential test
//! harness: at `junction_capacity == 1` the windowed rule is byte-identical
//! to it (pinned by tests), so refactor regressions surface as bit diffs.

use std::collections::HashMap;

use tiscc_grid::{QSite, QubitId};

use crate::circuit::{Circuit, TimedOp};
use crate::ops::NativeOp;
use crate::rounds::{CompiledRounds, RoundTemplate};
use crate::spec::HardwareSpec;

/// Which junction-contention rule the scheduling pass applies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Junction occupancy windows are a capacity-limited scheduling
    /// resource: a hop waits until fewer than
    /// [`HardwareSpec::junction_capacity`] earlier hops are still in
    /// flight through the junction. Byte-identical to [`Legacy`] at
    /// capacity 1.
    ///
    /// [`Legacy`]: SchedulePolicy::Legacy
    #[default]
    Windowed,
    /// The pre-pipeline single-slot rule (the junction remembers only its
    /// last hop's end time). Kept as the differential-test oracle.
    Legacy,
}

/// The scheduling decision for one operation: where its start landed, which
/// earlier op's end determined it, and whether a saturated junction was the
/// reason it could not start earlier.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Slot {
    /// Earliest start consistent with every resource the op needs (µs).
    pub start_us: f64,
    /// Index of the op whose end determined the start; `None` when the
    /// current barrier dominates (including exact ties).
    pub src: Option<usize>,
    /// True if junction occupancy pushed the start past what ions, zones
    /// and the barrier alone would have allowed — i.e. the op waited for a
    /// junction slot. An isolated pair of crossing hops serializing is
    /// normal exclusive-transit operation and occurs under every profile.
    pub junction_bound: bool,
    /// True if the junction wait exceeded pure exclusive transit: the op
    /// waited into a recovery (recool) window
    /// ([`HardwareSpec::junction_recovery_us`] > 0), or it waited on a slot
    /// **held by a hop that was itself junction-delayed** (the delay is
    /// chained — a queue has formed at the junction). This is the congestion
    /// signal the estimate report surfaces as `junction_stalls` — zero on
    /// clean profiles where junction waits stay isolated pairwise transit
    /// exclusivity, non-zero once a junction needs recool time or saturates
    /// faster than it drains.
    pub junction_stall: bool,
}

/// The contention-aware ASAP scheduling pass.
///
/// Owns the per-resource busy state the hardware model consults when
/// emitting an op: the end time (and op index) of the last operation on
/// each ion and zone, the retained occupancy windows of each junction, and
/// the current barrier. [`Scheduler::ready`] answers "when can this op
/// start"; [`Scheduler::occupy`] commits the op's window.
#[derive(Clone, Debug)]
pub struct Scheduler {
    // Busy maps record, per resource, the end time of its last operation
    // and that operation's index — the index is what lets a round capture
    // identify each op's critical predecessor for bit-exact replication.
    site_busy: HashMap<QSite, (f64, usize)>,
    qubit_busy: HashMap<QubitId, (f64, usize)>,
    // Per junction: the `capacity` latest-ending hop windows, descending by
    // end time. Earlier windows can never constrain a future hop (any start
    // blocked by a dropped window is blocked by every retained one), so
    // retaining only `capacity` of them is lossless.
    junction_windows: HashMap<QSite, Vec<(f64, usize)>>,
    // Op indices whose start a junction delayed — consulted to tell an
    // isolated pairwise serialization apart from a chained (queued) stall.
    junction_delayed: std::collections::HashSet<usize>,
    barrier_us: f64,
    capacity: usize,
    recovery_us: f64,
    policy: SchedulePolicy,
}

impl Scheduler {
    /// A quiescent scheduler with the given junction capacity (clamped to
    /// at least 1), post-hop recovery window
    /// ([`HardwareSpec::junction_recovery_us`]) and the default
    /// [`SchedulePolicy::Windowed`] policy. Recovery only affects the
    /// windowed rule; the legacy oracle predates it and always releases a
    /// junction at the hop's raw end.
    pub fn new(junction_capacity: usize, junction_recovery_us: f64) -> Self {
        Scheduler {
            site_busy: HashMap::new(),
            qubit_busy: HashMap::new(),
            junction_windows: HashMap::new(),
            junction_delayed: std::collections::HashSet::new(),
            barrier_us: 0.0,
            capacity: junction_capacity.max(1),
            recovery_us: junction_recovery_us.max(0.0),
            policy: SchedulePolicy::default(),
        }
    }

    /// Switches the junction-contention rule (see [`SchedulePolicy`]).
    pub fn set_policy(&mut self, policy: SchedulePolicy) {
        self.policy = policy;
    }

    /// The active junction-contention rule.
    pub fn policy(&self) -> SchedulePolicy {
        self.policy
    }

    /// The junction capacity this scheduler enforces.
    pub fn junction_capacity(&self) -> usize {
        self.capacity
    }

    /// The post-hop junction recovery window this scheduler enforces (µs).
    pub fn junction_recovery_us(&self) -> f64 {
        self.recovery_us
    }

    /// Raises the barrier: every subsequent op starts no earlier than `now`.
    pub fn barrier(&mut self, now_us: f64) {
        self.barrier_us = now_us;
    }

    /// The current barrier time in microseconds.
    pub fn barrier_us(&self) -> f64 {
        self.barrier_us
    }

    /// The earliest start for an op over the given resources.
    ///
    /// Resources are folded in a fixed order — barrier, ions, zones, then
    /// the junction — with a strict `>` comparison, so exact ties keep the
    /// earlier source; this reproduces the pre-pipeline emission order
    /// bit-for-bit.
    pub fn ready(&self, qubits: &[QubitId], sites: &[QSite], junction: Option<QSite>) -> Slot {
        let mut t = self.barrier_us;
        let mut src = None;
        let consider = |busy: Option<&(f64, usize)>, t: &mut f64, src: &mut Option<usize>| {
            if let Some(&(end, idx)) = busy {
                if end > *t {
                    *t = end;
                    *src = Some(idx);
                }
            }
        };
        for q in qubits {
            consider(self.qubit_busy.get(q), &mut t, &mut src);
        }
        for s in sites {
            consider(self.site_busy.get(s), &mut t, &mut src);
        }
        let mut junction_bound = false;
        let mut junction_stall = false;
        if let Some(j) = junction {
            if let Some(windows) = self.junction_windows.get(&j) {
                match self.policy {
                    SchedulePolicy::Legacy => {
                        // Single-slot rule: only the last hop's end matters.
                        if let Some(&(end, idx)) = windows.first() {
                            if end > t {
                                t = end;
                                src = Some(idx);
                                junction_bound = true;
                                junction_stall = self.junction_delayed.contains(&idx);
                            }
                        }
                    }
                    SchedulePolicy::Windowed => {
                        // Hops whose release (end + recovery) is past t
                        // occupy a slot each. `windows` is descending by
                        // release, so if `capacity` of them are open the
                        // capacity-th largest release is the first moment a
                        // slot frees. Binding on a release with a nonzero
                        // recovery window means the op waited past pure
                        // transit exclusivity — a stall by definition.
                        let open = windows.iter().take_while(|(end, _)| *end > t).count();
                        if open >= self.capacity {
                            let (end, idx) = windows[self.capacity - 1];
                            t = end;
                            src = Some(idx);
                            junction_bound = true;
                            junction_stall =
                                self.recovery_us > 0.0 || self.junction_delayed.contains(&idx);
                        }
                    }
                }
            }
        }
        Slot { start_us: t, src, junction_bound, junction_stall }
    }

    /// Records that op `op_idx` was junction-delayed
    /// ([`Slot::junction_bound`]), so later hops blocked by its window are
    /// recognised as chained stalls ([`Slot::junction_stall`]).
    pub fn note_junction_delay(&mut self, op_idx: usize) {
        self.junction_delayed.insert(op_idx);
    }

    /// Commits op `op_idx`'s busy window `[start, end_us)` on every resource
    /// it uses.
    pub fn occupy(
        &mut self,
        qubits: &[QubitId],
        sites: &[QSite],
        junction: Option<QSite>,
        end_us: f64,
        op_idx: usize,
    ) {
        for q in qubits {
            self.qubit_busy.insert(*q, (end_us, op_idx));
        }
        for s in sites {
            self.site_busy.insert(*s, (end_us, op_idx));
        }
        if let Some(j) = junction {
            let windows = self.junction_windows.entry(j).or_default();
            match self.policy {
                SchedulePolicy::Legacy => {
                    windows.clear();
                    windows.push((end_us, op_idx));
                }
                SchedulePolicy::Windowed => {
                    // A slot frees only after the hop's recovery window
                    // elapses. The single fp add matches replay arithmetic
                    // (`fl(end + recovery)`) so replication stays bit-exact;
                    // at recovery 0 the release is the raw end, unchanged.
                    let release =
                        if self.recovery_us > 0.0 { end_us + self.recovery_us } else { end_us };
                    windows.push((release, op_idx));
                    windows.sort_by(|a, b| {
                        b.0.partial_cmp(&a.0)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.1.cmp(&b.1))
                    });
                    windows.truncate(self.capacity);
                }
            }
        }
    }
}

/// Statistics of one SIMD batching pass over one op sequence.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Pulses emitted that merged two or more co-scheduled ops.
    pub batched_pulses: usize,
    /// Original ops that ended up inside multi-op pulses.
    pub merged_ops: usize,
}

impl BatchStats {
    /// Ops removed from the stream by merging (`merged_ops` minus the
    /// pulses that carry them).
    pub fn ops_saved(&self) -> usize {
        self.merged_ops - self.batched_pulses
    }
}

/// True if `op` may join a SIMD batch: a single-qubit, record-free,
/// junction-free gate pulse. Transport never batches (it mutates ion
/// positions mid-stream) and measurement pulses never batch (their records
/// and labels must survive untouched).
fn batchable(op: &TimedOp) -> bool {
    op.op.is_gate()
        && op.op.arity() == 1
        && op.op != NativeOp::MeasureZ
        && op.measurement.is_none()
        && op.junction.is_none()
}

/// The SIMD batching pass over a flat op sequence.
///
/// Scans `ops` in stream order and merges runs of co-scheduled identical
/// pulses — same [`NativeOp`], bit-identical start and duration — into one
/// multi-zone pulse of at most [`HardwareSpec::simd_width`] members, placed
/// at the first member's stream position. A gate is never hoisted across a
/// transport of **its own ion**: the validity checker replays positions in
/// stream order, so merging an op into a pulse that precedes its ion's
/// `Move`/`JunctionMove` would validate it at a stale position. Transports
/// of unrelated ions don't close batches — per-plaquette emission
/// interleaves ancilla transports between co-scheduled gates, and the
/// blanket rule would forbid every merge a real round offers.
///
/// Returns the batched sequence, an old-index → new-index remap (members of
/// a merged pulse map to the pulse), and the pass statistics. Width ≤ 1
/// returns the input unchanged.
pub fn batch_ops(ops: &[TimedOp], spec: &HardwareSpec) -> (Vec<TimedOp>, Vec<usize>, BatchStats) {
    batch_scan(ops, spec.simd_width, |_, _| 0)
}

/// Core batching scan. `key_of(i, remap_so_far)` contributes an extra
/// caller-defined component to op `i`'s grouping key; round templates use
/// it to key on each op's remapped critical predecessor (which always
/// precedes the op, so its remap entry exists by the time it is consulted).
fn batch_scan(
    ops: &[TimedOp],
    width: usize,
    key_of: impl Fn(usize, &[usize]) -> u64,
) -> (Vec<TimedOp>, Vec<usize>, BatchStats) {
    /// Grouping key of a batchable pulse: the op kind, bit-exact start and
    /// duration, plus a caller-defined component (predecessor keying).
    type BatchKey = (NativeOp, u64, u64, u64);
    /// An open batch: output index, members so far, transport counter at
    /// open time.
    type OpenBatch = (usize, usize, usize);
    let mut stats = BatchStats::default();
    if width <= 1 {
        return (ops.to_vec(), (0..ops.len()).collect(), stats);
    }
    let mut out: Vec<TimedOp> = Vec::with_capacity(ops.len());
    let mut remap: Vec<usize> = Vec::with_capacity(ops.len());
    // Open batches: grouping key → (output index, members so far, transport
    // counter at open). An op only joins a batch if none of its ions moved
    // since the batch opened (stream-order position replay stays valid).
    let mut open: HashMap<BatchKey, OpenBatch> = HashMap::new();
    let mut last_moved: HashMap<QubitId, usize> = HashMap::new();
    let mut transports_seen: usize = 0;
    for (i, op) in ops.iter().enumerate() {
        if op.op.is_transport() {
            transports_seen += 1;
            for q in &op.qubits {
                last_moved.insert(*q, transports_seen);
            }
        }
        if !batchable(op) {
            remap.push(out.len());
            out.push(op.clone());
            continue;
        }
        let key = (op.op, op.start_us.to_bits(), op.duration_us.to_bits(), key_of(i, &remap));
        match open.get_mut(&key) {
            Some(&mut (idx, ref mut members, opened))
                if *members < width
                    && op.qubits.iter().all(|q| last_moved.get(q).is_none_or(|&c| c <= opened)) =>
            {
                let pulse = &mut out[idx];
                pulse.sites.extend(op.sites.iter().copied());
                pulse.qubits.extend(op.qubits.iter().copied());
                *members += 1;
                if *members == 2 {
                    stats.batched_pulses += 1;
                    stats.merged_ops += 2;
                } else {
                    stats.merged_ops += 1;
                }
                remap.push(idx);
            }
            _ => {
                // New key, a full pulse, or the op's ion moved since the
                // pulse opened: open a fresh one.
                let idx = out.len();
                remap.push(idx);
                out.push(op.clone());
                open.insert(key, (idx, 1, transports_seen));
            }
        }
    }
    (out, remap, stats)
}

/// Applies [`HardwareSpec::batch_discount`] to merged pulses of a flat
/// (non-templated) segment: a pulse carrying `k ≥ 2` members shrinks to
/// `duration * (1 - batch_discount)`. Start times never move, so shrinking
/// only shortens occupancy windows — the schedule stays checker-clean.
fn apply_discount(ops: &mut [TimedOp], spec: &HardwareSpec) {
    let discount = spec.batch_discount.clamp(0.0, 1.0);
    if discount <= 0.0 {
        return;
    }
    for op in ops {
        if op.op.arity() == 1 && op.sites.len() > 1 {
            op.duration_us *= 1.0 - discount;
        }
    }
}

/// Per-segment statistics of batching a periodic circuit: the round figure
/// counts one template occurrence (multiply by `repeats` for totals).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundBatchStats {
    /// Batching statistics of the prologue.
    pub prologue: BatchStats,
    /// Batching statistics of one round occurrence.
    pub round: BatchStats,
    /// Batching statistics of the epilogue.
    pub epilogue: BatchStats,
}

impl RoundBatchStats {
    /// Multi-op pulses across every round occurrence.
    pub fn total_batched_pulses(&self, repeats: usize) -> usize {
        self.prologue.batched_pulses
            + repeats * self.round.batched_pulses
            + self.epilogue.batched_pulses
    }
}

/// The SIMD batching pass over a periodic circuit.
///
/// Batches the prologue, the round template and the epilogue independently
/// (a pulse never spans segments — segments are barrier-separated). The
/// template's critical-predecessor vector is remapped so replication still
/// replays the captured addition chains bit-exactly; template members only
/// merge when they share a predecessor, and template durations are never
/// discounted, so the round period is preserved. Width ≤ 1 returns a clone
/// of the input with zero stats — the strict no-op the default profile
/// relies on.
pub fn batch_rounds(
    rounds: &CompiledRounds,
    spec: &HardwareSpec,
) -> (CompiledRounds, RoundBatchStats) {
    if spec.simd_width <= 1 {
        return (rounds.clone(), RoundBatchStats::default());
    }
    let (mut prologue_ops, _, prologue_stats) = batch_ops(rounds.prologue.ops(), spec);
    apply_discount(&mut prologue_ops, spec);

    // Template: group by remapped predecessor too, so every member of a
    // merged pulse replays the same addition chain.
    let template_preds = &rounds.template.preds;
    let (template_ops, remap, round_stats) =
        batch_scan(&rounds.template.ops, spec.simd_width, |i, remap| {
            match template_preds.get(i).copied().flatten() {
                Some(p) => remap[p as usize] as u64,
                None => u64::MAX,
            }
        });
    let new_preds: Vec<Option<u32>> = {
        // One pred per *output* pulse: all members share it by construction.
        let mut preds = vec![None; template_ops.len()];
        for (old, &new) in remap.iter().enumerate() {
            preds[new] = template_preds[old].map(|p| remap[p as usize] as u32);
        }
        preds
    };
    let (mut epilogue_ops, _, epilogue_stats) = batch_ops(rounds.epilogue.ops(), spec);
    apply_discount(&mut epilogue_ops, spec);

    (
        CompiledRounds {
            prologue: Circuit::from_ops(prologue_ops),
            template: RoundTemplate {
                ops: template_ops,
                preds: new_preds,
                base_us: rounds.template.base_us,
                recovery_us: rounds.template.recovery_us,
                meas_per_round: rounds.template.meas_per_round,
            },
            repeats: rounds.repeats,
            epilogue: Circuit::from_ops(epilogue_ops),
            measurements: rounds.measurements.clone(),
            rebase_us: rounds.rebase_us,
        },
        RoundBatchStats { prologue: prologue_stats, round: round_stats, epilogue: epilogue_stats },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate(op: NativeOp, site: QSite, qubit: QubitId, start: f64, dur: f64) -> TimedOp {
        TimedOp {
            op,
            sites: vec![site],
            qubits: vec![qubit],
            start_us: start,
            duration_us: dur,
            junction: None,
            measurement: None,
        }
    }

    fn wide(width: usize) -> HardwareSpec {
        let mut spec = HardwareSpec::h1();
        spec.simd_width = width;
        spec
    }

    #[test]
    fn windowed_capacity_one_matches_legacy_rule() {
        // Same op sequence through both policies: decisions must agree.
        let mut a = Scheduler::new(1, 0.0);
        let mut b = Scheduler::new(1, 0.0);
        b.set_policy(SchedulePolicy::Legacy);
        let j = QSite::new(0, 4);
        let hops = [
            (QubitId(0), QSite::new(0, 3), QSite::new(0, 5)),
            (QubitId(1), QSite::new(1, 4), QSite::new(0, 3)),
            (QubitId(2), QSite::new(0, 5), QSite::new(1, 4)),
        ];
        for (i, (q, from, to)) in hops.iter().enumerate() {
            let sites = [*from, *to];
            let sa = a.ready(&[*q], &sites, Some(j));
            let sb = b.ready(&[*q], &sites, Some(j));
            assert_eq!(sa, sb, "hop {i}");
            a.occupy(&[*q], &sites, Some(j), sa.start_us + 210.0, i);
            b.occupy(&[*q], &sites, Some(j), sb.start_us + 210.0, i);
        }
    }

    #[test]
    fn capacity_two_admits_two_concurrent_hops() {
        let mut s = Scheduler::new(2, 0.0);
        let j = QSite::new(0, 4);
        let decide = |s: &mut Scheduler, q: u32, idx: usize, dur: f64| {
            let slot = s.ready(&[QubitId(q)], &[], Some(j));
            s.occupy(&[QubitId(q)], &[], Some(j), slot.start_us + dur, idx);
            slot
        };
        let s0 = decide(&mut s, 0, 0, 100.0);
        let s1 = decide(&mut s, 1, 1, 150.0);
        let s2 = decide(&mut s, 2, 2, 100.0);
        assert_eq!(s0.start_us, 0.0);
        assert!(!s0.junction_bound);
        assert_eq!(s1.start_us, 0.0, "second hop shares the junction");
        assert!(!s1.junction_bound);
        assert_eq!(s2.start_us, 100.0, "third hop waits for a slot");
        assert!(s2.junction_bound);
        assert!(!s2.junction_stall, "the blocking hop was itself unimpeded");
        assert_eq!(s2.src, Some(0), "the earliest-freeing slot admits it");
    }

    #[test]
    fn batch_ops_merges_up_to_width_and_remaps() {
        let ops: Vec<TimedOp> = (0..5)
            .map(|i| gate(NativeOp::XPi2, QSite::new(0, 1 + i), QubitId(i), 0.0, 10.0))
            .collect();
        let (out, remap, stats) = batch_ops(&ops, &wide(2));
        // ceil(5/2) = 3 pulses.
        assert_eq!(out.len(), 3);
        assert_eq!(remap, vec![0, 0, 1, 1, 2]);
        assert_eq!(stats.batched_pulses, 2);
        assert_eq!(stats.merged_ops, 4);
        assert_eq!(out[0].sites.len(), 2);
        assert_eq!(out[2].sites.len(), 1);
    }

    #[test]
    fn transport_of_the_batched_ion_closes_its_batch() {
        let mv = TimedOp {
            op: NativeOp::Move,
            sites: vec![QSite::new(0, 2), QSite::new(0, 3)],
            qubits: vec![QubitId(9)],
            start_us: 0.0,
            duration_us: 5.25,
            junction: None,
            measurement: None,
        };
        let ops = vec![
            gate(NativeOp::XPi2, QSite::new(0, 1), QubitId(0), 0.0, 10.0),
            mv,
            gate(NativeOp::XPi2, QSite::new(0, 3), QubitId(9), 0.0, 10.0),
        ];
        let (out, _, stats) = batch_ops(&ops, &wide(4));
        assert_eq!(out.len(), 3, "a gate never merges across a transport of its own ion");
        assert_eq!(stats.batched_pulses, 0);
    }

    #[test]
    fn transport_of_an_unrelated_ion_leaves_batches_open() {
        let mv = TimedOp {
            op: NativeOp::Move,
            sites: vec![QSite::new(0, 2), QSite::new(0, 3)],
            qubits: vec![QubitId(9)],
            start_us: 0.0,
            duration_us: 5.25,
            junction: None,
            measurement: None,
        };
        let ops = vec![
            gate(NativeOp::XPi2, QSite::new(0, 1), QubitId(0), 0.0, 10.0),
            mv,
            gate(NativeOp::XPi2, QSite::new(0, 5), QubitId(1), 0.0, 10.0),
        ];
        let (out, remap, stats) = batch_ops(&ops, &wide(4));
        assert_eq!(out.len(), 2, "ion 1 never moved, so its gate joins the open pulse");
        assert_eq!(remap, vec![0, 1, 0]);
        assert_eq!(stats.batched_pulses, 1);
        assert_eq!(stats.merged_ops, 2);
    }

    #[test]
    fn width_one_is_identity() {
        let ops: Vec<TimedOp> = (0..4)
            .map(|i| gate(NativeOp::YPi4, QSite::new(0, 1 + i), QubitId(i), 0.0, 10.0))
            .collect();
        let (out, remap, stats) = batch_ops(&ops, &wide(1));
        assert_eq!(out, ops);
        assert_eq!(remap, vec![0, 1, 2, 3]);
        assert_eq!(stats, BatchStats::default());
    }
}

//! Interned measurement labels.
//!
//! The compiler used to attach a freshly `format!`ed `String` to every
//! measurement record (hundreds of thousands per circuit at d = 19). A
//! [`Label`] is the interned replacement: a small `Copy` enum whose variants
//! carry the handful of integer arguments the old strings embedded, rendered
//! back to the legacy text on demand by [`Label::render`]. Interning keeps
//! record emission allocation-free and lets the round-replication machinery
//! of [`crate::rounds`] re-number a replicated round's labels with plain
//! integer arithmetic ([`Label::advance_round`]).

use std::fmt;

/// The round-context half of a syndrome-measurement label: which kind of
/// repeated error-correction sequence the round belongs to, plus the round's
/// sequence number within it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RoundLabel {
    /// Round `n` of an `Idle` sequence — renders as `idle round {n}`.
    Idle(u32),
    /// Round `n` while two patches are merged — renders as `merge round {n}`.
    Merge(u32),
    /// Round `n` of a patch extension — renders as `extension round {n}`.
    Extension(u32),
    /// A free-form static context (fixtures, tests, ad-hoc rounds).
    Named(&'static str),
}

impl RoundLabel {
    /// The same context `by` rounds later; free-form contexts carry no
    /// sequence number and are returned unchanged.
    pub fn advance(self, by: u32) -> RoundLabel {
        match self {
            RoundLabel::Idle(r) => RoundLabel::Idle(r + by),
            RoundLabel::Merge(r) => RoundLabel::Merge(r + by),
            RoundLabel::Extension(r) => RoundLabel::Extension(r + by),
            RoundLabel::Named(s) => RoundLabel::Named(s),
        }
    }
}

impl fmt::Display for RoundLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoundLabel::Idle(r) => write!(f, "idle round {r}"),
            RoundLabel::Merge(r) => write!(f, "merge round {r}"),
            RoundLabel::Extension(r) => write!(f, "extension round {r}"),
            RoundLabel::Named(s) => f.write_str(s),
        }
    }
}

impl From<&'static str> for RoundLabel {
    fn from(s: &'static str) -> Self {
        RoundLabel::Named(s)
    }
}

/// An interned measurement label: what a measurement record is *for*,
/// stored as a small copyable value instead of an owned string.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Label {
    /// A free-form static label (tests and ad-hoc callers).
    Static(&'static str),
    /// One stabilizer readout of a syndrome-extraction round — renders as
    /// `{round} {Z|X} cell ({row}, {col})`.
    Syndrome {
        /// The round context (sequence kind + round number).
        round: RoundLabel,
        /// True for an X-type stabilizer, false for Z-type.
        x_type: bool,
        /// Stabilizer cell row (patch-local, may be -1 on the boundary).
        row: i32,
        /// Stabilizer cell column (patch-local, may be -1 on the boundary).
        col: i32,
    },
    /// One data qubit of a transversal readout — renders as
    /// `data ({row},{col}) {Z|X}`.
    DataReadout {
        /// True for an X-basis readout, false for Z-basis.
        x_basis: bool,
        /// Data-qubit row within the tile.
        row: u32,
        /// Data-qubit column within the tile.
        col: u32,
    },
    /// One ancilla-strip qubit measured out by a lattice-surgery split —
    /// renders as `split ancilla ({row},{col})`.
    SplitAncilla {
        /// Strip-qubit row in merged-patch coordinates.
        row: u32,
        /// Strip-qubit column in merged-patch coordinates.
        col: u32,
    },
    /// One data qubit measured out by a patch contraction — renders as
    /// `contraction data ({row},{col})`.
    ContractionData {
        /// Removed-row index.
        row: u32,
        /// Column index.
        col: u32,
    },
}

impl Label {
    /// Renders the label to its legacy string form.
    pub fn render(&self) -> String {
        self.to_string()
    }

    /// The same label `by` rounds later: syndrome labels advance their round
    /// context, every other variant is round-independent and unchanged.
    /// Used when a captured round template is replicated analytically.
    pub fn advance_round(self, by: u32) -> Label {
        match self {
            Label::Syndrome { round, x_type, row, col } => {
                Label::Syndrome { round: round.advance(by), x_type, row, col }
            }
            other => other,
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Static(s) => f.write_str(s),
            Label::Syndrome { round, x_type, row, col } => {
                write!(f, "{round} {} cell ({row}, {col})", if *x_type { "X" } else { "Z" })
            }
            Label::DataReadout { x_basis, row, col } => {
                write!(f, "data ({row},{col}) {}", if *x_basis { "X" } else { "Z" })
            }
            Label::SplitAncilla { row, col } => write!(f, "split ancilla ({row},{col})"),
            Label::ContractionData { row, col } => write!(f, "contraction data ({row},{col})"),
        }
    }
}

impl From<&'static str> for Label {
    fn from(s: &'static str) -> Self {
        Label::Static(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_render_the_legacy_strings() {
        assert_eq!(
            Label::Syndrome { round: RoundLabel::Idle(3), x_type: false, row: 0, col: 1 }.render(),
            "idle round 3 Z cell (0, 1)"
        );
        assert_eq!(
            Label::Syndrome { round: RoundLabel::Merge(0), x_type: true, row: -1, col: 2 }.render(),
            "merge round 0 X cell (-1, 2)"
        );
        assert_eq!(Label::DataReadout { x_basis: false, row: 1, col: 2 }.render(), "data (1,2) Z");
        assert_eq!(Label::DataReadout { x_basis: true, row: 0, col: 0 }.render(), "data (0,0) X");
        assert_eq!(Label::SplitAncilla { row: 3, col: 1 }.render(), "split ancilla (3,1)");
        assert_eq!(Label::ContractionData { row: 0, col: 4 }.render(), "contraction data (0,4)");
        assert_eq!(Label::from("fiducial quiescence").render(), "fiducial quiescence");
    }

    #[test]
    fn advance_round_renumbers_only_syndrome_labels() {
        let s = Label::Syndrome { round: RoundLabel::Idle(1), x_type: true, row: 0, col: 0 };
        assert_eq!(s.advance_round(4).render(), "idle round 5 X cell (0, 0)");
        let named =
            Label::Syndrome { round: RoundLabel::Named("quiesce"), x_type: false, row: 0, col: 0 };
        assert_eq!(named.advance_round(7), named);
        let data = Label::DataReadout { x_basis: false, row: 0, col: 0 };
        assert_eq!(data.advance_round(3), data);
        assert_eq!(RoundLabel::Extension(2).advance(2), RoundLabel::Extension(4));
    }
}

//! Pluggable hardware parameterisations ([`HardwareSpec`]).
//!
//! Every resource estimate in the paper (Tables 1–5, Secs. 3.2–3.4) flows
//! from one literature-derived parameterisation of a QCCD trapped-ion
//! processor: 80 m/s zone transport, 4 m/s junction hops, a 420 µm zone
//! pitch, and a ~2 ms `(ZZ)_{π/4}` interaction. [`HardwareSpec`] makes that
//! parameterisation a first-class value: [`HardwareSpec::h1`] is the
//! paper-faithful default, and named variants ([`HardwareSpec::projected`],
//! [`HardwareSpec::slow_junction`]) let the same workload be compiled and
//! accounted under different trap-architecture assumptions — the axis that
//! resource conclusions swing on in the related literature.

use std::hash::Hasher;

use crate::ops::NativeOp;

/// A complete hardware parameterisation: per-operation gate durations,
/// transport speeds, zone geometry and capacity.
///
/// All durations are microseconds, lengths are metres, speeds are metres
/// per second. Transport durations are *derived*: a zone-to-zone shuttle
/// covers one zone pitch at [`HardwareSpec::zone_speed_m_s`], and a junction
/// hop is [`HardwareSpec::junction_traversals_per_hop`] traversals of one
/// pitch at [`HardwareSpec::junction_speed_m_s`].
#[derive(Clone, Debug, PartialEq)]
pub struct HardwareSpec {
    /// Short machine-readable profile name (e.g. `"h1"`).
    pub name: String,
    /// One-line human-readable description of the profile.
    pub description: String,
    /// `Prepare_Z` duration in microseconds.
    pub prepare_us: f64,
    /// `Measure_Z` duration in microseconds.
    pub measure_us: f64,
    /// Duration of the X/Y-axis Pauli rotations (`X_θ`, `Y_θ`) in
    /// microseconds.
    pub xy_rotation_us: f64,
    /// Duration of the Z-axis rotations (`Z_θ`, including the T gate) in
    /// microseconds.
    pub z_rotation_us: f64,
    /// Duration of the entangling `(ZZ)_{π/4}` interaction in microseconds
    /// (dominated by the implied split/merge/cool steps).
    pub zz_us: f64,
    /// Centre-to-centre pitch of adjacent trapping zones in metres.
    pub zone_pitch_m: f64,
    /// Ion transport speed between adjacent zones of one segment, in m/s.
    pub zone_speed_m_s: f64,
    /// Ion transport speed through a junction, in m/s.
    pub junction_speed_m_s: f64,
    /// Number of junction traversals charged per compiled junction hop
    /// (`Move zoneA zoneB` through an X-junction is charged two).
    pub junction_traversals_per_hop: usize,
    /// Maximum number of ions a single trapping zone may hold. The grid
    /// layer currently schedules one ion per zone; the capacity is part of
    /// the profile so denser-packing scenarios carry their assumption
    /// explicitly.
    pub ions_per_zone: usize,
    /// Maximum number of hops a single junction may host concurrently.
    /// The scheduling pass treats junction occupancy windows as a resource
    /// with this capacity: a hop requested while `junction_capacity` hops
    /// are still in flight through the same junction is delayed until a
    /// slot frees.
    pub junction_capacity: usize,
    /// Recovery (recool) time a junction needs after a hop, in
    /// microseconds: the hop's occupancy window is held for
    /// `duration + junction_recovery_us` before its slot frees. Shuttling
    /// through a junction heats the ion chain, and the junction region
    /// needs sympathetic recooling before the next transport. `0.0` (the
    /// default on every clean profile) leaves schedules bit-identical to
    /// pure exclusive transit; a hop that waits into another hop's recovery
    /// window is a *junction stall* (the wait exceeds physical transit
    /// exclusivity) and is counted in the estimate report.
    pub junction_recovery_us: f64,
    /// SIMD gate-batching width: the maximum number of co-scheduled
    /// identical single-qubit pulses merged into one multi-zone pulse by
    /// the batching pass. Width 1 disables batching and is a strict no-op
    /// (byte-identical compiled output).
    pub simd_width: usize,
    /// Fractional duration discount applied to merged (k ≥ 2) SIMD pulses
    /// in non-templated circuit segments: a merged pulse lasts
    /// `duration * (1 - batch_discount)`. Round templates are never
    /// discounted so replicated rounds keep their bit-exact period.
    pub batch_discount: f64,
}

impl Default for HardwareSpec {
    fn default() -> Self {
        HardwareSpec::h1()
    }
}

impl HardwareSpec {
    /// The paper-faithful default profile (Quantinuum H1 literature values,
    /// paper Sec. 3.2 / Table 5): 10 µs preparation, 120 µs measurement,
    /// 10 µs X/Y rotations, 3 µs Z rotations, 2000 µs `(ZZ)_{π/4}`, 420 µm
    /// pitch, 80 m/s zone transport and 4 m/s junction transport with two
    /// traversals per hop.
    pub fn h1() -> Self {
        HardwareSpec {
            name: "h1".to_string(),
            description: "paper-faithful Quantinuum H1 literature values (Sec. 3.2)".to_string(),
            prepare_us: 10.0,
            measure_us: 120.0,
            xy_rotation_us: 10.0,
            z_rotation_us: 3.0,
            zz_us: 2000.0,
            zone_pitch_m: 420e-6,
            zone_speed_m_s: 80.0,
            junction_speed_m_s: 4.0,
            junction_traversals_per_hop: 2,
            ions_per_zone: 1,
            junction_capacity: 1,
            junction_recovery_us: 0.0,
            simd_width: 1,
            batch_discount: 0.0,
        }
    }

    /// A projected next-generation profile: faster transport (250 m/s zone,
    /// 20 m/s junction), a 4× faster `(ZZ)_{π/4}` and 2× faster state
    /// preparation/measurement — the optimistic end of the trap-architecture
    /// design space discussed in the related scaling literature.
    pub fn projected() -> Self {
        HardwareSpec {
            name: "projected".to_string(),
            description: "projected faster-transport next-generation trap".to_string(),
            prepare_us: 5.0,
            measure_us: 60.0,
            xy_rotation_us: 5.0,
            z_rotation_us: 1.5,
            zz_us: 500.0,
            zone_pitch_m: 420e-6,
            zone_speed_m_s: 250.0,
            junction_speed_m_s: 20.0,
            junction_traversals_per_hop: 2,
            ions_per_zone: 1,
            junction_capacity: 1,
            junction_recovery_us: 0.0,
            simd_width: 1,
            batch_discount: 0.0,
        }
    }

    /// A junction-transport stress profile: identical to [`HardwareSpec::h1`]
    /// except junctions are traversed 10× slower (0.4 m/s) and each hop
    /// leaves the junction hot for a 100 µs recool window
    /// ([`HardwareSpec::junction_recovery_us`]). Junction occupancy is an
    /// explicit scheduling resource (capacity 1, one hop in flight per
    /// junction), so with 2.1 ms hops plus recovery the capacity actually
    /// bites: concurrent transports through a shared junction serialize,
    /// recovery waits are counted as `junction_stalls`, and the profile
    /// isolates how much of an instruction's makespan is junction-bound.
    pub fn slow_junction() -> Self {
        HardwareSpec {
            junction_speed_m_s: 0.4,
            junction_capacity: 1,
            junction_recovery_us: 100.0,
            name: "slow_junction".to_string(),
            description: "h1 with 10x slower junction transport (stress profile)".to_string(),
            ..HardwareSpec::h1()
        }
    }

    /// Every built-in profile, default first.
    pub fn presets() -> Vec<HardwareSpec> {
        vec![HardwareSpec::h1(), HardwareSpec::projected(), HardwareSpec::slow_junction()]
    }

    /// Looks up a built-in profile by name, case-insensitively (`"default"`
    /// is an alias for the paper-faithful [`HardwareSpec::h1`]).
    pub fn by_name(name: &str) -> Result<HardwareSpec, UnknownProfile> {
        let normalized = name.trim().to_ascii_lowercase().replace('-', "_");
        if normalized == "default" {
            return Ok(HardwareSpec::h1());
        }
        HardwareSpec::presets()
            .into_iter()
            .find(|p| p.name == normalized)
            .ok_or_else(|| UnknownProfile { input: name.to_string() })
    }

    /// Duration of one zone-to-zone shuttle in microseconds (one pitch at
    /// the zone transport speed).
    pub fn move_us(&self) -> f64 {
        // Convert the pitch to µm *before* dividing: for the h1 values this
        // yields exactly 5.25 µs (420/80), reproducing the paper schedule
        // bit-for-bit where the post-division ordering would not.
        self.zone_pitch_m * 1e6 / self.zone_speed_m_s
    }

    /// Duration of one compiled junction hop in microseconds
    /// ([`HardwareSpec::junction_traversals_per_hop`] traversals of one
    /// pitch at the junction transport speed).
    pub fn junction_hop_us(&self) -> f64 {
        self.junction_traversals_per_hop as f64 * (self.zone_pitch_m * 1e6)
            / self.junction_speed_m_s
    }

    /// Duration of a native operation under this profile, in microseconds.
    pub fn duration_us(&self, op: NativeOp) -> f64 {
        match op {
            NativeOp::PrepareZ => self.prepare_us,
            NativeOp::MeasureZ => self.measure_us,
            NativeOp::XPi2
            | NativeOp::XPi4
            | NativeOp::XPi4Dag
            | NativeOp::YPi2
            | NativeOp::YPi4
            | NativeOp::YPi4Dag => self.xy_rotation_us,
            NativeOp::ZPi2
            | NativeOp::ZPi4
            | NativeOp::ZPi4Dag
            | NativeOp::ZPi8
            | NativeOp::ZPi8Dag => self.z_rotation_us,
            NativeOp::ZZ => self.zz_us,
            NativeOp::Move => self.move_us(),
            NativeOp::JunctionMove => self.junction_hop_us(),
        }
    }

    /// A copy of this profile with every native-operation duration scaled
    /// by `k` (gate times multiplied, transport speeds divided), renamed to
    /// record the scaling. Uniform duration scaling must scale every
    /// compiled circuit's makespan by exactly `k` — pinned by a property
    /// test — since ASAP scheduling is duration-homogeneous.
    pub fn scale_durations(&self, k: f64) -> HardwareSpec {
        HardwareSpec {
            name: format!("{}*{k}", self.name),
            description: format!("{} (durations scaled by {k})", self.description),
            prepare_us: self.prepare_us * k,
            measure_us: self.measure_us * k,
            xy_rotation_us: self.xy_rotation_us * k,
            z_rotation_us: self.z_rotation_us * k,
            zz_us: self.zz_us * k,
            zone_pitch_m: self.zone_pitch_m,
            zone_speed_m_s: self.zone_speed_m_s / k,
            junction_speed_m_s: self.junction_speed_m_s / k,
            junction_traversals_per_hop: self.junction_traversals_per_hop,
            ions_per_zone: self.ions_per_zone,
            junction_capacity: self.junction_capacity,
            junction_recovery_us: self.junction_recovery_us,
            simd_width: self.simd_width,
            batch_discount: self.batch_discount,
        }
    }

    /// A stable fingerprint of every physical parameter (and the profile
    /// name), used to key compile caches: two requests share a cache entry
    /// only if their full parameterisations agree bit-for-bit.
    pub fn fingerprint(&self) -> SpecFingerprint {
        let mut h = Fnv1a::new();
        h.write(self.name.as_bytes());
        for v in [
            self.prepare_us,
            self.measure_us,
            self.xy_rotation_us,
            self.z_rotation_us,
            self.zz_us,
            self.zone_pitch_m,
            self.zone_speed_m_s,
            self.junction_speed_m_s,
        ] {
            h.write(&v.to_bits().to_le_bytes());
        }
        h.write(&(self.junction_traversals_per_hop as u64).to_le_bytes());
        h.write(&(self.ions_per_zone as u64).to_le_bytes());
        h.write(&(self.junction_capacity as u64).to_le_bytes());
        h.write(&self.junction_recovery_us.to_bits().to_le_bytes());
        h.write(&(self.simd_width as u64).to_le_bytes());
        h.write(&self.batch_discount.to_bits().to_le_bytes());
        SpecFingerprint(h.finish())
    }

    /// Multi-line human-readable parameter listing (used by
    /// `tiscc profiles`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{} — {}\n", self.name, self.description));
        out.push_str(&format!("  prepare             : {:>9.2} us\n", self.prepare_us));
        out.push_str(&format!("  measure             : {:>9.2} us\n", self.measure_us));
        out.push_str(&format!("  X/Y rotation        : {:>9.2} us\n", self.xy_rotation_us));
        out.push_str(&format!("  Z rotation          : {:>9.2} us\n", self.z_rotation_us));
        out.push_str(&format!("  (ZZ)_pi/4           : {:>9.2} us\n", self.zz_us));
        out.push_str(&format!("  zone pitch          : {:>9.1} um\n", self.zone_pitch_m * 1e6));
        out.push_str(&format!("  zone transport      : {:>9.2} m/s\n", self.zone_speed_m_s));
        out.push_str(&format!("  junction transport  : {:>9.2} m/s\n", self.junction_speed_m_s));
        out.push_str(&format!("  traversals per hop  : {:>9}\n", self.junction_traversals_per_hop));
        out.push_str(&format!("  ions per zone       : {:>9}\n", self.ions_per_zone));
        out.push_str(&format!("  junction capacity   : {:>9}\n", self.junction_capacity));
        out.push_str(&format!("  junction recovery   : {:>9.2} us\n", self.junction_recovery_us));
        out.push_str(&format!("  simd width          : {:>9}\n", self.simd_width));
        out.push_str(&format!("  batch discount      : {:>9.2}\n", self.batch_discount));
        out.push_str(&format!("  derived Move        : {:>9.2} us\n", self.move_us()));
        out.push_str(&format!("  derived Junction    : {:>9.2} us\n", self.junction_hop_us()));
        out
    }
}

/// A 64-bit fingerprint of a [`HardwareSpec`]'s full parameterisation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpecFingerprint(pub u64);

impl std::fmt::Display for SpecFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Error returned by [`HardwareSpec::by_name`] for an unrecognised profile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownProfile {
    /// The rejected input.
    pub input: String,
}

impl std::fmt::Display for UnknownProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<String> = HardwareSpec::presets().into_iter().map(|p| p.name).collect();
        write!(
            f,
            "unknown hardware profile '{}'; available profiles: {}",
            self.input,
            names.join(", ")
        )
    }
}

impl std::error::Error for UnknownProfile {}

/// Minimal FNV-1a hasher: stable across platforms and Rust releases, unlike
/// `DefaultHasher`, so fingerprints are reproducible in serialized artifacts.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf29ce484222325)
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h1_reproduces_paper_table5_durations() {
        let spec = HardwareSpec::h1();
        assert_eq!(spec.duration_us(NativeOp::PrepareZ), 10.0);
        assert_eq!(spec.duration_us(NativeOp::MeasureZ), 120.0);
        assert_eq!(spec.duration_us(NativeOp::XPi2), 10.0);
        assert_eq!(spec.duration_us(NativeOp::YPi4), 10.0);
        assert_eq!(spec.duration_us(NativeOp::ZPi2), 3.0);
        assert_eq!(spec.duration_us(NativeOp::ZPi8), 3.0);
        assert_eq!(spec.duration_us(NativeOp::ZZ), 2000.0);
        // 420 µm at 80 m/s — bit-for-bit, so the h1 schedule is exactly the
        // paper schedule.
        assert_eq!(spec.duration_us(NativeOp::Move), 5.25);
        // Two traversals of 420 µm at 4 m/s (105 µs each).
        assert_eq!(spec.duration_us(NativeOp::JunctionMove), 210.0);
    }

    #[test]
    fn presets_have_distinct_names_and_fingerprints() {
        let presets = HardwareSpec::presets();
        assert!(presets.len() >= 3);
        let mut names = std::collections::HashSet::new();
        let mut prints = std::collections::HashSet::new();
        for p in &presets {
            assert!(names.insert(p.name.clone()), "duplicate profile name {}", p.name);
            assert!(prints.insert(p.fingerprint()), "fingerprint collision for {}", p.name);
        }
    }

    #[test]
    fn by_name_is_case_insensitive_and_lists_profiles_on_error() {
        assert_eq!(HardwareSpec::by_name("H1").unwrap().name, "h1");
        assert_eq!(HardwareSpec::by_name("default").unwrap().name, "h1");
        assert_eq!(HardwareSpec::by_name("Slow-Junction").unwrap().name, "slow_junction");
        let err = HardwareSpec::by_name("h2").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("h1") && msg.contains("projected") && msg.contains("slow_junction"));
    }

    #[test]
    fn scaling_durations_scales_every_native_op() {
        let base = HardwareSpec::h1();
        let scaled = base.scale_durations(3.0);
        for &op in NativeOp::all() {
            let a = base.duration_us(op);
            let b = scaled.duration_us(op);
            assert!((b - 3.0 * a).abs() < 1e-9 * a.max(1.0), "{op:?}: {a} -> {b}");
        }
        assert_ne!(base.fingerprint(), scaled.fingerprint());
    }

    #[test]
    fn fingerprint_is_stable_and_parameter_sensitive() {
        let a = HardwareSpec::h1();
        assert_eq!(a.fingerprint(), HardwareSpec::h1().fingerprint());
        let mut b = HardwareSpec::h1();
        b.zz_us += 1.0;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn slow_junction_only_slows_junctions() {
        let h1 = HardwareSpec::h1();
        let slow = HardwareSpec::slow_junction();
        assert_eq!(slow.duration_us(NativeOp::ZZ), h1.duration_us(NativeOp::ZZ));
        assert_eq!(slow.duration_us(NativeOp::Move), h1.duration_us(NativeOp::Move));
        assert!((slow.duration_us(NativeOp::JunctionMove) - 2100.0).abs() < 1e-9);
    }

    #[test]
    fn render_lists_all_parameters() {
        let text = HardwareSpec::h1().render();
        for needle in
            ["prepare", "measure", "zone pitch", "junction transport", "Move", "simd width"]
        {
            assert!(text.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn scheduling_knobs_default_to_the_identity_and_feed_the_fingerprint() {
        for p in HardwareSpec::presets() {
            assert_eq!(p.junction_capacity, 1, "{}", p.name);
            assert_eq!(p.simd_width, 1, "{}", p.name);
            assert_eq!(p.batch_discount, 0.0, "{}", p.name);
        }
        // Clean profiles schedule with zero recovery (bit-identical to pure
        // exclusive transit); the stress profile carries a real recool window.
        assert_eq!(HardwareSpec::h1().junction_recovery_us, 0.0);
        assert_eq!(HardwareSpec::projected().junction_recovery_us, 0.0);
        assert!(HardwareSpec::slow_junction().junction_recovery_us > 0.0);
        let base = HardwareSpec::h1();
        let mut wide = HardwareSpec::h1();
        wide.simd_width = 4;
        assert_ne!(base.fingerprint(), wide.fingerprint());
        let mut roomy = HardwareSpec::h1();
        roomy.junction_capacity = 2;
        assert_ne!(base.fingerprint(), roomy.fingerprint());
        let mut hot = HardwareSpec::h1();
        hot.junction_recovery_us = 50.0;
        assert_ne!(base.fingerprint(), hot.fingerprint());
        let mut cheap = HardwareSpec::h1();
        cheap.batch_discount = 0.25;
        assert_ne!(base.fingerprint(), cheap.fingerprint());
    }
}

//! Trapped-ion hardware model: native gate set, literature-derived timings,
//! time-resolved circuits, ASAP scheduling and resource accounting.
//!
//! This crate is the bottom layer of the TISCC stack (paper Secs. 3.2–3.4).
//! It exposes:
//!
//! * [`HardwareSpec`] — a pluggable hardware parameterisation (per-operation
//!   durations, transport speeds, zone pitch and capacity) with the
//!   paper-faithful [`HardwareSpec::h1`] default plus named variants,
//! * [`NativeOp`] — the native trapped-ion gate set of paper Table 5/Fig. 5
//!   (specialised Pauli rotations, `ZZ`, state preparation, measurement and
//!   the `Move`/`Junction` transport primitives); durations resolve against
//!   a [`HardwareSpec`],
//! * [`Circuit`] — a time-resolved hardware circuit: every emitted operation
//!   carries the qsites it acts on, the ions involved and its start time,
//! * [`HardwareModel`] — the builder that appends native operations with
//!   ASAP (as-soon-as-possible) scheduling, accounts for parallelism,
//!   resolves junction conflicts by serialising the conflicting hops, and
//!   compiles composite gates (Hadamard, CNOT) into natives following the
//!   Quantinuum H1 constructions,
//! * [`ResourceReport`] — the space-time resource counters of paper Sec. 3.4,
//!   computed with running accumulators over any [`OpStream`],
//! * [`passes`] — the explicit pass pipeline (schedule → batch → template)
//!   behind the model: contention-aware junction scheduling with an
//!   explicit capacity and stall accounting, plus SIMD gate batching
//!   (see `docs/SCHEDULING.md`),
//! * [`validity`] — an independent replay checker for compiled circuits,
//! * [`rounds`] — periodic (round-templated) circuit representations:
//!   captured syndrome-extraction rounds are replicated analytically with a
//!   bit-exact schedule replay instead of being re-materialized, which is
//!   what makes large-distance (`d ≥ 19`) compilation fast,
//! * [`Label`] — interned, allocation-free measurement labels.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod circuit;
pub mod label;
pub mod model;
pub mod ops;
pub mod passes;
pub mod resources;
pub mod rounds;
pub mod spec;
pub mod validity;

pub use circuit::{Circuit, MeasurementRecord, OpStream, OpView, TimedOp};
pub use label::{Label, RoundLabel};
pub use model::{HardwareModel, HwError, RoundReplication};
pub use ops::NativeOp;
pub use passes::{
    batch_ops, batch_rounds, BatchStats, RoundBatchStats, SchedulePolicy, Scheduler, Slot,
};
pub use resources::{RecordError, ResourceReport};
pub use rounds::{CompiledRounds, ReplicatedSpan, RoundTemplate};
pub use spec::{HardwareSpec, SpecFingerprint, UnknownProfile};

//! Independent validity checking of compiled circuits.
//!
//! The paper (Sec. 1, Sec. 3.3) states that TISCC "ensures the validity of a
//! compiled hardware circuit by simulating ion movements on the grid and
//! resolving junction conflicts". The [`HardwareModel`](crate::HardwareModel)
//! enforces those rules *constructively* while emitting; this module replays
//! a finished circuit and re-checks them independently, so a bug in the
//! scheduler cannot silently produce an invalid circuit.
//!
//! Checked invariants:
//! 1. every transport step moves an ion between zones that are adjacent or
//!    connected through exactly one junction, and the destination zone is
//!    empty at that point of the stream;
//! 2. no two operations overlap in time on the same trapping zone;
//! 3. no two junction hops overlap in time on the same junction;
//! 4. gates address the zone their ion actually occupies at that point.

use std::collections::HashMap;

use tiscc_grid::{Layout, QSite, QubitId, SiteKind};

use crate::circuit::{Circuit, OpStream, OpView};
use crate::ops::NativeOp;

/// A violation found while replaying a circuit.
#[derive(Clone, Debug, PartialEq)]
pub enum ValidityError {
    /// Two timed operations overlap on the same zone.
    ZoneTimeConflict {
        /// The contended zone.
        site: QSite,
        /// Start time of the later operation (µs).
        at_us: f64,
    },
    /// Two junction hops overlap on the same junction.
    JunctionTimeConflict {
        /// The contended junction.
        junction: QSite,
        /// Start time of the later hop (µs).
        at_us: f64,
    },
    /// A transport step between zones that are not connected by a single
    /// shuttle or junction hop.
    IllegalStep(QSite, QSite),
    /// A transport step into a zone that already holds another ion.
    DestinationOccupied(QSite, QubitId),
    /// A gate addressed to a zone that does not hold the ion it names.
    WrongSite {
        /// The ion named by the operation.
        qubit: QubitId,
        /// The zone the operation addresses.
        claimed: QSite,
        /// The zone the ion actually occupies (None if not on the grid).
        actual: Option<QSite>,
    },
    /// A named ion never appeared in the initial placement.
    UnknownQubit(QubitId),
}

impl std::fmt::Display for ValidityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidityError::ZoneTimeConflict { site, at_us } => {
                write!(f, "zone {site} used by two overlapping operations at t={at_us}us")
            }
            ValidityError::JunctionTimeConflict { junction, at_us } => {
                write!(f, "junction {junction} traversed by two overlapping hops at t={at_us}us")
            }
            ValidityError::IllegalStep(a, b) => write!(f, "illegal transport step {a} -> {b}"),
            ValidityError::DestinationOccupied(s, q) => {
                write!(f, "transport into occupied zone {s} (held by {q:?})")
            }
            ValidityError::WrongSite { qubit, claimed, actual } => write!(
                f,
                "operation addresses zone {claimed} for {qubit:?}, which is at {actual:?}"
            ),
            ValidityError::UnknownQubit(q) => write!(f, "operation names unknown qubit {q:?}"),
        }
    }
}

impl std::error::Error for ValidityError {}

/// Replays `circuit` against `layout`, starting from `initial_positions`
/// (the grid snapshot taken *before* compilation began), and returns the
/// first violation found, or `Ok(())`.
pub fn check_circuit(
    layout: &Layout,
    initial_positions: &[(QubitId, QSite)],
    circuit: &Circuit,
) -> Result<(), ValidityError> {
    check_stream(layout, initial_positions, circuit)
}

/// Replays any [`OpStream`] — including periodic circuits, whose replicated
/// rounds are streamed with their replayed schedules rather than
/// materialized — with running accumulators: ion positions evolve in stream
/// order for the movement/addressing checks, and per-site busy intervals
/// are collected on the fly for the exclusivity checks.
pub fn check_stream(
    layout: &Layout,
    initial_positions: &[(QubitId, QSite)],
    stream: &(impl OpStream + ?Sized),
) -> Result<(), ValidityError> {
    check_stream_with_capacity(layout, initial_positions, stream, 1)
}

/// [`check_stream`] under a relaxed junction-exclusivity rule: up to
/// `junction_capacity` hops may overlap in time on one junction before a
/// [`ValidityError::JunctionTimeConflict`] is reported. Capacity 1 is
/// exactly [`check_stream`]; the scheduling pass enforces the same capacity
/// constructively ([`HardwareSpec::junction_capacity`]), so circuits it
/// compiles are clean under the capacity they were scheduled with.
///
/// [`HardwareSpec::junction_capacity`]: crate::spec::HardwareSpec::junction_capacity
pub fn check_stream_with_capacity(
    layout: &Layout,
    initial_positions: &[(QubitId, QSite)],
    stream: &(impl OpStream + ?Sized),
    junction_capacity: usize,
) -> Result<(), ValidityError> {
    let junction_capacity = junction_capacity.max(1);
    let mut pos: HashMap<QubitId, QSite> = initial_positions.iter().copied().collect();
    let mut occ: HashMap<QSite, QubitId> = initial_positions.iter().map(|&(q, s)| (s, q)).collect();

    let mut stream_error: Option<ValidityError> = None;
    let mut zone_intervals: HashMap<QSite, Vec<(f64, f64)>> = HashMap::new();
    let mut junction_intervals: HashMap<QSite, Vec<(f64, f64)>> = HashMap::new();

    stream.for_each_op(&mut |v: OpView<'_>| {
        if stream_error.is_some() {
            return;
        }
        let op = v.op;

        // --- stream-order checks (movement legality, gate addressing) ---
        match op.op {
            NativeOp::Move | NativeOp::JunctionMove => {
                let q = op.qubits[0];
                let (from, to) = (op.sites[0], op.sites[1]);
                let Some(&cur) = pos.get(&q) else {
                    stream_error = Some(ValidityError::UnknownQubit(q));
                    return;
                };
                if cur != from {
                    stream_error = Some(ValidityError::WrongSite {
                        qubit: q,
                        claimed: from,
                        actual: Some(cur),
                    });
                    return;
                }
                let legal = if op.op == NativeOp::Move {
                    layout.neighbors(from).contains(&to)
                } else {
                    // Junction hop: both zones adjacent to the recorded junction.
                    match op.junction {
                        Some(j) => {
                            layout.site_kind(j) == Some(SiteKind::Junction)
                                && layout.neighbors(j).contains(&from)
                                && layout.neighbors(j).contains(&to)
                        }
                        None => false,
                    }
                };
                if !legal {
                    stream_error = Some(ValidityError::IllegalStep(from, to));
                    return;
                }
                if let Some(&other) = occ.get(&to) {
                    if other != q {
                        stream_error = Some(ValidityError::DestinationOccupied(to, other));
                        return;
                    }
                }
                occ.remove(&from);
                occ.insert(to, q);
                pos.insert(q, to);
            }
            _ => {
                for (&q, &s) in op.qubits.iter().zip(op.sites.iter()) {
                    match pos.get(&q) {
                        None => {
                            stream_error = Some(ValidityError::UnknownQubit(q));
                            return;
                        }
                        Some(&actual) if actual != s => {
                            stream_error = Some(ValidityError::WrongSite {
                                qubit: q,
                                claimed: s,
                                actual: Some(actual),
                            });
                            return;
                        }
                        _ => {}
                    }
                }
            }
        }

        // --- interval accumulation for the temporal checks ---
        for &s in &op.sites {
            zone_intervals.entry(s).or_default().push((v.start_us, v.end_us()));
        }
        if let Some(j) = op.junction {
            junction_intervals.entry(j).or_default().push((v.start_us, v.end_us()));
        }
    });
    if let Some(err) = stream_error {
        return Err(err);
    }

    // --- temporal checks (zone and junction exclusivity) ---
    const EPS: f64 = 1e-9;
    for (site, mut intervals) in zone_intervals {
        intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in intervals.windows(2) {
            if w[1].0 < w[0].1 - EPS {
                return Err(ValidityError::ZoneTimeConflict { site, at_us: w[1].0 });
            }
        }
    }
    for (junction, mut intervals) in junction_intervals {
        intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        // Sweep in start order counting hops still in flight: a hop
        // arriving while `junction_capacity` others are open (beyond the
        // EPS tolerance) is a conflict. At capacity 1 this reports exactly
        // the adjacent-pair overlaps the original rule reported.
        let mut open: Vec<f64> = Vec::new();
        for (start, end) in intervals {
            open.retain(|&e| e > start + EPS);
            if open.len() >= junction_capacity {
                return Err(ValidityError::JunctionTimeConflict { junction, at_us: start });
            }
            open.push(end);
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::HardwareModel;

    #[test]
    fn scheduler_output_passes_validation() {
        let mut hw = HardwareModel::new(2, 2);
        let initial: Vec<_> = {
            let a = hw.place_qubit(QSite::new(0, 1)).unwrap();
            let b = hw.place_qubit(QSite::new(1, 0)).unwrap();
            let snapshot = hw.grid().snapshot();
            hw.prepare_z(a).unwrap();
            hw.prepare_z(b).unwrap();
            hw.route_and_move(b, QSite::new(0, 2)).unwrap();
            hw.apply_zz(a, b).unwrap();
            hw.measure_z(b, "syndrome").unwrap();
            snapshot
        };
        let layout = hw.grid().layout().clone();
        check_circuit(&layout, &initial, hw.circuit()).expect("valid circuit");
    }

    #[test]
    fn hand_built_conflicting_circuit_is_rejected() {
        use crate::circuit::TimedOp;
        let layout = Layout::new(1, 1);
        let q0 = QubitId(0);
        let q1 = QubitId(1);
        let site = QSite::new(0, 1);
        let other = QSite::new(0, 2);
        let mut circuit = Circuit::new();
        // Two gates overlapping in time on the same zone.
        circuit.push(TimedOp {
            op: NativeOp::PrepareZ,
            sites: vec![site],
            qubits: vec![q0],
            start_us: 0.0,
            duration_us: 10.0,
            junction: None,
            measurement: None,
        });
        circuit.push(TimedOp {
            op: NativeOp::XPi2,
            sites: vec![site],
            qubits: vec![q0],
            start_us: 5.0,
            duration_us: 10.0,
            junction: None,
            measurement: None,
        });
        let err = check_circuit(&layout, &[(q0, site), (q1, other)], &circuit).unwrap_err();
        assert!(matches!(err, ValidityError::ZoneTimeConflict { .. }));
    }

    #[test]
    fn wrong_site_addressing_is_rejected() {
        use crate::circuit::TimedOp;
        let layout = Layout::new(1, 1);
        let q0 = QubitId(0);
        let mut circuit = Circuit::new();
        circuit.push(TimedOp {
            op: NativeOp::PrepareZ,
            sites: vec![QSite::new(0, 2)],
            qubits: vec![q0],
            start_us: 0.0,
            duration_us: 10.0,
            junction: None,
            measurement: None,
        });
        let err = check_circuit(&layout, &[(q0, QSite::new(0, 1))], &circuit).unwrap_err();
        assert!(matches!(err, ValidityError::WrongSite { .. }));
    }

    #[test]
    fn junction_capacity_relaxes_the_exclusivity_rule() {
        use crate::circuit::TimedOp;
        let layout = Layout::new(2, 2);
        // Interior junction with four disjoint neighbor zones: two hops can
        // overlap on the junction alone, with every zone conflict-free.
        let junction = QSite::new(4, 4);
        let hops = [
            (QubitId(0), QSite::new(4, 3), QSite::new(4, 5), 0.0),
            (QubitId(1), QSite::new(3, 4), QSite::new(5, 4), 100.0),
        ];
        let mut circuit = Circuit::new();
        for &(q, from, to, start) in &hops {
            circuit.push(TimedOp {
                op: NativeOp::JunctionMove,
                sites: vec![from, to],
                qubits: vec![q],
                start_us: start,
                duration_us: 210.0,
                junction: Some(junction),
                measurement: None,
            });
        }
        let initial = vec![(QubitId(0), QSite::new(4, 3)), (QubitId(1), QSite::new(3, 4))];
        assert_eq!(
            check_stream(&layout, &initial, &circuit).unwrap_err(),
            ValidityError::JunctionTimeConflict { junction, at_us: 100.0 },
            "capacity 1 keeps the exclusive rule"
        );
        check_stream_with_capacity(&layout, &initial, &circuit, 2)
            .expect("two concurrent hops fit in capacity 2");
    }

    #[test]
    fn illegal_transport_step_is_rejected() {
        use crate::circuit::TimedOp;
        let layout = Layout::new(1, 1);
        let q0 = QubitId(0);
        let mut circuit = Circuit::new();
        circuit.push(TimedOp {
            op: NativeOp::Move,
            sites: vec![QSite::new(0, 1), QSite::new(0, 3)],
            qubits: vec![q0],
            start_us: 0.0,
            duration_us: 5.25,
            junction: None,
            measurement: None,
        });
        let err = check_circuit(&layout, &[(q0, QSite::new(0, 1))], &circuit).unwrap_err();
        assert!(matches!(err, ValidityError::IllegalStep(_, _)));
    }
}

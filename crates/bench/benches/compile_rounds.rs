//! Round-templated compilation throughput — the `d ≥ 19` hot path.
//!
//! The estimator compiles `dt` syndrome-extraction rounds per logical
//! time-step; the round-template path compiles two representative rounds and
//! replicates the rest analytically. These benches pin three things:
//! the templated front door itself (`templated/*`), the fully materialized
//! reference it replaced (`materialized/*` — expect roughly a `dt/2` ratio
//! between the two at equal parameters), and the streaming resource-report
//! composition over a periodic circuit (`stream_report`). A regression in
//! `templated/*` is a regression of `tiscc estimate`'s dominant cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tiscc_core::instruction::Instruction;
use tiscc_estimator::compiler::{AnalyticArtifact, CompileRequest, Compiler, EstimateMode};
use tiscc_estimator::program::{estimate_program, ProgramEstimateSpec};
use tiscc_estimator::verify::{Fiducial, SingleTile};
use tiscc_hw::{HardwareSpec, ResourceReport};
use tiscc_workloads::{generate, Family, GenSpec};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_rounds");
    group.sample_size(10);

    // The templated hot path at a mid-size distance (dt = d rounds).
    let compiler = Compiler::new();
    for d in [5usize, 9] {
        for instr in [Instruction::Idle, Instruction::MeasureXX] {
            let request = CompileRequest::new(instr, d, d, d);
            group.bench_function(format!("templated/{}/d{d}", instr.id()), |b| {
                b.iter(|| compiler.compile(&request).unwrap())
            });
        }
    }

    // The batched and contended paths through the same front door: SIMD
    // width 4 on h1 (the batching pass does real merging) and the
    // slow_junction recovery window (windowed junction scheduling with
    // stalls). Both still template — a regression here is the realism
    // knobs' overhead growing, not the default path's.
    let mut wide = HardwareSpec::h1();
    wide.simd_width = 4;
    for (name, spec) in
        [("batched/idle/d5", wide), ("contended/idle/d5", HardwareSpec::slow_junction())]
    {
        let request = CompileRequest::new(Instruction::Idle, 5, 5, 5).with_spec(spec);
        group.bench_function(name, |b| b.iter(|| compiler.compile(&request).unwrap()));
    }

    // The materialized reference: the same rounds compiled one by one
    // through the patch API with templating off (the pre-template path).
    group.bench_function("materialized/idle/d5", |b| {
        b.iter(|| {
            let mut fixture = SingleTile::new(5, 5, 5).unwrap();
            Fiducial::Zero.prepare(&mut fixture.hw, &mut fixture.patch).unwrap();
            fixture.patch.idle(&mut fixture.hw).unwrap()
        })
    });

    // Streaming report composition over an already compiled periodic
    // circuit: prologue + repeats × template + epilogue with running
    // accumulators, no materialization.
    let artifact = compiler.compile(&CompileRequest::new(Instruction::Idle, 9, 9, 9)).unwrap();
    let layout = tiscc_grid::Layout::new(
        tiscc_core::plaquette::tile_rows(9) + 2,
        tiscc_core::plaquette::tile_cols(9) + 2,
    );
    let spec = tiscc_hw::HardwareSpec::h1();
    group.bench_function("stream_report/idle/d9", |b| {
        b.iter(|| ResourceReport::from_stream_with_spec(&artifact.rounds, &layout, &spec))
    });

    // The analytic estimate mode. Capture is one physical compile at
    // dt = ANALYTIC_DT_CAP (so its cost tracks `templated/*` at small dt);
    // derive replays the captured round arithmetically for a target dt
    // without touching the scheduler or router, so it is linear in dt with
    // a much smaller constant than compiling. `derive/idle/d9` uses the
    // same dt = d = 9 as `templated/idle/d9` to make the two directly
    // comparable.
    group.bench_function("analytic/capture/idle/d5", |b| {
        b.iter(|| {
            AnalyticArtifact::capture(Instruction::Idle, 5, 5, HardwareSpec::h1())
                .unwrap()
                .expect("idle captures analytically")
        })
    });
    let captured = AnalyticArtifact::capture(Instruction::Idle, 9, 9, HardwareSpec::h1())
        .unwrap()
        .expect("idle captures analytically");
    group.bench_function("analytic/derive/idle/d9", |b| {
        b.iter(|| captured.derive(9).expect("dt=9 is derivable"))
    });

    // Whole-pipeline analytic estimates on generated workloads at
    // N ∈ {64, 1k, 10k, 100k} instructions: place + schedule + budget +
    // analytic pricing with a warm compiler (the first estimate below
    // pays the captures; the measured iterations are what a cached
    // `tiscc estimate --mode analytic` re-run costs).
    for n in [64usize, 1024, 10_240, 102_400] {
        let workload = GenSpec::new(Family::RandomCliffordT).with_n(n).with_seed(7);
        let program = generate(&workload).expect("valid spec");
        let est = ProgramEstimateSpec::new(1e-6).with_mode(EstimateMode::Analytic);
        estimate_program(&program, &est, &compiler).expect("estimates");
        group.bench_with_input(
            BenchmarkId::new("workload_estimate/random-clifford-t", n),
            &program,
            |b, program| b.iter(|| estimate_program(program, &est, &compiler).expect("estimates")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

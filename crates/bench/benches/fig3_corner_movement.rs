//! Fig. 3 context: operator movement / deformation tracking — solving for
//! the stabilizer product that moves a default-edge logical operator to the
//! opposite edge, across code distances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tiscc_core::deform::movement_combination;
use tiscc_core::plaquette::{build_stabilizers, logical_x_support};
use tiscc_core::{Arrangement, StabKind};
use tiscc_math::PauliOp;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_operator_movement");
    for d in [3usize, 5, 7, 9] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            let stabs = build_stabilizers(d, d, Arrangement::Standard);
            let from = logical_x_support(d, d, Arrangement::Standard);
            let to: Vec<((usize, usize), PauliOp)> =
                (0..d).map(|j| ((d - 1, j), PauliOp::X)).collect();
            b.iter(|| movement_combination(d, d, &stabs, StabKind::X, &from, &to).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Program-scheduling throughput: instructions/second of the full
//! front-end pipeline (allocation + ASAP list scheduling) as the program
//! grows. Scheduling is the per-instruction-cheap part of `tiscc
//! estimate` — it must stay linear-ish in program size so million-gate
//! programs remain schedulable; a regression here shows up as superlinear
//! growth between the parameter points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tiscc_program::{examples, schedule, LayoutSpec, LogicalProgram, Placement};
use tiscc_workloads::{generate, Family, GenSpec};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("program_scheduling");
    group.sample_size(10);
    for width in [4usize, 16, 64, 256] {
        let program = examples::adder_t_layer(width);
        group.bench_with_input(
            BenchmarkId::new("adder_t_layer", program.len()),
            &program,
            |b, program| {
                b.iter(|| {
                    let placement = Placement::allocate(program);
                    schedule(program, &placement)
                })
            },
        );
    }
    // The congestion-aware 2D path: BFS corridor routing per merge.
    for width in [4usize, 16, 64] {
        let program = examples::adder_t_layer(width);
        let side = 2 * ((2 * width) as f64).sqrt().ceil() as usize;
        let spec = LayoutSpec::checkerboard().with_grid(side, side);
        group.bench_with_input(
            BenchmarkId::new("adder_t_layer_checkerboard", program.len()),
            &program,
            |b, program| {
                b.iter(|| {
                    let placement = Placement::allocate_with(program, &spec).expect("fits");
                    schedule(program, &placement).expect("routes")
                })
            },
        );
    }
    // A serial worst case: one long dependency chain (no packing possible).
    let mut serial = LogicalProgram::new("serial-chain");
    let q = serial.add_qubit("q").expect("fresh");
    serial.prepare_z(q).expect("valid");
    for _ in 0..1024 {
        serial.idle(q).expect("valid");
    }
    group.bench_function("serial_chain/1025", |b| {
        b.iter(|| {
            let placement = Placement::allocate(&serial);
            schedule(&serial, &placement)
        })
    });
    // The parser's share of the front end.
    let text = examples::adder_t_layer(64).to_tql();
    group.bench_function("parse_tql/adder64", |b| {
        b.iter(|| LogicalProgram::parse("adder", &text).expect("parses"))
    });
    // Generated workloads at N ≈ {64, 1k, 10k, 100k} instructions: the
    // scaling curves PERFORMANCE.md records. The adder widths are chosen
    // so 11w − 1 lands near each target; random-clifford-t hits it
    // exactly. Each size benches the parser and the allocate + schedule
    // pipeline separately, so a superlinear regression is attributable.
    let workloads = [
        GenSpec::new(Family::RippleCarryAdder).with_n(6),
        GenSpec::new(Family::RippleCarryAdder).with_n(93),
        GenSpec::new(Family::RippleCarryAdder).with_n(931),
        GenSpec::new(Family::RippleCarryAdder).with_n(9309),
        GenSpec::new(Family::RandomCliffordT).with_n(64).with_seed(7),
        GenSpec::new(Family::RandomCliffordT).with_n(1024).with_seed(7),
        GenSpec::new(Family::RandomCliffordT).with_n(10240).with_seed(7),
        GenSpec::new(Family::RandomCliffordT).with_n(102_400).with_seed(7),
    ];
    for spec in workloads {
        let program = generate(&spec).expect("valid spec");
        let text = program.to_tql();
        group.bench_with_input(
            BenchmarkId::new(format!("gen_parse/{}", spec.family), program.len()),
            &text,
            |b, text| b.iter(|| LogicalProgram::parse("w", text).expect("parses")),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("gen_schedule/{}", spec.family), program.len()),
            &program,
            |b, program| {
                b.iter(|| {
                    let placement = Placement::allocate(program);
                    schedule(program, &placement).expect("routes")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Compile-time and circuit-size scaling of the full pipeline with code
//! distance (the use-case 1 of the paper's introduction: resource estimation
//! with a realistic hardware model).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tiscc_core::instruction::{apply_instruction, Instruction};
use tiscc_core::LogicalQubit;
use tiscc_hw::HardwareModel;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_scaling_prepare_and_idle");
    group.sample_size(10);
    for d in [3usize, 5, 7, 9, 11] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            b.iter(|| {
                let rows = tiscc_core::plaquette::tile_rows(d) + 1;
                let cols = tiscc_core::plaquette::tile_cols(d) + 1;
                let mut hw = HardwareModel::new(rows, cols);
                let mut patch = LogicalQubit::new(&mut hw, d, d, d, (0, 0)).unwrap();
                apply_instruction(&mut hw, Instruction::PrepareZ, &mut patch).unwrap();
                hw.circuit().len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

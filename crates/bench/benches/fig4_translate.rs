//! Fig. 4: the Move Right + Swap Left translation pair compiled at several
//! distances (ion movement alone; cost dominated by junction traversals).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tiscc_estimator::experiments::translation_report;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_translation");
    group.sample_size(10);
    for d in [2usize, 3, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            b.iter(|| translation_report(d).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Table 1: compilation of every member of the local lattice-surgery
//! instruction set at d = 2 and d = 3 (wall-clock cost of the compiler and
//! regeneration of the logical time-step accounting).

use criterion::{criterion_group, criterion_main, Criterion};
use tiscc_core::instruction::Instruction;
use tiscc_estimator::tables::compile_instruction_row;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_instructions");
    group.sample_size(10);
    for &instr in Instruction::all() {
        group.bench_function(instr.name(), |b| {
            b.iter(|| compile_instruction_row(instr, 3, 3, 2).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

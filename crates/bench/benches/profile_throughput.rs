//! Compile throughput across hardware profiles: the same representative
//! instructions compiled through the `Compiler` front door under every
//! built-in `HardwareSpec`. Profile selection only changes scheduling
//! arithmetic, so throughput must be flat across profiles — a regression
//! here means the spec threading added work to the hot path.

use criterion::{criterion_group, criterion_main, Criterion};
use tiscc_core::instruction::Instruction;
use tiscc_estimator::compiler::{CompileRequest, Compiler};
use tiscc_hw::HardwareSpec;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("profile_throughput");
    group.sample_size(10);
    for spec in HardwareSpec::presets() {
        for instr in [Instruction::PrepareZ, Instruction::Idle, Instruction::MeasureXX] {
            let request = CompileRequest::new(instr, 3, 3, 2).with_spec(spec.clone());
            group.bench_function(format!("{}/{}", spec.name, instr.id()), |b| {
                let compiler = Compiler::new();
                b.iter(|| compiler.compile(&request).unwrap())
            });
        }
    }
    // The memoized path: a warm cache turns repeat requests into lookups.
    let compiler = Compiler::new();
    let request = CompileRequest::new(Instruction::Idle, 3, 3, 2);
    compiler.compile_row(&request).unwrap();
    group.bench_function("warm_cache/idle", |b| b.iter(|| compiler.compile_row(&request).unwrap()));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

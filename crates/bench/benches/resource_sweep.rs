//! Sec. 3.4: the resource-estimation sweep over code distance for the
//! representative instruction set (regenerates the scaling data).

use criterion::{criterion_group, criterion_main, Criterion};
use tiscc_estimator::tables::resource_sweep;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("resource_sweep");
    group.sample_size(10);
    group.bench_function("d_2_3_5", |b| b.iter(|| resource_sweep(&[2, 3, 5], true).unwrap()));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

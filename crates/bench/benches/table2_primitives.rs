//! Table 2: the primitive surface-code operations (transversal ops, idle,
//! merge, split) compiled at d = 3.

use criterion::{criterion_group, criterion_main, Criterion};
use tiscc_estimator::tables::table2_rows;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_primitives");
    group.sample_size(10);
    group.bench_function("all_primitives_d3", |b| b.iter(|| table2_rows(3, 2).unwrap()));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Table 3: the derived instruction set (Bell preparation/measurement,
//! Extend-Split, Merge-Contract, Move, extension, contraction) at d = 2.

use criterion::{criterion_group, criterion_main, Criterion};
use tiscc_estimator::tables::table3_rows;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_derived");
    group.sample_size(10);
    group.bench_function("all_derived_d2", |b| b.iter(|| table3_rows(2, 1).unwrap()));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Sec. 4: the verification pipeline — compile, simulate and tomograph the
//! Idle instruction (identity process) and the d = 7 idle-stability check
//! standing in for the paper's d = 30 smoke test at benchmark scale.

use criterion::{criterion_group, criterion_main, Criterion};
use tiscc_estimator::verify::{process_map_of, Fiducial, SingleTile};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("verification");
    group.sample_size(10);
    group.bench_function("idle_process_tomography_d3", |b| {
        b.iter(|| process_map_of(3, 3, 1, 5, |hw, p| p.idle(hw).map(|_| ())).unwrap())
    });
    group.bench_function("idle_stability_d7", |b| {
        b.iter(|| {
            let mut f = SingleTile::new(7, 7, 1).unwrap();
            Fiducial::Zero.prepare(&mut f.hw, &mut f.patch).unwrap();
            f.patch.syndrome_round(&mut f.hw, "second").unwrap();
            let run = f.simulate(1);
            run.outcomes.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

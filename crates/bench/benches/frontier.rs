//! Frontier-engine throughput: the Pareto sweep on large point sets, a
//! fully warm `run_frontier` (every compile served by the in-process
//! memo — what a `tiscc serve` loop or a cached re-run pays per
//! request), and the bit-exact CSV round trip. The warm path is the one
//! interactive consumers sit on, so a regression here is directly a
//! latency regression for `tiscc serve`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tiscc_estimator::compiler::{Compiler, EstimateMode};
use tiscc_frontier::{matrix_from_csv, matrix_to_csv, pareto_flags, run_frontier, FrontierSpec};
use tiscc_hw::HardwareSpec;
use tiscc_program::{examples, LayoutSpec};
use tiscc_workloads::{generate, Family, GenSpec};

/// Deterministic pseudo-random points (xorshift) — the bench must not
/// depend on an RNG crate and must measure the same set every run.
fn synthetic_points(n: usize) -> Vec<(usize, f64)> {
    let mut state = 0x9e3779b97f4a7c15u64;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 48) as usize, (state & 0xffff) as f64 / 16.0)
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontier");
    group.sample_size(10);

    let points = synthetic_points(4096);
    group.bench_function("pareto/4096", |b| b.iter(|| pareto_flags(&points)));

    let program = examples::ripple_adder();
    let spec = FrontierSpec::new(
        vec![LayoutSpec::row_major(), LayoutSpec::checkerboard()],
        vec![HardwareSpec::h1(), HardwareSpec::projected()],
    )
    .with_distances(3, 9)
    .with_mode(EstimateMode::Analytic);
    let compiler = Compiler::new();
    // Warm the memo once; the measured runs then price the whole matrix
    // without a single physical compile.
    let report = run_frontier(&program, &spec, &compiler, None).expect("runs");
    assert!(report.stats.analytic_captures > 0);
    group.bench_function("warm_run/adder", |b| {
        b.iter(|| run_frontier(&program, &spec, &compiler, None).expect("runs"))
    });

    let csv = matrix_to_csv(&report);
    group.bench_function("csv_round_trip/adder", |b| {
        b.iter(|| matrix_from_csv(&csv).expect("parses"))
    });

    // Warm frontier runs over generated workloads at N ∈ {64, 1k, 10k,
    // 100k} instructions: a deliberately small design space (lane layout,
    // one profile, two odd distances) so the measurement tracks how the
    // per-cell place + schedule + price pipeline scales with program
    // length, not with matrix width.
    for n in [64usize, 1024, 10_240, 102_400] {
        let workload = GenSpec::new(Family::RandomCliffordT).with_n(n).with_seed(7);
        let program = generate(&workload).expect("valid spec");
        let spec = FrontierSpec::new(vec![LayoutSpec::single_lane()], vec![HardwareSpec::h1()])
            .with_distances(3, 5)
            .with_mode(EstimateMode::Analytic);
        run_frontier(&program, &spec, &compiler, None).expect("warms");
        group.bench_with_input(
            BenchmarkId::new("workload_warm_run/random-clifford-t", n),
            &program,
            |b, program| b.iter(|| run_frontier(program, &spec, &compiler, None).expect("runs")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Fig. 6: a full round of syndrome extraction (Z/N movement patterns) at
//! several code distances — the inner loop of every logical time-step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tiscc_core::LogicalQubit;
use tiscc_hw::HardwareModel;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_syndrome_round");
    group.sample_size(10);
    for d in [3usize, 5, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            b.iter(|| {
                let rows = tiscc_core::plaquette::tile_rows(d) + 1;
                let cols = tiscc_core::plaquette::tile_cols(d) + 1;
                let mut hw = HardwareModel::new(rows, cols);
                let mut patch = LogicalQubit::new(&mut hw, d, d, 1, (0, 0)).unwrap();
                patch.transversal_prepare_z(&mut hw).unwrap();
                patch.syndrome_round(&mut hw, "bench round").unwrap();
                hw.circuit().len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

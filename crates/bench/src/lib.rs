//! Benchmark harness crate: the Criterion benchmarks under `benches/`
//! regenerate every table and figure of the TISCC paper (see DESIGN.md for
//! the experiment index). The library itself is intentionally empty.

//! The TISCC surface-code compiler core.
//!
//! This crate implements the paper's primary contribution: compiling a
//! local, tile-based surface-code lattice-surgery instruction set (Table 1)
//! into explicit trapped-ion hardware circuits, using a small set of verified
//! patch primitives (Table 2) plus the derived instructions of Table 3.
//!
//! Layering (bottom up):
//! * [`arrangement`] — the four canonical stabilizer arrangements (Fig. 2),
//! * [`plaquette`] — patch geometry: stabilizer layout, logical-operator
//!   supports, tile dimensions and the mapping onto grid qsites (Fig. 1),
//! * [`patch`] — [`LogicalQubit`]: ion bindings, parity-check matrix,
//!   logical-operator tracking, transversal primitives and state injection,
//! * [`syndrome`] — explicit syndrome-extraction circuits with the Z/N
//!   measure-qubit movement patterns (Fig. 6, Sec. 3.3),
//! * [`deform`] — operator movement / deformation tracking (Secs. 2.5, 4.5),
//! * [`surgery`] — merge, split, Measure XX/ZZ, patch extension/contraction,
//! * [`translate`] — patch translation by ion movement alone (Fig. 4),
//! * [`instruction`] — the Table 1 instruction set,
//! * [`derived`] — the Table 3 derived instruction set.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrangement;
pub mod deform;
pub mod derived;
pub mod instruction;
pub mod patch;
pub mod plaquette;
pub mod surgery;
pub mod syndrome;
pub mod tracker;
pub mod translate;

pub use arrangement::Arrangement;
pub use instruction::{Instruction, InstructionReport, UnknownInstruction};
pub use patch::LogicalQubit;
pub use plaquette::{Plaquette, StabKind};
pub use syndrome::RoundRecord;
pub use tracker::{LogicalOutcomeSpec, OperatorTracker, TrackedOperator};

/// Errors raised by the surface-code compiler.
#[derive(Clone, Debug, PartialEq)]
pub enum CoreError {
    /// An error bubbled up from the hardware model.
    Hw(tiscc_hw::HwError),
    /// An operation was requested on a patch in the wrong initialization
    /// state (e.g. measuring an uninitialized tile).
    InvalidState(String),
    /// The requested pair of patches is not compatible (different code
    /// distances, non-adjacent tiles, wrong arrangements, ...).
    Incompatible(String),
    /// A required ion was not found on the grid.
    MissingIon(String),
    /// A logical-operator deformation could not be expressed as a product of
    /// available (freshly measured) stabilizers.
    NoDeformationPath(String),
}

impl From<tiscc_hw::HwError> for CoreError {
    fn from(e: tiscc_hw::HwError) -> Self {
        CoreError::Hw(e)
    }
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Hw(e) => write!(f, "hardware error: {e}"),
            CoreError::InvalidState(s) => write!(f, "invalid patch state: {s}"),
            CoreError::Incompatible(s) => write!(f, "incompatible patches: {s}"),
            CoreError::MissingIon(s) => write!(f, "missing ion: {s}"),
            CoreError::NoDeformationPath(s) => write!(f, "no deformation path: {s}"),
        }
    }
}

impl std::error::Error for CoreError {}

//! The local, tile-based lattice-surgery instruction set of paper Table 1.
//!
//! Every instruction acts on (and returns) one or two logical tiles; the
//! table below matches the paper's accounting of logical time-steps (one
//! logical time-step = `dt` rounds of error correction):
//!
//! | Instruction    | Tiles | Time-steps |
//! |----------------|-------|------------|
//! | Prepare X/Z    | 1     | 1          |
//! | Inject Y/T     | 1     | 0          |
//! | Measure X/Z    | 1     | 0          |
//! | Pauli X/Y/Z    | 1     | 0          |
//! | Hadamard       | 1     | 0          |
//! | Idle           | 1     | 1          |
//! | Measure XX/ZZ  | 2     | 1          |

use tiscc_hw::HardwareModel;
use tiscc_math::PauliOp;

use crate::patch::LogicalQubit;
use crate::surgery::{measure_xx, measure_zz};
use crate::tracker::LogicalOutcomeSpec;
use crate::CoreError;

/// One member of the Table 1 instruction set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Fault-tolerantly initialise a tile to |0⟩.
    PrepareZ,
    /// Fault-tolerantly initialise a tile to |+⟩.
    PrepareX,
    /// Non-fault-tolerantly initialise a tile to the Y eigenstate |+i⟩.
    InjectY,
    /// Non-fault-tolerantly initialise a tile to the magic state |T⟩.
    InjectT,
    /// Destructively measure a tile in the Z basis.
    MeasureZ,
    /// Destructively measure a tile in the X basis.
    MeasureX,
    /// Logical Pauli X.
    PauliX,
    /// Logical Pauli Y.
    PauliY,
    /// Logical Pauli Z.
    PauliZ,
    /// Transversal logical Hadamard (leaves the patch rotated).
    Hadamard,
    /// `dt` rounds of error correction.
    Idle,
    /// Joint XX measurement of two vertically adjacent tiles.
    MeasureXX,
    /// Joint ZZ measurement of two horizontally adjacent tiles.
    MeasureZZ,
}

impl Instruction {
    /// Number of logical tiles the instruction acts on.
    pub fn tiles(self) -> usize {
        match self {
            Instruction::MeasureXX | Instruction::MeasureZZ => 2,
            _ => 1,
        }
    }

    /// Logical time-steps consumed (paper Table 1).
    pub fn logical_time_steps(self) -> usize {
        match self {
            Instruction::PrepareZ
            | Instruction::PrepareX
            | Instruction::Idle
            | Instruction::MeasureXX
            | Instruction::MeasureZZ => 1,
            _ => 0,
        }
    }

    /// The instruction's name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Instruction::PrepareZ => "Prepare Z",
            Instruction::PrepareX => "Prepare X",
            Instruction::InjectY => "Inject Y",
            Instruction::InjectT => "Inject T",
            Instruction::MeasureZ => "Measure Z",
            Instruction::MeasureX => "Measure X",
            Instruction::PauliX => "Pauli X",
            Instruction::PauliY => "Pauli Y",
            Instruction::PauliZ => "Pauli Z",
            Instruction::Hadamard => "Hadamard",
            Instruction::Idle => "Idle",
            Instruction::MeasureXX => "Measure XX",
            Instruction::MeasureZZ => "Measure ZZ",
        }
    }

    /// A stable, machine-readable identifier (snake case): the form used by
    /// the command line and by serialized sweep artifacts.
    pub fn id(self) -> &'static str {
        match self {
            Instruction::PrepareZ => "prepare_z",
            Instruction::PrepareX => "prepare_x",
            Instruction::InjectY => "inject_y",
            Instruction::InjectT => "inject_t",
            Instruction::MeasureZ => "measure_z",
            Instruction::MeasureX => "measure_x",
            Instruction::PauliX => "pauli_x",
            Instruction::PauliY => "pauli_y",
            Instruction::PauliZ => "pauli_z",
            Instruction::Hadamard => "hadamard",
            Instruction::Idle => "idle",
            Instruction::MeasureXX => "measure_xx",
            Instruction::MeasureZZ => "measure_zz",
        }
    }

    /// Parses an instruction from either its [`Instruction::id`] or its
    /// paper name ([`Instruction::name`]), case-insensitively. The error
    /// lists every valid id, so it can be surfaced verbatim at a CLI
    /// boundary.
    pub fn from_id(text: &str) -> Result<Instruction, UnknownInstruction> {
        let normalized: String = text
            .trim()
            .chars()
            .map(|c| if c == ' ' || c == '-' { '_' } else { c.to_ascii_lowercase() })
            .collect();
        Instruction::all()
            .iter()
            .copied()
            .find(|i| i.id() == normalized)
            .ok_or_else(|| UnknownInstruction { input: text.to_string() })
    }

    /// Every instruction, in the order of Table 1.
    pub fn all() -> &'static [Instruction] {
        &[
            Instruction::PrepareX,
            Instruction::PrepareZ,
            Instruction::InjectY,
            Instruction::InjectT,
            Instruction::MeasureX,
            Instruction::MeasureZ,
            Instruction::PauliX,
            Instruction::PauliY,
            Instruction::PauliZ,
            Instruction::Hadamard,
            Instruction::Idle,
            Instruction::MeasureXX,
            Instruction::MeasureZZ,
        ]
    }
}

impl std::str::FromStr for Instruction {
    type Err = UnknownInstruction;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Instruction::from_id(s)
    }
}

/// Error returned by [`Instruction::from_id`] for unrecognised input; its
/// [`std::fmt::Display`] impl enumerates every valid instruction id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownInstruction {
    /// The rejected input.
    pub input: String,
}

impl std::fmt::Display for UnknownInstruction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ids: Vec<&str> = Instruction::all().iter().map(|i| i.id()).collect();
        write!(f, "unknown instruction '{}'; valid instructions: {}", self.input, ids.join(", "))
    }
}

impl std::error::Error for UnknownInstruction {}

/// The result of compiling one instruction.
#[derive(Clone, Debug)]
pub struct InstructionReport {
    /// Which instruction was compiled.
    pub instruction: Instruction,
    /// Logical time-steps consumed.
    pub logical_time_steps: usize,
    /// Number of tiles involved.
    pub tiles: usize,
    /// For measurement-type instructions: the classical definition of the
    /// logical outcome.
    pub outcome: Option<LogicalOutcomeSpec>,
}

/// Compiles a single-tile instruction onto `patch`.
///
/// Two-tile instructions (`Measure XX/ZZ`) must be compiled with
/// [`apply_two_tile_instruction`].
pub fn apply_instruction(
    hw: &mut HardwareModel,
    instruction: Instruction,
    patch: &mut LogicalQubit,
) -> Result<InstructionReport, CoreError> {
    let mut outcome = None;
    match instruction {
        Instruction::PrepareZ => {
            patch.transversal_prepare_z(hw)?;
            patch.idle(hw)?;
        }
        Instruction::PrepareX => {
            patch.transversal_prepare_x(hw)?;
            patch.idle(hw)?;
        }
        Instruction::InjectY => patch.inject_y(hw)?,
        Instruction::InjectT => patch.inject_t(hw)?,
        Instruction::MeasureZ => outcome = Some(patch.transversal_measure_z(hw)?.0),
        Instruction::MeasureX => outcome = Some(patch.transversal_measure_x(hw)?.0),
        Instruction::PauliX => patch.apply_logical_pauli(hw, PauliOp::X)?,
        Instruction::PauliY => patch.apply_logical_pauli(hw, PauliOp::Y)?,
        Instruction::PauliZ => patch.apply_logical_pauli(hw, PauliOp::Z)?,
        Instruction::Hadamard => patch.transversal_hadamard(hw)?,
        Instruction::Idle => {
            patch.idle(hw)?;
        }
        Instruction::MeasureXX | Instruction::MeasureZZ => {
            return Err(CoreError::InvalidState(format!(
                "{} acts on two tiles; use apply_two_tile_instruction",
                instruction.name()
            )));
        }
    }
    Ok(InstructionReport {
        instruction,
        logical_time_steps: instruction.logical_time_steps(),
        tiles: instruction.tiles(),
        outcome,
    })
}

/// Compiles a two-tile instruction (`Measure XX` or `Measure ZZ`).
pub fn apply_two_tile_instruction(
    hw: &mut HardwareModel,
    instruction: Instruction,
    first: &mut LogicalQubit,
    second: &mut LogicalQubit,
) -> Result<InstructionReport, CoreError> {
    let outcome = match instruction {
        Instruction::MeasureXX => measure_xx(hw, first, second)?,
        Instruction::MeasureZZ => measure_zz(hw, first, second)?,
        other => {
            return Err(CoreError::InvalidState(format!(
                "{} is a single-tile instruction",
                other.name()
            )))
        }
    };
    Ok(InstructionReport {
        instruction,
        logical_time_steps: instruction.logical_time_steps(),
        tiles: 2,
        outcome: Some(outcome),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_time_step_accounting() {
        use Instruction::*;
        assert_eq!(PrepareZ.logical_time_steps(), 1);
        assert_eq!(PrepareX.logical_time_steps(), 1);
        assert_eq!(InjectY.logical_time_steps(), 0);
        assert_eq!(InjectT.logical_time_steps(), 0);
        assert_eq!(MeasureZ.logical_time_steps(), 0);
        assert_eq!(PauliY.logical_time_steps(), 0);
        assert_eq!(Hadamard.logical_time_steps(), 0);
        assert_eq!(Idle.logical_time_steps(), 1);
        assert_eq!(MeasureXX.logical_time_steps(), 1);
        assert_eq!(MeasureZZ.logical_time_steps(), 1);
    }

    #[test]
    fn table1_tile_accounting() {
        for &i in Instruction::all() {
            let expected =
                if matches!(i, Instruction::MeasureXX | Instruction::MeasureZZ) { 2 } else { 1 };
            assert_eq!(i.tiles(), expected, "{}", i.name());
        }
        assert_eq!(Instruction::all().len(), 13);
    }

    #[test]
    fn from_id_accepts_ids_names_and_mixed_case() {
        assert_eq!(Instruction::from_id("measure_xx"), Ok(Instruction::MeasureXX));
        assert_eq!(Instruction::from_id("Measure XX"), Ok(Instruction::MeasureXX));
        assert_eq!(Instruction::from_id("PREPARE-Z"), Ok(Instruction::PrepareZ));
        assert_eq!(Instruction::from_id("  idle "), Ok(Instruction::Idle));
        assert_eq!("inject_t".parse(), Ok(Instruction::InjectT));
    }

    #[test]
    fn from_id_error_lists_every_valid_id() {
        let err = Instruction::from_id("bogus").unwrap_err();
        assert_eq!(err.input, "bogus");
        let msg = err.to_string();
        assert!(msg.contains("'bogus'"));
        for &i in Instruction::all() {
            assert!(msg.contains(i.id()), "error message missing {}", i.id());
        }
    }

    #[test]
    fn two_tile_instructions_are_rejected_by_single_tile_entry_point() {
        let mut hw = HardwareModel::new(6, 6);
        let mut patch = LogicalQubit::new(&mut hw, 2, 2, 1, (0, 0)).unwrap();
        patch.transversal_prepare_z(&mut hw).unwrap();
        assert!(apply_instruction(&mut hw, Instruction::MeasureXX, &mut patch).is_err());
    }
}

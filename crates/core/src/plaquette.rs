//! Patch geometry: stabilizer layout, logical-operator supports, tile
//! dimensions and the mapping of a surface-code patch onto grid qsites.
//!
//! Conventions (see DESIGN.md):
//! * Data qubits form a `dz`-row × `dx`-column array; data qubit `(i, j)`
//!   lives on the horizontal-arm operation zone of tile unit
//!   `(row_offset + i, j)`.
//! * Plaquettes are indexed by *cells* `(r, c)` with
//!   `r ∈ -1..dz-1`, `c ∈ -1..dx-1`: bulk cells have four corners,
//!   boundary cells two. Cell `(r, c)` is anchored at tile unit
//!   `(row_offset + r, c + 1)`, whose vertical arm is the private movement
//!   corridor of that plaquette's measure qubit.
//! * The tile spans `2⌈(dz+1)/2⌉` unit rows × `2⌈(dx+1)/2⌉` unit columns
//!   (Sec. 2.3); the extra row(s) sit above the data (they are the ancilla
//!   strip used by vertical lattice surgery of the patch above) and the
//!   extra column(s) sit to the right (used by horizontal lattice surgery).

use tiscc_grid::QSite;
use tiscc_math::PauliOp;

use crate::arrangement::Arrangement;

/// Stabilizer type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StabKind {
    /// X-type stabilizer (product of Pauli X on its support).
    X,
    /// Z-type stabilizer.
    Z,
}

impl StabKind {
    /// The Pauli label measured on each data qubit of the plaquette.
    pub fn pauli(self) -> PauliOp {
        match self {
            StabKind::X => PauliOp::X,
            StabKind::Z => PauliOp::Z,
        }
    }
}

/// One stabilizer plaquette of a patch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Plaquette {
    /// X or Z type.
    pub kind: StabKind,
    /// Cell coordinates `(r, c)`; `r = -1` / `c = -1` are the top / left
    /// boundary rows of cells.
    pub cell: (i32, i32),
    /// Data-qubit coordinates in the corner slots `[NW, NE, SW, SE]`;
    /// boundary plaquettes have two `None` entries.
    pub corners: [Option<(usize, usize)>; 4],
    /// Tile-relative unit whose measure-qubit home hosts this plaquette's
    /// syndrome ion.
    pub anchor: (u32, u32),
}

impl Plaquette {
    /// The data coordinates actually present, in `[NW, NE, SW, SE]` order.
    pub fn data_coords(&self) -> Vec<(usize, usize)> {
        self.corners.iter().flatten().copied().collect()
    }

    /// The stabilizer weight (2 for boundary plaquettes, 4 for bulk).
    pub fn weight(&self) -> usize {
        self.corners.iter().flatten().count()
    }
}

/// Number of unit rows in a logical tile for Z-distance `dz`:
/// `2⌈(dz+1)/2⌉` (Sec. 2.3).
pub fn tile_rows(dz: usize) -> u32 {
    (2 * ((dz + 2) / 2)) as u32
}

/// Number of unit columns in a logical tile for X-distance `dx`.
pub fn tile_cols(dx: usize) -> u32 {
    (2 * ((dx + 2) / 2)) as u32
}

/// Number of strip rows above the data region (1 for odd `dz`, 2 for even).
pub fn row_offset(dz: usize) -> u32 {
    tile_rows(dz) - dz as u32
}

/// Number of strip columns to the right of the data region.
pub fn col_strip(dx: usize) -> u32 {
    tile_cols(dx) - dx as u32
}

/// Absolute unit hosting data qubit `(i, j)` of a patch whose tile origin is
/// `origin` (unit coordinates) with the given Z distance.
pub fn data_unit(origin: (u32, u32), dz: usize, i: usize, j: usize) -> (u32, u32) {
    (origin.0 + row_offset(dz) + i as u32, origin.1 + j as u32)
}

/// The qsite (horizontal-arm operation zone) where data qubit `(i, j)` rests.
pub fn data_site(origin: (u32, u32), dz: usize, i: usize, j: usize) -> QSite {
    let (ur, uc) = data_unit(origin, dz, i, j);
    QSite::new(4 * ur, 4 * uc + 2)
}

/// The memory zone from which a syndrome ion interacts with data qubit
/// `(i, j)`: its west (`east = false`) or east (`east = true`) neighbour.
pub fn approach_site(origin: (u32, u32), dz: usize, i: usize, j: usize, east: bool) -> QSite {
    let (ur, uc) = data_unit(origin, dz, i, j);
    QSite::new(4 * ur, 4 * uc + if east { 3 } else { 1 })
}

/// Absolute anchor unit of cell `(r, c)`.
pub fn anchor_unit(origin: (u32, u32), dz: usize, cell: (i32, i32)) -> (u32, u32) {
    let r = row_offset(dz) as i32 + cell.0;
    let c = cell.1 + 1;
    debug_assert!(r >= 0 && c >= 0, "anchor outside tile for cell {cell:?}");
    (origin.0 + r as u32, origin.1 + c as u32)
}

/// The measure-qubit home site of the unit at absolute coordinates `unit`.
pub fn measure_home_site(unit: (u32, u32)) -> QSite {
    QSite::new(4 * unit.0 + 1, 4 * unit.1)
}

/// The data-qubit rest site of the unit at absolute coordinates `unit`.
pub fn data_home_site(unit: (u32, u32)) -> QSite {
    QSite::new(4 * unit.0, 4 * unit.1 + 2)
}

/// Builds the stabilizer set of a `dz × dx` patch in the given arrangement.
///
/// The bulk is a checkerboard; weight-2 boundary plaquettes are placed on the
/// edges carrying their type, at the positions where the virtual continuation
/// of the checkerboard matches that type. The total number of stabilizers is
/// always `dx·dz − 1`.
pub fn build_stabilizers(dx: usize, dz: usize, arrangement: Arrangement) -> Vec<Plaquette> {
    assert!(dx >= 2 && dz >= 2, "code distances must be at least 2");
    let parity = arrangement.parity_flipped();
    let swapped = arrangement.boundaries_swapped();
    let bulk_is_x = |r: i32, c: i32| (((r + c).rem_euclid(2)) == 0) != parity;
    // Boundary types: top/bottom carry Z (and left/right carry X) in the
    // standard orientation; swapped otherwise.
    let tb_kind = if swapped { StabKind::X } else { StabKind::Z };
    let lr_kind = if swapped { StabKind::Z } else { StabKind::X };

    let mut out = Vec::new();
    // Bulk.
    for r in 0..dz as i32 - 1 {
        for c in 0..dx as i32 - 1 {
            let kind = if bulk_is_x(r, c) { StabKind::X } else { StabKind::Z };
            out.push(Plaquette {
                kind,
                cell: (r, c),
                corners: [
                    Some((r as usize, c as usize)),
                    Some((r as usize, c as usize + 1)),
                    Some((r as usize + 1, c as usize)),
                    Some((r as usize + 1, c as usize + 1)),
                ],
                anchor: rel_anchor(dz, (r, c)),
            });
        }
    }
    // Top boundary (cells at r = -1): two south corners.
    for c in 0..dx as i32 - 1 {
        if bulk_is_x(-1, c) == (tb_kind == StabKind::X) {
            out.push(Plaquette {
                kind: tb_kind,
                cell: (-1, c),
                corners: [None, None, Some((0, c as usize)), Some((0, c as usize + 1))],
                anchor: rel_anchor(dz, (-1, c)),
            });
        }
    }
    // Bottom boundary (cells at r = dz-1): two north corners.
    let rb = dz as i32 - 1;
    for c in 0..dx as i32 - 1 {
        if bulk_is_x(rb, c) == (tb_kind == StabKind::X) {
            out.push(Plaquette {
                kind: tb_kind,
                cell: (rb, c),
                corners: [Some((dz - 1, c as usize)), Some((dz - 1, c as usize + 1)), None, None],
                anchor: rel_anchor(dz, (rb, c)),
            });
        }
    }
    // Left boundary (cells at c = -1): two east corners.
    for r in 0..dz as i32 - 1 {
        if bulk_is_x(r, -1) == (lr_kind == StabKind::X) {
            out.push(Plaquette {
                kind: lr_kind,
                cell: (r, -1),
                corners: [None, Some((r as usize, 0)), None, Some((r as usize + 1, 0))],
                anchor: rel_anchor(dz, (r, -1)),
            });
        }
    }
    // Right boundary (cells at c = dx-1): two west corners.
    let cb = dx as i32 - 1;
    for r in 0..dz as i32 - 1 {
        if bulk_is_x(r, cb) == (lr_kind == StabKind::X) {
            out.push(Plaquette {
                kind: lr_kind,
                cell: (r, cb),
                corners: [Some((r as usize, dx - 1)), None, Some((r as usize + 1, dx - 1)), None],
                anchor: rel_anchor(dz, (r, cb)),
            });
        }
    }
    debug_assert_eq!(out.len(), dx * dz - 1, "stabilizer count for {dx}x{dz}");
    out
}

/// Tile-relative anchor unit of a cell.
fn rel_anchor(dz: usize, cell: (i32, i32)) -> (u32, u32) {
    let r = row_offset(dz) as i32 + cell.0;
    let c = cell.1 + 1;
    (r as u32, c as u32)
}

/// Default-edge logical X support: the top row for vertical-Z arrangements,
/// the left column otherwise.
pub fn logical_x_support(
    dx: usize,
    dz: usize,
    arrangement: Arrangement,
) -> Vec<((usize, usize), PauliOp)> {
    if arrangement.logical_z_vertical() {
        (0..dx).map(|j| ((0, j), PauliOp::X)).collect()
    } else {
        (0..dz).map(|i| ((i, 0), PauliOp::X)).collect()
    }
}

/// Default-edge logical Z support: the left column for vertical-Z
/// arrangements, the top row otherwise.
pub fn logical_z_support(
    dx: usize,
    dz: usize,
    arrangement: Arrangement,
) -> Vec<((usize, usize), PauliOp)> {
    if arrangement.logical_z_vertical() {
        (0..dz).map(|i| ((i, 0), PauliOp::Z)).collect()
    } else {
        (0..dx).map(|j| ((0, j), PauliOp::Z)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiscc_math::Pauli;

    fn as_pauli(dx: usize, dz: usize, support: &[((usize, usize), PauliOp)]) -> Pauli {
        let sparse: Vec<(usize, PauliOp)> =
            support.iter().map(|&((i, j), p)| (i * dx + j, p)).collect();
        Pauli::from_sparse(dx * dz, &sparse)
    }

    fn plaquette_pauli(dx: usize, dz: usize, p: &Plaquette) -> Pauli {
        let support: Vec<((usize, usize), PauliOp)> =
            p.data_coords().into_iter().map(|c| (c, p.kind.pauli())).collect();
        as_pauli(dx, dz, &support)
    }

    #[test]
    fn stabilizer_count_is_n_minus_one() {
        for (dx, dz) in [(2, 2), (3, 3), (3, 5), (5, 3), (4, 4), (5, 5), (2, 7), (6, 3)] {
            for arr in Arrangement::all() {
                let stabs = build_stabilizers(dx, dz, arr);
                assert_eq!(stabs.len(), dx * dz - 1, "{dx}x{dz} {arr:?}");
            }
        }
    }

    #[test]
    fn stabilizers_commute_pairwise_and_with_logicals() {
        for (dx, dz) in [(2, 2), (3, 3), (3, 4), (4, 3), (5, 5)] {
            for arr in Arrangement::all() {
                let stabs = build_stabilizers(dx, dz, arr);
                let paulis: Vec<Pauli> = stabs.iter().map(|p| plaquette_pauli(dx, dz, p)).collect();
                for a in 0..paulis.len() {
                    for b in a + 1..paulis.len() {
                        assert!(
                            paulis[a].commutes_with(&paulis[b]),
                            "{dx}x{dz} {arr:?}: stabilizers {:?} and {:?} anticommute",
                            stabs[a].cell,
                            stabs[b].cell
                        );
                    }
                }
                let lx = as_pauli(dx, dz, &logical_x_support(dx, dz, arr));
                let lz = as_pauli(dx, dz, &logical_z_support(dx, dz, arr));
                for (p, s) in paulis.iter().zip(stabs.iter()) {
                    assert!(p.commutes_with(&lx), "{arr:?} X_L vs {:?}", s.cell);
                    assert!(p.commutes_with(&lz), "{arr:?} Z_L vs {:?}", s.cell);
                }
                assert!(!lx.commutes_with(&lz), "logical X and Z must anticommute");
            }
        }
    }

    #[test]
    fn logical_weights_match_code_distances() {
        let lx = logical_x_support(5, 3, Arrangement::Standard);
        let lz = logical_z_support(5, 3, Arrangement::Standard);
        assert_eq!(lx.len(), 5, "X_L weight = dx");
        assert_eq!(lz.len(), 3, "Z_L weight = dz");
        // In the rotated arrangement the orientations swap.
        let lx_r = logical_x_support(5, 3, Arrangement::Rotated);
        assert_eq!(lx_r.len(), 3);
    }

    #[test]
    fn tile_dimensions_match_paper_formula() {
        // 2*ceil((d+1)/2) rows/cols.
        assert_eq!(tile_rows(3), 4);
        assert_eq!(tile_rows(4), 6);
        assert_eq!(tile_rows(5), 6);
        assert_eq!(tile_cols(2), 4);
        assert_eq!(tile_cols(7), 8);
        assert_eq!(row_offset(3), 1);
        assert_eq!(row_offset(4), 2);
        assert_eq!(col_strip(5), 1);
        assert_eq!(col_strip(6), 2);
    }

    #[test]
    fn anchors_are_unique_and_inside_the_tile() {
        for (dx, dz) in [(3, 3), (4, 4), (5, 3)] {
            let stabs = build_stabilizers(dx, dz, Arrangement::Standard);
            let mut seen = std::collections::HashSet::new();
            for p in &stabs {
                assert!(seen.insert(p.anchor), "anchor {:?} reused", p.anchor);
                assert!(p.anchor.0 < tile_rows(dz), "anchor row inside tile");
                assert!(p.anchor.1 < tile_cols(dx), "anchor col inside tile");
            }
        }
    }

    #[test]
    fn bulk_boundary_weights() {
        let stabs = build_stabilizers(3, 3, Arrangement::Standard);
        let bulk = stabs.iter().filter(|p| p.weight() == 4).count();
        let boundary = stabs.iter().filter(|p| p.weight() == 2).count();
        assert_eq!(bulk, 4);
        assert_eq!(boundary, 4);
        // Standard arrangement: top/bottom boundary stabilizers are Z-type,
        // left/right are X-type.
        for p in &stabs {
            if p.weight() == 2 {
                if p.cell.0 == -1 || p.cell.0 == 2 {
                    assert_eq!(p.kind, StabKind::Z, "cell {:?}", p.cell);
                } else {
                    assert_eq!(p.kind, StabKind::X, "cell {:?}", p.cell);
                }
            }
        }
    }

    #[test]
    fn data_and_approach_sites_are_consistent_with_the_grid_layout() {
        use tiscc_grid::{Layout, SiteKind};
        let layout = Layout::new(8, 8);
        let origin = (1, 1);
        for i in 0..3 {
            for j in 0..3 {
                let d = data_site(origin, 3, i, j);
                assert_eq!(layout.site_kind(d), Some(SiteKind::Operation));
                for east in [false, true] {
                    let a = approach_site(origin, 3, i, j, east);
                    assert_eq!(layout.site_kind(a), Some(SiteKind::Memory));
                    assert_eq!(a.manhattan(&d), 1, "approach site adjacent to data");
                }
            }
        }
        for p in build_stabilizers(3, 3, Arrangement::Standard) {
            let site = measure_home_site(anchor_unit(origin, 3, p.cell));
            assert_eq!(layout.site_kind(site), Some(SiteKind::Memory));
        }
    }
}

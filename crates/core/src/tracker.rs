//! Logical-operator tracking and classically-defined logical outcomes.
//!
//! TISCC output is only meaningful together with classical post-processing
//! rules (paper Sec. 4.5): logical operators are tracked as a *physical
//! representative* plus a Pauli frame given by a set of measurement indices
//! whose outcome parity flips the sign, and logical measurement results are
//! parities of recorded measurement outcomes.

use tiscc_grid::QubitId;
use tiscc_math::PauliOp;

/// A logical operator tracked in patch-local data-qubit coordinates.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct OperatorTracker {
    /// Physical support: data coordinate and Pauli label.
    pub support: Vec<((usize, usize), PauliOp)>,
    /// Measurement indices whose outcome parity flips the operator's sign.
    pub frame: Vec<usize>,
    /// Static sign flip accumulated at compile time.
    pub invert: bool,
}

impl OperatorTracker {
    /// A tracker with the given support and an empty frame.
    pub fn new(support: Vec<((usize, usize), PauliOp)>) -> Self {
        OperatorTracker { support, frame: Vec::new(), invert: false }
    }
}

/// A logical operator resolved to physical ions, ready to be handed to the
/// simulator (it mirrors `tiscc_orqcs::postprocess::CorrectedOperator`; the
/// compiler crate does not depend on the simulator, so the struct is
/// duplicated here with identical meaning).
#[derive(Clone, Debug, PartialEq)]
pub struct TrackedOperator {
    /// Physical support as (ion, Pauli label) pairs.
    pub support: Vec<(QubitId, PauliOp)>,
    /// Measurement indices whose outcome parity flips the sign.
    pub frame: Vec<usize>,
    /// Static sign flip.
    pub invert: bool,
}

/// A classical logical outcome defined as a parity of measurement outcomes
/// (e.g. the result of a `Measure XX` instruction or of a transversal
/// logical measurement).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct LogicalOutcomeSpec {
    /// Human-readable name (`"XX"`, `"Z_L"`, ...).
    pub name: String,
    /// Measurement indices whose parity defines the value.
    pub parity_of: Vec<usize>,
    /// Static inversion.
    pub invert: bool,
}

impl LogicalOutcomeSpec {
    /// Creates a named outcome from a list of measurement indices.
    pub fn new(name: impl Into<String>, parity_of: Vec<usize>, invert: bool) -> Self {
        LogicalOutcomeSpec { name: name.into(), parity_of, invert }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trackers_default_to_trivial_frame() {
        let t = OperatorTracker::new(vec![((0, 0), PauliOp::X)]);
        assert!(t.frame.is_empty());
        assert!(!t.invert);
        assert_eq!(t.support.len(), 1);
    }

    #[test]
    fn outcome_spec_builder() {
        let o = LogicalOutcomeSpec::new("XX", vec![3, 5], true);
        assert_eq!(o.name, "XX");
        assert_eq!(o.parity_of, vec![3, 5]);
        assert!(o.invert);
    }
}

//! Patch translation by ion movement alone (paper Sec. 2.5, Fig. 4).
//!
//! `Move Right` shuttles every data ion of a patch one unit column toward
//! the ancilla strip of its own tile (right-most column first, so each
//! destination zone is vacated just in time), after the ion parked on the
//! strip has stepped aside onto its spare memory zone; `Swap Left` is the
//! mirror-image dance that brings every ion back. The pair involves no gate
//! operations at all, so it acts as the identity on the encoded state; its
//! cost — dominated by junction traversals — is what the Fig. 4 experiment
//! estimates. Single-direction translations (which leave the patch bound to
//! a shifted set of zones and are the building block of patch-rotation
//! protocols) are deliberately not exposed; like the rotation protocols
//! themselves they are future work in the paper as well.

use tiscc_grid::QSite;
use tiscc_hw::HardwareModel;

use crate::patch::LogicalQubit;
use crate::plaquette::{data_home_site, row_offset};
use crate::CoreError;

/// `Move Right` immediately followed by `Swap Left` (Fig. 4): every data ion
/// of the patch is shuttled one unit column to the right and back, returning
/// to its original trapping zone. Returns the number of transport operations
/// emitted (used for resource estimation).
pub fn move_right_then_swap_left(
    hw: &mut HardwareModel,
    patch: &mut LogicalQubit,
) -> Result<usize, CoreError> {
    patch.require_initialized("Move Right / Swap Left")?;
    let dx = patch.dx() as u32;
    let dz = patch.dz();
    let origin = patch.origin();
    let strip_col = dx;
    let ops_before = hw.circuit().len();

    for i in 0..dz as u32 {
        let r = row_offset(dz) + i;
        let unit = |c: u32| (origin.0 + r, origin.1 + c);
        let strip_ion = patch
            .data_ion_at_unit(r, strip_col)
            .ok_or_else(|| CoreError::MissingIon(format!("strip ion in tile row {r}")))?;
        let strip_unit = unit(strip_col);
        let spare = QSite::new(4 * strip_unit.0, 4 * strip_unit.1 + 3);

        // ---- Move Right: strip ion steps aside, data shifts right. ----
        hw.route_and_move(strip_ion, spare)?;
        for j in (0..dx).rev() {
            let ion = patch
                .data_ion_at_unit(r, j)
                .ok_or_else(|| CoreError::MissingIon(format!("data ion in tile unit ({r},{j})")))?;
            hw.route_and_move(ion, data_home_site(unit(j + 1)))?;
        }

        // ---- Swap Left: data shifts back, strip ion returns home. ----
        for j in 0..dx {
            let site_now = data_home_site(unit(j + 1));
            let ion = hw
                .grid()
                .qubit_at(site_now)
                .ok_or_else(|| CoreError::MissingIon(format!("ion expected at {site_now}")))?;
            hw.route_and_move(ion, data_home_site(unit(j)))?;
        }
        hw.route_and_move(strip_ion, data_home_site(strip_unit))?;
    }
    Ok(hw.circuit().len() - ops_before)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plaquette::{data_site, tile_cols, tile_rows};

    fn hw_for(dx: usize, dz: usize) -> HardwareModel {
        HardwareModel::new(tile_rows(dz) + 2, tile_cols(dx) + 2)
    }

    #[test]
    fn round_trip_restores_every_ion_position() {
        let mut hw = hw_for(3, 3);
        let mut patch = LogicalQubit::new(&mut hw, 3, 3, 2, (0, 0)).unwrap();
        patch.transversal_prepare_z(&mut hw).unwrap();
        let before: Vec<_> = (0..3)
            .flat_map(|i| (0..3).map(move |j| (i, j)))
            .map(|(i, j)| {
                let ion = patch.data_ion(i, j).unwrap();
                (ion, hw.grid().position_of(ion).unwrap())
            })
            .collect();
        let ops = move_right_then_swap_left(&mut hw, &mut patch).unwrap();
        assert!(ops > 0);
        for (ion, site) in before {
            assert_eq!(hw.grid().position_of(ion), Some(site));
        }
        for i in 0..3 {
            for j in 0..3 {
                let ion = patch.data_ion(i, j).unwrap();
                assert_eq!(hw.grid().position_of(ion), Some(data_site(patch.origin(), 3, i, j)));
            }
        }
    }

    #[test]
    fn translation_emits_only_transport_operations() {
        let mut hw = hw_for(3, 4);
        let mut patch = LogicalQubit::new(&mut hw, 3, 4, 2, (0, 0)).unwrap();
        patch.transversal_prepare_z(&mut hw).unwrap();
        let before = hw.circuit().len();
        move_right_then_swap_left(&mut hw, &mut patch).unwrap();
        assert!(hw.circuit().len() > before);
        for op in &hw.circuit().ops()[before..] {
            assert!(op.op.is_transport(), "saw non-transport op {:?}", op.op);
        }
    }

    #[test]
    fn uninitialized_patches_are_rejected() {
        let mut hw = hw_for(2, 2);
        let mut patch = LogicalQubit::new(&mut hw, 2, 2, 2, (0, 0)).unwrap();
        assert!(matches!(
            move_right_then_swap_left(&mut hw, &mut patch),
            Err(CoreError::InvalidState(_))
        ));
    }
}

//! The four canonical stabilizer arrangements of a surface-code patch
//! (paper Fig. 2).
//!
//! An arrangement is characterised by two independent bits:
//! * whether the bulk checkerboard parity is flipped relative to the
//!   standard arrangement (X and Z plaquettes swap positions), and
//! * whether the boundary types are swapped (weight-2 Z stabilizers move
//!   from the top/bottom edges to the left/right edges and vice versa),
//!   which also flips the orientation of the default logical operators.
//!
//! A transversal Hadamard flips *both* bits (standard ↔ rotated,
//! flipped ↔ rotated-flipped); the Flip Patch deformation flips only the
//! boundary bit (standard ↔ flipped, rotated ↔ rotated-flipped).
//! The measure-qubit movement patterns (Fig. 6) deviate from the default
//! Z-pattern/N-pattern assignment exactly when the boundaries are swapped,
//! i.e. when the logical operators have changed direction (Sec. 3.3).

/// One of the four canonical stabilizer arrangements.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Arrangement {
    /// The standard arrangement of Fig. 1: logical Z vertical, logical X
    /// horizontal, weight-2 Z stabilizers on the top/bottom boundaries.
    Standard,
    /// After a transversal Hadamard on the standard arrangement.
    Rotated,
    /// After a Flip Patch on the standard arrangement.
    Flipped,
    /// After both (in either order).
    RotatedFlipped,
}

impl Arrangement {
    /// True if the bulk checkerboard parity is flipped w.r.t. standard.
    pub fn parity_flipped(self) -> bool {
        matches!(self, Arrangement::Rotated | Arrangement::RotatedFlipped)
    }

    /// True if the boundary types (and logical-operator orientations) are
    /// swapped w.r.t. standard.
    pub fn boundaries_swapped(self) -> bool {
        matches!(self, Arrangement::Rotated | Arrangement::Flipped)
    }

    /// True if the default logical Z operator runs vertically (top to
    /// bottom); otherwise it runs horizontally.
    pub fn logical_z_vertical(self) -> bool {
        !self.boundaries_swapped()
    }

    /// True if the measure-qubit movement patterns deviate from the default
    /// rule (Z-type → Z pattern, X-type → N pattern); see Sec. 3.3.
    pub fn patterns_swapped(self) -> bool {
        self.boundaries_swapped()
    }

    /// The arrangement reached after a transversal Hadamard.
    pub fn after_transversal_hadamard(self) -> Arrangement {
        match self {
            Arrangement::Standard => Arrangement::Rotated,
            Arrangement::Rotated => Arrangement::Standard,
            Arrangement::Flipped => Arrangement::RotatedFlipped,
            Arrangement::RotatedFlipped => Arrangement::Flipped,
        }
    }

    /// The arrangement reached after a Flip Patch deformation.
    pub fn after_flip_patch(self) -> Arrangement {
        match self {
            Arrangement::Standard => Arrangement::Flipped,
            Arrangement::Flipped => Arrangement::Standard,
            Arrangement::Rotated => Arrangement::RotatedFlipped,
            Arrangement::RotatedFlipped => Arrangement::Rotated,
        }
    }

    /// Reconstructs an arrangement from its two characteristic bits.
    pub fn from_bits(parity_flipped: bool, boundaries_swapped: bool) -> Arrangement {
        match (parity_flipped, boundaries_swapped) {
            (false, false) => Arrangement::Standard,
            (true, true) => Arrangement::Rotated,
            (false, true) => Arrangement::Flipped,
            (true, false) => Arrangement::RotatedFlipped,
        }
    }

    /// All four arrangements, in the order of Fig. 2.
    pub fn all() -> [Arrangement; 4] {
        [
            Arrangement::Standard,
            Arrangement::Rotated,
            Arrangement::Flipped,
            Arrangement::RotatedFlipped,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hadamard_flips_both_bits() {
        for a in Arrangement::all() {
            let b = a.after_transversal_hadamard();
            assert_ne!(a.parity_flipped(), b.parity_flipped());
            assert_ne!(a.boundaries_swapped(), b.boundaries_swapped());
            assert_eq!(b.after_transversal_hadamard(), a, "H is an involution");
        }
    }

    #[test]
    fn flip_patch_flips_only_boundaries() {
        for a in Arrangement::all() {
            let b = a.after_flip_patch();
            assert_eq!(a.parity_flipped(), b.parity_flipped());
            assert_ne!(a.boundaries_swapped(), b.boundaries_swapped());
            assert_eq!(b.after_flip_patch(), a);
        }
    }

    #[test]
    fn from_bits_roundtrip() {
        for a in Arrangement::all() {
            assert_eq!(Arrangement::from_bits(a.parity_flipped(), a.boundaries_swapped()), a);
        }
    }

    #[test]
    fn pattern_rule_matches_paper_statement() {
        // Patterns deviate for the rotated and flipped arrangements and are
        // reset to the standard rule for rotated-flipped (Sec. 3.3).
        assert!(!Arrangement::Standard.patterns_swapped());
        assert!(Arrangement::Rotated.patterns_swapped());
        assert!(Arrangement::Flipped.patterns_swapped());
        assert!(!Arrangement::RotatedFlipped.patterns_swapped());
    }

    #[test]
    fn hadamard_then_flip_reaches_rotated_flipped() {
        let a = Arrangement::Standard.after_transversal_hadamard().after_flip_patch();
        assert_eq!(a, Arrangement::RotatedFlipped);
        let b = Arrangement::Standard.after_flip_patch().after_transversal_hadamard();
        assert_eq!(b, Arrangement::RotatedFlipped);
    }
}

//! The derived instruction set of paper Table 3.
//!
//! These instructions could be built from Table 1 members but are compiled
//! more efficiently from the Table 2 primitives by exploiting stabilizer
//! commutation (e.g. a state preparation can be fused with the following
//! lattice-surgery merge because the prepared state need not be
//! fault-tolerantly encoded first).

use tiscc_hw::HardwareModel;

use crate::patch::LogicalQubit;
use crate::surgery::{contract_keep_bottom, extend_down, measure_xx, merge_patches, Orientation};
use crate::syndrome::RoundRecord;
use crate::tracker::LogicalOutcomeSpec;
use crate::CoreError;

/// One member of the Table 3 derived instruction set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DerivedInstruction {
    /// Initialise a Bell state on two adjacent uninitialised tiles (1 step).
    BellStatePreparation,
    /// Destructive Bell-basis measurement of two adjacent tiles (1 step).
    BellBasisMeasurement,
    /// Patch extension followed by a split (1 step).
    ExtendSplit,
    /// Merge followed by a patch contraction (1 step).
    MergeContract,
    /// Move a patch to the adjacent tile (extension + contraction, 1 step).
    Move,
    /// Contract an extended two-tile patch to one tile (0 steps).
    PatchContraction,
    /// Extend a one-tile patch to two tiles (1 step).
    PatchExtension,
}

impl DerivedInstruction {
    /// Logical time-steps consumed (paper Table 3).
    pub fn logical_time_steps(self) -> usize {
        match self {
            DerivedInstruction::PatchContraction => 0,
            _ => 1,
        }
    }

    /// Tiles in/out as listed in Table 3.
    pub fn tiles(self) -> usize {
        2
    }

    /// The paper's name for the instruction.
    pub fn name(self) -> &'static str {
        match self {
            DerivedInstruction::BellStatePreparation => "Bell State Preparation",
            DerivedInstruction::BellBasisMeasurement => "Bell Basis Measurement",
            DerivedInstruction::ExtendSplit => "Extend-Split",
            DerivedInstruction::MergeContract => "Merge-Contract",
            DerivedInstruction::Move => "Move",
            DerivedInstruction::PatchContraction => "Patch Contraction",
            DerivedInstruction::PatchExtension => "Patch Extension",
        }
    }

    /// Every derived instruction, in the order of Table 3.
    pub fn all() -> &'static [DerivedInstruction] {
        &[
            DerivedInstruction::BellStatePreparation,
            DerivedInstruction::BellBasisMeasurement,
            DerivedInstruction::ExtendSplit,
            DerivedInstruction::MergeContract,
            DerivedInstruction::Move,
            DerivedInstruction::PatchContraction,
            DerivedInstruction::PatchExtension,
        ]
    }
}

/// Prepares a Bell pair on two vertically adjacent uninitialised tiles:
/// both tiles are transversally prepared in |0⟩ and their joint XX operator
/// is measured by lattice surgery. The returned outcome is the XX value; the
/// pair is stabilised by `(outcome)·X_AX_B` and `+Z_AZ_B` after the tracked
/// Pauli-frame corrections.
pub fn bell_state_preparation(
    hw: &mut HardwareModel,
    upper: &mut LogicalQubit,
    lower: &mut LogicalQubit,
) -> Result<LogicalOutcomeSpec, CoreError> {
    if upper.is_initialized() || lower.is_initialized() {
        return Err(CoreError::InvalidState(
            "Bell preparation requires uninitialised tiles".into(),
        ));
    }
    upper.transversal_prepare_z(hw)?;
    lower.transversal_prepare_z(hw)?;
    measure_xx(hw, upper, lower)
}

/// Destructive Bell-basis measurement of two vertically adjacent initialised
/// tiles: the joint XX operator is measured by lattice surgery and the joint
/// ZZ operator by transversal Z measurements of both tiles. Returns
/// `(XX outcome, ZZ outcome)`; both tiles end uninitialised.
pub fn bell_basis_measurement(
    hw: &mut HardwareModel,
    upper: &mut LogicalQubit,
    lower: &mut LogicalQubit,
) -> Result<(LogicalOutcomeSpec, LogicalOutcomeSpec), CoreError> {
    let xx = measure_xx(hw, upper, lower)?;
    let (z_upper, _) = upper.transversal_measure_z(hw)?;
    let (z_lower, _) = lower.transversal_measure_z(hw)?;
    let mut parity = z_upper.parity_of.clone();
    parity.extend(z_lower.parity_of.iter().copied());
    let zz = LogicalOutcomeSpec::new("ZZ", parity, z_upper.invert ^ z_lower.invert);
    Ok((xx, zz))
}

/// Extend-Split: a `Prepare Z` on the second tile fused with a `Measure XX`
/// between the two tiles, taking a single logical time-step in total.
pub fn extend_split(
    hw: &mut HardwareModel,
    upper: &mut LogicalQubit,
    lower: &mut LogicalQubit,
) -> Result<LogicalOutcomeSpec, CoreError> {
    upper.require_initialized("Extend-Split")?;
    if lower.is_initialized() {
        return Err(CoreError::InvalidState(
            "Extend-Split target tile must be uninitialised".into(),
        ));
    }
    lower.transversal_prepare_z(hw)?;
    measure_xx(hw, upper, lower)
}

/// Merge-Contract: the two patches are merged (1 step) and the merged patch
/// is immediately contracted onto the lower tile (0 steps). The encoded
/// state of the contracted output is the XX-merged logical qubit; the merge
/// outcome is returned together with the new single-tile patch.
pub fn merge_contract(
    hw: &mut HardwareModel,
    upper: &mut LogicalQubit,
    lower: &mut LogicalQubit,
) -> Result<(LogicalQubit, LogicalOutcomeSpec), CoreError> {
    let lower_origin = lower.origin();
    let keep = lower.dz();
    let mut merge = merge_patches(hw, upper, lower, Orientation::Vertical)?;
    let outcome = merge.joint_outcome.clone();
    let patch = contract_keep_bottom(hw, &mut merge.merged, keep, lower_origin)?;
    Ok((patch, outcome))
}

/// Patch Extension: grows an initialised one-tile patch into the adjacent
/// uninitialised tile below while preserving the encoded state.
pub fn patch_extension(
    hw: &mut HardwareModel,
    upper: &mut LogicalQubit,
    lower: &mut LogicalQubit,
) -> Result<(LogicalQubit, Vec<RoundRecord>), CoreError> {
    extend_down(hw, upper, lower)
}

/// Patch Contraction: shrinks a two-tile patch onto its lower tile while
/// preserving the encoded state.
pub fn patch_contraction(
    hw: &mut HardwareModel,
    extended: &mut LogicalQubit,
    keep_dz: usize,
    bottom_origin: (u32, u32),
) -> Result<LogicalQubit, CoreError> {
    contract_keep_bottom(hw, extended, keep_dz, bottom_origin)
}

/// Move: transfers the encoded state of `upper` onto the tile of `lower`
/// (which must be uninitialised) via a patch extension followed by a patch
/// contraction, in one logical time-step.
pub fn move_patch_down(
    hw: &mut HardwareModel,
    upper: &mut LogicalQubit,
    lower: &mut LogicalQubit,
) -> Result<LogicalQubit, CoreError> {
    let keep = lower.dz();
    let origin = lower.origin();
    let (mut extended, _) = extend_down(hw, upper, lower)?;
    contract_keep_bottom(hw, &mut extended, keep, origin)
}

/// Applies `split_patches` re-exported for users driving the primitives
/// directly (kept here so the derived module covers every row of Table 3's
/// sub-instruction list).
pub use crate::surgery::split_patches as split;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_time_steps() {
        use DerivedInstruction::*;
        assert_eq!(BellStatePreparation.logical_time_steps(), 1);
        assert_eq!(BellBasisMeasurement.logical_time_steps(), 1);
        assert_eq!(ExtendSplit.logical_time_steps(), 1);
        assert_eq!(MergeContract.logical_time_steps(), 1);
        assert_eq!(Move.logical_time_steps(), 1);
        assert_eq!(PatchExtension.logical_time_steps(), 1);
        assert_eq!(PatchContraction.logical_time_steps(), 0);
        assert_eq!(DerivedInstruction::all().len(), 7);
    }

    #[test]
    fn bell_preparation_requires_uninitialised_tiles() {
        let mut hw = HardwareModel::new(10, 6);
        let mut a = LogicalQubit::new(&mut hw, 2, 2, 1, (0, 0)).unwrap();
        let mut b = LogicalQubit::new(&mut hw, 2, 2, 1, (4, 0)).unwrap();
        a.transversal_prepare_z(&mut hw).unwrap();
        assert!(bell_state_preparation(&mut hw, &mut a, &mut b).is_err());
    }
}

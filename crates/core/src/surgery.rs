//! Lattice surgery: merge, split, `Measure XX`/`Measure ZZ`, patch extension
//! and patch contraction.
//!
//! A vertical merge of two vertically adjacent patches measures the joint
//! logical `XX` operator; a horizontal merge measures `ZZ` (Sec. 2.3). The
//! intermediate ancilla strip (one data row/column for odd code distances,
//! two for even) is prepared in |0⟩ (vertical) or |+⟩ (horizontal), the
//! merged patch is error-corrected for `dt` rounds, and the joint outcome is
//! the parity of the first-round outcomes of the new seam stabilizers
//! together with the operator-movement corrections of Sec. 4.5. The split
//! measures the ancilla strip out again (Z basis for vertical, X basis for
//! horizontal) and records the resulting byproduct in the Pauli frame of the
//! second patch.

use std::collections::HashMap;

use tiscc_hw::{HardwareModel, Label, RoundLabel};
use tiscc_math::{Pauli, PauliOp};

use crate::deform::{combination_for_target, plaquette_pauli, support_pauli};
use crate::patch::LogicalQubit;
use crate::plaquette::{col_strip, row_offset, StabKind};
use crate::syndrome::RoundRecord;
use crate::tracker::{LogicalOutcomeSpec, OperatorTracker};
use crate::CoreError;

/// Orientation of a lattice-surgery operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Orientation {
    /// The two patches are vertically adjacent; the merge measures `XX`.
    Vertical,
    /// The two patches are horizontally adjacent; the merge measures `ZZ`.
    Horizontal,
}

/// The result of a merge: the merged two-tile patch, the syndrome rounds
/// executed while merged, the joint logical outcome and the bookkeeping
/// needed to split again.
#[derive(Debug)]
pub struct MergeOutcome {
    /// The merged patch (2 tiles).
    pub merged: LogicalQubit,
    /// The `dt` rounds of the merged patch.
    pub rounds: Vec<RoundRecord>,
    /// The joint `XX` (vertical) or `ZZ` (horizontal) outcome of the two
    /// input patches' default logical operators.
    pub joint_outcome: LogicalOutcomeSpec,
    /// Orientation of the merge.
    pub orientation: Orientation,
    /// Range of merged data rows (vertical) or columns (horizontal) occupied
    /// by the ancilla strip.
    pub gap: std::ops::Range<usize>,
}

fn check_compatible(
    first: &LogicalQubit,
    second: &LogicalQubit,
    orientation: Orientation,
) -> Result<(), CoreError> {
    if first.dx() != second.dx() || first.dz() != second.dz() || first.dt() != second.dt() {
        return Err(CoreError::Incompatible("patches must share dx, dz and dt".into()));
    }
    if first.arrangement() != crate::Arrangement::Standard
        || second.arrangement() != crate::Arrangement::Standard
    {
        return Err(CoreError::Incompatible(
            "lattice surgery is implemented for the standard arrangement".into(),
        ));
    }
    let adjacent = match orientation {
        Orientation::Vertical => first.is_directly_above(second),
        Orientation::Horizontal => first.is_directly_left_of(second),
    };
    if !adjacent {
        return Err(CoreError::Incompatible(
            "patches must occupy adjacent tiles in the surgery direction".into(),
        ));
    }
    Ok(())
}

/// Merges two initialized patches (the `Merge` primitive, 1 logical
/// time-step). The input patches are marked uninitialized; their ions become
/// part of the merged patch.
pub fn merge_patches(
    hw: &mut HardwareModel,
    first: &mut LogicalQubit,
    second: &mut LogicalQubit,
    orientation: Orientation,
) -> Result<MergeOutcome, CoreError> {
    first.require_initialized("Merge")?;
    second.require_initialized("Merge")?;
    check_compatible(first, second, orientation)?;

    let dx = first.dx();
    let dz = first.dz();
    let dt = first.dt();
    let (mdx, mdz, gap) = match orientation {
        Orientation::Vertical => {
            let g = row_offset(dz) as usize;
            (dx, 2 * dz + g, dz..dz + g)
        }
        Orientation::Horizontal => {
            let g = col_strip(dx) as usize;
            (2 * dx + g, dz, dx..dx + g)
        }
    };

    let mut merged = LogicalQubit::new(hw, mdx, mdz, dt, first.origin())?;

    // Prepare the ancilla strip: |0⟩ for an XX merge, |+⟩ for a ZZ merge.
    for idx in gap.clone() {
        for other in 0..match orientation {
            Orientation::Vertical => mdx,
            Orientation::Horizontal => mdz,
        } {
            let (i, j) = match orientation {
                Orientation::Vertical => (idx, other),
                Orientation::Horizontal => (other, idx),
            };
            let ion = merged.data_ion(i, j)?;
            match orientation {
                Orientation::Vertical => hw.prepare_z(ion)?,
                Orientation::Horizontal => hw.prepare_x(ion)?,
            }
        }
    }

    // Logical operators of the merged patch: the operator *parallel* to the
    // seam is inherited from the first patch; the operator *perpendicular*
    // to the seam spans both patches (its value is the product of the two
    // input values since the strip is prepared in its +1 eigenstate).
    merged.initialized = true;
    match orientation {
        Orientation::Vertical => {
            merged.logical_x = first.logical_x.clone();
            merged.logical_z = OperatorTracker {
                support: (0..mdz).map(|i| ((i, 0), PauliOp::Z)).collect(),
                frame: [first.logical_z.frame.clone(), second.logical_z.frame.clone()].concat(),
                invert: first.logical_z.invert ^ second.logical_z.invert,
            };
        }
        Orientation::Horizontal => {
            merged.logical_z = first.logical_z.clone();
            merged.logical_x = OperatorTracker {
                support: (0..mdx).map(|j| ((0, j), PauliOp::X)).collect(),
                frame: [first.logical_x.frame.clone(), second.logical_x.frame.clone()].concat(),
                invert: first.logical_x.invert ^ second.logical_x.invert,
            };
        }
    }

    // dt rounds of error correction over the merged patch (round-templated
    // when the hardware model enables it).
    let rounds = merged.syndrome_rounds(hw, dt, RoundLabel::Merge)?;

    // The joint outcome: parity of the first-round outcomes of the new seam
    // stabilizers of the relevant type, corrected by the operator movement
    // that connects the product of the seam stabilizers to the two patches'
    // default logical representatives.
    let seam_kind = match orientation {
        Orientation::Vertical => StabKind::X,
        Orientation::Horizontal => StabKind::Z,
    };
    let touches_gap = |p: &crate::Plaquette| {
        p.data_coords().iter().any(|&(i, j)| match orientation {
            Orientation::Vertical => gap.contains(&i),
            Orientation::Horizontal => gap.contains(&j),
        })
    };
    let seam_cells: Vec<(i32, i32)> = merged
        .stabilizers()
        .iter()
        .filter(|p| p.kind == seam_kind && touches_gap(p))
        .map(|p| p.cell)
        .collect();

    // Product of the seam stabilizers as a Pauli over the merged patch.
    let mut seam_product = Pauli::identity(mdz * mdx);
    for p in merged.stabilizers() {
        if p.kind == seam_kind && touches_gap(p) {
            seam_product.mul_assign(&plaquette_pauli(mdz, mdx, p));
        }
    }
    // Product of the two default-edge logical representatives, written in
    // merged coordinates (the second patch's coordinates are offset past the
    // ancilla strip).
    let offset = gap.end;
    let mut rep_product =
        support_pauli(mdz, mdx, &shift_support(&first_rep(first, orientation), (0, 0)));
    let second_shift = match orientation {
        Orientation::Vertical => (offset, 0),
        Orientation::Horizontal => (0, offset),
    };
    rep_product.mul_assign(&support_pauli(
        mdz,
        mdx,
        &shift_support(&first_rep(second, orientation), second_shift),
    ));

    // The correction connects the seam product to the representative product
    // using the patches' own (non-seam) stabilizers of the same type.
    let mut target = seam_product.clone();
    target.mul_assign(&rep_product);
    let own_stabs: Vec<&crate::Plaquette> =
        merged.stabilizers().iter().filter(|p| p.kind == seam_kind && !touches_gap(p)).collect();
    let correction_cells =
        combination_for_target(mdz, mdx, &own_stabs, &target).ok_or_else(|| {
            CoreError::NoDeformationPath(
                "seam product does not reduce to the default logical product".into(),
            )
        })?;

    let first_round = &rounds[0];
    let mut parity_of: Vec<usize> = Vec::new();
    for cell in seam_cells.iter().chain(correction_cells.iter()) {
        parity_of.push(first_round.index_of(*cell).ok_or_else(|| {
            CoreError::NoDeformationPath(format!("cell {cell:?} missing from the merge round"))
        })?);
    }
    let (name, frames, inverts) = match orientation {
        Orientation::Vertical => (
            "XX",
            [first.logical_x.frame.clone(), second.logical_x.frame.clone()].concat(),
            first.logical_x.invert ^ second.logical_x.invert,
        ),
        Orientation::Horizontal => (
            "ZZ",
            [first.logical_z.frame.clone(), second.logical_z.frame.clone()].concat(),
            first.logical_z.invert ^ second.logical_z.invert,
        ),
    };
    parity_of.extend(frames);
    let joint_outcome = LogicalOutcomeSpec::new(name, parity_of, inverts);

    first.mark_uninitialized();
    second.mark_uninitialized();

    Ok(MergeOutcome { merged, rounds, joint_outcome, orientation, gap })
}

fn first_rep(patch: &LogicalQubit, orientation: Orientation) -> Vec<((usize, usize), PauliOp)> {
    match orientation {
        Orientation::Vertical => patch.logical_x.support.clone(),
        Orientation::Horizontal => patch.logical_z.support.clone(),
    }
}

fn shift_support(
    support: &[((usize, usize), PauliOp)],
    shift: (usize, usize),
) -> Vec<((usize, usize), PauliOp)> {
    support.iter().map(|&((i, j), p)| ((i + shift.0, j + shift.1), p)).collect()
}

/// Splits a merged patch back into its two constituents (the `Split`
/// primitive, 0 logical time-steps): the ancilla strip is measured out and
/// the byproduct is recorded in the second patch's Pauli frame. Returns the
/// joint outcome of the surgery for convenience.
pub fn split_patches(
    hw: &mut HardwareModel,
    outcome: &MergeOutcome,
    first: &mut LogicalQubit,
    second: &mut LogicalQubit,
) -> Result<LogicalOutcomeSpec, CoreError> {
    let merged = &outcome.merged;
    let dx = first.dx();
    let dz = first.dz();

    // Measure the ancilla strip out.
    let mut strip_indices: HashMap<(usize, usize), usize> = HashMap::new();
    for idx in outcome.gap.clone() {
        for other in 0..match outcome.orientation {
            Orientation::Vertical => merged.dx(),
            Orientation::Horizontal => merged.dz(),
        } {
            let (i, j) = match outcome.orientation {
                Orientation::Vertical => (idx, other),
                Orientation::Horizontal => (other, idx),
            };
            let ion = merged.data_ion(i, j)?;
            let label = Label::SplitAncilla { row: i as u32, col: j as u32 };
            let m = match outcome.orientation {
                Orientation::Vertical => hw.measure_z(ion, label)?,
                Orientation::Horizontal => hw.measure_x(ion, label)?,
            };
            strip_indices.insert((i, j), m);
        }
    }

    // Byproduct: the split randomises the product of the logical operators
    // perpendicular to the seam by the parity of the strip outcomes along
    // the representative's row/column; fold it into the second patch's frame.
    match outcome.orientation {
        Orientation::Vertical => {
            let col = first.logical_z.support.first().map(|&((_, j), _)| j).unwrap_or(0);
            for idx in outcome.gap.clone() {
                second.logical_z.frame.push(strip_indices[&(idx, col)]);
            }
        }
        Orientation::Horizontal => {
            let row = first.logical_x.support.first().map(|&((i, _), _)| i).unwrap_or(0);
            for idx in outcome.gap.clone() {
                second.logical_x.frame.push(strip_indices[&(row, idx)]);
            }
        }
    }

    // Refresh the latest-round records of both patches from the merged
    // rounds wherever the stabilizer is unchanged, and drop stale entries
    // (the former outer-boundary stabilizers along the seam).
    let last_round = outcome.rounds.last().expect("merge ran at least one round");
    let second_shift = match outcome.orientation {
        Orientation::Vertical => (outcome.gap.end as i32, 0),
        Orientation::Horizontal => (0, outcome.gap.end as i32),
    };
    refresh_latest(first, merged, (0, 0), last_round, dz, dx);
    refresh_latest(second, merged, second_shift, last_round, dz, dx);

    first.initialized = true;
    second.initialized = true;
    Ok(outcome.joint_outcome.clone())
}

fn refresh_latest(
    patch: &mut LogicalQubit,
    merged: &LogicalQubit,
    shift: (i32, i32),
    round: &RoundRecord,
    dz: usize,
    dx: usize,
) {
    let _ = (dz, dx);
    let mut fresh: HashMap<(i32, i32), usize> = HashMap::new();
    for p in patch.stabilizers() {
        let merged_cell = (p.cell.0 + shift.0, p.cell.1 + shift.1);
        let Some(mp) = merged.stabilizers().iter().find(|m| m.cell == merged_cell) else {
            continue;
        };
        // Same operator? (same kind and same data support once shifted)
        let shifted: Vec<(usize, usize)> = p
            .data_coords()
            .iter()
            .map(|&(i, j)| ((i as i32 + shift.0) as usize, (j as i32 + shift.1) as usize))
            .collect();
        if mp.kind == p.kind && mp.data_coords() == shifted {
            if let Some(idx) = round.index_of(merged_cell) {
                fresh.insert(p.cell, idx);
            }
        }
    }
    patch.latest_round = fresh;
}

/// The `Measure XX` instruction: vertical merge followed by a split
/// (1 logical time-step). Returns the joint outcome specification.
pub fn measure_xx(
    hw: &mut HardwareModel,
    upper: &mut LogicalQubit,
    lower: &mut LogicalQubit,
) -> Result<LogicalOutcomeSpec, CoreError> {
    let merge = merge_patches(hw, upper, lower, Orientation::Vertical)?;
    split_patches(hw, &merge, upper, lower)
}

/// The `Measure ZZ` instruction: horizontal merge followed by a split
/// (1 logical time-step).
pub fn measure_zz(
    hw: &mut HardwareModel,
    left: &mut LogicalQubit,
    right: &mut LogicalQubit,
) -> Result<LogicalOutcomeSpec, CoreError> {
    let merge = merge_patches(hw, left, right, Orientation::Horizontal)?;
    split_patches(hw, &merge, left, right)
}

/// Patch extension (Table 3): grows an initialized one-tile patch downward
/// into the (uninitialized) tile below, preserving the encoded state.
/// Consumes both inputs and returns the two-tile patch (1 logical time-step).
pub fn extend_down(
    hw: &mut HardwareModel,
    upper: &mut LogicalQubit,
    lower_tile: &mut LogicalQubit,
) -> Result<(LogicalQubit, Vec<RoundRecord>), CoreError> {
    upper.require_initialized("Patch Extension")?;
    if lower_tile.is_initialized() {
        return Err(CoreError::InvalidState("extension target tile must be uninitialized".into()));
    }
    check_compatible_layout(upper, lower_tile)?;

    let dx = upper.dx();
    let dz = upper.dz();
    let dt = upper.dt();
    let gap = row_offset(dz) as usize;
    let mdz = 2 * dz + gap;
    let mut extended = LogicalQubit::new(hw, dx, mdz, dt, upper.origin())?;
    // Everything below the original patch is freshly prepared in |0⟩.
    for i in dz..mdz {
        for j in 0..dx {
            hw.prepare_z(extended.data_ion(i, j)?)?;
        }
    }
    extended.initialized = true;
    extended.logical_x = upper.logical_x.clone();
    extended.logical_z = OperatorTracker {
        support: (0..mdz).map(|i| ((i, 0), PauliOp::Z)).collect(),
        frame: upper.logical_z.frame.clone(),
        invert: upper.logical_z.invert,
    };
    let rounds = extended.syndrome_rounds(hw, dt, RoundLabel::Extension)?;
    upper.mark_uninitialized();
    lower_tile.mark_uninitialized();
    Ok((extended, rounds))
}

fn check_compatible_layout(upper: &LogicalQubit, lower: &LogicalQubit) -> Result<(), CoreError> {
    if upper.dx() != lower.dx() || upper.dz() != lower.dz() || upper.dt() != lower.dt() {
        return Err(CoreError::Incompatible("patches must share dx, dz and dt".into()));
    }
    if !upper.is_directly_above(lower) {
        return Err(CoreError::Incompatible("tiles must be vertically adjacent".into()));
    }
    Ok(())
}

/// Patch contraction (Table 3): shrinks an extended (two-tile-tall) patch to
/// its bottom tile, preserving the encoded state (0 logical time-steps).
/// The rows removed are measured in the Z basis after the logical X
/// representative has been moved off them; both resulting sign corrections
/// are recorded in the returned patch's Pauli frames.
pub fn contract_keep_bottom(
    hw: &mut HardwareModel,
    extended: &mut LogicalQubit,
    keep_dz: usize,
    bottom_origin: (u32, u32),
) -> Result<LogicalQubit, CoreError> {
    extended.require_initialized("Patch Contraction")?;
    let dx = extended.dx();
    let mdz = extended.dz();
    if keep_dz >= mdz {
        return Err(CoreError::Incompatible("contraction must remove at least one row".into()));
    }
    let removed = mdz - keep_dz;

    // Move the logical X representative into the kept region.
    crate::deform::move_logical_x_to_row(extended, removed)?;

    // Measure the removed rows out in the Z basis.
    let mut removed_indices: HashMap<(usize, usize), usize> = HashMap::new();
    for i in 0..removed {
        for j in 0..dx {
            let ion = extended.data_ion(i, j)?;
            let m = hw.measure_z(ion, Label::ContractionData { row: i as u32, col: j as u32 })?;
            removed_indices.insert((i, j), m);
        }
    }

    let mut bottom = LogicalQubit::new(hw, dx, keep_dz, extended.dt(), bottom_origin)?;
    bottom.initialized = true;
    bottom.logical_x = OperatorTracker {
        support: extended
            .logical_x
            .support
            .iter()
            .map(|&((i, j), p)| ((i - removed, j), p))
            .collect(),
        frame: extended.logical_x.frame.clone(),
        invert: extended.logical_x.invert,
    };
    let zcol = extended.logical_z.support.first().map(|&((_, j), _)| j).unwrap_or(0);
    let mut zframe = extended.logical_z.frame.clone();
    for i in 0..removed {
        zframe.push(removed_indices[&(i, zcol)]);
    }
    bottom.logical_z = OperatorTracker {
        support: (0..keep_dz).map(|i| ((i, zcol), PauliOp::Z)).collect(),
        frame: zframe,
        invert: extended.logical_z.invert,
    };
    // Carry over fresh syndrome values for the stabilizers that survive.
    let last: RoundRecord = RoundRecord { measurements: extended.latest_round.clone() };
    refresh_latest(&mut bottom, extended, (removed as i32, 0), &last, keep_dz, dx);
    extended.mark_uninitialized();
    Ok(bottom)
}

//! Operator movement and deformation tracking (paper Secs. 2.5 and 4.5).
//!
//! A logical operator representative can be multiplied by stabilizers without
//! changing the encoded observable — but the *sign* of the new representative
//! relative to the old one is the product of the measured stabilizer values,
//! which must be folded into the Pauli frame. TISCC exposes this as operator
//! movement: "one can specify a logical operator and a number of rows or
//! columns to shift and it returns all of the qsites corresponding with the
//! stabilizer measurements needed to deform the operator". The same machinery
//! provides the sign corrections of lattice-surgery outcomes and of patch
//! contraction.

use tiscc_math::{F2Matrix, Pauli, PauliOp};

use crate::patch::LogicalQubit;
use crate::plaquette::{Plaquette, StabKind};
use crate::CoreError;

/// Builds the Pauli operator (over an `nrows × ncols` data-coordinate index
/// space) described by a sparse support of `(coordinate, label)` pairs.
pub fn support_pauli(nrows: usize, ncols: usize, support: &[((usize, usize), PauliOp)]) -> Pauli {
    let sparse: Vec<(usize, PauliOp)> =
        support.iter().map(|&((i, j), p)| (i * ncols + j, p)).collect();
    Pauli::from_sparse(nrows * ncols, &sparse)
}

/// The Pauli operator measured by a plaquette, over the same index space.
pub fn plaquette_pauli(nrows: usize, ncols: usize, plaquette: &Plaquette) -> Pauli {
    let support: Vec<((usize, usize), PauliOp)> =
        plaquette.data_coords().into_iter().map(|c| (c, plaquette.kind.pauli())).collect();
    support_pauli(nrows, ncols, &support)
}

/// Finds a subset of the given plaquettes whose product equals `target`
/// (up to sign). Returns the cells of the participating plaquettes, or `None`
/// if the target is not in the group they generate.
pub fn combination_for_target(
    nrows: usize,
    ncols: usize,
    candidates: &[&Plaquette],
    target: &Pauli,
) -> Option<Vec<(i32, i32)>> {
    let mut matrix = F2Matrix::new(2 * nrows * ncols);
    for p in candidates {
        matrix.push_row(plaquette_pauli(nrows, ncols, p).symplectic());
    }
    let combo = matrix.solve_combination(&target.symplectic())?;
    Some(combo.into_iter().map(|i| candidates[i].cell).collect())
}

/// Finds the stabilizer cells whose product moves the operator supported on
/// `from` to the operator supported on `to` (both must be representatives of
/// the same logical operator, differing by a stabilizer product).
pub fn movement_combination(
    nrows: usize,
    ncols: usize,
    stabilizers: &[Plaquette],
    kind: StabKind,
    from: &[((usize, usize), PauliOp)],
    to: &[((usize, usize), PauliOp)],
) -> Option<Vec<(i32, i32)>> {
    let mut target = support_pauli(nrows, ncols, from);
    target.mul_assign(&support_pauli(nrows, ncols, to));
    let candidates: Vec<&Plaquette> = stabilizers.iter().filter(|p| p.kind == kind).collect();
    combination_for_target(nrows, ncols, &candidates, &target)
}

/// Moves a patch's logical X representative to the given data row (for
/// arrangements where logical X runs horizontally). The sign change is
/// recorded in the operator's Pauli frame using the latest syndrome-round
/// measurement indices of the stabilizers involved.
pub fn move_logical_x_to_row(patch: &mut LogicalQubit, row: usize) -> Result<(), CoreError> {
    let dx = patch.dx();
    let new_support: Vec<((usize, usize), PauliOp)> =
        (0..dx).map(|j| ((row, j), PauliOp::X)).collect();
    move_tracker(patch, StabKind::X, new_support)
}

/// Moves a patch's logical Z representative to the given data column.
pub fn move_logical_z_to_column(patch: &mut LogicalQubit, col: usize) -> Result<(), CoreError> {
    let dz = patch.dz();
    let new_support: Vec<((usize, usize), PauliOp)> =
        (0..dz).map(|i| ((i, col), PauliOp::Z)).collect();
    move_tracker(patch, StabKind::Z, new_support)
}

fn move_tracker(
    patch: &mut LogicalQubit,
    kind: StabKind,
    new_support: Vec<((usize, usize), PauliOp)>,
) -> Result<(), CoreError> {
    let dx = patch.dx();
    let dz = patch.dz();
    let old_support = match kind {
        StabKind::X => patch.logical_x.support.clone(),
        StabKind::Z => patch.logical_z.support.clone(),
    };
    if old_support == new_support {
        return Ok(());
    }
    let cells = movement_combination(dz, dx, patch.stabilizers(), kind, &old_support, &new_support)
        .ok_or_else(|| {
            CoreError::NoDeformationPath(format!(
                "no {kind:?} stabilizer product connects the supports"
            ))
        })?;
    let mut frame_add = Vec::with_capacity(cells.len());
    for cell in cells {
        let idx = patch.latest_round().get(&cell).copied().ok_or_else(|| {
            CoreError::NoDeformationPath(format!(
                "stabilizer {cell:?} has no fresh measurement; run a round of error correction first"
            ))
        })?;
        frame_add.push(idx);
    }
    let tracker = match kind {
        StabKind::X => &mut patch.logical_x,
        StabKind::Z => &mut patch.logical_z,
    };
    tracker.support = new_support;
    tracker.frame.extend(frame_add);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrangement::Arrangement;
    use crate::plaquette::build_stabilizers;

    #[test]
    fn moving_a_logical_row_uses_only_x_stabilizers() {
        let stabs = build_stabilizers(3, 3, Arrangement::Standard);
        let from: Vec<_> = (0..3).map(|j| ((0usize, j), PauliOp::X)).collect();
        let to: Vec<_> = (0..3).map(|j| ((2usize, j), PauliOp::X)).collect();
        let cells = movement_combination(3, 3, &stabs, StabKind::X, &from, &to).expect("movable");
        // Moving the top row to the bottom row of a d=3 patch uses every
        // X-type stabilizer exactly once (4 of them).
        assert_eq!(cells.len(), 4);
        for cell in &cells {
            let p = stabs.iter().find(|p| p.cell == *cell).unwrap();
            assert_eq!(p.kind, StabKind::X);
        }
    }

    #[test]
    fn unreachable_targets_are_rejected() {
        let stabs = build_stabilizers(3, 3, Arrangement::Standard);
        // An X row cannot be turned into an X column by X stabilizers alone.
        let from: Vec<_> = (0..3).map(|j| ((0usize, j), PauliOp::X)).collect();
        let to: Vec<_> = (0..3).map(|i| ((i, 0usize), PauliOp::X)).collect();
        assert!(movement_combination(3, 3, &stabs, StabKind::X, &from, &to).is_none());
    }

    #[test]
    fn combination_for_single_stabilizer_is_itself() {
        let stabs = build_stabilizers(3, 3, Arrangement::Standard);
        let candidates: Vec<&Plaquette> = stabs.iter().collect();
        let target = plaquette_pauli(3, 3, &stabs[0]);
        let combo = combination_for_target(3, 3, &candidates, &target).unwrap();
        assert_eq!(combo, vec![stabs[0].cell]);
    }
}

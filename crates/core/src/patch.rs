//! The [`LogicalQubit`]: one surface-code patch bound to ions on the
//! trapped-ion grid, together with its stabilizer set, logical-operator
//! trackers and the transversal / injection / idle primitives of Table 2.

use std::collections::HashMap;

use tiscc_grid::{QSite, QubitId};
use tiscc_hw::{HardwareModel, Label, RoundLabel};
use tiscc_math::PauliOp;

use crate::arrangement::Arrangement;
use crate::plaquette::{
    build_stabilizers, data_home_site, logical_x_support, logical_z_support, measure_home_site,
    row_offset, tile_cols, tile_rows, Plaquette, StabKind,
};
use crate::syndrome::{syndrome_round, PatchBinding, RoundRecord};
use crate::tracker::{LogicalOutcomeSpec, OperatorTracker, TrackedOperator};
use crate::CoreError;

/// Per-data-qubit measurement indices of a transversal readout, keyed by the
/// data qubit's `(row, col)` coordinate within the tile.
pub type DataMeasurementIndices = HashMap<(usize, usize), usize>;

/// A surface-code patch occupying one (or, transiently during lattice
/// surgery and extension, more than one) logical tile.
///
/// Construction places — or re-binds to — one data ion and one syndrome ion
/// per tile unit; the patch starts *uninitialized* (no operable surface-code
/// state). The Table 2 primitives are provided as methods; lattice surgery
/// lives in [`crate::surgery`].
#[derive(Clone, Debug)]
pub struct LogicalQubit {
    dx: usize,
    dz: usize,
    dt: usize,
    origin: (u32, u32),
    arrangement: Arrangement,
    pub(crate) data_by_unit: HashMap<(u32, u32), QubitId>,
    pub(crate) measure_by_unit: HashMap<(u32, u32), QubitId>,
    pub(crate) stabilizers: Vec<Plaquette>,
    pub(crate) logical_x: OperatorTracker,
    pub(crate) logical_z: OperatorTracker,
    pub(crate) initialized: bool,
    pub(crate) latest_round: HashMap<(i32, i32), usize>,
}

impl LogicalQubit {
    /// Creates a patch with X/Z code distances `dx`/`dz` and temporal
    /// distance `dt` whose tile's upper-left unit is `origin`.
    ///
    /// Ions already present at the required sites (e.g. from a neighbouring
    /// patch whose tile overlaps a merged region) are re-used; missing ions
    /// are placed. The patch starts uninitialized and in the standard
    /// arrangement.
    pub fn new(
        hw: &mut HardwareModel,
        dx: usize,
        dz: usize,
        dt: usize,
        origin: (u32, u32),
    ) -> Result<Self, CoreError> {
        if dx < 2 || dz < 2 {
            return Err(CoreError::InvalidState(format!(
                "code distances must be at least 2 (got dx={dx}, dz={dz})"
            )));
        }
        if dt == 0 {
            return Err(CoreError::InvalidState(
                "temporal distance must be at least 1".to_string(),
            ));
        }
        let mut data_by_unit = HashMap::new();
        let mut measure_by_unit = HashMap::new();
        for r in 0..tile_rows(dz) {
            for c in 0..tile_cols(dx) {
                let unit = (origin.0 + r, origin.1 + c);
                let dsite = data_home_site(unit);
                let msite = measure_home_site(unit);
                data_by_unit.insert((r, c), Self::bind_ion(hw, dsite)?);
                measure_by_unit.insert((r, c), Self::bind_ion(hw, msite)?);
            }
        }
        let arrangement = Arrangement::Standard;
        Ok(LogicalQubit {
            dx,
            dz,
            dt,
            origin,
            arrangement,
            data_by_unit,
            measure_by_unit,
            stabilizers: build_stabilizers(dx, dz, arrangement),
            logical_x: OperatorTracker::new(logical_x_support(dx, dz, arrangement)),
            logical_z: OperatorTracker::new(logical_z_support(dx, dz, arrangement)),
            initialized: false,
            latest_round: HashMap::new(),
        })
    }

    fn bind_ion(hw: &mut HardwareModel, site: QSite) -> Result<QubitId, CoreError> {
        if let Some(q) = hw.grid().qubit_at(site) {
            Ok(q)
        } else {
            Ok(hw.place_qubit(site)?)
        }
    }

    /// X code distance (number of data columns).
    pub fn dx(&self) -> usize {
        self.dx
    }

    /// Z code distance (number of data rows).
    pub fn dz(&self) -> usize {
        self.dz
    }

    /// Temporal code distance: number of syndrome-extraction rounds per
    /// logical time-step.
    pub fn dt(&self) -> usize {
        self.dt
    }

    /// Tile origin in absolute unit coordinates.
    pub fn origin(&self) -> (u32, u32) {
        self.origin
    }

    /// Current stabilizer arrangement.
    pub fn arrangement(&self) -> Arrangement {
        self.arrangement
    }

    /// True if an operable surface-code state occupies the tile.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// Tile height in unit rows.
    pub fn tile_rows(&self) -> u32 {
        tile_rows(self.dz)
    }

    /// Tile width in unit columns.
    pub fn tile_cols(&self) -> u32 {
        tile_cols(self.dx)
    }

    /// The stabilizer plaquettes.
    pub fn stabilizers(&self) -> &[Plaquette] {
        &self.stabilizers
    }

    /// The tracked logical X operator (patch-local coordinates).
    pub fn logical_x(&self) -> &OperatorTracker {
        &self.logical_x
    }

    /// The tracked logical Z operator (patch-local coordinates).
    pub fn logical_z(&self) -> &OperatorTracker {
        &self.logical_z
    }

    /// Latest syndrome-round measurement index for each cell (used for
    /// operator movement and lattice-surgery sign corrections).
    pub fn latest_round(&self) -> &HashMap<(i32, i32), usize> {
        &self.latest_round
    }

    /// The ion holding data qubit `(i, j)`.
    pub fn data_ion(&self, i: usize, j: usize) -> Result<QubitId, CoreError> {
        let unit = (row_offset(self.dz) + i as u32, j as u32);
        self.data_by_unit
            .get(&unit)
            .copied()
            .ok_or_else(|| CoreError::MissingIon(format!("data ({i},{j})")))
    }

    /// The ion parked at the data home of the tile-relative unit `(r, c)`
    /// (strip units included).
    pub fn data_ion_at_unit(&self, r: u32, c: u32) -> Option<QubitId> {
        self.data_by_unit.get(&(r, c)).copied()
    }

    /// The syndrome ion parked at the measure home of the tile-relative unit
    /// `(r, c)`.
    pub fn measure_ion_at_unit(&self, r: u32, c: u32) -> Option<QubitId> {
        self.measure_by_unit.get(&(r, c)).copied()
    }

    /// The syndrome ion assigned to a stabilizer cell.
    pub fn measure_ion_for_cell(&self, cell: (i32, i32)) -> Result<QubitId, CoreError> {
        let rel = ((row_offset(self.dz) as i32 + cell.0) as u32, (cell.1 + 1) as u32);
        self.measure_by_unit
            .get(&rel)
            .copied()
            .ok_or_else(|| CoreError::MissingIon(format!("measure ion for cell {cell:?}")))
    }

    /// Cells of all stabilizers of the given kind.
    pub fn cells_of_kind(&self, kind: StabKind) -> Vec<(i32, i32)> {
        self.stabilizers.iter().filter(|p| p.kind == kind).map(|p| p.cell).collect()
    }

    /// The ion-level binding used by the syndrome compiler.
    pub fn binding(&self) -> PatchBinding {
        let mut data_ions = HashMap::new();
        for i in 0..self.dz {
            for j in 0..self.dx {
                let unit = (row_offset(self.dz) + i as u32, j as u32);
                data_ions.insert((i, j), self.data_by_unit[&unit]);
            }
        }
        let mut measure_ions = HashMap::new();
        for p in &self.stabilizers {
            measure_ions.insert(p.cell, self.measure_by_unit[&p.anchor]);
        }
        PatchBinding {
            origin: self.origin,
            dx: self.dx,
            dz: self.dz,
            arrangement: self.arrangement,
            data_ions,
            measure_ions,
            stabilizers: self.stabilizers.clone(),
        }
    }

    // ----- Table 2 primitives -------------------------------------------------

    /// Transversal preparation of every data qubit in |0⟩ (the `Prepare Z`
    /// primitive, 0 logical time-steps). Resets the logical trackers.
    pub fn transversal_prepare_z(&mut self, hw: &mut HardwareModel) -> Result<(), CoreError> {
        for i in 0..self.dz {
            for j in 0..self.dx {
                hw.prepare_z(self.data_ion(i, j)?)?;
            }
        }
        self.reset_trackers();
        self.initialized = true;
        Ok(())
    }

    /// Transversal preparation of every data qubit in |+⟩ (used by the
    /// `Prepare X` instruction).
    pub fn transversal_prepare_x(&mut self, hw: &mut HardwareModel) -> Result<(), CoreError> {
        for i in 0..self.dz {
            for j in 0..self.dx {
                hw.prepare_x(self.data_ion(i, j)?)?;
            }
        }
        self.reset_trackers();
        self.initialized = true;
        Ok(())
    }

    /// Transversal Z-basis measurement of every data qubit (the destructive
    /// `Measure Z` primitive). Returns the logical Z outcome specification
    /// and the per-data-qubit measurement indices; the tile becomes
    /// uninitialized.
    pub fn transversal_measure_z(
        &mut self,
        hw: &mut HardwareModel,
    ) -> Result<(LogicalOutcomeSpec, DataMeasurementIndices), CoreError> {
        self.require_initialized("Measure Z")?;
        let mut indices = HashMap::new();
        for i in 0..self.dz {
            for j in 0..self.dx {
                let label = Label::DataReadout { x_basis: false, row: i as u32, col: j as u32 };
                let idx = hw.measure_z(self.data_ion(i, j)?, label)?;
                indices.insert((i, j), idx);
            }
        }
        let spec = self.logical_outcome_from_data("Z_L", &self.logical_z.clone(), &indices)?;
        self.initialized = false;
        Ok((spec, indices))
    }

    /// Transversal X-basis measurement of every data qubit (the destructive
    /// `Measure X` instruction).
    pub fn transversal_measure_x(
        &mut self,
        hw: &mut HardwareModel,
    ) -> Result<(LogicalOutcomeSpec, DataMeasurementIndices), CoreError> {
        self.require_initialized("Measure X")?;
        let mut indices = HashMap::new();
        for i in 0..self.dz {
            for j in 0..self.dx {
                let label = Label::DataReadout { x_basis: true, row: i as u32, col: j as u32 };
                let idx = hw.measure_x(self.data_ion(i, j)?, label)?;
                indices.insert((i, j), idx);
            }
        }
        let spec = self.logical_outcome_from_data("X_L", &self.logical_x.clone(), &indices)?;
        self.initialized = false;
        Ok((spec, indices))
    }

    fn logical_outcome_from_data(
        &self,
        name: &str,
        tracker: &OperatorTracker,
        indices: &HashMap<(usize, usize), usize>,
    ) -> Result<LogicalOutcomeSpec, CoreError> {
        let mut parity_of = Vec::new();
        for &(coord, _) in &tracker.support {
            let idx = indices.get(&coord).ok_or_else(|| {
                CoreError::MissingIon(format!("no measurement for data {coord:?}"))
            })?;
            parity_of.push(*idx);
        }
        parity_of.extend_from_slice(&tracker.frame);
        Ok(LogicalOutcomeSpec::new(name, parity_of, tracker.invert))
    }

    /// Transversal Hadamard over every data qubit (the `Hadamard` primitive):
    /// swaps the roles of X and Z stabilizers and leaves the patch in the
    /// arrangement rotated w.r.t. the current one.
    pub fn transversal_hadamard(&mut self, hw: &mut HardwareModel) -> Result<(), CoreError> {
        self.require_initialized("Hadamard")?;
        for i in 0..self.dz {
            for j in 0..self.dx {
                hw.hadamard(self.data_ion(i, j)?)?;
            }
        }
        // The new logical X observable is carried by the (relabelled) old Z
        // support and vice versa; frames travel with them.
        let old_x = std::mem::take(&mut self.logical_x);
        let old_z = std::mem::take(&mut self.logical_z);
        self.logical_x = OperatorTracker {
            support: old_z.support.iter().map(|&(c, _)| (c, PauliOp::X)).collect(),
            frame: old_z.frame,
            invert: old_z.invert,
        };
        self.logical_z = OperatorTracker {
            support: old_x.support.iter().map(|&(c, _)| (c, PauliOp::Z)).collect(),
            frame: old_x.frame,
            invert: old_x.invert,
        };
        self.arrangement = self.arrangement.after_transversal_hadamard();
        // Every stabilizer keeps its cell and value but changes type, so the
        // latest-round record remains valid.
        self.stabilizers = build_stabilizers(self.dx, self.dz, self.arrangement);
        Ok(())
    }

    /// Applies a logical Pauli operator transversally along the tracked
    /// representative (the `Pauli X/Y/Z` primitive, 0 time-steps).
    pub fn apply_logical_pauli(
        &mut self,
        hw: &mut HardwareModel,
        axis: PauliOp,
    ) -> Result<(), CoreError> {
        self.require_initialized("Pauli")?;
        let support: Vec<((usize, usize), PauliOp)> = match axis {
            PauliOp::X => self.logical_x.support.clone(),
            PauliOp::Z => self.logical_z.support.clone(),
            PauliOp::Y => self.logical_y_support(),
            PauliOp::I => Vec::new(),
        };
        for ((i, j), op) in support {
            let ion = self.data_ion(i, j)?;
            match op {
                PauliOp::X => hw.pauli_x(ion)?,
                PauliOp::Y => hw.pauli_y(ion)?,
                PauliOp::Z => hw.pauli_z(ion)?,
                PauliOp::I => {}
            }
        }
        Ok(())
    }

    /// The physical support of the logical Y operator (`i·X_L·Z_L`): the
    /// per-qubit product of the X and Z representatives.
    pub fn logical_y_support(&self) -> Vec<((usize, usize), PauliOp)> {
        let mut per_qubit: HashMap<(usize, usize), PauliOp> = HashMap::new();
        for &(c, op) in self.logical_x.support.iter().chain(self.logical_z.support.iter()) {
            let entry = per_qubit.entry(c).or_insert(PauliOp::I);
            *entry = combine(*entry, op);
        }
        let mut v: Vec<_> = per_qubit.into_iter().filter(|&(_, op)| op != PauliOp::I).collect();
        v.sort_by_key(|&(c, _)| c);
        v
    }

    /// Non-fault-tolerant state injection of a |+i⟩ (Y) eigenstate
    /// (the `Inject Y` primitive).
    pub fn inject_y(&mut self, hw: &mut HardwareModel) -> Result<(), CoreError> {
        self.inject(hw, false)
    }

    /// Non-fault-tolerant state injection of a |T⟩ magic state
    /// (the `Inject T` primitive). The injection circuit contains the single
    /// non-Clifford native gate `Z_{π/8}`.
    pub fn inject_t(&mut self, hw: &mut HardwareModel) -> Result<(), CoreError> {
        self.inject(hw, true)
    }

    /// Shared injection scheme: the corner qubit at the intersection of the
    /// default logical X and Z representatives is prepared in the target
    /// state; the rest of the X representative is prepared in |+⟩, the rest
    /// of the Z representative in |0⟩ and the bulk in |0⟩. All three logical
    /// Pauli expectation values then equal those of the injected state, and
    /// they are preserved by the subsequent stabilizer measurements.
    fn inject(&mut self, hw: &mut HardwareModel, t_state: bool) -> Result<(), CoreError> {
        self.reset_trackers();
        let x_coords: Vec<(usize, usize)> =
            self.logical_x.support.iter().map(|&(c, _)| c).collect();
        let z_coords: Vec<(usize, usize)> =
            self.logical_z.support.iter().map(|&(c, _)| c).collect();
        let corner = *x_coords
            .iter()
            .find(|c| z_coords.contains(c))
            .expect("default logical representatives intersect at a corner");
        for i in 0..self.dz {
            for j in 0..self.dx {
                let ion = self.data_ion(i, j)?;
                if (i, j) == corner {
                    hw.prepare_z(ion)?;
                    hw.hadamard(ion)?;
                    if t_state {
                        hw.t_gate(ion)?;
                    } else {
                        hw.s_gate(ion)?;
                    }
                } else if x_coords.contains(&(i, j)) {
                    hw.prepare_x(ion)?;
                } else {
                    hw.prepare_z(ion)?;
                }
            }
        }
        self.initialized = true;
        Ok(())
    }

    /// One round of syndrome extraction over the patch's stabilizers
    /// (refreshes the latest-round record).
    pub fn syndrome_round(
        &mut self,
        hw: &mut HardwareModel,
        label: impl Into<RoundLabel>,
    ) -> Result<RoundRecord, CoreError> {
        self.require_initialized("syndrome extraction")?;
        let binding = self.binding();
        let record = syndrome_round(hw, &binding, label.into())?;
        self.latest_round = record.measurements.clone();
        Ok(record)
    }

    /// `rounds` consecutive rounds of error correction labelled
    /// `ctx(0), ctx(1), …`.
    ///
    /// With round templating enabled on `hw` (see
    /// [`HardwareModel::set_round_templating`]) and `rounds ≥ 3`, rounds 0
    /// and 1 are compiled normally and the remainder is replicated
    /// analytically from round 1 — round 1 is the provably
    /// barrier-quiescent representative (round 0 may overlap whatever
    /// preceded the sequence). Replication reproduces the materialized
    /// schedule bit-for-bit; if the hardware model cannot prove the round
    /// replicable it falls back to materializing every round.
    pub fn syndrome_rounds(
        &mut self,
        hw: &mut HardwareModel,
        rounds: usize,
        ctx: impl Fn(u32) -> RoundLabel,
    ) -> Result<Vec<RoundRecord>, CoreError> {
        let mut out = Vec::with_capacity(rounds);
        if rounds == 0 {
            return Ok(out);
        }
        out.push(self.syndrome_round(hw, ctx(0))?);
        let mut next = 1;
        if hw.round_templating() && rounds >= 3 {
            hw.begin_round_capture();
            match self.syndrome_round(hw, ctx(1)) {
                Ok(record) => out.push(record),
                Err(e) => {
                    hw.cancel_round_capture();
                    return Err(e);
                }
            }
            next = 2;
            if let Some(info) = hw.replicate_captured_round(rounds - 2) {
                let template = out[1].clone();
                for r in 2..rounds {
                    let shift = (r - 1) * info.meas_per_round;
                    out.push(RoundRecord {
                        measurements: template
                            .measurements
                            .iter()
                            .map(|(&cell, &idx)| (cell, idx + shift))
                            .collect(),
                    });
                }
                self.latest_round = out.last().expect("rounds >= 3").measurements.clone();
                return Ok(out);
            }
        }
        for r in next..rounds {
            out.push(self.syndrome_round(hw, ctx(r as u32))?);
        }
        Ok(out)
    }

    /// The `Idle` primitive: `dt` rounds of error correction
    /// (1 logical time-step).
    pub fn idle(&mut self, hw: &mut HardwareModel) -> Result<Vec<RoundRecord>, CoreError> {
        self.idle_rounds(hw, self.dt)
    }

    /// `rounds` rounds of error correction (round-templated when the
    /// hardware model enables it; see [`LogicalQubit::syndrome_rounds`]).
    pub fn idle_rounds(
        &mut self,
        hw: &mut HardwareModel,
        rounds: usize,
    ) -> Result<Vec<RoundRecord>, CoreError> {
        self.syndrome_rounds(hw, rounds, RoundLabel::Idle)
    }

    // ----- tracked operators --------------------------------------------------

    /// The tracked logical X operator resolved to ions.
    pub fn tracked_x(&self) -> Result<TrackedOperator, CoreError> {
        self.resolve_tracker(&self.logical_x)
    }

    /// The tracked logical Z operator resolved to ions.
    pub fn tracked_z(&self) -> Result<TrackedOperator, CoreError> {
        self.resolve_tracker(&self.logical_z)
    }

    /// The tracked logical Y operator resolved to ions.
    pub fn tracked_y(&self) -> Result<TrackedOperator, CoreError> {
        let support = self.logical_y_support();
        let mut resolved = Vec::with_capacity(support.len());
        for ((i, j), op) in support {
            resolved.push((self.data_ion(i, j)?, op));
        }
        let mut frame = self.logical_x.frame.clone();
        frame.extend_from_slice(&self.logical_z.frame);
        Ok(TrackedOperator {
            support: resolved,
            frame,
            invert: self.logical_x.invert ^ self.logical_z.invert,
        })
    }

    fn resolve_tracker(&self, tracker: &OperatorTracker) -> Result<TrackedOperator, CoreError> {
        let mut support = Vec::with_capacity(tracker.support.len());
        for &((i, j), op) in &tracker.support {
            support.push((self.data_ion(i, j)?, op));
        }
        Ok(TrackedOperator { support, frame: tracker.frame.clone(), invert: tracker.invert })
    }

    // ----- internal helpers ---------------------------------------------------

    pub(crate) fn reset_trackers(&mut self) {
        self.logical_x =
            OperatorTracker::new(logical_x_support(self.dx, self.dz, self.arrangement));
        self.logical_z =
            OperatorTracker::new(logical_z_support(self.dx, self.dz, self.arrangement));
        self.latest_round.clear();
    }

    pub(crate) fn require_initialized(&self, what: &str) -> Result<(), CoreError> {
        if self.initialized {
            Ok(())
        } else {
            Err(CoreError::InvalidState(format!("{what} requires an initialized tile")))
        }
    }

    /// Marks the tile uninitialized (used by surgery when a patch is consumed).
    pub(crate) fn mark_uninitialized(&mut self) {
        self.initialized = false;
    }

    /// True if `other`'s tile sits directly below this patch's tile.
    pub fn is_directly_above(&self, other: &LogicalQubit) -> bool {
        other.origin.0 == self.origin.0 + self.tile_rows() && other.origin.1 == self.origin.1
    }

    /// True if `other`'s tile sits directly to the right of this patch's tile.
    pub fn is_directly_left_of(&self, other: &LogicalQubit) -> bool {
        other.origin.1 == self.origin.1 + self.tile_cols() && other.origin.0 == self.origin.0
    }
}

fn combine(a: PauliOp, b: PauliOp) -> PauliOp {
    use PauliOp::*;
    match (a, b) {
        (I, x) | (x, I) => x,
        (X, X) | (Y, Y) | (Z, Z) => I,
        (X, Z) | (Z, X) => Y,
        (X, Y) | (Y, X) => Z,
        (Y, Z) | (Z, Y) => X,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw_for(dx: usize, dz: usize) -> HardwareModel {
        HardwareModel::new(tile_rows(dz) * 2 + 2, tile_cols(dx) * 2 + 2)
    }

    #[test]
    fn construction_places_two_ions_per_unit() {
        let mut hw = hw_for(3, 3);
        let patch = LogicalQubit::new(&mut hw, 3, 3, 3, (0, 0)).unwrap();
        assert_eq!(patch.tile_rows(), 4);
        assert_eq!(patch.tile_cols(), 4);
        assert_eq!(hw.grid().qubit_count(), 2 * 16);
        assert!(!patch.is_initialized());
        assert_eq!(patch.stabilizers().len(), 8);
    }

    #[test]
    fn adjacent_patches_share_no_ions_but_reuse_is_possible() {
        let mut hw = hw_for(3, 3);
        let a = LogicalQubit::new(&mut hw, 3, 3, 3, (0, 0)).unwrap();
        let b = LogicalQubit::new(&mut hw, 3, 3, 3, (4, 0)).unwrap();
        assert!(a.is_directly_above(&b));
        assert!(!a.is_directly_left_of(&b));
        assert_eq!(hw.grid().qubit_count(), 2 * 16 * 2);
        // Rebinding over the same tile reuses the ions instead of placing new ones.
        let a2 = LogicalQubit::new(&mut hw, 3, 3, 3, (0, 0)).unwrap();
        assert_eq!(hw.grid().qubit_count(), 2 * 16 * 2);
        assert_eq!(a2.data_ion(1, 1).unwrap(), a.data_ion(1, 1).unwrap());
    }

    #[test]
    fn primitives_require_initialization() {
        let mut hw = hw_for(3, 3);
        let mut patch = LogicalQubit::new(&mut hw, 3, 3, 2, (0, 0)).unwrap();
        assert!(matches!(patch.syndrome_round(&mut hw, "r"), Err(CoreError::InvalidState(_))));
        assert!(matches!(patch.transversal_measure_z(&mut hw), Err(CoreError::InvalidState(_))));
        patch.transversal_prepare_z(&mut hw).unwrap();
        assert!(patch.is_initialized());
        patch.syndrome_round(&mut hw, "r").unwrap();
        assert_eq!(patch.latest_round().len(), 8);
    }

    #[test]
    fn hadamard_swaps_trackers_and_arrangement() {
        let mut hw = hw_for(3, 3);
        let mut patch = LogicalQubit::new(&mut hw, 3, 3, 2, (0, 0)).unwrap();
        patch.transversal_prepare_z(&mut hw).unwrap();
        let old_z: Vec<_> = patch.logical_z().support.iter().map(|&(c, _)| c).collect();
        patch.transversal_hadamard(&mut hw).unwrap();
        assert_eq!(patch.arrangement(), Arrangement::Rotated);
        let new_x: Vec<_> = patch.logical_x().support.iter().map(|&(c, _)| c).collect();
        assert_eq!(old_z, new_x, "logical X now lives on the old Z support");
        assert!(patch.logical_x().support.iter().all(|&(_, p)| p == PauliOp::X));
    }

    #[test]
    fn logical_y_support_has_y_at_the_corner() {
        let mut hw = hw_for(3, 3);
        let patch = LogicalQubit::new(&mut hw, 3, 3, 2, (0, 0)).unwrap();
        let y = patch.logical_y_support();
        assert!(y.contains(&((0, 0), PauliOp::Y)));
        assert_eq!(y.len(), 3 + 3 - 1);
    }

    #[test]
    fn transversal_measurement_outcome_covers_the_logical_support() {
        let mut hw = hw_for(3, 3);
        let mut patch = LogicalQubit::new(&mut hw, 3, 3, 2, (0, 0)).unwrap();
        patch.transversal_prepare_z(&mut hw).unwrap();
        let (spec, indices) = patch.transversal_measure_z(&mut hw).unwrap();
        assert_eq!(indices.len(), 9);
        assert_eq!(spec.parity_of.len(), 3, "Z_L support is one column of length dz");
        assert!(!patch.is_initialized());
    }

    #[test]
    fn cells_of_kind_partition_the_stabilizers() {
        let mut hw = hw_for(4, 3);
        let patch = LogicalQubit::new(&mut hw, 4, 3, 2, (0, 0)).unwrap();
        let x = patch.cells_of_kind(StabKind::X).len();
        let z = patch.cells_of_kind(StabKind::Z).len();
        assert_eq!(x + z, 4 * 3 - 1);
    }
}

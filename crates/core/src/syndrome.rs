//! Explicit syndrome-extraction circuits (paper Sec. 3.3, Fig. 6).
//!
//! Each plaquette is serviced by one mobile syndrome ion that starts from its
//! home (the vertical-arm memory zone of the plaquette's anchor unit), visits
//! each of its data qubits in the order given by the Z or N movement pattern,
//! performs a CNOT built from the native `(ZZ)_{π/4}` interaction at an
//! adjacent zone, returns home and is measured. Z-type stabilizers use the
//! Z pattern and X-type stabilizers the N pattern, with the roles swapped in
//! the rotated and flipped arrangements (where the logical operators change
//! direction).

use std::collections::HashMap;

use tiscc_grid::QubitId;
use tiscc_hw::{HardwareModel, Label, RoundLabel};

use crate::arrangement::Arrangement;
use crate::plaquette::{anchor_unit, approach_site, measure_home_site, Plaquette, StabKind};
use crate::CoreError;

/// The record of one round of syndrome extraction: for every measured cell,
/// the measurement index in the compiled circuit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundRecord {
    /// Cell → measurement index.
    pub measurements: HashMap<(i32, i32), usize>,
}

impl RoundRecord {
    /// Measurement index of the given cell, if it was measured this round.
    pub fn index_of(&self, cell: (i32, i32)) -> Option<usize> {
        self.measurements.get(&cell).copied()
    }
}

/// Everything the syndrome compiler needs to know about a (possibly merged)
/// patch: geometry, arrangement and ion bindings.
#[derive(Clone, Debug)]
pub struct PatchBinding {
    /// Tile origin in absolute unit coordinates.
    pub origin: (u32, u32),
    /// X distance (number of data columns).
    pub dx: usize,
    /// Z distance (number of data rows).
    pub dz: usize,
    /// Current stabilizer arrangement.
    pub arrangement: Arrangement,
    /// Data coordinate → ion.
    pub data_ions: HashMap<(usize, usize), QubitId>,
    /// Cell → syndrome ion.
    pub measure_ions: HashMap<(i32, i32), QubitId>,
    /// The stabilizer set.
    pub stabilizers: Vec<Plaquette>,
}

/// The visit order of the corner slots `[NW, NE, SW, SE]` for the two
/// measure-qubit movement patterns of Fig. 6.
pub fn pattern_order(kind: StabKind, arrangement: Arrangement) -> [usize; 4] {
    // Default rule: Z-type stabilizers use the Z pattern (NW, NE, SW, SE),
    // X-type use the N pattern (NW, SW, NE, SE). Swapped when the logical
    // operators have changed direction.
    let z_pattern = [0, 1, 2, 3];
    let n_pattern = [0, 2, 1, 3];
    let use_z = match kind {
        StabKind::Z => !arrangement.patterns_swapped(),
        StabKind::X => arrangement.patterns_swapped(),
    };
    if use_z {
        z_pattern
    } else {
        n_pattern
    }
}

/// Compiles one round of syndrome extraction over every stabilizer of the
/// binding. Returns the per-cell measurement indices. A hardware barrier is
/// inserted after the round so that consecutive rounds are cleanly separated
/// in time. Measurement labels are interned ([`Label::Syndrome`]) from the
/// round context — no string is formatted while compiling.
pub fn syndrome_round(
    hw: &mut HardwareModel,
    binding: &PatchBinding,
    label: RoundLabel,
) -> Result<RoundRecord, CoreError> {
    let mut record = RoundRecord::default();
    for plaq in &binding.stabilizers {
        let measure_ion = *binding.measure_ions.get(&plaq.cell).ok_or_else(|| {
            CoreError::MissingIon(format!("measure ion for cell {:?}", plaq.cell))
        })?;
        let home = measure_home_site(anchor_unit(binding.origin, binding.dz, plaq.cell));

        // Ancilla preparation: |0⟩ for Z-type, |+⟩ for X-type.
        match plaq.kind {
            StabKind::Z => hw.prepare_z(measure_ion)?,
            StabKind::X => hw.prepare_x(measure_ion)?,
        }

        // Visit the data qubits in pattern order.
        for slot in pattern_order(plaq.kind, binding.arrangement) {
            let Some(coord) = plaq.corners[slot] else { continue };
            let data_ion = *binding
                .data_ions
                .get(&coord)
                .ok_or_else(|| CoreError::MissingIon(format!("data ion at {coord:?}")))?;
            // Approach from the east if the data qubit sits on the cell's own
            // column, from the west if it sits on the column to the right.
            let east = coord.1 as i32 == plaq.cell.1;
            let site = approach_site(binding.origin, binding.dz, coord.0, coord.1, east);
            hw.route_and_move(measure_ion, site)?;
            match plaq.kind {
                StabKind::Z => hw.cnot(data_ion, measure_ion)?,
                StabKind::X => hw.cnot(measure_ion, data_ion)?,
            }
        }

        // Return home and read out.
        hw.route_and_move(measure_ion, home)?;
        let label = Label::Syndrome {
            round: label,
            x_type: plaq.kind == StabKind::X,
            row: plaq.cell.0,
            col: plaq.cell.1,
        };
        let idx = match plaq.kind {
            StabKind::Z => hw.measure_z(measure_ion, label)?,
            StabKind::X => hw.measure_x(measure_ion, label)?,
        };
        record.measurements.insert(plaq.cell, idx);
    }
    hw.barrier();
    Ok(record)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_rule_default_and_swapped() {
        assert_eq!(pattern_order(StabKind::Z, Arrangement::Standard), [0, 1, 2, 3]);
        assert_eq!(pattern_order(StabKind::X, Arrangement::Standard), [0, 2, 1, 3]);
        // Rotated / flipped: swapped.
        assert_eq!(pattern_order(StabKind::Z, Arrangement::Rotated), [0, 2, 1, 3]);
        assert_eq!(pattern_order(StabKind::X, Arrangement::Flipped), [0, 1, 2, 3]);
        // Rotated-flipped: back to the default rule.
        assert_eq!(pattern_order(StabKind::Z, Arrangement::RotatedFlipped), [0, 1, 2, 3]);
    }

    #[test]
    fn round_record_lookup() {
        let mut r = RoundRecord::default();
        r.measurements.insert((0, 0), 7);
        assert_eq!(r.index_of((0, 0)), Some(7));
        assert_eq!(r.index_of((1, 0)), None);
    }
}

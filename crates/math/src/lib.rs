//! GF(2) linear algebra and Pauli-string algebra.
//!
//! These are the mathematical substrates shared by the TISCC surface-code
//! compiler (`tiscc-core`, which maintains a parity-check matrix and logical
//! operators for every `LogicalQubit`) and by the quasi-Clifford simulator
//! (`tiscc-orqcs`, which represents stabilizer groups as sets of Pauli
//! strings and needs to test membership of a Pauli in a stabilizer group).
//!
//! The crate is dependency-free and deliberately small: a packed bit vector
//! ([`BitVec`]), a dense GF(2) matrix with row reduction and solving
//! ([`F2Matrix`]), and a phase-tracking Pauli string ([`Pauli`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitvec;
pub mod f2;
pub mod pauli;

pub use bitvec::BitVec;
pub use f2::F2Matrix;
pub use pauli::{Pauli, PauliOp};

//! A packed, fixed-length bit vector over GF(2).
//!
//! Used as the row type of [`crate::F2Matrix`] and as the X/Z component
//! vectors of [`crate::Pauli`]. Words are 64-bit; all operations are `O(n/64)`.

/// A fixed-length vector of bits packed into `u64` words.
///
/// The length is set at construction and never changes; all binary
/// operations require operands of equal length and panic otherwise (length
/// mismatches are always programming errors in this codebase).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// Creates an all-zero bit vector of length `len`.
    pub fn zeros(len: usize) -> Self {
        BitVec { len, words: vec![0u64; len.div_ceil(64)] }
    }

    /// Length in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Flips bit `i`.
    #[inline]
    pub fn flip(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] ^= 1u64 << (i % 64);
    }

    /// XOR-accumulates `other` into `self` (vector addition over GF(2)).
    pub fn xor_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "BitVec length mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a ^= *b;
        }
    }

    /// Bitwise AND popcount with `other`, reduced mod 2 (the GF(2) inner
    /// product). This is the quantity that decides Pauli commutation.
    pub fn dot(&self, other: &BitVec) -> bool {
        assert_eq!(self.len, other.len, "BitVec length mismatch");
        let mut acc = 0u32;
        for (a, b) in self.words.iter().zip(other.words.iter()) {
            acc ^= (a & b).count_ones() & 1;
        }
        acc & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no bit is set.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Index of the lowest set bit, if any.
    pub fn first_one(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                let idx = wi * 64 + w.trailing_zeros() as usize;
                return (idx < self.len).then_some(idx);
            }
        }
        None
    }

    /// Iterator over the indices of set bits, in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.get(i))
    }
}

impl std::fmt::Debug for BitVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut v = BitVec::zeros(130);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1) && !v.get(63) && !v.get(128));
        assert_eq!(v.count_ones(), 3);
        v.set(64, false);
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    fn xor_and_dot() {
        let mut a = BitVec::zeros(70);
        let mut b = BitVec::zeros(70);
        a.set(3, true);
        a.set(65, true);
        b.set(3, true);
        b.set(10, true);
        assert!(a.dot(&b)); // overlap only at bit 3 -> odd
        a.xor_assign(&b);
        assert!(!a.get(3));
        assert!(a.get(10) && a.get(65));
    }

    #[test]
    fn first_one_and_iter() {
        let mut v = BitVec::zeros(100);
        assert_eq!(v.first_one(), None);
        v.set(77, true);
        v.set(12, true);
        assert_eq!(v.first_one(), Some(12));
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![12, 77]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let v = BitVec::zeros(10);
        v.get(10);
    }
}

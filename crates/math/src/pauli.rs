//! Phase-tracking Pauli strings.
//!
//! A [`Pauli`] represents an operator `i^phase · Π_j X_j^{x_j} Z_j^{z_j}`
//! over `n` qubits. Tracking the power of `i` exactly (mod 4) is what lets
//! the stabilizer machinery recover the *sign* of logical operators and
//! stabilizers, which is the whole point of the paper's post-processing
//! workflow (Sec. 4.5).

use crate::BitVec;

/// A single-qubit Pauli label.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PauliOp {
    /// Identity.
    I,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
}

impl PauliOp {
    /// The (x, z) symplectic components of this label.
    pub fn xz(self) -> (bool, bool) {
        match self {
            PauliOp::I => (false, false),
            PauliOp::X => (true, false),
            PauliOp::Y => (true, true),
            PauliOp::Z => (false, true),
        }
    }
}

/// An `n`-qubit Pauli operator `i^phase · Π_j X_j^{x_j} Z_j^{z_j}`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Pauli {
    /// X components, one bit per qubit.
    x: BitVec,
    /// Z components, one bit per qubit.
    z: BitVec,
    /// Power of `i` in front of the `X^x Z^z` normal form, mod 4.
    phase: u8,
}

impl Pauli {
    /// The identity operator on `n` qubits.
    pub fn identity(n: usize) -> Self {
        Pauli { x: BitVec::zeros(n), z: BitVec::zeros(n), phase: 0 }
    }

    /// A single-qubit Pauli `op` acting on `qubit` of an `n`-qubit register.
    ///
    /// `Y` is represented as `i·X·Z`, so its phase exponent is 1.
    pub fn single(n: usize, qubit: usize, op: PauliOp) -> Self {
        let mut p = Pauli::identity(n);
        let (xb, zb) = op.xz();
        p.x.set(qubit, xb);
        p.z.set(qubit, zb);
        if op == PauliOp::Y {
            p.phase = 1;
        }
        p
    }

    /// Builds a Hermitian Pauli string from sparse `(qubit, op)` pairs; all
    /// unlisted qubits carry identity. Duplicate qubit entries are multiplied
    /// together in order.
    pub fn from_sparse(n: usize, ops: &[(usize, PauliOp)]) -> Self {
        let mut p = Pauli::identity(n);
        for &(q, op) in ops {
            p.mul_assign(&Pauli::single(n, q, op));
        }
        p
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.x.len()
    }

    /// X-component bit vector.
    pub fn x_bits(&self) -> &BitVec {
        &self.x
    }

    /// Z-component bit vector.
    pub fn z_bits(&self) -> &BitVec {
        &self.z
    }

    /// The symplectic vector `[x | z]` of length `2n`, used as a row of the
    /// parity-check matrix.
    pub fn symplectic(&self) -> BitVec {
        let n = self.num_qubits();
        let mut v = BitVec::zeros(2 * n);
        for i in 0..n {
            if self.x.get(i) {
                v.set(i, true);
            }
            if self.z.get(i) {
                v.set(n + i, true);
            }
        }
        v
    }

    /// Phase exponent (power of `i`, mod 4) of the `X^x Z^z` normal form.
    pub fn phase_exponent(&self) -> u8 {
        self.phase
    }

    /// Multiplies by a global factor of `i^k`.
    pub fn mul_phase(&mut self, k: u8) {
        self.phase = (self.phase + k) % 4;
    }

    /// Multiplies by -1.
    pub fn negate(&mut self) {
        self.mul_phase(2);
    }

    /// Overwrites the X/Z bits at `qubit` without touching the phase.
    ///
    /// Callers that replace a qubit's local operator (e.g. the stabilizer
    /// tableau applying a Clifford conjugation) are responsible for folding
    /// the corresponding phase change in via [`Pauli::mul_phase`].
    pub fn set_bits_at(&mut self, qubit: usize, x: bool, z: bool) {
        self.x.set(qubit, x);
        self.z.set(qubit, z);
    }

    /// The single-qubit label at `qubit` (ignoring the global phase).
    pub fn op_at(&self, qubit: usize) -> PauliOp {
        match (self.x.get(qubit), self.z.get(qubit)) {
            (false, false) => PauliOp::I,
            (true, false) => PauliOp::X,
            (true, true) => PauliOp::Y,
            (false, true) => PauliOp::Z,
        }
    }

    /// Number of qubits on which the operator acts non-trivially.
    pub fn weight(&self) -> usize {
        (0..self.num_qubits()).filter(|&i| self.x.get(i) || self.z.get(i)).count()
    }

    /// True if the operator is a (possibly signed) identity.
    pub fn is_identity_up_to_phase(&self) -> bool {
        self.x.is_zero() && self.z.is_zero()
    }

    /// In-place multiplication `self <- self * other` with exact phase
    /// tracking: moving the `Z` part of `self` past the `X` part of `other`
    /// contributes `(-1)^(z_self · x_other)`.
    pub fn mul_assign(&mut self, other: &Pauli) {
        assert_eq!(self.num_qubits(), other.num_qubits(), "qubit count mismatch");
        let swaps = self.z.dot(&other.x); // parity of anti-commuting swaps
        self.phase = (self.phase + other.phase + if swaps { 2 } else { 0 }) % 4;
        self.x.xor_assign(&other.x);
        self.z.xor_assign(&other.z);
    }

    /// Returns `self * other`.
    pub fn mul(&self, other: &Pauli) -> Pauli {
        let mut out = self.clone();
        out.mul_assign(other);
        out
    }

    /// True if the two operators commute (phases are irrelevant).
    pub fn commutes_with(&self, other: &Pauli) -> bool {
        !(self.x.dot(&other.z) ^ self.z.dot(&other.x))
    }

    /// The ±1 sign of a Hermitian Pauli, i.e. of an operator of the form
    /// `±(tensor product of I/X/Y/Z)`. Returns `None` if the operator is not
    /// Hermitian (phase inconsistent with its Y-count), which would indicate
    /// a bookkeeping bug elsewhere.
    pub fn hermitian_sign(&self) -> Option<i8> {
        // Each Y contributes X·Z = -i·Y, i.e. the normal form of +Y carries
        // phase exponent 1. A Hermitian string with sign s therefore has
        // phase ≡ (#Y + 2·[s = -1]) mod 4.
        let ys = (0..self.num_qubits()).filter(|&i| self.x.get(i) && self.z.get(i)).count() as u8;
        match (self.phase + 4 - ys % 4) % 4 {
            0 => Some(1),
            2 => Some(-1),
            _ => None,
        }
    }
}

impl std::fmt::Debug for Pauli {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.hermitian_sign() {
            Some(1) => write!(f, "+")?,
            Some(-1) => write!(f, "-")?,
            _ => write!(f, "i^{} ", self.phase)?,
        }
        for q in 0..self.num_qubits() {
            let c = match self.op_at(q) {
                PauliOp::I => '_',
                PauliOp::X => 'X',
                PauliOp::Y => 'Y',
                PauliOp::Z => 'Z',
            };
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_qubit_products() {
        let n = 1;
        let x = Pauli::single(n, 0, PauliOp::X);
        let z = Pauli::single(n, 0, PauliOp::Z);
        let y = Pauli::single(n, 0, PauliOp::Y);

        // X * Z = -i Y  -> phase exponent of X^1 Z^1 normal form is 0, which
        // equals -i * (i X Z) = -i * Y.
        let xz = x.mul(&z);
        assert_eq!(xz.op_at(0), PauliOp::Y);
        assert_eq!(xz.phase_exponent(), 0);

        // Z * X = +i Y (normal form picks up the swap factor).
        let zx = z.mul(&x);
        assert_eq!(zx.op_at(0), PauliOp::Y);
        assert_eq!(zx.phase_exponent(), 2);

        // Y * Y = I with sign +1.
        let yy = y.mul(&y);
        assert!(yy.is_identity_up_to_phase());
        assert_eq!(yy.hermitian_sign(), Some(1));

        // X * Y = iZ (not Hermitian); Y * X = -iZ.
        assert_eq!(x.mul(&y).hermitian_sign(), None);
    }

    #[test]
    fn commutation_rules() {
        let n = 3;
        let x0 = Pauli::single(n, 0, PauliOp::X);
        let z0 = Pauli::single(n, 0, PauliOp::Z);
        let z1 = Pauli::single(n, 1, PauliOp::Z);
        assert!(!x0.commutes_with(&z0));
        assert!(x0.commutes_with(&z1));
        let xx = Pauli::from_sparse(n, &[(0, PauliOp::X), (1, PauliOp::X)]);
        let zz = Pauli::from_sparse(n, &[(0, PauliOp::Z), (1, PauliOp::Z)]);
        assert!(xx.commutes_with(&zz));
    }

    #[test]
    fn hermitian_sign_tracks_negation() {
        let n = 2;
        let mut p = Pauli::from_sparse(n, &[(0, PauliOp::Y), (1, PauliOp::Z)]);
        assert_eq!(p.hermitian_sign(), Some(1));
        p.negate();
        assert_eq!(p.hermitian_sign(), Some(-1));
        assert_eq!(p.weight(), 2);
    }

    #[test]
    fn symplectic_layout() {
        let p = Pauli::from_sparse(3, &[(0, PauliOp::X), (2, PauliOp::Y)]);
        let v = p.symplectic();
        // X part in columns 0..3, Z part in columns 3..6.
        assert!(v.get(0) && v.get(2) && v.get(5));
        assert!(!v.get(1) && !v.get(3) && !v.get(4));
    }

    #[test]
    fn from_sparse_duplicate_entries_multiply() {
        let p = Pauli::from_sparse(1, &[(0, PauliOp::X), (0, PauliOp::X)]);
        assert!(p.is_identity_up_to_phase());
        assert_eq!(p.hermitian_sign(), Some(1));
    }
}

//! Dense GF(2) matrices with row reduction, rank and solving.
//!
//! The surface-code compiler uses an `F2Matrix` as the symplectic
//! parity-check matrix of a patch (one row per stabilizer, columns
//! `[X-part | Z-part]`), and the simulator uses one to decide whether a Pauli
//! operator lies in the row space of a stabilizer group (and with which
//! combination, so the sign can be recovered).

use crate::BitVec;

/// A dense matrix over GF(2), stored as a vector of packed rows.
#[derive(Clone, Debug)]
pub struct F2Matrix {
    cols: usize,
    rows: Vec<BitVec>,
}

impl F2Matrix {
    /// Creates an empty matrix with `cols` columns and no rows.
    pub fn new(cols: usize) -> Self {
        F2Matrix { cols, rows: Vec::new() }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row length differs from the column count.
    pub fn push_row(&mut self, row: BitVec) {
        assert_eq!(row.len(), self.cols, "row length mismatch");
        self.rows.push(row);
    }

    /// Borrow of row `i`.
    pub fn row(&self, i: usize) -> &BitVec {
        &self.rows[i]
    }

    /// Iterator over rows.
    pub fn rows(&self) -> impl Iterator<Item = &BitVec> {
        self.rows.iter()
    }

    /// Entry at (`r`, `c`).
    pub fn get(&self, r: usize, c: usize) -> bool {
        self.rows[r].get(c)
    }

    /// Rank of the matrix (number of pivots after Gaussian elimination).
    pub fn rank(&self) -> usize {
        let mut work: Vec<BitVec> = self.rows.clone();
        let mut rank = 0usize;
        for col in 0..self.cols {
            // Find a pivot row at or below `rank` with a 1 in `col`.
            let Some(pivot) = (rank..work.len()).find(|&r| work[r].get(col)) else {
                continue;
            };
            work.swap(rank, pivot);
            let pivot_row = work[rank].clone();
            for (r, row) in work.iter_mut().enumerate() {
                if r != rank && row.get(col) {
                    row.xor_assign(&pivot_row);
                }
            }
            rank += 1;
            if rank == work.len() {
                break;
            }
        }
        rank
    }

    /// Solves `x^T * M = target` for `x` (i.e. expresses `target` as a GF(2)
    /// combination of the rows of the matrix). Returns the indicator vector
    /// of which rows participate, or `None` if `target` is not in the row
    /// space.
    ///
    /// This is how the simulator recovers the *sign* of a Pauli that lies in
    /// a stabilizer group: first find which generators multiply to it, then
    /// re-multiply those generators with phase tracking.
    pub fn solve_combination(&self, target: &BitVec) -> Option<Vec<usize>> {
        assert_eq!(target.len(), self.cols, "target length mismatch");
        // Augment each working row with an identity tag so that after
        // elimination we still know which original rows were combined.
        let n = self.rows.len();
        let mut work: Vec<(BitVec, BitVec)> = self
            .rows
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let mut tag = BitVec::zeros(n);
                tag.set(i, true);
                (r.clone(), tag)
            })
            .collect();

        let mut acc = target.clone();
        let mut acc_tag = BitVec::zeros(n);
        let mut rank = 0usize;
        for col in 0..self.cols {
            let Some(pivot) = (rank..work.len()).find(|&r| work[r].0.get(col)) else {
                continue;
            };
            work.swap(rank, pivot);
            let (prow, ptag) = (work[rank].0.clone(), work[rank].1.clone());
            for (r, (row, tag)) in work.iter_mut().enumerate() {
                if r != rank && row.get(col) {
                    row.xor_assign(&prow);
                    tag.xor_assign(&ptag);
                }
            }
            if acc.get(col) {
                acc.xor_assign(&prow);
                acc_tag.xor_assign(&ptag);
            }
            rank += 1;
            if rank == work.len() {
                break;
            }
        }
        if acc.is_zero() {
            Some(acc_tag.iter_ones().collect())
        } else {
            None
        }
    }

    /// True if `target` lies in the row space of the matrix.
    pub fn contains_in_rowspace(&self, target: &BitVec) -> bool {
        self.solve_combination(target).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(bits: &[usize], len: usize) -> BitVec {
        let mut r = BitVec::zeros(len);
        for &b in bits {
            r.set(b, true);
        }
        r
    }

    #[test]
    fn rank_of_identity_and_dependent_rows() {
        let mut m = F2Matrix::new(4);
        m.push_row(row(&[0], 4));
        m.push_row(row(&[1], 4));
        m.push_row(row(&[0, 1], 4)); // dependent
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn solve_combination_finds_generators() {
        let mut m = F2Matrix::new(5);
        m.push_row(row(&[0, 1], 5));
        m.push_row(row(&[1, 2], 5));
        m.push_row(row(&[3], 5));
        // target = row0 + row1 = {0,2}
        let combo = m.solve_combination(&row(&[0, 2], 5)).expect("in rowspace");
        assert_eq!(combo, vec![0, 1]);
        // target not in rowspace
        assert!(m.solve_combination(&row(&[4], 5)).is_none());
    }

    #[test]
    fn empty_matrix_rowspace_is_zero_only() {
        let m = F2Matrix::new(3);
        assert!(m.contains_in_rowspace(&BitVec::zeros(3)));
        assert!(!m.contains_in_rowspace(&row(&[1], 3)));
        assert_eq!(m.rank(), 0);
    }
}

//! The `tiscc` executable: compile one surface-code instruction at given code
//! distances and print the resulting resource counts (mirrors the
//! command-line usage described in Appendix B of the paper).
//!
//! ```text
//! tiscc <instruction> [dx] [dz] [dt]
//! ```
//!
//! `<instruction>` is one of: prepare_z, prepare_x, inject_y, inject_t,
//! measure_z, measure_x, pauli_x, pauli_y, pauli_z, hadamard, idle,
//! measure_xx, measure_zz.

use tiscc_core::instruction::Instruction;
use tiscc_estimator::tables::compile_instruction_row;

fn parse_instruction(name: &str) -> Option<Instruction> {
    Some(match name.to_ascii_lowercase().as_str() {
        "prepare_z" => Instruction::PrepareZ,
        "prepare_x" => Instruction::PrepareX,
        "inject_y" => Instruction::InjectY,
        "inject_t" => Instruction::InjectT,
        "measure_z" => Instruction::MeasureZ,
        "measure_x" => Instruction::MeasureX,
        "pauli_x" => Instruction::PauliX,
        "pauli_y" => Instruction::PauliY,
        "pauli_z" => Instruction::PauliZ,
        "hadamard" => Instruction::Hadamard,
        "idle" => Instruction::Idle,
        "measure_xx" => Instruction::MeasureXX,
        "measure_zz" => Instruction::MeasureZZ,
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let Some(instr_name) = positional.first() else {
        eprintln!("usage: tiscc <instruction> [dx] [dz] [dt]");
        eprintln!("instructions: prepare_z prepare_x inject_y inject_t measure_z measure_x");
        eprintln!("              pauli_x pauli_y pauli_z hadamard idle measure_xx measure_zz");
        std::process::exit(2);
    };
    let Some(instruction) = parse_instruction(instr_name) else {
        eprintln!("unknown instruction '{instr_name}'");
        std::process::exit(2);
    };
    let dx: usize = positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    let dz: usize = positional.get(2).and_then(|s| s.parse().ok()).unwrap_or(dx);
    let dt: usize = positional.get(3).and_then(|s| s.parse().ok()).unwrap_or(dz.max(dx));

    match compile_instruction_row(instruction, dx, dz, dt) {
        Ok(row) => {
            println!(
                "{} at dx={dx} dz={dz} dt={dt}: {} logical time-step(s), {} tile(s)",
                instruction.name(),
                row.logical_time_steps,
                row.tiles
            );
            println!("{}", row.resources.render());
        }
        Err(e) => {
            eprintln!("compilation failed: {e}");
            std::process::exit(1);
        }
    }
}

//! The `tiscc` executable.
//!
//! ```text
//! tiscc compile <instruction> [dx] [dz] [dt]   compile one instruction, print resources
//! tiscc tables [--d N] [--dt N]                regenerate Tables 1, 2, 3 and 5
//! tiscc sweep [--dmax N] [--dt N|d] [--out F]  batched resource sweep (CSV + JSON)
//! tiscc profiles                               list hardware profiles and parameters
//! tiscc verify [--seed N]                      run the Sec. 4 verification harness
//! ```
//!
//! `compile`, `tables` and `sweep` accept `--profile <name>` to select a
//! hardware profile (`sweep` accepts a comma-separated list, sweeping the
//! whole grid once per profile).
//!
//! `<instruction>` is one of: prepare_z, prepare_x, inject_y, inject_t,
//! measure_z, measure_x, pauli_x, pauli_y, pauli_z, hadamard, idle,
//! measure_xx, measure_zz.

use std::path::PathBuf;
use std::process::ExitCode;

use tiscc_core::instruction::Instruction;
use tiscc_estimator::compiler::{CompileRequest, Compiler};
use tiscc_estimator::sweep::{parse_csv, run_sweep, CompileCache, DtPolicy, SweepSpec};
use tiscc_estimator::tables;
use tiscc_estimator::verify::{process_map_of, Fiducial, SingleTile};
use tiscc_hw::HardwareSpec;

const USAGE: &str = "usage: tiscc <subcommand> [args]

subcommands:
  compile <instruction> [dx] [dz] [dt]   compile one instruction, print resources
          [--profile NAME]
  tables [--d N] [--dt N]                regenerate Tables 1, 2, 3 and 5
         [--profile NAME]
  sweep [--dmax N] [--dt N|d]            batched resource sweep (CSV + JSON)
        [--profile NAME[,NAME...]]       sweep the grid once per profile
        [--out F.csv] [--json F.json]    write artifacts (default: CSV to stdout)
  profiles                               list hardware profiles and parameters
  verify [--seed N]                      run the verification harness

flags take a value as `--flag VALUE` or `--flag=VALUE`

profiles: h1 (default) projected slow_junction
instructions: prepare_z prepare_x inject_y inject_t measure_z measure_x
              pauli_x pauli_y pauli_z hadamard idle measure_xx measure_zz";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// Minimal flag parser accepting `--flag VALUE` and `--flag=VALUE`: returns
/// positional args and a lookup for flag values.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.iter().peekable();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if let Some((name, value)) = name.split_once('=') {
                    flags.push((name.to_string(), value.to_string()));
                    continue;
                }
                let value = it
                    .peek()
                    .filter(|v| !v.starts_with("--"))
                    .map(|v| v.to_string())
                    .unwrap_or_default();
                if !value.is_empty() {
                    it.next();
                }
                flags.push((name.to_string(), value));
            } else {
                positional.push(arg.clone());
            }
        }
        Args { positional, flags }
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    fn flag_usize(&self, name: &str, default: usize) -> usize {
        match self.flag(name) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("--{name} expects a number, got {v:?}");
                std::process::exit(2);
            }),
        }
    }

    /// Resolves `--profile` to a single hardware profile (default: h1).
    fn profile(&self) -> HardwareSpec {
        match self.flag("profile") {
            None => HardwareSpec::default(),
            Some(name) => resolve_profile(name),
        }
    }

    /// Resolves `--profile` to a comma-separated list of profiles
    /// (default: just h1).
    fn profile_list(&self) -> Vec<HardwareSpec> {
        match self.flag("profile") {
            None => vec![HardwareSpec::default()],
            Some(names) => names.split(',').map(resolve_profile).collect(),
        }
    }
}

/// Looks up a preset profile by name, exiting with the usage status (and
/// the available-profile listing) on unknown names.
fn resolve_profile(name: &str) -> HardwareSpec {
    HardwareSpec::by_name(name).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(subcommand) = raw.first() else { usage() };
    let args = Args::parse(&raw[1..]);
    match subcommand.as_str() {
        "compile" => cmd_compile(&args),
        "tables" => cmd_tables(&args),
        "sweep" => cmd_sweep(&args),
        "profiles" => cmd_profiles(),
        "verify" => cmd_verify(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            // Backwards compatibility with the original single-purpose CLI:
            // `tiscc prepare_z 3` behaves as `tiscc compile prepare_z 3`.
            if Instruction::from_id(other).is_ok() {
                let mut compat = vec![other.to_string()];
                compat.extend(args.positional.iter().cloned());
                return cmd_compile(&Args { positional: compat, flags: args.flags });
            }
            eprintln!("unknown subcommand '{other}'");
            usage()
        }
    }
}

fn cmd_compile(args: &Args) -> ExitCode {
    let Some(instr_name) = args.positional.first() else {
        eprintln!("usage: tiscc compile <instruction> [dx] [dz] [dt] [--profile NAME]");
        return ExitCode::from(2);
    };
    let instruction = match Instruction::from_id(instr_name) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let dx: usize = args.positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    let dz: usize = args.positional.get(2).and_then(|s| s.parse().ok()).unwrap_or(dx);
    let dt: usize = args.positional.get(3).and_then(|s| s.parse().ok()).unwrap_or(dz.max(dx));
    let spec = args.profile();

    let request = CompileRequest::new(instruction, dx, dz, dt).with_spec(spec);
    match Compiler::new().compile(&request) {
        Ok(artifact) => {
            println!(
                "{} at dx={dx} dz={dz} dt={dt} under profile '{}': {} logical time-step(s), {} tile(s)",
                instruction.name(),
                request.spec.name,
                artifact.report.logical_time_steps,
                artifact.report.tiles
            );
            println!("{}", artifact.resources.render());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("compilation failed: {e}");
            ExitCode::FAILURE
        }
    }
}

type TableJob =
    fn(&HardwareSpec, usize, usize) -> Result<Vec<tables::ResourceRow>, tiscc_core::CoreError>;

fn cmd_tables(args: &Args) -> ExitCode {
    let d = args.flag_usize("d", 3).max(2);
    let dt = args.flag_usize("dt", 2);
    let spec = args.profile();
    println!("{}", tables::table5_with(&spec));
    let jobs: [(&str, TableJob); 3] = [
        ("Table 1: local lattice-surgery instruction set", |spec, d, dt| {
            tables::table1_rows_with(spec, &[d], dt)
        }),
        ("Table 2: primitive operations", tables::table2_rows_with),
        ("Table 3: derived instruction set", tables::table3_rows_with),
    ];
    for (title, job) in jobs {
        match job(&spec, d, dt) {
            Ok(rows) => println!("{}", tables::render_rows(title, &rows)),
            Err(e) => {
                eprintln!("error compiling {title}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_profiles() -> ExitCode {
    println!("Available hardware profiles (select with --profile NAME):\n");
    for spec in HardwareSpec::presets() {
        print!("{}", spec.render());
        println!("  fingerprint         : {}", spec.fingerprint());
        println!();
    }
    ExitCode::SUCCESS
}

fn cmd_sweep(args: &Args) -> ExitCode {
    let dmax = args.flag_usize("dmax", 5).max(2);
    let profiles = args.profile_list();
    let mut spec = SweepSpec::paper(dmax).with_profiles(profiles);
    if let Some(dt) = args.flag("dt") {
        if dt != "d" {
            let Ok(dt) = dt.parse::<usize>() else {
                eprintln!("--dt expects a number or 'd', got {dt:?}");
                return ExitCode::from(2);
            };
            spec.dts = vec![DtPolicy::Fixed(dt)];
        }
    }

    let cache = CompileCache::new();
    let profile_names: Vec<&str> = spec.profiles.iter().map(|p| p.name.as_str()).collect();
    eprintln!(
        "sweeping {} configurations ({} instructions x d=2..={} with dt policy {:?} x profiles {:?})",
        spec.len(),
        spec.instructions.len(),
        dmax,
        spec.dts,
        profile_names
    );
    let result = match run_sweep(&spec, &cache) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "cold sweep: {} rows in {:.2}s on {} thread(s) ({} compiled, {} cache hits)",
        result.rows.len(),
        result.elapsed_s,
        result.threads,
        result.cache_misses,
        result.cache_hits
    );

    // A second in-process sweep over the same spec: every row must now come
    // from the compile cache. This both demonstrates and regression-checks
    // the memoization (a real client issuing overlapping sweeps, e.g. the
    // Table 1/2/3 generators, shares primitives exactly this way).
    match run_sweep(&spec, &cache) {
        Ok(warm) => {
            eprintln!(
                "warm sweep: {} rows in {:.3}s ({} cache hits, {} compiled)",
                warm.rows.len(),
                warm.elapsed_s,
                warm.cache_hits,
                warm.cache_misses
            );
            if warm.cache_misses != 0 || warm.rows != result.rows {
                eprintln!("cache inconsistency: warm sweep diverged from cold sweep");
                return ExitCode::FAILURE;
            }
        }
        Err(e) => {
            eprintln!("warm sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    }

    // Artifact targets: --out writes the CSV (and, unless --json overrides
    // it, a JSON sibling next to it); --json alone writes only the JSON.
    let csv_path = args.flag("out").map(PathBuf::from);
    let json_path = match (args.flag("json"), &csv_path) {
        (Some(j), _) => Some(PathBuf::from(j)),
        (None, Some(csv)) => Some(csv.with_extension("json")),
        (None, None) => None,
    };
    if let Some(csv_path) = &csv_path {
        if let Err(e) = result.write_csv(csv_path) {
            eprintln!("cannot write {}: {e}", csv_path.display());
            return ExitCode::FAILURE;
        }
        // Self-check: the artifact we just wrote must parse back.
        match std::fs::read_to_string(csv_path).map_err(|e| e.to_string()) {
            Ok(text) => {
                if let Err(e) = parse_csv(&text) {
                    eprintln!("written CSV failed to re-parse: {e}");
                    return ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("cannot re-read {}: {e}", csv_path.display());
                return ExitCode::FAILURE;
            }
        }
        eprintln!("wrote {}", csv_path.display());
    }
    if let Some(json_path) = &json_path {
        if let Err(e) = result.write_json(json_path) {
            eprintln!("cannot write {}: {e}", json_path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", json_path.display());
    }
    if csv_path.is_none() && json_path.is_none() {
        print!("{}", result.to_csv());
    }
    ExitCode::SUCCESS
}

fn cmd_verify(args: &Args) -> ExitCode {
    let seed = args.flag_usize("seed", 17) as u64;
    let mut failures = 0usize;
    println!("Sec. 4 verification (fiducial state preparation + Idle process map):");
    for fiducial in Fiducial::all() {
        let mut fixture = match SingleTile::new(2, 2, 1) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("fixture construction failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = fiducial.prepare(&mut fixture.hw, &mut fixture.patch) {
            eprintln!("prepare {fiducial:?} failed to compile: {e}");
            failures += 1;
            continue;
        }
        let run = fixture.simulate(seed);
        let bloch = fixture.logical_bloch(&run);
        let ok = bloch.distance(&fiducial.bloch()) < 1e-9;
        if !ok {
            failures += 1;
        }
        println!(
            "  prepare {:?}: bloch = ({:+.1}, {:+.1}, {:+.1})  {}",
            fiducial,
            bloch.x,
            bloch.y,
            bloch.z,
            if ok { "ok" } else { "MISMATCH" }
        );
    }
    match process_map_of(3, 3, 1, seed.wrapping_add(6), |hw, patch| patch.idle(hw).map(|_| ())) {
        Ok(map) => {
            let deviation = map.max_deviation(&tiscc_orqcs::ProcessMap::identity());
            let ok = deviation < 1e-9;
            if !ok {
                failures += 1;
            }
            println!(
                "  Idle process map deviation from identity: {:.3e}  {}",
                deviation,
                if ok { "ok" } else { "MISMATCH" }
            );
        }
        Err(e) => {
            eprintln!("idle process tomography failed: {e}");
            failures += 1;
        }
    }
    if failures == 0 {
        println!("verification passed");
        ExitCode::SUCCESS
    } else {
        println!("verification FAILED ({failures} check(s))");
        ExitCode::FAILURE
    }
}

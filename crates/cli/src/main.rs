//! The `tiscc` executable.
//!
//! ```text
//! tiscc compile <instruction> [dx] [dz] [dt]   compile one instruction, print resources
//! tiscc estimate <program.tql>                 estimate a whole logical program
//! tiscc gen <family> [--n N] [--seed S]        generate a parametric workload
//!                                              program as .tql text
//! tiscc frontier <program.tql>                 Pareto-frontier search over the
//!                                              layout x distance x profile space
//! tiscc serve --stdin-json                     answer JSON estimate/frontier
//!                                              requests on stdin
//! tiscc tables [--d N] [--dt N]                regenerate Tables 1, 2, 3 and 5
//! tiscc sweep [--dmax N] [--dt N|d] [--out F]  batched resource sweep (CSV + JSON)
//! tiscc profiles                               list hardware profiles and parameters
//! tiscc verify [--seed N]                      run the Sec. 4 verification harness
//! tiscc bench-report <results.txt>...          convert/gate criterion bench output
//! ```
//!
//! `compile`, `tables`, `sweep` and `estimate` accept `--profile <name>` to
//! select a hardware profile (`sweep` and `estimate` accept a
//! comma-separated list).
//!
//! Every subcommand reports bad arguments (unknown instruction, unreadable
//! program file, unknown profile, malformed flag values) as a one-line
//! message on stderr and exit code 2; runtime failures exit with code 1.

use std::path::PathBuf;
use std::process::ExitCode;

use tiscc_core::instruction::Instruction;
use tiscc_estimator::compiler::{CompileRequest, Compiler, EstimateMode};
use tiscc_estimator::program::{estimate_program_with, EstimateError, ProgramEstimateSpec};
use tiscc_estimator::sweep::{parse_csv, run_sweep_with, CompileCache, DtPolicy, SweepSpec};
use tiscc_estimator::tables;
use tiscc_estimator::verify::{process_map_of, Fiducial, SingleTile};
use tiscc_frontier::{
    frontier_to_csv, handle_line, matrix_from_csv, matrix_to_csv, parse_layout_entry,
    report_to_json, run_frontier_with, split_list, stats_to_json, DiskCache, FrontierError,
    FrontierSpec, ServeState,
};
use tiscc_hw::HardwareSpec;
use tiscc_program::{BudgetError, ErrorModel, LayoutSpec, LogicalProgram, Placement};
use tiscc_telemetry::{trace_from_json, JsonSink, Sink, Span, Telemetry, TraceFormat};
use tiscc_workloads::{generate, Family, GenSpec, WorkloadError};

const USAGE: &str = "usage: tiscc <subcommand> [args]

subcommands:
  compile <instruction> [dx] [dz] [dt]   compile one instruction, print resources
          [--profile NAME]
          [--simd-width N]               SIMD gate-batching width (default 1)
          [--trace[=tree|json]]          per-phase span trace on stderr
  estimate <program.tql>                 estimate a whole logical program
          [--budget X]                   total logical error budget (default 1e-9)
          [--profile NAME[,NAME...]]     one report row per profile
          [--dmax N]                     distance-search ceiling (default 49)
          [--p-phys X] [--p-th X]        per-step error model parameters
          [--prefactor X]
          [--layout lane|row|checkerboard]  floorplan strategy (default lane)
          [--grid HxW]                   tile-grid size, e.g. --grid 8x8
          [--show-layout]                print the ASCII floorplan
          [--simd-width N]               SIMD gate-batching width (default 1)
          [--mode compiled|analytic]     estimation strategy (default compiled)
          [--trace[=tree|json]]          per-phase span trace on stderr
  gen <family>                           generate a parametric workload program
          [--n N]                        size: bit width / qubit count / lattice
                                         width / chain depth (family default)
          [--seed S]                     RNG seed (random-clifford-t, default 1)
          [--t-frac X]                   T-gadget mix fraction (random-clifford-t)
          [--qubits Q]                   data-qubit override (random-clifford-t)
          [--steps K] [--j X] [--h X]    Trotter layers and couplings (ising-trotter)
          [--out F.tql]                  write to a file (default: stdout)
  frontier <program.tql>                 Pareto-frontier search: evaluate every
                                         layout x odd distance x profile cell,
                                         print the non-dominated set as CSV
          [--layouts L[@RxC][,...]]      floorplans to cross (default lane)
          [--grids RxC[,...]]            grids applied to auto-sized layouts
          [--dmin N] [--dmax N]          code-distance range (default 3..13)
          [--profile NAME[,NAME...]]     hardware profiles (default h1)
          [--mode compiled|analytic]     estimation strategy (default compiled)
          [--p-phys X] [--p-th X]        per-step error model parameters
          [--prefactor X]
          [--cache-dir DIR]              persistent compile cache (reused and
                                         extended across runs)
          [--out F.csv] [--json F.json]  write the full matrix as artifacts
          [--stats-json F.json]          write run stats (+ trace) as JSON
          [--trace[=tree|json]]          per-phase span trace on stderr
          [--quiet]                      suppress stderr stats
  serve --stdin-json                     answer newline-delimited JSON requests
                                         ({\"cmd\":\"ping\"|\"estimate\"|\"frontier\"
                                         |\"metrics\"}) on stdin until EOF
          [--cache-dir DIR]              persistent compile cache
  tables [--d N] [--dt N]                regenerate Tables 1, 2, 3 and 5
         [--profile NAME]
  sweep [--dmax N] [--dt N|d]            batched resource sweep (CSV + JSON)
        [--profile NAME[,NAME...]]       sweep the grid once per profile
        [--mode compiled|analytic]       estimation strategy (default compiled)
        [--out F.csv] [--json F.json]    write artifacts (default: CSV to stdout)
        [--trace[=tree|json]]            per-phase span trace on stderr
        [--quiet]                        suppress stderr stats
  profiles                               list hardware profiles and parameters
  verify [--seed N]                      run the verification harness
  bench-report <results.txt>...          parse `cargo bench` output into JSON
         [--out F.json]                  write the parsed measurements
         [--baseline F.json]             gate against a committed baseline
         [--tolerance X]                 allowed slowdown fraction (default 0.3)
         [--trace=F.json]               ingest a --trace=json file: each phase
                                        becomes a `trace/<path>` measurement
         [--filter SUBSTR]              gate only ids containing SUBSTR

flags take a value as `--flag VALUE` or `--flag=VALUE`

profiles: h1 (default) projected slow_junction
instructions: prepare_z prepare_x inject_y inject_t measure_z measure_x
              pauli_x pauli_y pauli_z hadamard idle measure_xx measure_zz
workload families: ripple-carry-adder carry-lookahead-adder qft ising-trotter
                   ghz-chain teleport-chain random-clifford-t";

/// A CLI failure: an exit code plus a one-line message. Bad arguments use
/// code 2 (Unix convention for usage errors); runtime failures use code 1.
struct CliError {
    code: u8,
    message: String,
}

impl CliError {
    /// A bad-argument error (exit code 2).
    fn usage(message: impl Into<String>) -> CliError {
        CliError { code: 2, message: message.into() }
    }

    /// A runtime failure (exit code 1).
    fn runtime(message: impl Into<String>) -> CliError {
        CliError { code: 1, message: message.into() }
    }
}

/// Minimal flag parser accepting `--flag VALUE` and `--flag=VALUE`: returns
/// positional args and a lookup for flag values.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

/// Flags that never take a value (so they never swallow a following
/// positional argument).
const BOOLEAN_FLAGS: &[&str] = &["show-layout", "stdin-json", "trace", "quiet"];

impl Args {
    fn parse(raw: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.iter().peekable();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if let Some((name, value)) = name.split_once('=') {
                    flags.push((name.to_string(), value.to_string()));
                    continue;
                }
                if BOOLEAN_FLAGS.contains(&name) {
                    flags.push((name.to_string(), String::new()));
                    continue;
                }
                let value = it
                    .peek()
                    .filter(|v| !v.starts_with("--"))
                    .map(|v| v.to_string())
                    .unwrap_or_default();
                if !value.is_empty() {
                    it.next();
                }
                flags.push((name.to_string(), value));
            } else {
                positional.push(arg.clone());
            }
        }
        Args { positional, flags }
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    fn flag_usize(&self, name: &str, default: usize) -> Result<usize, CliError> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::usage(format!("--{name} expects a number, got {v:?}"))),
        }
    }

    fn flag_f64(&self, name: &str, default: f64) -> Result<f64, CliError> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::usage(format!("--{name} expects a number, got {v:?}"))),
        }
    }

    /// Resolves `--profile` to a single hardware profile (default: h1).
    fn profile(&self) -> Result<HardwareSpec, CliError> {
        match self.flag("profile") {
            None => Ok(HardwareSpec::default()),
            Some(name) => resolve_profile(name),
        }
    }

    /// Resolves `--profile` to a comma-separated list of profiles
    /// (default: just h1). Entries are trimmed and deduplicated — a
    /// repeated name never doubles the work or the report — and an
    /// effectively empty list (`--profile ","`) is a usage error.
    fn profile_list(&self) -> Result<Vec<HardwareSpec>, CliError> {
        match self.flag("profile") {
            None => Ok(vec![HardwareSpec::default()]),
            Some(names) => split_list("profile", names)
                .map_err(CliError::usage)?
                .iter()
                .map(|name| resolve_profile(name))
                .collect(),
        }
    }

    /// Resolves `--mode` to an estimate mode (default: compiled, which
    /// keeps existing invocations byte-identical).
    fn estimate_mode(&self) -> Result<EstimateMode, CliError> {
        match self.flag("mode") {
            None => Ok(EstimateMode::default()),
            Some(v) => v.parse().map_err(CliError::usage),
        }
    }

    /// Resolves `--simd-width` to a SIMD batching width (default 1, which
    /// keeps the gate stream byte-identical). Zero is a usage error: a
    /// width-0 batch would merge nothing and is always a typo.
    fn simd_width(&self) -> Result<usize, CliError> {
        match self.flag("simd-width") {
            None => Ok(1),
            Some(v) => {
                let width: usize = v.parse().map_err(|_| {
                    CliError::usage(format!("--simd-width expects a positive integer, got {v:?}"))
                })?;
                if width == 0 {
                    return Err(CliError::usage("--simd-width must be at least 1".to_string()));
                }
                Ok(width)
            }
        }
    }
}

/// Looks up a preset profile by name; unknown names are a usage error
/// listing the available profiles.
fn resolve_profile(name: &str) -> Result<HardwareSpec, CliError> {
    HardwareSpec::by_name(name).map_err(|e| CliError::usage(e.to_string()))
}

/// Resolves the `--trace[=tree|json]` flag: `None` when tracing is off,
/// the selected format otherwise (a bare `--trace` means the tree).
fn trace_format(args: &Args) -> Result<Option<TraceFormat>, CliError> {
    match args.flag("trace") {
        None => Ok(None),
        Some(value) => TraceFormat::parse(value).map(Some).map_err(CliError::usage),
    }
}

/// A recording telemetry handle when tracing (or another trace consumer)
/// is requested, the no-op handle otherwise — so untraced runs pay
/// nothing and stay byte-identical on stdout.
fn telemetry_for(enabled: bool) -> Telemetry {
    if enabled {
        Telemetry::new_enabled()
    } else {
        Telemetry::off()
    }
}

/// Renders the recorded trace through the selected sink onto **stderr**
/// (stdout carries only results, traced or not).
fn emit_trace(tel: &Telemetry, fmt: Option<TraceFormat>) {
    if let (Some(fmt), Some(report)) = (fmt, tel.snapshot()) {
        if let Some(text) = fmt.sink().render(&report) {
            eprint!("{text}");
        }
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match run(&raw) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            if !e.message.is_empty() {
                eprintln!("tiscc: {}", e.message);
            }
            ExitCode::from(e.code)
        }
    }
}

fn run(raw: &[String]) -> Result<(), CliError> {
    let Some(subcommand) = raw.first() else {
        eprintln!("{USAGE}");
        return Err(CliError { code: 2, message: String::new() });
    };
    let args = Args::parse(&raw[1..]);
    match subcommand.as_str() {
        "compile" => cmd_compile(&args),
        "estimate" => cmd_estimate(&args),
        "gen" => cmd_gen(&args),
        "frontier" => cmd_frontier(&args),
        "serve" => cmd_serve(&args),
        "tables" => cmd_tables(&args),
        "sweep" => cmd_sweep(&args),
        "profiles" => cmd_profiles(),
        "verify" => cmd_verify(&args),
        "bench-report" => cmd_bench_report(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => {
            // Backwards compatibility with the original single-purpose CLI:
            // `tiscc prepare_z 3` behaves as `tiscc compile prepare_z 3`.
            if Instruction::from_id(other).is_ok() {
                let mut compat = vec![other.to_string()];
                compat.extend(args.positional.iter().cloned());
                return cmd_compile(&Args { positional: compat, flags: args.flags });
            }
            Err(CliError::usage(format!(
                "unknown subcommand '{other}' (run 'tiscc help' for usage)"
            )))
        }
    }
}

fn cmd_compile(args: &Args) -> Result<(), CliError> {
    let Some(instr_name) = args.positional.first() else {
        return Err(CliError::usage(
            "usage: tiscc compile <instruction> [dx] [dz] [dt] [--profile NAME]",
        ));
    };
    let instruction =
        Instruction::from_id(instr_name).map_err(|e| CliError::usage(e.to_string()))?;
    let distance = |index: usize, name: &str, default: usize| -> Result<usize, CliError> {
        match args.positional.get(index) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::usage(format!("{name} expects a number, got {v:?}"))),
        }
    };
    let dx = distance(1, "dx", 3)?;
    let dz = distance(2, "dz", dx)?;
    let dt = distance(3, "dt", dz.max(dx))?;
    let mut spec = args.profile()?;
    spec.simd_width = args.simd_width()?;
    let fmt = trace_format(args)?;
    let tel = telemetry_for(fmt.is_some());
    let root = tel.root("compile");

    let request = CompileRequest::new(instruction, dx, dz, dt).with_spec(spec);
    let artifact = {
        let span = root.child("compile_instruction");
        let artifact = Compiler::new()
            .compile(&request)
            .map_err(|e| CliError::runtime(format!("compilation failed: {e}")))?;
        // The capture-vs-replicate split: the round template is captured
        // once and replicated for the remaining repeats.
        span.add("compile.template_repeats", artifact.rounds.repeats as u64);
        span.add("compile.rounds_replicated", artifact.rounds.repeats.saturating_sub(1) as u64);
        // Scheduling-realism counters from the pass pipeline: junction
        // recovery waits and SIMD-merged pulses (both 0 at default knobs).
        span.add("compile.junction_stalls", artifact.stats.junction_stalls as u64);
        span.add("compile.batched_pulses", artifact.stats.batched_pulses as u64);
        artifact
    };
    root.finish();
    emit_trace(&tel, fmt);
    println!(
        "{} at dx={dx} dz={dz} dt={dt} under profile '{}': {} logical time-step(s), {} tile(s)",
        instruction.name(),
        request.spec.name,
        artifact.report.logical_time_steps,
        artifact.report.tiles
    );
    println!("{}", artifact.resources.render());
    Ok(())
}

/// `tiscc gen <family>`: build a parametric workload program and emit its
/// `.tql` text on stdout (or `--out`). Every parameter problem — unknown
/// family, out-of-range knob — is a usage error naming the flag, so shell
/// pipelines fail fast instead of estimating the wrong program.
fn cmd_gen(args: &Args) -> Result<(), CliError> {
    let Some(family_name) = args.positional.first() else {
        let families: Vec<&str> = Family::all().iter().map(|f| f.name()).collect();
        return Err(CliError::usage(format!(
            "usage: tiscc gen <family> [--n N] [--seed S] [--out F.tql]; families: {}",
            families.join(" ")
        )));
    };
    let family = Family::from_name(family_name).ok_or_else(|| {
        CliError::usage(WorkloadError::UnknownFamily(family_name.clone()).to_string())
    })?;
    let mut spec = GenSpec::new(family);
    spec.n = args.flag_usize("n", spec.n)?;
    spec.steps = args.flag_usize("steps", spec.steps)?;
    spec.coupling_j = args.flag_f64("j", spec.coupling_j)?;
    spec.field_h = args.flag_f64("h", spec.field_h)?;
    spec.t_fraction = args.flag_f64("t-frac", spec.t_fraction)?;
    if let Some(v) = args.flag("seed") {
        spec.seed = v.parse().map_err(|_| {
            CliError::usage(format!("--seed expects an unsigned integer, got {v:?}"))
        })?;
    }
    if let Some(v) = args.flag("qubits") {
        let q = v
            .parse()
            .map_err(|_| CliError::usage(format!("--qubits expects a number, got {v:?}")))?;
        spec.qubits = Some(q);
    }
    let program = generate(&spec).map_err(|e| CliError::usage(e.to_string()))?;
    let text = program.to_tql();
    match args.flag("out") {
        None | Some("") => print!("{text}"),
        Some(path) => std::fs::write(path, &text)
            .map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))?,
    }
    Ok(())
}

/// Parses a `HxW` grid value (e.g. `8x8`) into tile-grid dimensions;
/// `flag` names the offending flag in the error message.
fn parse_grid(flag: &str, value: &str) -> Result<(usize, usize), CliError> {
    let bad = || CliError::usage(format!("{flag} expects ROWSxCOLS (e.g. 8x8), got {value:?}"));
    let (rows, cols) = value.split_once(['x', 'X']).ok_or_else(bad)?;
    let rows: usize = rows.trim().parse().map_err(|_| bad())?;
    let cols: usize = cols.trim().parse().map_err(|_| bad())?;
    if rows == 0 || cols == 0 {
        return Err(bad());
    }
    Ok((rows, cols))
}

/// Resolves `--layout` and `--grid` into a floorplan spec.
fn layout_spec(args: &Args) -> Result<LayoutSpec, CliError> {
    let mut layout = match args.flag("layout") {
        None => LayoutSpec::default(),
        Some(name) => LayoutSpec::by_name(name).map_err(|e| CliError::usage(e.to_string()))?,
    };
    if let Some(grid) = args.flag("grid") {
        let (rows, cols) = parse_grid("--grid", grid)?;
        layout = layout.with_grid(rows, cols);
    }
    Ok(layout)
}

/// Reads and parses a `.tql` program file under a `parse` span;
/// unreadable or unparseable files are usage errors naming the path.
fn load_program(path: &str, parent: &Span) -> Result<LogicalProgram, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::usage(format!("cannot read {path}: {e}")))?;
    let stem = PathBuf::from(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "program".to_string());
    LogicalProgram::parse_with(stem, &text, parent)
        .map_err(|e| CliError::usage(format!("{path}:{e}")))
}

/// Resolves the `--p-phys`, `--p-th` and `--prefactor` flags into an
/// error model (defaults unchanged where a flag is absent).
fn error_model(args: &Args) -> Result<ErrorModel, CliError> {
    Ok(ErrorModel {
        p_physical: args.flag_f64("p-phys", ErrorModel::default().p_physical)?,
        p_threshold: args.flag_f64("p-th", ErrorModel::default().p_threshold)?,
        prefactor: args.flag_f64("prefactor", ErrorModel::default().prefactor)?,
    })
}

fn cmd_estimate(args: &Args) -> Result<(), CliError> {
    let Some(path) = args.positional.first() else {
        return Err(CliError::usage(
            "usage: tiscc estimate <program.tql> [--budget X] [--profile NAME[,NAME...]] \
             [--layout lane|row|checkerboard] [--grid HxW] [--show-layout]",
        ));
    };
    let fmt = trace_format(args)?;
    let tel = telemetry_for(fmt.is_some());
    let root = tel.root("estimate");
    let program = load_program(path, &root)?;

    let model = error_model(args)?;
    let layout = layout_spec(args)?;
    // `--simd-width` is a scheduling knob, not a new profile: it applies
    // uniformly to every profile in the comparison list.
    let simd_width = args.simd_width()?;
    let spec = ProgramEstimateSpec {
        budget: args.flag_f64("budget", 1e-9)?,
        model,
        profiles: args
            .profile_list()?
            .into_iter()
            .map(|mut profile| {
                profile.simd_width = simd_width;
                profile
            })
            .collect(),
        d_max: args.flag_usize("dmax", 49)?,
        layout,
        mode: args.estimate_mode()?,
    };

    if args.flag("show-layout").is_some() {
        // The floorplan is cheap: render it before any compilation so the
        // user sees it even when the estimate itself fails.
        let placement = Placement::allocate_with(&program, &spec.layout)
            .map_err(|e| CliError::usage(e.to_string()))?;
        print!("{}", placement.render_ascii(&program));
    }

    // Malformed-but-parseable argument values (zero budget, a physical
    // error rate at or above threshold, an undersized or unroutable tile
    // grid) are bad arguments, not runtime failures: surface them as
    // usage errors before any compilation.
    let estimate =
        estimate_program_with(&program, &spec, &Compiler::new(), &root).map_err(|e| match e {
            EstimateError::Budget(BudgetError::InvalidModel(_))
            | EstimateError::Spec(_)
            | EstimateError::Placement(_)
            | EstimateError::Routing(_) => CliError::usage(e.to_string()),
            other => CliError::runtime(other.to_string()),
        })?;
    root.finish();
    emit_trace(&tel, fmt);
    print!("{}", estimate.render());
    Ok(())
}

/// Maps a frontier-engine failure onto the CLI exit-code convention:
/// malformed inputs (empty axes, bad models, unplaceable programs) are
/// usage errors, compile/cache failures are runtime errors.
fn frontier_cli_error(e: FrontierError) -> CliError {
    match e {
        FrontierError::Compile(_) | FrontierError::Cache(_) => CliError::runtime(e.to_string()),
        other => CliError::usage(other.to_string()),
    }
}

/// Opens the persistent compile cache named by `--cache-dir`, if any.
fn open_cache(args: &Args) -> Result<Option<DiskCache>, CliError> {
    match args.flag("cache-dir") {
        None => Ok(None),
        Some("") => Err(CliError::usage("--cache-dir expects a directory path")),
        Some(dir) => DiskCache::open(std::path::Path::new(dir))
            .map(Some)
            .map_err(|e| CliError::runtime(e.to_string())),
    }
}

/// Resolves `--layouts` and `--grids` into the floorplan axis: each
/// layout entry (`name` or `name@RxC`) that carries no explicit grid is
/// crossed with every `--grids` entry; explicitly-gridded entries pass
/// through unchanged. Duplicate entries in either list are dropped.
fn frontier_layouts(args: &Args) -> Result<Vec<LayoutSpec>, CliError> {
    let entries =
        split_list("layouts", args.flag("layouts").unwrap_or("lane")).map_err(CliError::usage)?;
    let grids: Vec<(usize, usize)> = match args.flag("grids") {
        None => Vec::new(),
        Some(raw) => split_list("grids", raw)
            .map_err(CliError::usage)?
            .iter()
            .map(|g| parse_grid("--grids", g))
            .collect::<Result<_, _>>()?,
    };
    let mut layouts = Vec::new();
    for entry in &entries {
        let layout = parse_layout_entry(entry).map_err(CliError::usage)?;
        if layout.grid.is_some() || grids.is_empty() {
            layouts.push(layout);
        } else {
            for &(rows, cols) in &grids {
                layouts.push(layout.with_grid(rows, cols));
            }
        }
    }
    Ok(layouts)
}

fn cmd_frontier(args: &Args) -> Result<(), CliError> {
    let Some(path) = args.positional.first() else {
        return Err(CliError::usage(
            "usage: tiscc frontier <program.tql> [--layouts L[@RxC][,...]] [--grids RxC[,...]] \
             [--dmin N] [--dmax N] [--profile NAME[,NAME...]] [--mode compiled|analytic] \
             [--cache-dir DIR] [--out F.csv] [--json F.json] [--stats-json F.json] \
             [--trace[=tree|json]] [--quiet]",
        ));
    };
    let quiet = args.flag("quiet").is_some();
    let fmt = trace_format(args)?;
    let stats_json = args.flag("stats-json").map(str::to_string);
    if stats_json.as_deref() == Some("") {
        return Err(CliError::usage("--stats-json expects a file path"));
    }
    // --stats-json embeds the span tree, so it records telemetry even
    // when no --trace format was requested for stderr.
    let tel = telemetry_for(fmt.is_some() || stats_json.is_some());
    let root = tel.root("frontier");
    let program = load_program(path, &root)?;
    let spec = FrontierSpec {
        layouts: frontier_layouts(args)?,
        d_min: args.flag_usize("dmin", 3)?,
        d_max: args.flag_usize("dmax", 13)?,
        profiles: args.profile_list()?,
        mode: args.estimate_mode()?,
        model: error_model(args)?,
    };
    let disk = open_cache(args)?;

    let compiler = Compiler::new();
    let started = std::time::Instant::now();
    let report = run_frontier_with(&program, &spec, &compiler, disk.as_ref(), &root)
        .map_err(frontier_cli_error)?;
    let elapsed_s = started.elapsed().as_secs_f64();
    root.finish();
    emit_trace(&tel, fmt);
    if !quiet {
        eprint!("{}", report.render_stats());
        eprintln!("  elapsed: {elapsed_s:.3}s");
        if let Some(cache) = &disk {
            eprintln!(
                "  persistent cache: {} entr{} at {} ({} corrupt skipped)",
                cache.len(),
                if cache.len() == 1 { "y" } else { "ies" },
                cache.dir().display(),
                cache.corrupt_entries()
            );
        }
    }

    if let Some(out) = args.flag("out") {
        let csv = matrix_to_csv(&report);
        std::fs::write(out, &csv)
            .map_err(|e| CliError::runtime(format!("cannot write {out}: {e}")))?;
        // Self-check: the artifact we just wrote must re-parse bit-exactly.
        let text = std::fs::read_to_string(out)
            .map_err(|e| CliError::runtime(format!("cannot re-read {out}: {e}")))?;
        let parsed = matrix_from_csv(&text)
            .map_err(|e| CliError::runtime(format!("written CSV failed to re-parse: {e}")))?;
        if parsed != report.points {
            return Err(CliError::runtime("written CSV did not round-trip the matrix exactly"));
        }
        if !quiet {
            eprintln!("wrote {out}");
        }
    }
    if let Some(json) = args.flag("json") {
        std::fs::write(json, report_to_json(&report))
            .map_err(|e| CliError::runtime(format!("cannot write {json}: {e}")))?;
        if !quiet {
            eprintln!("wrote {json}");
        }
    }
    if let Some(stats_path) = &stats_json {
        let trace = tel.snapshot().and_then(|r| JsonSink.render(&r));
        std::fs::write(stats_path, stats_to_json(&report, elapsed_s, trace.as_deref()))
            .map_err(|e| CliError::runtime(format!("cannot write {stats_path}: {e}")))?;
        if !quiet {
            eprintln!("wrote {stats_path}");
        }
    }
    print!("{}", frontier_to_csv(&report));
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), CliError> {
    if args.flag("stdin-json").is_none() {
        return Err(CliError::usage(
            "usage: tiscc serve --stdin-json [--cache-dir DIR] (newline-delimited JSON \
             requests on stdin, one JSON response per line on stdout, until EOF)",
        ));
    }
    let state = ServeState::new(open_cache(args)?);
    eprintln!(
        "tiscc serve: reading JSON requests from stdin{}",
        match &state.disk {
            Some(cache) => format!(" (persistent cache: {})", cache.dir().display()),
            None => String::new(),
        }
    );
    let stdin = std::io::stdin();
    let mut input = String::new();
    loop {
        input.clear();
        use std::io::BufRead;
        let n = stdin
            .lock()
            .read_line(&mut input)
            .map_err(|e| CliError::runtime(format!("stdin read failed: {e}")))?;
        if n == 0 {
            return Ok(());
        }
        let line = input.trim();
        if line.is_empty() {
            continue;
        }
        println!("{}", handle_line(line, &state));
        use std::io::Write;
        let _ = std::io::stdout().flush();
    }
}

type TableJob =
    fn(&HardwareSpec, usize, usize) -> Result<Vec<tables::ResourceRow>, tiscc_core::CoreError>;

fn cmd_tables(args: &Args) -> Result<(), CliError> {
    let d = args.flag_usize("d", 3)?.max(2);
    let dt = args.flag_usize("dt", 2)?;
    let spec = args.profile()?;
    println!("{}", tables::table5_with(&spec));
    let jobs: [(&str, TableJob); 3] = [
        ("Table 1: local lattice-surgery instruction set", |spec, d, dt| {
            tables::table1_rows_with(spec, &[d], dt)
        }),
        ("Table 2: primitive operations", tables::table2_rows_with),
        ("Table 3: derived instruction set", tables::table3_rows_with),
    ];
    for (title, job) in jobs {
        let rows = job(&spec, d, dt)
            .map_err(|e| CliError::runtime(format!("error compiling {title}: {e}")))?;
        println!("{}", tables::render_rows(title, &rows));
    }
    Ok(())
}

fn cmd_profiles() -> Result<(), CliError> {
    println!("Available hardware profiles (select with --profile NAME):\n");
    for spec in HardwareSpec::presets() {
        print!("{}", spec.render());
        println!("  fingerprint         : {}", spec.fingerprint());
        println!();
    }
    Ok(())
}

fn cmd_sweep(args: &Args) -> Result<(), CliError> {
    let dmax = args.flag_usize("dmax", 5)?.max(2);
    let profiles = args.profile_list()?;
    let mut spec = SweepSpec::paper(dmax).with_profiles(profiles).with_mode(args.estimate_mode()?);
    if let Some(dt) = args.flag("dt") {
        if dt != "d" {
            let dt = dt.parse::<usize>().map_err(|_| {
                CliError::usage(format!("--dt expects a number or 'd', got {dt:?}"))
            })?;
            spec.dts = vec![DtPolicy::Fixed(dt)];
        }
    }

    let quiet = args.flag("quiet").is_some();
    let fmt = trace_format(args)?;
    let tel = telemetry_for(fmt.is_some());
    let root = tel.root("sweep");
    let cache = CompileCache::new();
    let profile_names: Vec<&str> = spec.profiles.iter().map(|p| p.name.as_str()).collect();
    if !quiet {
        eprintln!(
            "sweeping {} configurations ({} instructions x d=2..={} with dt policy {:?} x profiles {:?})",
            spec.len(),
            spec.instructions.len(),
            dmax,
            spec.dts,
            profile_names
        );
    }
    let result = run_sweep_with(&spec, &cache, &root)
        .map_err(|e| CliError::runtime(format!("sweep failed: {e}")))?;
    if !quiet {
        eprintln!(
            "cold sweep: {} rows in {:.2}s on {} thread(s) ({} compiled, {} cache hits)",
            result.rows.len(),
            result.elapsed_s,
            result.threads,
            result.cache_misses,
            result.cache_hits
        );
    }

    // A second in-process sweep over the same spec: every row must now come
    // from the compile cache. This both demonstrates and regression-checks
    // the memoization (a real client issuing overlapping sweeps, e.g. the
    // Table 1/2/3 generators, shares primitives exactly this way). Both
    // passes share the one "sweep" root span, so phase totals aggregate
    // the cold and warm expand/compile/assemble children.
    let warm = run_sweep_with(&spec, &cache, &root)
        .map_err(|e| CliError::runtime(format!("warm sweep failed: {e}")))?;
    if !quiet {
        eprintln!(
            "warm sweep: {} rows in {:.3}s ({} cache hits, {} compiled)",
            warm.rows.len(),
            warm.elapsed_s,
            warm.cache_hits,
            warm.cache_misses
        );
    }
    root.finish();
    emit_trace(&tel, fmt);
    if warm.cache_misses != 0 || warm.rows != result.rows {
        return Err(CliError::runtime("cache inconsistency: warm sweep diverged from cold sweep"));
    }

    // Artifact targets: --out writes the CSV (and, unless --json overrides
    // it, a JSON sibling next to it); --json alone writes only the JSON.
    let csv_path = args.flag("out").map(PathBuf::from);
    let json_path = match (args.flag("json"), &csv_path) {
        (Some(j), _) => Some(PathBuf::from(j)),
        (None, Some(csv)) => Some(csv.with_extension("json")),
        (None, None) => None,
    };
    if let Some(csv_path) = &csv_path {
        result
            .write_csv(csv_path)
            .map_err(|e| CliError::runtime(format!("cannot write {}: {e}", csv_path.display())))?;
        // Self-check: the artifact we just wrote must parse back.
        let text = std::fs::read_to_string(csv_path).map_err(|e| {
            CliError::runtime(format!("cannot re-read {}: {e}", csv_path.display()))
        })?;
        parse_csv(&text)
            .map_err(|e| CliError::runtime(format!("written CSV failed to re-parse: {e}")))?;
        if !quiet {
            eprintln!("wrote {}", csv_path.display());
        }
    }
    if let Some(json_path) = &json_path {
        result
            .write_json(json_path)
            .map_err(|e| CliError::runtime(format!("cannot write {}: {e}", json_path.display())))?;
        if !quiet {
            eprintln!("wrote {}", json_path.display());
        }
    }
    if csv_path.is_none() && json_path.is_none() {
        print!("{}", result.to_csv());
    }
    Ok(())
}

/// One parsed benchmark measurement.
#[derive(Clone, Debug, PartialEq)]
struct BenchEntry {
    id: String,
    median_ns: f64,
}

/// Parses a `Duration` debug rendering (`"153ns"`, `"12.5µs"`, `"1.2ms"`,
/// `"3.4s"`) into nanoseconds.
///
/// The unit conversion shifts the decimal point in the digit string rather
/// than multiplying floats: `1e6` scaling turns `2.063274ms` into
/// 2063273.9999999998 because neither 2.063274 nor the product is exactly
/// representable, and that noise then gets committed to
/// `BENCH_BASELINE.json`. `Duration`'s debug output never prints more
/// fractional digits than the unit has (9 for `s`, 6 for `ms`, 3 for `µs`,
/// 0 for `ns`), so the shift always lands on an exact integer nanosecond
/// count.
fn parse_duration_ns(text: &str) -> Option<f64> {
    let text = text.trim();
    // Order matters: try the longest suffixes first ("ms" before "s").
    for (suffix, power) in [("ns", 0usize), ("µs", 3), ("us", 3), ("ms", 6), ("s", 9)] {
        if let Some(value) = text.strip_suffix(suffix) {
            return parse_decimal_shifted(value.trim(), power);
        }
    }
    None
}

/// Parses a non-negative decimal literal times `10^power`, exactly.
fn parse_decimal_shifted(value: &str, power: usize) -> Option<f64> {
    let (int_part, frac_part) = value.split_once('.').unwrap_or((value, ""));
    if int_part.is_empty() && frac_part.is_empty() {
        return None;
    }
    let all_digits = |s: &str| s.bytes().all(|b| b.is_ascii_digit());
    if !all_digits(int_part) || !all_digits(frac_part) {
        return None;
    }
    let mut digits = String::from(int_part);
    if frac_part.len() <= power {
        // The usual case: the shift absorbs every fractional digit.
        digits.push_str(frac_part);
        digits.push_str(&"0".repeat(power - frac_part.len()));
        digits.parse::<u64>().ok().map(|n| n as f64)
    } else {
        // More fractional digits than the shift absorbs (does not occur in
        // `Duration` output, but keep the parser total): split into an
        // exact integer head and a small fractional tail.
        let (head, tail) = frac_part.split_at(power);
        digits.push_str(head);
        let int = digits.parse::<u64>().ok()?;
        let frac = tail.parse::<u64>().ok()?;
        Some(int as f64 + frac as f64 / 10f64.powi(tail.len() as i32))
    }
}

/// Parses the benchmark-harness output format
/// `<id>: median <duration> over <n> sample(s), total <duration>`
/// (and the `--test` form `<id>: ok (<duration>)`) into entries.
fn parse_bench_output(text: &str) -> Vec<BenchEntry> {
    let mut entries = Vec::new();
    for line in text.lines() {
        let Some((id, rest)) = line.split_once(": ") else { continue };
        let median = if let Some(rest) = rest.strip_prefix("median ") {
            rest.split(" over ").next().and_then(parse_duration_ns)
        } else if let Some(rest) = rest.strip_prefix("ok (") {
            rest.strip_suffix(')').and_then(parse_duration_ns)
        } else {
            None
        };
        if let Some(median_ns) = median {
            entries.push(BenchEntry { id: id.trim().to_string(), median_ns });
        }
    }
    entries
}

/// Renders entries as the committed `BENCH_BASELINE.json` document.
fn render_bench_json(entries: &[BenchEntry]) -> String {
    let mut out = String::from("{\n  \"schema\": \"tiscc.bench.v1\",\n  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"id\": \"{}\", \"median_ns\": {} }}{}\n",
            e.id.replace('\\', "\\\\").replace('"', "\\\""),
            e.median_ns,
            if i + 1 < entries.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses a `BENCH_BASELINE.json` document (as written by
/// [`render_bench_json`]): one `{ "id": …, "median_ns": … }` object per line.
fn parse_bench_json(text: &str) -> Result<Vec<BenchEntry>, String> {
    let mut entries = Vec::new();
    for line in text.lines() {
        let Some(id_at) = line.find("\"id\":") else { continue };
        let rest = &line[id_at + 5..];
        let Some(open) = rest.find('"') else { continue };
        let Some(close) = rest[open + 1..].find('"') else { continue };
        let id = rest[open + 1..open + 1 + close].to_string();
        let Some(med_at) = rest.find("\"median_ns\":") else {
            return Err(format!("entry for {id:?} is missing median_ns"));
        };
        let tail = rest[med_at + 12..].trim_start();
        let num: String = tail
            .chars()
            .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
            .collect();
        let median_ns: f64 =
            num.parse().map_err(|_| format!("entry for {id:?} has a malformed median_ns"))?;
        entries.push(BenchEntry { id, median_ns });
    }
    Ok(entries)
}

/// One benchmark that slowed down past the allowed tolerance.
#[derive(Clone, Debug, PartialEq)]
struct BenchRegression {
    id: String,
    baseline_ns: f64,
    current_ns: f64,
}

/// Compares current entries against a baseline: a benchmark regresses when
/// its median exceeds `baseline * (1 + tolerance)`. Benchmarks present only
/// on one side never fail the gate (renames and new benches are reported by
/// the caller, not gated).
fn bench_regressions(
    baseline: &[BenchEntry],
    current: &[BenchEntry],
    tolerance: f64,
) -> Vec<BenchRegression> {
    let mut regressions = Vec::new();
    for base in baseline {
        let Some(cur) = current.iter().find(|c| c.id == base.id) else { continue };
        if cur.median_ns > base.median_ns * (1.0 + tolerance) {
            regressions.push(BenchRegression {
                id: base.id.clone(),
                baseline_ns: base.median_ns,
                current_ns: cur.median_ns,
            });
        }
    }
    regressions
}

fn cmd_bench_report(args: &Args) -> Result<(), CliError> {
    let trace_path = args.flag("trace");
    if trace_path == Some("") {
        return Err(CliError::usage(
            "--trace expects a file path here (write one with e.g. \
             `tiscc estimate ... --trace=json 2> trace.json`); pass it as --trace=FILE",
        ));
    }
    if args.positional.is_empty() && trace_path.is_none() {
        return Err(CliError::usage(
            "usage: tiscc bench-report <results.txt>... [--trace=F.json] [--out F.json] \
             [--baseline F.json] [--tolerance X] [--filter SUBSTR]",
        ));
    }
    let tolerance = args.flag_f64("tolerance", 0.3)?;
    if !(0.0..=100.0).contains(&tolerance) {
        return Err(CliError::usage(format!(
            "--tolerance expects a fraction >= 0 (got {tolerance})"
        )));
    }

    let mut entries = Vec::new();
    for path in &args.positional {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::usage(format!("cannot read {path}: {e}")))?;
        entries.extend(parse_bench_output(&text));
    }
    if let Some(path) = trace_path {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::usage(format!("cannot read {path}: {e}")))?;
        let report = trace_from_json(&text)
            .map_err(|e| CliError::runtime(format!("malformed trace {path}: {e}")))?;
        // Each span path becomes one pseudo-benchmark whose median is the
        // path's aggregated duration, so traces feed the same baseline
        // gate as the real benchmark suites.
        for (span_path, total_us, _calls) in report.phase_totals() {
            entries.push(BenchEntry {
                id: format!("trace/{span_path}"),
                median_ns: total_us * 1000.0,
            });
        }
    }
    if let Some(filter) = args.flag("filter") {
        entries.retain(|e| e.id.contains(filter));
    }
    if entries.is_empty() {
        return Err(CliError::runtime(
            "no benchmark measurements found in the input (expected \
             `<id>: median <time> over <n> sample(s)` lines)",
        ));
    }
    println!("parsed {} benchmark measurement(s)", entries.len());

    if let Some(out) = args.flag("out") {
        std::fs::write(out, render_bench_json(&entries))
            .map_err(|e| CliError::runtime(format!("cannot write {out}: {e}")))?;
        println!("wrote {out}");
    }

    if let Some(baseline_path) = args.flag("baseline") {
        let text = std::fs::read_to_string(baseline_path)
            .map_err(|e| CliError::usage(format!("cannot read {baseline_path}: {e}")))?;
        let mut baseline = parse_bench_json(&text)
            .map_err(|e| CliError::runtime(format!("malformed baseline {baseline_path}: {e}")))?;
        if let Some(filter) = args.flag("filter") {
            baseline.retain(|e| e.id.contains(filter));
        }
        for base in &baseline {
            if !entries.iter().any(|c| c.id == base.id) {
                eprintln!("warning: baseline benchmark {:?} was not measured", base.id);
            }
        }
        let regressions = bench_regressions(&baseline, &entries, tolerance);
        if regressions.is_empty() {
            println!(
                "bench gate passed: no benchmark regressed more than {:.0}% vs {}",
                tolerance * 100.0,
                baseline_path
            );
        } else {
            for r in &regressions {
                eprintln!(
                    "REGRESSION {}: {:.0}ns -> {:.0}ns ({:+.1}%)",
                    r.id,
                    r.baseline_ns,
                    r.current_ns,
                    (r.current_ns / r.baseline_ns - 1.0) * 100.0
                );
            }
            return Err(CliError::runtime(format!(
                "bench gate failed: {} benchmark(s) regressed more than {:.0}%",
                regressions.len(),
                tolerance * 100.0
            )));
        }
    }
    Ok(())
}

fn cmd_verify(args: &Args) -> Result<(), CliError> {
    let seed = args.flag_usize("seed", 17)? as u64;
    let mut failures = 0usize;
    println!("Sec. 4 verification (fiducial state preparation + Idle process map):");
    for fiducial in Fiducial::all() {
        let mut fixture = SingleTile::new(2, 2, 1)
            .map_err(|e| CliError::runtime(format!("fixture construction failed: {e}")))?;
        if let Err(e) = fiducial.prepare(&mut fixture.hw, &mut fixture.patch) {
            eprintln!("prepare {fiducial:?} failed to compile: {e}");
            failures += 1;
            continue;
        }
        let run = fixture.simulate(seed);
        let bloch = fixture.logical_bloch(&run);
        let ok = bloch.distance(&fiducial.bloch()) < 1e-9;
        if !ok {
            failures += 1;
        }
        println!(
            "  prepare {:?}: bloch = ({:+.1}, {:+.1}, {:+.1})  {}",
            fiducial,
            bloch.x,
            bloch.y,
            bloch.z,
            if ok { "ok" } else { "MISMATCH" }
        );
    }
    match process_map_of(3, 3, 1, seed.wrapping_add(6), |hw, patch| patch.idle(hw).map(|_| ())) {
        Ok(map) => {
            let deviation = map.max_deviation(&tiscc_orqcs::ProcessMap::identity());
            let ok = deviation < 1e-9;
            if !ok {
                failures += 1;
            }
            println!(
                "  Idle process map deviation from identity: {:.3e}  {}",
                deviation,
                if ok { "ok" } else { "MISMATCH" }
            );
        }
        Err(e) => {
            eprintln!("idle process tomography failed: {e}");
            failures += 1;
        }
    }
    if failures == 0 {
        println!("verification passed");
        Ok(())
    } else {
        println!("verification FAILED ({failures} check(s))");
        Err(CliError { code: 1, message: String::new() })
    }
}

#[cfg(test)]
mod bench_report_tests {
    use super::*;

    #[test]
    fn durations_parse_in_every_unit() {
        assert_eq!(parse_duration_ns("153ns"), Some(153.0));
        assert_eq!(parse_duration_ns("12.5µs"), Some(12_500.0));
        assert_eq!(parse_duration_ns("12.5us"), Some(12_500.0));
        assert_eq!(parse_duration_ns("1.2ms"), Some(1_200_000.0));
        assert_eq!(parse_duration_ns("3.5s"), Some(3_500_000_000.0));
        assert_eq!(parse_duration_ns("nonsense"), None);
        assert_eq!(parse_duration_ns("1.e3ms"), None);
        assert_eq!(parse_duration_ns(".s"), None);
    }

    #[test]
    fn unit_scaling_is_exact_to_the_nanosecond() {
        // The float-multiply version returned 2063273.9999999998 here, and
        // that noise round-tripped into the committed baseline.
        assert_eq!(parse_duration_ns("2.063274ms"), Some(2_063_274.0));
        assert_eq!(parse_duration_ns("4.499999999s"), Some(4_499_999_999.0));
        assert_eq!(parse_duration_ns("0.001µs"), Some(1.0));
        // Every exact parse serializes as a plain integer.
        let json = render_bench_json(&[BenchEntry {
            id: "x".into(),
            median_ns: parse_duration_ns("2.063274ms").unwrap(),
        }]);
        assert!(json.contains("\"median_ns\": 2063274 "), "got: {json}");
        assert_eq!(parse_bench_json(&json).unwrap()[0].median_ns, 2_063_274.0);
        // Excess fractional digits still parse (totality, not exactness).
        assert_eq!(parse_duration_ns("1.5ns"), Some(1.5));
    }

    #[test]
    fn bench_output_round_trips_through_json() {
        let raw = "profile_throughput/h1/idle: median 1.5ms over 10 sample(s), total 15ms\n\
                   warm_cache/idle: median 220ns over 10 sample(s), total 2.2µs\n\
                   some unrelated line\n\
                   tested/one: ok (3.1µs)\n";
        let entries = parse_bench_output(raw);
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].id, "profile_throughput/h1/idle");
        assert_eq!(entries[0].median_ns, 1_500_000.0);
        assert_eq!(entries[2], BenchEntry { id: "tested/one".into(), median_ns: 3_100.0 });
        let json = render_bench_json(&entries);
        assert!(json.contains("\"schema\": \"tiscc.bench.v1\""));
        let parsed = parse_bench_json(&json).unwrap();
        assert_eq!(parsed, entries);
    }

    #[test]
    fn gate_flags_only_regressions_beyond_tolerance() {
        let baseline = vec![
            BenchEntry { id: "a".into(), median_ns: 1000.0 },
            BenchEntry { id: "b".into(), median_ns: 1000.0 },
            BenchEntry { id: "gone".into(), median_ns: 1000.0 },
        ];
        let current = vec![
            BenchEntry { id: "a".into(), median_ns: 1290.0 }, // +29% — within tolerance
            BenchEntry { id: "b".into(), median_ns: 1400.0 }, // +40% — regression
            BenchEntry { id: "new".into(), median_ns: 9999.0 }, // unknown — ignored
        ];
        let regressions = bench_regressions(&baseline, &current, 0.30);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].id, "b");
        // A faster run never fails.
        assert!(bench_regressions(&baseline, &baseline, 0.0).is_empty());
    }
}

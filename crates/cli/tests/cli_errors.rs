//! Process-level tests of the CLI error contract: bad arguments exit with
//! code 2 and a one-line stderr message; valid invocations succeed.

use std::path::PathBuf;
use std::process::{Command, Output};

fn tiscc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tiscc")).args(args).output().expect("spawn tiscc")
}

fn assert_usage_error(args: &[&str], needle: &str) {
    let out = tiscc(args);
    assert_eq!(out.status.code(), Some(2), "{args:?} must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains(needle), "{args:?} stderr missing {needle:?}: {stderr}");
    assert_eq!(
        stderr.trim_end().lines().count(),
        1,
        "{args:?} must print a one-line message, got: {stderr}"
    );
}

#[test]
fn bad_arguments_exit_2_with_one_line_messages() {
    assert_usage_error(&["compile", "frobnicate"], "unknown instruction 'frobnicate'");
    assert_usage_error(&["compile", "idle", "--profile", "warp9"], "unknown hardware profile");
    assert_usage_error(&["estimate", "/no/such/file.tql"], "cannot read /no/such/file.tql");
    assert_usage_error(&["estimate"], "usage: tiscc estimate");
    assert_usage_error(&["nonsense"], "unknown subcommand 'nonsense'");
    assert_usage_error(&["sweep", "--dmax", "many"], "--dmax expects a number");
    assert_usage_error(&["sweep", "--dt", "soon"], "--dt expects a number or 'd'");
    assert_usage_error(&["compile", "idle", "bogus"], "dx expects a number");
    assert_usage_error(&["compile", "idle", "3", "x"], "dz expects a number");
}

/// Floorplan arguments have the same contract: unknown strategies,
/// malformed grids and undersized grids all exit 2.
#[test]
fn bad_layout_arguments_exit_2() {
    let program =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/programs/bell.tql");
    let program = program.to_str().unwrap();
    assert_usage_error(&["estimate", program, "--layout", "hexagonal"], "unknown layout");
    assert_usage_error(&["estimate", program, "--grid", "8by8"], "--grid expects ROWSxCOLS");
    assert_usage_error(&["estimate", program, "--grid", "0x8"], "--grid expects ROWSxCOLS");
    assert_usage_error(
        &["estimate", program, "--layout", "checkerboard", "--grid", "1x2"],
        "use a larger --grid",
    );
    // A grid the program fits on but cannot route over (no ancilla row at
    // all) is equally a floorplan-argument problem: exit 2.
    assert_usage_error(&["estimate", program, "--layout", "row", "--grid", "1x2"], "unroutable");
}

/// `--show-layout` prints the floorplan before the estimate report, and
/// the 2D layouts report their congestion columns.
#[test]
fn show_layout_prints_the_floorplan() {
    let program =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/programs/adder.tql");
    let out = tiscc(&[
        "estimate",
        program.to_str().unwrap(),
        "--budget",
        "1e-3",
        "--layout",
        "checkerboard",
        "--grid",
        "8x8",
        "--show-layout",
    ]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "floorplan: checkerboard layout on 8x8 tiles",
        "a0",
        "··",
        "parallel_merges 4",
        "routing_stalls 0",
    ] {
        assert!(stdout.contains(needle), "stdout missing {needle:?}: {stdout}");
    }
}

/// Argument *values* that parse but are physically meaningless (a
/// non-positive budget, an above-threshold physical error rate) are bad
/// arguments too: exit 2, not a runtime failure.
#[test]
fn meaningless_estimate_parameters_exit_2() {
    let program =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/programs/bell.tql");
    let program = program.to_str().unwrap();
    let out = tiscc(&["estimate", program, "--budget", "0"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("budget must be positive"));
    let out = tiscc(&["estimate", program, "--p-phys", "0.5"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("not below threshold"));
}

#[test]
fn malformed_programs_exit_2_with_the_offending_line() {
    let dir = std::env::temp_dir();
    let path = dir.join("tiscc_cli_errors_bad.tql");
    std::fs::write(&path, "qubit a\nfrobnicate a\n").unwrap();
    let out = tiscc(&["estimate", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 2"), "stderr: {stderr}");
    assert!(stderr.contains("frobnicate"), "stderr: {stderr}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn estimate_succeeds_on_a_bundled_program() {
    let program =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/programs/bell.tql");
    let out = tiscc(&[
        "estimate",
        program.to_str().unwrap(),
        "--budget",
        "1e-3",
        "--profile",
        "h1,projected",
    ]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in ["Program 'bell'", "h1", "projected", "qubit-rounds"] {
        assert!(stdout.contains(needle), "stdout missing {needle:?}: {stdout}");
    }
}

#[test]
fn help_and_profiles_succeed() {
    assert!(tiscc(&["help"]).status.success());
    let out = tiscc(&["profiles"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("slow_junction"));
}

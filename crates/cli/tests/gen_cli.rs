//! Process-level tests of the `tiscc gen` subcommand: byte-stable output
//! across separate process invocations, the `--out` file path, the
//! generate → estimate pipeline, and the exit-2 contract for bad families
//! and parameters.

use std::process::{Command, Output};

fn tiscc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tiscc")).args(args).output().expect("spawn tiscc")
}

fn assert_usage_error(args: &[&str], needle: &str) {
    let out = tiscc(args);
    assert_eq!(out.status.code(), Some(2), "{args:?} must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains(needle), "{args:?} stderr missing {needle:?}: {stderr}");
    assert_eq!(
        stderr.trim_end().lines().count(),
        1,
        "{args:?} must print a one-line message, got: {stderr}"
    );
}

/// The reproducibility contract the benchmarks rely on: the same family,
/// size and seed produce byte-identical `.tql` in two *separate* process
/// invocations, and changing the seed changes the program.
#[test]
fn same_seed_is_byte_stable_across_processes() {
    let args = ["gen", "random-clifford-t", "--n", "500", "--seed", "9"];
    let first = tiscc(&args);
    let second = tiscc(&args);
    assert!(first.status.success());
    assert_eq!(first.stdout, second.stdout, "same seed must be byte-stable");
    assert!(!first.stdout.is_empty());

    let other = tiscc(&["gen", "random-clifford-t", "--n", "500", "--seed", "10"]);
    assert_ne!(first.stdout, other.stdout, "different seeds must diverge");
}

/// Every family at a small size emits a program the parser accepts: the
/// generated text round-trips through `tiscc estimate`.
#[test]
fn every_family_feeds_the_estimator() {
    let dir = std::env::temp_dir().join(format!("tiscc-gen-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for family in [
        "ripple-carry-adder",
        "carry-lookahead-adder",
        "qft",
        "ising-trotter",
        "ghz-chain",
        "teleport-chain",
        "random-clifford-t",
    ] {
        let path = dir.join(format!("{family}.tql"));
        let path = path.to_str().unwrap();
        let out = tiscc(&["gen", family, "--n", "3", "--out", path]);
        assert!(out.status.success(), "gen {family} failed: {:?}", out);
        assert!(out.stdout.is_empty(), "--out must not also print to stdout");
        let est = tiscc(&["estimate", path, "--budget", "1e-4", "--mode", "analytic"]);
        assert!(
            est.status.success(),
            "estimate of generated {family} failed: {}",
            String::from_utf8_lossy(&est.stderr)
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// `--out FILE` writes exactly the bytes that stdout mode prints.
#[test]
fn out_file_matches_stdout() {
    let path = std::env::temp_dir().join(format!("tiscc-gen-out-{}.tql", std::process::id()));
    let path_str = path.to_str().unwrap();
    let piped = tiscc(&["gen", "qft", "--n", "5"]);
    let filed = tiscc(&["gen", "qft", "--n", "5", "--out", path_str]);
    assert!(piped.status.success() && filed.status.success());
    assert_eq!(std::fs::read(&path).unwrap(), piped.stdout);
    std::fs::remove_file(&path).ok();
}

/// Bad families and bad parameters exit 2 with a one-line message naming
/// the offending family or flag.
#[test]
fn bad_family_and_params_exit_2_naming_the_flag() {
    assert_usage_error(&["gen"], "usage: tiscc gen");
    assert_usage_error(&["gen", "warp-field"], "unknown workload family 'warp-field'");
    assert_usage_error(&["gen", "warp-field"], "ripple-carry-adder");
    assert_usage_error(&["gen", "ghz-chain", "--n", "1"], "--n");
    assert_usage_error(&["gen", "qft", "--n", "0"], "--n");
    assert_usage_error(&["gen", "qft", "--n", "many"], "--n expects a number");
    assert_usage_error(&["gen", "random-clifford-t", "--t-frac", "1.5"], "--t-frac");
    assert_usage_error(&["gen", "random-clifford-t", "--seed", "-3"], "--seed");
    assert_usage_error(&["gen", "random-clifford-t", "--qubits", "0"], "--qubits");
    assert_usage_error(&["gen", "ising-trotter", "--steps", "0"], "--steps");
    assert_usage_error(&["gen", "ising-trotter", "--j", "nan"], "--j");
    assert_usage_error(&["gen", "qft", "--n", "100000"], "cap is 10000000");
}

//! Process-level tests of `tiscc bench-report`: the CI benchmark gate.
//!
//! The bench job in CI pipes `cargo bench … -- --quick` output into this
//! subcommand, writes the parsed measurements as JSON, and fails on a >30%
//! regression against the committed `BENCH_BASELINE.json`. These tests pin
//! the full exit-code contract so a CI wiring change cannot silently turn
//! the gate into a no-op.

use std::process::{Command, Output};

fn tiscc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tiscc")).args(args).output().expect("spawn tiscc")
}

const RESULTS: &str = "\
compile_rounds/templated/idle/d5: median 2.8ms over 10 sample(s), total 28ms
profile_throughput/warm_cache/idle: median 300ns over 10 sample(s), total 3µs
program_scheduling/parse_tql/adder64: median 151.2µs over 10 sample(s), total 1.6ms
";

fn write(dir: &std::path::Path, name: &str, content: &str) -> String {
    let path = dir.join(name);
    std::fs::write(&path, content).expect("write temp file");
    path.to_string_lossy().into_owned()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tiscc-bench-report-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn out_writes_json_and_gate_passes_against_itself() {
    let dir = temp_dir("roundtrip");
    let results = write(&dir, "results.txt", RESULTS);
    let baseline = dir.join("baseline.json");
    let baseline = baseline.to_str().unwrap();

    let out = tiscc(&["bench-report", &results, "--out", baseline]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let json = std::fs::read_to_string(baseline).expect("baseline written");
    assert!(json.contains("\"schema\": \"tiscc.bench.v1\""));
    assert!(json.contains("\"id\": \"compile_rounds/templated/idle/d5\""));
    assert!(json.contains("\"median_ns\": 2800000"));

    // Identical measurements pass the gate at any tolerance.
    let out = tiscc(&["bench-report", &results, "--baseline", baseline, "--tolerance", "0"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("bench gate passed"));
}

#[test]
fn gate_fails_on_regression_beyond_tolerance() {
    let dir = temp_dir("regression");
    let fast = write(&dir, "fast.txt", RESULTS);
    let baseline = dir.join("baseline.json");
    let baseline = baseline.to_str().unwrap();
    assert_eq!(tiscc(&["bench-report", &fast, "--out", baseline]).status.code(), Some(0));

    // 2.8ms -> 4.2ms is +50%: beyond the default 30% tolerance.
    let slow = write(
        &dir,
        "slow.txt",
        "compile_rounds/templated/idle/d5: median 4.2ms over 10 sample(s), total 42ms\n",
    );
    let out = tiscc(&["bench-report", &slow, "--baseline", baseline]);
    assert_eq!(out.status.code(), Some(1), "regression must fail the gate");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("REGRESSION compile_rounds/templated/idle/d5"));
    assert!(stderr.contains("bench gate failed"));
    // Benchmarks in the baseline but missing from the run are warned about,
    // not silently dropped.
    assert!(stderr.contains("warning: baseline benchmark"));

    // The same slowdown passes under a generous tolerance (missing
    // benchmarks warn but never fail the gate).
    let out = tiscc(&["bench-report", &slow, "--baseline", baseline, "--tolerance", "0.6"]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn regression_within_tolerance_passes() {
    let dir = temp_dir("tolerated");
    let fast = write(&dir, "fast.txt", RESULTS);
    let baseline = dir.join("baseline.json");
    let baseline = baseline.to_str().unwrap();
    assert_eq!(tiscc(&["bench-report", &fast, "--out", baseline]).status.code(), Some(0));
    // +25% stays within the default 30%.
    let slower = write(
        &dir,
        "slower.txt",
        "compile_rounds/templated/idle/d5: median 3.5ms over 10 sample(s), total 35ms\n\
         profile_throughput/warm_cache/idle: median 300ns over 10 sample(s), total 3µs\n\
         program_scheduling/parse_tql/adder64: median 151.2µs over 10 sample(s), total 1.6ms\n",
    );
    let out = tiscc(&["bench-report", &slower, "--baseline", baseline]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn bad_arguments_follow_the_cli_error_contract() {
    // No input files: usage error, exit 2.
    let out = tiscc(&["bench-report"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: tiscc bench-report"));
    // Unreadable input: usage error naming the file.
    let out = tiscc(&["bench-report", "/no/such/bench.txt"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read /no/such/bench.txt"));
    // Input with no measurements: runtime failure, exit 1.
    let dir = temp_dir("empty");
    let empty = write(&dir, "empty.txt", "no benchmarks here\n");
    let out = tiscc(&["bench-report", &empty]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("no benchmark measurements"));
}

#[test]
fn committed_baseline_is_well_formed() {
    // The baseline the CI gate compares against must always parse.
    let path =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_BASELINE.json");
    let text = std::fs::read_to_string(&path).expect("committed BENCH_BASELINE.json exists");
    assert!(text.contains("\"schema\": \"tiscc.bench.v1\""));
    for bench in ["profile_throughput", "program_scheduling", "compile_rounds"] {
        assert!(text.contains(bench), "baseline missing the {bench} suite");
    }
}

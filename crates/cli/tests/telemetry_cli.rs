//! Process-level tests of the telemetry surface: `--trace` writes to
//! stderr without perturbing stdout, `--quiet` silences the informational
//! stderr stats, `--stats-json` emits the machine-readable run record,
//! and `bench-report --trace=FILE` ingests a JSON trace.

use std::path::PathBuf;
use std::process::{Command, Output};

fn tiscc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tiscc")).args(args).output().expect("spawn tiscc")
}

fn program(stem: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/programs")
        .join(format!("{stem}.tql"))
        .to_str()
        .unwrap()
        .to_string()
}

/// `--trace` (tree and json) must leave stdout byte-identical to an
/// untraced run; the trace itself goes to stderr.
#[test]
fn trace_leaves_stdout_byte_identical() {
    let adder = program("adder");
    let plain = tiscc(&["estimate", &adder, "--budget", "1e-3", "--mode", "analytic"]);
    assert!(plain.status.success());
    for format in ["--trace", "--trace=tree", "--trace=json"] {
        let traced = tiscc(&["estimate", &adder, "--budget", "1e-3", "--mode", "analytic", format]);
        assert!(traced.status.success(), "{format} failed");
        assert_eq!(traced.stdout, plain.stdout, "{format} changed stdout");
        assert!(!traced.stderr.is_empty(), "{format} wrote no trace");
    }
    let tree = tiscc(&["estimate", &adder, "--budget", "1e-3", "--trace=tree"]);
    let stderr = String::from_utf8_lossy(&tree.stderr);
    assert!(stderr.starts_with("trace: total "), "unexpected tree header: {stderr}");
    for needle in ["estimate", "parse", "schedule", "compile", "counters:"] {
        assert!(stderr.contains(needle), "tree missing {needle:?}: {stderr}");
    }
}

/// An unknown trace format is a usage error (exit 2), not a silent
/// fallback.
#[test]
fn unknown_trace_format_exits_2() {
    let out = tiscc(&["estimate", &program("bell"), "--trace=xml"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("tree") && stderr.contains("json"), "{stderr}");
}

/// `sweep --quiet` silences every informational stderr line while leaving
/// the CSV on stdout untouched.
#[test]
fn sweep_quiet_silences_stderr_but_not_stdout() {
    let loud = tiscc(&["sweep", "--dmax", "2", "--mode", "analytic"]);
    let quiet = tiscc(&["sweep", "--dmax", "2", "--mode", "analytic", "--quiet"]);
    assert!(loud.status.success() && quiet.status.success());
    assert_eq!(loud.stdout, quiet.stdout);
    assert!(String::from_utf8_lossy(&loud.stderr).contains("cold sweep"));
    assert!(quiet.stderr.is_empty(), "{:?}", String::from_utf8_lossy(&quiet.stderr));
}

/// `frontier --quiet --stats-json F` runs silently and leaves a stats
/// document embedding the span tree.
#[test]
fn frontier_stats_json_embeds_the_trace() {
    let dir = std::env::temp_dir().join(format!("tiscc-stats-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let stats_path = dir.join("stats.json");
    let out = tiscc(&[
        "frontier",
        &program("bell"),
        "--dmin",
        "3",
        "--dmax",
        "3",
        "--mode",
        "analytic",
        "--quiet",
        "--stats-json",
        stats_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(out.stderr.is_empty(), "{:?}", String::from_utf8_lossy(&out.stderr));
    let stats = std::fs::read_to_string(&stats_path).unwrap();
    for needle in [
        "\"schema\":\"tiscc.frontier-stats.v1\"",
        "\"program\":\"bell\"",
        "\"jobs\":",
        "\"elapsed_s\":",
        "\"trace\":{\"schema\":\"tiscc.trace.v1\"",
    ] {
        assert!(stats.contains(needle), "stats missing {needle:?}: {stats}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// `bench-report --trace=FILE` turns a JSON trace into `trace/<path>`
/// pseudo-benchmarks; a bare `--trace` is a usage error.
#[test]
fn bench_report_ingests_a_json_trace() {
    let traced = tiscc(&["estimate", &program("bell"), "--budget", "1e-3", "--trace=json"]);
    assert!(traced.status.success());
    let dir = std::env::temp_dir().join(format!("tiscc-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("trace.json");
    std::fs::write(&trace_path, &traced.stderr).unwrap();
    let trace_arg = format!("--trace={}", trace_path.to_str().unwrap());

    let report =
        tiscc(&["bench-report", &trace_arg, "--out", dir.join("cur.json").to_str().unwrap()]);
    assert!(report.status.success(), "{}", String::from_utf8_lossy(&report.stderr));
    let stdout = String::from_utf8_lossy(&report.stdout);
    assert!(stdout.contains("benchmark measurement(s)"), "{stdout}");
    let written = std::fs::read_to_string(dir.join("cur.json")).unwrap();
    assert!(written.contains("trace/estimate/compile"), "{written}");

    // Filtering keeps only matching ids; an empty selection is an error.
    let filtered = tiscc(&["bench-report", &trace_arg, "--filter", "no-such-phase"]);
    assert_eq!(filtered.status.code(), Some(1));

    // A bare --trace (no =FILE) cannot name a file: usage error.
    let bare = tiscc(&["bench-report", "--trace"]);
    assert_eq!(bare.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&bare.stderr).contains("--trace=FILE"));
    std::fs::remove_dir_all(&dir).ok();
}

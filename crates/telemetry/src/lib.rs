//! Pipeline telemetry for the TISCC stack: structured spans, counters and
//! per-phase timing, with zero external dependencies (the workspace is
//! offline/vendored).
//!
//! The design splits cleanly into three layers:
//!
//! * [`Telemetry`] — a cheap cloneable handle that is either **off** (the
//!   default: every call is an `Option` check and an immediate return, so
//!   instrumented hot paths cost nothing measurable) or **enabled**
//!   (recording into a shared, thread-safe recorder). Pipeline functions
//!   take a parent [`Span`] and never care which one they got.
//! * [`Span`] — one timed phase. Spans form an explicit tree: a child is
//!   opened from its parent (`parent.child("compile")`), so concurrent
//!   phases on rayon workers can never tangle an implicit thread-local
//!   stack. A span closes when dropped (or explicitly via
//!   [`Span::finish`]); timing uses the monotonic [`Instant`] clock.
//!   Counters ([`Telemetry::add`]) and gauges ([`Telemetry::gauge`]) are
//!   typed registries keyed by dotted names (`compile.cache_hits`).
//! * [`Sink`] — how a finished [`TraceReport`] leaves the process: the
//!   near-zero-overhead [`NoopSink`] default, the human-readable
//!   [`TreeSink`], or the [`JsonSink`] flat-JSON emitter whose output
//!   round-trips through [`trace_from_json`] (the same document `tiscc
//!   bench-report --trace` ingests).
//!
//! ```
//! use tiscc_telemetry::{Telemetry, TraceFormat};
//!
//! let tel = Telemetry::new_enabled();
//! let root = tel.root("estimate");
//! {
//!     let parse = root.child("parse");
//!     parse.add("parse.instructions", 12);
//! } // drop closes the span
//! root.finish();
//!
//! let report = tel.snapshot().unwrap();
//! assert_eq!(report.spans.len(), 2);
//! let json = TraceFormat::Json.sink().render(&report).unwrap();
//! let back = tiscc_telemetry::trace_from_json(&json).unwrap();
//! assert_eq!(back.counters, report.counters);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod json;
mod render;

pub use json::trace_from_json;

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Hard cap on recorded spans per [`Telemetry`] handle. Long-lived
/// recorders (the `tiscc serve` loop keeps one for the whole session) stop
/// recording *spans* past the cap — counters and gauges keep counting —
/// so memory stays bounded no matter how many requests arrive.
pub const MAX_SPANS: usize = 16_384;

/// One recorded phase: its name, its parent (an index into
/// [`TraceReport::spans`], `None` for roots), and its monotonic timing in
/// microseconds since the recorder's epoch.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// The phase name (`parse`, `compile`, …).
    pub name: String,
    /// Index of the parent span, `None` for a root.
    pub parent: Option<usize>,
    /// Microseconds from the recorder's epoch to the span's open.
    pub start_us: f64,
    /// The span's duration in microseconds; `None` while still open.
    pub duration_us: Option<f64>,
}

struct Recorder {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
}

impl Recorder {
    fn new() -> Recorder {
        Recorder {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
        }
    }

    fn elapsed_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }

    fn open(&self, name: &str, parent: Option<usize>) -> Option<usize> {
        let start_us = self.elapsed_us();
        let mut spans = self.spans.lock().expect("telemetry spans poisoned");
        if spans.len() >= MAX_SPANS {
            return None;
        }
        spans.push(SpanRecord { name: name.to_string(), parent, start_us, duration_us: None });
        Some(spans.len() - 1)
    }

    fn close(&self, id: usize) {
        let now_us = self.elapsed_us();
        let mut spans = self.spans.lock().expect("telemetry spans poisoned");
        if let Some(record) = spans.get_mut(id) {
            if record.duration_us.is_none() {
                record.duration_us = Some(now_us - record.start_us);
            }
        }
    }
}

/// The telemetry handle threaded through the pipeline. Cloning is cheap
/// (an `Arc` bump when enabled, a copy of `None` when off); handles are
/// `Send + Sync` so rayon workers can count into the same registries.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Recorder>>,
}

impl Telemetry {
    /// The no-op handle: records nothing, costs (almost) nothing. This is
    /// the default every untraced pipeline entry point runs under.
    pub fn off() -> Telemetry {
        Telemetry { inner: None }
    }

    /// A recording handle with a fresh epoch and empty registries.
    pub fn new_enabled() -> Telemetry {
        Telemetry { inner: Some(Arc::new(Recorder::new())) }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a root span (no parent). The span closes on drop or
    /// [`Span::finish`].
    pub fn root(&self, name: &str) -> Span {
        let id = self.inner.as_ref().and_then(|r| r.open(name, None));
        Span { tel: self.clone(), id }
    }

    /// Adds `n` to the named counter (created at zero on first use).
    pub fn add(&self, counter: &str, n: u64) {
        if let Some(r) = &self.inner {
            let mut counters = r.counters.lock().expect("telemetry counters poisoned");
            *counters.entry(counter.to_string()).or_insert(0) += n;
        }
    }

    /// Sets the named gauge to `value` (last write wins).
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(r) = &self.inner {
            let mut gauges = r.gauges.lock().expect("telemetry gauges poisoned");
            gauges.insert(name.to_string(), value);
        }
    }

    /// The current value of a counter (0 when off or never written).
    pub fn counter(&self, name: &str) -> u64 {
        match &self.inner {
            None => 0,
            Some(r) => {
                *r.counters.lock().expect("telemetry counters poisoned").get(name).unwrap_or(&0)
            }
        }
    }

    /// Snapshots the recorder into a [`TraceReport`]; `None` when off.
    /// Open spans appear with `duration_us: None`.
    pub fn snapshot(&self) -> Option<TraceReport> {
        let r = self.inner.as_ref()?;
        let spans = r.spans.lock().expect("telemetry spans poisoned").clone();
        let counters =
            r.counters.lock().expect("telemetry counters poisoned").clone().into_iter().collect();
        let gauges =
            r.gauges.lock().expect("telemetry gauges poisoned").clone().into_iter().collect();
        Some(TraceReport { total_us: r.elapsed_us(), spans, counters, gauges })
    }
}

/// A live span: a handle to one open [`SpanRecord`]. Closing happens on
/// drop, so the natural pattern is a scoped binding around the phase.
/// Spans opened from an off [`Telemetry`] (or past [`MAX_SPANS`]) are
/// inert and cost only the `Option` check.
pub struct Span {
    tel: Telemetry,
    id: Option<usize>,
}

impl Span {
    /// Opens a child span under this one.
    pub fn child(&self, name: &str) -> Span {
        let id = self.tel.inner.as_ref().and_then(|r| r.open(name, self.id));
        Span { tel: self.tel.clone(), id }
    }

    /// Adds `n` to the named counter on this span's telemetry handle.
    pub fn add(&self, counter: &str, n: u64) {
        self.tel.add(counter, n);
    }

    /// The telemetry handle this span records into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Closes the span now instead of at end of scope.
    pub fn finish(mut self) {
        self.close();
    }

    fn close(&mut self) {
        if let (Some(id), Some(r)) = (self.id.take(), self.tel.inner.as_ref()) {
            r.close(id);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close();
    }
}

/// A snapshot of a recorder: every span (parent-linked, in open order),
/// every counter and gauge (sorted by name), and the elapsed time since
/// the recorder's epoch.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceReport {
    /// Microseconds from the recorder's epoch to the snapshot.
    pub total_us: f64,
    /// Recorded spans, in open order; parents precede children.
    pub spans: Vec<SpanRecord>,
    /// Counter registry, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge registry, sorted by name.
    pub gauges: Vec<(String, f64)>,
}

impl TraceReport {
    /// The slash-joined ancestry path of span `index`
    /// (`estimate/compile`).
    pub fn path(&self, index: usize) -> String {
        let mut parts = Vec::new();
        let mut at = Some(index);
        while let Some(i) = at {
            parts.push(self.spans[i].name.as_str());
            at = self.spans[i].parent;
        }
        parts.reverse();
        parts.join("/")
    }

    /// Closed-span durations aggregated by path, in first-seen order:
    /// `(path, total_us, calls)`. Repeated phases (a warm sweep re-running
    /// `sweep/compile`) sum their durations and count their calls — the
    /// stable ids `tiscc bench-report --trace` baselines against.
    pub fn phase_totals(&self) -> Vec<(String, f64, usize)> {
        let mut totals: Vec<(String, f64, usize)> = Vec::new();
        for (i, span) in self.spans.iter().enumerate() {
            let Some(duration_us) = span.duration_us else { continue };
            let path = self.path(i);
            match totals.iter_mut().find(|(p, _, _)| *p == path) {
                Some((_, total, calls)) => {
                    *total += duration_us;
                    *calls += 1;
                }
                None => totals.push((path, duration_us, 1)),
            }
        }
        totals
    }

    /// The names of every span whose parent is `None`.
    pub fn roots(&self) -> Vec<&str> {
        self.spans.iter().filter(|s| s.parent.is_none()).map(|s| s.name.as_str()).collect()
    }
}

/// A consumer of finished traces. Sinks render; the caller decides where
/// the text goes (the CLI writes to stderr so stdout stays byte-identical
/// with tracing off).
pub trait Sink {
    /// Renders the trace, or `None` when the sink discards it.
    fn render(&self, trace: &TraceReport) -> Option<String>;
}

/// The default sink: discards every trace.
pub struct NoopSink;

impl Sink for NoopSink {
    fn render(&self, _trace: &TraceReport) -> Option<String> {
        None
    }
}

/// Renders the span tree, counters and gauges as aligned human-readable
/// text (the `--trace=tree` format).
pub struct TreeSink;

impl Sink for TreeSink {
    fn render(&self, trace: &TraceReport) -> Option<String> {
        Some(render::render_tree(trace))
    }
}

/// Renders the trace as one line of `tiscc.trace.v1` JSON (the
/// `--trace=json` format). Nested span structure is carried by flat
/// `parent` indices and slash-joined `path` strings, matching the flat
/// style of the serve protocol; [`trace_from_json`] parses it back.
pub struct JsonSink;

impl Sink for JsonSink {
    fn render(&self, trace: &TraceReport) -> Option<String> {
        Some(render::render_json(trace))
    }
}

/// The trace output format selected by `--trace[=json|tree]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFormat {
    /// Human-readable span tree (`--trace` or `--trace=tree`).
    Tree,
    /// One-line `tiscc.trace.v1` JSON (`--trace=json`).
    Json,
}

impl TraceFormat {
    /// Parses a `--trace` flag value: the empty string (a bare `--trace`)
    /// and `tree` select [`TraceFormat::Tree`]; `json` selects
    /// [`TraceFormat::Json`].
    pub fn parse(value: &str) -> Result<TraceFormat, String> {
        match value {
            "" | "tree" => Ok(TraceFormat::Tree),
            "json" => Ok(TraceFormat::Json),
            other => Err(format!("unknown trace format {other:?} (expected 'tree' or 'json')")),
        }
    }

    /// The sink implementing this format.
    pub fn sink(&self) -> Box<dyn Sink> {
        match self {
            TraceFormat::Tree => Box::new(TreeSink),
            TraceFormat::Json => Box::new(JsonSink),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_records_nothing_and_snapshots_none() {
        let tel = Telemetry::off();
        assert!(!tel.is_enabled());
        let root = tel.root("estimate");
        let child = root.child("parse");
        child.add("parse.instructions", 3);
        tel.gauge("g", 1.0);
        drop(child);
        root.finish();
        assert_eq!(tel.counter("parse.instructions"), 0);
        assert!(tel.snapshot().is_none());
    }

    #[test]
    fn spans_form_a_parent_linked_tree() {
        let tel = Telemetry::new_enabled();
        let root = tel.root("estimate");
        {
            let compile = root.child("compile");
            let _inner = compile.child("capture");
        }
        root.finish();
        let report = tel.snapshot().unwrap();
        assert_eq!(report.spans.len(), 3);
        assert_eq!(report.spans[0].parent, None);
        assert_eq!(report.spans[1].parent, Some(0));
        assert_eq!(report.spans[2].parent, Some(1));
        assert_eq!(report.path(2), "estimate/compile/capture");
        assert_eq!(report.roots(), vec!["estimate"]);
        for span in &report.spans {
            let d = span.duration_us.expect("all spans closed");
            assert!(d >= 0.0);
        }
        // Children open after and close before their parent.
        let root_span = &report.spans[0];
        let child = &report.spans[1];
        assert!(child.start_us >= root_span.start_us);
        assert!(
            child.start_us + child.duration_us.unwrap()
                <= root_span.start_us + root_span.duration_us.unwrap() + 1e-6
        );
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let tel = Telemetry::new_enabled();
        tel.add("cache.hits", 2);
        tel.add("cache.hits", 3);
        tel.gauge("threads", 4.0);
        tel.gauge("threads", 8.0);
        assert_eq!(tel.counter("cache.hits"), 5);
        assert_eq!(tel.counter("missing"), 0);
        let report = tel.snapshot().unwrap();
        assert_eq!(report.counters, vec![("cache.hits".to_string(), 5)]);
        assert_eq!(report.gauges, vec![("threads".to_string(), 8.0)]);
    }

    #[test]
    fn open_spans_snapshot_with_no_duration() {
        let tel = Telemetry::new_enabled();
        let root = tel.root("serve");
        let report = tel.snapshot().unwrap();
        assert_eq!(report.spans[0].duration_us, None);
        assert!(report.phase_totals().is_empty(), "open spans have no phase total");
        root.finish();
        let report = tel.snapshot().unwrap();
        assert!(report.spans[0].duration_us.is_some());
    }

    #[test]
    fn phase_totals_aggregate_repeated_paths_in_first_seen_order() {
        let tel = Telemetry::new_enabled();
        let root = tel.root("sweep");
        root.child("compile").finish();
        root.child("assemble").finish();
        root.child("compile").finish();
        root.finish();
        let totals = tel.snapshot().unwrap().phase_totals();
        let ids: Vec<&str> = totals.iter().map(|(p, _, _)| p.as_str()).collect();
        assert_eq!(ids, vec!["sweep", "sweep/compile", "sweep/assemble"]);
        let compile = totals.iter().find(|(p, _, _)| p == "sweep/compile").unwrap();
        assert_eq!(compile.2, 2, "two compile calls aggregate");
    }

    #[test]
    fn span_cap_bounds_memory_but_not_counters() {
        let tel = Telemetry::new_enabled();
        for _ in 0..(MAX_SPANS + 10) {
            tel.root("r").finish();
            tel.add("n", 1);
        }
        let report = tel.snapshot().unwrap();
        assert_eq!(report.spans.len(), MAX_SPANS);
        assert_eq!(tel.counter("n"), (MAX_SPANS + 10) as u64);
    }

    #[test]
    fn sinks_render_or_discard() {
        let tel = Telemetry::new_enabled();
        tel.root("estimate").finish();
        let report = tel.snapshot().unwrap();
        assert!(NoopSink.render(&report).is_none());
        let tree = TreeSink.render(&report).unwrap();
        assert!(tree.contains("estimate"), "{tree}");
        let json = JsonSink.render(&report).unwrap();
        assert!(json.contains("\"tiscc.trace.v1\""), "{json}");
        assert_eq!(TraceFormat::parse("").unwrap(), TraceFormat::Tree);
        assert_eq!(TraceFormat::parse("tree").unwrap(), TraceFormat::Tree);
        assert_eq!(TraceFormat::parse("json").unwrap(), TraceFormat::Json);
        assert!(TraceFormat::parse("xml").is_err());
    }

    #[test]
    fn handles_are_send_and_sync() {
        fn check<T: Send + Sync>() {}
        check::<Telemetry>();
        check::<Span>();
        let tel = Telemetry::new_enabled();
        let root = tel.root("parallel");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let root = &root;
                scope.spawn(move || {
                    let span = root.child("worker");
                    span.add("work", 1);
                });
            }
        });
        root.finish();
        assert_eq!(tel.counter("work"), 4);
    }
}

//! Renderers behind [`TreeSink`](crate::TreeSink) and
//! [`JsonSink`](crate::JsonSink).

use crate::TraceReport;

/// Formats a microsecond duration adaptively (µs / ms / s).
fn format_us(us: f64) -> String {
    if us >= 1e6 {
        format!("{:.3} s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.3} ms", us / 1e3)
    } else {
        format!("{us:.1} us")
    }
}

/// Renders the human-readable span tree with counter and gauge sections.
pub(crate) fn render_tree(trace: &TraceReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("trace: total {}\n", format_us(trace.total_us)));

    // children[i] lists span indices whose parent is i; roots live apart.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); trace.spans.len()];
    let mut roots: Vec<usize> = Vec::new();
    for (i, span) in trace.spans.iter().enumerate() {
        match span.parent {
            Some(p) => children[p].push(i),
            None => roots.push(i),
        }
    }

    // Depth-first with explicit stack of (index, prefix, is_last).
    fn visit(
        out: &mut String,
        trace: &TraceReport,
        children: &[Vec<usize>],
        index: usize,
        prefix: &str,
        is_last: bool,
    ) {
        let span = &trace.spans[index];
        let connector = if is_last { "└─ " } else { "├─ " };
        let duration = match span.duration_us {
            Some(us) => format_us(us),
            None => "(open)".to_string(),
        };
        out.push_str(&format!("{prefix}{connector}{:<24} {duration:>12}\n", span.name));
        let child_prefix = format!("{prefix}{}", if is_last { "   " } else { "│  " });
        let kids = &children[index];
        for (k, &child) in kids.iter().enumerate() {
            visit(out, trace, children, child, &child_prefix, k + 1 == kids.len());
        }
    }

    for (r, &root) in roots.iter().enumerate() {
        visit(&mut out, trace, &children, root, "", r + 1 == roots.len());
    }

    if !trace.counters.is_empty() {
        out.push_str("counters:\n");
        let width = trace.counters.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, value) in &trace.counters {
            out.push_str(&format!("  {name:<width$}  {value}\n"));
        }
    }
    if !trace.gauges.is_empty() {
        out.push_str("gauges:\n");
        let width = trace.gauges.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, value) in &trace.gauges {
            out.push_str(&format!("  {name:<width$}  {value:?}\n"));
        }
    }
    out
}

/// Emits an `f64` the way the serve protocol does: shortest round-trip
/// representation, `null` for non-finite values.
pub(crate) fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value:?}")
    } else {
        "null".to_string()
    }
}

/// Escapes and quotes a JSON string.
pub(crate) fn json_string(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders the one-line `tiscc.trace.v1` JSON document.
pub(crate) fn render_json(trace: &TraceReport) -> String {
    let mut out = String::from("{\"schema\":\"tiscc.trace.v1\"");
    out.push_str(&format!(",\"total_us\":{}", json_f64(trace.total_us)));

    out.push_str(",\"spans\":[");
    for (i, span) in trace.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":{},\"path\":{},\"parent\":{},\"start_us\":{},\"duration_us\":{}}}",
            json_string(&span.name),
            json_string(&trace.path(i)),
            match span.parent {
                Some(p) => p.to_string(),
                None => "null".to_string(),
            },
            json_f64(span.start_us),
            match span.duration_us {
                Some(us) => json_f64(us),
                None => "null".to_string(),
            },
        ));
    }
    out.push(']');

    out.push_str(",\"counters\":[");
    for (i, (name, value)) in trace.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"name\":{},\"value\":{value}}}", json_string(name)));
    }
    out.push(']');

    out.push_str(",\"gauges\":[");
    for (i, (name, value)) in trace.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"name\":{},\"value\":{}}}", json_string(name), json_f64(*value)));
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    fn sample() -> TraceReport {
        let tel = Telemetry::new_enabled();
        let root = tel.root("estimate");
        root.child("parse").finish();
        {
            let compile = root.child("compile");
            compile.child("capture").finish();
        }
        root.finish();
        tel.add("compile.cache_hits", 7);
        tel.gauge("threads", 4.0);
        tel.snapshot().unwrap()
    }

    #[test]
    fn tree_renders_nesting_and_registries() {
        let tree = render_tree(&sample());
        assert!(tree.starts_with("trace: total "), "{tree}");
        assert!(tree.contains("└─ estimate"), "{tree}");
        assert!(tree.contains("├─ parse"), "{tree}");
        assert!(tree.contains("└─ compile"), "{tree}");
        assert!(tree.contains("└─ capture"), "{tree}");
        assert!(tree.contains("compile.cache_hits  7"), "{tree}");
        assert!(tree.contains("threads  4.0"), "{tree}");
        // capture is nested two levels deep under estimate/compile.
        let capture_line = tree.lines().find(|l| l.contains("capture")).unwrap();
        assert!(capture_line.starts_with("   "), "{capture_line:?}");
    }

    #[test]
    fn tree_marks_open_spans() {
        let tel = Telemetry::new_enabled();
        let _root = tel.root("serve");
        let tree = render_tree(&tel.snapshot().unwrap());
        assert!(tree.contains("(open)"), "{tree}");
    }

    #[test]
    fn format_us_adapts_units() {
        assert_eq!(format_us(12.5), "12.5 us");
        assert_eq!(format_us(1500.0), "1.500 ms");
        assert_eq!(format_us(2_500_000.0), "2.500 s");
    }

    #[test]
    fn json_is_single_line_with_schema_and_paths() {
        let json = render_json(&sample());
        assert!(json.ends_with('\n'));
        assert_eq!(json.trim_end().lines().count(), 1);
        assert!(json.contains("\"schema\":\"tiscc.trace.v1\""), "{json}");
        assert!(json.contains("\"path\":\"estimate/compile/capture\""), "{json}");
        assert!(json.contains("\"parent\":null"), "{json}");
        assert!(json.contains("{\"name\":\"compile.cache_hits\",\"value\":7}"), "{json}");
    }

    #[test]
    fn json_escapes_and_nulls() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }
}

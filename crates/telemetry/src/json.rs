//! A minimal recursive JSON reader for `tiscc.trace.v1` documents.
//!
//! The serve protocol deliberately rejects nesting, but a trace document
//! carries arrays of span objects, so this module hosts its own small
//! recursive parser instead of reusing the flat one. It only needs to
//! round-trip what [`JsonSink`](crate::JsonSink) emits.

use crate::{SpanRecord, TraceReport};

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    fn error(&self, message: &str) -> String {
        format!("trace json: {message} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {word}")))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>().map(Value::Num).map_err(|_| self.error("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.error("bad \\u hex"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u hex"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one full UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a `tiscc.trace.v1` JSON document (as emitted by
/// [`JsonSink`](crate::JsonSink)) back into a [`TraceReport`].
pub fn trace_from_json(text: &str) -> Result<TraceReport, String> {
    let mut parser = Parser::new(text);
    let root = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing data after document"));
    }

    let schema =
        root.get("schema").and_then(Value::as_str).ok_or("trace json: missing \"schema\" field")?;
    if schema != "tiscc.trace.v1" {
        return Err(format!("trace json: unsupported schema {schema:?}"));
    }
    let total_us = root
        .get("total_us")
        .and_then(Value::as_f64)
        .ok_or("trace json: missing \"total_us\" field")?;

    let mut spans = Vec::new();
    for (i, item) in root
        .get("spans")
        .and_then(Value::as_arr)
        .ok_or("trace json: missing \"spans\" array")?
        .iter()
        .enumerate()
    {
        let name = item
            .get("name")
            .and_then(Value::as_str)
            .ok_or(format!("trace json: span {i} missing \"name\""))?
            .to_string();
        let parent = match item.get("parent") {
            Some(Value::Null) | None => None,
            Some(v) => {
                let p = v.as_f64().ok_or(format!("trace json: span {i} bad \"parent\""))? as usize;
                if p >= i {
                    return Err(format!("trace json: span {i} parent {p} out of order"));
                }
                Some(p)
            }
        };
        let start_us = item
            .get("start_us")
            .and_then(Value::as_f64)
            .ok_or(format!("trace json: span {i} missing \"start_us\""))?;
        let duration_us = match item.get("duration_us") {
            Some(Value::Null) | None => None,
            Some(v) => Some(v.as_f64().ok_or(format!("trace json: span {i} bad \"duration_us\""))?),
        };
        spans.push(SpanRecord { name, parent, start_us, duration_us });
    }

    let mut counters = Vec::new();
    if let Some(items) = root.get("counters").and_then(Value::as_arr) {
        for item in items {
            let name = item
                .get("name")
                .and_then(Value::as_str)
                .ok_or("trace json: counter missing \"name\"")?;
            let value = item
                .get("value")
                .and_then(Value::as_f64)
                .ok_or("trace json: counter missing \"value\"")?;
            counters.push((name.to_string(), value as u64));
        }
    }

    let mut gauges = Vec::new();
    if let Some(items) = root.get("gauges").and_then(Value::as_arr) {
        for item in items {
            let name = item
                .get("name")
                .and_then(Value::as_str)
                .ok_or("trace json: gauge missing \"name\"")?;
            let value = item
                .get("value")
                .and_then(Value::as_f64)
                .ok_or("trace json: gauge missing \"value\"")?;
            gauges.push((name.to_string(), value));
        }
    }

    Ok(TraceReport { total_us, spans, counters, gauges })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{JsonSink, Sink, Telemetry};

    #[test]
    fn round_trips_an_emitted_trace() {
        let tel = Telemetry::new_enabled();
        let root = tel.root("estimate");
        root.child("parse").finish();
        root.child("compile").finish();
        root.finish();
        tel.add("compile.cache_hits", 3);
        tel.gauge("threads", 8.0);
        let report = tel.snapshot().unwrap();
        let json = JsonSink.render(&report).unwrap();
        let back = trace_from_json(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn round_trips_open_spans_and_escapes() {
        let tel = Telemetry::new_enabled();
        let _open = tel.root("serve \"v1\"\n");
        let report = tel.snapshot().unwrap();
        let json = JsonSink.render(&report).unwrap();
        let back = trace_from_json(&json).unwrap();
        assert_eq!(back.spans[0].name, "serve \"v1\"\n");
        assert_eq!(back.spans[0].duration_us, None);
    }

    #[test]
    fn rejects_bad_documents() {
        assert!(trace_from_json("").is_err());
        assert!(trace_from_json("not json").is_err());
        assert!(trace_from_json("{\"schema\":\"other\"}").is_err());
        assert!(trace_from_json("{\"schema\":\"tiscc.trace.v1\"}").is_err());
        assert!(trace_from_json(
            "{\"schema\":\"tiscc.trace.v1\",\"total_us\":1.0,\"spans\":[]} trailing"
        )
        .is_err());
        // A span whose parent index is not strictly earlier is rejected.
        assert!(trace_from_json(
            "{\"schema\":\"tiscc.trace.v1\",\"total_us\":1.0,\
             \"spans\":[{\"name\":\"a\",\"parent\":0,\"start_us\":0.0,\"duration_us\":1.0}]}"
        )
        .is_err());
    }

    #[test]
    fn parses_unicode_escapes() {
        let json = "{\"schema\":\"tiscc.trace.v1\",\"total_us\":1.0,\
                    \"spans\":[{\"name\":\"\\u0041\",\"parent\":null,\
                    \"start_us\":0.0,\"duration_us\":null}],\"counters\":[],\"gauges\":[]}";
        let report = trace_from_json(json).unwrap();
        assert_eq!(report.spans[0].name, "A");
    }
}

//! Canonical logical programs.
//!
//! These mirror the `.tql` files bundled under `examples/programs/` in the
//! repository root; the integration tests assert that the two stay in sync.

use crate::ir::LogicalProgram;

/// Logical Bell-pair preparation on two tiles: `|+⟩ ⊗ |0⟩` followed by a
/// joint ZZ measurement (paper Table 3, Bell State Preparation, expressed
/// at the program level).
pub fn bell_pair() -> LogicalProgram {
    let mut p = LogicalProgram::new("bell");
    let a = p.add_qubit("a").expect("fresh program");
    let b = p.add_qubit("b").expect("fresh program");
    p.prepare_x(a).expect("valid");
    p.prepare_z(b).expect("valid");
    p.measure_zz(a, b).expect("valid");
    p
}

/// Logical state teleportation: a Bell pair between `anc` and `dst`, a
/// joint XX measurement of `src` against `anc`, destructive read-out of
/// `src` and `anc`, and the (unconditionally accounted) Pauli frame
/// corrections on `dst`.
pub fn teleportation() -> LogicalProgram {
    let mut p = LogicalProgram::new("teleport");
    let src = p.add_qubit("src").expect("fresh program");
    let anc = p.add_qubit("anc").expect("fresh program");
    let dst = p.add_qubit("dst").expect("fresh program");
    p.prepare_z(src).expect("valid");
    p.prepare_x(anc).expect("valid");
    p.prepare_z(dst).expect("valid");
    // Bell pair between the ancilla and the destination.
    p.measure_zz(anc, dst).expect("valid");
    // Entangle the source with the ancilla, then read both out.
    p.measure_xx(src, anc).expect("valid");
    p.measure_z(src).expect("valid");
    p.measure_z(anc).expect("valid");
    // Pauli frame corrections (worst case accounted unconditionally).
    p.pauli_x(dst).expect("valid");
    p.pauli_z(dst).expect("valid");
    p
}

/// The T-layer of a `width`-bit adder: every data qubit receives a T gate
/// by magic-state teleportation — inject |T⟩ on an ancilla, merge it with
/// the data qubit through a joint ZZ measurement, read the ancilla out in
/// the X basis, and account the Clifford correction.
///
/// Data and ancilla qubits are declared interleaved (`d0 t0 d1 t1 …`) so
/// the declaration-order patch allocator places each pair on adjacent
/// tiles and the scheduler can run every teleportation in parallel.
pub fn adder_t_layer(width: usize) -> LogicalProgram {
    let mut p = LogicalProgram::new(format!("adder-t-layer-{width}"));
    let pairs: Vec<_> = (0..width)
        .map(|i| {
            let d = p.add_qubit(format!("d{i}")).expect("fresh program");
            let t = p.add_qubit(format!("t{i}")).expect("fresh program");
            (d, t)
        })
        .collect();
    for &(d, _) in &pairs {
        p.prepare_z(d).expect("valid");
    }
    for &(_, t) in &pairs {
        p.inject_t(t).expect("valid");
    }
    for &(d, t) in &pairs {
        p.measure_zz(d, t).expect("valid");
    }
    for &(_, t) in &pairs {
        p.measure_x(t).expect("valid");
    }
    for &(d, _) in &pairs {
        p.pauli_z(d).expect("valid");
    }
    p
}

/// A 2-bit ripple-carry adder skeleton at the lattice-surgery level: the
/// `a` and `b` registers are cross-merged (the outer `a0·b1` surgery
/// nests over the inner `a1·b0` one), carries propagate into the `c`
/// ancillas through a second pair of nested XX merges, the ancillas are
/// read out and the Pauli frame is corrected.
///
/// The nesting is deliberate: on a dense single data row the outer
/// merge's corridor encloses the inner operands' only ancilla access, so
/// the row layout stalls where the checkerboard routes both merges
/// disjointly — the canonical congestion workload for comparing
/// [`crate::LayoutSpec`] strategies.
pub fn ripple_adder() -> LogicalProgram {
    let mut p = LogicalProgram::new("adder");
    let a0 = p.add_qubit("a0").expect("fresh program");
    let a1 = p.add_qubit("a1").expect("fresh program");
    let b0 = p.add_qubit("b0").expect("fresh program");
    let b1 = p.add_qubit("b1").expect("fresh program");
    let c0 = p.add_qubit("c0").expect("fresh program");
    let c1 = p.add_qubit("c1").expect("fresh program");
    p.prepare_z(a0).expect("valid");
    p.prepare_z(a1).expect("valid");
    p.prepare_x(b0).expect("valid");
    p.prepare_x(b1).expect("valid");
    p.prepare_z(c0).expect("valid");
    p.prepare_z(c1).expect("valid");
    // Sum layer: nested cross-register ZZ surgeries (outer first).
    p.measure_zz(a0, b1).expect("valid");
    p.measure_zz(a1, b0).expect("valid");
    // Carry layer: nested XX surgeries into the carry ancillas.
    p.measure_xx(a0, c1).expect("valid");
    p.measure_xx(a1, c0).expect("valid");
    // Read the b register and the carries out; correct the frame.
    p.measure_x(b0).expect("valid");
    p.measure_x(b1).expect("valid");
    p.measure_z(c0).expect("valid");
    p.measure_z(c1).expect("valid");
    p.pauli_x(a0).expect("valid");
    p.pauli_z(a1).expect("valid");
    p.measure_z(a0).expect("valid");
    p.measure_z(a1).expect("valid");
    p
}

/// Every canonical program, paired with the `examples/programs/` file stem
/// it is bundled as.
pub fn all() -> Vec<(&'static str, LogicalProgram)> {
    vec![
        ("bell", bell_pair()),
        ("teleport", teleportation()),
        ("adder_t_layer", adder_t_layer(4)),
        ("adder", ripple_adder()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiscc_core::instruction::Instruction;

    #[test]
    fn canonical_programs_validate() {
        for (name, p) in all() {
            p.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!p.is_empty(), "{name}");
        }
    }

    #[test]
    fn teleportation_has_expected_shape() {
        let p = teleportation();
        assert_eq!(p.qubit_count(), 3);
        assert_eq!(p.len(), 9);
        assert_eq!(p.max_live_qubits(), 3);
        let joints = p
            .instructions()
            .iter()
            .filter(|i| matches!(i.instruction, Instruction::MeasureXX | Instruction::MeasureZZ))
            .count();
        assert_eq!(joints, 2);
    }

    #[test]
    fn adder_t_layer_scales_with_width() {
        let p = adder_t_layer(4);
        assert_eq!(p.qubit_count(), 8);
        assert_eq!(p.len(), 5 * 4);
        p.validate().unwrap();
        assert_eq!(p.max_live_qubits(), 8);
    }
}

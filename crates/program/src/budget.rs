//! The per-step logical error model and error-budget distance selection.
//!
//! The estimator spends a *logical error budget* across the program: every
//! allocated tile accrues one unit of logical failure probability per
//! logical time step (a *patch-step*), following the standard
//! sub-threshold scaling ansatz
//!
//! ```text
//! p_L(d) = A · (p / p_th) ^ ⌈d / 2⌉
//! ```
//!
//! with physical error rate `p`, threshold `p_th` and prefactor `A`
//! (Fowler et al.; the Azure QRE uses the same shape; `⌈d/2⌉` is the
//! number of physical faults a distance-`d` code cannot correct, also
//! written `⌊(d+1)/2⌋`). The ansatz is only meaningful at **odd**
//! distances: an even `d` adds a qubit row over `d − 1` but corrects no
//! additional fault, so its exponent — and hence its predicted `p_L` —
//! collapses onto `d − 1`'s. Distance selection therefore walks odd `d`
//! upward from 3 and returns the smallest odd distance whose total
//! program error meets the budget — monotone in the budget by
//! construction, which the property tests pin down. Even distances are
//! rejected with a typed error by [`ErrorModel::checked_logical_error_per_patch_step`].

use std::fmt;

/// A configurable per-patch-step logical error model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ErrorModel {
    /// Physical error rate per operation (`p`).
    pub p_physical: f64,
    /// Fault-tolerance threshold of the code under this hardware (`p_th`).
    pub p_threshold: f64,
    /// Scaling prefactor (`A`).
    pub prefactor: f64,
}

impl Default for ErrorModel {
    /// The conventional surface-code working point: `p = 10⁻³`,
    /// `p_th = 10⁻²`, `A = 0.1`.
    fn default() -> Self {
        ErrorModel { p_physical: 1e-3, p_threshold: 1e-2, prefactor: 0.1 }
    }
}

impl ErrorModel {
    /// Checks the model is physically meaningful: positive parameters and
    /// sub-threshold operation (`p < p_th`, otherwise increasing the
    /// distance makes things worse and no budget is reachable).
    pub fn validate(&self) -> Result<(), BudgetError> {
        if !(self.p_physical > 0.0 && self.p_threshold > 0.0 && self.prefactor > 0.0) {
            return Err(BudgetError::InvalidModel(
                "error-model parameters must be positive".to_string(),
            ));
        }
        if self.p_physical >= self.p_threshold {
            return Err(BudgetError::InvalidModel(format!(
                "physical error rate {} is not below threshold {}",
                self.p_physical, self.p_threshold
            )));
        }
        Ok(())
    }

    /// Logical error probability of one patch over one logical time step
    /// at code distance `d`: `A · (p / p_th) ^ ⌈d/2⌉`.
    ///
    /// This raw accessor evaluates the ansatz formula at any `d` (sweep
    /// grids deliberately include even distances to chart the scaling);
    /// consumers selecting an operating distance should go through
    /// [`Self::checked_logical_error_per_patch_step`], which rejects the
    /// distances the ansatz does not model.
    pub fn logical_error_per_patch_step(&self, d: usize) -> f64 {
        let exponent = d.div_ceil(2) as i32;
        self.prefactor * (self.p_physical / self.p_threshold).powi(exponent)
    }

    /// [`Self::logical_error_per_patch_step`] restricted to the distances
    /// the ansatz actually models: odd `d ≥ 3`. An even `d` corrects no
    /// more faults than `d − 1` (its exponent collapses onto `d − 1`'s),
    /// so accepting it would silently overstate the code's protection.
    pub fn checked_logical_error_per_patch_step(&self, d: usize) -> Result<f64, BudgetError> {
        if d.is_multiple_of(2) {
            return Err(BudgetError::EvenDistance { d });
        }
        if d < 3 {
            return Err(BudgetError::InvalidModel(format!(
                "code distance must be at least 3, got {d}"
            )));
        }
        Ok(self.logical_error_per_patch_step(d))
    }

    /// Total program logical error over `patch_steps` patch-steps at
    /// distance `d` (union bound, saturated at 1).
    pub fn program_error(&self, d: usize, patch_steps: u64) -> f64 {
        (patch_steps as f64 * self.logical_error_per_patch_step(d)).min(1.0)
    }

    /// The smallest **odd** code distance `d ≥ 3` whose total program
    /// error over `patch_steps` patch-steps meets `budget`, searching up
    /// to `d_max` (an even `d_max` caps the search at `d_max − 1`, since
    /// even distances are not modeled — see
    /// [`Self::checked_logical_error_per_patch_step`]).
    pub fn select_distance(
        &self,
        patch_steps: u64,
        budget: f64,
        d_max: usize,
    ) -> Result<usize, BudgetError> {
        self.validate()?;
        if budget.is_nan() || budget <= 0.0 {
            return Err(BudgetError::InvalidModel(format!(
                "error budget must be positive, got {budget}"
            )));
        }
        let d_top = if d_max.is_multiple_of(2) { d_max.saturating_sub(1) } else { d_max }.max(3);
        for d in (3..=d_top).step_by(2) {
            if self.program_error(d, patch_steps) <= budget {
                return Ok(d);
            }
        }
        Err(BudgetError::Unsatisfiable {
            budget,
            d_max: d_top,
            error_at_d_max: self.program_error(d_top, patch_steps),
        })
    }
}

/// Errors raised during distance selection.
#[derive(Clone, Debug, PartialEq)]
pub enum BudgetError {
    /// The error model (or budget) is not physically meaningful.
    InvalidModel(String),
    /// An even code distance was requested; the scaling ansatz only
    /// models odd distances (an even `d` corrects no more faults than
    /// `d − 1`).
    EvenDistance {
        /// The rejected (even) distance.
        d: usize,
    },
    /// No distance up to `d_max` meets the budget.
    Unsatisfiable {
        /// The requested budget.
        budget: f64,
        /// The largest distance searched.
        d_max: usize,
        /// The achieved program error at `d_max`.
        error_at_d_max: f64,
    },
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetError::InvalidModel(msg) => write!(f, "invalid error model: {msg}"),
            BudgetError::EvenDistance { d } => write!(
                f,
                "code distance d={d} is even; the scaling ansatz only models odd \
                 distances (use d={} or d={})",
                d.saturating_sub(1).max(3),
                d + 1
            ),
            BudgetError::Unsatisfiable { budget, d_max, error_at_d_max } => {
                write!(
                    f,
                    "no distance up to d={d_max} meets the requested budget {budget:e}: \
                     the best achievable error is {error_at_d_max:e} at d={d_max}"
                )?;
                // The shortfall factor tells the user at a glance whether a
                // slightly larger --dmax could close the gap or the budget
                // is orders of magnitude out of reach.
                let shortfall = error_at_d_max / budget;
                if shortfall.is_finite() {
                    write!(f, ", {shortfall:.1e}x over budget")?;
                }
                write!(f, "; raise --dmax or loosen the budget")
            }
        }
    }
}

impl std::error::Error for BudgetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_error_decreases_with_distance() {
        let m = ErrorModel::default();
        let mut last = f64::INFINITY;
        for d in (3..=25).step_by(2) {
            let p = m.checked_logical_error_per_patch_step(d).unwrap();
            assert!(p < last, "p_L must be strictly decreasing in odd d");
            assert!(p > 0.0);
            last = p;
        }
        // d=3: 0.1 * (0.1)^2 = 1e-3.
        assert!((m.logical_error_per_patch_step(3) - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn even_and_degenerate_distances_are_rejected() {
        let m = ErrorModel::default();
        assert_eq!(
            m.checked_logical_error_per_patch_step(4),
            Err(BudgetError::EvenDistance { d: 4 })
        );
        let msg = m.checked_logical_error_per_patch_step(20).unwrap_err().to_string();
        assert!(msg.contains("d=20") && msg.contains("d=19") && msg.contains("d=21"), "{msg}");
        assert!(matches!(
            m.checked_logical_error_per_patch_step(1),
            Err(BudgetError::InvalidModel(_))
        ));
        // The even distance would otherwise silently claim d-1's protection.
        assert_eq!(m.logical_error_per_patch_step(4), m.logical_error_per_patch_step(3));
    }

    #[test]
    fn select_distance_returns_the_smallest_satisfying_odd_distance() {
        let m = ErrorModel::default();
        let d = m.select_distance(100, 1e-9, 35).unwrap();
        assert_eq!(d % 2, 1, "selected distances are odd");
        assert!(m.program_error(d, 100) <= 1e-9);
        assert!(m.program_error(d - 2, 100) > 1e-9, "d is minimal among odd distances");
        // An even d_max caps the search at d_max - 1.
        let err = m.select_distance(u64::MAX, 1e-30, 20).unwrap_err();
        assert!(matches!(err, BudgetError::Unsatisfiable { d_max: 19, .. }), "{err}");
    }

    #[test]
    fn tighter_budgets_never_shrink_the_distance() {
        let m = ErrorModel::default();
        let loose = m.select_distance(1000, 1e-6, 45).unwrap();
        let tight = m.select_distance(1000, 1e-12, 45).unwrap();
        assert!(tight >= loose);
    }

    #[test]
    fn unsatisfiable_and_invalid_inputs_error() {
        let m = ErrorModel::default();
        assert!(matches!(
            m.select_distance(u64::MAX, 1e-30, 3),
            Err(BudgetError::Unsatisfiable { .. })
        ));
        assert!(m.select_distance(1, 0.0, 25).is_err());
        let above_threshold =
            ErrorModel { p_physical: 0.5, p_threshold: 1e-2, ..ErrorModel::default() };
        assert!(matches!(
            above_threshold.select_distance(1, 1e-9, 25),
            Err(BudgetError::InvalidModel(_))
        ));
        let err = m.select_distance(u64::MAX, 1e-30, 3).unwrap_err();
        assert!(err.to_string().contains("--dmax"));
    }

    #[test]
    fn unsatisfiable_message_names_budget_best_achievable_and_shortfall() {
        let m = ErrorModel::default();
        // 100 patch-steps at d=5: 100 * 0.1 * (0.1)^3 ≈ 1e-2 best achievable.
        let err = m.select_distance(100, 1e-8, 5).unwrap_err();
        let BudgetError::Unsatisfiable { budget, d_max, error_at_d_max } = err.clone() else {
            panic!("expected Unsatisfiable, got {err:?}");
        };
        assert_eq!((budget, d_max), (1e-8, 5));
        assert!((error_at_d_max - 1e-2).abs() < 1e-15);
        let msg = err.to_string();
        assert!(msg.contains("requested budget 1e-8"), "{msg}");
        assert!(msg.contains("best achievable error is 1"), "{msg}");
        assert!(msg.contains("at d=5"), "{msg}");
        assert!(msg.contains("1.0e6x over budget"), "{msg}");
        assert!(msg.contains("raise --dmax or loosen the budget"), "{msg}");
    }

    #[test]
    fn zero_patch_steps_select_the_smallest_distance() {
        let m = ErrorModel::default();
        assert_eq!(m.select_distance(0, 1e-15, 25).unwrap(), 3);
    }
}

//! The logical-program intermediate representation.
//!
//! A [`LogicalProgram`] is a list of named logical qubits plus an ordered
//! sequence of Table 1 lattice-surgery instructions over them. Programs are
//! built either through the builder API ([`LogicalProgram::add_qubit`],
//! [`LogicalProgram::push`] and the per-instruction conveniences) or by
//! parsing the `.tql` text format (see [`crate::parse`]).
//!
//! The IR enforces *liveness*: a qubit is brought to life by a preparation
//! or injection, destroyed by a destructive single-qubit measurement, and
//! must be live for every other instruction that names it. Joint
//! `Measure XX`/`Measure ZZ` surgeries leave both operands alive (the
//! merge-split sequence restores the individual patches).

use std::collections::HashMap;
use std::fmt;

use tiscc_core::instruction::Instruction;

/// A reference to a logical qubit of one program: the index into the
/// program's qubit table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QubitRef(pub usize);

/// One instruction of a logical program: a Table 1 lattice-surgery
/// instruction applied to one or two named logical qubits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgramInstruction {
    /// The lattice-surgery instruction.
    pub instruction: Instruction,
    /// The operand qubits, in order ([`Instruction::tiles`] entries).
    pub qubits: Vec<QubitRef>,
    /// 1-based source line for programs parsed from `.tql` text (`None`
    /// for programs built through the API).
    pub line: Option<usize>,
}

/// A logical program: named logical qubits plus an ordered instruction
/// sequence.
#[derive(Clone, Debug)]
pub struct LogicalProgram {
    name: String,
    qubits: Vec<String>,
    // Name -> index mirror of `qubits`, so `qubit()` stays O(1) on the
    // hundreds-of-qubits programs the workload generators emit.
    qubit_index: HashMap<String, usize>,
    instructions: Vec<ProgramInstruction>,
}

impl PartialEq for LogicalProgram {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.qubits == other.qubits
            && self.instructions == other.instructions
    }
}

impl Eq for LogicalProgram {}

impl LogicalProgram {
    /// An empty program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        LogicalProgram {
            name: name.into(),
            qubits: Vec::new(),
            qubit_index: HashMap::new(),
            instructions: Vec::new(),
        }
    }

    /// The program's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares a new logical qubit. Names must be unique within a program.
    pub fn add_qubit(&mut self, name: impl Into<String>) -> Result<QubitRef, ProgramError> {
        let name = name.into();
        if self.qubit_index.contains_key(&name) {
            return Err(ProgramError::DuplicateQubit(name));
        }
        self.qubits.push(name.clone());
        self.qubit_index.insert(name, self.qubits.len() - 1);
        Ok(QubitRef(self.qubits.len() - 1))
    }

    /// Resolves a declared qubit by name.
    pub fn qubit(&self, name: &str) -> Option<QubitRef> {
        self.qubit_index.get(name).copied().map(QubitRef)
    }

    /// The name of a declared qubit.
    pub fn qubit_name(&self, q: QubitRef) -> &str {
        &self.qubits[q.0]
    }

    /// Number of declared logical qubits.
    pub fn qubit_count(&self) -> usize {
        self.qubits.len()
    }

    /// The instruction sequence.
    pub fn instructions(&self) -> &[ProgramInstruction] {
        &self.instructions
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Appends an instruction, checking arity and operand distinctness
    /// immediately (liveness is checked program-wide by
    /// [`LogicalProgram::validate`]).
    pub fn push(
        &mut self,
        instruction: Instruction,
        qubits: &[QubitRef],
    ) -> Result<(), ProgramError> {
        self.push_at(instruction, qubits, None)
    }

    /// [`LogicalProgram::push`] with a source-line annotation (used by the
    /// `.tql` parser).
    pub fn push_at(
        &mut self,
        instruction: Instruction,
        qubits: &[QubitRef],
        line: Option<usize>,
    ) -> Result<(), ProgramError> {
        if qubits.len() != instruction.tiles() {
            return Err(ProgramError::ArityMismatch {
                instruction,
                expected: instruction.tiles(),
                got: qubits.len(),
            });
        }
        for &q in qubits {
            if q.0 >= self.qubits.len() {
                return Err(ProgramError::UnknownQubit(format!("#{}", q.0)));
            }
        }
        if qubits.len() == 2 && qubits[0] == qubits[1] {
            return Err(ProgramError::SameQubitTwice {
                instruction,
                qubit: self.qubit_name(qubits[0]).to_string(),
            });
        }
        self.instructions.push(ProgramInstruction { instruction, qubits: qubits.to_vec(), line });
        Ok(())
    }

    /// Fault-tolerant |0⟩ preparation.
    pub fn prepare_z(&mut self, q: QubitRef) -> Result<(), ProgramError> {
        self.push(Instruction::PrepareZ, &[q])
    }

    /// Fault-tolerant |+⟩ preparation.
    pub fn prepare_x(&mut self, q: QubitRef) -> Result<(), ProgramError> {
        self.push(Instruction::PrepareX, &[q])
    }

    /// Y-eigenstate injection.
    pub fn inject_y(&mut self, q: QubitRef) -> Result<(), ProgramError> {
        self.push(Instruction::InjectY, &[q])
    }

    /// Magic-state (|T⟩) injection.
    pub fn inject_t(&mut self, q: QubitRef) -> Result<(), ProgramError> {
        self.push(Instruction::InjectT, &[q])
    }

    /// Destructive Z-basis measurement.
    pub fn measure_z(&mut self, q: QubitRef) -> Result<(), ProgramError> {
        self.push(Instruction::MeasureZ, &[q])
    }

    /// Destructive X-basis measurement.
    pub fn measure_x(&mut self, q: QubitRef) -> Result<(), ProgramError> {
        self.push(Instruction::MeasureX, &[q])
    }

    /// Logical Pauli X.
    pub fn pauli_x(&mut self, q: QubitRef) -> Result<(), ProgramError> {
        self.push(Instruction::PauliX, &[q])
    }

    /// Logical Pauli Y.
    pub fn pauli_y(&mut self, q: QubitRef) -> Result<(), ProgramError> {
        self.push(Instruction::PauliY, &[q])
    }

    /// Logical Pauli Z.
    pub fn pauli_z(&mut self, q: QubitRef) -> Result<(), ProgramError> {
        self.push(Instruction::PauliZ, &[q])
    }

    /// Transversal logical Hadamard.
    pub fn hadamard(&mut self, q: QubitRef) -> Result<(), ProgramError> {
        self.push(Instruction::Hadamard, &[q])
    }

    /// One logical time step of error correction.
    pub fn idle(&mut self, q: QubitRef) -> Result<(), ProgramError> {
        self.push(Instruction::Idle, &[q])
    }

    /// Joint XX measurement (lattice-surgery merge/split).
    pub fn measure_xx(&mut self, a: QubitRef, b: QubitRef) -> Result<(), ProgramError> {
        self.push(Instruction::MeasureXX, &[a, b])
    }

    /// Joint ZZ measurement (lattice-surgery merge/split).
    pub fn measure_zz(&mut self, a: QubitRef, b: QubitRef) -> Result<(), ProgramError> {
        self.push(Instruction::MeasureZZ, &[a, b])
    }

    /// Checks program-wide liveness: every qubit must be prepared or
    /// injected before other use, destructive measurements end a qubit's
    /// life (it may be re-prepared later), and preparations may not target
    /// a qubit that is still live.
    pub fn validate(&self) -> Result<(), ProgramError> {
        let mut live = vec![false; self.qubits.len()];
        for pi in &self.instructions {
            match pi.instruction {
                Instruction::PrepareZ
                | Instruction::PrepareX
                | Instruction::InjectY
                | Instruction::InjectT => {
                    let q = pi.qubits[0];
                    if live[q.0] {
                        return Err(ProgramError::AlreadyLive {
                            instruction: pi.instruction,
                            qubit: self.qubit_name(q).to_string(),
                            line: pi.line,
                        });
                    }
                    live[q.0] = true;
                }
                Instruction::MeasureZ | Instruction::MeasureX => {
                    let q = pi.qubits[0];
                    self.require_live(&live, pi, q)?;
                    live[q.0] = false;
                }
                Instruction::MeasureXX | Instruction::MeasureZZ => {
                    self.require_live(&live, pi, pi.qubits[0])?;
                    self.require_live(&live, pi, pi.qubits[1])?;
                }
                _ => self.require_live(&live, pi, pi.qubits[0])?,
            }
        }
        Ok(())
    }

    fn require_live(
        &self,
        live: &[bool],
        pi: &ProgramInstruction,
        q: QubitRef,
    ) -> Result<(), ProgramError> {
        if !live[q.0] {
            return Err(ProgramError::NotLive {
                instruction: pi.instruction,
                qubit: self.qubit_name(q).to_string(),
                line: pi.line,
            });
        }
        Ok(())
    }

    /// The maximum number of simultaneously live qubits over the program.
    pub fn max_live_qubits(&self) -> usize {
        let mut live = vec![false; self.qubits.len()];
        let mut peak = 0usize;
        for pi in &self.instructions {
            match pi.instruction {
                Instruction::PrepareZ
                | Instruction::PrepareX
                | Instruction::InjectY
                | Instruction::InjectT => live[pi.qubits[0].0] = true,
                Instruction::MeasureZ | Instruction::MeasureX => live[pi.qubits[0].0] = false,
                _ => {}
            }
            peak = peak.max(live.iter().filter(|&&l| l).count());
        }
        peak
    }
}

/// Errors raised while building or validating a [`LogicalProgram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramError {
    /// A qubit name was declared twice.
    DuplicateQubit(String),
    /// An instruction named a qubit that was never declared.
    UnknownQubit(String),
    /// An instruction received the wrong number of operands.
    ArityMismatch {
        /// The instruction.
        instruction: Instruction,
        /// Operands the instruction takes.
        expected: usize,
        /// Operands supplied.
        got: usize,
    },
    /// A two-qubit instruction named the same qubit twice.
    SameQubitTwice {
        /// The instruction.
        instruction: Instruction,
        /// The repeated qubit name.
        qubit: String,
    },
    /// An instruction used a qubit that is not live at that point.
    NotLive {
        /// The instruction.
        instruction: Instruction,
        /// The dead (or never-prepared) qubit.
        qubit: String,
        /// Source line, if the program was parsed.
        line: Option<usize>,
    },
    /// A preparation or injection targeted a qubit that is still live.
    AlreadyLive {
        /// The instruction.
        instruction: Instruction,
        /// The live qubit.
        qubit: String,
        /// Source line, if the program was parsed.
        line: Option<usize>,
    },
}

fn at_line(line: &Option<usize>) -> String {
    match line {
        Some(n) => format!(" (line {n})"),
        None => String::new(),
    }
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::DuplicateQubit(q) => write!(f, "qubit '{q}' declared twice"),
            ProgramError::UnknownQubit(q) => write!(f, "unknown qubit '{q}'"),
            ProgramError::ArityMismatch { instruction, expected, got } => {
                write!(f, "{} takes {expected} qubit(s), got {got}", instruction.id())
            }
            ProgramError::SameQubitTwice { instruction, qubit } => {
                write!(f, "{} names qubit '{qubit}' twice", instruction.id())
            }
            ProgramError::NotLive { instruction, qubit, line } => write!(
                f,
                "{} on qubit '{qubit}' which is not live{}",
                instruction.id(),
                at_line(line)
            ),
            ProgramError::AlreadyLive { instruction, qubit, line } => write!(
                f,
                "{} on qubit '{qubit}' which is already live{}",
                instruction.id(),
                at_line(line)
            ),
        }
    }
}

impl std::error::Error for ProgramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_a_valid_bell_program() {
        let mut p = LogicalProgram::new("bell");
        let a = p.add_qubit("a").unwrap();
        let b = p.add_qubit("b").unwrap();
        p.prepare_x(a).unwrap();
        p.prepare_z(b).unwrap();
        p.measure_zz(a, b).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.qubit_count(), 2);
        p.validate().unwrap();
        assert_eq!(p.max_live_qubits(), 2);
        assert_eq!(p.qubit("b"), Some(b));
        assert_eq!(p.qubit_name(a), "a");
    }

    #[test]
    fn duplicate_qubits_and_bad_arity_are_rejected() {
        let mut p = LogicalProgram::new("bad");
        let a = p.add_qubit("a").unwrap();
        assert_eq!(p.add_qubit("a"), Err(ProgramError::DuplicateQubit("a".into())));
        assert!(matches!(
            p.push(Instruction::MeasureZZ, &[a]),
            Err(ProgramError::ArityMismatch { expected: 2, got: 1, .. })
        ));
        assert!(matches!(
            p.push(Instruction::MeasureZZ, &[a, a]),
            Err(ProgramError::SameQubitTwice { .. })
        ));
        assert!(matches!(
            p.push(Instruction::Idle, &[QubitRef(7)]),
            Err(ProgramError::UnknownQubit(_))
        ));
    }

    #[test]
    fn liveness_violations_are_reported() {
        let mut p = LogicalProgram::new("dead");
        let a = p.add_qubit("a").unwrap();
        p.hadamard(a).unwrap();
        assert!(matches!(p.validate(), Err(ProgramError::NotLive { .. })));

        let mut p = LogicalProgram::new("double-prep");
        let a = p.add_qubit("a").unwrap();
        p.prepare_z(a).unwrap();
        p.prepare_x(a).unwrap();
        assert!(matches!(p.validate(), Err(ProgramError::AlreadyLive { .. })));

        // Measure ends a life; re-preparation revives the qubit.
        let mut p = LogicalProgram::new("reuse");
        let a = p.add_qubit("a").unwrap();
        p.prepare_z(a).unwrap();
        p.measure_z(a).unwrap();
        p.prepare_x(a).unwrap();
        p.measure_x(a).unwrap();
        p.validate().unwrap();
        assert_eq!(p.max_live_qubits(), 1);
    }

    #[test]
    fn use_after_destructive_measurement_is_rejected() {
        let mut p = LogicalProgram::new("after-death");
        let a = p.add_qubit("a").unwrap();
        let b = p.add_qubit("b").unwrap();
        p.prepare_z(a).unwrap();
        p.prepare_z(b).unwrap();
        p.measure_z(a).unwrap();
        p.measure_xx(a, b).unwrap();
        let err = p.validate().unwrap_err();
        assert!(matches!(err, ProgramError::NotLive { ref qubit, .. } if qubit == "a"));
        assert!(err.to_string().contains("not live"));
    }
}

//! The patch allocator: logical qubits onto tiles with routing lanes.
//!
//! Logical qubits are placed on a *data row* of tiles, one qubit per tile
//! column in declaration order, backed by an *ancilla routing lane* — a
//! second row of tiles reserved for the merge ancillae of long-range
//! lattice surgery (the multi-patch bus of the scaling literature):
//!
//! ```text
//! column:     0    1    2    3
//! data row:  [q0] [q1] [q2] [q3]
//! lane row:  [··] [··] [··] [··]   ← routing / merge ancilla lane
//! ```
//!
//! A `Measure ZZ` between horizontally adjacent qubits runs directly on
//! the shared boundary; every other joint measurement routes through the
//! lane, occupying the lane tiles spanning the two columns for the
//! duration of the merge. The [`Placement::footprint`] of an instruction
//! is exactly the tile set the scheduler uses for conflict detection.
//!
//! [`Placement::layout`] maps the tile grid onto the
//! [`tiscc_grid::Layout`] substrate: a distance-`d` tile occupies `d × d`
//! repeating units, so the machine for a placement is a
//! `(tile_rows·d) × (tile_cols·d)`-unit grid.

use tiscc_core::instruction::Instruction;
use tiscc_grid::Layout;

use crate::ir::{LogicalProgram, ProgramInstruction, QubitRef};

/// The tile coordinate `(row, col)` of one logical patch; row 0 is the
/// data row, row 1 the routing lane.
pub type Tile = (usize, usize);

/// A placement of a program's logical qubits onto the tile grid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    columns: Vec<usize>,
    tile_cols: usize,
}

impl Placement {
    /// Allocates tiles for every declared qubit of `program`: one data-row
    /// column per qubit in declaration order, plus the full-width routing
    /// lane beneath them.
    pub fn allocate(program: &LogicalProgram) -> Placement {
        let n = program.qubit_count();
        Placement { columns: (0..n).collect(), tile_cols: n.max(1) }
    }

    /// The data-row column of a qubit.
    pub fn column(&self, q: QubitRef) -> usize {
        self.columns[q.0]
    }

    /// The data tile of a qubit.
    pub fn data_tile(&self, q: QubitRef) -> Tile {
        (0, self.column(q))
    }

    /// Tile rows of the placement (the data row plus the routing lane).
    pub fn tile_rows(&self) -> usize {
        2
    }

    /// Tile columns of the placement.
    pub fn tile_cols(&self) -> usize {
        self.tile_cols
    }

    /// Number of data tiles (one per logical qubit).
    pub fn data_tiles(&self) -> usize {
        self.columns.len()
    }

    /// Number of routing-lane tiles.
    pub fn lane_tiles(&self) -> usize {
        self.tile_cols
    }

    /// Total tiles of the placement, including the routing lane.
    pub fn total_tiles(&self) -> usize {
        self.tile_rows() * self.tile_cols
    }

    /// The set of tiles an instruction occupies while it executes: the
    /// operand data tiles, plus — for joint measurements that are not a
    /// direct horizontal `Measure ZZ` between adjacent columns — the
    /// routing-lane tiles spanning the operand columns.
    pub fn footprint(&self, pi: &ProgramInstruction) -> Vec<Tile> {
        match pi.qubits.as_slice() {
            [q] => vec![self.data_tile(*q)],
            [a, b] => {
                let (ca, cb) = (self.column(*a), self.column(*b));
                let (lo, hi) = (ca.min(cb), ca.max(cb));
                let mut tiles = vec![(0, ca), (0, cb)];
                let direct_zz = pi.instruction == Instruction::MeasureZZ && hi - lo == 1;
                if !direct_zz {
                    tiles.extend((lo..=hi).map(|c| (1, c)));
                }
                tiles
            }
            _ => unreachable!("instructions act on one or two qubits"),
        }
    }

    /// The trapped-ion grid hosting this placement at code distance `d`:
    /// every tile is `d × d` repeating units (one unit per surface-code
    /// qubit site, as in the per-instruction fixtures).
    pub fn layout(&self, d: usize) -> Layout {
        let d = d.max(1) as u32;
        Layout::new(self.tile_rows() as u32 * d, self.tile_cols() as u32 * d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples;

    #[test]
    fn qubits_get_declaration_order_columns() {
        let p = examples::teleportation();
        let place = Placement::allocate(&p);
        assert_eq!(place.tile_cols(), 3);
        assert_eq!(place.total_tiles(), 6);
        for (i, name) in ["src", "anc", "dst"].iter().enumerate() {
            let q = p.qubit(name).unwrap();
            assert_eq!(place.data_tile(q), (0, i));
        }
    }

    #[test]
    fn footprints_distinguish_direct_and_routed_merges() {
        let p = examples::teleportation();
        let place = Placement::allocate(&p);
        let instrs = p.instructions();
        // merge_zz anc dst: columns 1 and 2 are adjacent → direct merge.
        let zz = &instrs[3];
        assert_eq!(zz.instruction, Instruction::MeasureZZ);
        assert_eq!(place.footprint(zz), vec![(0, 1), (0, 2)]);
        // merge_xx src anc: XX needs a vertical boundary → routed through
        // the lane under columns 0..=1.
        let xx = &instrs[4];
        assert_eq!(xx.instruction, Instruction::MeasureXX);
        assert_eq!(place.footprint(xx), vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
        // Single-qubit footprints are just the data tile.
        assert_eq!(place.footprint(&instrs[0]), vec![(0, 0)]);
    }

    #[test]
    fn layout_scales_with_distance_and_tile_grid() {
        let p = examples::bell_pair();
        let place = Placement::allocate(&p);
        let layout = place.layout(3);
        assert_eq!(layout.unit_rows(), 2 * 3);
        assert_eq!(layout.unit_cols(), 2 * 3);
        // 6 trapping zones per unit (tiscc_grid invariant).
        assert_eq!(layout.trapping_zone_count(), 6 * 36);
    }
}

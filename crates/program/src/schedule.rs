//! Dependency-aware ASAP list scheduling of logical programs.
//!
//! Instructions are placed into *parallel logical time steps*: walking the
//! program in order, each instruction starts at the earliest step at which
//! every tile of its [`Placement::footprint`] is free (ASAP list
//! scheduling). Two instructions whose footprints are disjoint can share a
//! step; instructions touching the same data tile — or merges whose
//! routing-lane spans overlap — are serialised. Because a qubit's data
//! tile is part of every footprint that names it, program order between
//! instructions on the same qubit is preserved automatically.
//!
//! A step's duration in *logical time steps* is the maximum over its
//! members (paper Table 1 accounting): a step holding only zero-step
//! instructions (Pauli frame updates, destructive measurements,
//! injections) contributes no error-correction rounds, while any step
//! holding a preparation, idle or merge costs one round of `dt` cycles.

use std::collections::HashMap;

use crate::alloc::{Placement, Tile};
use crate::ir::LogicalProgram;

/// One parallel step of a schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleStep {
    /// Indices into [`LogicalProgram::instructions`] executing in this step.
    pub instructions: Vec<usize>,
    /// Logical time steps this step costs: the maximum over its members.
    pub logical_time_steps: usize,
}

/// The result of scheduling a program against a placement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// The parallel steps, in execution order.
    pub steps: Vec<ScheduleStep>,
    /// Total logical time steps: the sum over steps.
    pub logical_time_steps: usize,
}

impl Schedule {
    /// Number of parallel steps.
    pub fn depth(&self) -> usize {
        self.steps.len()
    }

    /// Total instruction slots across all steps.
    pub fn instruction_count(&self) -> usize {
        self.steps.iter().map(|s| s.instructions.len()).sum()
    }

    /// Patch-steps accrued by a machine of `total_tiles` tiles: every
    /// allocated tile undergoes error correction for every logical time
    /// step of the program (idle patches decohere too). This is the unit
    /// the error budget is spent in.
    pub fn patch_steps(&self, total_tiles: usize) -> u64 {
        total_tiles as u64 * self.logical_time_steps as u64
    }

    /// The widest step (most instructions packed in parallel).
    pub fn max_parallelism(&self) -> usize {
        self.steps.iter().map(|s| s.instructions.len()).max().unwrap_or(0)
    }
}

/// Schedules `program` against `placement` with ASAP list scheduling and
/// per-tile conflict detection.
pub fn schedule(program: &LogicalProgram, placement: &Placement) -> Schedule {
    let mut next_free: HashMap<Tile, usize> = HashMap::new();
    let mut steps: Vec<ScheduleStep> = Vec::new();
    for (idx, pi) in program.instructions().iter().enumerate() {
        let footprint = placement.footprint(pi);
        let start =
            footprint.iter().map(|t| next_free.get(t).copied().unwrap_or(0)).max().unwrap_or(0);
        if start == steps.len() {
            steps.push(ScheduleStep { instructions: Vec::new(), logical_time_steps: 0 });
        }
        let step = &mut steps[start];
        step.instructions.push(idx);
        step.logical_time_steps = step.logical_time_steps.max(pi.instruction.logical_time_steps());
        for t in footprint {
            next_free.insert(t, start + 1);
        }
    }
    let logical_time_steps = steps.iter().map(|s| s.logical_time_steps).sum();
    Schedule { steps, logical_time_steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples;
    use tiscc_core::instruction::Instruction;

    fn scheduled(program: &LogicalProgram) -> (Placement, Schedule) {
        let placement = Placement::allocate(program);
        let sched = schedule(program, &placement);
        (placement, sched)
    }

    /// Provably independent instructions (disjoint footprints) share one
    /// parallel step — the core scheduler guarantee.
    #[test]
    fn independent_instructions_pack_into_one_step() {
        let mut p = LogicalProgram::new("parallel-preps");
        let qs: Vec<_> = (0..4).map(|i| p.add_qubit(format!("q{i}")).unwrap()).collect();
        for &q in &qs {
            p.prepare_z(q).unwrap();
        }
        let (_, sched) = scheduled(&p);
        assert_eq!(sched.depth(), 1, "4 preps on 4 disjoint tiles are one step");
        assert_eq!(sched.steps[0].instructions, vec![0, 1, 2, 3]);
        assert_eq!(sched.logical_time_steps, 1);
        assert_eq!(sched.max_parallelism(), 4);
    }

    /// Instructions on the same qubit keep program order (the data tile is
    /// a shared resource).
    #[test]
    fn same_qubit_instructions_are_serialised() {
        let mut p = LogicalProgram::new("serial");
        let q = p.add_qubit("q").unwrap();
        p.prepare_z(q).unwrap();
        p.hadamard(q).unwrap();
        p.idle(q).unwrap();
        p.measure_x(q).unwrap();
        let (_, sched) = scheduled(&p);
        assert_eq!(sched.depth(), 4);
        // prep(1) + hadamard(0) + idle(1) + measure(0) logical steps.
        assert_eq!(sched.logical_time_steps, 2);
    }

    /// Two merges with overlapping routing-lane spans conflict; disjoint
    /// spans run in parallel.
    #[test]
    fn lane_conflicts_serialise_overlapping_merges() {
        let mut p = LogicalProgram::new("lanes");
        let qs: Vec<_> = (0..4).map(|i| p.add_qubit(format!("q{i}")).unwrap()).collect();
        for &q in &qs {
            p.prepare_z(q).unwrap();
        }
        // Spans 0..=1 and 2..=3: disjoint lanes → parallel.
        p.measure_xx(qs[0], qs[1]).unwrap();
        p.measure_xx(qs[2], qs[3]).unwrap();
        // Span 1..=2 overlaps both earlier spans → next step.
        p.measure_xx(qs[1], qs[2]).unwrap();
        let (_, sched) = scheduled(&p);
        assert_eq!(sched.depth(), 3);
        assert_eq!(sched.steps[1].instructions, vec![4, 5]);
        assert_eq!(sched.steps[2].instructions, vec![6]);
    }

    /// Direct horizontal ZZ merges on disjoint column pairs all pack into
    /// the same step (the adder T-layer shape).
    #[test]
    fn adder_t_layer_runs_teleportations_in_parallel() {
        let p = examples::adder_t_layer(4);
        let (_, sched) = scheduled(&p);
        // preps | injections (share step? no: injections are on their own
        // tiles, disjoint from the data preps → same step) …
        // Step 0: 4 preps + 4 injections (8 disjoint tiles).
        assert_eq!(sched.steps[0].instructions.len(), 8);
        // Step 1: 4 direct ZZ merges on disjoint adjacent pairs.
        let merges = &sched.steps[1];
        assert_eq!(merges.instructions.len(), 4);
        for &i in &merges.instructions {
            assert_eq!(p.instructions()[i].instruction, Instruction::MeasureZZ);
        }
        // Step 2: 4 ancilla read-outs + 4 frame corrections.
        assert_eq!(sched.depth(), 3);
        // prep/inject step (1) + merge step (1) + read-out/correction step (0).
        assert_eq!(sched.logical_time_steps, 2);
    }

    #[test]
    fn empty_program_schedules_to_nothing() {
        let p = LogicalProgram::new("empty");
        let (placement, sched) = scheduled(&p);
        assert_eq!(sched.depth(), 0);
        assert_eq!(sched.logical_time_steps, 0);
        assert_eq!(sched.patch_steps(placement.total_tiles()), 0);
    }

    #[test]
    fn schedule_covers_every_instruction_exactly_once() {
        for (_, p) in examples::all() {
            let (_, sched) = scheduled(&p);
            let mut seen: Vec<usize> =
                sched.steps.iter().flat_map(|s| s.instructions.clone()).collect();
            seen.sort_unstable();
            let expect: Vec<usize> = (0..p.len()).collect();
            assert_eq!(seen, expect, "{}", p.name());
        }
    }
}

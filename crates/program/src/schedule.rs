//! Dependency- and congestion-aware ASAP list scheduling of logical
//! programs.
//!
//! Instructions are placed into *parallel logical time steps*: walking the
//! program in order, each instruction starts at the earliest step at which
//! every resource it needs is free. Two instructions whose resources are
//! disjoint can share a step; instructions touching the same data tile are
//! serialised. Because a qubit's data tile is part of every footprint that
//! names it, program order between instructions on the same qubit is
//! preserved automatically.
//!
//! What "resources" means depends on the placement strategy:
//!
//! * **Single-lane** floorplans use the static
//!   [`Placement::footprint`] — operand data tiles plus, for routed
//!   merges, the shared-lane tiles spanning the operand columns. This is
//!   the original scheduler, preserved bit-for-bit.
//! * **2D** floorplans ([`RowMajor`]/[`Checkerboard`]) route each merge
//!   through an ancilla corridor found by [`crate::route`]: at the merge's
//!   ready step the scheduler searches for a corridor avoiding tiles
//!   already reserved in that step ([`Reservations`]); if none is free the
//!   merge *stalls* to the next step (counted in
//!   [`Schedule::routing_stalls`]), and if no corridor exists even on an
//!   idle grid the program is unroutable ([`RoutingError`]).
//!
//! A step's duration in *logical time steps* is the maximum over its
//! members (paper Table 1 accounting): a step holding only zero-step
//! instructions (Pauli frame updates, destructive measurements,
//! injections) contributes no error-correction rounds, while any step
//! holding a preparation, idle or merge costs one round of `dt` cycles.
//!
//! [`RowMajor`]: crate::layout2d::LayoutStrategy::RowMajor
//! [`Checkerboard`]: crate::layout2d::LayoutStrategy::Checkerboard

use std::collections::HashMap;

use tiscc_telemetry::Span;

use crate::ir::LogicalProgram;
use crate::layout2d::{LayoutStrategy, Placement, Tile};
use crate::route::{corridor_avoiding, Reservations, RoutingError};

/// One parallel step of a schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleStep {
    /// Indices into [`LogicalProgram::instructions`] executing in this step.
    pub instructions: Vec<usize>,
    /// Logical time steps this step costs: the maximum over its members.
    pub logical_time_steps: usize,
}

/// The result of scheduling a program against a placement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// The parallel steps, in execution order.
    pub steps: Vec<ScheduleStep>,
    /// Total logical time steps: the sum over steps.
    pub logical_time_steps: usize,
    /// Steps merges spent waiting for a free corridor (or lane segment)
    /// beyond their operand-ready step — the congestion cost of the
    /// floorplan.
    pub routing_stalls: usize,
    /// Joint measurements that executed in a step shared with at least one
    /// other joint measurement — the parallelism the floorplan delivered.
    pub parallel_merges: usize,
    /// Per-instruction routing: the ancilla corridor (or single-lane
    /// segment) each joint measurement occupied during its step; `None`
    /// for single-qubit instructions and direct boundary merges.
    pub corridors: Vec<Option<Vec<Tile>>>,
}

impl Schedule {
    /// Number of parallel steps.
    pub fn depth(&self) -> usize {
        self.steps.len()
    }

    /// Total instruction slots across all steps.
    pub fn instruction_count(&self) -> usize {
        self.steps.iter().map(|s| s.instructions.len()).sum()
    }

    /// Patch-steps accrued by a machine of `total_tiles` tiles: every
    /// allocated tile undergoes error correction for every logical time
    /// step of the program (idle patches decohere too). This is the unit
    /// the error budget is spent in.
    pub fn patch_steps(&self, total_tiles: usize) -> u64 {
        total_tiles as u64 * self.logical_time_steps as u64
    }

    /// The widest step (most instructions packed in parallel).
    pub fn max_parallelism(&self) -> usize {
        self.steps.iter().map(|s| s.instructions.len()).max().unwrap_or(0)
    }

    /// Joint measurements that needed a routing corridor or lane segment.
    pub fn routed_merges(&self) -> usize {
        self.corridors.iter().filter(|c| c.is_some()).count()
    }
}

/// Schedules `program` against `placement` with ASAP list scheduling,
/// per-tile conflict detection and — on 2D floorplans — congestion-aware
/// corridor routing. Fails with a [`RoutingError`] when a merge cannot be
/// routed under the floorplan at all.
pub fn schedule(program: &LogicalProgram, placement: &Placement) -> Result<Schedule, RoutingError> {
    let mut sched = match placement.strategy() {
        LayoutStrategy::SingleLane => schedule_single_lane(program, placement),
        LayoutStrategy::RowMajor | LayoutStrategy::Checkerboard => {
            schedule_routed(program, placement)?
        }
    };
    sched.logical_time_steps = sched.steps.iter().map(|s| s.logical_time_steps).sum();
    sched.parallel_merges = parallel_merges(program, &sched.steps);
    Ok(sched)
}

/// [`schedule`] wrapped in a telemetry span: opens a `schedule` child
/// under `parent`, and on success promotes the schedule's ad-hoc
/// congestion fields into counters — `schedule.routing_stalls`,
/// `schedule.parallel_merges`, `schedule.routed_merges` and
/// `schedule.corridor_tiles` (total tiles across all merge corridors).
pub fn schedule_with(
    program: &LogicalProgram,
    placement: &Placement,
    parent: &Span,
) -> Result<Schedule, RoutingError> {
    let span = parent.child("schedule");
    let sched = schedule(program, placement)?;
    span.add("schedule.routing_stalls", sched.routing_stalls as u64);
    span.add("schedule.parallel_merges", sched.parallel_merges as u64);
    span.add("schedule.routed_merges", sched.routed_merges() as u64);
    let corridor_tiles: usize =
        sched.corridors.iter().flatten().map(|corridor| corridor.len()).sum();
    span.add("schedule.corridor_tiles", corridor_tiles as u64);
    Ok(sched)
}

/// Joint measurements sharing a step with at least one other joint
/// measurement, summed over steps.
fn parallel_merges(program: &LogicalProgram, steps: &[ScheduleStep]) -> usize {
    steps
        .iter()
        .map(|step| {
            let merges = step
                .instructions
                .iter()
                .filter(|&&i| program.instructions()[i].qubits.len() == 2)
                .count();
            if merges >= 2 {
                merges
            } else {
                0
            }
        })
        .sum()
}

/// The original footprint scheduler, preserved bit-for-bit for the
/// single-lane floorplan: an instruction starts at the earliest step at
/// which every tile of its static footprint is free.
fn schedule_single_lane(program: &LogicalProgram, placement: &Placement) -> Schedule {
    let mut next_free: HashMap<Tile, usize> = HashMap::new();
    let mut steps: Vec<ScheduleStep> = Vec::new();
    let mut corridors: Vec<Option<Vec<Tile>>> = Vec::with_capacity(program.len());
    let mut routing_stalls = 0usize;
    for (idx, pi) in program.instructions().iter().enumerate() {
        let footprint = placement.footprint(pi);
        let start =
            footprint.iter().map(|t| next_free.get(t).copied().unwrap_or(0)).max().unwrap_or(0);
        // The congestion metric: how much later the lane let the merge run
        // than its operands alone would have.
        let ready = pi
            .qubits
            .iter()
            .map(|&q| next_free.get(&placement.data_tile(q)).copied().unwrap_or(0))
            .max()
            .unwrap_or(0);
        routing_stalls += start - ready;
        let lane = placement.lane_span(pi);
        corridors.push(if lane.is_empty() { None } else { Some(lane) });
        if start == steps.len() {
            steps.push(ScheduleStep { instructions: Vec::new(), logical_time_steps: 0 });
        }
        let step = &mut steps[start];
        step.instructions.push(idx);
        step.logical_time_steps = step.logical_time_steps.max(pi.instruction.logical_time_steps());
        for t in footprint {
            next_free.insert(t, start + 1);
        }
    }
    Schedule { steps, logical_time_steps: 0, routing_stalls, parallel_merges: 0, corridors }
}

/// The congestion-aware scheduler for 2D floorplans: merges claim a BFS
/// corridor of ancilla tiles for the duration of their step, reserved in
/// a per-step [`Reservations`] table so disjoint corridors share a step
/// and conflicting ones serialise.
fn schedule_routed(
    program: &LogicalProgram,
    placement: &Placement,
) -> Result<Schedule, RoutingError> {
    let mut next_free: HashMap<Tile, usize> = HashMap::new();
    let mut reserved = Reservations::new();
    let mut steps: Vec<ScheduleStep> = Vec::new();
    let mut corridors: Vec<Option<Vec<Tile>>> = Vec::with_capacity(program.len());
    let mut routing_stalls = 0usize;
    for (idx, pi) in program.instructions().iter().enumerate() {
        let data: Vec<Tile> = pi.qubits.iter().map(|&q| placement.data_tile(q)).collect();
        let ready = data.iter().map(|t| next_free.get(t).copied().unwrap_or(0)).max().unwrap_or(0);
        let (start, corridor) = if pi.qubits.len() == 2 {
            let (a, b) = (pi.qubits[0], pi.qubits[1]);
            let mut s = ready;
            loop {
                let path = corridor_avoiding(placement, a, b, &|t| !reserved.is_free(s, t));
                match path {
                    Some(path) => break (s, Some(path)),
                    // A step with no reservations is an idle grid: failing
                    // there means no corridor exists under this floorplan.
                    None if reserved.reserved_at(s) == 0 => {
                        return Err(RoutingError {
                            instruction: Some(pi.instruction),
                            a: program.qubit_name(a).to_string(),
                            a_tile: placement.data_tile(a),
                            b: program.qubit_name(b).to_string(),
                            b_tile: placement.data_tile(b),
                            line: pi.line,
                        });
                    }
                    None => {
                        routing_stalls += 1;
                        s += 1;
                    }
                }
            }
        } else {
            (ready, None)
        };
        if start == steps.len() {
            steps.push(ScheduleStep { instructions: Vec::new(), logical_time_steps: 0 });
        }
        let step = &mut steps[start];
        step.instructions.push(idx);
        step.logical_time_steps = step.logical_time_steps.max(pi.instruction.logical_time_steps());
        // Only corridor tiles need reserving: operand data tiles host
        // patches, which corridor passability already excludes, and the
        // `reserved_at == 0` unroutability check above relies on steps
        // without merges staying empty.
        if let Some(corridor) = &corridor {
            reserved.reserve(start, corridor.iter().copied());
        }
        for t in data {
            next_free.insert(t, start + 1);
        }
        corridors.push(corridor);
    }
    Ok(Schedule { steps, logical_time_steps: 0, routing_stalls, parallel_merges: 0, corridors })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples;
    use crate::layout2d::LayoutSpec;
    use tiscc_core::instruction::Instruction;

    fn scheduled(program: &LogicalProgram) -> (Placement, Schedule) {
        let placement = Placement::allocate(program);
        let sched = schedule(program, &placement).expect("single-lane programs always route");
        (placement, sched)
    }

    /// Provably independent instructions (disjoint footprints) share one
    /// parallel step — the core scheduler guarantee.
    #[test]
    fn independent_instructions_pack_into_one_step() {
        let mut p = LogicalProgram::new("parallel-preps");
        let qs: Vec<_> = (0..4).map(|i| p.add_qubit(format!("q{i}")).unwrap()).collect();
        for &q in &qs {
            p.prepare_z(q).unwrap();
        }
        let (_, sched) = scheduled(&p);
        assert_eq!(sched.depth(), 1, "4 preps on 4 disjoint tiles are one step");
        assert_eq!(sched.steps[0].instructions, vec![0, 1, 2, 3]);
        assert_eq!(sched.logical_time_steps, 1);
        assert_eq!(sched.max_parallelism(), 4);
        assert_eq!(sched.routing_stalls, 0);
    }

    /// Instructions on the same qubit keep program order (the data tile is
    /// a shared resource).
    #[test]
    fn same_qubit_instructions_are_serialised() {
        let mut p = LogicalProgram::new("serial");
        let q = p.add_qubit("q").unwrap();
        p.prepare_z(q).unwrap();
        p.hadamard(q).unwrap();
        p.idle(q).unwrap();
        p.measure_x(q).unwrap();
        let (_, sched) = scheduled(&p);
        assert_eq!(sched.depth(), 4);
        // prep(1) + hadamard(0) + idle(1) + measure(0) logical steps.
        assert_eq!(sched.logical_time_steps, 2);
    }

    /// Two merges with overlapping routing-lane spans conflict; disjoint
    /// spans run in parallel.
    #[test]
    fn lane_conflicts_serialise_overlapping_merges() {
        let mut p = LogicalProgram::new("lanes");
        let qs: Vec<_> = (0..4).map(|i| p.add_qubit(format!("q{i}")).unwrap()).collect();
        for &q in &qs {
            p.prepare_z(q).unwrap();
        }
        // Spans 0..=1 and 2..=3: disjoint lanes → parallel.
        p.measure_xx(qs[0], qs[1]).unwrap();
        p.measure_xx(qs[2], qs[3]).unwrap();
        // Span 1..=2 overlaps both earlier spans → next step.
        p.measure_xx(qs[1], qs[2]).unwrap();
        let (_, sched) = scheduled(&p);
        assert_eq!(sched.depth(), 3);
        assert_eq!(sched.steps[1].instructions, vec![4, 5]);
        assert_eq!(sched.steps[2].instructions, vec![6]);
        assert_eq!(sched.parallel_merges, 2, "the two disjoint-span merges share a step");
        // The overlapping merge was delayed by its *operands* (both busy in
        // step 1), not by the lane — so no routing stall is charged.
        assert_eq!(sched.routing_stalls, 0);
        assert_eq!(sched.routed_merges(), 3);
        assert_eq!(sched.corridors[4], Some(vec![(1, 0), (1, 1)]));
    }

    /// A merge whose operands are ready but whose lane segment is claimed
    /// by another merge is charged a routing stall on the single lane too.
    #[test]
    fn single_lane_charges_stalls_for_lane_contention() {
        let mut p = LogicalProgram::new("nested-lane");
        let qs: Vec<_> = (0..4).map(|i| p.add_qubit(format!("q{i}")).unwrap()).collect();
        for &q in &qs {
            p.prepare_z(q).unwrap();
        }
        // The outer q0–q3 merge claims lane columns 0..=3; the inner
        // q1–q2 merge's operands are free but its lane span is not.
        p.measure_xx(qs[0], qs[3]).unwrap();
        p.measure_xx(qs[1], qs[2]).unwrap();
        let (_, sched) = scheduled(&p);
        assert_eq!(sched.depth(), 3);
        assert_eq!(sched.routing_stalls, 1, "the inner merge waited one step on the lane");
        assert_eq!(sched.parallel_merges, 0);
    }

    /// Direct horizontal ZZ merges on disjoint column pairs all pack into
    /// the same step (the adder T-layer shape).
    #[test]
    fn adder_t_layer_runs_teleportations_in_parallel() {
        let p = examples::adder_t_layer(4);
        let (_, sched) = scheduled(&p);
        // preps | injections (share step? no: injections are on their own
        // tiles, disjoint from the data preps → same step) …
        // Step 0: 4 preps + 4 injections (8 disjoint tiles).
        assert_eq!(sched.steps[0].instructions.len(), 8);
        // Step 1: 4 direct ZZ merges on disjoint adjacent pairs.
        let merges = &sched.steps[1];
        assert_eq!(merges.instructions.len(), 4);
        for &i in &merges.instructions {
            assert_eq!(p.instructions()[i].instruction, Instruction::MeasureZZ);
        }
        // Step 2: 4 ancilla read-outs + 4 frame corrections.
        assert_eq!(sched.depth(), 3);
        // prep/inject step (1) + merge step (1) + read-out/correction step (0).
        assert_eq!(sched.logical_time_steps, 2);
        // Direct merges use no corridor, but still count as parallel.
        assert_eq!(sched.parallel_merges, 4);
        assert_eq!(sched.routed_merges(), 0);
    }

    #[test]
    fn empty_program_schedules_to_nothing() {
        let p = LogicalProgram::new("empty");
        let (placement, sched) = scheduled(&p);
        assert_eq!(sched.depth(), 0);
        assert_eq!(sched.logical_time_steps, 0);
        assert_eq!(sched.patch_steps(placement.total_tiles()), 0);
    }

    #[test]
    fn schedule_covers_every_instruction_exactly_once() {
        for (_, p) in examples::all() {
            for spec in [
                LayoutSpec::single_lane(),
                LayoutSpec::row_major().with_grid(8, 8),
                LayoutSpec::checkerboard().with_grid(8, 8),
            ] {
                let placement = Placement::allocate_with(&p, &spec).unwrap();
                let sched = schedule(&p, &placement).unwrap();
                let mut seen: Vec<usize> =
                    sched.steps.iter().flat_map(|s| s.instructions.clone()).collect();
                seen.sort_unstable();
                let expect: Vec<usize> = (0..p.len()).collect();
                assert_eq!(seen, expect, "{} under {spec:?}", p.name());
                assert_eq!(sched.corridors.len(), p.len());
            }
        }
    }

    /// Nested merges (a long-range one over an inner pair) serialise on a
    /// dense data row — the long corridor claims the inner operands' only
    /// lane access — while the checkerboard routes them disjointly.
    #[test]
    fn checkerboard_parallelises_what_the_row_layout_serialises() {
        let mut p = LogicalProgram::new("nested");
        let qs: Vec<_> = (0..4).map(|i| p.add_qubit(format!("q{i}")).unwrap()).collect();
        for &q in &qs {
            p.prepare_z(q).unwrap();
        }
        // Nested merges: the outer q0–q3 first, then the inner q1–q2.
        p.measure_zz(qs[0], qs[3]).unwrap();
        p.measure_zz(qs[1], qs[2]).unwrap();

        let row = Placement::allocate_with(&p, &LayoutSpec::row_major().with_grid(8, 8)).unwrap();
        let row_sched = schedule(&p, &row).unwrap();
        // On the dense data row q1's only free neighbour is the lane tile
        // under it, which the q0–q3 corridor claims → one stall.
        assert_eq!(row_sched.routing_stalls, 1, "{:?}", row_sched.corridors);
        assert_eq!(row_sched.parallel_merges, 0);

        let board =
            Placement::allocate_with(&p, &LayoutSpec::checkerboard().with_grid(8, 8)).unwrap();
        let board_sched = schedule(&p, &board).unwrap();
        assert_eq!(board_sched.routing_stalls, 0, "{:?}", board_sched.corridors);
        assert_eq!(board_sched.parallel_merges, 2);
        assert!(board_sched.logical_time_steps < row_sched.logical_time_steps);
    }

    /// An unroutable merge is a typed error, not a hang or a panic.
    #[test]
    fn unroutable_merges_surface_routing_errors() {
        let mut p = LogicalProgram::new("tight");
        let a = p.add_qubit("a").unwrap();
        let b = p.add_qubit("b").unwrap();
        p.prepare_z(a).unwrap();
        p.prepare_z(b).unwrap();
        p.measure_zz(a, b).unwrap();
        // A 1×2 row grid leaves no ancilla tiles at all.
        let place = Placement::allocate_with(&p, &LayoutSpec::row_major().with_grid(1, 2)).unwrap();
        let err = schedule(&p, &place).unwrap_err();
        assert_eq!(err.a, "a");
        assert_eq!(err.b, "b");
        assert!(err.to_string().contains("unroutable"));
    }
}

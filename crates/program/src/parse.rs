//! The `.tql` (TISCC quantum logic) text format.
//!
//! `.tql` is a line-oriented surface syntax for [`LogicalProgram`]s:
//!
//! ```text
//! # Logical Bell-pair preparation.
//! qubit a b          # declare logical qubits (one or more per line)
//! prep_x a
//! prep_z b
//! merge_zz a b       # lattice-surgery joint ZZ measurement
//! ```
//!
//! Everything from `#` to the end of a line is a comment. The first token
//! of a non-empty line is either the `qubit` declaration keyword or an
//! instruction mnemonic; remaining tokens are operand qubit names.
//!
//! Accepted mnemonics are the Table 1 instruction ids
//! (see [`Instruction::from_id`]) plus the short program-level aliases:
//! `prep_z`/`prep_x` (preparation), `meas_z`/`meas_x` (destructive
//! measurement), `merge_zz`/`merge_xx` (joint measurement), and the
//! one-letter gates `x`, `y`, `z`, `h`.

use std::fmt;

use tiscc_core::instruction::Instruction;
use tiscc_telemetry::Span;

use crate::ir::{LogicalProgram, QubitRef};

/// An error raised while parsing `.tql` text, annotated with its 1-based
/// source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Resolves a `.tql` instruction mnemonic: a program-level alias or any id
/// accepted by [`Instruction::from_id`].
pub fn instruction_from_mnemonic(word: &str) -> Option<Instruction> {
    let lowered = word.to_ascii_lowercase();
    let aliased = match lowered.as_str() {
        "prep_z" => Some(Instruction::PrepareZ),
        "prep_x" => Some(Instruction::PrepareX),
        "meas_z" => Some(Instruction::MeasureZ),
        "meas_x" => Some(Instruction::MeasureX),
        "merge_zz" => Some(Instruction::MeasureZZ),
        "merge_xx" => Some(Instruction::MeasureXX),
        "x" => Some(Instruction::PauliX),
        "y" => Some(Instruction::PauliY),
        "z" => Some(Instruction::PauliZ),
        "h" => Some(Instruction::Hadamard),
        _ => None,
    };
    aliased.or_else(|| Instruction::from_id(&lowered).ok())
}

/// The mnemonic the `.tql` renderer uses for an instruction (the inverse
/// of [`instruction_from_mnemonic`] on the alias set).
pub fn mnemonic(instruction: Instruction) -> &'static str {
    match instruction {
        Instruction::PrepareZ => "prep_z",
        Instruction::PrepareX => "prep_x",
        Instruction::MeasureZ => "meas_z",
        Instruction::MeasureX => "meas_x",
        Instruction::MeasureZZ => "merge_zz",
        Instruction::MeasureXX => "merge_xx",
        other => other.id(),
    }
}

/// Splits `.tql` text into source lines, recognizing `\n`, `\r\n` and a
/// lone `\r` as terminators. `str::lines` treats a bare `\r` (classic-Mac
/// or mixed-origin files) as an ordinary character, which silently merges
/// the two source lines around it — turning, e.g., `qubit a\rprep_z a`
/// into one bogus declaration line and shifting every later error's line
/// number. Like `str::lines`, a trailing terminator does not produce a
/// final empty line.
fn source_lines(text: &str) -> SourceLines<'_> {
    SourceLines { rest: text }
}

struct SourceLines<'a> {
    rest: &'a str,
}

impl<'a> Iterator for SourceLines<'a> {
    type Item = &'a str;

    fn next(&mut self) -> Option<&'a str> {
        if self.rest.is_empty() {
            return None;
        }
        match self.rest.find(['\n', '\r']) {
            None => Some(std::mem::take(&mut self.rest)),
            Some(i) => {
                let line = &self.rest[..i];
                let sep = if self.rest[i..].starts_with("\r\n") { 2 } else { 1 };
                self.rest = &self.rest[i + sep..];
                Some(line)
            }
        }
    }
}

impl LogicalProgram {
    /// Parses `.tql` text into a validated program named `name`. Lines may
    /// end in `\n`, `\r\n` or `\r`; the final line needs no terminator.
    pub fn parse(name: impl Into<String>, text: &str) -> Result<LogicalProgram, ParseError> {
        let mut program = LogicalProgram::new(name);
        for (idx, raw) in source_lines(text).enumerate() {
            let lineno = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut tokens = line.split_whitespace();
            let head = tokens.next().expect("non-empty line has a first token");
            if head.eq_ignore_ascii_case("qubit") {
                let mut declared = 0usize;
                for qubit in tokens {
                    program
                        .add_qubit(qubit)
                        .map_err(|e| ParseError { line: lineno, message: e.to_string() })?;
                    declared += 1;
                }
                if declared == 0 {
                    return Err(ParseError {
                        line: lineno,
                        message: "qubit declaration names no qubits".to_string(),
                    });
                }
                continue;
            }
            let instruction = instruction_from_mnemonic(head).ok_or_else(|| ParseError {
                line: lineno,
                message: format!(
                    "unknown instruction '{head}'; valid mnemonics include qubit, prep_z, \
                     prep_x, inject_y, inject_t, meas_z, meas_x, x, y, z, h, idle, \
                     merge_xx, merge_zz"
                ),
            })?;
            let operands: Result<Vec<QubitRef>, ParseError> = tokens
                .map(|tok| {
                    program.qubit(tok).ok_or_else(|| ParseError {
                        line: lineno,
                        message: format!("unknown qubit '{tok}' (declare it with 'qubit {tok}')"),
                    })
                })
                .collect();
            program
                .push_at(instruction, &operands?, Some(lineno))
                .map_err(|e| ParseError { line: lineno, message: e.to_string() })?;
        }
        program
            .validate()
            .map_err(|e| ParseError { line: error_line(&e), message: e.to_string() })?;
        Ok(program)
    }

    /// [`LogicalProgram::parse`] wrapped in a telemetry span: opens a
    /// `parse` child under `parent`, and on success records the
    /// `parse.qubits` and `parse.instructions` counters. With telemetry
    /// off the only cost over [`LogicalProgram::parse`] is a few no-op
    /// calls.
    pub fn parse_with(
        name: impl Into<String>,
        text: &str,
        parent: &Span,
    ) -> Result<LogicalProgram, ParseError> {
        let span = parent.child("parse");
        let program = LogicalProgram::parse(name, text)?;
        span.add("parse.qubits", program.qubit_count() as u64);
        span.add("parse.instructions", program.instructions().len() as u64);
        Ok(program)
    }

    /// Renders the program back to canonical `.tql` text.
    /// `LogicalProgram::parse` of the output reproduces the program
    /// (modulo source-line annotations).
    pub fn to_tql(&self) -> String {
        let mut out = format!("# {}\n", self.name());
        if self.qubit_count() > 0 {
            out.push_str("qubit");
            for i in 0..self.qubit_count() {
                out.push(' ');
                out.push_str(self.qubit_name(QubitRef(i)));
            }
            out.push('\n');
        }
        for pi in self.instructions() {
            out.push_str(mnemonic(pi.instruction));
            for &q in &pi.qubits {
                out.push(' ');
                out.push_str(self.qubit_name(q));
            }
            out.push('\n');
        }
        out
    }
}

fn error_line(e: &crate::ir::ProgramError) -> usize {
    match e {
        crate::ir::ProgramError::NotLive { line, .. }
        | crate::ir::ProgramError::AlreadyLive { line, .. } => line.unwrap_or(1),
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BELL: &str = "\
# Bell pair
qubit a b
prep_x a
prep_z b
merge_zz a b  # joint ZZ
";

    #[test]
    fn parses_a_commented_program() {
        let p = LogicalProgram::parse("bell", BELL).unwrap();
        assert_eq!(p.qubit_count(), 2);
        assert_eq!(p.len(), 3);
        assert_eq!(p.instructions()[2].instruction, Instruction::MeasureZZ);
        assert_eq!(p.instructions()[2].line, Some(5));
    }

    #[test]
    fn aliases_and_table1_ids_both_resolve() {
        for (word, expect) in [
            ("prep_z", Instruction::PrepareZ),
            ("prepare_z", Instruction::PrepareZ),
            ("PREP_X", Instruction::PrepareX),
            ("meas_x", Instruction::MeasureX),
            ("measure_x", Instruction::MeasureX),
            ("merge_zz", Instruction::MeasureZZ),
            ("measure_zz", Instruction::MeasureZZ),
            ("x", Instruction::PauliX),
            ("h", Instruction::Hadamard),
            ("idle", Instruction::Idle),
            ("inject_t", Instruction::InjectT),
        ] {
            assert_eq!(instruction_from_mnemonic(word), Some(expect), "{word}");
        }
        assert_eq!(instruction_from_mnemonic("cnot"), None);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = LogicalProgram::parse("p", "qubit a\nfrobnicate a\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("frobnicate"));

        let err = LogicalProgram::parse("p", "qubit a\nprep_z b\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown qubit 'b'"));

        let err = LogicalProgram::parse("p", "qubit\n").unwrap_err();
        assert_eq!(err.line, 1);

        let err = LogicalProgram::parse("p", "qubit a\nmerge_zz a\n").unwrap_err();
        assert_eq!(err.line, 2);

        // Liveness violations point at the offending instruction's line.
        let err =
            LogicalProgram::parse("p", "qubit a\nprep_z a\n\nh a\nmeas_z a\nh a\n").unwrap_err();
        assert_eq!(err.line, 6);
        assert!(err.message.contains("not live"));
    }

    #[test]
    fn line_endings_do_not_change_the_parse() {
        let lf = LogicalProgram::parse("bell", BELL).unwrap();
        for (name, text) in [
            ("crlf", BELL.replace('\n', "\r\n")),
            ("cr", BELL.replace('\n', "\r")),
            ("no trailing newline", BELL.trim_end().to_string()),
            (
                "mixed",
                "# Bell pair\r\nqubit a b\rprep_x a\nprep_z b\r\nmerge_zz a b  # joint ZZ"
                    .to_string(),
            ),
        ] {
            let p = LogicalProgram::parse("bell", &text).unwrap();
            assert_eq!(p.qubit_count(), lf.qubit_count(), "{name}");
            assert_eq!(p.len(), lf.len(), "{name}");
            assert_eq!(p.instructions()[2].line, Some(5), "{name}");
        }
    }

    #[test]
    fn a_lone_cr_separates_lines_instead_of_merging_them() {
        // `str::lines` would glue these into one line, mis-parsing it as
        // `qubit a prep_z a` (a duplicate-qubit declaration).
        let p = LogicalProgram::parse("p", "qubit a\rprep_z a\rmeas_z a").unwrap();
        assert_eq!(p.qubit_count(), 1);
        assert_eq!(p.len(), 2);
        assert_eq!(p.instructions()[1].line, Some(3));

        // Errors after a lone CR report the true source line.
        let err = LogicalProgram::parse("p", "qubit a\rfrobnicate a\n").unwrap_err();
        assert_eq!(err.line, 2);

        // CRLF comments don't swallow the following line either.
        let err = LogicalProgram::parse("p", "qubit a # names\r\nprep_z b\r\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown qubit 'b'"));
    }

    #[test]
    fn tql_round_trips_through_render_and_parse() {
        let p = LogicalProgram::parse("bell", BELL).unwrap();
        let q = LogicalProgram::parse("bell", &p.to_tql()).unwrap();
        assert_eq!(p.qubit_count(), q.qubit_count());
        assert_eq!(p.len(), q.len());
        for (a, b) in p.instructions().iter().zip(q.instructions()) {
            assert_eq!(a.instruction, b.instruction);
            assert_eq!(a.qubits, b.qubits);
        }
    }
}

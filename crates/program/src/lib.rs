//! Algorithm-level logical programs for the TISCC stack.
//!
//! The paper's per-instruction compiler answers "what does one
//! lattice-surgery instruction cost?"; this crate answers the question the
//! compiler exists to feed: *what does a whole logical program cost?* It
//! provides the four layers between a named algorithm and a space–time
//! resource estimate:
//!
//! * [`ir`] — the logical-program intermediate representation: named
//!   logical qubits plus a sequence of Table 1 lattice-surgery
//!   instructions, with a builder API and liveness validation,
//! * [`parse`] — the `.tql` (TISCC quantum logic) text format: a
//!   line-oriented surface syntax for the IR with stable mnemonics
//!   (`prep_x q0`, `merge_zz q0 q1`, `inject_t q2`, …),
//! * [`examples`] — canonical programs (Bell-pair preparation, logical
//!   state teleportation, the T-layer of a small ripple-carry adder) used
//!   by the documentation, the CLI smoke tests and the benchmarks,
//! * [`layout2d`] — 2D patch placement: assigns every logical qubit a
//!   tile on an H×W tile grid under a [`LayoutSpec`] strategy (the legacy
//!   single-lane row, row-major data rows over ancilla lanes, or an
//!   interleaved data/ancilla checkerboard), and maps the resulting tile
//!   grid onto the [`tiscc_grid::Layout`] substrate,
//! * [`route`] — congestion-aware corridor routing: BFS over the ancilla
//!   fabric finds the merge corridor of each joint measurement, with
//!   per-timestep [`Reservations`] so disjoint corridors execute in
//!   parallel and conflicting ones serialise,
//! * [`schedule`](mod@schedule) — the dependency- and congestion-aware
//!   ASAP list scheduler: packs instructions that touch disjoint tiles
//!   (and disjoint corridors) into the same parallel logical time step,
//!   reporting `routing_stalls` and `parallel_merges` per schedule,
//! * [`budget`] — the configurable per-step logical error model and
//!   error-budget distance selection.
//!
//! The driver that joins these layers to the per-instruction compiler
//! lives in `tiscc_estimator::program`; the `tiscc estimate` subcommand
//! exposes it on the command line (`--layout`, `--grid`, `--show-layout`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod budget;
pub mod examples;
pub mod ir;
pub mod layout2d;
pub mod parse;
pub mod route;
pub mod schedule;

pub use budget::{BudgetError, ErrorModel};
pub use ir::{LogicalProgram, ProgramError, ProgramInstruction, QubitRef};
pub use layout2d::{LayoutSpec, LayoutStrategy, Placement, PlacementError, Tile};
pub use parse::ParseError;
pub use route::{find_corridor, Reservations, RoutingError};
pub use schedule::{schedule, schedule_with, Schedule, ScheduleStep};

//! Congestion-aware corridor routing for lattice-surgery merges.
//!
//! On the 2D layouts ([`LayoutStrategy::RowMajor`] and
//! [`LayoutStrategy::Checkerboard`]) a joint `Measure XX`/`Measure ZZ`
//! between two placed patches is mediated by a *corridor*: a connected
//! path of ancilla tiles whose first tile touches one operand patch and
//! whose last tile touches the other. The merge ancilla patch is grown
//! along the corridor, joint syndrome extraction runs for one logical
//! time step, and the corridor is released.
//!
//! Corridors are found with the deterministic multi-source BFS of
//! [`tiscc_grid::shortest_tile_path`] over the tile grid: passable tiles
//! are those not hosting a logical patch and not *reserved* by another
//! merge in the same logical time step. The scheduler keeps those
//! per-timestep reservations in a [`Reservations`] table — two merges
//! whose corridors are disjoint execute in the same step, while a merge
//! that cannot find a free corridor at its ready step *stalls* to a later
//! one (counted as [`crate::schedule::Schedule::routing_stalls`]).
//!
//! A merge whose operands cannot be connected even on an otherwise empty
//! grid (every candidate corridor blocked by placed patches or the grid
//! boundary) is a typed [`RoutingError`] — the program is unroutable
//! under that floorplan, and a different [`crate::LayoutSpec`] is needed.
//!
//! [`LayoutStrategy::RowMajor`]: crate::layout2d::LayoutStrategy::RowMajor
//! [`LayoutStrategy::Checkerboard`]: crate::layout2d::LayoutStrategy::Checkerboard

use std::collections::HashSet;
use std::fmt;

use tiscc_core::instruction::Instruction;
use tiscc_grid::shortest_tile_path;

use crate::ir::{LogicalProgram, QubitRef};
use crate::layout2d::{Placement, Tile};

/// A merge between two patches that no corridor can serve.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoutingError {
    /// The joint measurement that could not be routed, when known — the
    /// scheduler fills it in; static probes ([`find_corridor`]) have no
    /// instruction context and leave it `None`.
    pub instruction: Option<Instruction>,
    /// Name of the first operand qubit.
    pub a: String,
    /// Tile of the first operand qubit.
    pub a_tile: Tile,
    /// Name of the second operand qubit.
    pub b: String,
    /// Tile of the second operand qubit.
    pub b_tile: Tile,
    /// 1-based `.tql` source line of the merge, when known.
    pub line: Option<usize>,
}

impl fmt::Display for RoutingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no ancilla corridor connects '{}' at ({}, {}) with '{}' at ({}, {}) for {}{}; \
             the floorplan is unroutable — use a larger --grid or a different --layout",
            self.a,
            self.a_tile.0,
            self.a_tile.1,
            self.b,
            self.b_tile.0,
            self.b_tile.1,
            match self.instruction {
                Some(instruction) => instruction.id(),
                None => "a joint measurement",
            },
            match self.line {
                Some(n) => format!(" (line {n})"),
                None => String::new(),
            }
        )
    }
}

impl std::error::Error for RoutingError {}

/// Per-timestep corridor reservations: which tiles are already claimed by
/// merges scheduled into each logical time step.
///
/// The table grows on demand; steps never probed are implicitly free.
///
/// ```
/// use tiscc_program::route::Reservations;
///
/// let mut res = Reservations::new();
/// res.reserve(2, [(1, 0), (1, 1)]);
/// assert!(!res.is_free(2, (1, 1)));
/// assert!(res.is_free(1, (1, 1)), "reservations are per-step");
/// assert!(res.is_free(3, (1, 1)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Reservations {
    steps: Vec<HashSet<Tile>>,
}

impl Reservations {
    /// An empty reservation table.
    pub fn new() -> Self {
        Reservations::default()
    }

    /// True if `tile` is unreserved at `step`.
    pub fn is_free(&self, step: usize, tile: Tile) -> bool {
        self.steps.get(step).is_none_or(|s| !s.contains(&tile))
    }

    /// Reserves `tiles` at `step`.
    pub fn reserve(&mut self, step: usize, tiles: impl IntoIterator<Item = Tile>) {
        if self.steps.len() <= step {
            self.steps.resize_with(step + 1, HashSet::new);
        }
        self.steps[step].extend(tiles);
    }

    /// Number of tiles reserved at `step`.
    pub fn reserved_at(&self, step: usize) -> usize {
        self.steps.get(step).map_or(0, |s| s.len())
    }
}

/// The free (in-bounds, unoccupied) orthogonal neighbour tiles of `tile`,
/// in the same up-left-right-down order [`shortest_tile_path`] expands in
/// (wrapped-subtraction values fall outside the grid and are dropped by
/// the bounds check).
fn free_neighbors(placement: &Placement, tile: Tile) -> Vec<Tile> {
    let (r, c) = tile;
    [(r.wrapping_sub(1), c), (r, c.wrapping_sub(1)), (r, c + 1), (r + 1, c)]
        .into_iter()
        .filter(|&t| placement.in_bounds(t) && !placement.is_occupied(t))
        .collect()
}

/// Finds the shortest ancilla corridor connecting the patches of `a` and
/// `b` on `placement`, avoiding tiles for which `blocked` returns `true`
/// (on top of the always-avoided placed patches). Returns the corridor
/// tiles in order from the tile touching `a` to the tile touching `b`, or
/// `None` when no corridor is currently free.
pub fn corridor_avoiding(
    placement: &Placement,
    a: QubitRef,
    b: QubitRef,
    blocked: &dyn Fn(Tile) -> bool,
) -> Option<Vec<Tile>> {
    let a_tile = placement.data_tile(a);
    let b_tile = placement.data_tile(b);
    let sources = free_neighbors(placement, a_tile);
    let goals: HashSet<Tile> = free_neighbors(placement, b_tile).into_iter().collect();
    if sources.is_empty() || goals.is_empty() {
        return None;
    }
    shortest_tile_path(
        placement.tile_rows(),
        placement.tile_cols(),
        &sources,
        &|t| goals.contains(&t),
        &|t| !placement.is_occupied(t) && !blocked(t),
    )
}

/// Finds the shortest ancilla corridor connecting the patches of `a` and
/// `b` on an otherwise idle grid (no reservations), or a typed
/// [`RoutingError`] when the two patches cannot be connected at all under
/// this floorplan. This is the static routability probe; errors name the
/// qubits but carry no instruction or source line (only the scheduler
/// knows which merge it was routing).
///
/// ```
/// use tiscc_program::route::find_corridor;
/// use tiscc_program::{examples, LayoutSpec, Placement};
///
/// let program = examples::bell_pair();
/// let place =
///     Placement::allocate_with(&program, &LayoutSpec::checkerboard().with_grid(2, 4)).unwrap();
/// let (a, b) = (program.qubit("a").unwrap(), program.qubit("b").unwrap());
/// // a sits at (0, 0), b at (0, 2): the single ancilla between them.
/// assert_eq!(find_corridor(&place, &program, a, b).unwrap(), vec![(0, 1)]);
/// ```
pub fn find_corridor(
    placement: &Placement,
    program: &LogicalProgram,
    a: QubitRef,
    b: QubitRef,
) -> Result<Vec<Tile>, RoutingError> {
    corridor_avoiding(placement, a, b, &|_| false).ok_or_else(|| RoutingError {
        instruction: None,
        a: program.qubit_name(a).to_string(),
        a_tile: placement.data_tile(a),
        b: program.qubit_name(b).to_string(),
        b_tile: placement.data_tile(b),
        line: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::LogicalProgram;
    use crate::layout2d::LayoutSpec;

    fn chain(n: usize) -> LogicalProgram {
        let mut p = LogicalProgram::new("chain");
        for i in 0..n {
            p.add_qubit(format!("q{i}")).unwrap();
        }
        p
    }

    #[test]
    fn adjacent_checkerboard_patches_use_single_tile_corridors() {
        let p = chain(4);
        let place =
            Placement::allocate_with(&p, &LayoutSpec::checkerboard().with_grid(8, 8)).unwrap();
        // q0 at (0,0), q1 at (0,2): the tile between them.
        assert_eq!(find_corridor(&place, &p, QubitRef(0), QubitRef(1)).unwrap(), vec![(0, 1)]);
        // q0 and q3 at (0,6): a longer corridor whose endpoints touch both.
        let c = find_corridor(&place, &p, QubitRef(0), QubitRef(3)).unwrap();
        assert!(c.len() >= 2);
        for t in &c {
            assert!(!place.is_occupied(*t));
        }
    }

    #[test]
    fn reservations_divert_or_block_corridors() {
        let p = chain(4);
        let place = Placement::allocate_with(&p, &LayoutSpec::row_major().with_grid(2, 4)).unwrap();
        // Row layout 2×4: q0..q3 pack row 0; the lane row is the fabric.
        let free = find_corridor(&place, &p, QubitRef(0), QubitRef(2)).unwrap();
        assert_eq!(free, vec![(1, 0), (1, 1), (1, 2)]);
        // Reserving q1's only access tile makes the merge unroutable *now*
        // (a stall), though it stays statically routable.
        let mut res = Reservations::new();
        res.reserve(0, [(1, 1)]);
        assert!(
            corridor_avoiding(&place, QubitRef(0), QubitRef(2), &|t| !res.is_free(0, t)).is_none()
        );
        assert!(find_corridor(&place, &p, QubitRef(0), QubitRef(2)).is_ok());
    }

    #[test]
    fn unroutable_floorplans_raise_typed_errors() {
        let p = chain(2);
        // A 1×2 row grid has no ancilla row at all.
        let place = Placement::allocate_with(&p, &LayoutSpec::row_major().with_grid(1, 2)).unwrap();
        let err = find_corridor(&place, &p, QubitRef(0), QubitRef(1)).unwrap_err();
        assert_eq!(err.a_tile, (0, 0));
        assert_eq!(err.b_tile, (0, 1));
        assert!(err.to_string().contains("unroutable"));
    }

    #[test]
    fn corridor_endpoints_touch_the_operand_patches() {
        let p = chain(6);
        for spec in
            [LayoutSpec::row_major().with_grid(4, 6), LayoutSpec::checkerboard().with_grid(6, 6)]
        {
            let place = Placement::allocate_with(&p, &spec).unwrap();
            for a in 0..6 {
                for b in (a + 1)..6 {
                    let c = find_corridor(&place, &p, QubitRef(a), QubitRef(b)).unwrap();
                    let touches = |t: Tile, q: Tile| t.0.abs_diff(q.0) + t.1.abs_diff(q.1) == 1;
                    assert!(touches(c[0], place.data_tile(QubitRef(a))), "{spec:?} {a}-{b}");
                    assert!(
                        touches(*c.last().unwrap(), place.data_tile(QubitRef(b))),
                        "{spec:?} {a}-{b}"
                    );
                }
            }
        }
    }
}

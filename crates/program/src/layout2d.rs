//! 2D patch placement: logical qubits onto an H×W tile grid.
//!
//! The allocator assigns every logical qubit of a program one *tile* of a
//! rectangular tile grid; each tile hosts one distance-`d` surface-code
//! patch (`d × d` repeating units of the [`tiscc_grid::Layout`] substrate).
//! Tiles not hosting a patch are *ancilla tiles*: the free fabric that
//! lattice-surgery merge corridors are routed through (see
//! [`crate::route`]). Three placement strategies are available, selected by
//! a [`LayoutSpec`]:
//!
//! * [`LayoutStrategy::SingleLane`] (the default) — the original 1D
//!   floorplan: one data row of tiles in declaration order over one shared
//!   ancilla routing lane. Merges between horizontally adjacent qubits run
//!   directly on the shared boundary; everything else occupies the lane
//!   tiles spanning the operand columns. Estimates under this strategy are
//!   bit-for-bit identical to the pre-2D allocator.
//!
//!   ```text
//!   column:     0    1    2    3
//!   data row:  [q0] [q1] [q2] [q3]
//!   lane row:  [··] [··] [··] [··]   ← routing / merge ancilla lane
//!   ```
//!
//! * [`LayoutStrategy::RowMajor`] — a 2D grid whose even tile rows are
//!   data rows (filled left-to-right in declaration order) and whose odd
//!   rows are dedicated ancilla lanes. Every merge routes through a
//!   corridor of free tiles found by BFS; qubits packed shoulder-to-
//!   shoulder on a data row share the lane beneath them, so crossing
//!   merges contend ([`crate::schedule::Schedule::routing_stalls`]).
//!
//! * [`LayoutStrategy::Checkerboard`] — data and ancilla tiles
//!   interleaved: qubits occupy tiles whose row+column parity is even
//!   (row-major in declaration order), leaving every patch bordered by
//!   free tiles on all four sides. Neighbouring qubits merge through
//!   single-tile corridors that rarely overlap, so independent merges run
//!   in parallel.
//!
//! [`Placement::layout`] maps the tile grid onto the
//! [`tiscc_grid::Layout`] substrate: a distance-`d` tile occupies `d × d`
//! repeating units, so the machine for a placement is a
//! `(tile_rows·d) × (tile_cols·d)`-unit grid.

use std::fmt;

use tiscc_core::instruction::Instruction;
use tiscc_grid::Layout;

use crate::ir::{LogicalProgram, ProgramInstruction, QubitRef};

/// The tile coordinate `(row, col)` of one logical patch or ancilla tile.
pub type Tile = (usize, usize);

/// How logical patches are arranged on the tile grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LayoutStrategy {
    /// One data row over one shared ancilla lane (the legacy 1D floorplan;
    /// the default).
    SingleLane,
    /// Even tile rows are data rows, odd rows are ancilla routing lanes.
    RowMajor,
    /// Data on even-parity tiles, ancilla on odd-parity tiles.
    Checkerboard,
}

impl LayoutStrategy {
    /// The CLI name of the strategy (`lane`, `row`, `checkerboard`).
    pub fn name(&self) -> &'static str {
        match self {
            LayoutStrategy::SingleLane => "lane",
            LayoutStrategy::RowMajor => "row",
            LayoutStrategy::Checkerboard => "checkerboard",
        }
    }
}

/// What floorplan to allocate: a placement strategy plus an optional
/// explicit tile-grid size.
///
/// ```
/// use tiscc_program::{examples, LayoutSpec, Placement};
///
/// let program = examples::bell_pair();
/// // The default spec reproduces the legacy single-lane floorplan.
/// let lane = Placement::allocate_with(&program, &LayoutSpec::default()).unwrap();
/// assert_eq!((lane.tile_rows(), lane.tile_cols()), (2, 2));
///
/// // An 8×8 checkerboard spreads the patches over a 2D fabric.
/// let spec = LayoutSpec::checkerboard().with_grid(8, 8);
/// let board = Placement::allocate_with(&program, &spec).unwrap();
/// assert_eq!(board.total_tiles(), 64);
/// assert_eq!(board.data_tile(program.qubit("b").unwrap()), (0, 2));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LayoutSpec {
    /// The placement strategy.
    pub strategy: LayoutStrategy,
    /// Explicit tile-grid dimensions `(rows, cols)`; `None` picks the
    /// smallest grid the strategy needs for the program.
    pub grid: Option<(usize, usize)>,
}

impl Default for LayoutSpec {
    /// The legacy single-lane floorplan on an auto-sized `2 × n` grid.
    fn default() -> Self {
        LayoutSpec { strategy: LayoutStrategy::SingleLane, grid: None }
    }
}

impl LayoutSpec {
    /// The default single-lane floorplan.
    pub fn single_lane() -> Self {
        LayoutSpec::default()
    }

    /// Row-major data rows interleaved with ancilla lane rows.
    pub fn row_major() -> Self {
        LayoutSpec { strategy: LayoutStrategy::RowMajor, grid: None }
    }

    /// Interleaved data/ancilla checkerboard.
    pub fn checkerboard() -> Self {
        LayoutSpec { strategy: LayoutStrategy::Checkerboard, grid: None }
    }

    /// Resolves a strategy by its CLI name (`lane`, `row`, `checkerboard`;
    /// case-insensitive).
    pub fn by_name(name: &str) -> Result<Self, PlacementError> {
        match name.to_ascii_lowercase().as_str() {
            "lane" | "single-lane" | "single_lane" => Ok(LayoutSpec::single_lane()),
            "row" | "row-major" | "row_major" => Ok(LayoutSpec::row_major()),
            "checkerboard" | "checker" => Ok(LayoutSpec::checkerboard()),
            other => Err(PlacementError::UnknownStrategy(other.to_string())),
        }
    }

    /// Sets an explicit tile-grid size of `rows × cols` tiles.
    pub fn with_grid(mut self, rows: usize, cols: usize) -> Self {
        self.grid = Some((rows, cols));
        self
    }
}

/// Errors raised while placing a program onto a tile grid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlacementError {
    /// The requested strategy name is not recognised.
    UnknownStrategy(String),
    /// A grid dimension was zero.
    EmptyGrid,
    /// The grid has fewer data slots than the program has qubits.
    GridTooSmall {
        /// Declared logical qubits of the program.
        qubits: usize,
        /// Data slots the grid offers under the strategy.
        capacity: usize,
        /// Requested grid rows.
        rows: usize,
        /// Requested grid columns.
        cols: usize,
        /// The placement strategy.
        strategy: LayoutStrategy,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::UnknownStrategy(name) => {
                write!(f, "unknown layout '{name}' (expected lane, row or checkerboard)")
            }
            PlacementError::EmptyGrid => write!(f, "tile grid dimensions must be non-zero"),
            PlacementError::GridTooSmall { qubits, capacity, rows, cols, strategy } => write!(
                f,
                "a {rows}x{cols} grid holds {capacity} data patch(es) under the {} layout, \
                 but the program declares {qubits} logical qubit(s); use a larger --grid",
                strategy.name()
            ),
        }
    }
}

impl std::error::Error for PlacementError {}

/// A placement of a program's logical qubits onto the tile grid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    tiles: Vec<Tile>,
    tile_rows: usize,
    tile_cols: usize,
    strategy: LayoutStrategy,
    occupied: Vec<bool>,
}

impl Placement {
    /// Allocates the legacy single-lane floorplan for `program`: one
    /// data-row column per qubit in declaration order, plus the full-width
    /// routing lane beneath them. Never fails (the grid is auto-sized).
    pub fn allocate(program: &LogicalProgram) -> Placement {
        Placement::allocate_with(program, &LayoutSpec::default())
            .expect("auto-sized single-lane placement cannot fail")
    }

    /// Allocates tiles for every declared qubit of `program` under `spec`.
    ///
    /// Data slots are assigned in declaration order; the slot enumeration
    /// order is part of each strategy's contract (see the module docs).
    /// Fails when an explicit grid is too small for the program or has a
    /// zero dimension.
    pub fn allocate_with(
        program: &LogicalProgram,
        spec: &LayoutSpec,
    ) -> Result<Placement, PlacementError> {
        let n = program.qubit_count();
        let (rows, cols) = match spec.grid {
            Some((r, c)) => {
                if r == 0 || c == 0 {
                    return Err(PlacementError::EmptyGrid);
                }
                (r, c)
            }
            None => match spec.strategy {
                // The legacy shape: a data row over a lane row.
                LayoutStrategy::SingleLane | LayoutStrategy::RowMajor => (2, n.max(1)),
                // Qubits land on row 0 with a gap column between each pair.
                LayoutStrategy::Checkerboard => (2, (2 * n).max(1)),
            },
        };
        let slots: Vec<Tile> = match spec.strategy {
            // The single-lane 1D contract: data on row 0 only, and the grid
            // must actually include the lane row beneath it.
            LayoutStrategy::SingleLane => {
                if rows < 2 {
                    Vec::new()
                } else {
                    (0..cols).map(|c| (0, c)).collect()
                }
            }
            LayoutStrategy::RowMajor => {
                (0..rows).step_by(2).flat_map(|r| (0..cols).map(move |c| (r, c))).collect()
            }
            LayoutStrategy::Checkerboard => (0..rows)
                .flat_map(|r| (0..cols).map(move |c| (r, c)))
                .filter(|(r, c)| (r + c) % 2 == 0)
                .collect(),
        };
        if slots.len() < n {
            return Err(PlacementError::GridTooSmall {
                qubits: n,
                capacity: slots.len(),
                rows,
                cols,
                strategy: spec.strategy,
            });
        }
        let tiles: Vec<Tile> = slots.into_iter().take(n).collect();
        let mut occupied = vec![false; rows * cols];
        for &(r, c) in &tiles {
            occupied[r * cols + c] = true;
        }
        Ok(Placement { tiles, tile_rows: rows, tile_cols: cols, strategy: spec.strategy, occupied })
    }

    /// The placement strategy this floorplan was allocated under.
    pub fn strategy(&self) -> LayoutStrategy {
        self.strategy
    }

    /// The data-row column of a qubit (single-lane floorplans place every
    /// qubit on row 0, so the column identifies the tile).
    pub fn column(&self, q: QubitRef) -> usize {
        self.tiles[q.0].1
    }

    /// The data tile of a qubit.
    pub fn data_tile(&self, q: QubitRef) -> Tile {
        self.tiles[q.0]
    }

    /// Tile rows of the placement.
    pub fn tile_rows(&self) -> usize {
        self.tile_rows
    }

    /// Tile columns of the placement.
    pub fn tile_cols(&self) -> usize {
        self.tile_cols
    }

    /// Number of data tiles (one per logical qubit).
    pub fn data_tiles(&self) -> usize {
        self.tiles.len()
    }

    /// Number of ancilla (routing) tiles: every tile not hosting a patch.
    pub fn lane_tiles(&self) -> usize {
        self.total_tiles() - self.data_tiles()
    }

    /// Total tiles of the grid, data and ancilla alike. Every tile
    /// undergoes error correction each logical time step, so this is the
    /// spatial factor of the error budget's patch-steps.
    pub fn total_tiles(&self) -> usize {
        self.tile_rows * self.tile_cols
    }

    /// True if `tile` hosts a logical patch.
    pub fn is_occupied(&self, tile: Tile) -> bool {
        let (r, c) = tile;
        r < self.tile_rows && c < self.tile_cols && self.occupied[r * self.tile_cols + c]
    }

    /// True if `tile` lies on the grid.
    pub fn in_bounds(&self, tile: Tile) -> bool {
        tile.0 < self.tile_rows && tile.1 < self.tile_cols
    }

    /// Whether a joint measurement runs directly on a shared patch
    /// boundary, without an ancilla corridor. Only the single-lane
    /// strategy has direct merges (a `Measure ZZ` between horizontally
    /// adjacent columns); 2D strategies route every merge through a
    /// corridor found by [`crate::route::find_corridor`].
    pub fn is_direct_merge(&self, pi: &ProgramInstruction) -> bool {
        if self.strategy != LayoutStrategy::SingleLane {
            return false;
        }
        match pi.qubits.as_slice() {
            [a, b] => {
                pi.instruction == Instruction::MeasureZZ
                    && self.column(*a).abs_diff(self.column(*b)) == 1
            }
            _ => false,
        }
    }

    /// The set of tiles an instruction occupies while it executes under
    /// the **single-lane** strategy: the operand data tiles, plus — for
    /// joint measurements that are not a direct horizontal `Measure ZZ`
    /// between adjacent columns — the routing-lane tiles spanning the
    /// operand columns. 2D strategies return only the operand data tiles;
    /// their corridors are computed dynamically by the scheduler (see
    /// [`crate::route`]).
    pub fn footprint(&self, pi: &ProgramInstruction) -> Vec<Tile> {
        let mut tiles: Vec<Tile> = pi.qubits.iter().map(|&q| self.data_tile(q)).collect();
        if self.strategy == LayoutStrategy::SingleLane
            && pi.qubits.len() == 2
            && !self.is_direct_merge(pi)
        {
            tiles.extend(self.lane_span(pi));
        }
        tiles
    }

    /// The shared-lane tiles a routed single-lane merge occupies: the lane
    /// row under every column spanned by the operands. Empty for direct
    /// merges and for 2D strategies.
    pub fn lane_span(&self, pi: &ProgramInstruction) -> Vec<Tile> {
        if self.strategy != LayoutStrategy::SingleLane || pi.qubits.len() != 2 {
            return Vec::new();
        }
        if self.is_direct_merge(pi) {
            return Vec::new();
        }
        let (ca, cb) = (self.column(pi.qubits[0]), self.column(pi.qubits[1]));
        let (lo, hi) = (ca.min(cb), ca.max(cb));
        (lo..=hi).map(|c| (1, c)).collect()
    }

    /// The trapped-ion grid hosting this placement at code distance `d`:
    /// every tile is `d × d` repeating units (one unit per surface-code
    /// qubit site, as in the per-instruction fixtures).
    pub fn layout(&self, d: usize) -> Layout {
        let d = d.max(1) as u32;
        Layout::new(self.tile_rows as u32 * d, self.tile_cols as u32 * d)
    }

    /// ASCII rendering of the floorplan: one cell per tile, data tiles
    /// labelled with the (possibly truncated) qubit name, ancilla tiles
    /// shown as `··`. This is what `tiscc estimate --show-layout` prints.
    pub fn render_ascii(&self, program: &LogicalProgram) -> String {
        let width = self
            .tiles
            .iter()
            .enumerate()
            .map(|(i, _)| program.qubit_name(QubitRef(i)).chars().count())
            .max()
            .unwrap_or(1)
            .clamp(2, 8);
        let mut by_tile = vec![None; self.tile_rows * self.tile_cols];
        for (i, &(r, c)) in self.tiles.iter().enumerate() {
            by_tile[r * self.tile_cols + c] = Some(QubitRef(i));
        }
        let mut out = format!(
            "floorplan: {} layout on {}x{} tiles ({} patch(es), {} ancilla tile(s))\n",
            self.strategy.name(),
            self.tile_rows,
            self.tile_cols,
            self.data_tiles(),
            self.lane_tiles()
        );
        for r in 0..self.tile_rows {
            out.push_str("  ");
            for c in 0..self.tile_cols {
                let cell = match by_tile[r * self.tile_cols + c] {
                    Some(q) => {
                        let name: String = program.qubit_name(q).chars().take(width).collect();
                        format!("{name:<width$}")
                    }
                    None => {
                        let dots = "··";
                        format!("{dots:<width$}")
                    }
                };
                out.push_str(&cell);
                if c + 1 < self.tile_cols {
                    out.push(' ');
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples;

    #[test]
    fn qubits_get_declaration_order_columns() {
        let p = examples::teleportation();
        let place = Placement::allocate(&p);
        assert_eq!(place.tile_cols(), 3);
        assert_eq!(place.total_tiles(), 6);
        assert_eq!(place.strategy(), LayoutStrategy::SingleLane);
        for (i, name) in ["src", "anc", "dst"].iter().enumerate() {
            let q = p.qubit(name).unwrap();
            assert_eq!(place.data_tile(q), (0, i));
        }
    }

    #[test]
    fn footprints_distinguish_direct_and_routed_merges() {
        let p = examples::teleportation();
        let place = Placement::allocate(&p);
        let instrs = p.instructions();
        // merge_zz anc dst: columns 1 and 2 are adjacent → direct merge.
        let zz = &instrs[3];
        assert_eq!(zz.instruction, Instruction::MeasureZZ);
        assert!(place.is_direct_merge(zz));
        assert_eq!(place.footprint(zz), vec![(0, 1), (0, 2)]);
        // merge_xx src anc: XX needs a vertical boundary → routed through
        // the lane under columns 0..=1.
        let xx = &instrs[4];
        assert_eq!(xx.instruction, Instruction::MeasureXX);
        assert_eq!(place.footprint(xx), vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
        // Single-qubit footprints are just the data tile.
        assert_eq!(place.footprint(&instrs[0]), vec![(0, 0)]);
    }

    #[test]
    fn layout_scales_with_distance_and_tile_grid() {
        let p = examples::bell_pair();
        let place = Placement::allocate(&p);
        let layout = place.layout(3);
        assert_eq!(layout.unit_rows(), 2 * 3);
        assert_eq!(layout.unit_cols(), 2 * 3);
        // 6 trapping zones per unit (tiscc_grid invariant).
        assert_eq!(layout.trapping_zone_count(), 6 * 36);
    }

    #[test]
    fn row_major_fills_even_rows_left_to_right() {
        let p = examples::adder_t_layer(4); // 8 qubits
                                            // Rows 0 and 2 of a 4×3 grid hold 3 qubits each: capacity 6 < 8.
        assert!(matches!(
            Placement::allocate_with(&p, &LayoutSpec::row_major().with_grid(4, 3)),
            Err(PlacementError::GridTooSmall { capacity: 6, .. })
        ));
        // A 4×4 grid has capacity 8 (rows 0 and 2).
        let place = Placement::allocate_with(&p, &LayoutSpec::row_major().with_grid(4, 4)).unwrap();
        assert_eq!(place.data_tile(QubitRef(0)), (0, 0));
        assert_eq!(place.data_tile(QubitRef(3)), (0, 3));
        assert_eq!(place.data_tile(QubitRef(4)), (2, 0));
        assert_eq!(place.data_tile(QubitRef(7)), (2, 3));
        assert_eq!(place.lane_tiles(), 8);
    }

    #[test]
    fn checkerboard_places_on_even_parity_tiles() {
        let p = examples::adder_t_layer(4); // 8 qubits
        let spec = LayoutSpec::checkerboard().with_grid(8, 8);
        let place = Placement::allocate_with(&p, &spec).unwrap();
        assert_eq!(place.data_tile(QubitRef(0)), (0, 0));
        assert_eq!(place.data_tile(QubitRef(3)), (0, 6));
        assert_eq!(place.data_tile(QubitRef(4)), (1, 1));
        assert_eq!(place.data_tile(QubitRef(7)), (1, 7));
        for i in 0..8 {
            let (r, c) = place.data_tile(QubitRef(i));
            assert_eq!((r + c) % 2, 0, "qubit {i} on odd-parity tile");
        }
        // Every patch in a checkerboard has at least one free neighbour.
        assert!(!place.is_occupied((0, 1)));
        assert!(!place.is_occupied((1, 0)));
        // 2D strategies never merge directly.
        let merge = &p.instructions()[8];
        assert_eq!(merge.instruction, Instruction::MeasureZZ);
        assert!(!place.is_direct_merge(merge));
        assert_eq!(place.footprint(merge).len(), 2);
    }

    #[test]
    fn bad_specs_are_rejected_with_typed_errors() {
        let p = examples::bell_pair();
        assert_eq!(
            Placement::allocate_with(&p, &LayoutSpec::row_major().with_grid(0, 4)),
            Err(PlacementError::EmptyGrid)
        );
        assert!(matches!(
            Placement::allocate_with(&p, &LayoutSpec::checkerboard().with_grid(1, 2)),
            Err(PlacementError::GridTooSmall { .. })
        ));
        assert!(matches!(
            LayoutSpec::by_name("hexagonal"),
            Err(PlacementError::UnknownStrategy(_))
        ));
        assert_eq!(LayoutSpec::by_name("ROW").unwrap(), LayoutSpec::row_major());
        assert_eq!(LayoutSpec::by_name("lane").unwrap(), LayoutSpec::single_lane());
        let err = Placement::allocate_with(&p, &LayoutSpec::checkerboard().with_grid(1, 2))
            .unwrap_err()
            .to_string();
        assert!(err.contains("--grid"), "{err}");
    }

    #[test]
    fn floorplan_render_shows_patches_and_ancillas() {
        let p = examples::bell_pair();
        let place =
            Placement::allocate_with(&p, &LayoutSpec::checkerboard().with_grid(2, 4)).unwrap();
        let art = place.render_ascii(&p);
        assert!(art.contains("checkerboard layout on 2x4 tiles"));
        assert!(art.contains('a') && art.contains('b'));
        assert!(art.contains("··"));
    }
}

//! Equivalence and scale tests for round-templated compilation.
//!
//! The template path (compile two representative syndrome-extraction rounds,
//! replicate the rest analytically) must be *observationally identical* to
//! the materialized path: same ops, same bit-exact schedule, same
//! measurement records and labels, same resource reports, same validity
//! verdicts. These tests pin that equivalence over randomized fixtures and
//! every hardware profile (including `projected`, whose non-dyadic `Move`
//! duration would expose any period-arithmetic shortcut), plus a d = 19
//! single-instruction smoke test bounding the hot path's wall-clock cost.

use std::time::Instant;

use proptest::prelude::*;

use tiscc::core::instruction::{apply_instruction, apply_two_tile_instruction, Instruction};
use tiscc::estimator::program::{estimate_program, ProgramEstimateSpec};
use tiscc::estimator::verify::{Fiducial, SingleTile, TwoTiles};
use tiscc::estimator::{CompileRequest, Compiler, EstimateMode};
use tiscc::hw::validity::{check_circuit, check_stream};
use tiscc::hw::{CompiledRounds, HardwareModel, HardwareSpec, ResourceReport};
use tiscc::program::{LayoutSpec, LogicalProgram};

/// Compiles `instruction` end-to-end on a fresh fixture (input preparation
/// included, mirroring the estimator front door) and returns the hardware
/// model, the initial ion placement, and the op index where the
/// instruction's own circuit begins.
fn compile_fixture(
    instruction: Instruction,
    d: usize,
    dt: usize,
    spec: &HardwareSpec,
    templated: bool,
) -> (HardwareModel, Vec<(tiscc::grid::QubitId, tiscc::grid::QSite)>, usize) {
    if instruction.tiles() == 2 {
        let mut fixture = match instruction {
            Instruction::MeasureZZ => {
                TwoTiles::new_horizontal_with_spec(d, d, dt, spec.clone()).unwrap()
            }
            _ => TwoTiles::with_spec(d, d, dt, spec.clone()).unwrap(),
        };
        fixture.hw.set_round_templating(templated);
        let snapshot = fixture.hw.grid().snapshot();
        Fiducial::Zero.prepare(&mut fixture.hw, &mut fixture.upper).unwrap();
        Fiducial::Zero.prepare(&mut fixture.hw, &mut fixture.lower).unwrap();
        let before = fixture.hw.circuit().len();
        apply_two_tile_instruction(
            &mut fixture.hw,
            instruction,
            &mut fixture.upper,
            &mut fixture.lower,
        )
        .unwrap();
        (fixture.hw, snapshot, before)
    } else {
        let mut fixture = SingleTile::with_spec(d, d, dt, spec.clone()).unwrap();
        fixture.hw.set_round_templating(templated);
        let snapshot = fixture.hw.grid().snapshot();
        let needs_input = !matches!(
            instruction,
            Instruction::PrepareZ
                | Instruction::PrepareX
                | Instruction::InjectY
                | Instruction::InjectT
        );
        if needs_input {
            Fiducial::Zero.prepare(&mut fixture.hw, &mut fixture.patch).unwrap();
        }
        let before = fixture.hw.circuit().len();
        apply_instruction(&mut fixture.hw, instruction, &mut fixture.patch).unwrap();
        (fixture.hw, snapshot, before)
    }
}

/// Asserts full observational equivalence between the templated and the
/// materialized compilation of one configuration.
fn assert_equivalent(instruction: Instruction, d: usize, dt: usize, spec: &HardwareSpec) {
    let (reference, ref_snapshot, ref_before) = compile_fixture(instruction, d, dt, spec, false);
    let (templated, snapshot, before) = compile_fixture(instruction, d, dt, spec, true);
    assert_eq!(ref_before, before, "prologue length must not depend on templating");

    // The periodic circuit flattens to the exact reference circuit:
    // identical ops, bit-identical schedule, identical measurement wiring.
    let flat = templated.circuit().materialize();
    assert_eq!(flat.ops(), reference.circuit().ops(), "{instruction:?} d={d} dt={dt}");

    // Measurement records: same count, indices, bit-identical times and
    // identical rendered labels.
    let ref_recs = reference.circuit().measurements();
    let recs = templated.circuit().measurements();
    assert_eq!(recs.len(), ref_recs.len());
    for (a, b) in recs.iter().zip(ref_recs) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.qubit, b.qubit);
        assert_eq!(a.site, b.site);
        assert_eq!(a.start_us.to_bits(), b.start_us.to_bits());
        assert_eq!(a.label.render(), b.label.render());
    }

    // Streaming resource reports agree exactly (f64 equality, not approx)
    // on the instruction sub-range, records carried through extraction.
    let rounds = CompiledRounds::extract(templated.circuit(), before);
    let ref_rounds = CompiledRounds::extract(reference.circuit(), ref_before);
    assert_eq!(ref_rounds.repeats, 0, "reference range must be fully materialized");
    let layout = templated.grid().layout().clone();
    let report = ResourceReport::from_stream_with_spec(&rounds, &layout, spec);
    let ref_report = ResourceReport::from_stream_with_spec(&ref_rounds, &layout, spec);
    assert_eq!(report, ref_report, "{instruction:?} d={d} dt={dt} profile={}", spec.name);
    assert_eq!(rounds.total_ops(), ref_rounds.total_ops());
    assert_eq!(rounds.measurements.len(), ref_rounds.measurements.len());

    // The periodic sub-range flattens to the reference sub-range.
    assert_eq!(rounds.materialize().ops(), ref_rounds.materialize().ops());

    // Validity: the streaming checker accepts the periodic circuit exactly
    // as the materialized checker accepts the reference.
    check_circuit(&layout, &ref_snapshot, reference.circuit()).expect("reference is valid");
    check_stream(&layout, &snapshot, templated.circuit()).expect("periodic stream is valid");
    check_stream(&layout, &snapshot, &flat).expect("flattened circuit is valid");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized fixtures: streaming/templated results are identical to
    /// the materialized path for every instruction kind, distance, round
    /// count and hardware profile.
    #[test]
    fn templated_compilation_is_observationally_identical(
        instr_idx in 0usize..Instruction::all().len(),
        d in 2usize..4,
        dt in 1usize..6,
        profile_idx in 0usize..3,
    ) {
        let instruction = Instruction::all()[instr_idx];
        let spec = &HardwareSpec::presets()[profile_idx];
        assert_equivalent(instruction, d, dt, spec);
    }
}

/// Deterministic coverage of the three replicated-round sequences (idle,
/// merge, extension) at a round count that guarantees replication, under
/// the non-dyadic `projected` profile.
#[test]
fn replicated_sequences_match_materialized_per_kind() {
    let projected = HardwareSpec::projected();
    assert_equivalent(Instruction::Idle, 3, 5, &projected);
    assert_equivalent(Instruction::MeasureXX, 2, 4, &projected);
    assert_equivalent(Instruction::MeasureZZ, 2, 4, &projected);
    assert_equivalent(Instruction::PrepareZ, 3, 4, &HardwareSpec::h1());
}

/// Patch extension replicates its rounds too (the Table 3 path).
#[test]
fn extension_rounds_replicate_equivalently() {
    let build = |templated: bool| {
        let mut fixture = TwoTiles::new(2, 2, 4).unwrap();
        fixture.hw.set_round_templating(templated);
        Fiducial::Zero.prepare(&mut fixture.hw, &mut fixture.upper).unwrap();
        let (extended, rounds) = tiscc::core::surgery::extend_down(
            &mut fixture.hw,
            &mut fixture.upper,
            &mut fixture.lower,
        )
        .unwrap();
        assert!(extended.is_initialized());
        (fixture.hw, rounds)
    };
    let (reference, ref_rounds) = build(false);
    let (templated, rounds) = build(true);
    assert!(templated.circuit().is_periodic(), "dt=4 extension must replicate");
    assert_eq!(templated.circuit().materialize().ops(), reference.circuit().ops());
    assert_eq!(rounds.len(), ref_rounds.len());
    for (a, b) in rounds.iter().zip(&ref_rounds) {
        assert_eq!(a.measurements, b.measurements, "round records must agree");
    }
}

/// Distance (in representable doubles) between two same-sign finite
/// floats; 0 iff bit-identical.
fn ulp_diff(a: f64, b: f64) -> u64 {
    (a.to_bits() as i64 - b.to_bits() as i64).unsigned_abs()
}

/// The analytic estimate mode agrees with the compiled mode on every
/// profile, instruction arity, distance and round count: bit-for-bit on
/// the dyadic-duration profiles (`h1`, `slow_junction`), and to ≤ 1 ulp on
/// the float-summed durations of `projected` (whose non-dyadic gate times
/// can tie-break epilogue timing differently; the space-time volume is a
/// product of two such values, so it gets 2).
#[test]
fn analytic_rows_match_compiled_rows_on_every_profile() {
    let compiler = Compiler::new();
    for spec in HardwareSpec::presets() {
        let dyadic = spec.name != "projected";
        for instruction in [Instruction::Idle, Instruction::PrepareZ, Instruction::MeasureZZ] {
            for d in [2usize, 3] {
                // dt = 1 exercises the out-of-range fallback to compiled.
                for dt in [1usize, 2, 3, 5] {
                    let request =
                        CompileRequest::new(instruction, d, d, dt).with_spec(spec.clone());
                    let compiled = compiler.estimate_row(&request, EstimateMode::Compiled).unwrap();
                    let analytic = compiler.estimate_row(&request, EstimateMode::Analytic).unwrap();
                    let ctx = format!("{instruction:?} d={d} dt={dt} profile={}", spec.name);
                    if dyadic {
                        assert_eq!(analytic, compiled, "{ctx}");
                        continue;
                    }
                    assert_eq!(
                        (&analytic.name, analytic.dx, analytic.dz, &analytic.profile),
                        (&compiled.name, compiled.dx, compiled.dz, &compiled.profile),
                        "{ctx}"
                    );
                    assert_eq!(analytic.logical_time_steps, compiled.logical_time_steps, "{ctx}");
                    assert_eq!(analytic.tiles, compiled.tiles, "{ctx}");
                    let (a, c) = (&analytic.resources, &compiled.resources);
                    assert_eq!(a.op_counts, c.op_counts, "{ctx}");
                    assert_eq!(a.total_ops, c.total_ops, "{ctx}");
                    assert_eq!(a.measurements, c.measurements, "{ctx}");
                    assert_eq!(a.trapping_zones, c.trapping_zones, "{ctx}");
                    assert_eq!(a.junctions, c.junctions, "{ctx}");
                    assert_eq!(a.area_m2.to_bits(), c.area_m2.to_bits(), "{ctx}");
                    for (x, y, tol, what) in [
                        (a.execution_time_s, c.execution_time_s, 1, "execution_time_s"),
                        (a.zone_seconds, c.zone_seconds, 2, "zone_seconds"),
                        (a.active_zone_seconds, c.active_zone_seconds, 1, "active_zone_seconds"),
                        (a.spacetime_volume_s_m2, c.spacetime_volume_s_m2, 2, "volume"),
                    ] {
                        assert!(
                            ulp_diff(x, y) <= tol,
                            "{what} differs by more than {tol} ulp ({x:?} vs {y:?}) {ctx}"
                        );
                    }
                }
            }
        }
    }
}

/// The batched/contended axis of the analytic cross-validation: with the
/// scheduling-realism knobs on, [`EstimateMode::Analytic`] either derives
/// the batched/stalled rounds bit-for-bit or falls back to the compiled
/// path — and every fallback is counted, never silent.
#[test]
fn analytic_mode_handles_batched_and_contended_specs() {
    let instructions = [Instruction::Idle, Instruction::PrepareZ, Instruction::MeasureZZ];

    // Contended (junction recovery window, width 1): replication replays
    // recovery edges exactly, so every row derives — zero fallbacks.
    let compiler = Compiler::new();
    for instruction in instructions {
        for dt in [2usize, 3, 5] {
            let request =
                CompileRequest::new(instruction, 3, 3, dt).with_spec(HardwareSpec::slow_junction());
            let compiled = compiler.estimate_row(&request, EstimateMode::Compiled).unwrap();
            let analytic = compiler.estimate_row(&request, EstimateMode::Analytic).unwrap();
            assert_eq!(analytic, compiled, "{instruction:?} dt={dt} slow_junction");
        }
    }
    assert_eq!(
        compiler.analytic_fallbacks(),
        0,
        "recovery-stretched rounds must derive analytically, not fall back"
    );

    // Batched (SIMD width > 1), alone and combined with recovery: rows
    // always agree (a fallback lands on the compiled path), the
    // non-derivable dts are counted, and at least some dts do derive.
    for base in [HardwareSpec::h1(), HardwareSpec::slow_junction()] {
        let compiler = Compiler::new();
        let mut spec = base.clone();
        spec.simd_width = 2;
        let mut rows = 0usize;
        for instruction in instructions {
            // dt = 1 is the pre-existing out-of-range fallback; dt = 2
            // compiles to a single template occurrence, which batches as
            // one flat segment and must also fall back.
            for dt in [1usize, 2, 3, 5] {
                let request = CompileRequest::new(instruction, 3, 3, dt).with_spec(spec.clone());
                let compiled = compiler.estimate_row(&request, EstimateMode::Compiled).unwrap();
                let analytic = compiler.estimate_row(&request, EstimateMode::Analytic).unwrap();
                assert_eq!(analytic, compiled, "{instruction:?} dt={dt} {} width=2", base.name);
                rows += 1;
            }
        }
        let fallbacks = compiler.analytic_fallbacks();
        assert!(fallbacks > 0, "{}: non-derivable batched dts must be counted", base.name);
        assert!(fallbacks < rows, "{}: some batched dts must derive analytically", base.name);
    }
}

/// Whole-program estimates agree between the modes on both 2D floorplans,
/// with the same ulp discipline as the per-instruction comparison. The
/// analytic rows must also say they are analytic.
#[test]
fn analytic_program_estimates_match_compiled_across_layouts() {
    let text = std::fs::read_to_string("examples/programs/teleport.tql").unwrap();
    let program = LogicalProgram::parse("teleport", &text).unwrap();
    let compiler = Compiler::new();
    for layout in ["lane", "checkerboard"] {
        let spec = ProgramEstimateSpec {
            layout: LayoutSpec::by_name(layout).unwrap(),
            ..ProgramEstimateSpec::new(1e-3)
                .with_profiles(vec![HardwareSpec::h1(), HardwareSpec::projected()])
        };
        let compiled = estimate_program(&program, &spec, &compiler).unwrap();
        let analytic = estimate_program(
            &program,
            &ProgramEstimateSpec { mode: EstimateMode::Analytic, ..spec },
            &compiler,
        )
        .unwrap();
        assert_eq!(compiled.rows.len(), analytic.rows.len());
        for (c, a) in compiled.rows.iter().zip(&analytic.rows) {
            let ctx = format!("layout={layout} profile={}", c.profile);
            assert_eq!(a.estimate_mode, EstimateMode::Analytic, "{ctx}");
            assert_eq!(c.estimate_mode, EstimateMode::Compiled, "{ctx}");
            assert_eq!(a.profile, c.profile, "{ctx}");
            assert_eq!(a.distance, c.distance, "{ctx}");
            assert_eq!(a.achieved_error.to_bits(), c.achieved_error.to_bits(), "{ctx}");
            assert_eq!(a.trapping_zones, c.trapping_zones, "{ctx}");
            assert_eq!(a.qubit_rounds, c.qubit_rounds, "{ctx}");
            assert_eq!(a.area_m2.to_bits(), c.area_m2.to_bits(), "{ctx}");
            let tol = if c.profile == "projected" { 1 } else { 0 };
            assert!(
                ulp_diff(a.duration_s, c.duration_s) <= tol,
                "duration {:?} vs {:?} exceeds {tol} ulp {ctx}",
                a.duration_s,
                c.duration_s
            );
        }
    }
}

/// Budget monotonicity holds in analytic mode: tightening the budget never
/// shrinks the selected (odd) distance, and every estimate meets the
/// budget it was asked for.
#[test]
fn analytic_mode_respects_budget_monotonicity() {
    let program =
        LogicalProgram::parse("bell", "qubit a b\nprep_x a\nprep_z b\nmerge_zz a b\n").unwrap();
    let compiler = Compiler::new();
    let mut last_distance = 0usize;
    for budget in [1e-2, 1e-3, 1e-4] {
        let spec = ProgramEstimateSpec::new(budget).with_mode(EstimateMode::Analytic);
        let estimate = estimate_program(&program, &spec, &compiler).unwrap();
        let row = &estimate.rows[0];
        assert_eq!(row.estimate_mode, EstimateMode::Analytic);
        assert_eq!(row.distance % 2, 1, "selected distances are odd");
        assert!(row.achieved_error <= budget, "budget {budget:e} missed");
        assert!(row.distance >= last_distance, "tighter budget shrank the distance");
        last_distance = row.distance;
    }
}

/// d = 19 single-instruction smoke test: the template path stays under a
/// generous wall-clock budget even in debug builds, and materializes only
/// a small fraction of the logical operations.
#[test]
fn d19_compile_stays_within_budget() {
    let started = Instant::now();
    let mut fixture = SingleTile::new(19, 19, 19).unwrap();
    fixture.hw.set_round_templating(true);
    Fiducial::Zero.prepare(&mut fixture.hw, &mut fixture.patch).unwrap();
    let before = fixture.hw.circuit().len();
    apply_instruction(&mut fixture.hw, Instruction::Idle, &mut fixture.patch).unwrap();
    let elapsed = started.elapsed();

    let rounds = CompiledRounds::extract(fixture.hw.circuit(), before);
    // Round 0 (not barrier-aligned) is the prologue; rounds 1..19 are the
    // template's 18 occurrences.
    assert_eq!(rounds.repeats, 18, "rounds 1..19 are template occurrences");
    let materialized_ops = rounds.prologue.len() + rounds.template.len() + rounds.epilogue.len();
    assert!(
        materialized_ops * 4 <= rounds.total_ops(),
        "at dt=19 the template path materializes a small fraction of the ops \
         ({materialized_ops} of {})",
        rounds.total_ops()
    );
    assert_eq!(rounds.measurements.len(), 19 * (19 * 19 - 1), "one record per cell per round");
    // Generous budget: the materialized path takes minutes in debug builds,
    // the template path a few seconds.
    assert!(
        elapsed.as_secs() < 90,
        "d=19 idle compile took {elapsed:?}; the round-template path has regressed"
    );
}
